// Shared helpers for the experiment benchmarks.

#pragma once

#include <string>
#include <vector>

#include "core/runtime.h"
#include "rpc/inproc.h"
#include "services/car_rental.h"
#include "services/market.h"
#include "wire/value.h"

namespace cosm::bench {

/// A runtime pre-loaded with N tradable car-rental providers (canonical
/// service type registered first so heterogeneous providers type-check).
struct Market {
  explicit Market(std::size_t providers, std::uint64_t seed = 1994,
                  rpc::Network* external_net = nullptr)
      : runtime(external_net ? *external_net : inproc) {
    runtime.trader().types().add(services::canonical_car_rental_type());
    services::MarketConfig config;
    config.providers = providers;
    config.seed = seed;
    for (const auto& provider : services::generate_market(config)) {
      auto [ref, offer] =
          runtime.offer_traded(services::make_car_rental_service(provider));
      refs.push_back(ref);
      runtime.browser().register_service(provider.name,
                                         runtime.repository().get(ref.id), ref);
    }
  }

  rpc::InProcNetwork inproc;
  core::CosmRuntime runtime;
  std::vector<sidl::ServiceRef> refs;
};

/// Quote a car through the generated form (robust to provider drift).
inline wire::Value quote_via_form(core::Binding& rental, const std::string& model,
                                  int days) {
  uims::FormEditor editor = rental.edit("SelectCar");
  editor.set("selection.model", model);
  editor.set("selection.booking_date", "1994-06-21");
  editor.set("selection.days", std::to_string(days));
  return rental.invoke_form(editor);
}

}  // namespace cosm::bench
