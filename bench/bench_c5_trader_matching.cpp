// Experiment C5 (§2.1): trader matching scalability.
//
// Import cost as a function of (a) the offer population, (b) the constraint
// complexity (number of comparison terms), and (c) the preference policy.
// Offers are exported directly (no live service objects) so only the
// matching engine is measured.
//
// The binary first runs the C5 *sweep* — population scales crossed with
// {indexed, scan} matching modes on the selective reference constraint —
// and writes BENCH_c5_trader_matching.json (ops/s, p50/p99 latency,
// candidates evaluated per import).  The scan mode disables the offer
// store's secondary indexes, i.e. the 1994-prototype linear bucket scan the
// paper's cost model assumes; the indexed mode is the engine's default.
// After the sweep it falls through to the usual google-benchmark suites.
//
// A second, optional phase exercises the sharded offer store under
// concurrent exporters: N offers pushed by T writer threads (mixed single
// Export and ExportBatch calls across a hot type and several cold types)
// while a reader thread issues selective imports the whole time.  The phase
// runs twice — store_shards=1 (the single-writer baseline) and the sharded
// configuration — and reports write throughput, export-call latency and
// concurrent-import latency for both, plus the sharded/single ratios the CI
// gate checks.
//
// Flags (stripped before google-benchmark sees argv):
//   --sweep-only              run the sweep (+ concurrent phase if enabled),
//                             skip the BM_ suites
//   --no-sweep                skip the sweep (BM_ suites only)
//   --sweep-scales=1000,...   override the population scales
//   --sweep-out=FILE          JSON destination (default
//                             BENCH_c5_trader_matching.json)
//   --concurrent-offers=N     enable the concurrent phase with N offers
//   --concurrent-threads=T    writer threads (default 8)
//   --concurrent-shards=S     sharded-mode store shards (default 16)
//   --gate-min-speedup=F      fail unless sharded write throughput is at
//                             least F x the single-writer baseline
//   --gate-max-p99-ratio=F    fail unless sharded concurrent-import p99 is
//                             within F x the baseline's

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "trader/trader.h"

namespace {

using namespace cosm;
using trader::AttrMap;
using wire::Value;

std::unique_ptr<trader::Trader> populated_trader(std::size_t offers) {
  auto t = std::make_unique<trader::Trader>("bench");
  trader::ServiceType type;
  type.name = "CarRentalService";
  type.attributes = {
      {"ChargePerDay", sidl::TypeDesc::float_(), true},
      {"AverageMilage", sidl::TypeDesc::int_(), true},
      {"ChargeCurrency", sidl::TypeDesc::string_(), true},
      {"Insured", sidl::TypeDesc::bool_(), true},
  };
  t->types().add(type);

  Rng rng(7);
  static const char* currencies[] = {"USD", "DEM", "FF", "SFR", "GBP"};
  for (std::size_t i = 0; i < offers; ++i) {
    AttrMap attrs = {
        {"ChargePerDay", Value::real(20.0 + rng.uniform() * 180.0)},
        {"AverageMilage", Value::integer(rng.range(1000, 80000))},
        {"ChargeCurrency", Value::string(currencies[rng.below(5)])},
        {"Insured", Value::boolean(rng.chance(0.5))},
    };
    sidl::ServiceRef ref{"svc-" + std::to_string(i), "inproc://x",
                         "CarRentalService"};
    t->export_offer("CarRentalService", ref, std::move(attrs));
  }
  return t;
}

// ---------------------------------------------------------------------------
// C5 sweep: scales x {scan, indexed} on the selective reference constraint.

constexpr const char* kSweepConstraint =
    "ChargePerDay < 100 && ChargeCurrency == USD";

/// Sweep constraints: speedup from index narrowing depends on selectivity,
/// because the per-match result-copy cost is shared by both modes.  The
/// "moderate" query matches ~9% of the population, the "selective" one ~1%.
struct SweepQuery {
  const char* label;
  const char* constraint;
};
constexpr SweepQuery kSweepQueries[] = {
    {"moderate", kSweepConstraint},
    {"selective", "ChargePerDay < 30 && ChargeCurrency == USD"},
};

struct SweepResult {
  std::size_t offers = 0;
  std::string query;
  std::string mode;
  std::size_t iterations = 0;
  double ops_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::size_t matched = 0;
  double evaluated_per_import = 0.0;
  double scanned_per_import = 0.0;
};

double percentile(std::vector<double> sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

SweepResult run_mode(trader::Trader& t, std::size_t offers,
                     const SweepQuery& query, bool indexed) {
  t.set_tuning({.enable_indexes = indexed});
  trader::ImportRequest request;
  request.service_type = "CarRentalService";
  request.constraint = query.constraint;

  std::size_t iterations = std::max<std::size_t>(
      15, std::min<std::size_t>(150, 10'000'000 / std::max<std::size_t>(offers, 1)));

  SweepResult result;
  result.offers = offers;
  result.query = query.label;
  result.mode = indexed ? "indexed" : "scan";
  result.iterations = iterations;
  result.matched = t.import(request).size();  // warm-up (caches, snapshot)

  t.reset_stats();  // count only the timed sweep, no delta bookkeeping
  std::vector<double> samples_us;
  samples_us.reserve(iterations);
  auto sweep_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iterations; ++i) {
    auto start = std::chrono::steady_clock::now();
    auto matches = t.import(request);
    auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(matches);
    samples_us.push_back(
        std::chrono::duration<double, std::micro>(stop - start).count());
  }
  double total_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start)
          .count();

  std::sort(samples_us.begin(), samples_us.end());
  result.ops_per_sec = static_cast<double>(iterations) / total_sec;
  result.p50_us = percentile(samples_us, 0.50);
  result.p99_us = percentile(samples_us, 0.99);
  result.evaluated_per_import =
      static_cast<double>(t.offers_evaluated()) / static_cast<double>(iterations);
  result.scanned_per_import =
      static_cast<double>(t.offers_scanned()) / static_cast<double>(iterations);
  return result;
}

/// Runs the sweep and returns its JSON fields (no outer braces) so main()
/// can splice the optional concurrent section into the same document.
std::string run_sweep(const std::vector<std::size_t>& scales) {
  std::vector<SweepResult> results;
  for (std::size_t offers : scales) {
    std::fprintf(stderr, "[c5-sweep] populating %zu offers...\n", offers);
    auto t = populated_trader(offers);
    for (const SweepQuery& query : kSweepQueries) {
      // Scan first so the indexed numbers cannot benefit from extra warm-up.
      results.push_back(run_mode(*t, offers, query, /*indexed=*/false));
      results.push_back(run_mode(*t, offers, query, /*indexed=*/true));
      const SweepResult& scan = results[results.size() - 2];
      const SweepResult& indexed = results.back();
      std::fprintf(stderr,
                   "[c5-sweep] %8zu offers %-9s: scan %9.0f ops/s (p50 %8.1f us)"
                   "  indexed %9.0f ops/s (p50 %8.1f us)  speedup %.1fx\n",
                   offers, query.label, scan.ops_per_sec, scan.p50_us,
                   indexed.ops_per_sec, indexed.p50_us,
                   indexed.ops_per_sec / scan.ops_per_sec);
    }
  }

  std::ostringstream json;
  json << "  \"constraints\": {";
  for (std::size_t i = 0; i < std::size(kSweepQueries); ++i) {
    json << (i ? ", " : "") << "\"" << kSweepQueries[i].label << "\": \""
         << kSweepQueries[i].constraint << "\"";
  }
  json << "},\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    json << "    {\"offers\": " << r.offers << ", \"query\": \"" << r.query
         << "\", \"mode\": \"" << r.mode
         << "\", \"iterations\": " << r.iterations
         << ", \"ops_per_sec\": " << r.ops_per_sec
         << ", \"p50_us\": " << r.p50_us << ", \"p99_us\": " << r.p99_us
         << ", \"matched\": " << r.matched
         << ", \"evaluated_per_import\": " << r.evaluated_per_import
         << ", \"scanned_per_import\": " << r.scanned_per_import << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"speedup_indexed_vs_scan\": {";
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    json << (i ? ", " : "") << "\"" << results[i].offers << "/"
         << results[i].query
         << "\": " << results[i + 1].ops_per_sec / results[i].ops_per_sec;
  }
  json << "}";
  return json.str();
}

// ---------------------------------------------------------------------------
// Concurrent-export phase: sharded store vs single-writer baseline.

struct ConcurrentConfig {
  std::size_t offers = 0;      // 0 disables the phase
  unsigned threads = 8;
  unsigned shards = 16;
  double gate_min_speedup = 0.0;    // 0 disables the gate
  double gate_max_p99_ratio = 0.0;  // 0 disables the gate
};

struct ConcurrentResult {
  std::string mode;
  unsigned shards = 0;
  double wall_sec = 0.0;
  double exports_per_sec = 0.0;
  double export_call_p50_us = 0.0;
  double export_call_p99_us = 0.0;
  std::size_t imports = 0;
  double import_p50_us = 0.0;
  double import_p99_us = 0.0;
};

constexpr std::size_t kConcurrentBatch = 64;

/// One run of the concurrent workload.  Offers are claimed in chunks of
/// kConcurrentBatch; three of four chunks go through ExportBatch, the
/// fourth through per-offer Export calls, so both write paths stay hot.
/// 70% of offers land on one hot type (which the sharded config splits),
/// the rest spread across three cold types.  A reader thread imports a
/// selective constraint against the hot type for the whole run.
ConcurrentResult run_concurrent_mode(const ConcurrentConfig& config,
                                     unsigned shards) {
  trader::Trader t("bench-c5c");
  trader::TraderTuning tuning;
  tuning.store_shards = shards;
  // Split the hot type early in the sharded config; the baseline keeps the
  // classic one-bucket-one-writer layout (0 = never split).
  tuning.hot_split_threshold = shards > 1 ? 8192 : 0;
  t.set_tuning(tuning);

  static const char* kTypes[] = {"CarRentalService", "TruckRentalService",
                                 "BikeRentalService", "VanRentalService"};
  for (const char* name : kTypes) {
    trader::ServiceType type;
    type.name = name;
    type.attributes = {
        {"ChargePerDay", sidl::TypeDesc::float_(), true},
        {"AverageMilage", sidl::TypeDesc::int_(), true},
        {"ChargeCurrency", sidl::TypeDesc::string_(), true},
        {"Insured", sidl::TypeDesc::bool_(), true},
    };
    t.types().add(type);
  }

  const std::size_t chunks =
      (config.offers + kConcurrentBatch - 1) / kConcurrentBatch;
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<bool> writers_done{false};

  std::vector<std::vector<double>> export_samples(config.threads);
  auto writer = [&](unsigned wi) {
    Rng rng(1000 + wi);
    static const char* currencies[] = {"USD", "DEM", "FF", "SFR", "GBP"};
    auto& samples = export_samples[wi];
    for (;;) {
      const std::size_t chunk = next_chunk.fetch_add(1);
      if (chunk >= chunks) break;
      const std::size_t base = chunk * kConcurrentBatch;
      const std::size_t count =
          std::min(kConcurrentBatch, config.offers - base);
      // 70% hot type, remainder round-robins the cold ones.
      const char* type = (chunk % 10) < 7 ? kTypes[0] : kTypes[1 + chunk % 3];
      auto make_attrs = [&]() {
        return trader::AttrMap{
            {"ChargePerDay", Value::real(20.0 + rng.uniform() * 180.0)},
            {"AverageMilage", Value::integer(rng.range(1000, 80000))},
            {"ChargeCurrency", Value::string(currencies[rng.below(5)])},
            {"Insured", Value::boolean(rng.chance(0.5))},
        };
      };
      auto make_ref = [&](std::size_t i) {
        return sidl::ServiceRef{"svc-" + std::to_string(base + i), "inproc://x",
                                type};
      };
      if (chunk % 4 == 0) {
        for (std::size_t i = 0; i < count; ++i) {
          auto start = std::chrono::steady_clock::now();
          t.export_offer(type, make_ref(i), make_attrs());
          samples.push_back(std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - start)
                                .count());
        }
      } else {
        std::vector<trader::BatchOfferSpec> specs;
        specs.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
          trader::BatchOfferSpec spec;
          spec.ref = make_ref(i);
          spec.attributes = make_attrs();
          specs.push_back(std::move(spec));
        }
        auto start = std::chrono::steady_clock::now();
        t.export_batch(type, std::move(specs));
        samples.push_back(std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - start)
                              .count());
      }
    }
  };

  std::vector<double> import_samples;
  auto reader = [&] {
    trader::ImportRequest request;
    request.service_type = kTypes[0];
    request.constraint = "ChargePerDay < 30 && ChargeCurrency == USD";
    request.max_matches = 64;
    while (!writers_done.load(std::memory_order_acquire)) {
      auto start = std::chrono::steady_clock::now();
      auto matches = t.import(request);
      benchmark::DoNotOptimize(matches);
      import_samples.push_back(std::chrono::duration<double, std::micro>(
                                   std::chrono::steady_clock::now() - start)
                                   .count());
    }
  };

  auto wall_start = std::chrono::steady_clock::now();
  std::thread import_thread(reader);
  std::vector<std::thread> writers;
  for (unsigned wi = 0; wi < config.threads; ++wi) writers.emplace_back(writer, wi);
  for (auto& w : writers) w.join();
  const double wall_sec = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
  writers_done.store(true, std::memory_order_release);
  import_thread.join();

  std::vector<double> exports_all;
  for (auto& s : export_samples) {
    exports_all.insert(exports_all.end(), s.begin(), s.end());
  }
  std::sort(exports_all.begin(), exports_all.end());
  std::sort(import_samples.begin(), import_samples.end());

  ConcurrentResult result;
  result.mode = shards > 1 ? "sharded" : "single";
  result.shards = shards;
  result.wall_sec = wall_sec;
  result.exports_per_sec = static_cast<double>(config.offers) / wall_sec;
  result.export_call_p50_us = percentile(exports_all, 0.50);
  result.export_call_p99_us = percentile(exports_all, 0.99);
  result.imports = import_samples.size();
  result.import_p50_us = percentile(import_samples, 0.50);
  result.import_p99_us = percentile(import_samples, 0.99);
  std::fprintf(stderr,
               "[c5-concurrent] %-7s (%2u shards): %9.0f exports/s in %6.2fs"
               "  export p99 %8.1f us  import p99 %8.1f us (%zu imports)\n",
               result.mode.c_str(), shards, result.exports_per_sec, wall_sec,
               result.export_call_p99_us, result.import_p99_us, result.imports);
  return result;
}

/// Runs baseline + sharded, appends the JSON section, and returns 0 unless
/// an enabled gate failed.
int run_concurrent(const ConcurrentConfig& config, std::string& json_out) {
  std::fprintf(stderr,
               "[c5-concurrent] %zu offers, %u writer threads, 1 import thread\n",
               config.offers, config.threads);
  ConcurrentResult single = run_concurrent_mode(config, 1);
  ConcurrentResult sharded = run_concurrent_mode(config, config.shards);

  const double speedup = sharded.exports_per_sec / single.exports_per_sec;
  const double p99_ratio =
      single.import_p99_us > 0.0 ? sharded.import_p99_us / single.import_p99_us
                                 : 0.0;
  bool passed = true;
  if (config.gate_min_speedup > 0.0 && speedup < config.gate_min_speedup) {
    std::fprintf(stderr,
                 "[c5-concurrent] GATE FAILED: write speedup %.2fx < %.2fx\n",
                 speedup, config.gate_min_speedup);
    passed = false;
  }
  if (config.gate_max_p99_ratio > 0.0 && p99_ratio > config.gate_max_p99_ratio) {
    std::fprintf(stderr,
                 "[c5-concurrent] GATE FAILED: import p99 ratio %.2fx > %.2fx\n",
                 p99_ratio, config.gate_max_p99_ratio);
    passed = false;
  }
  if (passed) {
    std::fprintf(stderr,
                 "[c5-concurrent] write speedup %.2fx, import p99 ratio %.2fx\n",
                 speedup, p99_ratio);
  }

  std::ostringstream json;
  auto emit = [&](const ConcurrentResult& r, bool comma) {
    json << "      {\"mode\": \"" << r.mode << "\", \"shards\": " << r.shards
         << ", \"wall_sec\": " << r.wall_sec
         << ", \"exports_per_sec\": " << r.exports_per_sec
         << ", \"export_call_p50_us\": " << r.export_call_p50_us
         << ", \"export_call_p99_us\": " << r.export_call_p99_us
         << ", \"imports\": " << r.imports
         << ", \"import_p50_us\": " << r.import_p50_us
         << ", \"import_p99_us\": " << r.import_p99_us << "}"
         << (comma ? "," : "") << "\n";
  };
  json << "  \"concurrent_import\": {\n"
       << "    \"offers\": " << config.offers
       << ", \"writer_threads\": " << config.threads << ",\n"
       << "    \"results\": [\n";
  emit(single, true);
  emit(sharded, false);
  json << "    ],\n"
       << "    \"write_speedup_sharded_vs_single\": " << speedup << ",\n"
       << "    \"import_p99_ratio_sharded_vs_single\": " << p99_ratio << ",\n"
       << "    \"gates\": {\"min_speedup\": " << config.gate_min_speedup
       << ", \"max_p99_ratio\": " << config.gate_max_p99_ratio
       << ", \"passed\": " << (passed ? "true" : "false") << "}\n"
       << "  }";
  json_out = json.str();
  return passed ? 0 : 1;
}

// ---------------------------------------------------------------------------
// google-benchmark suites (unchanged shape; now measuring the indexed
// engine by default).

void BM_ImportVsPopulation(benchmark::State& state) {
  auto t = populated_trader(static_cast<std::size_t>(state.range(0)));
  trader::ImportRequest request;
  request.service_type = "CarRentalService";
  request.constraint = kSweepConstraint;
  std::size_t matched = 0;
  for (auto _ : state) {
    auto offers = t->import(request);
    matched = offers.size();
    benchmark::DoNotOptimize(offers);
  }
  state.counters["offers"] = static_cast<double>(state.range(0));
  state.counters["matched"] = static_cast<double>(matched);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ImportVsPopulation)
    ->RangeMultiplier(10)
    ->Range(10, 100000)
    ->Complexity(benchmark::oN);

void BM_ImportVsConstraintTerms(benchmark::State& state) {
  auto t = populated_trader(1024);
  // Build a constraint with N comparison terms.
  std::ostringstream constraint;
  for (int i = 0; i < state.range(0); ++i) {
    if (i) constraint << " && ";
    switch (i % 4) {
      case 0: constraint << "ChargePerDay < " << 200 - i; break;
      case 1: constraint << "AverageMilage > " << 500 + i; break;
      case 2: constraint << "ChargeCurrency != XXX"; break;
      default: constraint << "exists Insured"; break;
    }
  }
  trader::ImportRequest request;
  request.service_type = "CarRentalService";
  request.constraint = constraint.str();
  for (auto _ : state) {
    auto offers = t->import(request);
    benchmark::DoNotOptimize(offers);
  }
  state.counters["terms"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ImportVsConstraintTerms)->DenseRange(1, 16, 3);

void BM_ImportPreferencePolicies(benchmark::State& state) {
  auto t = populated_trader(4096);
  static const char* policies[] = {"first", "random", "min ChargePerDay",
                                   "max AverageMilage"};
  trader::ImportRequest request;
  request.service_type = "CarRentalService";
  request.preference = policies[state.range(0)];
  for (auto _ : state) {
    auto offers = t->import(request);
    benchmark::DoNotOptimize(offers);
  }
  state.SetLabel(policies[state.range(0)]);
}
BENCHMARK(BM_ImportPreferencePolicies)->DenseRange(0, 3, 1);

void BM_ConstraintParseOnly(benchmark::State& state) {
  const std::string text =
      "ChargePerDay < 100 && (ChargeCurrency == USD || ChargeCurrency == DEM) "
      "&& exists Insured && AverageMilage > 5000";
  for (auto _ : state) {
    auto c = trader::Constraint::parse(text);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ConstraintParseOnly);

std::vector<std::size_t> parse_scales(const std::string& csv) {
  std::vector<std::size_t> scales;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) scales.push_back(std::stoull(item));
  }
  return scales;
}

}  // namespace

int main(int argc, char** argv) {
  bool sweep_only = false;
  bool no_sweep = false;
  std::vector<std::size_t> scales = {1000, 10000, 100000};
  std::string out_path = "BENCH_c5_trader_matching.json";
  ConcurrentConfig concurrent;

  std::vector<char*> bench_argv = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--sweep-only") {
      sweep_only = true;
    } else if (arg == "--no-sweep") {
      no_sweep = true;
    } else if (arg.rfind("--sweep-scales=", 0) == 0) {
      scales = parse_scales(arg.substr(15));
    } else if (arg.rfind("--sweep-out=", 0) == 0) {
      out_path = arg.substr(12);
    } else if (arg.rfind("--concurrent-offers=", 0) == 0) {
      concurrent.offers = std::stoull(arg.substr(20));
    } else if (arg.rfind("--concurrent-threads=", 0) == 0) {
      concurrent.threads = static_cast<unsigned>(std::stoul(arg.substr(21)));
    } else if (arg.rfind("--concurrent-shards=", 0) == 0) {
      concurrent.shards = static_cast<unsigned>(std::stoul(arg.substr(20)));
    } else if (arg.rfind("--gate-min-speedup=", 0) == 0) {
      concurrent.gate_min_speedup = std::stod(arg.substr(19));
    } else if (arg.rfind("--gate-max-p99-ratio=", 0) == 0) {
      concurrent.gate_max_p99_ratio = std::stod(arg.substr(21));
    } else {
      bench_argv.push_back(argv[i]);
    }
  }

  int rc = 0;
  if (!no_sweep || concurrent.offers > 0) {
    std::vector<std::string> sections;
    if (!no_sweep) sections.push_back(run_sweep(scales));
    if (concurrent.offers > 0) {
      std::string section;
      rc = run_concurrent(concurrent, section);
      sections.push_back(std::move(section));
    }
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "[c5-sweep] cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << "{\n  \"experiment\": \"C5_trader_matching\",\n";
    for (std::size_t i = 0; i < sections.size(); ++i) {
      out << sections[i] << (i + 1 < sections.size() ? "," : "") << "\n";
    }
    out << "}\n";
    std::fprintf(stderr, "[c5-sweep] wrote %s\n", out_path.c_str());
  }
  if (sweep_only || rc != 0) return rc;

  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
