#include "trader/constraint.h"

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>
#include <set>
#include <stdexcept>

#include "common/error.h"
#include "trader/cexpr_ir.h"
#include "trader/cexpr_vm.h"

namespace cosm::trader {

namespace detail {

namespace {

// ---- evaluation ----

/// Resolved operand value at evaluation time.
struct Resolved {
  enum class Kind { Missing, Number, Text, Boolean };
  Kind kind = Kind::Missing;
  double number = 0.0;
  std::string text;
  bool boolean = false;
};

Resolved resolve_value(const wire::Value& v) {
  using wire::ValueKind;
  Resolved r;
  switch (v.kind()) {
    case ValueKind::Int:
      r.kind = Resolved::Kind::Number;
      r.number = static_cast<double>(v.as_int());
      return r;
    case ValueKind::Float:
      r.kind = Resolved::Kind::Number;
      r.number = v.as_real();
      return r;
    case ValueKind::String:
      r.kind = Resolved::Kind::Text;
      r.text = v.as_string();
      return r;
    case ValueKind::Enum:
      // Enum values compare by label (so `Currency == USD` works).
      r.kind = Resolved::Kind::Text;
      r.text = v.enum_label();
      return r;
    case ValueKind::Bool:
      r.kind = Resolved::Kind::Boolean;
      r.boolean = v.as_bool();
      return r;
    default:
      return r;  // structured attributes are not comparable
  }
}

Resolved resolve_operand(const Operand& o, const AttrMap& attrs) {
  Resolved r;
  switch (o.kind) {
    case Operand::Kind::Int:
      r.kind = Resolved::Kind::Number;
      r.number = static_cast<double>(o.i);
      return r;
    case Operand::Kind::Float:
      r.kind = Resolved::Kind::Number;
      r.number = o.f;
      return r;
    case Operand::Kind::String:
      r.kind = Resolved::Kind::Text;
      r.text = o.text;
      return r;
    case Operand::Kind::Ident: {
      if (o.text == "true" || o.text == "false") {
        r.kind = Resolved::Kind::Boolean;
        r.boolean = o.text == "true";
        return r;
      }
      auto it = attrs.find(o.text);
      if (it != attrs.end()) return resolve_value(it->second);
      // Not an attribute of this offer: the identifier denotes itself
      // (enum label / symbolic constant).
      r.kind = Resolved::Kind::Text;
      r.text = o.text;
      return r;
    }
  }
  return r;
}

bool compare(CmpOp op, const Resolved& a, const Resolved& b) {
  if (a.kind == Resolved::Kind::Missing || b.kind == Resolved::Kind::Missing) {
    return false;
  }
  if (a.kind != b.kind) return false;
  int cmp;
  switch (a.kind) {
    case Resolved::Kind::Number:
      cmp = a.number < b.number ? -1 : (a.number > b.number ? 1 : 0);
      break;
    case Resolved::Kind::Text:
      cmp = a.text.compare(b.text) < 0 ? -1 : (a.text == b.text ? 0 : 1);
      break;
    case Resolved::Kind::Boolean:
      cmp = static_cast<int>(a.boolean) - static_cast<int>(b.boolean);
      break;
    default:
      return false;
  }
  switch (op) {
    case CmpOp::Eq: return cmp == 0;
    case CmpOp::Ne: return cmp != 0;
    case CmpOp::Lt: return cmp < 0;
    case CmpOp::Le: return cmp <= 0;
    case CmpOp::Gt: return cmp > 0;
    case CmpOp::Ge: return cmp >= 0;
  }
  return false;
}

}  // namespace

bool eval_node(const Node& n, const AttrMap& attrs) {
  switch (n.kind) {
    case NodeKind::True: return true;
    case NodeKind::False: return false;
    case NodeKind::And: return eval_node(*n.lhs, attrs) && eval_node(*n.rhs, attrs);
    case NodeKind::Or: return eval_node(*n.lhs, attrs) || eval_node(*n.rhs, attrs);
    case NodeKind::Not: return !eval_node(*n.lhs, attrs);
    case NodeKind::Exists: return attrs.count(n.attr) > 0;
    case NodeKind::Cmp:
      return compare(n.op, resolve_operand(n.a, attrs), resolve_operand(n.b, attrs));
    case NodeKind::In: {
      Resolved subject = resolve_operand(n.a, attrs);
      for (const Operand& member : n.set) {
        if (compare(CmpOp::Eq, subject, resolve_operand(member, attrs))) {
          return true;
        }
      }
      return false;
    }
  }
  return false;
}

void collect_attrs(const Node& n, std::set<std::string>& out) {
  switch (n.kind) {
    case NodeKind::And:
    case NodeKind::Or:
      collect_attrs(*n.lhs, out);
      collect_attrs(*n.rhs, out);
      return;
    case NodeKind::Not:
      collect_attrs(*n.lhs, out);
      return;
    case NodeKind::Exists:
      out.insert(n.attr);
      return;
    case NodeKind::Cmp:
      if (n.a.kind == Operand::Kind::Ident) out.insert(n.a.text);
      if (n.b.kind == Operand::Kind::Ident) out.insert(n.b.text);
      return;
    case NodeKind::In:
      if (n.a.kind == Operand::Kind::Ident) out.insert(n.a.text);
      for (const Operand& member : n.set) {
        if (member.kind == Operand::Kind::Ident) out.insert(member.text);
      }
      return;
    default:
      return;
  }
}

// ---- score evaluation (tree-walking reference) ----

double score_rank_key(double score) {
  return std::isnan(score) ? -std::numeric_limits<double>::infinity() : score;
}

namespace {

double eval_score_node(const ScoreNode& n, const AttrMap& attrs) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  switch (n.kind) {
    case ScoreNode::Kind::Const:
      return n.value;
    case ScoreNode::Kind::Attr: {
      auto it = attrs.find(n.attr);
      if (it == attrs.end()) return kNaN;
      switch (it->second.kind()) {
        case wire::ValueKind::Int:
          return static_cast<double>(it->second.as_int());
        case wire::ValueKind::Float:
          return it->second.as_real();
        default:
          return kNaN;
      }
    }
    case ScoreNode::Kind::Neg: return -eval_score_node(*n.lhs, attrs);
    case ScoreNode::Kind::Inv: return 1.0 / eval_score_node(*n.lhs, attrs);
    case ScoreNode::Kind::Abs: return std::fabs(eval_score_node(*n.lhs, attrs));
    case ScoreNode::Kind::Sqrt: return std::sqrt(eval_score_node(*n.lhs, attrs));
    case ScoreNode::Kind::Log: return std::log(eval_score_node(*n.lhs, attrs));
    case ScoreNode::Kind::Add:
      return eval_score_node(*n.lhs, attrs) + eval_score_node(*n.rhs, attrs);
    case ScoreNode::Kind::Sub:
      return eval_score_node(*n.lhs, attrs) - eval_score_node(*n.rhs, attrs);
    case ScoreNode::Kind::Mul:
      return eval_score_node(*n.lhs, attrs) * eval_score_node(*n.rhs, attrs);
    case ScoreNode::Kind::Div:
      return eval_score_node(*n.lhs, attrs) / eval_score_node(*n.rhs, attrs);
    case ScoreNode::Kind::Min: {
      // std::min/max would pass a NaN operand through (they pick the other
      // value); scoring wants NaN to poison the whole expression so a
      // missing attribute always ranks last.
      double l = eval_score_node(*n.lhs, attrs);
      double r = eval_score_node(*n.rhs, attrs);
      if (std::isnan(l) || std::isnan(r)) return kNaN;
      return std::min(l, r);
    }
    case ScoreNode::Kind::Max: {
      double l = eval_score_node(*n.lhs, attrs);
      double r = eval_score_node(*n.rhs, attrs);
      if (std::isnan(l) || std::isnan(r)) return kNaN;
      return std::max(l, r);
    }
  }
  return kNaN;
}

void collect_score_node_attrs(const ScoreNode& n, std::set<std::string>& out) {
  if (n.kind == ScoreNode::Kind::Attr) out.insert(n.attr);
  if (n.lhs) collect_score_node_attrs(*n.lhs, out);
  if (n.rhs) collect_score_node_attrs(*n.rhs, out);
}

}  // namespace

double eval_score(const ScoreIr& ir, const AttrMap& attrs) {
  double score = eval_score_node(*ir.expr, attrs);
  for (const PenaltyClause& clause : ir.penalties) {
    if (!eval_node(*clause.unless, attrs)) score -= clause.weight;
  }
  return score;
}

void collect_score_attrs(const ScoreIr& ir, std::set<std::string>& out) {
  if (ir.expr) collect_score_node_attrs(*ir.expr, out);
  for (const PenaltyClause& clause : ir.penalties) {
    if (clause.unless) collect_attrs(*clause.unless, out);
  }
}

// ---- parsing ----

namespace {

struct CTok {
  enum class Kind { Ident, Int, Float, String, AndAnd, OrOr, Not, LParen, RParen,
                    LBrace, RBrace, Comma, Eq, Ne, Lt, Le, Gt, Ge,
                    Plus, Minus, Star, Slash, End };
  Kind kind;
  std::string text;
  int column;
};

std::vector<CTok> lex(const std::string& s) {
  std::vector<CTok> toks;
  std::size_t i = 0;
  auto err = [&](const std::string& m) {
    throw ParseError("constraint: " + m, 1, static_cast<int>(i + 1));
  };
  while (i < s.size()) {
    char c = s[i];
    int col = static_cast<int>(i + 1);
    if (std::isspace(static_cast<unsigned char>(c))) { ++i; continue; }
    auto push = [&](CTok::Kind k, std::string text, std::size_t advance_by) {
      toks.push_back({k, std::move(text), col});
      i += advance_by;
    };
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < s.size() && (std::isalnum(static_cast<unsigned char>(s[j])) || s[j] == '_')) ++j;
      push(CTok::Kind::Ident, s.substr(i, j - i), j - i);
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      bool is_float = false;
      while (j < s.size() &&
             (std::isdigit(static_cast<unsigned char>(s[j])) || s[j] == '.')) {
        if (s[j] == '.') is_float = true;
        ++j;
      }
      push(is_float ? CTok::Kind::Float : CTok::Kind::Int, s.substr(i, j - i), j - i);
    } else if (c == '"' || c == '\'') {
      char quote = c;
      std::size_t j = i + 1;
      while (j < s.size() && s[j] != quote) ++j;
      if (j >= s.size()) err("unterminated string literal");
      push(CTok::Kind::String, s.substr(i + 1, j - i - 1), j - i + 1);
    } else if (c == '&' && i + 1 < s.size() && s[i + 1] == '&') {
      push(CTok::Kind::AndAnd, "&&", 2);
    } else if (c == '|' && i + 1 < s.size() && s[i + 1] == '|') {
      push(CTok::Kind::OrOr, "||", 2);
    } else if (c == '=' && i + 1 < s.size() && s[i + 1] == '=') {
      push(CTok::Kind::Eq, "==", 2);
    } else if (c == '!' && i + 1 < s.size() && s[i + 1] == '=') {
      push(CTok::Kind::Ne, "!=", 2);
    } else if (c == '<' && i + 1 < s.size() && s[i + 1] == '=') {
      push(CTok::Kind::Le, "<=", 2);
    } else if (c == '>' && i + 1 < s.size() && s[i + 1] == '=') {
      push(CTok::Kind::Ge, ">=", 2);
    } else if (c == '<') {
      push(CTok::Kind::Lt, "<", 1);
    } else if (c == '>') {
      push(CTok::Kind::Gt, ">", 1);
    } else if (c == '!') {
      push(CTok::Kind::Not, "!", 1);
    } else if (c == '+') {
      push(CTok::Kind::Plus, "+", 1);
    } else if (c == '-') {
      push(CTok::Kind::Minus, "-", 1);
    } else if (c == '*') {
      push(CTok::Kind::Star, "*", 1);
    } else if (c == '/') {
      push(CTok::Kind::Slash, "/", 1);
    } else if (c == '(') {
      push(CTok::Kind::LParen, "(", 1);
    } else if (c == ')') {
      push(CTok::Kind::RParen, ")", 1);
    } else if (c == '{') {
      push(CTok::Kind::LBrace, "{", 1);
    } else if (c == '}') {
      push(CTok::Kind::RBrace, "}", 1);
    } else if (c == ',') {
      push(CTok::Kind::Comma, ",", 1);
    } else {
      err(std::string("unexpected character '") + c + "'");
    }
  }
  toks.push_back({CTok::Kind::End, "", static_cast<int>(s.size() + 1)});
  return toks;
}

class ConstraintParser {
 public:
  explicit ConstraintParser(std::vector<CTok> toks) : toks_(std::move(toks)) {}

  std::unique_ptr<Node> parse() {
    auto node = parse_or();
    if (!at(CTok::Kind::End)) fail("trailing input after expression");
    return node;
  }

  ScoreIr parse_score_spec() {
    ScoreIr ir;
    ir.expr = parse_sexpr();
    while (at(CTok::Kind::Ident) && peek().text == "penalty") {
      advance();
      PenaltyClause clause;
      clause.weight = parse_signed_number("penalty weight");
      if (!(at(CTok::Kind::Ident) && peek().text == "unless")) {
        fail("expected 'unless' after penalty weight");
      }
      advance();
      if (!accept(CTok::Kind::LParen)) fail("expected '(' after 'unless'");
      clause.unless = parse_or();
      if (!accept(CTok::Kind::RParen)) {
        fail("expected ')' closing the penalty constraint");
      }
      ir.penalties.push_back(std::move(clause));
    }
    if (!at(CTok::Kind::End)) fail("trailing input after scoring expression");
    return ir;
  }

 private:
  const CTok& peek() const { return toks_[pos_]; }
  bool at(CTok::Kind k) const { return peek().kind == k; }
  const CTok& advance() { return toks_[pos_ == toks_.size() - 1 ? pos_ : pos_++]; }
  bool accept(CTok::Kind k) {
    if (at(k)) { advance(); return true; }
    return false;
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError("constraint: " + msg, 1, peek().column);
  }

  std::unique_ptr<Node> parse_or() {
    auto lhs = parse_and();
    while (accept(CTok::Kind::OrOr)) {
      auto node = std::make_unique<Node>();
      node->kind = NodeKind::Or;
      node->lhs = std::move(lhs);
      node->rhs = parse_and();
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<Node> parse_and() {
    auto lhs = parse_unary();
    while (accept(CTok::Kind::AndAnd)) {
      auto node = std::make_unique<Node>();
      node->kind = NodeKind::And;
      node->lhs = std::move(lhs);
      node->rhs = parse_unary();
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<Node> parse_unary() {
    if (accept(CTok::Kind::Not)) {
      auto node = std::make_unique<Node>();
      node->kind = NodeKind::Not;
      node->lhs = parse_unary();
      return node;
    }
    return parse_primary();
  }

  std::unique_ptr<Node> parse_primary() {
    if (accept(CTok::Kind::LParen)) {
      auto node = parse_or();
      if (!accept(CTok::Kind::RParen)) fail("expected ')'");
      return node;
    }
    if (at(CTok::Kind::Ident) && peek().text == "exists") {
      advance();
      if (!at(CTok::Kind::Ident)) fail("expected attribute name after 'exists'");
      auto node = std::make_unique<Node>();
      node->kind = NodeKind::Exists;
      node->attr = advance().text;
      return node;
    }
    // Bare true/false as a full expression.
    if (at(CTok::Kind::Ident) &&
        (peek().text == "true" || peek().text == "false") &&
        !is_cmp(toks_[pos_ + 1].kind)) {
      auto node = std::make_unique<Node>();
      node->kind = advance().text == "true" ? NodeKind::True : NodeKind::False;
      return node;
    }
    // Comparison or set membership.
    auto node = std::make_unique<Node>();
    node->a = parse_operand();
    if (at(CTok::Kind::Ident) && peek().text == "in") {
      advance();
      node->kind = NodeKind::In;
      if (!accept(CTok::Kind::LBrace)) fail("expected '{' after 'in'");
      if (at(CTok::Kind::RBrace)) fail("'in' set must not be empty");
      node->set.push_back(parse_operand());
      while (accept(CTok::Kind::Comma)) node->set.push_back(parse_operand());
      if (!accept(CTok::Kind::RBrace)) fail("expected '}' closing the 'in' set");
      return node;
    }
    node->kind = NodeKind::Cmp;
    switch (peek().kind) {
      case CTok::Kind::Eq: node->op = CmpOp::Eq; break;
      case CTok::Kind::Ne: node->op = CmpOp::Ne; break;
      case CTok::Kind::Lt: node->op = CmpOp::Lt; break;
      case CTok::Kind::Le: node->op = CmpOp::Le; break;
      case CTok::Kind::Gt: node->op = CmpOp::Gt; break;
      case CTok::Kind::Ge: node->op = CmpOp::Ge; break;
      default: fail("expected comparison operator");
    }
    advance();
    node->b = parse_operand();
    return node;
  }

  static bool is_cmp(CTok::Kind k) {
    return k == CTok::Kind::Eq || k == CTok::Kind::Ne || k == CTok::Kind::Lt ||
           k == CTok::Kind::Le || k == CTok::Kind::Gt || k == CTok::Kind::Ge;
  }

  Operand parse_operand() {
    Operand o;
    switch (peek().kind) {
      case CTok::Kind::Ident:
        o.kind = Operand::Kind::Ident;
        o.text = advance().text;
        return o;
      case CTok::Kind::Minus:
        // The lexer tokenises '-' separately (it is also a scoring-language
        // operator); numeric literals re-absorb it here.
        advance();
        if (at(CTok::Kind::Int)) {
          o.kind = Operand::Kind::Int;
          try {
            o.i = std::stoll("-" + peek().text);
          } catch (const std::out_of_range&) {
            fail("integer literal out of range");
          }
          advance();
          return o;
        }
        if (at(CTok::Kind::Float)) {
          o.kind = Operand::Kind::Float;
          o.f = -std::strtod(peek().text.c_str(), nullptr);
          advance();
          return o;
        }
        fail("expected numeric literal after '-'");
      case CTok::Kind::Int:
        o.kind = Operand::Kind::Int;
        try {
          o.i = std::stoll(peek().text);
        } catch (const std::out_of_range&) {
          fail("integer literal out of range");
        }
        advance();
        return o;
      case CTok::Kind::Float:
        o.kind = Operand::Kind::Float;
        // strtod saturates (±HUGE_VAL on overflow, ~0 on underflow)
        // instead of throwing like std::stod — a 400-digit literal must
        // surface as an infinity, never a std::out_of_range escaping the
        // parser.  (The lexer has no exponent notation, but plain decimals
        // can still overflow a double.)
        o.f = std::strtod(peek().text.c_str(), nullptr);
        advance();
        return o;
      case CTok::Kind::String:
        o.kind = Operand::Kind::String;
        o.text = advance().text;
        return o;
      default:
        fail("expected attribute name or literal");
    }
  }

  // ---- scoring expressions ----

  double parse_signed_number(const char* what) {
    bool neg = accept(CTok::Kind::Minus);
    if (!at(CTok::Kind::Int) && !at(CTok::Kind::Float)) {
      fail(std::string("expected numeric ") + what);
    }
    double v = std::strtod(peek().text.c_str(), nullptr);
    advance();
    return neg ? -v : v;
  }

  std::unique_ptr<ScoreNode> parse_sexpr() {
    auto lhs = parse_sterm();
    while (at(CTok::Kind::Plus) || at(CTok::Kind::Minus)) {
      auto kind = at(CTok::Kind::Plus) ? ScoreNode::Kind::Add : ScoreNode::Kind::Sub;
      advance();
      auto node = std::make_unique<ScoreNode>();
      node->kind = kind;
      node->lhs = std::move(lhs);
      node->rhs = parse_sterm();
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<ScoreNode> parse_sterm() {
    auto lhs = parse_sunary();
    while (at(CTok::Kind::Star) || at(CTok::Kind::Slash)) {
      auto kind = at(CTok::Kind::Star) ? ScoreNode::Kind::Mul : ScoreNode::Kind::Div;
      advance();
      auto node = std::make_unique<ScoreNode>();
      node->kind = kind;
      node->lhs = std::move(lhs);
      node->rhs = parse_sunary();
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<ScoreNode> parse_sunary() {
    if (accept(CTok::Kind::Minus)) {
      auto node = std::make_unique<ScoreNode>();
      node->kind = ScoreNode::Kind::Neg;
      node->lhs = parse_sunary();
      return node;
    }
    return parse_sprimary();
  }

  std::unique_ptr<ScoreNode> parse_sprimary() {
    if (accept(CTok::Kind::LParen)) {
      auto node = parse_sexpr();
      if (!accept(CTok::Kind::RParen)) fail("expected ')'");
      return node;
    }
    if (at(CTok::Kind::Int) || at(CTok::Kind::Float)) {
      auto node = std::make_unique<ScoreNode>();
      node->kind = ScoreNode::Kind::Const;
      node->value = std::strtod(peek().text.c_str(), nullptr);
      advance();
      return node;
    }
    if (at(CTok::Kind::Ident)) {
      const std::string name = peek().text;
      if (name == "penalty" || name == "unless") {
        fail("'" + name + "' is reserved in scoring expressions");
      }
      if (toks_[pos_ + 1].kind == CTok::Kind::LParen) {
        advance();  // function name
        advance();  // '('
        auto node = std::make_unique<ScoreNode>();
        if (name == "inv" || name == "abs" || name == "sqrt" || name == "log") {
          node->kind = name == "inv"   ? ScoreNode::Kind::Inv
                       : name == "abs" ? ScoreNode::Kind::Abs
                       : name == "sqrt" ? ScoreNode::Kind::Sqrt
                                        : ScoreNode::Kind::Log;
          node->lhs = parse_sexpr();
        } else if (name == "min" || name == "max") {
          node->kind = name == "min" ? ScoreNode::Kind::Min : ScoreNode::Kind::Max;
          node->lhs = parse_sexpr();
          if (!accept(CTok::Kind::Comma)) {
            fail("expected ',' between " + name + " arguments");
          }
          node->rhs = parse_sexpr();
        } else {
          fail("unknown function '" + name + "'");
        }
        if (!accept(CTok::Kind::RParen)) {
          fail("expected ')' closing '" + name + "'");
        }
        return node;
      }
      auto node = std::make_unique<ScoreNode>();
      node->kind = ScoreNode::Kind::Attr;
      node->attr = advance().text;
      return node;
    }
    fail("expected number, attribute, or '(' in scoring expression");
  }

  std::vector<CTok> toks_;
  std::size_t pos_ = 0;
};

// ---- index-hint extraction ----

CmpOp flip_cmp(CmpOp op) {
  switch (op) {
    case CmpOp::Lt: return CmpOp::Gt;
    case CmpOp::Le: return CmpOp::Ge;
    case CmpOp::Gt: return CmpOp::Lt;
    case CmpOp::Ge: return CmpOp::Le;
    default: return op;  // Eq/Ne are symmetric
  }
}

/// Emit a hint for `subject op key` when the subject is an identifier and
/// the key is literal-ish.  Bare-identifier keys are emitted but flagged:
/// per-offer resolution could turn them into attribute reads, so the store
/// only uses them against buckets where the name is not a schema attribute.
void try_emit_hint(const Operand& subject, CmpOp op, const Operand& key,
                   std::vector<IndexHint>& out) {
  if (subject.kind != Operand::Kind::Ident) return;
  if (subject.text == "true" || subject.text == "false") return;
  IndexHint hint;
  hint.attr = subject.text;
  if (op == CmpOp::Eq) {
    hint.kind = IndexHint::Kind::Equality;
    switch (key.kind) {
      case Operand::Kind::Int:
        hint.key_kind = IndexHint::KeyKind::Number;
        hint.number = static_cast<double>(key.i);
        break;
      case Operand::Kind::Float:
        hint.key_kind = IndexHint::KeyKind::Number;
        hint.number = key.f;
        break;
      case Operand::Kind::String:
        hint.key_kind = IndexHint::KeyKind::Text;
        hint.text = key.text;
        break;
      case Operand::Kind::Ident:
        if (key.text == "true" || key.text == "false") {
          hint.key_kind = IndexHint::KeyKind::Boolean;
          hint.boolean = key.text == "true";
        } else {
          hint.key_kind = IndexHint::KeyKind::Text;
          hint.text = key.text;
          hint.text_is_bare_ident = true;
        }
        break;
    }
    out.push_back(std::move(hint));
    return;
  }
  // Range: only numeric literal bounds index exactly (an identifier bound
  // could resolve to another attribute per offer).
  if (op == CmpOp::Ne) return;
  if (key.kind != Operand::Kind::Int && key.kind != Operand::Kind::Float) return;
  hint.kind = IndexHint::Kind::Range;
  hint.number = key.kind == Operand::Kind::Int ? static_cast<double>(key.i) : key.f;
  switch (op) {
    case CmpOp::Lt: hint.bound = IndexHint::Bound::Lt; break;
    case CmpOp::Le: hint.bound = IndexHint::Bound::Le; break;
    case CmpOp::Gt: hint.bound = IndexHint::Bound::Gt; break;
    case CmpOp::Ge: hint.bound = IndexHint::Bound::Ge; break;
    default: return;
  }
  out.push_back(std::move(hint));
}

/// Walk the top-level AND spine only: a conjunct there must hold for the
/// whole expression to hold, so narrowing by it is exact.  Anything under
/// Or/Not must not narrow.
void collect_index_hints(const Node* n, std::vector<IndexHint>& out) {
  if (n == nullptr) return;
  if (n->kind == NodeKind::And) {
    collect_index_hints(n->lhs.get(), out);
    collect_index_hints(n->rhs.get(), out);
    return;
  }
  if (n->kind != NodeKind::Cmp) return;
  try_emit_hint(n->a, n->op, n->b, out);
  try_emit_hint(n->b, flip_cmp(n->op), n->a, out);
}

bool is_blank(const std::string& text) {
  for (char ch : text) {
    if (!std::isspace(static_cast<unsigned char>(ch))) return false;
  }
  return true;
}

}  // namespace

ScoreIr parse_score(const std::string& text) {
  if (is_blank(text)) {
    throw ParseError("constraint: empty scoring expression", 1, 1);
  }
  return ConstraintParser(lex(text)).parse_score_spec();
}

}  // namespace detail

Constraint::Constraint() = default;
Constraint::~Constraint() = default;
Constraint::Constraint(Constraint&&) noexcept = default;
Constraint& Constraint::operator=(Constraint&&) noexcept = default;

Constraint Constraint::parse(const std::string& text) {
  Constraint c;
  c.text_ = text;
  bool blank = true;
  for (char ch : text) {
    if (!std::isspace(static_cast<unsigned char>(ch))) blank = false;
  }
  if (blank) return c;
  c.root_ = detail::ConstraintParser(detail::lex(text)).parse();
  detail::collect_index_hints(c.root_.get(), c.hints_);
  return c;
}

bool Constraint::eval(const AttrMap& attrs) const {
  return root_ == nullptr || detail::eval_node(*root_, attrs);
}

std::vector<std::string> Constraint::referenced_attributes() const {
  std::set<std::string> set;
  if (root_) detail::collect_attrs(*root_, set);
  return {set.begin(), set.end()};
}

ConstraintCache::ConstraintCache(std::size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const CompiledConstraint> ConstraintCache::build(
    const std::string& text, std::uint64_t layout_epoch,
    const std::shared_ptr<const std::unordered_set<std::string>>& declared) {
  auto t0 = std::chrono::steady_clock::now();
  auto compiled = std::make_shared<CompiledConstraint>();
  compiled->constraint = Constraint::parse(text);
  cexpr::FoldEnv env;
  env.declared = declared.get();
  compiled->filter = cexpr::compile_filter(compiled->constraint.root(), env);
  compiled->layout_epoch = layout_epoch;
  auto dt = std::chrono::steady_clock::now() - t0;
  compile_ns_.fetch_add(
      std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count(),
      std::memory_order_relaxed);
  return compiled;
}

std::shared_ptr<const Constraint> ConstraintCache::get(const std::string& text) {
  auto compiled = get_compiled(text, 0, nullptr);
  // Aliasing pointer: same control block, so repeated lookups of a cached
  // entry still compare pointer-equal.
  return std::shared_ptr<const Constraint>(compiled, &compiled->constraint);
}

std::shared_ptr<const CompiledConstraint> ConstraintCache::get_compiled(
    const std::string& text, std::uint64_t layout_epoch,
    std::shared_ptr<const std::unordered_set<std::string>> declared) {
  {
    std::lock_guard lock(mutex_);
    auto it = entries_.find(text);
    if (it != entries_.end() &&
        it->second.compiled->layout_epoch == layout_epoch) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.compiled;
    }
  }
  // Parse + compile outside the lock: compilation is the expensive part,
  // and two threads racing on the same text just means one redundant build.
  auto compiled = build(text, layout_epoch, declared);
  misses_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(mutex_);
  if (capacity_ == 0) return compiled;
  auto it = entries_.find(text);
  if (it != entries_.end()) {
    if (it->second.compiled->layout_epoch == layout_epoch) {
      return it->second.compiled;  // lost the race to an equivalent build
    }
    // Stale layout epoch: replace in place.
    evictions_.fetch_add(1, std::memory_order_relaxed);
    it->second.compiled = compiled;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return compiled;
  }
  lru_.push_front(text);
  entries_.emplace(text, Entry{compiled, lru_.begin()});
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return compiled;
}

void ConstraintCache::set_capacity(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  capacity_ = capacity;
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t ConstraintCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

}  // namespace cosm::trader
