#include "naming/interface_repository.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "sidl/parser.h"

namespace cosm::naming {
namespace {

sidl::SidPtr sid(const std::string& text) {
  return std::make_shared<sidl::Sid>(sidl::parse_sid(text));
}

TEST(InterfaceRepository, PutAndGetLatest) {
  InterfaceRepository repo;
  repo.put("svc-1", sid("module A { interface I { void Op(); }; };"));
  EXPECT_EQ(repo.get("svc-1")->name, "A");
  EXPECT_TRUE(repo.has("svc-1"));
}

TEST(InterfaceRepository, VersionHistoryOldestFirst) {
  InterfaceRepository repo;
  repo.put("svc-1", sid("module A { interface I { void Op(); }; };"));
  repo.put("svc-1", sid("module A { interface I { void Op(); void Op2(); }; };"));
  auto history = repo.history("svc-1");
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0]->operations.size(), 1u);
  EXPECT_EQ(history[1]->operations.size(), 2u);
  EXPECT_EQ(repo.get("svc-1")->operations.size(), 2u);
}

TEST(InterfaceRepository, GetUnknownThrows) {
  InterfaceRepository repo;
  EXPECT_THROW(repo.get("ghost"), NotFound);
  EXPECT_TRUE(repo.history("ghost").empty());
}

TEST(InterfaceRepository, RemoveDropsAllVersions) {
  InterfaceRepository repo;
  repo.put("svc-1", sid("module A { interface I { void Op(); }; };"));
  repo.remove("svc-1");
  EXPECT_FALSE(repo.has("svc-1"));
  EXPECT_THROW(repo.remove("svc-1"), NotFound);
}

TEST(InterfaceRepository, RejectsNullAndInvalid) {
  InterfaceRepository repo;
  EXPECT_THROW(repo.put("x", nullptr), ContractError);
  EXPECT_THROW(repo.put("", sid("module A { };")), ContractError);
  // An ill-formed SID (FSM referencing a ghost op) is rejected on admission.
  auto bad = sid(R"(
    module B {
      interface I { void Op(); };
      module COSM_FSM { states { S }; initial S; transition S Ghost S; };
    };
  )");
  EXPECT_THROW(repo.put("x", bad), TypeError);
}

TEST(InterfaceRepository, IdsSorted) {
  InterfaceRepository repo;
  repo.put("zz", sid("module A { };"));
  repo.put("aa", sid("module B { };"));
  auto ids = repo.ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "aa");
  EXPECT_EQ(repo.size(), 2u);
}

TEST(InterfaceRepository, ConformingToQuery) {
  InterfaceRepository repo;
  repo.put("browserish", sid(R"(
    module B1 { interface I { sequence<string> List(); SID Describe([in] string n); }; };
  )"));
  repo.put("other", sid("module O { interface I { void Op(); }; };"));

  sidl::Sid base = sidl::parse_sid(
      "module Base { interface I { sequence<string> List(); }; };");
  auto hits = repo.conforming_to(base);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], "browserish");
}

TEST(InterfaceRepository, ConformingToUsesLatestVersion) {
  InterfaceRepository repo;
  repo.put("svc", sid("module S { interface I { void Op(); }; };"));
  sidl::Sid base = sidl::parse_sid("module B { interface I { void Newer(); }; };");
  EXPECT_TRUE(repo.conforming_to(base).empty());
  repo.put("svc", sid("module S { interface I { void Op(); void Newer(); }; };"));
  EXPECT_EQ(repo.conforming_to(base).size(), 1u);
}

}  // namespace
}  // namespace cosm::naming
