#include "rpc/retry.h"

#include <algorithm>
#include <cmath>

namespace cosm::rpc {

std::chrono::milliseconds RetryPolicy::backoff_for(int attempt, Rng& rng) const {
  if (attempt < 1) attempt = 1;
  double nominal = static_cast<double>(initial_backoff.count()) *
                   std::pow(multiplier, attempt - 1);
  nominal = std::min(nominal, static_cast<double>(max_backoff.count()));
  double j = std::clamp(jitter, 0.0, 1.0);
  double factor = 1.0 - j + 2.0 * j * rng.uniform();
  auto ms = static_cast<std::int64_t>(nominal * factor);
  // A jitter factor near 0 (e.g. jitter=1.0 with an unlucky draw) would
  // truncate a nonzero nominal backoff to 0 ms — a hot zero-delay retry
  // loop.  Floor the jittered sleep at 1 ms whenever backoff was asked for.
  if (nominal > 0.0 && ms < 1) ms = 1;
  return std::chrono::milliseconds(std::max<std::int64_t>(ms, 0));
}

RetryPolicy RetryPolicy::standard() {
  RetryPolicy policy;
  policy.max_attempts = 3;
  return policy;
}

RetryPolicy RetryPolicy::transport() {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::milliseconds(1);
  policy.max_backoff = std::chrono::milliseconds(20);
  policy.only_idempotent = false;
  return policy;
}

}  // namespace cosm::rpc
