#include "wire/codec.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "sidl/parser.h"
#include "support/generators.h"

namespace cosm::wire {
namespace {

Value round_trip(const Value& v) { return decode_value(encode_value(v)); }

TEST(Codec, ScalarsRoundTrip) {
  for (const Value& v :
       {Value::null(), Value::boolean(true), Value::boolean(false),
        Value::integer(0), Value::integer(-123456789), Value::real(2.75),
        Value::string(""), Value::string("hello world")}) {
    EXPECT_EQ(round_trip(v), v);
  }
}

TEST(Codec, EnumRoundTrip) {
  Value e = Value::enumerated("CarModel_t", "FIAT_Uno");
  EXPECT_EQ(round_trip(e), e);
}

TEST(Codec, NestedStructureRoundTrip) {
  Value v = Value::structure(
      "Outer",
      {{"list", Value::sequence({Value::integer(1), Value::integer(2)})},
       {"inner", Value::structure("Inner", {{"s", Value::string("x")}})},
       {"maybe", Value::optional_of(Value::real(1.5))},
       {"none", Value::optional_absent()}});
  EXPECT_EQ(round_trip(v), v);
}

TEST(Codec, ServiceRefRoundTrip) {
  sidl::ServiceRef ref{"svc-9", "tcp://127.0.0.1:1234", "WeatherOracle"};
  EXPECT_EQ(round_trip(Value::service_ref(ref)).as_ref(), ref);
}

TEST(Codec, SidTravelsInSourceFormAndReparses) {
  auto sid = std::make_shared<sidl::Sid>(sidl::parse_sid(R"(
    module M {
      typedef enum { A, B } E_t;
      interface I { E_t Op([in] string s); };
      module Unknown_Ext { const long X = 1; };
    };
  )"));
  Value decoded = round_trip(Value::sid(sid));
  EXPECT_EQ(*decoded.as_sid(), *sid);
  // The unknown extension survived the wire hop.
  ASSERT_EQ(decoded.as_sid()->unknown_extensions.size(), 1u);
  EXPECT_EQ(decoded.as_sid()->unknown_extensions[0].name, "Unknown_Ext");
}

TEST(Codec, EmptySequenceAndEmptyStruct) {
  EXPECT_EQ(round_trip(Value::sequence({})), Value::sequence({}));
  EXPECT_EQ(round_trip(Value::structure("S", {})), Value::structure("S", {}));
}

TEST(Codec, TrailingBytesRejected) {
  Bytes b = encode_value(Value::integer(5));
  b.push_back(0);
  EXPECT_THROW(decode_value(b), WireError);
}

TEST(Codec, UnknownTagRejected) {
  Bytes b = {0xEE};
  EXPECT_THROW(decode_value(b), WireError);
}

TEST(Codec, TruncatedStructRejected) {
  Bytes b = encode_value(Value::structure("S", {{"x", Value::integer(1)}}));
  b.resize(b.size() - 1);
  EXPECT_THROW(decode_value(b), WireError);
}

TEST(Codec, EmptyInputRejected) {
  EXPECT_THROW(decode_value(Bytes{}), WireError);
}

TEST(Codec, MalformedSidPayloadRejected) {
  ByteWriter w;
  w.u8(12);  // kSid tag
  w.str("module Broken {");
  EXPECT_THROW(decode_value(w.bytes()), WireError);
}

TEST(Codec, EnumWithEmptyLabelRejected) {
  ByteWriter w;
  w.u8(6);  // kEnum tag
  w.str("E");
  w.str("");
  EXPECT_THROW(decode_value(w.bytes()), WireError);
}

TEST(Codec, StreamsMultipleValuesSequentially) {
  ByteWriter w;
  encode_value(w, Value::integer(1));
  encode_value(w, Value::string("two"));
  ByteReader r(w.bytes());
  EXPECT_EQ(decode_value(r).as_int(), 1);
  EXPECT_EQ(decode_value(r).as_string(), "two");
  EXPECT_TRUE(r.at_end());
}

/// Property: encode/decode is the identity over random typed values.
class CodecRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecRoundTrip, RandomValuesSurvive) {
  cosm::Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    auto type = cosm::testing::random_type(rng);
    Value v = cosm::testing::random_value(rng, *type);
    EXPECT_EQ(round_trip(v), v) << v.to_debug_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTrip,
                         ::testing::Values(7, 11, 13, 17, 19, 23, 29, 31));

}  // namespace
}  // namespace cosm::wire
