
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sidl/lexer.cpp" "src/sidl/CMakeFiles/cosm_sidl.dir/lexer.cpp.o" "gcc" "src/sidl/CMakeFiles/cosm_sidl.dir/lexer.cpp.o.d"
  "/root/repo/src/sidl/literal.cpp" "src/sidl/CMakeFiles/cosm_sidl.dir/literal.cpp.o" "gcc" "src/sidl/CMakeFiles/cosm_sidl.dir/literal.cpp.o.d"
  "/root/repo/src/sidl/parser.cpp" "src/sidl/CMakeFiles/cosm_sidl.dir/parser.cpp.o" "gcc" "src/sidl/CMakeFiles/cosm_sidl.dir/parser.cpp.o.d"
  "/root/repo/src/sidl/printer.cpp" "src/sidl/CMakeFiles/cosm_sidl.dir/printer.cpp.o" "gcc" "src/sidl/CMakeFiles/cosm_sidl.dir/printer.cpp.o.d"
  "/root/repo/src/sidl/service_ref.cpp" "src/sidl/CMakeFiles/cosm_sidl.dir/service_ref.cpp.o" "gcc" "src/sidl/CMakeFiles/cosm_sidl.dir/service_ref.cpp.o.d"
  "/root/repo/src/sidl/sid.cpp" "src/sidl/CMakeFiles/cosm_sidl.dir/sid.cpp.o" "gcc" "src/sidl/CMakeFiles/cosm_sidl.dir/sid.cpp.o.d"
  "/root/repo/src/sidl/type_desc.cpp" "src/sidl/CMakeFiles/cosm_sidl.dir/type_desc.cpp.o" "gcc" "src/sidl/CMakeFiles/cosm_sidl.dir/type_desc.cpp.o.d"
  "/root/repo/src/sidl/validate.cpp" "src/sidl/CMakeFiles/cosm_sidl.dir/validate.cpp.o" "gcc" "src/sidl/CMakeFiles/cosm_sidl.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
