file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_properties.dir/test_dynamic_properties.cpp.o"
  "CMakeFiles/test_dynamic_properties.dir/test_dynamic_properties.cpp.o.d"
  "test_dynamic_properties"
  "test_dynamic_properties.pdb"
  "test_dynamic_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
