#include <gtest/gtest.h>

#include "common/error.h"
#include "core/generic_client.h"
#include "rpc/inproc.h"
#include "rpc/server.h"
#include "services/car_rental.h"
#include "services/image_conversion.h"
#include "services/market.h"
#include "services/stock_quote.h"
#include "services/weather.h"
#include "sidl/parser.h"

namespace cosm::services {
namespace {

using wire::Value;

class ServicesTest : public ::testing::Test {
 protected:
  ServicesTest() : server(net, "host"), client(net) {}
  rpc::InProcNetwork net;
  rpc::RpcServer server;
  core::GenericClient client;
};

// --- car rental ---

TEST_F(ServicesTest, CarRentalQuoteAndBook) {
  auto ref = server.add(make_car_rental_service({}));
  core::Binding rental = client.bind(ref);

  Value quote = rental.invoke(
      "SelectCar",
      {Value::structure("SelectCar_t",
                        {{"model", Value::enumerated("CarModel_t", "VW_Golf")},
                         {"booking_date", Value::string("1994-06-21")},
                         {"days", Value::integer(3)}})});
  EXPECT_TRUE(quote.at("available").as_bool());
  EXPECT_DOUBLE_EQ(quote.at("total_charge").as_real(), 240.0);  // 3 * 80

  Value booking = rental.invoke(
      "BookCar",
      {Value::structure("BookCar_t",
                        {{"offer_code", quote.at("offer_code")},
                         {"customer", Value::string("K. Mueller")}})});
  EXPECT_TRUE(booking.at("confirmed").as_bool());
  EXPECT_GT(booking.at("booking_id").as_int(), 0);
}

TEST_F(ServicesTest, CarRentalRejectsNonPositiveDays) {
  auto ref = server.add(make_car_rental_service({}));
  core::Binding rental = client.bind(ref);
  Value quote = rental.invoke(
      "SelectCar",
      {Value::structure("SelectCar_t",
                        {{"model", Value::enumerated("CarModel_t", "AUDI")},
                         {"booking_date", Value::string("x")},
                         {"days", Value::integer(0)}})});
  EXPECT_FALSE(quote.at("available").as_bool());
  EXPECT_TRUE(quote.at("offer_code").as_string().empty());
}

TEST_F(ServicesTest, CarRentalBookingWithBogusOfferCodeFails) {
  auto ref = server.add(make_car_rental_service({}));
  core::Binding rental = client.bind(ref);
  rental.invoke("SelectCar",
                {Value::structure(
                    "SelectCar_t",
                    {{"model", Value::enumerated("CarModel_t", "AUDI")},
                     {"booking_date", Value::string("x")},
                     {"days", Value::integer(1)}})});
  Value booking = rental.invoke(
      "BookCar", {Value::structure("BookCar_t",
                                   {{"offer_code", Value::string("forged")},
                                    {"customer", Value::string("x")}})});
  EXPECT_FALSE(booking.at("confirmed").as_bool());
}

TEST_F(ServicesTest, CarRentalFleetDepletes) {
  CarRentalConfig config;
  config.models = {"AUDI"};
  config.fleet_per_model = 1;
  auto ref = server.add(make_car_rental_service(config));
  core::Binding rental = client.bind(ref);

  auto book_once = [&](bool expect_ok) {
    Value quote = rental.invoke(
        "SelectCar",
        {Value::structure("SelectCar_t",
                          {{"model", Value::enumerated("CarModel_t", "AUDI")},
                           {"booking_date", Value::string("d")},
                           {"days", Value::integer(1)}})});
    if (!expect_ok && !quote.at("available").as_bool()) return;  // sold out
    Value booking = rental.invoke(
        "BookCar", {Value::structure("BookCar_t",
                                     {{"offer_code", quote.at("offer_code")},
                                      {"customer", Value::string("c")}})});
    EXPECT_EQ(booking.at("confirmed").as_bool(), expect_ok);
  };
  book_once(true);
  book_once(false);  // fleet exhausted
}

TEST_F(ServicesTest, CarRentalFsmEnforced) {
  auto ref = server.add(make_car_rental_service({}));
  core::Binding rental = client.bind(ref);
  EXPECT_EQ(rental.state(), "INIT");
  // BookCar before SelectCar is rejected locally.
  EXPECT_THROW(rental.invoke("BookCar",
                             {Value::structure(
                                 "BookCar_t",
                                 {{"offer_code", Value::string("x")},
                                  {"customer", Value::string("y")}})}),
               ProtocolError);
  // ListModels is unrestricted.
  EXPECT_NO_THROW(rental.invoke("ListModels", {}));
}

TEST(CarRentalSidl, GeneratedTextParsesAndValidates) {
  CarRentalConfig config;
  config.tradable = true;
  config.extra_fields = 2;
  config.charge_per_day = 65.5;
  sidl::Sid sid = sidl::parse_sid(car_rental_sidl(config));
  EXPECT_EQ(sid.name, "CarRentalService");
  ASSERT_TRUE(sid.trader_export.has_value());
  EXPECT_DOUBLE_EQ(sid.trader_export->find("ChargePerDay")->as_float(), 65.5);
  ASSERT_TRUE(sid.fsm.has_value());
  // Extra fields present as optionals (record-subtype drift).
  auto select = sid.find_type("SelectCar_t");
  EXPECT_EQ(select->fields().size(), 5u);
  EXPECT_THROW(car_rental_sidl(CarRentalConfig{.models = {}}), ContractError);
}

TEST(CarRentalSidl, CanonicalTypeCoversGeneratedProviders) {
  trader::ServiceType canonical = canonical_car_rental_type();
  EXPECT_EQ(canonical.name, car_rental_service_type_name());
  EXPECT_EQ(canonical.attributes.size(), 4u);
  for (const auto& model : car_model_pool()) {
    EXPECT_GE(canonical.find_attribute("CarModel")->type->label_index(model), 0);
  }
}

// --- weather ---

TEST_F(ServicesTest, WeatherDeterministicPerSeed) {
  auto ref = server.add(make_weather_service({"W", 7}));
  core::Binding weather = client.bind(ref);
  Value f1 = weather.invoke("GetForecast",
                            {Value::string("Hamburg"), Value::integer(2)});
  Value f2 = weather.invoke("GetForecast",
                            {Value::string("Hamburg"), Value::integer(2)});
  EXPECT_EQ(f1, f2);
  Value other = weather.invoke("GetForecast",
                               {Value::string("Paris"), Value::integer(2)});
  EXPECT_EQ(other.at("city").as_string(), "Paris");
  EXPECT_FALSE(weather.invoke("Cities", {}).elements().empty());
}

// --- stock quote ---

TEST_F(ServicesTest, StockQuoteRequiresLogin) {
  auto ref = server.add(make_stock_quote_service({}));
  core::Binding ticker = client.bind(ref);
  EXPECT_THROW(ticker.invoke("GetQuote", {Value::string("IBM")}), ProtocolError);
  EXPECT_TRUE(ticker.invoke("Login", {Value::string("u")}).as_bool());
  Value quote = ticker.invoke("GetQuote", {Value::string("IBM")});
  EXPECT_GT(quote.at("price").as_real(), 0.0);
  // Same symbol, same seed => same quote (deterministic market).
  EXPECT_EQ(ticker.invoke("GetQuote", {Value::string("IBM")}), quote);
}

// --- image conversion ---

TEST(ImageConversion, ConvertSwapsAlphabet) {
  EXPECT_EQ(convert_image_data("%%..%", "PGM", "XBM"), "@@..@");
  EXPECT_EQ(convert_image_data("###", "PBM", "PBM"), "###");
  EXPECT_THROW(convert_image_data("x", "JPEG", "PBM"), ContractError);
}

TEST_F(ServicesTest, ImageServerServesDeterministicImages) {
  ImageServerConfig config;
  config.width = 8;
  config.height = 2;
  auto ref = server.add(make_image_server(config));
  core::Binding archive = client.bind(ref);
  Value img = archive.invoke("GetImage", {Value::string("lena")});
  EXPECT_EQ(img.at("format").as_string(), "PGM");
  EXPECT_EQ(img.at("data").as_string().size(), 16u);
  EXPECT_EQ(archive.invoke("GetImage", {Value::string("lena")}), img);
}

TEST_F(ServicesTest, ConverterChainsToUpstream) {
  ImageServerConfig archive_config;
  archive_config.width = 4;
  archive_config.height = 1;
  auto archive_ref = server.add(make_image_server(archive_config));
  auto converter_ref =
      server.add(make_format_converter(net, archive_ref, {}));

  core::Binding converter = client.bind(converter_ref);
  Value converted = converter.invoke(
      "GetImageAs", {Value::string("lena"), Value::string("XBM")});
  EXPECT_EQ(converted.at("format").as_string(), "XBM");
  EXPECT_EQ(converted.at("data").as_string().find('%'), std::string::npos);

  // The chain is discoverable.
  Value upstream = converter.invoke("Upstream", {});
  EXPECT_EQ(upstream.as_ref().id, archive_ref.id);
}

// --- market generator ---

TEST(Market, DeterministicPerSeed) {
  MarketConfig config;
  config.providers = 10;
  config.seed = 99;
  auto a = generate_market(config);
  auto b = generate_market(config);
  ASSERT_EQ(a.size(), 10u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].models, b[i].models);
    EXPECT_DOUBLE_EQ(a[i].charge_per_day, b[i].charge_per_day);
    EXPECT_EQ(a[i].currency, b[i].currency);
  }
  config.seed = 100;
  auto c = generate_market(config);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].charge_per_day != c[i].charge_per_day) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Market, RespectsBounds) {
  MarketConfig config;
  config.providers = 50;
  config.tradable_fraction = 1.0;
  config.max_extra_fields = 2;
  for (const auto& p : generate_market(config)) {
    EXPECT_FALSE(p.models.empty());
    EXPECT_GE(p.charge_per_day, 30.0);
    EXPECT_LT(p.charge_per_day, 150.0);
    EXPECT_TRUE(p.tradable);
    EXPECT_LE(p.extra_fields, 2);
    EXPECT_GE(p.fleet_per_model, 5);
    // Models drawn without replacement: no duplicates.
    std::set<std::string> unique(p.models.begin(), p.models.end());
    EXPECT_EQ(unique.size(), p.models.size());
  }
}

TEST(Market, TradableFractionZero) {
  MarketConfig config;
  config.providers = 20;
  config.tradable_fraction = 0.0;
  for (const auto& p : generate_market(config)) EXPECT_FALSE(p.tradable);
}

TEST(Market, GeneratedProvidersProduceValidSidl) {
  MarketConfig config;
  config.providers = 8;
  for (const auto& p : generate_market(config)) {
    EXPECT_NO_THROW(sidl::parse_sid(car_rental_sidl(p))) << p.name;
  }
}

// --- establishment model (§2.2) ---

TEST(Establishment, TraderPathDominatedByStandardisation) {
  EstablishmentModel model;
  auto fresh = trader_path_establishment(model, 3, 1, false);
  auto mature = trader_path_establishment(model, 3, 1, true);
  EXPECT_GT(fresh.total_hours(), mature.total_hours());
  EXPECT_GE(fresh.total_hours(), model.type_standardisation_hours);
}

TEST(Establishment, FederationMultipliesRegistration) {
  EstablishmentModel model;
  auto one = trader_path_establishment(model, 3, 1, true);
  auto five = trader_path_establishment(model, 3, 5, true);
  EXPECT_EQ(five.total_hours() - one.total_hours(),
            model.type_registration_hours * 4);
}

TEST(Establishment, MediationPathIsOrdersOfMagnitudeFaster) {
  EstablishmentModel model;
  auto trader_path = trader_path_establishment(model, 3, 1, false);
  auto mediation = mediation_path_establishment(model);
  EXPECT_GT(trader_path.total_hours(), 100 * mediation.total_hours());
  EXPECT_EQ(mediation.phases.size(), 2u);
}

}  // namespace
}  // namespace cosm::services
