// First-class service references (§3.2).
//
// A ServiceRef globally identifies a service instance and is a SIDL *base
// type*: references travel as RPC parameters and return values, which is
// what enables the Fig. 4 binding cascade (a browse result carries
// references that seed further bindings).

#pragma once

#include <string>

namespace cosm::sidl {

struct ServiceRef {
  /// Globally unique service instance id (e.g. "svc-42").
  std::string id;
  /// Transport endpoint, e.g. "inproc://carrental-1" or "tcp://127.0.0.1:9901".
  std::string endpoint;
  /// Name of the service's SID module, e.g. "CarRentalService".
  std::string interface_name;

  bool valid() const noexcept { return !id.empty() && !endpoint.empty(); }

  bool operator==(const ServiceRef&) const = default;

  /// "id|endpoint|interface" — the wire form.
  std::string to_string() const { return id + "|" + endpoint + "|" + interface_name; }

  /// Inverse of to_string(); throws cosm::WireError on malformed input.
  static ServiceRef from_string(const std::string& s);
};

}  // namespace cosm::sidl
