#include "rpc/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/error.h"
#include "common/id.h"
#include "obs/metrics.h"

namespace cosm::rpc {

namespace {

/// At most this many pooled connections per endpoint; beyond it calls share
/// (multiplex over) the least-loaded connection.
constexpr std::size_t kMaxConnsPerEndpoint = 16;

/// Read exactly n bytes; returns false on orderly EOF at a frame boundary,
/// throws on mid-frame EOF or socket error.
bool read_exact(int fd, std::uint8_t* buf, std::size_t n, bool allow_eof_at_start) {
  std::size_t got = 0;
  while (got < n) {
    ssize_t r = ::read(fd, buf + got, n - got);
    if (r == 0) {
      if (got == 0 && allow_eof_at_start) return false;
      throw RpcError("tcp: connection closed mid-frame");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      throw RpcError(std::string("tcp: read failed: ") + std::strerror(errno));
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void write_exact(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that closed mid-write must surface as EPIPE, not
    // kill the process with SIGPIPE (the server closes idle connections).
    ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw RpcError(std::string("tcp: write failed: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(r);
  }
}

/// Frame: [u32 payload length][u64 correlation id][payload bytes].
void write_frame(int fd, std::uint64_t corr, const Bytes& payload) {
  std::uint8_t header[12];
  std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) header[i] = static_cast<std::uint8_t>(len >> (8 * i));
  for (int i = 0; i < 8; ++i) header[4 + i] = static_cast<std::uint8_t>(corr >> (8 * i));
  write_exact(fd, header, sizeof(header));
  if (!payload.empty()) write_exact(fd, payload.data(), payload.size());
}

bool read_frame(int fd, std::uint64_t& corr, Bytes& out, bool allow_eof_at_start) {
  std::uint8_t header[12];
  if (!read_exact(fd, header, sizeof(header), allow_eof_at_start)) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  corr = 0;
  for (int i = 0; i < 8; ++i) corr |= static_cast<std::uint64_t>(header[4 + i]) << (8 * i);
  constexpr std::uint32_t kMaxFrame = 64u << 20;  // 64 MiB sanity bound
  if (len > kMaxFrame) throw RpcError("tcp: frame exceeds 64 MiB bound");
  out.resize(len);
  if (len > 0) read_exact(fd, out.data(), len, false);
  return true;
}

/// Parse the port digits of an endpoint; throws RpcError (never std::stoi's
/// std::invalid_argument / std::out_of_range) on anything but 1..65535.
int parse_port(const std::string& digits, const std::string& endpoint) {
  if (digits.empty() || digits.size() > 5) {
    throw RpcError("tcp: bad port in endpoint '" + endpoint + "'");
  }
  int port = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      throw RpcError("tcp: bad port in endpoint '" + endpoint + "'");
    }
    port = port * 10 + (c - '0');
  }
  if (port < 1 || port > 65535) {
    throw RpcError("tcp: port out of range in endpoint '" + endpoint + "'");
  }
  return port;
}

int connect_loopback(const std::string& endpoint) {
  constexpr const char* kPrefix = "tcp://";
  if (endpoint.rfind(kPrefix, 0) != 0) {
    throw RpcError("tcp: bad endpoint '" + endpoint + "'");
  }
  std::string hostport = endpoint.substr(std::strlen(kPrefix));
  auto colon = hostport.rfind(':');
  if (colon == std::string::npos) {
    throw RpcError("tcp: endpoint missing port: '" + endpoint + "'");
  }
  std::string host = hostport.substr(0, colon);
  // Parse before any fd exists so a malformed port cannot leak a socket.
  int port = parse_port(hostport.substr(colon + 1), endpoint);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw RpcError(std::string("tcp: socket failed: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw RpcError("tcp: bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int err = errno;
    ::close(fd);
    throw RpcError("tcp: connect to " + endpoint + " failed: " + std::strerror(err));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

// ---------------------------------------------------------------------------
// Client connection: persistent socket + reader thread + pending map.

struct TcpNetwork::ClientConn {
  int fd = -1;
  std::mutex write_mutex;
  std::mutex pending_mutex;
  std::map<std::uint64_t, PendingCallPtr> pending;
  std::atomic<std::size_t> in_flight{0};
  std::atomic<bool> dead{false};
  std::thread reader;

  void register_pending(std::uint64_t corr, const PendingCallPtr& call) {
    std::lock_guard lock(pending_mutex);
    pending.emplace(corr, call);
    in_flight.fetch_add(1, std::memory_order_relaxed);
  }

  PendingCallPtr take_pending(std::uint64_t corr) {
    std::lock_guard lock(pending_mutex);
    auto it = pending.find(corr);
    if (it == pending.end()) return nullptr;
    PendingCallPtr call = std::move(it->second);
    pending.erase(it);
    in_flight.fetch_sub(1, std::memory_order_relaxed);
    return call;
  }

  void fail_all(std::exception_ptr error) {
    std::map<std::uint64_t, PendingCallPtr> orphans;
    {
      std::lock_guard lock(pending_mutex);
      orphans.swap(pending);
      in_flight.store(0, std::memory_order_relaxed);
    }
    for (auto& [corr, call] : orphans) call->fail(error);
  }

  /// Reader: settles pendings by correlation id until the socket dies.
  /// Responses for abandoned (timed-out) calls are settled too — their
  /// waiters are gone, so the result is simply dropped.
  void reader_loop() {
    try {
      for (;;) {
        std::uint64_t corr = 0;
        Bytes response;
        if (!read_frame(fd, corr, response, /*allow_eof_at_start=*/true)) break;
        if (PendingCallPtr call = take_pending(corr)) {
          call->complete(std::move(response));
        }
      }
      dead.store(true);
      fail_all(std::make_exception_ptr(RpcError("tcp: server closed connection")));
    } catch (const Error&) {
      dead.store(true);
      fail_all(std::current_exception());
    }
  }

  void shutdown_and_join() {
    dead.store(true);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    if (reader.joinable()) reader.join();
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }

  ~ClientConn() { shutdown_and_join(); }
};

// ---------------------------------------------------------------------------
// Server listener: accept loop + one serving thread per connection.

struct TcpNetwork::Listener {
  /// One accepted connection: its socket and the thread serving it.  The
  /// serving thread closes the fd itself (under conn_mutex, so stop()'s
  /// shutdown can never race a close and hit a recycled descriptor), reaps
  /// *other* finished entries, and only then raises `done`; the accept loop
  /// reaps before every new accept as well.  A long-lived server therefore
  /// holds O(live connections) threads even when no further connections
  /// arrive — the seed only reaped on accept, so an idle listener kept every
  /// thread it had ever served.  (The last connection to close cannot join
  /// itself, so up to one finished entry may linger until the next reap.)
  struct ConnEntry {
    int fd = -1;
    std::atomic<bool> done{false};
    std::thread thread;
  };

  std::atomic<int> listen_fd{-1};
  std::string endpoint;
  FrameHandler handler;
  std::thread accept_thread;
  std::mutex conn_mutex;
  std::vector<std::shared_ptr<ConnEntry>> conns;
  std::atomic<bool> stopping{false};

  void serve_connection(ConnEntry& entry) {
    std::uint64_t corr = 0;
    Bytes request;
    try {
      while (read_frame(entry.fd, corr, request, /*allow_eof_at_start=*/true)) {
        Bytes response = handler(request);
        write_frame(entry.fd, corr, response);
      }
    } catch (const Error&) {
      // Connection torn down (peer reset or shutdown); drop it.
    } catch (...) {
      // A handler leaked a non-COSM exception.  Letting it escape would
      // std::terminate the whole server from this connection thread; the
      // connection is forfeit, the server is not.
    }
    {
      std::lock_guard lock(conn_mutex);
      ::close(entry.fd);
      entry.fd = -1;
    }
    // Reap other finished threads *before* raising our own done flag: a
    // thread that is still joining peers must not itself be collectible,
    // or two concurrently-closing connections could join each other and
    // deadlock.  Once `done` is set the only remaining work is returning,
    // so whoever collects this entry joins promptly.
    reap_finished();
    entry.done.store(true);
  }

  /// Join and drop finished serving threads.  Finished entries are moved
  /// out under conn_mutex but joined outside it: a joined thread may be
  /// blocked acquiring conn_mutex (closing its fd), and joining it while
  /// holding the lock would deadlock.
  void reap_finished() {
    std::vector<std::shared_ptr<ConnEntry>> finished;
    {
      std::lock_guard lock(conn_mutex);
      std::erase_if(conns, [&finished](const std::shared_ptr<ConnEntry>& entry) {
        if (!entry->done.load()) return false;
        finished.push_back(entry);
        return true;
      });
    }
    for (auto& entry : finished) {
      if (entry->thread.joinable()) entry->thread.join();
    }
    if (!finished.empty()) {
      auto& reg = obs::metrics();
      if (reg.enabled()) {
        static obs::Counter& reaped = reg.counter("tcp.conns_reaped");
        reaped.add(finished.size());
      }
    }
  }

  void accept_loop() {
    for (;;) {
      int lfd = listen_fd.load();
      if (lfd < 0) return;
      int fd = ::accept(lfd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener closed
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      reap_finished();
      {
        auto& reg = obs::metrics();
        if (reg.enabled()) {
          static obs::Counter& accepts = reg.counter("tcp.accepts");
          accepts.add();
        }
      }
      std::lock_guard lock(conn_mutex);
      if (stopping.load()) {
        ::close(fd);
        return;
      }
      auto entry = std::make_shared<ConnEntry>();
      entry->fd = fd;
      entry->thread =
          std::thread([this, entry] { serve_connection(*entry); });
      conns.push_back(std::move(entry));
    }
  }

  void stop() {
    stopping.store(true);
    // Wake the accept loop with shutdown(); close only after the join so
    // the fd number cannot be reused while accept_loop still holds it.
    int lfd = listen_fd.exchange(-1);
    if (lfd >= 0) ::shutdown(lfd, SHUT_RDWR);
    if (accept_thread.joinable()) accept_thread.join();
    if (lfd >= 0) ::close(lfd);
    std::vector<std::shared_ptr<ConnEntry>> draining;
    {
      std::lock_guard lock(conn_mutex);
      for (auto& entry : conns) {
        if (entry->fd >= 0) ::shutdown(entry->fd, SHUT_RDWR);
      }
      draining.swap(conns);
    }
    // Join without conn_mutex: the serving threads take it to close.
    for (auto& entry : draining) {
      if (entry->thread.joinable()) entry->thread.join();
    }
  }

  /// Pure observer: counts tracked entries without reaping, so tests can
  /// see whether the close-time reap actually ran.
  std::size_t live_threads() {
    std::lock_guard lock(conn_mutex);
    return conns.size();
  }

  ~Listener() { stop(); }
};

// ---------------------------------------------------------------------------

TcpNetwork::~TcpNetwork() { close_all(); }

void TcpNetwork::close_all() {
  std::map<std::string, std::shared_ptr<Listener>> listeners;
  std::map<std::string, std::vector<std::shared_ptr<ClientConn>>> pools;
  {
    std::lock_guard lock(mutex_);
    listeners.swap(listeners_);
    pools.swap(pools_);
  }
  for (auto& [ep, conns] : pools) {
    for (auto& conn : conns) conn->shutdown_and_join();
  }
  for (auto& [ep, l] : listeners) l->stop();
}

std::string TcpNetwork::listen(const std::string& hint, FrameHandler handler) {
  (void)hint;  // TCP endpoints are named by their port
  if (!handler) throw ContractError("listen: handler must be callable");

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw RpcError(std::string("tcp: socket failed: ") + std::strerror(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int err = errno;
    ::close(fd);
    throw RpcError(std::string("tcp: bind failed: ") + std::strerror(err));
  }
  if (::listen(fd, 128) < 0) {
    int err = errno;
    ::close(fd);
    throw RpcError(std::string("tcp: listen failed: ") + std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    int err = errno;
    ::close(fd);
    throw RpcError(std::string("tcp: getsockname failed: ") + std::strerror(err));
  }

  auto listener = std::make_shared<Listener>();
  listener->listen_fd = fd;
  listener->handler = std::move(handler);
  listener->endpoint =
      "tcp://127.0.0.1:" + std::to_string(ntohs(addr.sin_port));
  listener->accept_thread = std::thread([l = listener.get()] { l->accept_loop(); });

  std::lock_guard lock(mutex_);
  listeners_[listener->endpoint] = listener;
  return listener->endpoint;
}

void TcpNetwork::unlisten(const std::string& endpoint) {
  std::shared_ptr<Listener> listener;
  {
    std::lock_guard lock(mutex_);
    auto it = listeners_.find(endpoint);
    if (it == listeners_.end()) return;
    listener = it->second;
    listeners_.erase(it);
  }
  listener->stop();
}

std::size_t TcpNetwork::pooled_connections(const std::string& endpoint) const {
  std::lock_guard lock(mutex_);
  auto it = pools_.find(endpoint);
  return it == pools_.end() ? 0 : it->second.size();
}

std::size_t TcpNetwork::serving_threads(const std::string& endpoint) const {
  std::shared_ptr<Listener> listener;
  {
    std::lock_guard lock(mutex_);
    auto it = listeners_.find(endpoint);
    if (it == listeners_.end()) return 0;
    listener = it->second;
  }
  return listener->live_threads();
}

/// Pick an idle pooled connection, reaping dead ones; dial a fresh one when
/// every pooled connection is busy and the pool has room; otherwise
/// multiplex over the least-loaded survivor.
std::shared_ptr<TcpNetwork::ClientConn> TcpNetwork::checkout_conn(
    const std::string& endpoint) {
  std::shared_ptr<ClientConn> chosen;
  // Dead connections are moved out under the lock but destroyed after it:
  // ~ClientConn joins the reader thread, and that join must not stall every
  // caller to every endpoint behind the pool mutex.
  std::vector<std::shared_ptr<ClientConn>> reaped;
  {
    std::lock_guard lock(mutex_);
    auto& pool = pools_[endpoint];
    for (auto it = pool.begin(); it != pool.end();) {
      if ((*it)->dead.load()) {
        reaped.push_back(std::move(*it));
        it = pool.erase(it);
      } else {
        ++it;
      }
    }
    std::shared_ptr<ClientConn> least_loaded;
    for (const auto& conn : pool) {
      std::size_t load = conn->in_flight.load(std::memory_order_relaxed);
      if (load == 0) {
        chosen = conn;  // idle: reuse immediately
        break;
      }
      if (!least_loaded ||
          load < least_loaded->in_flight.load(std::memory_order_relaxed)) {
        least_loaded = conn;
      }
    }
    if (!chosen && least_loaded && pool.size() >= kMaxConnsPerEndpoint) {
      chosen = least_loaded;
    }
  }
  reaped.clear();  // joins dead readers, lock-free for everyone else
  if (chosen) return chosen;

  // Dial outside the lock (connect can block).
  auto conn = std::make_shared<ClientConn>();
  conn->fd = connect_loopback(endpoint);
  {
    auto& reg = obs::metrics();
    if (reg.enabled()) {
      static obs::Counter& dials = reg.counter("tcp.dials");
      dials.add();
    }
  }
  conn->reader = std::thread([c = conn.get()] { c->reader_loop(); });
  std::lock_guard lock(mutex_);
  pools_[endpoint].push_back(conn);
  return conn;
}

void TcpNetwork::set_send_retry_policy(RetryPolicy policy) {
  std::lock_guard lock(mutex_);
  if (policy.max_attempts < 1) policy.max_attempts = 1;
  send_retry_ = policy;
}

RetryPolicy TcpNetwork::send_retry_policy() const {
  std::lock_guard lock(mutex_);
  return send_retry_;
}

PendingCallPtr TcpNetwork::call_async(const std::string& endpoint,
                                      const Bytes& request,
                                      const CallContext& ctx) {
  auto pending = std::make_shared<PendingCall>();
  if (ctx.expired()) {
    pending->fail(std::make_exception_ptr(
        RpcError("call timed out (deadline exceeded before send)")));
    return pending;
  }

  // Send retries: a pooled connection may have died since checkout (server
  // restarted, idle reset) and a dial can hit a transient refusal.  Every
  // failure handled here happened before the request reached the wire, so
  // reissuing is always safe; a call whose write succeeded is never
  // reissued (at-most-once stays with the replay cache).  Backoff between
  // attempts is jittered and never sleeps past the caller's deadline.
  RetryPolicy policy = send_retry_policy();
  for (int attempt = 1;; ++attempt) {
    std::exception_ptr failure;
    std::shared_ptr<ClientConn> conn;
    try {
      conn = checkout_conn(endpoint);
    } catch (const Error&) {
      failure = std::current_exception();
    }
    if (conn) {
      std::uint64_t corr = next_id();
      conn->register_pending(corr, pending);
      try {
        std::lock_guard write_lock(conn->write_mutex);
        write_frame(conn->fd, corr, request);
        return pending;
      } catch (const Error&) {
        conn->take_pending(corr);
        conn->dead.store(true);
        ::shutdown(conn->fd, SHUT_RDWR);  // reader will reap the rest
        failure = std::current_exception();
      }
    }
    if (attempt >= policy.max_attempts || ctx.expired()) {
      pending->fail(failure);
      return pending;
    }
    std::chrono::milliseconds backoff;
    {
      std::lock_guard lock(rng_mutex_);
      backoff = policy.backoff_for(attempt, rng_);
    }
    if (ctx.has_deadline() && backoff >= ctx.remaining()) {
      pending->fail(failure);
      return pending;
    }
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    send_retries_.fetch_add(1, std::memory_order_relaxed);
    {
      auto& reg = obs::metrics();
      if (reg.enabled()) {
        static obs::Counter& retries = reg.counter("tcp.send_retries");
        retries.add();
      }
    }
  }
}

}  // namespace cosm::rpc
