// Durability as a constructor-injected policy (ROADMAP item 5).
//
// A Trader owns a StorageEngine.  The default NullStorage keeps today's
// in-memory behaviour: every hook is a no-op, recovery finds nothing, and
// the trader costs exactly one null check per mutation.  WalStorage
// (wal_storage.h) journals offer mutations, service-type definitions,
// subscription registrations and replay-cache high-water marks into a
// group-committed write-ahead log with periodic snapshots, so a restarted
// trader recovers its full market state and the at-most-once contract
// holds across reboot.
//
// Write protocol (offer mutations): the trader logs *before* it applies
// (write-ahead), bracketed by an ApplyScope so the snapshot worker can
// drain in-flight log→apply windows before it forks the store state —
// otherwise a record could land in a truncated segment while its effect
// missed the snapshot.  Management-plane records (types, subscriptions,
// clock) are logged after apply; anything logged is then already visible
// to a snapshot, which makes truncation trivially safe for them.
//
// Ordering caveat (documented, mirrors the replication layer): two racing
// conflicting mutations of the same offer id may journal in the opposite
// order of their in-memory application.  Such races have a
// scheduler-determined outcome even without a WAL; recovery then lands on
// one of the two racy outcomes, and subscribers reconcile via the same
// anti-entropy round that already bounds replication divergence.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "trader/offer_store.h"
#include "trader/replication.h"
#include "trader/service_type.h"

namespace cosm::trader::storage {

/// Durability knobs (CosmConfig::storage; WalStorage construction).
struct StorageOptions {
  /// Journal + snapshot directory; created if absent.  Required.
  std::string directory;
  /// Log segment size before rotation.
  std::size_t segment_bytes = 64ull << 20;
  /// Journal bytes since the last snapshot before a new one is taken
  /// (0 = never snapshot automatically).
  std::size_t snapshot_every_bytes = 256ull << 20;
  /// fdatasync every group commit.  Off by default: the durability model
  /// is process-crash survival (a SIGKILLed trader loses nothing once
  /// write(2) returned — the page cache survives the process); turning
  /// this on extends it to power failure at a large latency cost.
  bool fsync = false;
};

/// Publisher-side subscription state that must survive a restart: enough
/// to rebuild the sink (sink_desc names the subscriber's service
/// reference) and to restart the delta sequence past every number the
/// subscriber may have seen.
struct SubscriptionRecord {
  std::uint64_t id = 0;
  std::string subscriber;
  /// Sink reconstruction handle — the subscriber trader's ServiceRef
  /// string for RPC subscriptions, empty when the sink is process-local
  /// (not reconstructible; such subscriptions drop on recovery).
  std::string sink_desc;
  SubscriptionScope scope;
  /// Upper bound on the publisher's next delta sequence (persisted value
  /// plus tail-record slack) — never below what the subscriber acked.
  std::uint64_t next_seq = 1;
};

/// Everything recovery hands back to the trader.
struct RecoveredState {
  std::uint64_t next_offer = 1;
  std::uint64_t clock_hours = 0;
  std::vector<ServiceType> types;  ///< unordered; registrant topo-sorts
  /// Already heap-wrapped: recovery decodes straight into the shared form
  /// the offer store keeps, so a million-offer restart skips a re-wrap
  /// pass over every offer.
  std::vector<OfferPtr> offers;
  std::vector<SubscriptionRecord> subscriptions;
  /// Per-session replay high-water marks (max request id whose execution
  /// was journalled) — seeds the RPC server's replay cache so a duplicate
  /// reissued across the restart is refused instead of re-executed.
  std::unordered_map<std::string, std::uint64_t> replay_marks;
};

/// What the snapshot worker collects through the trader (off the writer
/// path: the offer fork is an epoch-pinned read).
struct SnapshotState {
  std::uint64_t next_offer = 1;
  std::uint64_t clock_hours = 0;
  std::vector<ServiceType> types;
  std::vector<Offer> offers;
  std::vector<SubscriptionRecord> subscriptions;
};

class SnapshotSource {
 public:
  virtual ~SnapshotSource() = default;
  virtual SnapshotState snapshot_state() = 0;
};

/// The injected durability policy.  Every hook is a no-op in the base
/// class, which doubles as NullStorage semantics; WalStorage overrides
/// them.  Offer-mutation hooks may block for a group commit; management
/// hooks block for a single append.  All hooks are thread-safe.
class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  /// True when this engine persists anything (drives Trader's
  /// recover-before-mutate contract check).
  virtual bool durable() const { return false; }

  // --- recovery ---

  /// Load the persisted state (snapshot + journal tail) and arm the
  /// journal for appends.  Returns false when there is nothing to
  /// recover (fresh directory / null engine).  Called once, before any
  /// log hook.
  virtual bool recover(RecoveredState*) { return false; }

  /// The replay high-water marks recover() found (empty before/without
  /// recovery) — wired into rpc::ReplayCache::seed_marks by the runtime.
  virtual std::unordered_map<std::string, std::uint64_t>
  recovered_replay_marks() const {
    return {};
  }

  // --- mutation journal (trader write paths) ---

  /// Journal full-offer upserts (insert / modify / lease change collapse,
  /// exactly like replication's OfferDelta).  `minted_through` is the
  /// offer-id counter after minting this batch (0 when no ids were
  /// minted) so recovery never re-issues an id.  Tagged with the calling
  /// thread's RPC (session, request id) when inside a dispatch — the
  /// mutation record and its replay mark are one atomic commit.
  virtual void log_upserts(const std::vector<OfferPtr>&,
                           std::uint64_t /*minted_through*/ = 0) {}
  virtual void log_removes(const std::vector<std::string>& /*ids*/) {}
  virtual void log_clock(std::uint64_t /*clock_hours*/) {}

  // --- management journal ---
  virtual void log_type_added(const ServiceType&) {}
  virtual void log_type_removed(const std::string& /*name*/) {}
  virtual void log_subscription(const SubscriptionRecord&) {}
  virtual void log_unsubscription(std::uint64_t /*id*/) {}

  // --- snapshot coordination ---

  /// Register (or clear, with nullptr) the state provider for periodic
  /// snapshots.  Clearing blocks until any in-progress snapshot stops
  /// using the source.
  virtual void set_snapshot_source(SnapshotSource*) {}

  /// Take a snapshot now (tests, shutdown); no-op without a source.
  virtual bool snapshot_now() { return false; }

  /// Brackets one log→apply window (see file comment).  begin_apply runs
  /// before the journal append, end_apply after the in-memory apply.
  virtual void begin_apply() {}
  virtual void end_apply() {}

  /// Block until everything journalled so far is durable.
  virtual void flush() {}
};

/// RAII for the log→apply window.  Null-engine tolerant.
class ApplyScope {
 public:
  explicit ApplyScope(StorageEngine* engine) : engine_(engine) {
    if (engine_) engine_->begin_apply();
  }
  ~ApplyScope() {
    if (engine_) engine_->end_apply();
  }
  ApplyScope(const ApplyScope&) = delete;
  ApplyScope& operator=(const ApplyScope&) = delete;

 private:
  StorageEngine* engine_;
};

/// The explicit "durability off" policy: identical to passing no engine,
/// spelled out so call sites read as a decision rather than an omission.
class NullStorage final : public StorageEngine {};

}  // namespace cosm::trader::storage
