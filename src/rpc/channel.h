// Client-side RPC channel.
//
// A channel binds to one service reference and carries calls.  It owns a
// session id: the server keys per-client FSM communication state on it, so
// one channel == one communication relationship in the paper's sense.
//
// Two call flavours:
//   * untyped — arguments encoded as-is; validation happens at the server.
//     This is what a pre-COSM client would do after hand-reading a service's
//     documentation.
//   * typed   — an OperationDesc (usually from a transferred SID) validates
//     arguments before encoding and the result after decoding.  This is the
//     path the generic client uses.

#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "rpc/network.h"
#include "sidl/service_ref.h"
#include "sidl/sid.h"
#include "wire/value.h"

namespace cosm::rpc {

struct ChannelOptions {
  std::chrono::milliseconds timeout{5000};
};

class RpcChannel {
 public:
  RpcChannel(Network& network, sidl::ServiceRef ref, ChannelOptions options = {});

  /// Untyped call.
  wire::Value call(const std::string& operation, std::vector<wire::Value> args);

  /// Typed call: validates arguments against `op` before sending and the
  /// result against op.result after receiving.
  wire::Value call(const sidl::OperationDesc& op, std::vector<wire::Value> args);

  /// Fetch the service's SID via the built-in "_get_sid" operation — the
  /// SID-transfer arrow of Fig. 3.
  sidl::SidPtr fetch_sid();

  const sidl::ServiceRef& ref() const noexcept { return ref_; }
  const std::string& session() const noexcept { return session_; }

  /// Calls issued on this channel (instrumentation).
  std::uint64_t calls_made() const noexcept { return calls_; }

 private:
  wire::Value roundtrip(const std::string& operation, Bytes body);

  Network& network_;
  sidl::ServiceRef ref_;
  ChannelOptions options_;
  std::string session_;
  std::uint64_t next_request_ = 1;
  std::uint64_t calls_ = 0;
};

}  // namespace cosm::rpc
