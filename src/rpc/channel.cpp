#include "rpc/channel.h"

#include <thread>

#include "common/error.h"
#include "common/id.h"
#include "obs/metrics.h"
#include "rpc/message.h"
#include "wire/codec.h"
#include "wire/marshal.h"

namespace cosm::rpc {

PendingReply::PendingReply(PendingCallPtr pending, CallContext ctx,
                           sidl::TypePtr result_type)
    : pending_(std::move(pending)),
      ctx_(ctx),
      result_type_(std::move(result_type)) {}

PendingReply::PendingReply(PendingCallPtr pending, CallContext ctx,
                           sidl::TypePtr result_type, ReissueFn reissue,
                           RetryPolicy retry, bool idempotent,
                           std::uint64_t jitter_seed)
    : pending_(std::move(pending)),
      ctx_(ctx),
      result_type_(std::move(result_type)),
      reissue_(std::move(reissue)),
      retry_(retry),
      idempotent_(idempotent),
      rng_(jitter_seed) {}

Bytes PendingReply::get_frame() {
  const bool retryable = reissue_ && retry_.enabled() &&
                         (idempotent_ || !retry_.only_idempotent);
  auto& tr = obs::tracer();
  auto& reg = obs::metrics();
  for (int attempt = 1;; ++attempt) {
    attempts_ = attempt;
    // An attempt cap turns a *dropped* request into a bounded wait; without
    // it the first attempt would consume the whole remaining deadline.
    CallContext attempt_ctx = ctx_;
    if (retryable && retry_.attempt_timeout.count() > 0) {
      attempt_ctx = ctx_.shrunk(retry_.attempt_timeout);
    }
    try {
      Bytes frame = pending_->get(attempt_ctx);
      if (span_.valid()) {
        tr.finish(std::move(span_),
                  attempt > 1 ? "attempt " + std::to_string(attempt) : "");
      }
      if (reg.enabled() &&
          started_ != std::chrono::steady_clock::time_point{}) {
        static obs::Histogram& latency = reg.histogram("rpc.channel.latency_us");
        latency.record_us(obs::elapsed_us(started_));
      }
      return frame;
    } catch (const RpcError& e) {
      // Decide the retry *before* surrendering the span, so an aborted
      // backoff and an exhausted budget both close the attempt as an error.
      bool final = !retryable || attempt >= retry_.max_attempts || ctx_.expired();
      std::chrono::milliseconds backoff{0};
      if (!final) {
        backoff = retry_.backoff_for(attempt, rng_);
        if (ctx_.has_deadline() && backoff >= ctx_.remaining()) final = true;
      }
      if (span_.valid()) tr.finish_error(std::move(span_), e.what());
      if (final) {
        if (reg.enabled()) {
          static obs::Counter& failures = reg.counter("rpc.channel.failures");
          failures.add();
        }
        throw;
      }
      if (reg.enabled()) {
        static obs::Counter& retries = reg.counter("rpc.channel.retries");
        retries.add();
      }
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
      pending_ = reissue_(span_);  // mints the fresh attempt span (if traced)
    }
  }
}

wire::Value PendingReply::get() {
  Bytes reply_frame = get_frame();
  Message reply = Message::decode(reply_frame);
  switch (reply.type) {
    case MsgType::Response: {
      wire::Value result = wire::decode_value(reply.body);
      if (result_type_) wire::ensure_conforms(result, *result_type_);
      return result;
    }
    case MsgType::Fault:
      throw RemoteFault(reply.fault);
    case MsgType::Request:
      break;
  }
  throw RpcError("unexpected message type in reply");
}

RpcChannel::RpcChannel(Network& network, sidl::ServiceRef ref, ChannelOptions options)
    : network_(network),
      ref_(std::move(ref)),
      options_(options),
      session_(next_name("sess")) {
  if (!ref_.valid()) throw ContractError("RpcChannel needs a valid service reference");
}

PendingReplyPtr RpcChannel::issue(const std::string& operation, Bytes body,
                                  sidl::TypePtr result_type) {
  // Effective budget: whatever deadline this thread already operates under,
  // tightened to at most the channel timeout from now.
  CallContext ctx = current_call_context().shrunk(options_.timeout);
  if (ctx.expired()) {
    throw RpcError("deadline exceeded before call to '" + operation + "'");
  }
  Message request =
      Message::request(next_request_.fetch_add(1, std::memory_order_relaxed),
                       ref_.id, operation, std::move(body));
  request.session = session_;
  request.deadline_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(ctx.remaining())
          .count());
  if (request.deadline_ms == 0) request.deadline_ms = 1;
  request.hop_budget = ctx.hop_budget;

  auto& tr = obs::tracer();
  auto& reg = obs::metrics();
  obs::Span span;
  std::chrono::steady_clock::time_point started{};
  if (reg.enabled()) {
    static obs::Counter& calls = reg.counter("rpc.channel.calls");
    calls.add();
    started = std::chrono::steady_clock::now();
  }
  if (tr.enabled()) {
    // Join the enclosing trace (server dispatch, outer client call) or
    // start a fresh one; the server's dispatch span hangs under this
    // attempt's span via the wire header.
    if (ctx.trace_id == 0) ctx.trace_id = tr.mint_id();
    span = tr.start_span("rpc.client:" + operation, ctx.trace_id, ctx.span_id);
    request.trace_id = ctx.trace_id;
    request.parent_span_id = span.span_id;
  } else {
    // Untraced: still forward inherited ids so hops that record spans stay
    // correlated under one trace.
    request.trace_id = ctx.trace_id;
    request.parent_span_id = ctx.span_id;
  }

  calls_.fetch_add(1, std::memory_order_relaxed);
  PendingCallPtr pending = network_.call_async(ref_.endpoint, request.encode(), ctx);
  if (!options_.retry.enabled()) {
    auto reply = std::make_shared<PendingReply>(std::move(pending), ctx,
                                                std::move(result_type));
    reply->attach_obs(std::move(span), started);
    return reply;
  }
  // Reissue closure for the retry driver: same request id and session (the
  // replay-cache key), but the stamped deadline budget is recomputed so the
  // server sees the genuinely remaining time, not the original snapshot —
  // and each reissue gets a fresh attempt span under the same trace.
  auto reissue = [network = &network_, endpoint = ref_.endpoint,
                  message = request, ctx,
                  op = operation](obs::Span& attempt_span) mutable {
    auto& tracer = obs::tracer();
    if (tracer.enabled()) {
      if (message.trace_id == 0) message.trace_id = tracer.mint_id();
      attempt_span =
          tracer.start_span("rpc.client:" + op, message.trace_id, ctx.span_id);
      message.parent_span_id = attempt_span.span_id;
    } else {
      attempt_span = obs::Span{};
    }
    message.deadline_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(ctx.remaining())
            .count());
    if (message.deadline_ms == 0) message.deadline_ms = 1;
    return network->call_async(endpoint, message.encode(), ctx);
  };
  auto reply = std::make_shared<PendingReply>(
      std::move(pending), ctx, std::move(result_type), std::move(reissue),
      options_.retry, options_.idempotent, request.request_id ^ 0x9e3779b9u);
  reply->attach_obs(std::move(span), started);
  return reply;
}

PendingReplyPtr RpcChannel::call_async(const std::string& operation,
                                       std::vector<wire::Value> args) {
  return issue(operation,
               wire::encode_value(wire::Value::sequence(std::move(args))),
               nullptr);
}

PendingReplyPtr RpcChannel::call_async(const sidl::OperationDesc& op,
                                       std::vector<wire::Value> args) {
  Bytes body = wire::marshal_arguments(op, args);
  return issue(op.name, std::move(body), op.result);
}

wire::Value RpcChannel::call(const std::string& operation,
                             std::vector<wire::Value> args) {
  return call_async(operation, std::move(args))->get();
}

wire::Value RpcChannel::call(const sidl::OperationDesc& op,
                             std::vector<wire::Value> args) {
  return call_async(op, std::move(args))->get();
}

sidl::SidPtr RpcChannel::fetch_sid() {
  wire::Value v = call("_get_sid", {});
  return v.as_sid();
}

}  // namespace cosm::rpc
