file(REMOVE_RECURSE
  "CMakeFiles/test_sidlc.dir/test_sidlc.cpp.o"
  "CMakeFiles/test_sidlc.dir/test_sidlc.cpp.o.d"
  "test_sidlc"
  "test_sidlc.pdb"
  "test_sidlc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sidlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
