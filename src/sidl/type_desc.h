// Dynamic type descriptions for SIDL-described values.
//
// A TypeDesc is the runtime representation of a SIDL type.  It drives the
// dynamic marshaller (src/wire), UI form generation (src/uims) and trader
// attribute schemas (src/trader).  TypeDescs are immutable and shared via
// shared_ptr<const TypeDesc> (TypePtr); structural equality is what matters,
// not identity.
//
// Supported kinds mirror the paper's SIDL: primitives (void, boolean, long,
// float/double, string), enumerations, structs (records), sequences,
// optionals, and the two COSM base types that make mediation work:
// ServiceRef (first-class service references, §3.2) and Sid (interface
// descriptions as communicable first-class objects, §3.1).

#pragma once

#include <memory>
#include <string>
#include <vector>

namespace cosm::sidl {

class TypeDesc;
using TypePtr = std::shared_ptr<const TypeDesc>;

enum class TypeKind {
  Void,
  Bool,
  Int,     // SIDL "long": 64-bit signed
  Float,   // SIDL "float"/"double": IEEE double
  String,
  Enum,
  Struct,
  Sequence,
  Optional,
  ServiceRef,
  Sid,
  /// Matches any value ("any" in SIDL).  Used where genericity is the point:
  /// trader attribute values, browser registries.
  Any,
};

/// Human-readable kind name ("struct", "sequence", ...).
std::string to_string(TypeKind kind);

struct FieldDesc {
  std::string name;
  TypePtr type;
};

class TypeDesc {
 public:
  // Factory functions; primitive singletons are shared process-wide.
  static TypePtr void_();
  static TypePtr bool_();
  static TypePtr int_();
  static TypePtr float_();
  static TypePtr string_();
  static TypePtr service_ref();
  static TypePtr sid();
  static TypePtr any();
  static TypePtr enum_(std::string name, std::vector<std::string> labels);
  static TypePtr struct_(std::string name, std::vector<FieldDesc> fields);
  static TypePtr sequence(TypePtr element);
  static TypePtr optional(TypePtr element);

  TypeKind kind() const noexcept { return kind_; }
  bool is(TypeKind k) const noexcept { return kind_ == k; }

  /// Type name for Enum/Struct; empty for anonymous/other kinds.
  const std::string& name() const noexcept { return name_; }

  /// Enum labels (Enum only).
  const std::vector<std::string>& labels() const noexcept { return labels_; }
  /// Index of a label, or -1 if absent (Enum only).
  int label_index(const std::string& label) const noexcept;

  /// Struct fields (Struct only).
  const std::vector<FieldDesc>& fields() const noexcept { return fields_; }
  /// Field lookup by name; nullptr if absent (Struct only).
  const FieldDesc* find_field(const std::string& field_name) const noexcept;

  /// Element type (Sequence/Optional only).
  const TypePtr& element() const noexcept { return element_; }

  /// Structural equality.
  bool equals(const TypeDesc& other) const noexcept;

  /// Compact human-readable description, e.g.
  /// "struct SelectCar_t { CarModel_t model; string date }".
  std::string describe() const;

 private:
  explicit TypeDesc(TypeKind kind) : kind_(kind) {}

  TypeKind kind_;
  std::string name_;
  std::vector<std::string> labels_;
  std::vector<FieldDesc> fields_;
  TypePtr element_;
};

/// Structural width-subtyping conformance check (§3.1, Fig. 2):
///   * identical primitives conform;
///   * an enum conforms to a base enum if it offers at least the base's
///     labels (so every base value stays representable);
///   * a struct conforms to a base struct if it has every base field with a
///     conforming type (extra fields allowed — record subtyping as in
///     Quest/TL, the languages the paper cites);
///   * sequences and optionals are covariant in their element type.
bool conforms_to(const TypeDesc& sub, const TypeDesc& base);
inline bool conforms_to(const TypePtr& sub, const TypePtr& base) {
  return sub && base && conforms_to(*sub, *base);
}

}  // namespace cosm::sidl
