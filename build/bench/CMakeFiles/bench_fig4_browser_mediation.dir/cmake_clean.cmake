file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_browser_mediation.dir/bench_fig4_browser_mediation.cpp.o"
  "CMakeFiles/bench_fig4_browser_mediation.dir/bench_fig4_browser_mediation.cpp.o.d"
  "bench_fig4_browser_mediation"
  "bench_fig4_browser_mediation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_browser_mediation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
