# Empty compiler generated dependencies file for test_type_desc.
# This may be replaced when dependencies are built.
