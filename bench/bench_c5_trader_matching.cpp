// Experiment C5 (§2.1): trader matching scalability.
//
// Import cost as a function of (a) the offer population, (b) the constraint
// complexity (number of comparison terms), and (c) the preference policy.
// Offers are exported directly (no live service objects) so only the
// matching engine is measured.  Expected shape: linear in population
// (unindexed scan, as in the 1994 prototype), linear in terms, and a
// modest ranking surcharge for min/max.

#include <benchmark/benchmark.h>

#include <sstream>

#include "common/rng.h"
#include "trader/trader.h"

namespace {

using namespace cosm;
using trader::AttrMap;
using wire::Value;

std::unique_ptr<trader::Trader> populated_trader(std::size_t offers) {
  auto t = std::make_unique<trader::Trader>("bench");
  trader::ServiceType type;
  type.name = "CarRentalService";
  type.attributes = {
      {"ChargePerDay", sidl::TypeDesc::float_(), true},
      {"AverageMilage", sidl::TypeDesc::int_(), true},
      {"ChargeCurrency", sidl::TypeDesc::string_(), true},
      {"Insured", sidl::TypeDesc::bool_(), true},
  };
  t->types().add(type);

  Rng rng(7);
  static const char* currencies[] = {"USD", "DEM", "FF", "SFR", "GBP"};
  for (std::size_t i = 0; i < offers; ++i) {
    AttrMap attrs = {
        {"ChargePerDay", Value::real(20.0 + rng.uniform() * 180.0)},
        {"AverageMilage", Value::integer(rng.range(1000, 80000))},
        {"ChargeCurrency", Value::string(currencies[rng.below(5)])},
        {"Insured", Value::boolean(rng.chance(0.5))},
    };
    sidl::ServiceRef ref{"svc-" + std::to_string(i), "inproc://x",
                         "CarRentalService"};
    t->export_offer("CarRentalService", ref, std::move(attrs));
  }
  return t;
}

void BM_ImportVsPopulation(benchmark::State& state) {
  auto t = populated_trader(static_cast<std::size_t>(state.range(0)));
  trader::ImportRequest request;
  request.service_type = "CarRentalService";
  request.constraint = "ChargePerDay < 100 && ChargeCurrency == USD";
  std::size_t matched = 0;
  for (auto _ : state) {
    auto offers = t->import(request);
    matched = offers.size();
    benchmark::DoNotOptimize(offers);
  }
  state.counters["offers"] = static_cast<double>(state.range(0));
  state.counters["matched"] = static_cast<double>(matched);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ImportVsPopulation)
    ->RangeMultiplier(10)
    ->Range(10, 100000)
    ->Complexity(benchmark::oN);

void BM_ImportVsConstraintTerms(benchmark::State& state) {
  auto t = populated_trader(1024);
  // Build a constraint with N comparison terms.
  std::ostringstream constraint;
  for (int i = 0; i < state.range(0); ++i) {
    if (i) constraint << " && ";
    switch (i % 4) {
      case 0: constraint << "ChargePerDay < " << 200 - i; break;
      case 1: constraint << "AverageMilage > " << 500 + i; break;
      case 2: constraint << "ChargeCurrency != XXX"; break;
      default: constraint << "exists Insured"; break;
    }
  }
  trader::ImportRequest request;
  request.service_type = "CarRentalService";
  request.constraint = constraint.str();
  for (auto _ : state) {
    auto offers = t->import(request);
    benchmark::DoNotOptimize(offers);
  }
  state.counters["terms"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ImportVsConstraintTerms)->DenseRange(1, 16, 3);

void BM_ImportPreferencePolicies(benchmark::State& state) {
  auto t = populated_trader(4096);
  static const char* policies[] = {"first", "random", "min ChargePerDay",
                                   "max AverageMilage"};
  trader::ImportRequest request;
  request.service_type = "CarRentalService";
  request.preference = policies[state.range(0)];
  for (auto _ : state) {
    auto offers = t->import(request);
    benchmark::DoNotOptimize(offers);
  }
  state.SetLabel(policies[state.range(0)]);
}
BENCHMARK(BM_ImportPreferencePolicies)->DenseRange(0, 3, 1);

void BM_ConstraintParseOnly(benchmark::State& state) {
  const std::string text =
      "ChargePerDay < 100 && (ChargeCurrency == USD || ChargeCurrency == DEM) "
      "&& exists Insured && AverageMilage > 5000";
  for (auto _ : state) {
    auto c = trader::Constraint::parse(text);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ConstraintParseOnly);

}  // namespace

BENCHMARK_MAIN();
