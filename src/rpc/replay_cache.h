// O(1) LRU replay cache for at-most-once RPC execution.
//
// Keys are (session, request id); values are the fully encoded response
// frames, so a retried request is answered byte-identically without
// re-executing the handler ("Transactional RPC", Fig. 6).  Lookup refreshes
// recency; insertion over capacity evicts the least recently used entry.
// Internally synchronised: the server consults it concurrently from every
// dispatch thread.

#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/bytes.h"

namespace cosm::rpc {

class ReplayCache {
 public:
  using Key = std::pair<std::string, std::uint64_t>;  // (session, request id)

  /// Outcome of a pre-dispatch probe.
  enum class Lookup : std::uint8_t {
    Miss,          ///< First sighting: dispatch the request.
    Hit,           ///< Duplicate with a cached response frame: replay it.
    /// Duplicate of a request executed *before a restart*: the durable
    /// journal proves it ran (its id sits at or below the session's
    /// persisted high-water mark), but the response frame died with the
    /// process.  At-most-once forbids re-execution, so the caller must
    /// answer with a fault instead.
    DuplicateLost,
  };

  explicit ReplayCache(std::size_t capacity);

  /// Probe for `key`, refreshing its recency on a hit (the cached frame is
  /// copied to `frame_out`); consults the seeded recovery marks on a miss.
  Lookup lookup(const Key& key, Bytes* frame_out);

  /// Install per-session request-id high-water marks recovered from a
  /// durable journal (storage::StorageEngine::recovered_replay_marks).
  /// Ids at or below a session's mark with no cached frame report
  /// DuplicateLost instead of Miss.
  void seed_marks(const std::unordered_map<std::string, std::uint64_t>& marks);

  /// Record a response; evicts the LRU entry when full.  A key already
  /// present keeps its first response (at-most-once: the original answer
  /// must not change under a racing duplicate) and counts as a suppressed
  /// duplicate — an at-most-once save just like a lookup hit.
  void insert(const Key& key, Bytes frame);

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  std::uint64_t hits() const noexcept { return hits_; }
  /// Lookups that found nothing (first-time requests).
  std::uint64_t misses() const noexcept { return misses_; }
  /// Duplicate inserts whose racing re-execution was suppressed.
  std::uint64_t duplicates_suppressed() const noexcept { return duplicates_; }
  /// Pre-restart duplicates refused because their response frame is gone.
  std::uint64_t duplicates_lost() const noexcept { return lost_; }

 private:
  struct Entry {
    Key key;
    Bytes frame;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      std::size_t h = std::hash<std::string>{}(key.first);
      return h ^ (std::hash<std::uint64_t>{}(key.second) + 0x9e3779b97f4a7c15ull +
                  (h << 6) + (h >> 2));
    }
  };

  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  /// session -> highest journalled request id from before the last restart.
  std::unordered_map<std::string, std::uint64_t> recovered_marks_;
  std::size_t capacity_;
  std::uint64_t evictions_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t lost_ = 0;
};

}  // namespace cosm::rpc
