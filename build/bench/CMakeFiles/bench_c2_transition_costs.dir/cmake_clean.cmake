file(REMOVE_RECURSE
  "CMakeFiles/bench_c2_transition_costs.dir/bench_c2_transition_costs.cpp.o"
  "CMakeFiles/bench_c2_transition_costs.dir/bench_c2_transition_costs.cpp.o.d"
  "bench_c2_transition_costs"
  "bench_c2_transition_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c2_transition_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
