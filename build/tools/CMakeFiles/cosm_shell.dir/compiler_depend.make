# Empty compiler generated dependencies file for cosm_shell.
# This may be replaced when dependencies are built.
