# Empty compiler generated dependencies file for cosm_test_support.
# This may be replaced when dependencies are built.
