#include "rpc/server.h"

#include "common/error.h"
#include "common/id.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/call_context.h"
#include "wire/codec.h"
#include "wire/marshal.h"

namespace cosm::rpc {

RpcServer::RpcServer(Network& network, const std::string& host_hint,
                     ServerOptions options)
    : network_(network), options_(options) {
  if (options_.at_most_once) {
    replay_ = std::make_unique<ReplayCache>(options_.replay_cache_capacity);
  }
  endpoint_ = network_.listen(host_hint, [this](const Bytes& frame) {
    return handle(frame);
  });
}

RpcServer::~RpcServer() { network_.unlisten(endpoint_); }

sidl::ServiceRef RpcServer::add(ServiceObjectPtr object) {
  if (!object) throw ContractError("RpcServer::add: null service object");
  sidl::ServiceRef ref;
  ref.id = next_name("svc");
  ref.endpoint = endpoint_;
  ref.interface_name = object->sid()->name;
  std::unique_lock lock(services_mutex_);
  services_[ref.id] = std::move(object);
  return ref;
}

void RpcServer::remove(const sidl::ServiceRef& ref) {
  std::unique_lock lock(services_mutex_);
  services_.erase(ref.id);
}

ServiceObjectPtr RpcServer::find(const std::string& service_id) const {
  std::shared_lock lock(services_mutex_);
  auto it = services_.find(service_id);
  return it == services_.end() ? nullptr : it->second;
}

Bytes RpcServer::handle(const Bytes& frame) {
  std::uint64_t request_id = 0;
  try {
    Message request = Message::decode(frame);
    request_id = request.request_id;
    if (request.type != MsgType::Request) {
      throw RpcError("server received a non-request message");
    }
    return handle_message(request);
  } catch (const std::exception& e) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    auto& reg = obs::metrics();
    if (reg.enabled()) {
      static obs::Counter& faults = reg.counter("rpc.server.faults");
      faults.add();
    }
    return Message::make_fault(request_id, e.what()).encode();
  }
}

Bytes RpcServer::handle_message(const Message& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  auto& reg = obs::metrics();
  auto& tr = obs::tracer();
  if (reg.enabled()) {
    static obs::Counter& requests = reg.counter("rpc.server.requests");
    requests.add();
  }
  ReplayCache::Key replay_key{request.session, request.request_id};
  if (replay_) {
    Bytes cached;
    if (replay_->lookup(replay_key, &cached)) {
      if (tr.enabled()) {
        // A replayed duplicate still shows up in the trace: a zero-work
        // server span under the retrying attempt that triggered it.
        tr.finish(tr.start_span("rpc.server:" + request.operation,
                                request.trace_id, request.parent_span_id),
                  "replay-hit");
      }
      return cached;
    }
  }

  // Rebuild the caller's remaining budget from the wire fields and make it
  // the current context for the duration of dispatch, so nested outbound
  // calls made by the handler inherit it.
  CallContext ctx;
  if (request.deadline_ms > 0) {
    ctx.deadline = CallContext::Clock::now() +
                   std::chrono::milliseconds(request.deadline_ms);
  }
  ctx.hop_budget = request.hop_budget;
  if (ctx.expired()) {
    throw RpcError("deadline exceeded before dispatch of '" +
                   request.operation + "'");
  }

  obs::Span span;
  std::chrono::steady_clock::time_point started{};
  if (reg.enabled()) started = std::chrono::steady_clock::now();
  if (tr.enabled()) {
    span = tr.start_span("rpc.server:" + request.operation, request.trace_id,
                         request.parent_span_id);
  }
  // The dispatch context carries the request's trace downstream: nested
  // outbound calls (federation hops, dynamic-property fetches) parent their
  // client spans under this server span.
  ctx.trace_id = span.valid() ? span.trace_id : request.trace_id;
  ctx.span_id = span.valid() ? span.span_id : request.parent_span_id;
  CallContextScope scope(ctx);

  try {
    ServiceObjectPtr service = find(request.target);
    if (!service) {
      throw NotFound("no service instance '" + request.target +
                     "' at this endpoint");
    }

    const bool infrastructure =
        !request.operation.empty() && request.operation[0] == '_';

    wire::Value result;
    if (request.operation == "_get_sid") {
      // Built-in SID transfer (Fig. 3): every hosted service can hand out its
      // interface description without the implementor writing anything.
      result = wire::Value::sid(service->sid());
    } else if (infrastructure) {
      wire::Value args_value = wire::decode_value(request.body);
      result = service->dispatch(request.session, request.operation,
                                 args_value.elements());
    } else {
      const sidl::OperationDesc* op = service->sid()->find_operation(request.operation);
      if (op == nullptr) {
        throw NotFound("service '" + service->sid()->name +
                       "' has no operation '" + request.operation + "'");
      }
      std::vector<wire::Value> args = wire::unmarshal_arguments(*op, request.body);
      result = service->dispatch(request.session, request.operation, args);
      wire::ensure_conforms(result, *op->result);
    }

    Bytes encoded = Message::response(request.request_id, wire::encode_value(result)).encode();

    if (replay_) replay_->insert(replay_key, encoded);
    if (span.valid()) tr.finish(std::move(span));
    if (reg.enabled() && started != std::chrono::steady_clock::time_point{}) {
      static obs::Histogram& dispatch = reg.histogram("rpc.server.dispatch_us");
      dispatch.record_us(obs::elapsed_us(started));
    }
    return encoded;
  } catch (const std::exception& e) {
    if (span.valid()) tr.finish_error(std::move(span), e.what());
    throw;
  }
}

}  // namespace cosm::rpc
