# Empty dependencies file for value_added_imaging.
# This may be replaced when dependencies are built.
