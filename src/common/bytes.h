// Byte-buffer primitives shared by the wire and RPC layers.
//
// ByteWriter appends primitive values in a fixed little-endian layout;
// ByteReader consumes them with bounds checking.  Variable-length integers
// use LEB128-style base-128 encoding, which keeps small lengths (the common
// case for SIDL-described values) to a single byte.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace cosm {

using Bytes = std::vector<std::uint8_t>;

/// Appends primitives to a growable byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(Bytes initial) : bytes_(std::move(initial)) {}

  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  /// Unsigned LEB128.
  void varint(std::uint64_t v);
  /// Zig-zag signed LEB128.
  void svarint(std::int64_t v);
  /// varint length followed by raw bytes.
  void str(std::string_view s);
  void raw(const std::uint8_t* data, std::size_t n);
  void raw(const Bytes& b) { raw(b.data(), b.size()); }

  std::size_t size() const noexcept { return bytes_.size(); }
  const Bytes& bytes() const noexcept { return bytes_; }
  Bytes take() { return std::move(bytes_); }

 private:
  Bytes bytes_;
};

/// Consumes primitives from a byte span with bounds checking; throws
/// cosm::WireError on underrun or malformed varints.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const Bytes& b) : ByteReader(b.data(), b.size()) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::uint64_t varint();
  std::int64_t svarint();
  std::string str();
  Bytes raw(std::size_t n);

  std::size_t remaining() const noexcept { return size_ - pos_; }
  bool at_end() const noexcept { return pos_ == size_; }
  std::size_t position() const noexcept { return pos_; }

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Hex dump (debugging aid for wire-level tests).
std::string to_hex(const Bytes& bytes);

}  // namespace cosm
