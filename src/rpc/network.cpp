#include "rpc/network.h"

namespace cosm::rpc {

Bytes Network::call(const std::string& endpoint, const Bytes& request,
                    std::chrono::milliseconds timeout) {
  CallContext ctx = CallContext::with_timeout(timeout);
  return call_async(endpoint, request, ctx)->get(ctx);
}

}  // namespace cosm::rpc
