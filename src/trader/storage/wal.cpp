#include "trader/storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/error.h"

namespace cosm::trader::storage {

namespace fs = std::filesystem;

namespace {

/// Eight derived tables for slicing-by-8: table[0] is the classic
/// CRC-32 (IEEE, reflected) byte table, table[k] advances a byte k
/// positions further.  Same polynomial and results as byte-at-a-time,
/// ~4x the throughput — recovery checksums hundreds of MB.
std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (std::size_t t = 1; t < 8; ++t) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[t][i] = c;
    }
  }
  return tables;
}

std::uint32_t read_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void write_u32le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

constexpr std::size_t kFrameHeader = 8;  // u32 crc + u32 len

/// Parse "wal-%08u.log" / "snapshot-%08u.snap"; 0 on mismatch.
std::uint64_t parse_numbered(const std::string& name, const char* prefix,
                             const char* suffix) {
  const std::size_t plen = std::strlen(prefix);
  const std::size_t slen = std::strlen(suffix);
  if (name.size() <= plen + slen) return 0;
  if (name.compare(0, plen, prefix) != 0) return 0;
  if (name.compare(name.size() - slen, slen, suffix) != 0) return 0;
  std::uint64_t value = 0;
  for (std::size_t i = plen; i < name.size() - slen; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    value = value * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return value;
}

std::string numbered(const char* prefix, std::uint64_t seg, const char* suffix) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s%08llu%s", prefix,
                static_cast<unsigned long long>(seg), suffix);
  return buf;
}

void write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("wal: write failed: ") + std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables =
      make_crc_tables();
  const auto& t = tables;
  std::uint32_t c = 0xFFFFFFFFu;
  while (size >= 8) {
    const std::uint32_t lo = c ^ (static_cast<std::uint32_t>(data[0]) |
                                  (static_cast<std::uint32_t>(data[1]) << 8) |
                                  (static_cast<std::uint32_t>(data[2]) << 16) |
                                  (static_cast<std::uint32_t>(data[3]) << 24));
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
        t[4][lo >> 24] ^ t[3][data[4]] ^ t[2][data[5]] ^ t[1][data[6]] ^
        t[0][data[7]];
    data += 8;
    size -= 8;
  }
  for (std::size_t i = 0; i < size; ++i) {
    c = t[0][(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string WriteAheadLog::segment_path(const std::string& dir,
                                        std::uint64_t seg) {
  return dir + "/" + numbered("wal-", seg, ".log");
}

std::string WriteAheadLog::snapshot_path(const std::string& dir,
                                         std::uint64_t seg) {
  return dir + "/" + numbered("snapshot-", seg, ".snap");
}

WriteAheadLog::WriteAheadLog(
    Options options, const std::function<void(const Replayed&)>& on_record,
    std::uint64_t* snapshot_segment_out)
    : options_(std::move(options)) {
  if (options_.directory.empty()) {
    throw ContractError("wal: a directory is required");
  }
  if (options_.segment_bytes < 4096) {
    throw ContractError("wal: segment_bytes must be at least 4096");
  }
  std::error_code ec;
  fs::create_directories(options_.directory, ec);
  if (ec) {
    throw Error("wal: cannot create '" + options_.directory +
                "': " + ec.message());
  }

  // Inventory the directory: segments, and the newest *valid* snapshot
  // (a crash during snapshot write leaves only a tmp file, which is
  // ignored and cleaned here — the rename into place is the commit).
  std::vector<std::uint64_t> segments;
  std::uint64_t snapshot_seg = 0;
  for (const auto& entry : fs::directory_iterator(options_.directory)) {
    const std::string name = entry.path().filename().string();
    if (std::uint64_t seg = parse_numbered(name, "wal-", ".log")) {
      segments.push_back(seg);
    } else if (std::uint64_t snap = parse_numbered(name, "snapshot-", ".snap")) {
      snapshot_seg = std::max(snapshot_seg, snap);
    } else if (name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".tmp") == 0) {
      fs::remove(entry.path(), ec);  // torn snapshot attempt
    }
  }
  std::sort(segments.begin(), segments.end());
  if (snapshot_segment_out) *snapshot_segment_out = snapshot_seg;

  // Replay segments >= the snapshot mark, stopping each segment at its
  // first torn/corrupt frame.
  std::uint64_t last_segment = segments.empty() ? 0 : segments.back();
  std::uint64_t tail_valid_bytes = 0;
  Bytes file;
  for (std::uint64_t seg : segments) {
    if (seg < snapshot_seg) continue;
    const std::string path = segment_path(options_.directory, seg);
    file.clear();
    {
      int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
      if (fd < 0) {
        throw Error("wal: cannot open '" + path + "': " + std::strerror(errno));
      }
      struct stat st{};
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        file.resize(static_cast<std::size_t>(st.st_size));
        std::size_t off = 0;
        while (off < file.size()) {
          ssize_t n = ::read(fd, file.data() + off, file.size() - off);
          if (n < 0 && errno == EINTR) continue;
          if (n <= 0) break;
          off += static_cast<std::size_t>(n);
        }
        file.resize(off);
      }
      ::close(fd);
    }
    std::size_t pos = 0;
    while (pos + kFrameHeader <= file.size()) {
      const std::uint32_t crc = read_u32le(file.data() + pos);
      const std::uint32_t len = read_u32le(file.data() + pos + 4);
      if (pos + kFrameHeader + len > file.size()) break;  // torn tail
      const std::uint8_t* payload = file.data() + pos + kFrameHeader;
      if (crc32(payload, len) != crc) break;  // corrupt: drop the rest
      if (on_record) on_record({seg, BytesView(payload, len)});
      pos += kFrameHeader + len;
    }
    if (seg == last_segment) tail_valid_bytes = pos;
  }

  std::unique_lock lock(mutex_);
  if (last_segment == 0) {
    open_segment_locked(std::max<std::uint64_t>(snapshot_seg, 1), false);
  } else {
    segment_ = last_segment;
    segment_bytes_written_ = tail_valid_bytes;
    open_segment_locked(last_segment, true);
  }
}

void WriteAheadLog::open_segment_locked(std::uint64_t segment,
                                        bool truncate_to_valid) {
  const std::string path = segment_path(options_.directory, segment);
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw Error("wal: cannot open '" + path + "': " + std::strerror(errno));
  }
  if (truncate_to_valid) {
    // Drop the torn tail so new frames never append behind garbage that
    // replay would stop at.
    if (::ftruncate(fd, static_cast<off_t>(segment_bytes_written_)) != 0) {
      ::close(fd);
      throw Error("wal: cannot truncate '" + path +
                  "': " + std::strerror(errno));
    }
  } else {
    segment_bytes_written_ = 0;
  }
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
  segment_ = segment;
}

WriteAheadLog::~WriteAheadLog() {
  {
    std::unique_lock lock(mutex_);
    durable_cv_.wait(lock, [this] { return !leader_active_; });
    if (staged_lsn_ > durable_lsn_) leader_commit(lock);
  }
  if (fd_ >= 0) ::close(fd_);
}

void WriteAheadLog::append(BytesView payload) {
  std::uint8_t header[kFrameHeader];
  write_u32le(header,
              crc32(payload.data(), payload.size()));
  write_u32le(header + 4, static_cast<std::uint32_t>(payload.size()));

  std::unique_lock lock(mutex_);
  pending_.insert(pending_.end(), header, header + kFrameHeader);
  pending_.insert(pending_.end(), payload.data(), payload.data() + payload.size());
  const std::uint64_t my_lsn = ++staged_lsn_;
  total_bytes_ += kFrameHeader + payload.size();
  if (leader_active_) {
    // A leader is writing; it (or a successor) will commit this frame.
    durable_cv_.wait(lock, [&] { return durable_lsn_ >= my_lsn; });
    return;
  }
  leader_commit(lock);
}

void WriteAheadLog::leader_commit(std::unique_lock<std::mutex>& lock) {
  leader_active_ = true;
  while (staged_lsn_ > durable_lsn_) {
    Bytes batch = std::move(pending_);
    pending_ = Bytes{};
    const std::uint64_t target = staged_lsn_;
    const int fd = fd_;
    lock.unlock();
    write_all(fd, batch.data(), batch.size());
    if (options_.fsync) {
#if defined(__APPLE__)
      ::fsync(fd);
#else
      ::fdatasync(fd);
#endif
    }
    lock.lock();
    segment_bytes_written_ += batch.size();
    durable_lsn_ = target;
    ++commits_;
    if (segment_bytes_written_ >= options_.segment_bytes &&
        staged_lsn_ == durable_lsn_) {
      segment_bytes_written_ = 0;
      open_segment_locked(segment_ + 1, false);
    }
    durable_cv_.notify_all();
  }
  leader_active_ = false;
  durable_cv_.notify_all();
}

std::uint64_t WriteAheadLog::rotate() {
  std::unique_lock lock(mutex_);
  durable_cv_.wait(lock, [this] { return !leader_active_; });
  if (staged_lsn_ > durable_lsn_) leader_commit(lock);
  segment_bytes_written_ = 0;
  open_segment_locked(segment_ + 1, false);
  return segment_;
}

void WriteAheadLog::truncate_before(std::uint64_t segment) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.directory, ec)) {
    const std::string name = entry.path().filename().string();
    if (std::uint64_t seg = parse_numbered(name, "wal-", ".log")) {
      if (seg < segment) fs::remove(entry.path(), ec);
    } else if (std::uint64_t snap = parse_numbered(name, "snapshot-", ".snap")) {
      if (snap < segment) fs::remove(entry.path(), ec);
    }
  }
}

std::uint64_t WriteAheadLog::current_segment() const {
  std::lock_guard lock(mutex_);
  return segment_;
}

std::uint64_t WriteAheadLog::bytes_appended() const {
  std::lock_guard lock(mutex_);
  return total_bytes_;
}

void WriteAheadLog::flush() {
  std::unique_lock lock(mutex_);
  const std::uint64_t target = staged_lsn_;
  if (durable_lsn_ >= target) return;
  if (leader_active_) {
    durable_cv_.wait(lock, [&] { return durable_lsn_ >= target; });
    return;
  }
  leader_commit(lock);
}

std::uint64_t WriteAheadLog::commits() const {
  std::lock_guard lock(mutex_);
  return commits_;
}

std::uint64_t WriteAheadLog::appends() const {
  std::lock_guard lock(mutex_);
  return staged_lsn_;
}

}  // namespace cosm::trader::storage
