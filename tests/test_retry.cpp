#include "rpc/retry.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cosm::rpc {
namespace {

using std::chrono::milliseconds;

TEST(RetryPolicy, DisabledByDefault) {
  RetryPolicy p;
  EXPECT_EQ(p.max_attempts, 1);
  EXPECT_FALSE(p.enabled());
  p.max_attempts = 2;
  EXPECT_TRUE(p.enabled());
}

TEST(RetryPolicy, FactoriesEnableRetries) {
  RetryPolicy standard = RetryPolicy::standard();
  EXPECT_TRUE(standard.enabled());
  EXPECT_EQ(standard.max_attempts, 3);
  EXPECT_TRUE(standard.only_idempotent);

  RetryPolicy transport = RetryPolicy::transport();
  EXPECT_TRUE(transport.enabled());
  // The transport reissues only requests that never hit the wire, so
  // idempotency is irrelevant there.
  EXPECT_FALSE(transport.only_idempotent);
  EXPECT_LE(transport.max_backoff, standard.max_backoff);
}

TEST(RetryPolicy, BackoffGrowsExponentiallyWithoutJitter) {
  RetryPolicy p;
  p.initial_backoff = milliseconds(10);
  p.multiplier = 2.0;
  p.max_backoff = milliseconds(1000);
  p.jitter = 0.0;
  Rng rng(1);
  EXPECT_EQ(p.backoff_for(1, rng), milliseconds(10));
  EXPECT_EQ(p.backoff_for(2, rng), milliseconds(20));
  EXPECT_EQ(p.backoff_for(3, rng), milliseconds(40));
}

TEST(RetryPolicy, BackoffIsCapped) {
  RetryPolicy p;
  p.initial_backoff = milliseconds(100);
  p.multiplier = 10.0;
  p.max_backoff = milliseconds(250);
  p.jitter = 0.0;
  Rng rng(1);
  EXPECT_EQ(p.backoff_for(5, rng), milliseconds(250));
}

TEST(RetryPolicy, JitterStaysWithinBounds) {
  RetryPolicy p;
  p.initial_backoff = milliseconds(100);
  p.jitter = 0.5;
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    milliseconds b = p.backoff_for(1, rng);
    EXPECT_GE(b, milliseconds(50));
    EXPECT_LE(b, milliseconds(150));
  }
}

TEST(RetryPolicy, BackoffIsDeterministicPerSeed) {
  RetryPolicy p = RetryPolicy::standard();
  Rng a(7), b(7);
  for (int attempt = 1; attempt <= 5; ++attempt) {
    EXPECT_EQ(p.backoff_for(attempt, a), p.backoff_for(attempt, b));
  }
}

TEST(RetryPolicy, JitteredBackoffNeverTruncatesToZero) {
  // jitter = 1.0 makes the jitter factor range over [0, 2]; an unlucky draw
  // near 0 used to truncate a nonzero nominal backoff to 0 ms — a hot
  // zero-delay retry loop.  The floor keeps every jittered sleep >= 1 ms.
  RetryPolicy p;
  p.initial_backoff = milliseconds(1);
  p.jitter = 1.0;
  Rng rng(123);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_GE(p.backoff_for(1, rng), milliseconds(1));
  }
}

TEST(RetryPolicy, ZeroNominalBackoffStaysZero) {
  // No backoff configured means "retry immediately" — the 1 ms floor only
  // applies when a nonzero backoff was asked for.
  RetryPolicy p;
  p.initial_backoff = milliseconds(0);
  p.jitter = 1.0;
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(p.backoff_for(1, rng), milliseconds(0));
  }
}

TEST(RetryPolicy, OutOfRangeInputsClamped) {
  RetryPolicy p;
  p.initial_backoff = milliseconds(10);
  p.jitter = 0.0;
  Rng rng(1);
  // Attempt below 1 behaves like attempt 1.
  EXPECT_EQ(p.backoff_for(0, rng), milliseconds(10));
  EXPECT_EQ(p.backoff_for(-3, rng), milliseconds(10));
  // Jitter outside [0,1] is clamped, never negative sleeps.
  p.jitter = 5.0;
  for (int i = 0; i < 50; ++i) {
    EXPECT_GE(p.backoff_for(1, rng), milliseconds(0));
  }
}

}  // namespace
}  // namespace cosm::rpc
