// Experiment C5 (§2.1): trader matching scalability.
//
// Import cost as a function of (a) the offer population, (b) the constraint
// complexity (number of comparison terms), and (c) the preference policy.
// Offers are exported directly (no live service objects) so only the
// matching engine is measured.
//
// The binary first runs the C5 *sweep* — population scales crossed with
// {indexed, scan} matching modes on the selective reference constraint —
// and writes BENCH_c5_trader_matching.json (ops/s, p50/p99 latency,
// candidates evaluated per import).  The scan mode disables the offer
// store's secondary indexes, i.e. the 1994-prototype linear bucket scan the
// paper's cost model assumes; the indexed mode is the engine's default.
// After the sweep it falls through to the usual google-benchmark suites.
//
// Flags (stripped before google-benchmark sees argv):
//   --sweep-only              run the sweep, skip the BM_ suites
//   --no-sweep                skip the sweep (BM_ suites only)
//   --sweep-scales=1000,...   override the population scales
//   --sweep-out=FILE          JSON destination (default
//                             BENCH_c5_trader_matching.json)

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "trader/trader.h"

namespace {

using namespace cosm;
using trader::AttrMap;
using wire::Value;

std::unique_ptr<trader::Trader> populated_trader(std::size_t offers) {
  auto t = std::make_unique<trader::Trader>("bench");
  trader::ServiceType type;
  type.name = "CarRentalService";
  type.attributes = {
      {"ChargePerDay", sidl::TypeDesc::float_(), true},
      {"AverageMilage", sidl::TypeDesc::int_(), true},
      {"ChargeCurrency", sidl::TypeDesc::string_(), true},
      {"Insured", sidl::TypeDesc::bool_(), true},
  };
  t->types().add(type);

  Rng rng(7);
  static const char* currencies[] = {"USD", "DEM", "FF", "SFR", "GBP"};
  for (std::size_t i = 0; i < offers; ++i) {
    AttrMap attrs = {
        {"ChargePerDay", Value::real(20.0 + rng.uniform() * 180.0)},
        {"AverageMilage", Value::integer(rng.range(1000, 80000))},
        {"ChargeCurrency", Value::string(currencies[rng.below(5)])},
        {"Insured", Value::boolean(rng.chance(0.5))},
    };
    sidl::ServiceRef ref{"svc-" + std::to_string(i), "inproc://x",
                         "CarRentalService"};
    t->export_offer("CarRentalService", ref, std::move(attrs));
  }
  return t;
}

// ---------------------------------------------------------------------------
// C5 sweep: scales x {scan, indexed} on the selective reference constraint.

constexpr const char* kSweepConstraint =
    "ChargePerDay < 100 && ChargeCurrency == USD";

/// Sweep constraints: speedup from index narrowing depends on selectivity,
/// because the per-match result-copy cost is shared by both modes.  The
/// "moderate" query matches ~9% of the population, the "selective" one ~1%.
struct SweepQuery {
  const char* label;
  const char* constraint;
};
constexpr SweepQuery kSweepQueries[] = {
    {"moderate", kSweepConstraint},
    {"selective", "ChargePerDay < 30 && ChargeCurrency == USD"},
};

struct SweepResult {
  std::size_t offers = 0;
  std::string query;
  std::string mode;
  std::size_t iterations = 0;
  double ops_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::size_t matched = 0;
  double evaluated_per_import = 0.0;
  double scanned_per_import = 0.0;
};

double percentile(std::vector<double> sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

SweepResult run_mode(trader::Trader& t, std::size_t offers,
                     const SweepQuery& query, bool indexed) {
  t.set_tuning({.enable_indexes = indexed});
  trader::ImportRequest request;
  request.service_type = "CarRentalService";
  request.constraint = query.constraint;

  std::size_t iterations = std::max<std::size_t>(
      15, std::min<std::size_t>(150, 10'000'000 / std::max<std::size_t>(offers, 1)));

  SweepResult result;
  result.offers = offers;
  result.query = query.label;
  result.mode = indexed ? "indexed" : "scan";
  result.iterations = iterations;
  result.matched = t.import(request).size();  // warm-up (caches, snapshot)

  t.reset_stats();  // count only the timed sweep, no delta bookkeeping
  std::vector<double> samples_us;
  samples_us.reserve(iterations);
  auto sweep_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iterations; ++i) {
    auto start = std::chrono::steady_clock::now();
    auto matches = t.import(request);
    auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(matches);
    samples_us.push_back(
        std::chrono::duration<double, std::micro>(stop - start).count());
  }
  double total_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start)
          .count();

  std::sort(samples_us.begin(), samples_us.end());
  result.ops_per_sec = static_cast<double>(iterations) / total_sec;
  result.p50_us = percentile(samples_us, 0.50);
  result.p99_us = percentile(samples_us, 0.99);
  result.evaluated_per_import =
      static_cast<double>(t.offers_evaluated()) / static_cast<double>(iterations);
  result.scanned_per_import =
      static_cast<double>(t.offers_scanned()) / static_cast<double>(iterations);
  return result;
}

int run_sweep(const std::vector<std::size_t>& scales, const std::string& out_path) {
  std::vector<SweepResult> results;
  for (std::size_t offers : scales) {
    std::fprintf(stderr, "[c5-sweep] populating %zu offers...\n", offers);
    auto t = populated_trader(offers);
    for (const SweepQuery& query : kSweepQueries) {
      // Scan first so the indexed numbers cannot benefit from extra warm-up.
      results.push_back(run_mode(*t, offers, query, /*indexed=*/false));
      results.push_back(run_mode(*t, offers, query, /*indexed=*/true));
      const SweepResult& scan = results[results.size() - 2];
      const SweepResult& indexed = results.back();
      std::fprintf(stderr,
                   "[c5-sweep] %8zu offers %-9s: scan %9.0f ops/s (p50 %8.1f us)"
                   "  indexed %9.0f ops/s (p50 %8.1f us)  speedup %.1fx\n",
                   offers, query.label, scan.ops_per_sec, scan.p50_us,
                   indexed.ops_per_sec, indexed.p50_us,
                   indexed.ops_per_sec / scan.ops_per_sec);
    }
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"experiment\": \"C5_trader_matching\",\n"
       << "  \"constraints\": {";
  for (std::size_t i = 0; i < std::size(kSweepQueries); ++i) {
    json << (i ? ", " : "") << "\"" << kSweepQueries[i].label << "\": \""
         << kSweepQueries[i].constraint << "\"";
  }
  json << "},\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    json << "    {\"offers\": " << r.offers << ", \"query\": \"" << r.query
         << "\", \"mode\": \"" << r.mode
         << "\", \"iterations\": " << r.iterations
         << ", \"ops_per_sec\": " << r.ops_per_sec
         << ", \"p50_us\": " << r.p50_us << ", \"p99_us\": " << r.p99_us
         << ", \"matched\": " << r.matched
         << ", \"evaluated_per_import\": " << r.evaluated_per_import
         << ", \"scanned_per_import\": " << r.scanned_per_import << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"speedup_indexed_vs_scan\": {";
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    json << (i ? ", " : "") << "\"" << results[i].offers << "/"
         << results[i].query
         << "\": " << results[i + 1].ops_per_sec / results[i].ops_per_sec;
  }
  json << "}\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "[c5-sweep] cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json.str();
  std::fprintf(stderr, "[c5-sweep] wrote %s\n", out_path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// google-benchmark suites (unchanged shape; now measuring the indexed
// engine by default).

void BM_ImportVsPopulation(benchmark::State& state) {
  auto t = populated_trader(static_cast<std::size_t>(state.range(0)));
  trader::ImportRequest request;
  request.service_type = "CarRentalService";
  request.constraint = kSweepConstraint;
  std::size_t matched = 0;
  for (auto _ : state) {
    auto offers = t->import(request);
    matched = offers.size();
    benchmark::DoNotOptimize(offers);
  }
  state.counters["offers"] = static_cast<double>(state.range(0));
  state.counters["matched"] = static_cast<double>(matched);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ImportVsPopulation)
    ->RangeMultiplier(10)
    ->Range(10, 100000)
    ->Complexity(benchmark::oN);

void BM_ImportVsConstraintTerms(benchmark::State& state) {
  auto t = populated_trader(1024);
  // Build a constraint with N comparison terms.
  std::ostringstream constraint;
  for (int i = 0; i < state.range(0); ++i) {
    if (i) constraint << " && ";
    switch (i % 4) {
      case 0: constraint << "ChargePerDay < " << 200 - i; break;
      case 1: constraint << "AverageMilage > " << 500 + i; break;
      case 2: constraint << "ChargeCurrency != XXX"; break;
      default: constraint << "exists Insured"; break;
    }
  }
  trader::ImportRequest request;
  request.service_type = "CarRentalService";
  request.constraint = constraint.str();
  for (auto _ : state) {
    auto offers = t->import(request);
    benchmark::DoNotOptimize(offers);
  }
  state.counters["terms"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ImportVsConstraintTerms)->DenseRange(1, 16, 3);

void BM_ImportPreferencePolicies(benchmark::State& state) {
  auto t = populated_trader(4096);
  static const char* policies[] = {"first", "random", "min ChargePerDay",
                                   "max AverageMilage"};
  trader::ImportRequest request;
  request.service_type = "CarRentalService";
  request.preference = policies[state.range(0)];
  for (auto _ : state) {
    auto offers = t->import(request);
    benchmark::DoNotOptimize(offers);
  }
  state.SetLabel(policies[state.range(0)]);
}
BENCHMARK(BM_ImportPreferencePolicies)->DenseRange(0, 3, 1);

void BM_ConstraintParseOnly(benchmark::State& state) {
  const std::string text =
      "ChargePerDay < 100 && (ChargeCurrency == USD || ChargeCurrency == DEM) "
      "&& exists Insured && AverageMilage > 5000";
  for (auto _ : state) {
    auto c = trader::Constraint::parse(text);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ConstraintParseOnly);

std::vector<std::size_t> parse_scales(const std::string& csv) {
  std::vector<std::size_t> scales;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) scales.push_back(std::stoull(item));
  }
  return scales;
}

}  // namespace

int main(int argc, char** argv) {
  bool sweep_only = false;
  bool no_sweep = false;
  std::vector<std::size_t> scales = {1000, 10000, 100000};
  std::string out_path = "BENCH_c5_trader_matching.json";

  std::vector<char*> bench_argv = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--sweep-only") {
      sweep_only = true;
    } else if (arg == "--no-sweep") {
      no_sweep = true;
    } else if (arg.rfind("--sweep-scales=", 0) == 0) {
      scales = parse_scales(arg.substr(15));
    } else if (arg.rfind("--sweep-out=", 0) == 0) {
      out_path = arg.substr(12);
    } else {
      bench_argv.push_back(argv[i]);
    }
  }

  int rc = 0;
  if (!no_sweep) rc = run_sweep(scales, out_path);
  if (sweep_only || rc != 0) return rc;

  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
