// Transport abstraction (the "Communication Level" of Fig. 6).
//
// A Network binds frame handlers to endpoint addresses and carries request/
// response round trips.  The primitive is asynchronous: call_async() hands
// back a PendingCall the transport settles when the response arrives; the
// blocking call() is implemented on top of it.  Two implementations exist:
//   * InProcNetwork — a loopback bus inside one process; blocking calls run
//     the handler inline on the caller's thread (deterministic), async calls
//     are delivered by an executor-backed worker pool, with optional
//     simulated per-call latency so experiments can model LAN round trips;
//   * TcpNetwork — real sockets on 127.0.0.1 with length-prefixed,
//     correlation-tagged frames over pooled persistent connections, used to
//     validate the mechanisms over genuine I/O (ablation A2).
//
// Endpoint addresses are URLs: "inproc://name" or "tcp://127.0.0.1:port".

#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "common/bytes.h"
#include "rpc/call_context.h"
#include "rpc/pending_call.h"

namespace cosm::rpc {

/// One snapshot of a transport's health, shared by every Network
/// implementation (`Network::stats()`) — the sole instrumentation surface
/// (the old per-class ad-hoc getters are gone).
struct NetworkStats {
  /// Live transport connections (client pool + accepted server side).
  std::size_t connections = 0;
  /// Threads owning sockets / delivering frames (reactor loops for TCP,
  /// executor workers in-proc).
  std::size_t event_loop_threads = 0;
  /// Request frames currently in flight (client calls awaiting a response
  /// plus server dispatches not yet answered).
  std::size_t in_flight_frames = 0;
  /// Request frames carried since construction.
  std::uint64_t frames = 0;
  /// Sends reissued after a dial/write failure (TCP only).
  std::uint64_t send_retries = 0;
  /// Bytes received, including frame headers (TCP only).
  std::uint64_t bytes_in = 0;
  /// Bytes sent, including frame headers (TCP only).
  std::uint64_t bytes_out = 0;
};

/// Server-side frame handler: consumes a request frame, produces the
/// response frame.  Handlers must not throw; RPC-level faults are encoded
/// into the returned frame by the RpcServer.  Handlers may run concurrently
/// on transport threads — server-side state must be synchronised.
using FrameHandler = std::function<Bytes(const Bytes&)>;

class Network {
 public:
  virtual ~Network() = default;

  Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Bind `handler` under a new endpoint; `hint` influences the address
  /// (in-proc uses it as the name).  Returns the endpoint URL.
  virtual std::string listen(const std::string& hint, FrameHandler handler) = 0;

  /// Remove a binding; subsequent calls to the endpoint fail.
  virtual void unlisten(const std::string& endpoint) = 0;

  /// Issue a round trip without blocking.  Never throws: synchronous
  /// failures (unknown endpoint, bad address, expired deadline) settle the
  /// returned PendingCall with the error.  `ctx` carries the caller's
  /// deadline; the transport refuses delivery once it has expired.
  virtual PendingCallPtr call_async(const std::string& endpoint,
                                    const Bytes& request,
                                    const CallContext& ctx) = 0;

  /// Synchronous round trip: call_async + wait.  Throws cosm::RpcError on
  /// unknown endpoint, connection failure or timeout.
  Bytes call(const std::string& endpoint, const Bytes& request,
             std::chrono::milliseconds timeout);

  /// Scheme prefix this network serves ("inproc" or "tcp").
  virtual std::string scheme() const = 0;

  /// Snapshot of the transport's instrumentation counters.  Decorators
  /// (fault injection) delegate to the wrapped transport.
  virtual NetworkStats stats() const { return {}; }
};

}  // namespace cosm::rpc
