// Epoll reactor: a small pool of event-loop threads owning many sockets.
//
// A Reactor runs N event-loop threads, each with its own epoll instance and
// an eventfd wake channel.  Registered connections are distributed over the
// loops round-robin; every socket belongs to exactly one loop, so there is
// no thundering herd and per-connection read state needs no locking (only
// its owning loop touches it).
//
// A Connection is a non-blocking socket plus a frame-reassembly buffer.  The
// loop reads whatever is available, slices complete
// [u32 length][u64 correlation id][payload] frames out of the buffer and
// hands each to the subclass's on_frame() — which must not block: server
// connections forward to an executor pool, client connections settle a
// PendingCall.  Writes go through a per-connection queue: queue_write_frame()
// attempts an immediate non-blocking send when the queue is empty and parks
// the remainder for the loop to flush on EPOLLOUT, so slow peers cost memory,
// not a stuck thread.
//
// Backpressure: a subclass may pause_reads() (drop read interest — the
// kernel's receive window then throttles the peer) and resume_reads() later
// from any thread; frames already buffered are delivered when reading
// resumes.
//
// Lifecycle: closes are asynchronous (request_close / request_close_after_
// flush post to the owning loop); on_closed() runs exactly once, on the loop
// thread (or on the destructor's thread for connections still registered at
// teardown).  wait_closed() blocks until that has happened.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/bytes.h"

namespace cosm::rpc {

/// Byte counters shared by every connection of one transport; feeds
/// NetworkStats::bytes_in / bytes_out.
struct ReactorCounters {
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
};

class Reactor {
 public:
  class Connection;
  using ConnectionPtr = std::shared_ptr<Connection>;

  /// `threads` event loops (minimum 1), started immediately.
  explicit Reactor(std::size_t threads);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  std::size_t thread_count() const noexcept { return loops_.size(); }

  /// Register a connected non-blocking socket; the reactor takes shared
  /// ownership and starts delivering its read events on one of the loops.
  /// A reactor already shutting down closes the connection instead.
  void add(const ConnectionPtr& conn);

  /// Asynchronously close; queued but unflushed writes are dropped.
  /// Idempotent.
  void request_close(const ConnectionPtr& conn);

  /// Asynchronously stop reading, flush the write queue, then close.
  /// Idempotent (and degrades to an immediate close when the queue is
  /// empty).
  void request_close_after_flush(const ConnectionPtr& conn);

  class Connection : public std::enable_shared_from_this<Connection> {
   public:
    /// Takes ownership of `fd`, which must already be non-blocking.
    explicit Connection(int fd, ReactorCounters* counters = nullptr);
    virtual ~Connection();

    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;

    /// True once the socket is closed (no further frames in or out).
    bool closed() const noexcept {
      return closed_.load(std::memory_order_acquire);
    }

    /// Queue one frame for sending; thread-safe.  The header and payload go
    /// out as one gathered sendmsg (scatter/gather — the payload is never
    /// copied into a contiguous frame) when the write queue is empty,
    /// otherwise the frame is parked for the owning loop to flush.  Returns
    /// false when the connection is (or just became) closed and the frame
    /// cannot reach the wire — the caller may safely reissue it elsewhere,
    /// because a partially-sent frame makes the peer drop the connection
    /// without dispatching it.
    bool queue_write_frame(std::uint64_t corr, const Bytes& payload);
    /// Move overload: a parked payload is adopted, not copied (the path
    /// server responses take).
    bool queue_write_frame(std::uint64_t corr, Bytes&& payload);

    /// Block until on_closed() has run (teardown synchronisation).
    void wait_closed();

    /// Bytes queued but not yet on the wire (instrumentation).
    std::size_t pending_write_bytes() const;

   protected:
    /// A complete frame arrived.  Runs on the owning loop thread; must not
    /// block.
    virtual void on_frame(std::uint64_t corr, Bytes payload) = 0;

    /// The socket is closed and deregistered.  Runs exactly once.
    virtual void on_closed() = 0;

    /// Socket became readable.  The default implementation reads and
    /// reassembles frames; listen sockets override it to accept instead.
    /// Runs on the owning loop thread.  Returns false to close the
    /// connection.
    virtual bool handle_readable();

    /// Drop read interest (kernel receive window then throttles the peer).
    /// Call only from on_frame() / the owning loop thread.
    void pause_reads();
    /// Restore read interest and deliver any frames already buffered; safe
    /// from any thread.
    void resume_reads();

    /// The reactor this connection is registered with (null before add()).
    Reactor* reactor() const noexcept { return reactor_; }

    int fd() const noexcept { return fd_; }

   private:
    friend class Reactor;

    /// One parked outbound frame: fixed header bytes + the payload as-is.
    /// `off` counts consumed bytes across header-then-payload, so a frame
    /// interrupted mid-send resumes exactly where the socket stopped.
    struct OutFrame {
      std::uint8_t header[12];
      Bytes payload;
      std::size_t off = 0;
    };

    /// Shared core of the two queue_write_frame overloads; `movable` (when
    /// non-null, aliasing `payload`) lets a parked payload be adopted.
    bool write_frame(std::uint64_t corr, const Bytes& payload, Bytes* movable);

    /// Flush the write queue on EPOLLOUT; returns true when the connection
    /// should close (flush finished a close_after_flush, or a hard write
    /// error).  Loop thread only.
    bool flush_ready();
    /// Slice and dispatch complete frames from inbuf_.  Returns false to
    /// close (oversized frame).  Loop thread only.
    bool deliver_buffered();
    /// Re-sync the epoll interest mask with want_write_/paused_.  Requires
    /// io_mutex_.
    void sync_interest_locked();

    Reactor* reactor_ = nullptr;
    void* loop_ = nullptr;  // Reactor::Loop*, opaque here

    mutable std::mutex io_mutex_;
    int fd_ = -1;
    bool registered_ = false;        // epoll ADD done
    bool want_write_ = false;        // EPOLLOUT armed (outbuf_ non-empty)
    bool paused_ = false;            // read interest dropped
    bool close_after_flush_ = false;
    std::deque<OutFrame> outq_;  // parked frames, oldest first
    std::atomic<bool> closed_{false};
    bool close_done_ = false;  // on_closed() ran
    std::condition_variable closed_cv_;

    // Read-side reassembly state: owning loop thread only.
    std::vector<std::uint8_t> inbuf_;
    std::size_t in_off_ = 0;

    ReactorCounters* counters_ = nullptr;
  };

 private:
  struct Loop;

  /// Close `conn` now (caller must be the owning loop thread, or hold the
  /// joined-loops guarantee of the destructor).  Safe to call repeatedly.
  static void close_now(const ConnectionPtr& conn);

  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<std::size_t> next_loop_{0};
};

}  // namespace cosm::rpc
