#include "rpc/inproc.h"

#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/error.h"
#include "common/id.h"

namespace cosm::rpc {

struct InProcNetwork::Gate {
  std::mutex m;
  std::condition_variable cv;
  int in_flight = 0;

  void enter() {
    std::lock_guard lock(m);
    ++in_flight;
  }
  void leave() {
    {
      std::lock_guard lock(m);
      --in_flight;
    }
    cv.notify_all();
  }
  void wait_idle() {
    std::unique_lock lock(m);
    cv.wait(lock, [&] { return in_flight == 0; });
  }
};

std::string InProcNetwork::listen(const std::string& hint, FrameHandler handler) {
  if (!handler) throw ContractError("listen: handler must be callable");
  std::unique_lock lock(mutex_);
  std::string endpoint = "inproc://" + (hint.empty() ? "ep" : hint);
  if (endpoints_.count(endpoint)) {
    endpoint = "inproc://" + (hint.empty() ? "ep" : hint) + "-" +
               std::to_string(next_id());
  }
  endpoints_.emplace(endpoint,
                     Endpoint{std::move(handler), std::make_shared<Gate>()});
  return endpoint;
}

void InProcNetwork::unlisten(const std::string& endpoint) {
  std::shared_ptr<Gate> gate;
  {
    std::unique_lock lock(mutex_);
    auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end()) return;
    gate = std::move(it->second.gate);
    endpoints_.erase(it);
  }
  // Block until every delivery that copied this endpoint's handler has
  // finished (or was cancelled): the caller may destroy the handler's
  // captures the moment we return.
  gate->wait_idle();
}

NetworkStats InProcNetwork::stats() const {
  NetworkStats s;
  s.frames = frames_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_.load(std::memory_order_relaxed);
  s.event_loop_threads = executor_.worker_count();
  std::shared_lock lock(mutex_);
  s.connections = endpoints_.size();  // loopback "connections" = bindings
  for (const auto& [name, ep] : endpoints_) {
    std::lock_guard gate_lock(ep.gate->m);
    s.in_flight_frames += static_cast<std::size_t>(ep.gate->in_flight);
  }
  return s;
}

PendingCallPtr InProcNetwork::call_async(const std::string& endpoint,
                                         const Bytes& request,
                                         const CallContext& ctx) {
  FrameHandler handler;
  std::shared_ptr<Gate> gate;
  {
    std::shared_lock lock(mutex_);
    auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end()) {
      return failed_call(std::make_exception_ptr(
          RpcError("no endpoint bound at '" + endpoint + "'")));
    }
    // Copy the handler so the registry lock is not held during the call
    // (handlers may themselves issue calls — browsers call traders, etc.).
    handler = it->second.handler;
    gate = it->second.gate;
    // Enter the gate under the registry lock: unlisten's erase (unique lock)
    // can then only run strictly before this call saw the endpoint or
    // strictly after it is counted in flight — never in between.
    gate->enter();
  }

  // Leaves the gate when the delivery lambda is destroyed — after it ran,
  // when it is cancelled, or when the executor drains at shutdown.
  auto gate_guard = std::shared_ptr<void>(
      nullptr, [gate = std::move(gate)](void*) { gate->leave(); });

  auto pending = std::make_shared<PendingCall>();
  auto deliver = [this, handler = std::move(handler), request, ctx, pending,
                  gate_guard] {
    if (ctx.expired()) {
      pending->fail(std::make_exception_ptr(
          RpcError("call timed out (deadline exceeded before delivery)")));
      return;
    }
    if (options_.latency.count() > 0) {
      std::this_thread::sleep_for(options_.latency);
    }
    frames_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(request.size(), std::memory_order_relaxed);
    try {
      pending->complete(handler(request));
    } catch (...) {
      // Frame handlers must not throw; tolerate raw test handlers anyway.
      pending->fail(std::current_exception());
    }
  };
  Executor::TaskPtr task = executor_.submit(std::move(deliver));
  // A caller that times out retracts the delivery if it is still queued, so
  // expired calls never occupy a worker.
  pending->set_cancel_hook([task] { task->cancel(); });
  return pending;
}

}  // namespace cosm::rpc
