// RPC facades for the Service Support Level components.
//
// Each facade wraps a local component in a ServiceObject whose interface is
// itself described in SIDL — the support infrastructure eats its own dog
// food, so a generic client can browse and drive the name server exactly
// like any application service (§3.2: "the browser may also act as an
// application service as well").

#pragma once

#include "naming/group_manager.h"
#include "naming/interface_repository.h"
#include "naming/name_server.h"
#include "rpc/service_object.h"

namespace cosm::naming {

/// SIDL text of each facade's interface (exposed for tests and docs).
const std::string& name_server_sidl();
const std::string& group_manager_sidl();
const std::string& interface_repository_sidl();

/// Wrap a NameServer.  The facade holds a reference; the component must
/// outlive the returned object.
rpc::ServiceObjectPtr make_name_server_service(NameServer& ns);

/// Wrap a GroupManager.
rpc::ServiceObjectPtr make_group_manager_service(GroupManager& gm);

/// Wrap an InterfaceRepository.
rpc::ServiceObjectPtr make_interface_repository_service(InterfaceRepository& repo);

}  // namespace cosm::naming
