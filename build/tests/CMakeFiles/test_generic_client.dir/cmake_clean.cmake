file(REMOVE_RECURSE
  "CMakeFiles/test_generic_client.dir/test_generic_client.cpp.o"
  "CMakeFiles/test_generic_client.dir/test_generic_client.cpp.o.d"
  "test_generic_client"
  "test_generic_client.pdb"
  "test_generic_client[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generic_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
