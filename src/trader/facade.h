// RPC facade for the trader and the remote federation gateway.
//
// The facade exposes the full computational interface of §2.1 — export,
// withdraw, modify, import, list — plus the management interface (service
// type insertion/deletion) over the COSM RPC substrate, described in SIDL
// like any other service.  RemoteTraderGateway lets one trader's federation
// link point at another trader across the network.

#pragma once

#include <memory>

#include "rpc/network.h"
#include "rpc/retry.h"
#include "rpc/service_object.h"
#include "trader/trader.h"

namespace cosm::trader {

/// SIDL text of the trader's interface.
const std::string& trader_sidl();

/// Wrap a Trader in a ServiceObject.  The trader must outlive the object.
rpc::ServiceObjectPtr make_trader_service(Trader& trader);

/// Offer <-> wire conversions (shared by facade and gateway).
wire::Value offer_to_value(const Offer& offer);
Offer offer_from_value(const wire::Value& value);

/// Federation link target reachable over RPC.  Import is read-only, so a
/// retry policy (when given) reissues it on transport failure; the server's
/// replay cache dedupes any request that did reach it.
class RemoteTraderGateway final : public TraderGateway {
 public:
  RemoteTraderGateway(rpc::Network& network, sidl::ServiceRef trader_ref,
                      rpc::RetryPolicy retry = {});

  std::vector<Offer> import(const ImportRequest& request) override;
  std::string describe() const override;

 private:
  rpc::Network& network_;
  sidl::ServiceRef ref_;
  rpc::RetryPolicy retry_;
};

}  // namespace cosm::trader
