// COSM common error hierarchy.
//
// All recoverable failures in the COSM libraries are reported as exceptions
// derived from cosm::Error (Core Guidelines E.14: use purpose-designed user
// types as exceptions).  Each subsystem derives its own error type so callers
// can catch at the granularity they care about.

#pragma once

#include <stdexcept>
#include <string>

namespace cosm {

/// Root of the COSM exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A precondition or API-contract violation by the caller.
class ContractError : public Error {
 public:
  explicit ContractError(const std::string& what) : Error(what) {}
};

/// Failure while parsing SIDL text or a trader constraint expression.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, int column)
      : Error(format(what, line, column)), line_(line), column_(column) {}

  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  static std::string format(const std::string& what, int line, int column);
  int line_;
  int column_;
};

/// A value does not conform to the type description it was checked against.
class TypeError : public Error {
 public:
  explicit TypeError(const std::string& what) : Error(what) {}
};

/// Failure while encoding or decoding wire bytes.
class WireError : public Error {
 public:
  explicit WireError(const std::string& what) : Error(what) {}
};

/// Failure in the RPC substrate (transport, framing, dispatch, timeout).
class RpcError : public Error {
 public:
  explicit RpcError(const std::string& what) : Error(what) {}
};

/// The remote side reported an application-level fault.
class RemoteFault : public RpcError {
 public:
  explicit RemoteFault(const std::string& what) : RpcError(what) {}
};

/// A name, reference, offer, type or group could not be resolved.
class NotFound : public Error {
 public:
  explicit NotFound(const std::string& what) : Error(what) {}
};

/// An operation was attempted in a communication state the service's FSM
/// specification does not allow (rejected locally by the generic client).
class ProtocolError : public Error {
 public:
  ProtocolError(const std::string& what, std::string state, std::string op)
      : Error(what), state_(std::move(state)), operation_(std::move(op)) {}

  const std::string& state() const noexcept { return state_; }
  const std::string& operation() const noexcept { return operation_; }

 private:
  std::string state_;
  std::string operation_;
};

}  // namespace cosm
