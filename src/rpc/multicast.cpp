#include "rpc/multicast.h"

#include "common/error.h"
#include "rpc/channel.h"

namespace cosm::rpc {

std::vector<MulticastOutcome> multicast_call(Network& network,
                                             const std::vector<sidl::ServiceRef>& members,
                                             const std::string& operation,
                                             const std::vector<wire::Value>& args,
                                             MulticastOptions options) {
  std::vector<MulticastOutcome> outcomes;
  outcomes.reserve(members.size());
  std::size_t successes = 0;
  for (const auto& member : members) {
    MulticastOutcome outcome;
    outcome.member = member;
    try {
      RpcChannel channel(network, member, ChannelOptions{options.timeout});
      outcome.result = channel.call(operation, args);
      ++successes;
    } catch (const Error& e) {
      outcome.error = e.what();
    }
    outcomes.push_back(std::move(outcome));
    if (options.quorum > 0 && successes >= options.quorum) break;
  }
  return outcomes;
}

}  // namespace cosm::rpc
