#include "sidl/parser.h"

#include <map>

#include "common/error.h"
#include "sidl/lexer.h"

namespace cosm::sidl {

namespace {

bool is_primitive_keyword(const std::string& s) {
  return s == "void" || s == "boolean" || s == "long" || s == "short" ||
         s == "float" || s == "double" || s == "string" ||
         s == "ServiceReference" || s == "SID" || s == "any";
}

class Parser {
 public:
  Parser(std::string_view source, const ParserOptions& options)
      : source_(source), options_(options), tokens_(tokenize(source)) {}

  Sid parse_sid() {
    expect_keyword("module");
    Sid sid;
    sid.name = expect(TokKind::Ident).text;
    expect(TokKind::LBrace);
    while (!at(TokKind::RBrace)) {
      parse_item(sid);
    }
    expect(TokKind::RBrace);
    accept(TokKind::Semi);
    expect(TokKind::End);
    return sid;
  }

  TypePtr parse_standalone_type() {
    TypePtr t = parse_typespec("");
    expect(TokKind::End);
    return t;
  }

 private:
  // --- token stream helpers ---

  const Token& peek(std::size_t ahead = 0) const {
    std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  bool at(TokKind kind) const { return peek().kind == kind; }

  bool at_keyword(const std::string& kw) const {
    return peek().kind == TokKind::Ident && peek().text == kw;
  }

  const Token& advance() {
    const Token& t = tokens_[pos_];
    if (t.kind != TokKind::End) ++pos_;
    return t;
  }

  bool accept(TokKind kind) {
    if (at(kind)) {
      advance();
      return true;
    }
    return false;
  }

  const Token& expect(TokKind kind) {
    if (!at(kind)) {
      fail("expected " + to_string(kind) + ", found " + describe(peek()));
    }
    return advance();
  }

  void expect_keyword(const std::string& kw) {
    if (!at_keyword(kw)) {
      fail("expected '" + kw + "', found " + describe(peek()));
    }
    advance();
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, peek().line, peek().column);
  }

  static std::string describe(const Token& t) {
    if (t.kind == TokKind::Ident) return "'" + t.text + "'";
    if (t.kind == TokKind::End) return "end of input";
    return to_string(t.kind);
  }

  // --- items ---

  void parse_item(Sid& sid) {
    if (at_keyword("typedef")) {
      parse_typedef(sid);
    } else if (at_keyword("interface")) {
      parse_interface(sid);
    } else if (at_keyword("module")) {
      parse_submodule(sid);
    } else if (at_keyword("const")) {
      auto [name, lit] = parse_const();
      sid.constants.emplace_back(std::move(name), std::move(lit));
    } else {
      fail("expected typedef, interface, module or const, found " +
           describe(peek()));
    }
  }

  void parse_typedef(Sid& sid) {
    expect_keyword("typedef");
    std::string name;
    TypePtr type;
    // Paper order: `typedef CarModel_t enum { ... };` — the name comes first
    // when the next token is an identifier that is neither a primitive nor a
    // declared type, and the token after it starts a constructed typespec.
    if (peek().kind == TokKind::Ident && !is_primitive_keyword(peek().text) &&
        !named_types_.count(peek().text) && peek(1).kind == TokKind::Ident &&
        (peek(1).text == "enum" || peek(1).text == "struct" ||
         peek(1).text == "sequence" || peek(1).text == "optional" ||
         is_primitive_keyword(peek(1).text))) {
      name = advance().text;
      type = parse_typespec(name);
    } else {
      type = parse_typespec("");
      name = expect(TokKind::Ident).text;
      type = with_name(type, name);
    }
    expect(TokKind::Semi);
    if (named_types_.count(name)) fail("duplicate type name '" + name + "'");
    named_types_[name] = type;
    sid.types.emplace_back(name, type);
  }

  /// Rebuild an anonymous enum/struct with the typedef name attached.
  static TypePtr with_name(const TypePtr& t, const std::string& name) {
    if (t->kind() == TypeKind::Enum && t->name().empty()) {
      return TypeDesc::enum_(name, t->labels());
    }
    if (t->kind() == TypeKind::Struct && t->name().empty()) {
      return TypeDesc::struct_(name, t->fields());
    }
    return t;
  }

  TypePtr parse_typespec(const std::string& name_hint) {
    const Token& t = peek();
    if (t.kind != TokKind::Ident) {
      fail("expected type, found " + describe(t));
    }
    const std::string& kw = t.text;
    if (kw == "void") { advance(); return TypeDesc::void_(); }
    if (kw == "boolean") { advance(); return TypeDesc::bool_(); }
    if (kw == "long" || kw == "short") {
      advance();
      accept_keyword("long");  // tolerate "long long"
      return TypeDesc::int_();
    }
    if (kw == "float" || kw == "double") { advance(); return TypeDesc::float_(); }
    if (kw == "string") { advance(); return TypeDesc::string_(); }
    if (kw == "ServiceReference") { advance(); return TypeDesc::service_ref(); }
    if (kw == "SID") { advance(); return TypeDesc::sid(); }
    if (kw == "any") { advance(); return TypeDesc::any(); }
    if (kw == "enum") {
      advance();
      // optional inline tag name: enum Name { ... }
      std::string tag = name_hint;
      if (peek().kind == TokKind::Ident) tag = advance().text;
      expect(TokKind::LBrace);
      std::vector<std::string> labels;
      while (!at(TokKind::RBrace)) {
        labels.push_back(parse_label());
        if (!accept(TokKind::Comma)) break;
      }
      expect(TokKind::RBrace);
      if (labels.empty()) fail("enum must declare at least one label");
      return TypeDesc::enum_(tag, std::move(labels));
    }
    if (kw == "struct") {
      advance();
      std::string tag = name_hint;
      if (peek().kind == TokKind::Ident) tag = advance().text;
      expect(TokKind::LBrace);
      std::vector<FieldDesc> fields;
      while (!at(TokKind::RBrace)) {
        TypePtr ft = parse_typespec("");
        if (ft->kind() == TypeKind::Void) fail("struct field cannot be void");
        std::string fname = expect(TokKind::Ident).text;
        expect(TokKind::Semi);
        fields.push_back({std::move(fname), std::move(ft)});
      }
      expect(TokKind::RBrace);
      return TypeDesc::struct_(tag, std::move(fields));
    }
    if (kw == "sequence" || kw == "optional") {
      advance();
      expect(TokKind::LAngle);
      TypePtr elem = parse_typespec("");
      if (elem->kind() == TypeKind::Void) fail(kw + " element cannot be void");
      expect(TokKind::RAngle);
      return kw == "sequence" ? TypeDesc::sequence(std::move(elem))
                              : TypeDesc::optional(std::move(elem));
    }
    // Named reference to an earlier typedef.
    auto it = named_types_.find(kw);
    if (it == named_types_.end()) {
      fail("unknown type '" + kw + "' (types must be declared before use)");
    }
    advance();
    return it->second;
  }

  bool accept_keyword(const std::string& kw) {
    if (at_keyword(kw)) {
      advance();
      return true;
    }
    return false;
  }

  /// Enum labels may contain '-' in the paper ("FIAT-Uno"); the lexer splits
  /// that into Ident Minus Ident, so rejoin with '_' to keep labels
  /// identifier-shaped.
  std::string parse_label() {
    std::string label = expect(TokKind::Ident).text;
    while (at(TokKind::Minus) && peek(1).kind == TokKind::Ident) {
      advance();
      label += "_" + advance().text;
    }
    return label;
  }

  void parse_interface(Sid& sid) {
    expect_keyword("interface");
    std::string iface = expect(TokKind::Ident).text;
    if (sid.interface_name.empty()) sid.interface_name = iface;
    expect(TokKind::LBrace);
    while (!at(TokKind::RBrace)) {
      sid.operations.push_back(parse_operation(sid));
    }
    expect(TokKind::RBrace);
    accept(TokKind::Semi);
  }

  OperationDesc parse_operation(const Sid& sid) {
    OperationDesc op;
    op.result = parse_typespec("");
    op.name = expect(TokKind::Ident).text;
    if (sid.find_operation(op.name) != nullptr) {
      fail("duplicate operation '" + op.name + "'");
    }
    expect(TokKind::LParen);
    int arg_index = 0;
    while (!at(TokKind::RParen)) {
      ParamDesc p;
      // Direction: "[in]" (paper style) or bare "in"/"out"/"inout".
      if (accept(TokKind::LBracket)) {
        p.dir = parse_dir();
        expect(TokKind::RBracket);
      } else if (at_keyword("in") || at_keyword("out") || at_keyword("inout")) {
        // Only treat as a direction when a type follows (an identifier named
        // "in" used as a type would be pathological; directions win).
        p.dir = parse_dir();
      }
      p.type = parse_typespec("");
      if (p.type->kind() == TypeKind::Void) fail("parameter cannot be void");
      if (peek().kind == TokKind::Ident) {
        p.name = advance().text;
      } else {
        p.name = "arg" + std::to_string(arg_index);
      }
      ++arg_index;
      op.params.push_back(std::move(p));
      if (!accept(TokKind::Comma)) break;
    }
    expect(TokKind::RParen);
    expect(TokKind::Semi);
    return op;
  }

  ParamDir parse_dir() {
    const Token& t = expect(TokKind::Ident);
    if (t.text == "in") return ParamDir::In;
    if (t.text == "out") return ParamDir::Out;
    if (t.text == "inout") return ParamDir::InOut;
    fail("expected parameter direction in/out/inout, found '" + t.text + "'");
  }

  std::pair<std::string, Literal> parse_const() {
    expect_keyword("const");
    // Declared type: primitive keyword or a (possibly undeclared, e.g. "ID",
    // "String" in the paper) type identifier.  The literal's own shape
    // determines the stored value.
    expect(TokKind::Ident);
    std::string name = expect(TokKind::Ident).text;
    expect(TokKind::Equals);
    Literal lit = parse_literal();
    expect(TokKind::Semi);
    return {std::move(name), std::move(lit)};
  }

  Literal parse_literal() {
    const Token& t = peek();
    switch (t.kind) {
      case TokKind::IntLit:
        advance();
        return Literal(static_cast<std::int64_t>(std::stoll(t.text)));
      case TokKind::FloatLit:
        advance();
        return Literal(std::stod(t.text));
      case TokKind::StringLit:
        advance();
        return Literal(t.text);
      case TokKind::Ident: {
        if (t.text == "true") { advance(); return Literal(true); }
        if (t.text == "false") { advance(); return Literal(false); }
        // Enum label constant, possibly hyphenated (FIAT-Uno).
        return Literal(EnumLabel{parse_label()});
      }
      default:
        fail("expected literal, found " + describe(t));
    }
  }

  // --- extension modules ---

  void parse_submodule(Sid& sid) {
    expect_keyword("module");
    std::string name = expect(TokKind::Ident).text;
    if (name == "COSM_TraderExport") {
      parse_trader_export(sid);
    } else if (name == "COSM_FSM") {
      parse_fsm(sid);
    } else if (name == "COSM_Annotations") {
      parse_annotations(sid);
    } else if (options_.strict_unknown_modules) {
      fail("unknown extension module '" + name +
           "' (strict mode rejects unrecognised modules)");
    } else {
      skip_unknown_module(sid, std::move(name));
    }
  }

  void parse_trader_export(Sid& sid) {
    if (sid.trader_export) fail("duplicate COSM_TraderExport module");
    expect(TokKind::LBrace);
    TraderExport te;
    while (!at(TokKind::RBrace)) {
      auto [name, lit] = parse_const();
      if (name == "TOD") {
        if (!lit.is_string()) fail("TOD must be a string constant");
        te.service_type = lit.as_string();
      } else {
        te.attributes.emplace_back(std::move(name), std::move(lit));
      }
    }
    expect(TokKind::RBrace);
    accept(TokKind::Semi);
    if (te.service_type.empty()) {
      fail("COSM_TraderExport requires a TOD (service type name) constant");
    }
    sid.trader_export = std::move(te);
  }

  void parse_fsm(Sid& sid) {
    if (sid.fsm) fail("duplicate COSM_FSM module");
    expect(TokKind::LBrace);
    FsmSpec fsm;
    while (!at(TokKind::RBrace)) {
      if (accept_keyword("states")) {
        expect(TokKind::LBrace);
        while (!at(TokKind::RBrace)) {
          fsm.states.push_back(expect(TokKind::Ident).text);
          if (!accept(TokKind::Comma)) break;
        }
        expect(TokKind::RBrace);
        expect(TokKind::Semi);
      } else if (accept_keyword("initial")) {
        fsm.initial = expect(TokKind::Ident).text;
        expect(TokKind::Semi);
      } else if (accept_keyword("transition")) {
        FsmTransition tr;
        tr.from = expect(TokKind::Ident).text;
        tr.operation = expect(TokKind::Ident).text;
        tr.to = expect(TokKind::Ident).text;
        expect(TokKind::Semi);
        fsm.transitions.push_back(std::move(tr));
      } else if (accept(TokKind::LParen)) {
        // Paper's tuple form: (INIT, SelectCar, SELECTED)
        FsmTransition tr;
        tr.from = expect(TokKind::Ident).text;
        expect(TokKind::Comma);
        tr.operation = expect(TokKind::Ident).text;
        expect(TokKind::Comma);
        tr.to = expect(TokKind::Ident).text;
        expect(TokKind::RParen);
        accept(TokKind::Comma);
        accept(TokKind::Semi);
        fsm.transitions.push_back(std::move(tr));
      } else {
        fail("expected states/initial/transition in COSM_FSM, found " +
             describe(peek()));
      }
    }
    expect(TokKind::RBrace);
    accept(TokKind::Semi);
    sid.fsm = std::move(fsm);
  }

  void parse_annotations(Sid& sid) {
    expect(TokKind::LBrace);
    while (!at(TokKind::RBrace)) {
      expect_keyword("annotate");
      std::string element = expect(TokKind::Ident).text;
      std::string text = expect(TokKind::StringLit).text;
      expect(TokKind::Semi);
      sid.annotations[element] = std::move(text);
    }
    expect(TokKind::RBrace);
    accept(TokKind::Semi);
  }

  /// §4.1 skipping rule: consume the module's balanced braces, preserving
  /// its body text verbatim for onward transmission.
  void skip_unknown_module(Sid& sid, std::string name) {
    const Token& open = expect(TokKind::LBrace);
    std::size_t body_begin = open.end;
    int depth = 1;
    std::size_t body_end = body_begin;
    while (depth > 0) {
      const Token& t = advance();
      if (t.kind == TokKind::End) {
        fail("unterminated module '" + name + "'");
      }
      if (t.kind == TokKind::LBrace) ++depth;
      if (t.kind == TokKind::RBrace) {
        --depth;
        if (depth == 0) body_end = t.begin;
      }
    }
    accept(TokKind::Semi);
    sid.unknown_extensions.push_back(
        {std::move(name),
         std::string(source_.substr(body_begin, body_end - body_begin))});
  }

  std::string_view source_;
  ParserOptions options_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::map<std::string, TypePtr> named_types_;
};

}  // namespace

Sid parse_sid(std::string_view source, const ParserOptions& options) {
  return Parser(source, options).parse_sid();
}

TypePtr parse_type(std::string_view source) {
  return Parser(source, ParserOptions{}).parse_standalone_type();
}

}  // namespace cosm::sidl
