#include "rpc/txn.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "rpc/channel.h"
#include "rpc/inproc.h"
#include "rpc/server.h"
#include "sidl/parser.h"

namespace cosm::rpc {
namespace {

using wire::Value;

/// A participant that records what happened to it.
struct Account {
  bool vote = true;
  int prepared = 0, committed = 0, aborted = 0;
};

ServiceObjectPtr account_service(Account& account) {
  auto sid = std::make_shared<sidl::Sid>(
      sidl::parse_sid("module Account { interface I { long Balance(); }; };"));
  auto object = std::make_shared<ServiceObject>(sid);
  object->on("Balance", [](const std::vector<Value>&) { return Value::integer(0); });
  install_txn_participant(
      *object, TxnHooks{
                   [&account](const std::string&) {
                     ++account.prepared;
                     return account.vote;
                   },
                   [&account](const std::string&) { ++account.committed; },
                   [&account](const std::string&) { ++account.aborted; },
               });
  return object;
}

class TxnTest : public ::testing::Test {
 protected:
  InProcNetwork net;
  RpcServer server{net, "host"};
  TxnCoordinator coordinator{net};
};

TEST_F(TxnTest, AllYesCommits) {
  Account a, b;
  auto ra = server.add(account_service(a));
  auto rb = server.add(account_service(b));
  auto report = coordinator.run({ra, rb}, "txn-1");
  EXPECT_EQ(report.outcome, TxnOutcome::Committed);
  EXPECT_TRUE(report.dissenters.empty());
  EXPECT_EQ(a.committed, 1);
  EXPECT_EQ(b.committed, 1);
  EXPECT_EQ(a.aborted, 0);
  EXPECT_EQ(coordinator.committed(), 1u);
}

TEST_F(TxnTest, OneNoAbortsEveryone) {
  Account a, b, c;
  b.vote = false;
  auto ra = server.add(account_service(a));
  auto rb = server.add(account_service(b));
  auto rc = server.add(account_service(c));
  auto report = coordinator.run({ra, rb, rc}, "txn-2");
  EXPECT_EQ(report.outcome, TxnOutcome::Aborted);
  ASSERT_EQ(report.dissenters.size(), 1u);
  EXPECT_EQ(report.dissenters[0], rb.id);
  // Prepared participants must be told to abort; the dissenter never
  // prepared so its abort hook is not invoked.
  EXPECT_EQ(a.aborted, 1);
  EXPECT_EQ(c.aborted, 1);
  EXPECT_EQ(b.aborted, 0);
  EXPECT_EQ(a.committed + b.committed + c.committed, 0);
}

TEST_F(TxnTest, UnreachableParticipantCountsAsNo) {
  Account a;
  auto ra = server.add(account_service(a));
  sidl::ServiceRef ghost{"ghost", "inproc://nowhere", "Account"};
  auto report = coordinator.run({ra, ghost}, "txn-3");
  EXPECT_EQ(report.outcome, TxnOutcome::Aborted);
  EXPECT_EQ(a.aborted, 1);
  EXPECT_EQ(coordinator.aborted(), 1u);
}

TEST_F(TxnTest, EmptyParticipantListAborts) {
  auto report = coordinator.run({}, "txn-4");
  EXPECT_EQ(report.outcome, TxnOutcome::Aborted);
}

TEST_F(TxnTest, SequentialTransactionsIndependent) {
  Account a;
  auto ra = server.add(account_service(a));
  coordinator.run({ra}, "txn-5");
  coordinator.run({ra}, "txn-6");
  EXPECT_EQ(a.committed, 2);
  EXPECT_EQ(a.prepared, 2);
}

TEST_F(TxnTest, CommitForUnpreparedTransactionFaults) {
  Account a;
  auto ra = server.add(account_service(a));
  RpcChannel channel(net, ra);
  EXPECT_THROW(channel.call("_commit", {Value::string("never-prepared")}),
               RemoteFault);
  EXPECT_EQ(a.committed, 0);
}

TEST_F(TxnTest, AbortForUnknownTransactionIsIdempotent) {
  Account a;
  auto ra = server.add(account_service(a));
  RpcChannel channel(net, ra);
  EXPECT_NO_THROW(channel.call("_abort", {Value::string("never-prepared")}));
  EXPECT_EQ(a.aborted, 0);
}

TEST_F(TxnTest, DoubleCommitRejected) {
  Account a;
  auto ra = server.add(account_service(a));
  RpcChannel channel(net, ra);
  channel.call("_prepare", {Value::string("t")});
  channel.call("_commit", {Value::string("t")});
  EXPECT_THROW(channel.call("_commit", {Value::string("t")}), RemoteFault);
  EXPECT_EQ(a.committed, 1);
}

TEST(TxnHooksTest, MissingHooksRejected) {
  auto sid = std::make_shared<sidl::Sid>(
      sidl::parse_sid("module M { interface I { void Op(); }; };"));
  ServiceObject object(sid);
  EXPECT_THROW(install_txn_participant(object, TxnHooks{}), ContractError);
}

TEST(TxnOutcomeTest, ToString) {
  EXPECT_EQ(to_string(TxnOutcome::Committed), "committed");
  EXPECT_EQ(to_string(TxnOutcome::Aborted), "aborted");
}

}  // namespace
}  // namespace cosm::rpc
