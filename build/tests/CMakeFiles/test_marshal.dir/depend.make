# Empty dependencies file for test_marshal.
# This may be replaced when dependencies are built.
