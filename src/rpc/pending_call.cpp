#include "rpc/pending_call.h"

#include "common/error.h"

namespace cosm::rpc {

void PendingCall::settle(Bytes response, std::exception_ptr error) {
  std::vector<Callback> callbacks;
  {
    std::lock_guard lock(mutex_);
    if (settled_) return;  // first settlement wins
    settled_ = true;
    response_ = std::move(response);
    error_ = error;
    callbacks.swap(callbacks_);
  }
  settled_cv_.notify_all();
  for (auto& callback : callbacks) {
    callback(error_ ? nullptr : &response_, error_);
  }
}

void PendingCall::complete(Bytes response) { settle(std::move(response), nullptr); }

void PendingCall::fail(std::exception_ptr error) { settle({}, error); }

void PendingCall::set_cancel_hook(std::function<void()> hook) {
  std::lock_guard lock(mutex_);
  cancel_hook_ = std::move(hook);
}

bool PendingCall::done() const {
  std::lock_guard lock(mutex_);
  return settled_;
}

Bytes PendingCall::get(const CallContext& ctx) {
  std::unique_lock lock(mutex_);
  if (ctx.has_deadline()) {
    if (!settled_cv_.wait_until(lock, ctx.deadline, [&] { return settled_; })) {
      // Give the transport a chance to retract work that never started;
      // work already running is simply abandoned.
      std::function<void()> cancel = cancel_hook_;
      lock.unlock();
      if (cancel) cancel();
      throw RpcError("call timed out (deadline exceeded while waiting)");
    }
  } else {
    settled_cv_.wait(lock, [&] { return settled_; });
  }
  if (error_) std::rethrow_exception(error_);
  return response_;
}

Bytes PendingCall::get(std::chrono::milliseconds timeout) {
  return get(CallContext::with_timeout(timeout));
}

void PendingCall::on_complete(Callback callback) {
  {
    std::lock_guard lock(mutex_);
    if (!settled_) {
      callbacks_.push_back(std::move(callback));
      return;
    }
  }
  callback(error_ ? nullptr : &response_, error_);
}

PendingCallPtr failed_call(std::exception_ptr error) {
  auto pending = std::make_shared<PendingCall>();
  pending->fail(error);
  return pending;
}

}  // namespace cosm::rpc
