// Per-process cache of compiled OperationPlans.
//
// Plans are compiled from *transferred* SIDs at runtime (the openness
// property of §3.1), so the same operation is marshalled many times per
// process — by the generic client, the RPC channel, and server dispatch.
// The cache is keyed by (SID identity, operation name) and populated lazily
// on first call.  Identity is the Sid object's address, guarded by a
// weak_ptr: an entry only serves a hit while the exact Sid object that
// produced it is still alive, which defeats both staleness (a re-registered
// SID is a new object → old entries can never match) and ABA address reuse
// (the weak_ptr of a freed Sid either fails to lock or locks a different
// object at the same address, and the pointer comparison catches the
// latter).  Re-registration sites additionally call invalidate() so dead
// entries are reclaimed eagerly instead of waiting for LRU pressure.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sidl/sid.h"
#include "wire/plan.h"

namespace cosm::wire {

class PlanCache {
 public:
  /// The process-wide cache.
  static PlanCache& instance();

  /// The compiled plan for `op` of `sid` — cached, or compiled and inserted
  /// on first call.  Compilation happens outside the cache lock, so
  /// concurrent first calls may compile twice; one result wins and both
  /// callers get a usable plan.
  std::shared_ptr<const OperationPlan> operation_plan(const sidl::SidPtr& sid,
                                                      const sidl::OperationDesc& op);

  /// Drop every entry compiled from `sid` (call when a SID is re-registered
  /// or a service removed).
  void invalidate(const sidl::Sid* sid);

  /// Drop everything (tests).
  void clear();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0;  // entries dropped via invalidate()
    std::uint64_t evictions = 0;      // entries dropped by LRU pressure
    std::size_t entries = 0;
  };
  Stats stats() const;

  /// Maximum number of cached plans (default 1024); the least recently used
  /// entry is evicted beyond it.
  void set_capacity(std::size_t capacity);

 private:
  struct Key {
    const sidl::Sid* sid;
    std::string operation;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<const void*>()(k.sid) ^
             (std::hash<std::string>()(k.operation) * 1315423911u);
    }
  };
  struct Entry {
    std::weak_ptr<const sidl::Sid> guard;
    std::shared_ptr<const OperationPlan> plan;
    std::uint64_t last_used = 0;
  };

  void evict_locked();

  mutable std::mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::size_t capacity_ = 1024;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t invalidations_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace cosm::wire
