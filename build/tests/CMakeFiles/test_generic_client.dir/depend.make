# Empty dependencies file for test_generic_client.
# This may be replaced when dependencies are built.
