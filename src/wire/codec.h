// Self-describing TLV encoding of Values.
//
// Every value carries a one-byte kind tag, so a receiver can decode without
// prior knowledge of the type — the property that lets a Browser accept
// registrations of services it has never heard of.  Type *checking* against
// a SID happens separately in the marshaller (marshal.h).
//
// SIDs are encoded in their SIDL source form (a string) and re-parsed on
// decode: this is precisely how the paper keeps extended SIDs processable by
// components that understand fewer extension modules — the unknown modules
// ride along as text.

#pragma once

#include "common/bytes.h"
#include "wire/value.h"

namespace cosm::wire {

/// Append the value's TLV encoding to the writer.
void encode_value(ByteWriter& writer, const Value& value);

/// Convenience: encode into a fresh byte vector.
Bytes encode_value(const Value& value);

/// Decode one value; throws cosm::WireError on malformed bytes (including a
/// SID payload that fails to parse).
Value decode_value(ByteReader& reader);

/// Convenience: decode a byte vector that holds exactly one value.
Value decode_value(const Bytes& bytes);

}  // namespace cosm::wire
