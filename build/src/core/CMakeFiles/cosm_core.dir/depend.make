# Empty dependencies file for cosm_core.
# This may be replaced when dependencies are built.
