file(REMOVE_RECURSE
  "CMakeFiles/test_sid_export.dir/test_sid_export.cpp.o"
  "CMakeFiles/test_sid_export.dir/test_sid_export.cpp.o.d"
  "test_sid_export"
  "test_sid_export.pdb"
  "test_sid_export[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sid_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
