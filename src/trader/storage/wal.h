// Group-committed, CRC-framed, segmented write-ahead log.
//
// On-disk layout (one directory):
//
//   wal-00000001.log        record frames, append-only
//   wal-00000002.log        ...
//   snapshot-00000002.snap  "state through segment 1; replay segments >= 2"
//
// Record frame: u32 CRC32 over the payload, u32 payload length (both
// little-endian), payload bytes.  Replay walks segments in order and stops
// at the first frame that is truncated or fails its CRC — a torn tail
// (the crash cut a group commit mid-write) drops only the un-committed
// suffix; the committed prefix replays in full.  After replay the tail
// segment is truncated back to its last valid frame so new appends never
// land behind garbage.
//
// Group commit: concurrent appenders stage frames into a shared pending
// buffer under the log mutex; the first appender to find no active leader
// becomes the leader, swaps the buffer out, issues ONE write(2) (plus an
// optional fdatasync) for everything staged, publishes the new durable
// LSN and wakes the waiters.  Under contention the syscall cost amortises
// across every staged frame; single-threaded appends degrade to one
// write(2) each.
//
// Durability model: an append returns once its bytes are accepted by the
// kernel (write(2)), which survives any process death — SIGKILL included.
// Options::fsync extends that to machine power loss per group commit.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace cosm::trader::storage {

/// CRC-32 (IEEE, reflected) of a byte range — the frame checksum.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

class WriteAheadLog {
 public:
  struct Options {
    std::string directory;
    std::size_t segment_bytes = 64ull << 20;
    bool fsync = false;
  };

  /// One replayed record with the segment it came from.
  struct Replayed {
    std::uint64_t segment = 0;
    BytesView payload;
  };

  /// Opens (creating the directory if needed), replays every record of
  /// every segment at or after the newest valid snapshot mark through
  /// `on_record`, truncates the torn tail, and arms the log for appends.
  /// `snapshot_segment_out` receives the snapshot's segment number (0 =
  /// no snapshot found).  Throws cosm::Error on unusable directories.
  WriteAheadLog(Options options,
                const std::function<void(const Replayed&)>& on_record,
                std::uint64_t* snapshot_segment_out);
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Append one record and block until it is durable (group commit).
  void append(BytesView payload);

  /// Close the current segment and open the next; appends staged before
  /// the call land in the old segment.  Returns the new segment number.
  std::uint64_t rotate();

  /// Delete every segment before `segment` and every snapshot file older
  /// than the one marking `segment`.  Called after a snapshot renamed
  /// into place.
  void truncate_before(std::uint64_t segment);

  /// Current segment number (the one appends go to).
  std::uint64_t current_segment() const;

  /// Bytes appended since construction (snapshot trigger bookkeeping).
  std::uint64_t bytes_appended() const;

  /// Block until every staged append is durable.
  void flush();

  /// Group commits issued (leader write+sync rounds).
  std::uint64_t commits() const;
  /// Frames appended.
  std::uint64_t appends() const;

  static std::string segment_path(const std::string& dir, std::uint64_t seg);
  static std::string snapshot_path(const std::string& dir, std::uint64_t seg);

 private:
  void open_segment_locked(std::uint64_t segment, bool truncate_to_valid);
  void leader_commit(std::unique_lock<std::mutex>& lock);

  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable durable_cv_;
  Bytes pending_;                  ///< staged frames (guarded by mutex_)
  std::uint64_t staged_lsn_ = 0;   ///< frames staged
  std::uint64_t durable_lsn_ = 0;  ///< frames durable
  bool leader_active_ = false;
  int fd_ = -1;
  std::uint64_t segment_ = 0;
  std::uint64_t segment_bytes_written_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t commits_ = 0;
};

}  // namespace cosm::trader::storage
