file(REMOVE_RECURSE
  "CMakeFiles/test_service_object.dir/test_service_object.cpp.o"
  "CMakeFiles/test_service_object.dir/test_service_object.cpp.o.d"
  "test_service_object"
  "test_service_object.pdb"
  "test_service_object[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_service_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
