#include "sidl/type_desc.h"

#include <algorithm>

#include "common/error.h"

namespace cosm::sidl {

std::string to_string(TypeKind kind) {
  switch (kind) {
    case TypeKind::Void: return "void";
    case TypeKind::Bool: return "boolean";
    case TypeKind::Int: return "long";
    case TypeKind::Float: return "double";
    case TypeKind::String: return "string";
    case TypeKind::Enum: return "enum";
    case TypeKind::Struct: return "struct";
    case TypeKind::Sequence: return "sequence";
    case TypeKind::Optional: return "optional";
    case TypeKind::ServiceRef: return "ServiceReference";
    case TypeKind::Sid: return "SID";
    case TypeKind::Any: return "any";
  }
  return "?";
}

TypePtr TypeDesc::void_() {
  static const TypePtr t{new TypeDesc(TypeKind::Void)};
  return t;
}
TypePtr TypeDesc::bool_() {
  static const TypePtr t{new TypeDesc(TypeKind::Bool)};
  return t;
}
TypePtr TypeDesc::int_() {
  static const TypePtr t{new TypeDesc(TypeKind::Int)};
  return t;
}
TypePtr TypeDesc::float_() {
  static const TypePtr t{new TypeDesc(TypeKind::Float)};
  return t;
}
TypePtr TypeDesc::string_() {
  static const TypePtr t{new TypeDesc(TypeKind::String)};
  return t;
}
TypePtr TypeDesc::service_ref() {
  static const TypePtr t{new TypeDesc(TypeKind::ServiceRef)};
  return t;
}
TypePtr TypeDesc::sid() {
  static const TypePtr t{new TypeDesc(TypeKind::Sid)};
  return t;
}
TypePtr TypeDesc::any() {
  static const TypePtr t{new TypeDesc(TypeKind::Any)};
  return t;
}

TypePtr TypeDesc::enum_(std::string name, std::vector<std::string> labels) {
  if (labels.empty()) throw ContractError("enum type needs at least one label");
  auto t = std::shared_ptr<TypeDesc>(new TypeDesc(TypeKind::Enum));
  t->name_ = std::move(name);
  t->labels_ = std::move(labels);
  return t;
}

TypePtr TypeDesc::struct_(std::string name, std::vector<FieldDesc> fields) {
  auto t = std::shared_ptr<TypeDesc>(new TypeDesc(TypeKind::Struct));
  t->name_ = std::move(name);
  for (const auto& f : fields) {
    if (!f.type) throw ContractError("struct field '" + f.name + "' has null type");
  }
  t->fields_ = std::move(fields);
  return t;
}

TypePtr TypeDesc::sequence(TypePtr element) {
  if (!element) throw ContractError("sequence element type is null");
  auto t = std::shared_ptr<TypeDesc>(new TypeDesc(TypeKind::Sequence));
  t->element_ = std::move(element);
  return t;
}

TypePtr TypeDesc::optional(TypePtr element) {
  if (!element) throw ContractError("optional element type is null");
  auto t = std::shared_ptr<TypeDesc>(new TypeDesc(TypeKind::Optional));
  t->element_ = std::move(element);
  return t;
}

int TypeDesc::label_index(const std::string& label) const noexcept {
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == label) return static_cast<int>(i);
  }
  return -1;
}

const FieldDesc* TypeDesc::find_field(const std::string& field_name) const noexcept {
  for (const auto& f : fields_) {
    if (f.name == field_name) return &f;
  }
  return nullptr;
}

bool TypeDesc::equals(const TypeDesc& other) const noexcept {
  if (this == &other) return true;
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case TypeKind::Enum:
      return name_ == other.name_ && labels_ == other.labels_;
    case TypeKind::Struct: {
      if (name_ != other.name_ || fields_.size() != other.fields_.size()) return false;
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (fields_[i].name != other.fields_[i].name) return false;
        if (!fields_[i].type->equals(*other.fields_[i].type)) return false;
      }
      return true;
    }
    case TypeKind::Sequence:
    case TypeKind::Optional:
      return element_->equals(*other.element_);
    default:
      return true;  // primitive kinds carry no payload
  }
}

std::string TypeDesc::describe() const {
  switch (kind_) {
    case TypeKind::Enum: {
      std::string s = "enum " + name_ + " { ";
      for (std::size_t i = 0; i < labels_.size(); ++i) {
        if (i) s += ", ";
        s += labels_[i];
      }
      return s + " }";
    }
    case TypeKind::Struct: {
      std::string s = "struct " + name_ + " { ";
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (i) s += "; ";
        s += fields_[i].type->kind() == TypeKind::Struct ||
                     fields_[i].type->kind() == TypeKind::Enum
                 ? fields_[i].type->name()
                 : fields_[i].type->describe();
        s += " " + fields_[i].name;
      }
      return s + " }";
    }
    case TypeKind::Sequence:
      return "sequence<" + element_->describe() + ">";
    case TypeKind::Optional:
      return "optional<" + element_->describe() + ">";
    default:
      return to_string(kind_);
  }
}

bool conforms_to(const TypeDesc& sub, const TypeDesc& base) {
  if (&sub == &base) return true;
  if (base.kind() == TypeKind::Any) return true;  // top type
  if (sub.kind() != base.kind()) return false;
  switch (base.kind()) {
    case TypeKind::Enum:
      // Every base label must be offered by the subtype.
      return std::all_of(base.labels().begin(), base.labels().end(),
                         [&](const std::string& l) { return sub.label_index(l) >= 0; });
    case TypeKind::Struct:
      // Width subtyping: sub must have every base field, conforming; extra
      // fields are exactly the "additional elements" of Fig. 2.
      return std::all_of(base.fields().begin(), base.fields().end(),
                         [&](const FieldDesc& bf) {
                           const FieldDesc* sf = sub.find_field(bf.name);
                           return sf != nullptr && conforms_to(*sf->type, *bf.type);
                         });
    case TypeKind::Sequence:
    case TypeKind::Optional:
      return conforms_to(*sub.element(), *base.element());
    default:
      return true;
  }
}

}  // namespace cosm::sidl
