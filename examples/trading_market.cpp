// Trading in an open market (§2, Fig. 1): a population of competing car
// rental providers exports typed offers; importers query with constraints
// and preferences; a second, federated trader in another scope contributes
// its offers across a trader link.

#include <iostream>

#include "core/runtime.h"
#include "rpc/inproc.h"
#include "services/car_rental.h"
#include "services/market.h"
#include "trader/facade.h"

int main() {
  using namespace cosm;

  rpc::InProcNetwork network;
  core::CosmRuntime hamburg(network);   // scope "hamburg"
  core::CosmRuntime munich(network);    // scope "munich"

  // Federation: the Hamburg trader can forward imports to Munich over RPC
  // (§2.2 "trader federation ... for geographic scopes").
  hamburg.trader().link("munich", std::make_shared<trader::RemoteTraderGateway>(
                                      network, munich.trader_ref()));

  // Standardise the CarRentalService type in both scopes (§2.1: exporters
  // "always have to refer to a distinct, predefined service type").
  hamburg.trader().types().add(services::canonical_car_rental_type());
  munich.trader().types().add(services::canonical_car_rental_type());

  // Populate both scopes with competing providers.
  services::MarketConfig market;
  market.providers = 12;
  market.seed = 1994;
  auto configs = services::generate_market(market);
  std::size_t i = 0;
  for (const auto& config : configs) {
    auto& runtime = (i++ % 2 == 0) ? hamburg : munich;
    runtime.offer_traded(services::make_car_rental_service(config));
  }
  std::cout << "offers in hamburg: " << hamburg.trader().offer_count()
            << ", munich: " << munich.trader().offer_count() << "\n\n";

  // Importer: cheapest USD rental, local scope only.
  trader::ImportRequest local;
  local.service_type = services::car_rental_service_type_name();
  local.constraint = "ChargeCurrency == \"USD\"";
  local.preference = "min ChargePerDay";
  auto local_offers = hamburg.trader().import(local);
  std::cout << "local USD offers: " << local_offers.size() << "\n";

  // Same import, one federation hop: Munich's offers join the result.
  trader::ImportRequest federated = local;
  federated.hop_limit = 1;
  auto all_offers = hamburg.trader().import(federated);
  std::cout << "federated USD offers: " << all_offers.size() << "\n\n";

  if (all_offers.empty()) {
    std::cout << "no matching offers in this market\n";
    return 0;
  }
  const auto& best = all_offers.front();
  std::cout << "best offer " << best.id << " at "
            << best.attributes.at("ChargePerDay").to_debug_string() << "/day\n";

  // Fig. 1 steps 4-5: bind to the selected exporter and use it.
  core::GenericClient client(network);
  core::Binding rental = client.bind(best.ref);
  wire::Value models = rental.invoke("ListModels", {});
  std::cout << "models: " << models.to_debug_string() << "\n";

  // Price ceiling sweep: how the match count shrinks as the constraint
  // tightens.
  std::cout << "\nceiling  matches (federated)\n";
  for (int ceiling : {200, 150, 100, 75, 50, 40}) {
    trader::ImportRequest sweep = federated;
    sweep.constraint = "ChargePerDay < " + std::to_string(ceiling);
    std::cout << "  " << ceiling << "      "
              << hamburg.trader().import(sweep).size() << "\n";
  }
  return 0;
}
