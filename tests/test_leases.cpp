// Offer leases: bounded offer lifetime on the trader's logical clock.

#include <gtest/gtest.h>

#include "common/error.h"
#include "trader/trader.h"

namespace cosm::trader {
namespace {

using wire::Value;

class LeaseTest : public ::testing::Test {
 protected:
  LeaseTest() : trader("t") {
    ServiceType type;
    type.name = "T";
    type.attributes = {{"Price", sidl::TypeDesc::float_(), true}};
    trader.types().add(type);
  }

  std::string offer(const std::string& id) {
    return trader.export_offer("T", {id, "inproc://x", "T"},
                               {{"Price", Value::real(1.0)}});
  }

  Trader trader;
};

TEST_F(LeaseTest, UnleasedOffersNeverExpire) {
  offer("a");
  EXPECT_EQ(trader.advance_clock(1000000), 0u);
  EXPECT_EQ(trader.offer_count(), 1u);
}

TEST_F(LeaseTest, ExpiredOffersSwept) {
  auto id = offer("a");
  offer("b");
  trader.set_lease(id, 24);
  EXPECT_EQ(trader.advance_clock(23), 0u);
  EXPECT_EQ(trader.offer_count(), 2u);
  EXPECT_EQ(trader.advance_clock(1), 1u);  // clock hits 24
  EXPECT_EQ(trader.offer_count(), 1u);
  EXPECT_EQ(trader.offers_expired_total(), 1u);
}

TEST_F(LeaseTest, RenewalExtendsLife) {
  auto id = offer("a");
  trader.set_lease(id, 10);
  trader.advance_clock(5);
  trader.set_lease(id, 20);  // renewed before expiry
  EXPECT_EQ(trader.advance_clock(10), 0u);  // clock 15 < 20
  EXPECT_EQ(trader.advance_clock(5), 1u);   // clock 20
}

TEST_F(LeaseTest, LeaseRemovalMakesOfferPermanent) {
  auto id = offer("a");
  trader.set_lease(id, 10);
  trader.set_lease(id, 0);
  EXPECT_EQ(trader.advance_clock(100), 0u);
}

TEST_F(LeaseTest, ClockAccumulates) {
  EXPECT_EQ(trader.clock_hours(), 0u);
  trader.advance_clock(3);
  trader.advance_clock(4);
  EXPECT_EQ(trader.clock_hours(), 7u);
}

TEST_F(LeaseTest, SetLeaseOnUnknownOfferThrows) {
  EXPECT_THROW(trader.set_lease("ghost", 5), NotFound);
}

TEST_F(LeaseTest, ExpiredOfferNoLongerMatches) {
  auto id = offer("a");
  trader.set_lease(id, 1);
  trader.advance_clock(2);
  ImportRequest request;
  request.service_type = "T";
  EXPECT_TRUE(trader.import(request).empty());
}

TEST_F(LeaseTest, MassExpirySweepsAllAtOnce) {
  for (int i = 0; i < 10; ++i) {
    trader.set_lease(offer("o" + std::to_string(i)),
                     static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_EQ(trader.advance_clock(5), 5u);
  EXPECT_EQ(trader.advance_clock(100), 5u);
  EXPECT_EQ(trader.offers_expired_total(), 10u);
}

}  // namespace
}  // namespace cosm::trader
