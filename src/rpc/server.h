// RPC server: hosts ServiceObjects behind one network endpoint.
//
// The server owns the endpoint registration, decodes request frames,
// resolves the target service instance, unmarshals arguments against the
// operation's SID signature, dispatches, and marshals the (conformance-
// checked) result.  All failures become Fault messages — a server never
// kills a connection over an application error.
//
// The frame handler is fully re-entrant: transports invoke it concurrently
// (dispatch-executor workers for TCP — many per connection, since the
// reactor pipelines frames — and executor workers in-proc).  The service
// registry is a read-mostly map behind a shared mutex; dispatch itself runs
// without any server-wide lock, so independent requests proceed in parallel
// (per-session FSM state is serialised inside ServiceObject).
//
// Requests that arrive with their deadline already exceeded are rejected
// with a "deadline exceeded" fault before dispatch; otherwise the remaining
// budget is installed as the thread's current CallContext so any downstream
// calls the handler makes inherit the shrunken deadline (see call_context.h).
//
// With `at_most_once` enabled the server keeps a replay cache of response
// frames keyed by (session, request id), giving transactional-RPC semantics
// over retrying transports (the "Transactional RPC" box of Fig. 6).

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>

#include "rpc/message.h"
#include "rpc/network.h"
#include "rpc/replay_cache.h"
#include "rpc/service_object.h"
#include "sidl/service_ref.h"

namespace cosm::rpc {

struct ServerOptions {
  /// Enable the replay cache (at-most-once execution for retried requests).
  bool at_most_once = false;
  /// Replay-cache capacity per server (least-recently-used entries evicted).
  std::size_t replay_cache_capacity = 4096;
};

class RpcServer {
 public:
  /// Binds an endpoint on `network`; `host_hint` names it (in-proc).
  RpcServer(Network& network, const std::string& host_hint,
            ServerOptions options = {});
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Host a service instance; returns the reference clients bind to.
  sidl::ServiceRef add(ServiceObjectPtr object);

  /// Stop hosting an instance.
  void remove(const sidl::ServiceRef& ref);

  /// Find a hosted instance by service id; nullptr when absent.
  ServiceObjectPtr find(const std::string& service_id) const;

  const std::string& endpoint() const noexcept { return endpoint_; }

  std::uint64_t requests_handled() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }
  std::uint64_t faults_returned() const noexcept {
    return faults_.load(std::memory_order_relaxed);
  }
  /// Replay-cache entries evicted so far (0 when at_most_once is off).
  std::uint64_t replay_evictions() const noexcept {
    return replay_ ? replay_->evictions() : 0;
  }

  /// The at-most-once replay cache, or nullptr when at_most_once is off.
  /// Recovery wiring (core::CosmRuntime) seeds it with the journal's
  /// per-session request-id high-water marks so duplicates of pre-restart
  /// requests are refused instead of re-executed.
  ReplayCache* replay_cache() noexcept { return replay_.get(); }

 private:
  Bytes handle(const Bytes& frame);
  Bytes handle_message(const MessageView& request);

  Network& network_;
  ServerOptions options_;
  std::string endpoint_;

  mutable std::shared_mutex services_mutex_;
  std::map<std::string, ServiceObjectPtr> services_;  // id -> object
  std::unique_ptr<ReplayCache> replay_;  // set iff at_most_once
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> faults_{0};
};

}  // namespace cosm::rpc
