# Empty dependencies file for bench_fig6_full_stack.
# This may be replaced when dependencies are built.
