// Federation v2: subscription-based offer replication (trader/replication.h).
//
// Covers the happy path (snapshot on subscribe, incremental deltas, covered
// imports resolving from the replica), scoping (by type and by constraint),
// the fault paths (silent loss repaired by digest, sequence gaps demoted to
// snapshots, sink failures keeping the queue, queue overflow), dedupe when
// the same offers arrive via replication AND deep search, and the full RPC
// round trip through the trader facade.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "rpc/inproc.h"
#include "rpc/server.h"
#include "trader/facade.h"
#include "trader/trader.h"

namespace cosm::trader {
namespace {

using sidl::TypeDesc;
using wire::Value;

ServiceType rental_type() {
  ServiceType t;
  t.name = "CarRentalService";
  t.attributes = {{"ChargePerDay", TypeDesc::float_(), true}};
  return t;
}

ServiceType printer_type() {
  ServiceType t;
  t.name = "PrinterService";
  t.attributes = {{"PagesPerMinute", TypeDesc::int_(), true}};
  return t;
}

AttrMap charge(double c) { return {{"ChargePerDay", Value::real(c)}}; }

sidl::ServiceRef mk_ref(const std::string& id) {
  return {id, "inproc://host", "CarRentalService"};
}

std::unique_ptr<Trader> make_trader(const std::string& name) {
  auto t = std::make_unique<Trader>(name);
  t->types().add(rental_type());
  return t;
}

ImportRequest all_rentals(int hops) {
  ImportRequest r;
  r.service_type = "CarRentalService";
  r.hop_limit = hops;
  return r;
}

std::vector<std::string> offer_ids(const std::vector<Offer>& offers) {
  std::vector<std::string> ids;
  ids.reserve(offers.size());
  for (const auto& o : offers) ids.push_back(o.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

const LinkOutcome* outcome_for(const ImportResult& r, const std::string& link) {
  for (const auto& o : r.links) {
    if (o.link == link) return &o;
  }
  return nullptr;
}

// --- happy path -----------------------------------------------------------

TEST(Replication, SubscribeSnapshotsExistingOffers) {
  auto sub = make_trader("sub");
  auto pub = make_trader("pub");
  pub->export_offer("CarRentalService", mk_ref("one"), charge(10));
  pub->export_offer("CarRentalService", mk_ref("two"), charge(20));
  sub->link("pub", std::make_shared<LocalTraderGateway>(*pub));
  sub->subscribe_link("pub");

  ReplicaInfo info = sub->replica_info("pub");
  EXPECT_TRUE(info.synced);
  EXPECT_EQ(info.publisher, "pub");
  EXPECT_EQ(info.offers, 2u);
  EXPECT_EQ(sub->replica_offer_count(), 2u);
  EXPECT_EQ(pub->replication_snapshots_sent(), 1u);
}

TEST(Replication, CoveredImportResolvesLocally) {
  auto sub = make_trader("sub");
  auto pub = make_trader("pub");
  pub->export_offer("CarRentalService", mk_ref("r1"), charge(10));
  sub->export_offer("CarRentalService", mk_ref("mine"), charge(5));
  sub->link("pub", std::make_shared<LocalTraderGateway>(*pub));
  sub->subscribe_link("pub");

  const std::uint64_t pub_imports_before = pub->imports_total();
  ImportResult r = sub->import_ex(all_rentals(1));
  EXPECT_EQ(r.offers.size(), 2u);
  ASSERT_NE(outcome_for(r, "pub"), nullptr);
  EXPECT_EQ(outcome_for(r, "pub")->status, LinkOutcome::Status::Replicated);
  EXPECT_EQ(outcome_for(r, "pub")->offers, 1u);
  // The publisher was never queried: the link resolved from the replica.
  EXPECT_EQ(pub->imports_total(), pub_imports_before);
  EXPECT_EQ(sub->replica_local_resolves(), 1u);
  EXPECT_EQ(sub->replica_fanout_resolves(), 0u);
}

TEST(Replication, DeeperHopsStillFanOut) {
  // The replica only mirrors the publisher's own offers, so any query that
  // would search beyond the publisher (hop_limit > 1) must go on the wire.
  auto sub = make_trader("sub");
  auto pub = make_trader("pub");
  auto deep = make_trader("deep");
  pub->link("deep", std::make_shared<LocalTraderGateway>(*deep));
  deep->export_offer("CarRentalService", mk_ref("far"), charge(9));
  sub->link("pub", std::make_shared<LocalTraderGateway>(*pub));
  sub->subscribe_link("pub");

  ImportResult r = sub->import_ex(all_rentals(2));
  EXPECT_EQ(r.offers.size(), 1u);
  EXPECT_EQ(outcome_for(r, "pub")->status, LinkOutcome::Status::Ok);
  EXPECT_EQ(sub->replica_fanout_resolves(), 1u);
  EXPECT_EQ(sub->replica_local_resolves(), 0u);
}

TEST(Replication, DeltasFlowOnFlush) {
  auto sub = make_trader("sub");
  auto pub = make_trader("pub");
  sub->link("pub", std::make_shared<LocalTraderGateway>(*pub));
  sub->subscribe_link("pub");

  pub->export_offer("CarRentalService", mk_ref("late"), charge(30));
  EXPECT_EQ(sub->import(all_rentals(1)).size(), 0u);  // not flushed yet
  EXPECT_EQ(pub->replication_pending(), 1u);

  EXPECT_EQ(pub->flush_replication(), 1u);
  EXPECT_EQ(pub->replication_pending(), 0u);
  auto offers = sub->import(all_rentals(1));
  ASSERT_EQ(offers.size(), 1u);
  EXPECT_EQ(offers[0].ref.id, "late");
}

TEST(Replication, WithdrawAndModifyReplicate) {
  auto sub = make_trader("sub");
  auto pub = make_trader("pub");
  std::string keep = pub->export_offer("CarRentalService", mk_ref("keep"), charge(10));
  std::string drop = pub->export_offer("CarRentalService", mk_ref("drop"), charge(20));
  sub->link("pub", std::make_shared<LocalTraderGateway>(*pub));
  sub->subscribe_link("pub");

  pub->withdraw(drop);
  pub->modify(keep, charge(77));
  pub->flush_replication();

  auto offers = sub->import(all_rentals(1));
  ASSERT_EQ(offers.size(), 1u);
  EXPECT_EQ(offers[0].ref.id, "keep");
  EXPECT_DOUBLE_EQ(offers[0].attributes.at("ChargePerDay").as_real(), 77.0);
}

TEST(Replication, BatchWritePathsReplicate) {
  auto sub = make_trader("sub");
  auto pub = make_trader("pub");
  sub->link("pub", std::make_shared<LocalTraderGateway>(*pub));
  sub->subscribe_link("pub");

  std::vector<BatchOfferSpec> specs;
  for (int i = 0; i < 4; ++i) {
    specs.push_back({mk_ref("b" + std::to_string(i)), charge(10 + i), {}});
  }
  auto ids = pub->export_batch("CarRentalService", specs);
  pub->flush_replication();
  EXPECT_EQ(sub->import(all_rentals(1)).size(), 4u);

  pub->withdraw_batch({ids[0], ids[1]});
  pub->modify_batch({{ids[2], charge(99)}});
  pub->flush_replication();

  auto offers = sub->import(all_rentals(1));
  EXPECT_EQ(offers.size(), 2u);
  EXPECT_EQ(sub->replica_offer_count(), 2u);
}

TEST(Replication, ReplicatedAndDeepSearchResultsAreIdentical) {
  auto sub = make_trader("sub");
  auto pub = make_trader("pub");
  for (int i = 0; i < 10; ++i) {
    pub->export_offer("CarRentalService", mk_ref("o" + std::to_string(i)),
                      charge(10 + i));
  }
  sub->link("pub", std::make_shared<LocalTraderGateway>(*pub));
  sub->subscribe_link("pub");

  ImportRequest request = all_rentals(1);
  request.preference = "min ChargePerDay";
  request.max_matches = 4;
  auto replicated = sub->import(request);
  EXPECT_GE(sub->replica_local_resolves(), 1u);

  TraderTuning deep;
  deep.enable_replica_resolve = false;
  sub->set_tuning(deep);
  auto baseline = sub->import(request);
  EXPECT_GE(sub->replica_fanout_resolves(), 1u);
  EXPECT_EQ(replicated, baseline);
}

// --- scoping --------------------------------------------------------------

TEST(Replication, TypeScopedSubscriptionOnlyCoversItsTypes) {
  auto sub = make_trader("sub");
  auto pub = make_trader("pub");
  sub->types().add(printer_type());
  pub->types().add(printer_type());
  pub->export_offer("CarRentalService", mk_ref("car"), charge(10));
  pub->export_offer("PrinterService",
                    {"prn", "inproc://host", "PrinterService"},
                    {{"PagesPerMinute", Value::integer(30)}});
  sub->link("pub", std::make_shared<LocalTraderGateway>(*pub));
  SubscriptionScope scope;
  scope.service_types = {"CarRentalService"};
  sub->subscribe_link("pub", scope);

  // Only the scoped type was snapshotted.
  EXPECT_EQ(sub->replica_offer_count(), 1u);

  ImportResult covered = sub->import_ex(all_rentals(1));
  EXPECT_EQ(outcome_for(covered, "pub")->status, LinkOutcome::Status::Replicated);

  ImportRequest printers;
  printers.service_type = "PrinterService";
  printers.hop_limit = 1;
  ImportResult uncovered = sub->import_ex(printers);
  EXPECT_EQ(outcome_for(uncovered, "pub")->status, LinkOutcome::Status::Ok);
  EXPECT_EQ(uncovered.offers.size(), 1u);  // deep search still finds it
}

TEST(Replication, ConstraintScopedSubscriptionCoversExactConstraint) {
  auto sub = make_trader("sub");
  auto pub = make_trader("pub");
  pub->export_offer("CarRentalService", mk_ref("cheap"), charge(10));
  pub->export_offer("CarRentalService", mk_ref("pricey"), charge(90));
  sub->link("pub", std::make_shared<LocalTraderGateway>(*pub));
  SubscriptionScope scope;
  scope.constraint = "ChargePerDay < 50";
  sub->subscribe_link("pub", scope);

  EXPECT_EQ(sub->replica_offer_count(), 1u);  // only the matching offer

  // Exactly the subscription's constraint: covered, resolved locally.
  ImportRequest same = all_rentals(1);
  same.constraint = "ChargePerDay < 50";
  ImportResult covered = sub->import_ex(same);
  EXPECT_EQ(outcome_for(covered, "pub")->status, LinkOutcome::Status::Replicated);
  EXPECT_EQ(covered.offers.size(), 1u);

  // Any other constraint could match offers the replica filtered out, so
  // it must fan out.
  ImportRequest wider = all_rentals(1);
  wider.constraint = "ChargePerDay < 100";
  ImportResult uncovered = sub->import_ex(wider);
  EXPECT_EQ(outcome_for(uncovered, "pub")->status, LinkOutcome::Status::Ok);
  EXPECT_EQ(uncovered.offers.size(), 2u);

  // An unconstrained query is wider still.
  ImportResult unconstrained = sub->import_ex(all_rentals(1));
  EXPECT_EQ(outcome_for(unconstrained, "pub")->status, LinkOutcome::Status::Ok);
}

TEST(Replication, ModifyOutOfScopeRetractsFromReplica) {
  auto sub = make_trader("sub");
  auto pub = make_trader("pub");
  std::string id =
      pub->export_offer("CarRentalService", mk_ref("drift"), charge(10));
  sub->link("pub", std::make_shared<LocalTraderGateway>(*pub));
  SubscriptionScope scope;
  scope.constraint = "ChargePerDay < 50";
  sub->subscribe_link("pub", scope);
  EXPECT_EQ(sub->replica_offer_count(), 1u);

  pub->modify(id, charge(80));  // now out of scope
  pub->flush_replication();
  EXPECT_EQ(sub->replica_offer_count(), 0u);

  pub->modify(id, charge(20));  // back in scope
  pub->flush_replication();
  EXPECT_EQ(sub->replica_offer_count(), 1u);
}

TEST(Replication, ReplicaResolveCanBeDisabled) {
  auto sub = make_trader("sub");
  auto pub = make_trader("pub");
  pub->export_offer("CarRentalService", mk_ref("x"), charge(10));
  sub->link("pub", std::make_shared<LocalTraderGateway>(*pub));
  sub->subscribe_link("pub");

  TraderTuning tuning;
  tuning.enable_replica_resolve = false;
  sub->set_tuning(tuning);
  ImportResult r = sub->import_ex(all_rentals(1));
  EXPECT_EQ(outcome_for(r, "pub")->status, LinkOutcome::Status::Ok);
  EXPECT_EQ(r.offers.size(), 1u);
}

// --- subscription lifecycle ----------------------------------------------

TEST(Replication, UnsubscribeDropsReplicaAndStopsPushing) {
  auto sub = make_trader("sub");
  auto pub = make_trader("pub");
  pub->export_offer("CarRentalService", mk_ref("x"), charge(10));
  sub->link("pub", std::make_shared<LocalTraderGateway>(*pub));
  sub->subscribe_link("pub");
  EXPECT_EQ(pub->subscriptions().size(), 1u);

  sub->unsubscribe_link("pub");
  EXPECT_TRUE(pub->subscriptions().empty());
  EXPECT_EQ(sub->replica_offer_count(), 0u);
  EXPECT_THROW(sub->replica_info("pub"), NotFound);

  // The link itself still works — deep search takes over again.
  ImportResult r = sub->import_ex(all_rentals(1));
  EXPECT_EQ(outcome_for(r, "pub")->status, LinkOutcome::Status::Ok);
  EXPECT_EQ(r.offers.size(), 1u);
}

TEST(Replication, UnlinkTearsDownSubscription) {
  auto sub = make_trader("sub");
  auto pub = make_trader("pub");
  sub->link("pub", std::make_shared<LocalTraderGateway>(*pub));
  sub->subscribe_link("pub");
  sub->unlink("pub");
  EXPECT_TRUE(pub->subscriptions().empty());
  EXPECT_EQ(sub->replica_offer_count(), 0u);
}

TEST(Replication, DoubleSubscribeThrows) {
  auto sub = make_trader("sub");
  auto pub = make_trader("pub");
  sub->link("pub", std::make_shared<LocalTraderGateway>(*pub));
  sub->subscribe_link("pub");
  EXPECT_THROW(sub->subscribe_link("pub"), ContractError);
  EXPECT_THROW(sub->subscribe_link("nope"), NotFound);
  EXPECT_THROW(sub->unsubscribe_link("nope"), NotFound);
}

TEST(Replication, LeaseExpiryAtPublisherReplicatesRemoval) {
  auto sub = make_trader("sub");
  auto pub = make_trader("pub");
  std::string id =
      pub->export_offer("CarRentalService", mk_ref("leased"), charge(10));
  pub->set_lease(id, 5);
  sub->link("pub", std::make_shared<LocalTraderGateway>(*pub));
  sub->subscribe_link("pub");
  EXPECT_EQ(sub->replica_offer_count(), 1u);

  // The subscriber's own clock never sweeps replicated offers — lease
  // lifecycle is the publisher's job and arrives as Remove deltas.
  sub->advance_clock(100);
  EXPECT_EQ(sub->replica_offer_count(), 1u);

  pub->advance_clock(10);
  pub->flush_replication();
  EXPECT_EQ(sub->replica_offer_count(), 0u);
}

TEST(Replication, UnknownTypeAtSubscriberIsSkippedWithoutRepairLoop) {
  auto sub = make_trader("sub");  // never learns PrinterService
  auto pub = make_trader("pub");
  pub->types().add(printer_type());
  pub->export_offer("PrinterService",
                    {"prn", "inproc://host", "PrinterService"},
                    {{"PagesPerMinute", Value::integer(30)}});
  pub->export_offer("CarRentalService", mk_ref("car"), charge(10));
  sub->link("pub", std::make_shared<LocalTraderGateway>(*pub));
  sub->subscribe_link("pub");

  EXPECT_EQ(sub->replica_offer_count(), 1u);  // printer skipped
  EXPECT_GE(sub->replication_unknown_type_skips(), 1u);

  // The digest exchange must not treat the skipped type as divergence —
  // that would repair-loop forever.
  EXPECT_EQ(pub->anti_entropy_tick(), 0u);
  EXPECT_EQ(pub->anti_entropy_tick(), 0u);
  EXPECT_TRUE(sub->replica_info("pub").synced);
}

// --- fault injection on the publisher push path --------------------------

/// Sink wrapper with switchable fault modes: pass through, swallow batches
/// while pretending they applied (silent loss), swallow while reporting a
/// stale high-water mark (gap), or throw (transport failure).
class FaultySink final : public ReplicationSink {
 public:
  enum class Mode { Pass, SwallowLying, SwallowStaleOnce, Throw };

  explicit FaultySink(std::shared_ptr<ReplicationSink> inner)
      : inner_(std::move(inner)) {}

  std::uint64_t apply(const DeltaBatch& batch) override {
    ++applies_;
    switch (mode_) {
      case Mode::Pass:
        return inner_->apply(batch);
      case Mode::SwallowLying: {
        // Claim full success: the publisher pops the queue, the replica
        // silently diverges, and only the digest can notice.
        std::uint64_t end = batch.first_seq + batch.deltas.size() - 1;
        return batch.snapshot ? batch.snapshot_seq : end;
      }
      case Mode::SwallowStaleOnce:
        // Drop exactly one batch and report a mark short of it: the
        // publisher must demote the subscription to a full snapshot (which
        // this sink then delivers — the fault was transient).
        mode_ = Mode::Pass;
        return batch.first_seq > 0 ? batch.first_seq - 1 : 0;
      case Mode::Throw:
        throw RpcError("replication sink down");
    }
    return 0;
  }

  std::vector<std::string> digest(const ReplicationDigest& digest) override {
    return inner_->digest(digest);
  }
  std::string describe() const override { return "faulty:" + inner_->describe(); }

  void set_mode(Mode mode) noexcept { mode_ = mode; }
  int applies() const noexcept { return applies_; }

 private:
  std::shared_ptr<ReplicationSink> inner_;
  Mode mode_ = Mode::Pass;
  int applies_ = 0;
};

struct FaultyPair {
  std::unique_ptr<Trader> sub;
  std::unique_ptr<Trader> pub;
  std::shared_ptr<FaultySink> sink;
};

FaultyPair make_faulty_pair() {
  FaultyPair p;
  p.sub = make_trader("sub");
  p.pub = make_trader("pub");
  p.sink = std::make_shared<FaultySink>(
      std::make_shared<LocalReplicationSink>(*p.sub));
  p.pub->add_subscription("sub", {}, p.sink);
  return p;
}

TEST(ReplicationFault, SilentLossIsRepairedByDigest) {
  FaultyPair p = make_faulty_pair();
  p.pub->export_offer("CarRentalService", mk_ref("seen"), charge(10));
  p.pub->flush_replication();
  EXPECT_EQ(p.sub->replica_offer_count(), 1u);

  p.sink->set_mode(FaultySink::Mode::SwallowLying);
  p.pub->export_offer("CarRentalService", mk_ref("lost1"), charge(20));
  p.pub->export_offer("CarRentalService", mk_ref("lost2"), charge(30));
  p.pub->flush_replication();
  EXPECT_EQ(p.sub->replica_offer_count(), 1u);  // silently diverged
  EXPECT_EQ(p.pub->replication_pending(), 0u);  // publisher believes it's done

  p.sink->set_mode(FaultySink::Mode::Pass);
  EXPECT_EQ(p.pub->anti_entropy_tick(), 1u);  // one type repaired
  EXPECT_EQ(p.sub->replica_offer_count(), 3u);
  EXPECT_GE(p.pub->replication_digest_repairs(), 1u);
  // Once converged, further digests are clean.
  EXPECT_EQ(p.pub->anti_entropy_tick(), 0u);
}

TEST(ReplicationFault, SequenceGapDemotesToSnapshot) {
  FaultyPair p = make_faulty_pair();
  p.pub->export_offer("CarRentalService", mk_ref("base"), charge(10));
  p.pub->flush_replication();
  EXPECT_EQ(p.pub->replication_snapshots_sent(), 1u);  // the initial one
  EXPECT_EQ(p.sub->replica_offer_count(), 1u);

  // One batch is dropped and the subscriber's stale high-water mark comes
  // back: still inside the same flush, the publisher demotes to a snapshot
  // and the (healed) sink delivers it — the replica never stays behind.
  p.sink->set_mode(FaultySink::Mode::SwallowStaleOnce);
  p.pub->export_offer("CarRentalService", mk_ref("gap"), charge(20));
  p.pub->flush_replication();

  EXPECT_EQ(p.pub->replication_snapshots_sent(), 2u);
  EXPECT_EQ(p.sub->replica_offer_count(), 2u);
  ASSERT_EQ(p.pub->subscriptions().size(), 1u);
  EXPECT_FALSE(p.pub->subscriptions()[0].needs_snapshot);
  EXPECT_EQ(p.pub->replication_pending(), 0u);
}

TEST(ReplicationFault, SinkFailureKeepsQueueForRetry) {
  FaultyPair p = make_faulty_pair();
  p.sink->set_mode(FaultySink::Mode::Throw);
  p.pub->export_offer("CarRentalService", mk_ref("queued"), charge(10));
  EXPECT_EQ(p.pub->flush_replication(), 0u);
  EXPECT_GE(p.pub->replication_flush_failures(), 1u);
  EXPECT_EQ(p.pub->replication_pending(), 1u);  // nothing was lost

  p.sink->set_mode(FaultySink::Mode::Pass);
  EXPECT_EQ(p.pub->flush_replication(), 1u);
  EXPECT_EQ(p.pub->replication_pending(), 0u);
  EXPECT_EQ(p.sub->replica_offer_count(), 1u);
}

TEST(ReplicationFault, QueueOverflowFallsBackToSnapshot) {
  FaultyPair p = make_faulty_pair();
  ReplicationOptions options;
  options.max_pending = 2;
  p.pub->set_replication_options(options);

  p.sink->set_mode(FaultySink::Mode::Throw);  // nothing drains
  for (int i = 0; i < 6; ++i) {
    p.pub->export_offer("CarRentalService", mk_ref("o" + std::to_string(i)),
                        charge(10 + i));
  }
  ASSERT_EQ(p.pub->subscriptions().size(), 1u);
  EXPECT_TRUE(p.pub->subscriptions()[0].needs_snapshot);
  EXPECT_LE(p.pub->replication_pending(), 2u);  // bounded, not 6

  p.sink->set_mode(FaultySink::Mode::Pass);
  p.pub->flush_replication();
  EXPECT_EQ(p.sub->replica_offer_count(), 6u);
}

TEST(ReplicationFault, BatchesAreBounded) {
  FaultyPair p = make_faulty_pair();
  ReplicationOptions options;
  options.max_batch = 3;
  p.pub->set_replication_options(options);

  for (int i = 0; i < 10; ++i) {
    p.pub->export_offer("CarRentalService", mk_ref("o" + std::to_string(i)),
                        charge(10 + i));
  }
  int applies_before = p.sink->applies();
  EXPECT_EQ(p.pub->flush_replication(), 10u);
  // 10 deltas at <= 3 per call is at least 4 apply calls.
  EXPECT_GE(p.sink->applies() - applies_before, 4);
  EXPECT_EQ(p.sub->replica_offer_count(), 10u);
}

// --- satellite 3: dedupe across replication and deep search ---------------

TEST(Replication, ReplicaAndDeepSearchNeverDuplicateOffers) {
  // Two links from `a` to the same publisher: one subscribed (resolves
  // from the replica), one plain (deep search).  The same offers arrive
  // both ways and must be returned exactly once.
  auto a = make_trader("a");
  auto pub = make_trader("pub");
  for (int i = 0; i < 5; ++i) {
    pub->export_offer("CarRentalService", mk_ref("o" + std::to_string(i)),
                      charge(10 + i));
  }
  a->link("replicated", std::make_shared<LocalTraderGateway>(*pub));
  a->link("deep", std::make_shared<LocalTraderGateway>(*pub));
  a->subscribe_link("replicated");

  ImportResult r = a->import_ex(all_rentals(1));
  EXPECT_EQ(outcome_for(r, "replicated")->status,
            LinkOutcome::Status::Replicated);
  EXPECT_EQ(outcome_for(r, "deep")->status, LinkOutcome::Status::Ok);
  EXPECT_EQ(r.offers.size(), 5u);

  // The merged ids equal a pure deep-search baseline.
  TraderTuning deep_only;
  deep_only.enable_replica_resolve = false;
  a->set_tuning(deep_only);
  EXPECT_EQ(offer_ids(r.offers), offer_ids(a->import(all_rentals(1))));
}

TEST(Replication, DiamondWithReplicationStillDeduplicates) {
  // a -> {b, c} -> d with a subscribed to b; b's replica does not cover
  // hop-2 queries, so d's offer arrives via both branches and must dedupe.
  auto a = make_trader("a");
  auto b = make_trader("b");
  auto c = make_trader("c");
  auto d = make_trader("d");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  a->link("c", std::make_shared<LocalTraderGateway>(*c));
  b->link("d", std::make_shared<LocalTraderGateway>(*d));
  c->link("d", std::make_shared<LocalTraderGateway>(*d));
  a->subscribe_link("b");
  d->export_offer("CarRentalService", mk_ref("shared"), charge(7));

  EXPECT_EQ(a->import(all_rentals(2)).size(), 1u);
}

// --- the RPC round trip ---------------------------------------------------

TEST(ReplicationRpc, SubscribeDeltasAndDigestsOverFacade) {
  rpc::InProcNetwork net;
  auto sub = make_trader("sub");
  auto pub = make_trader("pub");
  pub->export_offer("CarRentalService", mk_ref("first"), charge(10));

  rpc::RpcServer pub_server(net, "pub-host");
  rpc::RpcServer sub_server(net, "sub-host");
  auto pub_ref = pub_server.add(make_trader_service(*pub, &net));
  auto sub_ref = sub_server.add(make_trader_service(*sub, &net));

  auto gateway = std::make_shared<RemoteTraderGateway>(net, pub_ref);
  gateway->set_subscriber_ref(sub_ref);
  sub->link("pub", gateway);
  sub->subscribe_link("pub");

  // Snapshot crossed the wire during subscribe.
  EXPECT_EQ(sub->replica_offer_count(), 1u);
  EXPECT_TRUE(sub->replica_info("pub").synced);

  // Incremental deltas cross the wire on flush.
  pub->export_offer("CarRentalService", mk_ref("second"), charge(20));
  pub->flush_replication();
  EXPECT_EQ(sub->replica_offer_count(), 2u);

  // Covered imports resolve locally without touching the publisher.
  const std::uint64_t before = pub->imports_total();
  ImportResult r = sub->import_ex(all_rentals(1));
  EXPECT_EQ(r.offers.size(), 2u);
  EXPECT_EQ(outcome_for(r, "pub")->status, LinkOutcome::Status::Replicated);
  EXPECT_EQ(pub->imports_total(), before);

  // Digests cross the wire and report convergence.
  EXPECT_EQ(pub->anti_entropy_tick(), 0u);
  EXPECT_EQ(sub->replica_info("pub").digests, 1u);

  // Unsubscribe tears down on both sides.
  sub->unsubscribe_link("pub");
  EXPECT_TRUE(pub->subscriptions().empty());
  EXPECT_EQ(sub->replica_offer_count(), 0u);
}

TEST(ReplicationRpc, SubscribeWithoutSubscriberRefThrows) {
  rpc::InProcNetwork net;
  auto sub = make_trader("sub");
  auto pub = make_trader("pub");
  rpc::RpcServer server(net, "pub-host");
  auto pub_ref = server.add(make_trader_service(*pub, &net));
  sub->link("pub", std::make_shared<RemoteTraderGateway>(net, pub_ref));
  EXPECT_THROW(sub->subscribe_link("pub"), ContractError);
}

TEST(ReplicationRpc, SubscribeAgainstNetworklessFacadeFaults) {
  rpc::InProcNetwork net;
  auto sub = make_trader("sub");
  auto pub = make_trader("pub");
  rpc::RpcServer pub_server(net, "pub-host");
  rpc::RpcServer sub_server(net, "sub-host");
  // Publisher facade built WITHOUT a network: it cannot reach back.
  auto pub_ref = pub_server.add(make_trader_service(*pub));
  auto sub_ref = sub_server.add(make_trader_service(*sub));
  auto gateway = std::make_shared<RemoteTraderGateway>(net, pub_ref);
  gateway->set_subscriber_ref(sub_ref);
  sub->link("pub", gateway);
  EXPECT_THROW(sub->subscribe_link("pub"), Error);
  EXPECT_TRUE(pub->subscriptions().empty());
}

TEST(ReplicationRpc, OffersRoundTripVerbatim) {
  // Dynamic attributes and leases ride the wire, so the replica is
  // byte-identical to the publisher's offer (the digest hash covers every
  // field).
  rpc::InProcNetwork net;
  auto sub = make_trader("sub");
  auto pub = make_trader("pub");
  std::string id = pub->export_offer(
      "CarRentalService", mk_ref("dyn"), {},
      {{"ChargePerDay", "CurrentCharge"}});
  pub->set_lease(id, 42);

  rpc::RpcServer pub_server(net, "pub-host");
  rpc::RpcServer sub_server(net, "sub-host");
  auto pub_ref = pub_server.add(make_trader_service(*pub, &net));
  auto sub_ref = sub_server.add(make_trader_service(*sub, &net));
  auto gateway = std::make_shared<RemoteTraderGateway>(net, pub_ref);
  gateway->set_subscriber_ref(sub_ref);
  sub->link("pub", gateway);
  sub->subscribe_link("pub");

  EXPECT_EQ(sub->replica_offer_count(), 1u);
  // Clean digest == identical content, lease and dynamics included.
  EXPECT_EQ(pub->anti_entropy_tick(), 0u);
  EXPECT_TRUE(sub->replica_info("pub").synced);
}

// --- replication pump -----------------------------------------------------

TEST(Replication, PumpFlushesWithoutExplicitCalls) {
  auto sub = make_trader("sub");
  auto pub = make_trader("pub");
  sub->link("pub", std::make_shared<LocalTraderGateway>(*pub));
  sub->subscribe_link("pub");

  ReplicationOptions options;
  options.flush_interval = std::chrono::milliseconds(5);
  options.digest_interval = std::chrono::milliseconds(50);
  pub->set_replication_options(options);
  pub->start_replication_pump();
  pub->start_replication_pump();  // idempotent

  pub->export_offer("CarRentalService", mk_ref("pumped"), charge(10));
  for (int i = 0; i < 200 && sub->replica_offer_count() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(sub->replica_offer_count(), 1u);
  pub->stop_replication_pump();
}

}  // namespace
}  // namespace cosm::trader
