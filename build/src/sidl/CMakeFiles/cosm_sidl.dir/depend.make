# Empty dependencies file for cosm_sidl.
# This may be replaced when dependencies are built.
