# Empty dependencies file for mediation_browser.
# This may be replaced when dependencies are built.
