// sidlc — the SIDL command-line processor.
//
//   sidlc check <file.sidl>              parse + validate, report issues
//   sidlc print <file.sidl>              canonical pretty-print
//   sidlc info <file.sidl>               summary: types, ops, extensions
//   sidlc form <file.sidl>               render the generated UI (Fig. 7)
//   sidlc conforms <base.sidl> <sub.sidl>   SID subtype check (Fig. 2)
//   sidlc strip <file.sidl>              drop unknown extension modules
//
// Exit code 0 on success / conformance, 1 on failure, 2 on usage errors.

#include <fstream>
#include <iostream>
#include <sstream>

#include "common/error.h"
#include "sidl/parser.h"
#include "sidl/printer.h"
#include "sidl/validate.h"
#include "uims/form.h"

namespace {

int usage() {
  std::cerr <<
      "usage: sidlc <command> <file.sidl> [file2.sidl]\n"
      "commands:\n"
      "  check     parse and validate; list well-formedness issues\n"
      "  print     canonical pretty-print\n"
      "  info      summary of types, operations and extensions\n"
      "  form      render the generated user interface\n"
      "  conforms  <base> <sub>: does sub conform to base?\n"
      "  strip     re-emit without unknown extension modules\n";
  return 2;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw cosm::Error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

cosm::sidl::Sid load(const std::string& path) {
  return cosm::sidl::parse_sid(slurp(path));
}

int cmd_check(const std::string& path) {
  cosm::sidl::Sid sid = load(path);
  auto issues = cosm::sidl::validate_sid(sid);
  if (issues.empty()) {
    std::cout << path << ": OK (module " << sid.name << ", "
              << sid.operations.size() << " operation(s))\n";
    return 0;
  }
  std::cout << path << ": " << issues.size() << " issue(s):\n";
  for (const auto& issue : issues) std::cout << "  - " << issue << "\n";
  return 1;
}

int cmd_print(const std::string& path) {
  std::cout << cosm::sidl::print_sid(load(path));
  return 0;
}

int cmd_info(const std::string& path) {
  cosm::sidl::Sid sid = load(path);
  std::cout << "module " << sid.name << "\n";
  std::cout << "  types (" << sid.types.size() << "):\n";
  for (const auto& [name, type] : sid.types) {
    std::cout << "    " << name << " = " << type->describe() << "\n";
  }
  std::cout << "  operations (" << sid.operations.size() << "):\n";
  for (const auto& op : sid.operations) {
    std::cout << "    " << op.name << "/" << op.params.size();
    if (const std::string* note = sid.find_annotation(op.name)) {
      std::cout << "  — " << *note;
    }
    std::cout << "\n";
  }
  if (sid.fsm) {
    std::cout << "  FSM: " << sid.fsm->states.size() << " state(s), "
              << sid.fsm->transitions.size() << " transition(s), initial "
              << sid.fsm->initial << "\n";
  }
  if (sid.trader_export) {
    std::cout << "  tradable as: " << sid.trader_export->service_type << " ("
              << sid.trader_export->attributes.size() << " propert"
              << (sid.trader_export->attributes.size() == 1 ? "y" : "ies")
              << ")\n";
  }
  if (!sid.unknown_extensions.empty()) {
    std::cout << "  unknown extensions:";
    for (const auto& ext : sid.unknown_extensions) std::cout << " " << ext.name;
    std::cout << "\n";
  }
  std::cout << "  extension count: " << sid.extension_count() << "\n";
  return 0;
}

int cmd_form(const std::string& path) {
  cosm::sidl::Sid sid = load(path);
  cosm::sidl::ensure_valid(sid);
  std::cout << cosm::uims::render_text(cosm::uims::generate_form(sid));
  return 0;
}

int cmd_conforms(const std::string& base_path, const std::string& sub_path) {
  cosm::sidl::Sid base = load(base_path);
  cosm::sidl::Sid sub = load(sub_path);
  bool ok = cosm::sidl::conforms_to(sub, base);
  std::cout << sub.name << (ok ? " CONFORMS to " : " does NOT conform to ")
            << base.name << "\n";
  return ok ? 0 : 1;
}

int cmd_strip(const std::string& path) {
  cosm::sidl::Sid sid = load(path);
  sid.unknown_extensions.clear();
  std::cout << cosm::sidl::print_sid(sid);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  std::string command = argv[1];
  try {
    if (command == "check") return cmd_check(argv[2]);
    if (command == "print") return cmd_print(argv[2]);
    if (command == "info") return cmd_info(argv[2]);
    if (command == "form") return cmd_form(argv[2]);
    if (command == "strip") return cmd_strip(argv[2]);
    if (command == "conforms") {
      if (argc < 4) return usage();
      return cmd_conforms(argv[2], argv[3]);
    }
    return usage();
  } catch (const cosm::Error& e) {
    std::cerr << "sidlc: " << e.what() << "\n";
    return 1;
  }
}
