// Adversarial wire-format fuzz (run under ASan in CI).
//
// The decoder trust boundary: any byte string may arrive off the network.
// Truncated frames must fail with cosm::WireError — never read out of
// bounds, never surface a non-cosm exception (a std::length_error from an
// attacker-controlled reserve() once escaped here), never crash.  The same
// properties must hold for the compiled plan decoders and the message-frame
// decoder, which share the byte-reader core.

#include <gtest/gtest.h>

#include <string>

#include "common/bytes.h"
#include "common/error.h"
#include "common/rng.h"
#include "rpc/message.h"
#include "support/generators.h"
#include "wire/codec.h"
#include "wire/plan.h"

namespace cosm::wire {
namespace {

using testing::GenOptions;
using testing::random_type;
using testing::random_value;

/// decode_value over exactly `bytes` (with the trailing-bytes check the
/// callers all perform).
Value strict_decode(const Bytes& bytes) {
  ByteReader r(bytes);
  Value v = decode_value(r);
  if (!r.at_end()) {
    throw WireError("decode_value: " + std::to_string(r.remaining()) +
                    " trailing bytes");
  }
  return v;
}

TEST(WireFuzz, EveryTruncatedPrefixThrowsWireError) {
  // A proper prefix of a single value's encoding can never decode: the
  // decoder deterministically consumes the full encoding, so a prefix runs
  // out of bytes mid-value.  It must always surface as WireError.
  for (std::uint64_t seed = 1; seed <= 150; ++seed) {
    Rng rng(seed);
    GenOptions options;
    sidl::TypePtr type = random_type(rng, options);
    Bytes full = encode_value(random_value(rng, *type, options));
    MarshalPlan plan(type);
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      Bytes prefix(full.begin(), full.begin() + static_cast<long>(cut));
      EXPECT_THROW(strict_decode(prefix), WireError)
          << "seed " << seed << " cut " << cut << "/" << full.size();
      // The compiled decoder shares the failure mode: WireError for the
      // malformed bytes (never TypeError — the value never materialised —
      // and never an OOB read).
      EXPECT_THROW(plan.unmarshal(prefix), WireError)
          << "seed " << seed << " cut " << cut << "/" << full.size();
    }
  }
}

TEST(WireFuzz, RandomMutationsNeverEscapeCosmErrors) {
  // Flip random bytes: decode may succeed (the mutation kept the encoding
  // well-formed) or throw a cosm::Error — anything else (std:: exceptions,
  // crashes, sanitizer reports) is a decoder bug.
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    Rng rng(seed * 17 + 3);
    GenOptions options;
    sidl::TypePtr type = random_type(rng, options);
    Bytes bytes = encode_value(random_value(rng, *type, options));
    if (bytes.empty()) continue;
    std::size_t flips = 1 + rng.below(4);
    for (std::size_t i = 0; i < flips; ++i) {
      bytes[rng.below(bytes.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    MarshalPlan plan(type);
    try {
      (void)strict_decode(bytes);
    } catch (const Error&) {
      // expected failure class
    }
    try {
      (void)plan.unmarshal(bytes);
    } catch (const Error&) {
    }
  }
}

TEST(WireFuzz, HostileLengthPrefixesRejected) {
  // Huge declared counts/lengths with no bytes behind them: the decoder
  // must reject them without attempting a matching allocation.
  const std::uint64_t huge[] = {0xFFFFFFFFull, 0xFFFFFFFFFFFFull,
                                0x7FFFFFFFFFFFFFFFull};
  for (std::uint8_t tag : {kTagString, kTagStruct, kTagSequence}) {
    for (std::uint64_t n : huge) {
      ByteWriter w;
      w.u8(tag);
      if (tag == kTagStruct) w.str("S");
      w.varint(n);
      Bytes bytes = w.take();
      EXPECT_THROW(strict_decode(bytes), WireError) << int(tag) << " " << n;
    }
  }
}

TEST(WireFuzz, ArgumentFramePrefixesAlwaysError) {
  sidl::OperationDesc op;
  op.name = "Book";
  op.result = sidl::TypeDesc::string_();
  op.params.push_back({sidl::ParamDir::In, "code", sidl::TypeDesc::string_()});
  op.params.push_back({sidl::ParamDir::In, "days", sidl::TypeDesc::int_()});
  OperationPlan plan(op);
  Bytes full = plan.marshal_arguments(
      {Value::string("FIAT-3"), Value::integer(4)});
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Bytes prefix(full.begin(), full.begin() + static_cast<long>(cut));
    EXPECT_THROW((void)plan.unmarshal_arguments(prefix), Error) << cut;
  }
}

TEST(WireFuzz, MessageFramePrefixesAlwaysError) {
  rpc::Message m = rpc::Message::request(77, "svc-1", "Book", {1, 2, 3, 4});
  m.session = "sess";
  m.deadline_ms = 1500;
  m.trace_id = 42;
  Bytes full = m.encode();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Bytes prefix(full.begin(), full.begin() + static_cast<long>(cut));
    EXPECT_THROW((void)rpc::Message::decode(prefix), WireError) << cut;
    EXPECT_THROW(
        (void)rpc::MessageView::decode(BytesView(prefix.data(), prefix.size())),
        WireError)
        << cut;
  }
}

TEST(WireFuzz, MessageFrameMutationsNeverEscapeCosmErrors) {
  rpc::Message m = rpc::Message::request(5, "svc", "Op", {9, 9, 9});
  Bytes base = m.encode();
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    Rng rng(seed ^ 0xF00D);
    Bytes bytes = base;
    std::size_t flips = 1 + rng.below(3);
    for (std::size_t i = 0; i < flips; ++i) {
      bytes[rng.below(bytes.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    try {
      (void)rpc::Message::decode(bytes);
    } catch (const Error&) {
      // cosm::Error is the only acceptable failure class
    }
  }
}

TEST(WireFuzz, PaddedVarintSlotsDecodeTransparently) {
  // The body-length slot is padded LEB128; readers must accept non-minimal
  // varints, and a truncated padded varint must still be a WireError.
  ByteWriter w;
  const std::size_t slot = w.varint_slot();
  w.raw(Bytes{0xAA, 0xBB});
  w.patch_varint(slot, 2);
  Bytes bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(r.varint(), 2u);
  EXPECT_EQ(r.raw(2), (Bytes{0xAA, 0xBB}));

  Bytes cut(bytes.begin(), bytes.begin() + 3);  // mid-slot
  ByteReader rc(cut);
  EXPECT_THROW(rc.varint(), WireError);
}

}  // namespace
}  // namespace cosm::wire
