#include "support/generators.h"

#include <utility>

namespace cosm::testing {

using sidl::TypeDesc;
using sidl::TypeKind;
using sidl::TypePtr;
using wire::Value;

TypePtr random_type(Rng& rng, const GenOptions& options, int depth) {
  const bool leaf_only = depth >= options.max_depth;
  // Leaf kinds first; composites appended when depth allows.
  std::vector<int> kinds = {0, 1, 2, 3};  // bool,int,float,string
  if (options.allow_ref_types) kinds.push_back(4);  // service ref
  if (options.allow_named_types) kinds.push_back(5);  // enum
  if (!leaf_only) {
    if (options.allow_named_types) kinds.push_back(6);  // struct
    kinds.push_back(7);  // sequence
    kinds.push_back(8);  // optional
  }
  switch (kinds[rng.below(kinds.size())]) {
    case 0: return TypeDesc::bool_();
    case 1: return TypeDesc::int_();
    case 2: return TypeDesc::float_();
    case 3: return TypeDesc::string_();
    case 4: return TypeDesc::service_ref();
    case 5: {
      std::size_t n = 1 + rng.below(static_cast<std::uint64_t>(options.max_width));
      std::vector<std::string> labels;
      for (std::size_t i = 0; i < n; ++i) {
        labels.push_back("L" + std::to_string(i) + "_" + rng.ident(3));
      }
      return TypeDesc::enum_("E_" + rng.ident(4), std::move(labels));
    }
    case 6: {
      std::size_t n = rng.below(static_cast<std::uint64_t>(options.max_width) + 1);
      std::vector<sidl::FieldDesc> fields;
      for (std::size_t i = 0; i < n; ++i) {
        fields.push_back({"f" + std::to_string(i) + "_" + rng.ident(3),
                          random_type(rng, options, depth + 1)});
      }
      return TypeDesc::struct_("S_" + rng.ident(4), std::move(fields));
    }
    case 7:
      return TypeDesc::sequence(random_type(rng, options, depth + 1));
    default:
      return TypeDesc::optional(random_type(rng, options, depth + 1));
  }
}

Value random_value(Rng& rng, const TypeDesc& type, const GenOptions& options) {
  switch (type.kind()) {
    case TypeKind::Void: return Value::null();
    case TypeKind::Bool: return Value::boolean(rng.chance(0.5));
    case TypeKind::Int: return Value::integer(rng.range(-1000000, 1000000));
    case TypeKind::Float: return Value::real(rng.uniform() * 2000.0 - 1000.0);
    case TypeKind::String: return Value::string(rng.ident(rng.below(12)));
    case TypeKind::Enum:
      return Value::enumerated(type.name(),
                               type.labels()[rng.below(type.labels().size())]);
    case TypeKind::Struct: {
      std::vector<std::pair<std::string, Value>> fields;
      for (const auto& f : type.fields()) {
        fields.emplace_back(f.name, random_value(rng, *f.type, options));
      }
      return Value::structure(type.name(), std::move(fields));
    }
    case TypeKind::Sequence: {
      std::size_t n = rng.below(static_cast<std::uint64_t>(options.max_width) + 1);
      std::vector<Value> elems;
      for (std::size_t i = 0; i < n; ++i) {
        elems.push_back(random_value(rng, *type.element(), options));
      }
      return Value::sequence(std::move(elems));
    }
    case TypeKind::Optional:
      return rng.chance(0.5)
                 ? Value::optional_absent()
                 : Value::optional_of(random_value(rng, *type.element(), options));
    case TypeKind::ServiceRef: {
      sidl::ServiceRef ref;
      ref.id = "svc-" + rng.ident(4);
      ref.endpoint = "inproc://" + rng.ident(5);
      ref.interface_name = "I" + rng.ident(4);
      return Value::service_ref(std::move(ref));
    }
    case TypeKind::Sid:
    case TypeKind::Any:
      return Value::integer(static_cast<std::int64_t>(rng.below(100)));
  }
  return Value::null();
}

sidl::Sid random_sid(Rng& rng, const GenOptions& options) {
  sidl::Sid sid;
  sid.name = "Svc_" + rng.ident(5);
  sid.interface_name = "COSM_Operations";

  // Named types (top-level typedefs must be enum/struct to print as
  // typedefs that round-trip by name).
  std::size_t type_count = 1 + rng.below(3);
  for (std::size_t i = 0; i < type_count; ++i) {
    TypePtr t;
    std::string name = "T" + std::to_string(i) + "_t";
    if (rng.chance(0.5)) {
      std::size_t labels = 1 + rng.below(4);
      std::vector<std::string> ls;
      for (std::size_t l = 0; l < labels; ++l) {
        ls.push_back("V" + std::to_string(l) + "_" + rng.ident(2));
      }
      t = TypeDesc::enum_(name, std::move(ls));
    } else {
      std::size_t nf = rng.below(4);
      std::vector<sidl::FieldDesc> fields;
      for (std::size_t f = 0; f < nf; ++f) {
        GenOptions inner = options;
        inner.max_depth = 2;
        inner.allow_named_types = false;  // keep fields self-contained
        fields.push_back({"g" + std::to_string(f), random_type(rng, inner, 1)});
      }
      t = TypeDesc::struct_(name, std::move(fields));
    }
    sid.types.emplace_back(name, std::move(t));
  }

  // Operations over primitives and the named types.
  std::size_t op_count = 1 + rng.below(4);
  for (std::size_t i = 0; i < op_count; ++i) {
    sidl::OperationDesc op;
    op.name = "Op" + std::to_string(i) + "_" + rng.ident(3);
    op.result = rng.chance(0.3) ? TypeDesc::void_()
                                : sid.types[rng.below(sid.types.size())].second;
    std::size_t params = rng.below(3);
    for (std::size_t p = 0; p < params; ++p) {
      sidl::ParamDesc pd;
      pd.name = "p" + std::to_string(p);
      pd.dir = sidl::ParamDir::In;
      pd.type = rng.chance(0.5) ? TypeDesc::string_()
                                : sid.types[rng.below(sid.types.size())].second;
      op.params.push_back(std::move(pd));
    }
    sid.operations.push_back(std::move(op));
  }

  if (rng.chance(0.5)) {
    sidl::FsmSpec fsm;
    fsm.states = {"A", "B"};
    fsm.initial = "A";
    fsm.transitions.push_back({"A", sid.operations[0].name, "B"});
    if (sid.operations.size() > 1) {
      fsm.transitions.push_back({"B", sid.operations[1].name, "A"});
    }
    sid.fsm = std::move(fsm);
  }

  if (rng.chance(0.5)) {
    sidl::TraderExport te;
    te.service_type = "Type_" + rng.ident(4);
    te.attributes.emplace_back("Price", sidl::Literal(10.0 + rng.uniform() * 90));
    te.attributes.emplace_back("Grade",
                               sidl::Literal(static_cast<std::int64_t>(rng.below(5))));
    sid.trader_export = std::move(te);
  }

  if (rng.chance(0.5)) {
    sid.annotations[sid.operations[0].name] = "does something " + rng.ident(6);
    sid.annotations[sid.name] = "service " + rng.ident(6);
  }

  if (rng.chance(0.4)) {
    sid.unknown_extensions.push_back(
        {"X_" + rng.ident(4), " const long Mystery = 1; "});
  }
  return sid;
}

}  // namespace cosm::testing
