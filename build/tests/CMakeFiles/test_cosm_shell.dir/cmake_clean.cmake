file(REMOVE_RECURSE
  "CMakeFiles/test_cosm_shell.dir/test_cosm_shell.cpp.o"
  "CMakeFiles/test_cosm_shell.dir/test_cosm_shell.cpp.o.d"
  "test_cosm_shell"
  "test_cosm_shell.pdb"
  "test_cosm_shell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cosm_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
