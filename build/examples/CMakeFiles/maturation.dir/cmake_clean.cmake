file(REMOVE_RECURSE
  "CMakeFiles/maturation.dir/maturation.cpp.o"
  "CMakeFiles/maturation.dir/maturation.cpp.o.d"
  "maturation"
  "maturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
