file(REMOVE_RECURSE
  "CMakeFiles/bench_c5_trader_matching.dir/bench_c5_trader_matching.cpp.o"
  "CMakeFiles/bench_c5_trader_matching.dir/bench_c5_trader_matching.cpp.o.d"
  "bench_c5_trader_matching"
  "bench_c5_trader_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c5_trader_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
