// Value-adding services (§2.3): an image archive serves PGM; the market
// wants XBM; a converter service inserts itself into the chain.  The
// converter is itself a generic client of the archive, so the whole chain
// composes with zero per-service adaptation code — and the chain is
// discoverable: the converter's SID exposes its upstream reference, which a
// client can bind to directly (first-class service references, §3.2).

#include <iostream>

#include "core/mediation.h"
#include "core/runtime.h"
#include "rpc/inproc.h"
#include "services/image_conversion.h"

int main() {
  using namespace cosm;

  rpc::InProcNetwork network;
  core::CosmRuntime runtime(network);

  // The pre-existing archive (format Y = PGM).
  services::ImageServerConfig archive_config;
  archive_config.width = 16;
  archive_config.height = 4;
  auto archive_ref = runtime.offer_mediated(
      "ImageArchive", services::make_image_server(archive_config));

  // The value-adding converter (format X = XBM), bound to the archive.
  auto converter_ref = runtime.offer_mediated(
      "ImageConverter",
      services::make_format_converter(network, archive_ref, {}));

  core::GenericClient client = runtime.make_client();
  core::MediationSession session(client, runtime.browser_ref());

  // Fetch the original from the archive...
  core::Binding archive = session.select("ImageArchive");
  wire::Value original =
      archive.invoke("GetImage", {wire::Value::string("lena")});
  std::cout << "original (" << original.at("format").as_string() << "):\n";
  const std::string& data = original.at("data").as_string();
  for (std::int64_t y = 0; y < archive_config.height; ++y) {
    std::cout << "  "
              << data.substr(static_cast<std::size_t>(y * archive_config.width),
                             static_cast<std::size_t>(archive_config.width))
              << "\n";
  }

  // ...and the converted version through the value-adding service.
  core::Binding converter = session.select("ImageConverter");
  wire::Value converted = converter.invoke(
      "GetImageAs", {wire::Value::string("lena"), wire::Value::string("XBM")});
  std::cout << "\nconverted (" << converted.at("format").as_string() << "):\n";
  const std::string& xdata = converted.at("data").as_string();
  for (std::int64_t y = 0; y < archive_config.height; ++y) {
    std::cout << "  "
              << xdata.substr(static_cast<std::size_t>(y * archive_config.width),
                              static_cast<std::size_t>(archive_config.width))
              << "\n";
  }

  // The chain is inspectable: the converter hands out its upstream
  // reference, and the client can bind to it — a reference received in a
  // result seeds a further binding (Fig. 4).
  wire::Value upstream = converter.invoke("Upstream", {});
  core::Binding direct = client.bind(upstream);
  std::cout << "\nupstream resolved to: " << direct.sid()->name << "\n";
  (void)converter_ref;
  return 0;
}
