# Empty compiler generated dependencies file for test_sid_export.
# This may be replaced when dependencies are built.
