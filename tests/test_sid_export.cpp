#include "trader/sid_export.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "sidl/parser.h"

namespace cosm::trader {
namespace {

sidl::Sid tradable_sid() {
  return sidl::parse_sid(R"(
    module Rental {
      typedef enum { AUDI, FIAT_Uno } CarModel_t;
      interface I { void SelectCar(); void BookCar(); };
      module COSM_TraderExport {
        const string TOD = "CarRentalService";
        const CarModel_t Model = FIAT_Uno;
        const double ChargePerDay = 80.0;
        const long AverageMilage = 12000;
        const string Currency = "USD";
        const boolean Insured = true;
      };
    };
  )");
}

TEST(SidExport, ExtractsTypeAndAttributes) {
  auto [type_name, attrs] = trader_export_from_sid(tradable_sid());
  EXPECT_EQ(type_name, "CarRentalService");
  EXPECT_EQ(attrs.size(), 5u);
  EXPECT_DOUBLE_EQ(attrs.at("ChargePerDay").as_real(), 80.0);
  EXPECT_EQ(attrs.at("AverageMilage").as_int(), 12000);
  EXPECT_EQ(attrs.at("Currency").as_string(), "USD");
  EXPECT_TRUE(attrs.at("Insured").as_bool());
  // The enum label is tagged with the declaring enum type.
  EXPECT_EQ(attrs.at("Model").type_name(), "CarModel_t");
  EXPECT_EQ(attrs.at("Model").enum_label(), "FIAT_Uno");
}

TEST(SidExport, MissingExportModuleThrows) {
  sidl::Sid bare = sidl::parse_sid("module M { interface I { void Op(); }; };");
  EXPECT_THROW(trader_export_from_sid(bare), NotFound);
  EXPECT_THROW(service_type_from_sid(bare), NotFound);
}

TEST(SidExport, DerivedServiceTypeSchemaShapes) {
  ServiceType type = service_type_from_sid(tradable_sid());
  EXPECT_EQ(type.name, "CarRentalService");
  EXPECT_EQ(type.attributes.size(), 5u);
  EXPECT_EQ(type.find_attribute("ChargePerDay")->type->kind(),
            sidl::TypeKind::Float);
  EXPECT_EQ(type.find_attribute("AverageMilage")->type->kind(),
            sidl::TypeKind::Int);
  EXPECT_EQ(type.find_attribute("Model")->type->kind(), sidl::TypeKind::Enum);
  EXPECT_EQ(type.find_attribute("Insured")->type->kind(), sidl::TypeKind::Bool);
  // Signature carried over from the SID.
  EXPECT_EQ(type.signature.size(), 2u);
}

TEST(SidExport, AmbiguousEnumLabelFallsBackToAny) {
  sidl::Sid sid = sidl::parse_sid(R"(
    module M {
      typedef enum { SAME } A_t;
      typedef enum { SAME } B_t;
      interface I { void Op(); };
      module COSM_TraderExport {
        const string TOD = "T";
        const A_t Which = SAME;
      };
    };
  )");
  ServiceType type = service_type_from_sid(sid);
  EXPECT_EQ(type.find_attribute("Which")->type->kind(), sidl::TypeKind::Any);
  // The value itself carries no enum type tag either.
  auto [name, attrs] = trader_export_from_sid(sid);
  EXPECT_TRUE(attrs.at("Which").type_name().empty());
}

TEST(SidExport, ExportSidOfferDerivesTypeWhenMissing) {
  Trader trader("t");
  sidl::Sid sid = tradable_sid();
  sidl::ServiceRef ref{"svc", "inproc://p", "Rental"};
  std::string offer_id = export_sid_offer(trader, sid, ref);
  EXPECT_FALSE(offer_id.empty());
  EXPECT_TRUE(trader.types().has("CarRentalService"));
  EXPECT_EQ(trader.list_offers("CarRentalService").size(), 1u);
}

TEST(SidExport, ExportSidOfferUsesExistingType) {
  Trader trader("t");
  // Pre-register a wider canonical type; the SID's offer must check against it.
  ServiceType canonical = service_type_from_sid(tradable_sid());
  trader.types().add(canonical);
  sidl::ServiceRef ref{"svc", "inproc://p", "Rental"};
  export_sid_offer(trader, tradable_sid(), ref);
  export_sid_offer(trader, tradable_sid(), ref);  // second provider, same type
  EXPECT_EQ(trader.list_offers("CarRentalService").size(), 2u);
  EXPECT_EQ(trader.types().size(), 1u);
}

}  // namespace
}  // namespace cosm::trader
