// Trader constraint language (§2.1: "retrieve a list of services which
// conforms to any given client request").
//
// Importers filter offers with boolean expressions over service properties:
//
//     ChargePerDay < 100 && ChargeCurrency == USD && exists AverageMilage
//
// Grammar:
//     expr   := or
//     or     := and ( "||" and )*
//     and    := unary ( "&&" unary )*
//     unary  := "!" unary | primary
//     primary:= "(" expr ")" | "exists" IDENT | "true" | "false"
//            |  operand "in" "{" operand ("," operand)* "}" | cmp
//     cmp    := operand ( "==" | "!=" | "<" | "<=" | ">" | ">=" ) operand
//     operand:= IDENT | NUMBER | STRING
//
// Semantics (deliberately forgiving — an offer that cannot satisfy a
// comparison simply does not match):
//   * a bare identifier names the offer's attribute when one exists,
//     otherwise it denotes itself as an enum-label/string literal;
//   * numbers compare numerically across long/double;
//   * enum values compare by label, including against strings;
//   * a comparison over a missing attribute or incomparable kinds is false;
//   * `exists A` tests attribute presence;
//   * `A in { x, y, z }` holds iff A equals one of the set members.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "trader/attributes.h"

namespace cosm::trader {

namespace detail {
struct Node;
}

class Constraint {
 public:
  /// Parse a constraint expression; throws cosm::ParseError.  An empty or
  /// all-whitespace string yields the always-true constraint.
  static Constraint parse(const std::string& text);

  Constraint();  // always-true
  ~Constraint();
  Constraint(Constraint&&) noexcept;
  Constraint& operator=(Constraint&&) noexcept;
  Constraint(const Constraint&) = delete;
  Constraint& operator=(const Constraint&) = delete;

  /// Evaluate against an offer's attributes.
  bool eval(const AttrMap& attrs) const;

  /// Attribute names the expression references (for match diagnostics).
  std::vector<std::string> referenced_attributes() const;

  const std::string& text() const noexcept { return text_; }

 private:
  std::string text_;
  std::unique_ptr<detail::Node> root_;  // null = always true
};

}  // namespace cosm::trader
