file(REMOVE_RECURSE
  "CMakeFiles/test_mediation.dir/test_mediation.cpp.o"
  "CMakeFiles/test_mediation.dir/test_mediation.cpp.o.d"
  "test_mediation"
  "test_mediation.pdb"
  "test_mediation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mediation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
