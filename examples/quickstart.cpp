// Quickstart: the complete COSM loop in one page.
//
// 1. Assemble the runtime (trader, browser, name server, repository, binder).
// 2. A provider writes a SID and offers its car rental service — via the
//    browser (mediation) and, because its SID carries a COSM_TraderExport
//    module, via the ODP trader too.
// 3. A generic client finds the service both ways, transfers the SID,
//    renders the generated user interface, fills the SelectCar form, and
//    books a car — with zero compiled-in knowledge of the service.

#include <iostream>

#include "core/mediation.h"
#include "core/runtime.h"
#include "rpc/inproc.h"
#include "services/car_rental.h"
#include "uims/form.h"

int main() {
  using namespace cosm;

  // --- infrastructure ---
  rpc::InProcNetwork network;
  core::CosmRuntime runtime(network);

  // --- provider side ---
  services::CarRentalConfig config;
  config.name = "HanseRentACar";
  config.charge_per_day = 65.0;
  config.currency = "DEM";
  config.tradable = true;
  auto [ref, offer_id] = runtime.offer_traded(
      services::make_car_rental_service(config));
  runtime.browser().register_service("HanseRentACar",
                                     runtime.repository().get(ref.id), ref);
  std::cout << "provider online: " << ref.to_string() << "\n"
            << "trader offer:    " << offer_id << "\n\n";

  // --- client side: discovery via the trader (typed import) ---
  trader::ImportRequest request;
  request.service_type = services::car_rental_service_type_name();
  request.constraint = "ChargePerDay < 100 && ChargeCurrency == \"DEM\"";
  request.preference = "min ChargePerDay";
  auto offers = runtime.trader().import(request);
  std::cout << "trader matched " << offers.size() << " offer(s); best: "
            << offers.at(0).id << "\n\n";

  // --- client side: discovery via mediation (browse) ---
  core::GenericClient client = runtime.make_client();
  core::MediationSession session(client, runtime.browser_ref());
  for (const auto& item : session.browse()) {
    std::cout << "browser entry: " << item.name << "\n";
  }

  // --- bind + generated UI (Fig. 3 / Fig. 7) ---
  core::Binding rental = session.select("HanseRentACar");
  std::cout << "\n" << uims::render_text(rental.form()) << "\n";

  // --- drive the service through the generated form ---
  uims::FormEditor editor = rental.edit("SelectCar");
  editor.set("selection.model", "VW_Golf");
  editor.set("selection.booking_date", "1994-06-21");
  editor.set("selection.days", "3");
  wire::Value quote = rental.invoke_form(editor);
  std::cout << "quote: " << quote.to_debug_string() << "\n";

  uims::FormEditor booking = rental.edit("BookCar");
  booking.set("booking.offer_code", quote.at("offer_code").as_string());
  booking.set("booking.customer", "K. Mueller");
  wire::Value result = rental.invoke_form(booking);
  std::cout << "booking: " << result.to_debug_string() << "\n";
  std::cout << "\ncommunication state after booking: " << rental.state() << "\n";

  return result.at("confirmed").as_bool() ? 0 : 1;
}
