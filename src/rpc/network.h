// Transport abstraction (the "Communication Level" of Fig. 6).
//
// A Network binds frame handlers to endpoint addresses and performs
// synchronous round trips.  Two implementations exist:
//   * InProcNetwork — a loopback bus inside one process; deterministic and
//     fast, used by tests and most benchmarks, with optional simulated
//     per-call latency so experiments can model LAN round trips;
//   * TcpNetwork — real sockets on 127.0.0.1 with length-prefixed frames,
//     used to validate the mechanisms over genuine I/O (ablation A2).
//
// Endpoint addresses are URLs: "inproc://name" or "tcp://127.0.0.1:port".

#pragma once

#include <chrono>
#include <functional>
#include <string>

#include "common/bytes.h"

namespace cosm::rpc {

/// Server-side frame handler: consumes a request frame, produces the
/// response frame.  Handlers must not throw; RPC-level faults are encoded
/// into the returned frame by the RpcServer.
using FrameHandler = std::function<Bytes(const Bytes&)>;

class Network {
 public:
  virtual ~Network() = default;

  Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Bind `handler` under a new endpoint; `hint` influences the address
  /// (in-proc uses it as the name).  Returns the endpoint URL.
  virtual std::string listen(const std::string& hint, FrameHandler handler) = 0;

  /// Remove a binding; subsequent calls to the endpoint fail.
  virtual void unlisten(const std::string& endpoint) = 0;

  /// Synchronous round trip.  Throws cosm::RpcError on unknown endpoint,
  /// connection failure or timeout.
  virtual Bytes call(const std::string& endpoint, const Bytes& request,
                     std::chrono::milliseconds timeout) = 0;

  /// Scheme prefix this network serves ("inproc" or "tcp").
  virtual std::string scheme() const = 0;
};

}  // namespace cosm::rpc
