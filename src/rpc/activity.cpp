#include "rpc/activity.h"

#include <algorithm>

#include "common/error.h"
#include "common/id.h"
#include "rpc/channel.h"

namespace cosm::rpc {

std::string to_string(ActivityState state) {
  switch (state) {
    case ActivityState::Active: return "active";
    case ActivityState::Committed: return "committed";
    case ActivityState::Aborted: return "aborted";
  }
  return "?";
}

ActivityManager::Activity& ActivityManager::find(const std::string& activity_id) {
  auto it = activities_.find(activity_id);
  if (it == activities_.end()) {
    throw NotFound("unknown activity '" + activity_id + "'");
  }
  return it->second;
}

const ActivityManager::Activity& ActivityManager::find(
    const std::string& activity_id) const {
  auto it = activities_.find(activity_id);
  if (it == activities_.end()) {
    throw NotFound("unknown activity '" + activity_id + "'");
  }
  return it->second;
}

std::string ActivityManager::begin(const std::string& label) {
  std::lock_guard lock(mutex_);
  std::string id = next_name("act");
  Activity activity;
  activity.label = label;
  activities_.emplace(id, std::move(activity));
  return id;
}

void ActivityManager::enlist(const std::string& activity_id,
                             const sidl::ServiceRef& participant) {
  if (!participant.valid()) {
    throw ContractError("cannot enlist an invalid reference");
  }
  std::lock_guard lock(mutex_);
  Activity& activity = find(activity_id);
  if (activity.state != ActivityState::Active) {
    throw ContractError("activity '" + activity_id + "' is already " +
                        to_string(activity.state));
  }
  auto& ps = activity.participants;
  if (std::find(ps.begin(), ps.end(), participant) == ps.end()) {
    ps.push_back(participant);
  }
}

TxnOutcome ActivityManager::complete(const std::string& activity_id) {
  std::vector<sidl::ServiceRef> participants;
  {
    std::lock_guard lock(mutex_);
    Activity& activity = find(activity_id);
    if (activity.state != ActivityState::Active) {
      throw ContractError("activity '" + activity_id + "' is already " +
                          to_string(activity.state));
    }
    participants = activity.participants;
  }

  TxnOutcome outcome = TxnOutcome::Committed;
  if (!participants.empty()) {
    outcome = coordinator_.run(participants, activity_id).outcome;
  }

  std::lock_guard lock(mutex_);
  Activity& activity = find(activity_id);
  activity.state = outcome == TxnOutcome::Committed ? ActivityState::Committed
                                                    : ActivityState::Aborted;
  if (outcome == TxnOutcome::Committed) {
    ++committed_;
  } else {
    ++aborted_;
  }
  return outcome;
}

void ActivityManager::abort(const std::string& activity_id) {
  std::vector<sidl::ServiceRef> participants;
  {
    std::lock_guard lock(mutex_);
    Activity& activity = find(activity_id);
    if (activity.state != ActivityState::Active) {
      throw ContractError("activity '" + activity_id + "' is already " +
                          to_string(activity.state));
    }
    activity.state = ActivityState::Aborted;
    participants = activity.participants;
    ++aborted_;
  }
  // Deliver the decision; participants treat aborts for unknown
  // transactions as no-ops, so this is safe regardless of their state.
  for (const auto& p : participants) {
    try {
      RpcChannel channel(network_, p);
      channel.call("_abort", {wire::Value::string(activity_id)});
    } catch (const Error&) {
      // Unreachable participant: it never prepared, so nothing to undo.
    }
  }
}

ActivityState ActivityManager::state(const std::string& activity_id) const {
  std::lock_guard lock(mutex_);
  return find(activity_id).state;
}

std::vector<sidl::ServiceRef> ActivityManager::participants(
    const std::string& activity_id) const {
  std::lock_guard lock(mutex_);
  return find(activity_id).participants;
}

std::string ActivityManager::label(const std::string& activity_id) const {
  std::lock_guard lock(mutex_);
  return find(activity_id).label;
}

std::vector<std::string> ActivityManager::active() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [id, activity] : activities_) {
    if (activity.state == ActivityState::Active) out.push_back(id);
  }
  return out;
}

}  // namespace cosm::rpc
