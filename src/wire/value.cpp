#include "wire/value.h"

#include <sstream>

#include "common/error.h"

namespace cosm::wire {

std::string to_string(ValueKind kind) {
  switch (kind) {
    case ValueKind::Null: return "null";
    case ValueKind::Bool: return "bool";
    case ValueKind::Int: return "int";
    case ValueKind::Float: return "float";
    case ValueKind::String: return "string";
    case ValueKind::Enum: return "enum";
    case ValueKind::Struct: return "struct";
    case ValueKind::Sequence: return "sequence";
    case ValueKind::Optional: return "optional";
    case ValueKind::ServiceRef: return "service-ref";
    case ValueKind::Sid: return "sid";
  }
  return "?";
}

Value Value::boolean(bool b) {
  Value v;
  v.kind_ = ValueKind::Bool;
  v.b_ = b;
  return v;
}

Value Value::integer(std::int64_t i) {
  Value v;
  v.kind_ = ValueKind::Int;
  v.i_ = i;
  return v;
}

Value Value::real(double d) {
  Value v;
  v.kind_ = ValueKind::Float;
  v.f_ = d;
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.kind_ = ValueKind::String;
  v.s_ = std::move(s);
  return v;
}

Value Value::enumerated(std::string type_name, std::string label) {
  if (label.empty()) throw ContractError("enum value needs a label");
  Value v;
  v.kind_ = ValueKind::Enum;
  v.name_ = std::move(type_name);
  v.s_ = std::move(label);
  return v;
}

Value Value::structure(std::string type_name,
                       std::vector<std::pair<std::string, Value>> fields) {
  Value v;
  v.kind_ = ValueKind::Struct;
  v.name_ = std::move(type_name);
  v.field_names_.reserve(fields.size());
  v.elems_.reserve(fields.size());
  for (auto& [name, value] : fields) {
    v.field_names_.push_back(std::move(name));
    v.elems_.push_back(std::move(value));
  }
  return v;
}

Value Value::sequence(std::vector<Value> elements) {
  Value v;
  v.kind_ = ValueKind::Sequence;
  v.elems_ = std::move(elements);
  return v;
}

Value Value::optional_absent() {
  Value v;
  v.kind_ = ValueKind::Optional;
  return v;
}

Value Value::optional_of(Value payload) {
  Value v;
  v.kind_ = ValueKind::Optional;
  v.elems_.push_back(std::move(payload));
  return v;
}

Value Value::service_ref(sidl::ServiceRef ref) {
  Value v;
  v.kind_ = ValueKind::ServiceRef;
  v.ref_ = std::move(ref);
  return v;
}

Value Value::sid(sidl::SidPtr sid) {
  if (!sid) throw ContractError("SID value needs a non-null SID");
  Value v;
  v.kind_ = ValueKind::Sid;
  v.sid_ = std::move(sid);
  return v;
}

void Value::require(ValueKind k, const char* what) const {
  if (kind_ != k) {
    throw TypeError(std::string("value is ") + to_string(kind_) + ", not " + what);
  }
}

bool Value::as_bool() const {
  require(ValueKind::Bool, "bool");
  return b_;
}

std::int64_t Value::as_int() const {
  require(ValueKind::Int, "int");
  return i_;
}

double Value::as_real() const {
  require(ValueKind::Float, "float");
  return f_;
}

const std::string& Value::as_string() const {
  require(ValueKind::String, "string");
  return s_;
}

const std::string& Value::type_name() const {
  if (kind_ != ValueKind::Enum && kind_ != ValueKind::Struct) {
    throw TypeError("value of kind " + to_string(kind_) + " has no type name");
  }
  return name_;
}

const std::string& Value::enum_label() const {
  require(ValueKind::Enum, "enum");
  return s_;
}

std::size_t Value::field_count() const {
  require(ValueKind::Struct, "struct");
  return elems_.size();
}

const std::string& Value::field_name(std::size_t i) const {
  require(ValueKind::Struct, "struct");
  if (i >= field_names_.size()) throw TypeError("struct field index out of range");
  return field_names_[i];
}

const Value& Value::field(std::size_t i) const {
  require(ValueKind::Struct, "struct");
  if (i >= elems_.size()) throw TypeError("struct field index out of range");
  return elems_[i];
}

const Value* Value::find_field(const std::string& name) const {
  require(ValueKind::Struct, "struct");
  for (std::size_t i = 0; i < field_names_.size(); ++i) {
    if (field_names_[i] == name) return &elems_[i];
  }
  return nullptr;
}

const Value& Value::at(const std::string& name) const {
  const Value* v = find_field(name);
  if (!v) {
    throw TypeError("struct '" + name_ + "' has no field '" + name + "'");
  }
  return *v;
}

const std::vector<Value>& Value::elements() const {
  require(ValueKind::Sequence, "sequence");
  return elems_;
}

bool Value::has_payload() const {
  require(ValueKind::Optional, "optional");
  return !elems_.empty();
}

const Value& Value::payload() const {
  require(ValueKind::Optional, "optional");
  if (elems_.empty()) throw TypeError("optional value is absent");
  return elems_[0];
}

const sidl::ServiceRef& Value::as_ref() const {
  require(ValueKind::ServiceRef, "service-ref");
  return ref_;
}

const sidl::SidPtr& Value::as_sid() const {
  require(ValueKind::Sid, "sid");
  return sid_;
}

bool Value::operator==(const Value& o) const {
  if (kind_ != o.kind_) return false;
  switch (kind_) {
    case ValueKind::Null: return true;
    case ValueKind::Bool: return b_ == o.b_;
    case ValueKind::Int: return i_ == o.i_;
    case ValueKind::Float: return f_ == o.f_;
    case ValueKind::String: return s_ == o.s_;
    case ValueKind::Enum: return name_ == o.name_ && s_ == o.s_;
    case ValueKind::Struct:
      return name_ == o.name_ && field_names_ == o.field_names_ && elems_ == o.elems_;
    case ValueKind::Sequence:
    case ValueKind::Optional:
      return elems_ == o.elems_;
    case ValueKind::ServiceRef: return ref_ == o.ref_;
    case ValueKind::Sid:
      return (sid_ == o.sid_) || (sid_ && o.sid_ && *sid_ == *o.sid_);
  }
  return false;
}

std::string Value::to_debug_string() const {
  std::ostringstream os;
  switch (kind_) {
    case ValueKind::Null: os << "null"; break;
    case ValueKind::Bool: os << (b_ ? "true" : "false"); break;
    case ValueKind::Int: os << i_; break;
    case ValueKind::Float: os << f_; break;
    case ValueKind::String: os << '"' << s_ << '"'; break;
    case ValueKind::Enum: os << name_ << "." << s_; break;
    case ValueKind::Struct: {
      os << name_ << "{ ";
      for (std::size_t i = 0; i < elems_.size(); ++i) {
        if (i) os << ", ";
        os << field_names_[i] << ": " << elems_[i].to_debug_string();
      }
      os << " }";
      break;
    }
    case ValueKind::Sequence: {
      os << "[";
      for (std::size_t i = 0; i < elems_.size(); ++i) {
        if (i) os << ", ";
        os << elems_[i].to_debug_string();
      }
      os << "]";
      break;
    }
    case ValueKind::Optional:
      os << (elems_.empty() ? "absent" : "some(" + elems_[0].to_debug_string() + ")");
      break;
    case ValueKind::ServiceRef: os << "ref(" << ref_.to_string() << ")"; break;
    case ValueKind::Sid: os << "sid(" << (sid_ ? sid_->name : "?") << ")"; break;
  }
  return os.str();
}

Value from_literal(const sidl::Literal& lit, const std::string& enum_type_name) {
  if (lit.is_bool()) return Value::boolean(lit.as_bool());
  if (lit.is_int()) return Value::integer(lit.as_int());
  if (lit.is_float()) return Value::real(lit.as_float());
  if (lit.is_string()) return Value::string(lit.as_string());
  return Value::enumerated(enum_type_name, lit.as_enum().label);
}

}  // namespace cosm::wire
