// The Service Browser — the well-known component where innovative services
// register their SIDs (§3.2, Fig. 4 step 1).
//
// Unlike a trader, the browser needs no predefined service type: a
// registration is (name, SID, reference), nothing more.  Human users (or
// their scripted stand-ins) browse the entries, read annotations, and pick
// a reference to bind to.  A browser is itself a COSM service — it can
// register its own SID at another browser, producing the cascade of
// bindings the paper describes.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "rpc/service_object.h"
#include "sidl/service_ref.h"
#include "sidl/sid.h"

namespace cosm::core {

struct BrowserEntry {
  std::string name;
  sidl::SidPtr sid;
  sidl::ServiceRef ref;
};

class ServiceBrowser {
 public:
  explicit ServiceBrowser(std::string name);

  const std::string& name() const noexcept { return name_; }

  /// Register a service under a display name.  Re-registration under the
  /// same name replaces the entry (services may extend their SID over time,
  /// §2.3).  The SID is validated on admission.
  void register_service(const std::string& entry_name, sidl::SidPtr sid,
                        const sidl::ServiceRef& ref);

  /// Remove an entry; throws cosm::NotFound.
  void withdraw(const std::string& entry_name);

  /// All entries, in registration order.
  std::vector<BrowserEntry> list() const;

  /// Entry by name; throws cosm::NotFound.
  BrowserEntry describe(const std::string& entry_name) const;

  /// Case-insensitive keyword search over entry names, service names,
  /// operation names and annotation texts.
  std::vector<BrowserEntry> search(const std::string& keyword) const;

  std::size_t size() const;
  std::uint64_t registrations_total() const noexcept { return registrations_; }

 private:
  std::string name_;
  mutable std::mutex mutex_;
  std::vector<BrowserEntry> entries_;
  std::uint64_t registrations_ = 0;
};

/// SIDL text of the browser's own interface.
const std::string& browser_sidl();

/// Wrap a browser in a ServiceObject (the browser must outlive it).
rpc::ServiceObjectPtr make_browser_service(ServiceBrowser& browser);

}  // namespace cosm::core
