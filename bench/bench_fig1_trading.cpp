// Experiment F1 (Fig. 1): the ODP trader triangle.
//
// Measures each leg of the export -> import -> bind -> invoke cycle and the
// full cycle, sweeping the offer population.  Expected shape: export and
// bind are O(1); import grows linearly with the offer population (the
// trader scans and ranks all matching offers).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sidl/parser.h"
#include "trader/sid_export.h"
#include "trader/trader.h"

namespace {

using namespace cosm;

void BM_Export(benchmark::State& state) {
  rpc::InProcNetwork net;
  core::CosmRuntime runtime(net);
  runtime.trader().types().add(services::canonical_car_rental_type());
  services::CarRentalConfig config;
  config.tradable = true;
  auto sid = std::make_shared<sidl::Sid>(
      sidl::parse_sid(services::car_rental_sidl(config)));
  sidl::ServiceRef ref{"svc-x", "inproc://provider", config.name};

  for (auto _ : state) {
    std::string id = trader::export_sid_offer(runtime.trader(), *sid, ref);
    state.PauseTiming();
    runtime.trader().withdraw(id);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_Export);

void BM_Import(benchmark::State& state) {
  bench::Market market(static_cast<std::size_t>(state.range(0)));
  trader::ImportRequest request;
  request.service_type = services::car_rental_service_type_name();
  request.constraint = "ChargePerDay < 90 && ChargeCurrency == USD";
  request.preference = "min ChargePerDay";

  std::size_t matched = 0;
  for (auto _ : state) {
    auto offers = market.runtime.trader().import(request);
    matched = offers.size();
    benchmark::DoNotOptimize(offers);
  }
  state.counters["offers"] = static_cast<double>(state.range(0));
  state.counters["matched"] = static_cast<double>(matched);
}
BENCHMARK(BM_Import)->RangeMultiplier(4)->Range(1, 4096);

void BM_Bind(benchmark::State& state) {
  bench::Market market(8);
  core::GenericClient client = market.runtime.make_client();
  for (auto _ : state) {
    core::Binding binding = client.bind(market.refs.front());
    benchmark::DoNotOptimize(binding.sid());
  }
}
BENCHMARK(BM_Bind);

void BM_FullTriangle(benchmark::State& state) {
  bench::Market market(static_cast<std::size_t>(state.range(0)));
  core::GenericClient client = market.runtime.make_client();
  trader::ImportRequest request;
  request.service_type = services::car_rental_service_type_name();
  request.preference = "min ChargePerDay";
  request.max_matches = 1;

  for (auto _ : state) {
    auto offers = market.runtime.trader().import(request);
    core::Binding rental = client.bind(offers.front().ref);
    wire::Value models = rental.invoke("ListModels", {});
    benchmark::DoNotOptimize(models);
  }
  state.counters["offers"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_FullTriangle)->RangeMultiplier(4)->Range(1, 1024);

}  // namespace

BENCHMARK_MAIN();
