#include "common/error.h"

namespace cosm {

std::string ParseError::format(const std::string& what, int line, int column) {
  return what + " (at line " + std::to_string(line) + ", column " +
         std::to_string(column) + ")";
}

}  // namespace cosm
