#include "trader/trader.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cosm::trader {
namespace {

using sidl::TypeDesc;
using wire::Value;

sidl::ServiceRef mk_ref(const std::string& id) {
  return {id, "inproc://host", "CarRentalService"};
}

ServiceType rental_type() {
  ServiceType t;
  t.name = "CarRentalService";
  t.attributes = {{"ChargePerDay", TypeDesc::float_(), true},
                  {"ChargeCurrency", TypeDesc::string_(), true}};
  return t;
}

AttrMap attrs(double charge, const std::string& currency) {
  return {{"ChargePerDay", Value::real(charge)},
          {"ChargeCurrency", Value::string(currency)}};
}

class TraderTest : public ::testing::Test {
 protected:
  TraderTest() {
    trader.types().add(rental_type());
  }
  Trader trader{"t1"};
};

TEST_F(TraderTest, ExportAssignsIds) {
  auto id1 = trader.export_offer("CarRentalService", mk_ref("a"), attrs(80, "USD"));
  auto id2 = trader.export_offer("CarRentalService", mk_ref("b"), attrs(60, "DEM"));
  EXPECT_NE(id1, id2);
  EXPECT_EQ(trader.offer_count(), 2u);
  EXPECT_EQ(trader.exports_total(), 2u);
}

TEST_F(TraderTest, ExportValidation) {
  EXPECT_THROW(trader.export_offer("Ghost", mk_ref("a"), {}), NotFound);
  EXPECT_THROW(trader.export_offer("CarRentalService", mk_ref("a"), {}), TypeError);
  EXPECT_THROW(trader.export_offer("CarRentalService", sidl::ServiceRef{},
                                   attrs(80, "USD")),
               ContractError);
}

TEST_F(TraderTest, WithdrawRemoves) {
  auto id = trader.export_offer("CarRentalService", mk_ref("a"), attrs(80, "USD"));
  trader.withdraw(id);
  EXPECT_EQ(trader.offer_count(), 0u);
  EXPECT_THROW(trader.withdraw(id), NotFound);
}

TEST_F(TraderTest, ModifyReplacesAttributes) {
  auto id = trader.export_offer("CarRentalService", mk_ref("a"), attrs(80, "USD"));
  trader.modify(id, attrs(75, "USD"));
  auto offers = trader.list_offers("CarRentalService");
  ASSERT_EQ(offers.size(), 1u);
  EXPECT_DOUBLE_EQ(offers[0].attributes.at("ChargePerDay").as_real(), 75.0);
  EXPECT_THROW(trader.modify("ghost", attrs(1, "USD")), NotFound);
  EXPECT_THROW(trader.modify(id, {}), TypeError);  // schema still enforced
}

TEST_F(TraderTest, ImportFiltersByConstraint) {
  trader.export_offer("CarRentalService", mk_ref("a"), attrs(80, "USD"));
  trader.export_offer("CarRentalService", mk_ref("b"), attrs(40, "DEM"));
  trader.export_offer("CarRentalService", mk_ref("c"), attrs(120, "USD"));

  ImportRequest request;
  request.service_type = "CarRentalService";
  request.constraint = "ChargePerDay < 100 && ChargeCurrency == USD";
  auto offers = trader.import(request);
  ASSERT_EQ(offers.size(), 1u);
  EXPECT_EQ(offers[0].ref.id, "a");
  EXPECT_EQ(trader.imports_total(), 1u);
  EXPECT_EQ(trader.offers_evaluated(), 3u);
}

TEST_F(TraderTest, ImportRanksByPreference) {
  trader.export_offer("CarRentalService", mk_ref("mid"), attrs(80, "USD"));
  trader.export_offer("CarRentalService", mk_ref("cheap"), attrs(40, "USD"));
  trader.export_offer("CarRentalService", mk_ref("dear"), attrs(120, "USD"));

  ImportRequest request;
  request.service_type = "CarRentalService";
  request.preference = "min ChargePerDay";
  auto offers = trader.import(request);
  ASSERT_EQ(offers.size(), 3u);
  EXPECT_EQ(offers[0].ref.id, "cheap");
  EXPECT_EQ(offers[2].ref.id, "dear");

  request.preference = "max ChargePerDay";
  EXPECT_EQ(trader.import(request)[0].ref.id, "dear");
}

TEST_F(TraderTest, ImportCapsMatches) {
  for (int i = 0; i < 10; ++i) {
    trader.export_offer("CarRentalService", mk_ref("r" + std::to_string(i)),
                        attrs(10.0 * i, "USD"));
  }
  ImportRequest request;
  request.service_type = "CarRentalService";
  request.preference = "min ChargePerDay";
  request.max_matches = 3;
  auto offers = trader.import(request);
  ASSERT_EQ(offers.size(), 3u);
  EXPECT_EQ(offers[0].ref.id, "r0");
}

TEST_F(TraderTest, ImportErrors) {
  ImportRequest request;
  request.service_type = "Ghost";
  EXPECT_THROW(trader.import(request), NotFound);
  request.service_type = "CarRentalService";
  request.constraint = "((";
  EXPECT_THROW(trader.import(request), ParseError);
  request.constraint = "";
  request.preference = "bogus";
  EXPECT_THROW(trader.import(request), ParseError);
}

TEST_F(TraderTest, SubtypeOffersMatchBaseImports) {
  ServiceType sub;
  sub.name = "LuxuryRental";
  sub.supertype = "CarRentalService";
  trader.types().add(sub);
  trader.export_offer("LuxuryRental", mk_ref("lux"), attrs(300, "USD"));
  trader.export_offer("CarRentalService", mk_ref("plain"), attrs(50, "USD"));

  ImportRequest base;
  base.service_type = "CarRentalService";
  EXPECT_EQ(trader.import(base).size(), 2u);

  ImportRequest lux;
  lux.service_type = "LuxuryRental";
  auto lux_offers = trader.import(lux);
  ASSERT_EQ(lux_offers.size(), 1u);
  EXPECT_EQ(lux_offers[0].ref.id, "lux");
  EXPECT_EQ(trader.list_offers("CarRentalService").size(), 2u);
}

TEST_F(TraderTest, ListOffersUnknownTypeThrows) {
  EXPECT_THROW(trader.list_offers("Ghost"), NotFound);
}

TEST_F(TraderTest, RandomPreferenceIsDeterministicPerTraderSeed) {
  for (int i = 0; i < 5; ++i) {
    trader.export_offer("CarRentalService", mk_ref("r" + std::to_string(i)),
                        attrs(10, "USD"));
  }
  Trader twin("t1", 42);
  twin.types().add(rental_type());
  for (int i = 0; i < 5; ++i) {
    twin.export_offer("CarRentalService", mk_ref("r" + std::to_string(i)),
                      attrs(10, "USD"));
  }
  ImportRequest request;
  request.service_type = "CarRentalService";
  request.preference = "random";
  auto a = trader.import(request);
  auto b = twin.import(request);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].ref.id, b[i].ref.id);
}

TEST(TraderBasics, NeedsName) {
  EXPECT_THROW(Trader{""}, ContractError);
}

TEST(TraderBasics, LinkManagement) {
  Trader a("a"), b("b");
  a.link("to-b", std::make_shared<LocalTraderGateway>(b));
  EXPECT_EQ(a.links(), std::vector<std::string>{"to-b"});
  EXPECT_THROW(a.link("to-b", std::make_shared<LocalTraderGateway>(b)),
               ContractError);
  EXPECT_THROW(a.link("null", nullptr), ContractError);
  a.unlink("to-b");
  EXPECT_TRUE(a.links().empty());
  EXPECT_THROW(a.unlink("to-b"), NotFound);
}

}  // namespace
}  // namespace cosm::trader
