// The ODP trader (§2, Fig. 1).
//
// Exporters register typed service offers (step 1); importers issue typed
// requests with constraint and preference (step 2); the trader returns
// ranked matching offers (step 3); binding happens outside the trader
// (steps 4–5 — see naming::Binder).
//
// Federation (§2.2 "trader federation … for geographic scopes"): a trader
// holds links to other traders; an import with hop_limit > 0 is propagated
// with a decremented limit, results are merged and deduplicated by offer id.
//
// Federation v2 (replication.h): a link can be upgraded to a
// *subscription* — the linked trader then pushes offer deltas and
// anti-entropy digests, and imports the subscription covers resolve
// against the local replica instead of fanning out, falling back to the
// per-query deep search otherwise.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "sidl/service_ref.h"
#include "trader/attributes.h"
#include "trader/constraint.h"
#include "trader/offer_store.h"
#include "trader/preference.h"
#include "trader/replication.h"
#include "trader/service_type.h"
#include "trader/storage/storage_engine.h"

namespace cosm::trader {

// struct Offer lives in trader/offer_store.h (re-exported here: the store
// owns the published representation, the trader owns the protocol).

struct ImportRequest {
  /// Service type to match (offers of subtypes match too).
  std::string service_type;
  /// Constraint expression over service properties ("" = all offers).
  std::string constraint;
  /// Ranking policy ("" = export order).
  std::string preference;
  /// Cap on returned offers (0 = unlimited).
  std::size_t max_matches = 0;
  /// Federation propagation budget: 0 = local only.
  int hop_limit = 0;
  /// Absolute deadline for the whole import, including federated hops
  /// (default-constructed = none).  Carried explicitly — not via the
  /// thread-local CallContext — because the federation sweep fans out on
  /// worker threads; the RPC facade translates it back into each forwarded
  /// call's budget.
  std::chrono::steady_clock::time_point deadline{};
  /// Trace correlation, carried explicitly for the same reason as the
  /// deadline: sweep worker threads have no thread-local CallContext to
  /// inherit from.  0 = untraced.  The facade stamps these from the
  /// dispatching server's context; the trader parents its import span here
  /// and forwards its own span id to federated hops.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;

  bool has_deadline() const noexcept {
    return deadline != std::chrono::steady_clock::time_point{};
  }
  bool expired() const noexcept {
    return has_deadline() && std::chrono::steady_clock::now() >= deadline;
  }
};

class Trader;

/// What TraderGateway::subscribe hands back: the publisher-minted
/// subscription id plus the publisher's trader name (replica batches are
/// keyed by the pair — ids from different publishers may collide).
struct SubscriptionInfo {
  std::uint64_t id = 0;
  std::string publisher;
};

/// Abstract link target for federation: another trader reachable either
/// in-process (tests) or over RPC (see facade.h).
class TraderGateway {
 public:
  virtual ~TraderGateway() = default;
  virtual std::vector<Offer> import(const ImportRequest& request) = 0;
  virtual std::string describe() const = 0;

  /// Upgrade this link to a replication subscription: the linked trader
  /// starts pushing offer deltas and digests back to `subscriber`.
  /// Default: not supported (throws cosm::ContractError) — gateways that
  /// can reach back opt in.
  virtual SubscriptionInfo subscribe(Trader& subscriber,
                                     const SubscriptionScope& scope);
  virtual void unsubscribe(std::uint64_t subscription_id);
};

/// How federation survives misbehaving links (graceful degradation).
struct FederationOptions {
  /// Consecutive failures before a link is quarantined.
  int quarantine_threshold = 3;
  /// How long a quarantined link is skipped before it is probed again.
  std::chrono::milliseconds quarantine_ttl{2000};
};

/// Per-link result of one federated sweep.
struct LinkOutcome {
  enum class Status {
    Ok,           ///< link answered; `offers` merged
    Failed,       ///< link raised; `error` holds the reason
    Quarantined,  ///< link skipped: still inside its negative-TTL window
    Replicated,   ///< resolved from the local replica; no call made
  };

  std::string link;
  Status status = Status::Ok;
  /// Failure reason (Status::Failed only).
  std::string error;
  /// Offers the link contributed before deduplication (Ok / Replicated).
  std::size_t offers = 0;

  bool ok() const noexcept {
    return status == Status::Ok || status == Status::Replicated;
  }
};

/// A federated import's answer: the merged, ranked offers plus what happened
/// on every federation link consulted (empty when the import stayed local).
/// A dead link degrades the result set; it never fails the import.
struct ImportResult {
  std::vector<Offer> offers;
  std::vector<LinkOutcome> links;

  bool degraded() const noexcept {
    for (const auto& outcome : links) {
      if (!outcome.ok()) return true;
    }
    return false;
  }
};

/// Health snapshot of one federation link (instrumentation).
struct LinkHealth {
  int consecutive_failures = 0;
  bool quarantined = false;
  /// A quarantine TTL has expired and one probe call is in flight; the
  /// link rejoins full fan-out only if the probe succeeds (half-open
  /// circuit breaker), otherwise it is re-quarantined immediately.
  bool half_open = false;
};

/// Subscriber-side view of one link's replica (tests, metrics).
struct ReplicaInfo {
  std::string publisher;
  std::uint64_t subscription_id = 0;
  /// Initial snapshot applied and no known sequence gap: covered imports
  /// may resolve here.
  bool synced = false;
  std::uint64_t last_seq = 0;
  /// Publisher's last assigned sequence as of the latest digest; minus
  /// last_seq this is the replication lag in deltas.
  std::uint64_t publisher_seq = 0;
  std::size_t offers = 0;
  std::uint64_t deltas_applied = 0;
  std::uint64_t digests = 0;
  std::uint64_t repairs = 0;
};

/// Publisher-side view of one subscription (tests, metrics).
struct SubscriptionStatus {
  std::uint64_t id = 0;
  std::string subscriber;
  std::size_t pending = 0;  ///< queued deltas not yet flushed
  bool needs_snapshot = false;
  std::uint64_t last_seq = 0;  ///< last sequence assigned
};

/// Matching-engine knobs (benchmarking, ops overrides).  Defaults are what
/// production runs with.
struct TraderTuning {
  /// Secondary attribute indexes on the offer store; off = linear bucket
  /// scans (the pre-index behaviour, kept as baseline and safety valve).
  bool enable_indexes = true;
  /// Bytecode-VM top-k selection for `score:` preferences; off = collect
  /// all candidates, tree-walk the constraint and score, and full-sort —
  /// the reference path (baseline, safety valve, and the differential
  /// tests' oracle).  Results are identical either way.
  bool enable_selection_vm = true;
  /// Compiled-constraint LRU entries (0 disables the cache).  The compiled-
  /// preference cache shares this capacity.
  std::size_t constraint_cache_capacity = 128;
  /// Offer-store writer shards (clamped to [1, 64]).  Takes effect while
  /// the store is empty; ignored once offers exist.
  std::size_t store_shards = 8;
  /// Live offers of one service type before its new offers hash-split
  /// across all shards instead of homing on one (0 = never split).
  std::size_t hot_split_threshold = 65536;
  /// Resolve covered imports from link replicas instead of fanning out
  /// (safety valve and deep-search baseline for benches; subscriptions
  /// keep replicating either way, only query routing changes).
  bool enable_replica_resolve = true;
};

/// One offer of an export_batch call (the id is minted by the trader).
struct BatchOfferSpec {
  sidl::ServiceRef ref;
  AttrMap attributes;
  std::map<std::string, std::string> dynamic_attrs;
};

class Trader : public storage::SnapshotSource {
 public:
  /// `engine` is the constructor-injected durability policy: nullptr (or a
  /// NullStorage) keeps the trader purely in-memory; a WalStorage journals
  /// every mutation and recovers the market on restart — call recover()
  /// before the first mutation then.
  explicit Trader(std::string name, std::uint64_t rng_seed = 42,
                  std::shared_ptr<storage::StorageEngine> engine = nullptr);
  ~Trader() override;

  Trader(const Trader&) = delete;
  Trader& operator=(const Trader&) = delete;

  /// The injected durability policy (never null; NullStorage by default).
  storage::StorageEngine& storage() noexcept { return *storage_; }

  /// Load persisted state from the storage engine: service types
  /// (supertypes first), offers, the offer-id counter, the logical clock,
  /// and persisted subscriptions (re-armed through the sink factory so
  /// subscribers reconcile via one anti-entropy round).  Must run before
  /// any mutation, after set_tuning; returns false when there was nothing
  /// to recover.  Throws cosm::ContractError when the trader already holds
  /// state.
  bool recover();

  /// How recover() rebuilds the push sink of a persisted subscription from
  /// its sink descriptor (a subscriber ServiceRef string for RPC
  /// subscriptions).  Without a factory, persisted subscriptions are
  /// dropped on recovery (subscribers then re-subscribe).  Returning null
  /// drops that subscription.
  using SinkFactory = std::function<std::shared_ptr<ReplicationSink>(
      const std::string& sink_desc)>;
  void set_subscription_sink_factory(SinkFactory factory);

  /// Explicit teardown, in dependency order: replication pump first (no
  /// more flush/digest rounds), then subscriptions and replicas (no more
  /// sink calls), then the offer store's retired state (quiescent now, so
  /// reclaim_retired() is safe), then a final journal flush.  Idempotent;
  /// the destructor calls it.
  void shutdown();

  /// Apply matching-engine tuning; safe at any point, takes effect for
  /// subsequent imports.
  void set_tuning(const TraderTuning& tuning);

  const std::string& name() const noexcept { return name_; }

  /// The type manager doubles as the trader's management interface (§2.1).
  ServiceTypeManager& types() noexcept { return types_; }
  const ServiceTypeManager& types() const noexcept { return types_; }

  /// How the trader evaluates dynamic properties: invoke `operation` on the
  /// exporter and return the scalar result.  Installed by the runtime
  /// (wired to an RPC channel); absent by default, in which case offers
  /// with unresolved dynamic attributes simply do not match.
  using DynamicFetcher =
      std::function<wire::Value(const sidl::ServiceRef& exporter,
                                const std::string& operation)>;

  void set_dynamic_fetcher(DynamicFetcher fetcher);

  /// Register an offer (Fig. 1 step 1).  Validates that the type exists and
  /// the attributes satisfy its schema.  Returns the offer id.
  std::string export_offer(const std::string& service_type,
                           const sidl::ServiceRef& ref, AttrMap attributes);

  /// Register an offer with ODP dynamic properties: `dynamic_attrs` maps
  /// attribute names to the exporter operation that yields the current
  /// value.  Dynamic attributes satisfy required-attribute checks at export
  /// and are fetched + type-checked during each import.
  std::string export_offer(const std::string& service_type,
                           const sidl::ServiceRef& ref, AttrMap attributes,
                           std::map<std::string, std::string> dynamic_attrs);

  /// Register a batch of offers of one service type, validating every spec
  /// before any is applied (all-or-nothing on validation errors) and
  /// amortising store locking and index maintenance across the batch.
  /// Returns the minted offer ids, in spec order.
  std::vector<std::string> export_batch(const std::string& service_type,
                                        std::vector<BatchOfferSpec> specs);

  /// Remove an offer; throws cosm::NotFound.
  void withdraw(const std::string& offer_id);

  /// Remove a batch of offers; unknown ids are skipped (bulk callers want
  /// idempotency, not per-id faults).  Returns how many were removed.
  std::size_t withdraw_batch(const std::vector<std::string>& offer_ids);

  // --- offer leases (ODP-style bounded offer lifetime) ---
  // The trader keeps a logical clock in hours; an offer with a lease is
  // swept when the clock passes its expiry.  Exporters renew by calling
  // set_lease again.

  /// Give an offer a lease expiring at `expires_at_hours` on the trader's
  /// logical clock (0 removes the lease).  Throws cosm::NotFound.
  void set_lease(const std::string& offer_id, std::uint64_t expires_at_hours);

  /// Advance the logical clock, sweeping expired offers; returns how many
  /// were swept.
  std::size_t advance_clock(std::uint64_t hours);

  std::uint64_t clock_hours() const;
  std::uint64_t offers_expired_total() const noexcept {
    return expired_.load(std::memory_order_relaxed);
  }

  /// Replace an offer's attributes; throws cosm::NotFound / cosm::TypeError.
  void modify(const std::string& offer_id, AttrMap attributes);

  /// modify() over a batch: each change is schema-checked (throws
  /// cosm::TypeError on the first ill-typed one, applying nothing);
  /// unknown ids are skipped.  Returns how many were applied.
  std::size_t modify_batch(std::vector<std::pair<std::string, AttrMap>> changes);

  /// All offers of a type (and its subtypes), in export order.
  std::vector<Offer> list_offers(const std::string& service_type) const;

  /// Match + rank (Fig. 1 steps 2–3), consulting federation links within
  /// the request's hop limit.  Links are queried concurrently (one thread
  /// per additional link); results merge in link order, so the outcome is
  /// deterministic.  Throws cosm::ParseError on a bad constraint or
  /// preference, cosm::NotFound for an unknown service type, and
  /// cosm::RpcError when the request's deadline has already passed.
  std::vector<Offer> import(const ImportRequest& request);

  /// import() plus per-link outcomes: a failing federated link degrades the
  /// result set (tagged Failed) instead of failing the import, and a link
  /// that keeps failing is quarantined for FederationOptions::quarantine_ttl
  /// (tagged Quarantined, not queried at all) before being probed again.
  ImportResult import_ex(const ImportRequest& request);

  // --- federation ---
  void link(const std::string& link_name, std::shared_ptr<TraderGateway> gateway);
  void unlink(const std::string& link_name);
  std::vector<std::string> links() const;

  void set_federation_options(FederationOptions options);
  FederationOptions federation_options() const;

  /// Failure/quarantine state of one link; throws cosm::NotFound.
  LinkHealth link_health(const std::string& link_name) const;

  // --- replication: subscriber side (see replication.h) ---

  /// Upgrade the named link to a replication subscription.  The publisher
  /// pushes its initial snapshot synchronously, so on return the replica
  /// is populated and covered imports resolve locally.  Throws
  /// cosm::NotFound for an unknown link, cosm::ContractError when the
  /// link's gateway cannot subscribe or the link already is subscribed.
  void subscribe_link(const std::string& link_name,
                      SubscriptionScope scope = {});

  /// Tear the subscription down (publisher stops pushing, replica is
  /// dropped); throws cosm::NotFound for an unknown link or when the link
  /// holds no subscription.
  void unsubscribe_link(const std::string& link_name);

  /// Replica state of one subscribed link; throws cosm::NotFound.
  ReplicaInfo replica_info(const std::string& link_name) const;

  /// Apply a pushed delta batch (invoked by the publisher's sink, locally
  /// or via the facade RPC).  Returns this subscriber's sequence
  /// high-water mark — short of the batch's end when a gap was detected
  /// (the publisher then demotes to a snapshot).
  std::uint64_t replica_apply(const DeltaBatch& batch);

  /// Compare an anti-entropy digest against the replica; returns the
  /// service types whose content diverges (the publisher repairs them).
  /// Types this trader has never heard of are excluded — they cannot be
  /// stored locally, and reporting them forever would repair-loop.
  std::vector<std::string> replica_digest(const ReplicationDigest& digest);

  // --- replication: publisher side ---

  /// Register a subscription pushing through `sink`; pushes the initial
  /// snapshot before returning.  Called via TraderGateway::subscribe /
  /// the facade's Subscribe op, not usually directly.  `sink_desc` is the
  /// sink's reconstruction handle for durable traders (the subscriber's
  /// ServiceRef string; empty = not reconstructible, the subscription is
  /// dropped on recovery).
  SubscriptionInfo add_subscription(const std::string& subscriber,
                                    SubscriptionScope scope,
                                    std::shared_ptr<ReplicationSink> sink,
                                    const std::string& sink_desc = {});
  /// Drop a subscription; unknown ids are ignored (tear-down is
  /// idempotent — the subscriber may retry over a flaky wire).
  void remove_subscription(std::uint64_t subscription_id);

  std::vector<SubscriptionStatus> subscriptions() const;

  /// Push queued deltas to every subscription (bounded batches); returns
  /// deltas delivered.  A sink failure leaves the queue intact for the
  /// next flush.
  std::size_t flush_replication();

  /// Flush, then exchange an anti-entropy digest with every subscription
  /// and push per-type repair batches for divergent types.  Returns the
  /// number of types repaired.
  std::size_t anti_entropy_tick();

  void set_replication_options(const ReplicationOptions& options);
  ReplicationOptions replication_options() const;

  /// Background replication pump: flushes every flush_interval, digests
  /// every digest_interval (replication_options()).  Idempotent; the
  /// destructor stops it.
  void start_replication_pump();
  void stop_replication_pump();

  // --- instrumentation ---
  std::uint64_t exports_total() const noexcept {
    return exports_.load(std::memory_order_relaxed);
  }
  std::uint64_t imports_total() const noexcept {
    return imports_.load(std::memory_order_relaxed);
  }
  /// Type-conforming offers considered per import (what a linear scan of
  /// the conforming buckets would have evaluated) — the pre-index metric.
  std::uint64_t offers_evaluated() const noexcept {
    return evaluated_.load(std::memory_order_relaxed);
  }
  /// Candidates the constraint was actually evaluated on, after index
  /// narrowing.  scanned << evaluated is the index paying off.
  std::uint64_t offers_scanned() const noexcept {
    return scanned_.load(std::memory_order_relaxed);
  }
  /// Bucket lookups served from a secondary index.
  std::uint64_t index_lookups() const noexcept {
    return store_.index_lookups();
  }
  std::uint64_t constraint_cache_hits() const noexcept {
    return constraint_cache_.hits();
  }
  std::uint64_t constraint_cache_misses() const noexcept {
    return constraint_cache_.misses();
  }
  /// LRU drops plus type-layout-epoch invalidations of compiled constraints.
  std::uint64_t constraint_cache_evictions() const noexcept {
    return constraint_cache_.evictions();
  }
  /// Nanoseconds spent parsing + bytecode-compiling constraints (misses).
  std::uint64_t constraint_cache_compile_ns() const noexcept {
    return constraint_cache_.compile_ns();
  }
  std::uint64_t preference_cache_hits() const noexcept {
    return preference_cache_.hits();
  }
  std::uint64_t preference_cache_misses() const noexcept {
    return preference_cache_.misses();
  }
  std::uint64_t preference_cache_evictions() const noexcept {
    return preference_cache_.evictions();
  }
  std::uint64_t preference_cache_compile_ns() const noexcept {
    return preference_cache_.compile_ns();
  }
  /// Score evaluations on the `score:` import path (VM or tree-walk).
  std::uint64_t offers_scored() const noexcept {
    return offers_scored_.load(std::memory_order_relaxed);
  }
  /// Candidates the top-k engine skipped without scoring because a score
  /// bound proved they cannot displace the current k-th entry.
  std::uint64_t heap_prunes() const noexcept {
    return heap_prunes_.load(std::memory_order_relaxed);
  }
  std::uint64_t dynamic_fetches() const noexcept {
    return dynamic_fetches_.load(std::memory_order_relaxed);
  }
  std::uint64_t links_quarantined_total() const noexcept {
    return quarantined_.load(std::memory_order_relaxed);
  }
  /// Half-open probes admitted after a quarantine TTL expired.
  std::uint64_t links_probed_total() const noexcept {
    return probes_.load(std::memory_order_relaxed);
  }
  std::size_t offer_count() const;

  // --- replication instrumentation ---
  std::uint64_t replication_deltas_sent() const noexcept {
    return repl_deltas_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t replication_deltas_applied() const noexcept {
    return repl_deltas_applied_.load(std::memory_order_relaxed);
  }
  std::uint64_t replication_snapshots_sent() const noexcept {
    return repl_snapshots_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t replication_digest_repairs() const noexcept {
    return repl_repairs_.load(std::memory_order_relaxed);
  }
  std::uint64_t replication_flush_failures() const noexcept {
    return repl_flush_failures_.load(std::memory_order_relaxed);
  }
  /// Covered federated link resolutions served from a replica.
  std::uint64_t replica_local_resolves() const noexcept {
    return repl_local_resolves_.load(std::memory_order_relaxed);
  }
  /// Federated link resolutions that went over the wire (deep search).
  std::uint64_t replica_fanout_resolves() const noexcept {
    return repl_fanout_resolves_.load(std::memory_order_relaxed);
  }
  /// Deltas replication skipped because the subscriber never registered
  /// the offer's service type (type-universe drift).
  std::uint64_t replication_unknown_type_skips() const noexcept {
    return repl_unknown_type_.load(std::memory_order_relaxed);
  }
  /// Queued deltas across all subscriptions (replication lag, publisher
  /// view).
  std::size_t replication_pending() const;
  /// Live offers across all link replicas (subscriber view).
  std::size_t replica_offer_count() const;

  // --- offer-store health (feeds the runtime's metrics snapshot) ---
  std::uint64_t store_base_rebuilds() const noexcept {
    return store_.base_rebuilds();
  }
  std::uint64_t store_epoch() const noexcept { return store_.epoch(); }
  /// How far the oldest pinned reader trails the store's publication epoch
  /// (0 = no reader pinned); retired state cannot be reclaimed past this.
  std::uint64_t store_epoch_lag() const { return store_.epoch_lag(); }
  std::size_t store_shard_count() const { return store_.shard_count(); }
  std::vector<OfferStore::ShardStats> store_shard_stats() const {
    return store_.shard_stats();
  }

  /// Zero the matching-engine instrumentation counters (offers_evaluated,
  /// offers_scanned, dynamic_fetches, index lookups, constraint-cache and
  /// closure-cache hit/miss, replica local/fan-out resolves) so a
  /// measurement window can read absolute values instead of deltas.
  /// Lifecycle totals (exports/imports/expired/quarantined, replication
  /// traffic) and all cached state are untouched.
  void reset_stats();

 private:
  /// A federation link plus its failure-tracking state (guarded by mutex_).
  struct Link {
    std::string name;
    std::shared_ptr<TraderGateway> gateway;
    int consecutive_failures = 0;
    std::chrono::steady_clock::time_point quarantined_until{};
    /// Half-open: the TTL expired and exactly one sweep claimed the probe
    /// call; concurrent sweeps keep skipping until its outcome lands.
    bool probe_in_flight = false;
    /// Subscription this trader holds on the link (0 = plain link).
    std::uint64_t subscription_id = 0;
  };

  /// Publisher side of one subscription (guarded by repl_mutex_; sink
  /// calls happen with no lock held, serialised by repl_io_mutex_).
  struct Subscription {
    std::uint64_t id = 0;
    std::string subscriber;
    std::string sink_desc;  ///< persisted sink handle ("" = local-only)
    SubscriptionScope scope;
    std::shared_ptr<ReplicationSink> sink;
    std::shared_ptr<const Constraint> scope_constraint;  // null = no filter
    std::uint64_t next_seq = 1;       ///< sequence for the next delta
    std::uint64_t queue_first_seq = 1;
    std::deque<OfferDelta> queue;
    bool needs_snapshot = true;  ///< initial sync, gap, or overflow
    /// Recovered from the journal: before anything streams, one reset_seq
    /// digest/repair round must realign the subscriber's sequence mark.
    bool rearm_pending = false;
  };

  /// Subscriber side of one subscription: the origin-tagged replica.
  /// Keyed by (publisher, subscription id); bound to a link by
  /// subscribe_link.  The store is internally thread-safe; the scalar
  /// fields are guarded by replica_mutex_.
  struct ReplicaState {
    std::string publisher;
    std::uint64_t subscription_id = 0;
    std::string link_name;  ///< empty until bound
    SubscriptionScope scope;
    std::unique_ptr<OfferStore> store;
    bool synced = false;
    std::uint64_t last_seq = 0;
    std::uint64_t publisher_seq = 0;
    std::uint64_t deltas_applied = 0;
    std::uint64_t digests = 0;
    std::uint64_t repairs = 0;
  };
  using ReplicaStatePtr = std::shared_ptr<ReplicaState>;

  std::vector<Offer> match_local(const ImportRequest& request,
                                 const Constraint& constraint);

  /// A locally matched offer with its score and rank key (the `score:`
  /// import path; key = detail::score_rank_key(score)).
  struct ScoredMatch {
    double score = 0.0;
    double key = 0.0;
    Offer offer;
  };
  /// Local matching for Score preferences: the store's top-k engine when
  /// the selection VM is enabled, otherwise collect + tree-walk + score
  /// everything (the reference path).  Dynamic offers are resolved,
  /// filtered and scored here either way.
  std::vector<ScoredMatch> match_scored(const ImportRequest& request,
                                        const CompiledPreference& pref);

  /// Query every live federation link concurrently with `forwarded`,
  /// recording per-link outcomes (and quarantine bookkeeping) into
  /// `result.links`.  Links whose subscription covers the query resolve
  /// from the local replica instead of a call.  Returns each link's
  /// offers, in link order.
  std::vector<std::vector<Offer>> sweep_links(const ImportRequest& forwarded,
                                              ImportResult& result);

  void note_link_outcomes(const std::vector<LinkOutcome>& outcomes);

  // --- replication internals ---

  /// True when the subscription's scope takes this offer (type in the
  /// scope closure, static attributes pass the scope constraint; offers
  /// with dynamic attributes always pass — their values only exist at
  /// import time).
  bool in_scope(const Subscription& sub, const Offer& offer) const;
  /// True when `replica` can answer an import for (type, constraint)
  /// without consulting the publisher.
  bool covers_query(const ReplicaState& replica, const ImportRequest& request) const;
  /// Enqueue one delta to every subscription whose scope takes it.
  void replicate_upsert(const Offer& offer);
  void replicate_remove(const std::string& id, const std::string& type);
  void enqueue_delta(Subscription& sub, OfferDelta delta);
  /// All in-scope offers of `sub`, seq-ordered (publisher export order).
  /// Leases replicate verbatim; the replica is never swept locally — the
  /// publisher's own lease sweep arrives as Remove deltas.
  std::vector<Offer> scope_snapshot(const Subscription& sub) const;
  /// Push `sub`'s pending state (snapshot or queued deltas); caller holds
  /// repl_io_mutex_.  Returns deltas delivered.
  std::size_t flush_subscription(const std::shared_ptr<Subscription>& sub);
  /// Digest + repair one subscription; caller holds repl_io_mutex_.
  /// Returns types repaired.
  std::size_t digest_subscription(const std::shared_ptr<Subscription>& sub);
  /// One-round post-recovery reconciliation of a persisted subscription
  /// (digest, repair divergent types, reset the subscriber's sequence
  /// mark); caller holds repl_io_mutex_.  Returns success — on failure the
  /// subscription stays rearm_pending and the next flush retries.
  bool rearm_subscription(const std::shared_ptr<Subscription>& sub);

  /// storage::SnapshotSource: fork the full market state for the storage
  /// engine's snapshot writer (offers via the store's epoch-pinned
  /// collect, so writers never block).
  storage::SnapshotState snapshot_state() override;
  /// Replica for (publisher, subscription id), created on first contact.
  ReplicaStatePtr replica_for(const std::string& publisher,
                              std::uint64_t subscription_id, bool create);
  /// Resolve a covered link from its replica: collect, constrain, resolve
  /// dynamics — offers come back id-ascending (deterministic merge input).
  std::vector<Offer> resolve_replica(const ReplicaState& replica,
                                     const ImportRequest& request);
  void replication_pump_loop();

  std::string name_;
  ServiceTypeManager types_;
  /// Durability policy; never null (NullStorage when none injected).
  std::shared_ptr<storage::StorageEngine> storage_;
  /// Suppresses type-journal callbacks while recover() re-registers
  /// recovered types (recovery is single-threaded by contract).
  bool recovering_ = false;
  bool shut_down_ = false;  ///< shutdown() ran (guarded by pump_mutex_)

  /// Resolve an offer's dynamic attributes into a merged attribute map;
  /// returns false when a fetch fails or yields a non-conforming value (the
  /// offer then does not match).
  bool resolve_dynamic(const Offer& offer, AttrMap& merged);

  // Offers live in the snapshot-concurrent indexed store; mutex_ guards
  // only the trader's control plane (links, options, fetcher, clock).
  OfferStore store_;
  ConstraintCache constraint_cache_;
  PreferenceCache preference_cache_;
  std::atomic<bool> selection_vm_enabled_{true};
  std::atomic<bool> replica_resolve_enabled_{true};

  mutable std::mutex mutex_;
  std::vector<Link> links_;
  FederationOptions federation_;
  DynamicFetcher dynamic_fetcher_;

  // --- replication state ---
  // Lock order (where nested): repl_io_mutex_ -> repl_mutex_; sink calls
  // are made with neither held (a sink may reenter another trader).
  // replica_mutex_ nests under nothing and guards only the replica map
  // and scalar fields; replica stores synchronise internally.
  mutable std::mutex repl_io_mutex_;  ///< serialises flush / digest rounds
  mutable std::mutex repl_mutex_;
  std::vector<std::shared_ptr<Subscription>> subscriptions_;
  std::uint64_t next_subscription_ = 1;
  SinkFactory sink_factory_;  ///< guarded by repl_mutex_
  /// Fast-path guard: export/withdraw/modify skip replication entirely
  /// while no subscription exists.
  std::atomic<bool> has_subscriptions_{false};
  ReplicationOptions repl_options_;

  mutable std::mutex replica_mutex_;
  std::vector<ReplicaStatePtr> replicas_;

  std::thread pump_thread_;
  std::mutex pump_mutex_;
  std::condition_variable pump_cv_;
  bool pump_stop_ = false;
  bool pump_running_ = false;
  // Ranking may happen on any importer thread; the rng has its own lock so
  // a Random-preference rank never serialises against offer mutation.
  mutable std::mutex rng_mutex_;
  Rng rng_;
  std::atomic<std::uint64_t> exports_{0};
  std::atomic<std::uint64_t> imports_{0};
  std::atomic<std::uint64_t> evaluated_{0};
  std::atomic<std::uint64_t> scanned_{0};
  std::atomic<std::uint64_t> offers_scored_{0};
  std::atomic<std::uint64_t> heap_prunes_{0};
  std::atomic<std::uint64_t> dynamic_fetches_{0};
  std::atomic<std::uint64_t> quarantined_{0};
  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> repl_deltas_sent_{0};
  std::atomic<std::uint64_t> repl_deltas_applied_{0};
  std::atomic<std::uint64_t> repl_snapshots_sent_{0};
  std::atomic<std::uint64_t> repl_repairs_{0};
  std::atomic<std::uint64_t> repl_flush_failures_{0};
  std::atomic<std::uint64_t> repl_local_resolves_{0};
  std::atomic<std::uint64_t> repl_fanout_resolves_{0};
  std::atomic<std::uint64_t> repl_unknown_type_{0};
  std::atomic<std::uint64_t> next_offer_{1};
  std::uint64_t clock_hours_ = 0;
  std::atomic<std::uint64_t> expired_{0};
};

/// In-process gateway wrapping a local trader (unit tests, single-process
/// federations).  Supports subscriptions: subscribe() registers a
/// LocalReplicationSink on the wrapped trader that pushes straight into
/// the subscriber's replica_apply / replica_digest.
class LocalTraderGateway final : public TraderGateway {
 public:
  explicit LocalTraderGateway(Trader& trader) : trader_(trader) {}
  std::vector<Offer> import(const ImportRequest& request) override {
    return trader_.import(request);
  }
  std::string describe() const override { return "local:" + trader_.name(); }

  SubscriptionInfo subscribe(Trader& subscriber,
                             const SubscriptionScope& scope) override;
  void unsubscribe(std::uint64_t subscription_id) override;

 private:
  Trader& trader_;
};

/// Publisher -> subscriber transport for in-process federations: calls the
/// subscriber trader directly.
class LocalReplicationSink final : public ReplicationSink {
 public:
  explicit LocalReplicationSink(Trader& subscriber) : subscriber_(subscriber) {}
  std::uint64_t apply(const DeltaBatch& batch) override {
    return subscriber_.replica_apply(batch);
  }
  std::vector<std::string> digest(const ReplicationDigest& digest) override {
    return subscriber_.replica_digest(digest);
  }
  std::string describe() const override {
    return "local:" + subscriber_.name();
  }

 private:
  Trader& subscriber_;
};

}  // namespace cosm::trader
