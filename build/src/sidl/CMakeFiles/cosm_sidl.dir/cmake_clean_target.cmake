file(REMOVE_RECURSE
  "libcosm_sidl.a"
)
