file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_full_stack.dir/bench_fig6_full_stack.cpp.o"
  "CMakeFiles/bench_fig6_full_stack.dir/bench_fig6_full_stack.cpp.o.d"
  "bench_fig6_full_stack"
  "bench_fig6_full_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_full_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
