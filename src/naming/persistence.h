// Interface-repository persistence.
//
// SIDs are stored on disk in their SIDL source form — one `<service-id>.sidl`
// file per service, latest version only — so a repository survives restarts
// and its contents interoperate with the `sidlc` command-line tool and any
// other SIDL processor (the same openness argument as on the wire: the
// persistent form *is* the interchange form).

#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "naming/interface_repository.h"

namespace cosm::naming {

/// Write every service's latest SID to `directory` (created if absent) as
/// `<urlencoded-service-id>.sidl`.  Returns the number of files written.
/// Throws cosm::Error on I/O failure.
std::size_t save_repository(const InterfaceRepository& repo,
                            const std::filesystem::path& directory);

/// Load every `*.sidl` file in `directory` into the repository (as a new
/// version when the id already exists).  Returns the number of SIDs
/// loaded.  Files that fail to parse or validate are skipped and reported
/// via the optional `errors` sink.  Throws cosm::Error when the directory
/// does not exist.
std::size_t load_repository(InterfaceRepository& repo,
                            const std::filesystem::path& directory,
                            std::vector<std::string>* errors = nullptr);

/// Filename-safe encoding of a service id ('/' and other separators
/// percent-encoded); exposed for tests.
std::string encode_service_id(const std::string& id);
std::string decode_service_id(const std::string& filename_stem);

}  // namespace cosm::naming
