# Empty compiler generated dependencies file for bench_a3_dynamic_props.
# This may be replaced when dependencies are built.
