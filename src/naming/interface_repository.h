// Interface repository ("Interface Manager" in Fig. 6).
//
// Stores SIDs by service id, keeps version history (a service may extend its
// SID over time — the §4.1 maturation path adds a COSM_TraderExport module
// to an already-registered description), and answers structural queries:
// "which registered services conform to this base SID?" — the question a
// generic component asks before treating an unknown service as a browser,
// trader, etc.

#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sidl/sid.h"

namespace cosm::naming {

class InterfaceRepository {
 public:
  /// Store a (new version of a) service's SID.
  void put(const std::string& service_id, sidl::SidPtr sid);

  /// Latest SID; throws cosm::NotFound.
  sidl::SidPtr get(const std::string& service_id) const;

  bool has(const std::string& service_id) const;

  /// All stored versions, oldest first; empty when unknown.
  std::vector<sidl::SidPtr> history(const std::string& service_id) const;

  /// Remove every version; throws cosm::NotFound when unknown.
  void remove(const std::string& service_id);

  /// All known service ids, sorted.
  std::vector<std::string> ids() const;

  /// Ids of services whose latest SID conforms to `base` (Fig. 2 subtype
  /// query).
  std::vector<std::string> conforming_to(const sidl::Sid& base) const;

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<sidl::SidPtr>> versions_;
};

}  // namespace cosm::naming
