#include "wire/plan.h"

#include <algorithm>

#include "common/error.h"
#include "sidl/printer.h"
#include "wire/codec.h"
#include "wire/marshal.h"

namespace cosm::wire {

using sidl::TypeDesc;
using sidl::TypeKind;

namespace {

/// Internal signal: the fast path detected a non-conforming value.  Callers
/// catch it (as TypeError) and replay through the interpreted reference path
/// to produce the canonical error message.
[[noreturn]] void mismatch() { throw TypeError("value does not conform to plan"); }

/// Wire tag of a type whose first encoded byte is value-independent, or -1.
int constant_tag(TypeKind kind) {
  switch (kind) {
    case TypeKind::Void: return kTagNull;
    case TypeKind::Int: return kTagInt;
    case TypeKind::Float: return kTagFloat;
    case TypeKind::String: return kTagString;
    case TypeKind::ServiceRef: return kTagServiceRef;
    case TypeKind::Sid: return kTagSid;
    case TypeKind::Sequence: return kTagSequence;
    default: return -1;
  }
}

}  // namespace

int MarshalPlan::StructInfo::find_slot(std::string_view field_name) const noexcept {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name == field_name) return static_cast<int>(i);
  }
  return -1;
}

MarshalPlan::MarshalPlan(sidl::TypePtr type) : type_(std::move(type)) {
  if (!type_) throw ContractError("MarshalPlan needs a type");
  root_ = compile(*type_);
}

std::uint32_t MarshalPlan::compile(const TypeDesc& t) {
  switch (t.kind()) {
    case TypeKind::Void:
      ops_.push_back({OpCode::Null, 0});
      break;
    case TypeKind::Bool:
      ops_.push_back({OpCode::Bool, 0});
      break;
    case TypeKind::Int:
      ops_.push_back({OpCode::Int, 0});
      break;
    case TypeKind::Float:
      ops_.push_back({OpCode::Float, 0});
      break;
    case TypeKind::String:
      ops_.push_back({OpCode::String, 0});
      break;
    case TypeKind::ServiceRef:
      ops_.push_back({OpCode::Ref, 0});
      break;
    case TypeKind::Sid:
      ops_.push_back({OpCode::Sid, 0});
      break;
    case TypeKind::Any:
      ops_.push_back({OpCode::Any, 0});
      break;
    case TypeKind::Enum: {
      EnumInfo info;
      info.name = t.name();
      ByteWriter header;
      header.u8(kTagEnum);
      header.str(info.name);
      info.header = header.take();
      for (const std::string& label : t.labels()) info.labels.insert(label);
      enums_.push_back(std::move(info));
      ops_.push_back({OpCode::Enum, static_cast<std::uint32_t>(enums_.size() - 1)});
      break;
    }
    case TypeKind::Struct: {
      StructInfo info;
      info.name = t.name();
      ByteWriter header;
      header.u8(kTagStruct);
      header.str(info.name);
      header.varint(t.fields().size());
      info.header = header.take();
      info.fields.reserve(t.fields().size());
      for (const auto& f : t.fields()) {
        StructField field;
        field.name = f.name;
        field.child = compile(*f.type);
        ByteWriter prefix;
        prefix.str(field.name);
        int tag = constant_tag(f.type->kind());
        if (tag >= 0) {
          // Fuse the child's constant tag into the field prefix: the fast
          // path then emits name + tag as one memcpy and the child encodes
          // its body only.
          prefix.u8(static_cast<std::uint8_t>(tag));
          field.fused = true;
        }
        field.prefix = prefix.take();
        info.fields.push_back(std::move(field));
      }
      structs_.push_back(std::move(info));
      ops_.push_back({OpCode::Struct, static_cast<std::uint32_t>(structs_.size() - 1)});
      break;
    }
    case TypeKind::Sequence: {
      std::uint32_t child = compile(*t.element());
      ops_.push_back({OpCode::Seq, child});
      break;
    }
    case TypeKind::Optional: {
      std::uint32_t child = compile(*t.element());
      ops_.push_back({OpCode::Opt, child});
      break;
    }
  }
  return static_cast<std::uint32_t>(ops_.size() - 1);
}

void MarshalPlan::encode_op(std::uint32_t idx, ByteWriter& w, const Value& v) const {
  const Op op = ops_[idx];
  switch (op.code) {
    case OpCode::Null:
      if (!v.is_null()) mismatch();
      w.u8(kTagNull);
      return;
    case OpCode::Bool:
      if (!v.is(ValueKind::Bool)) mismatch();
      w.u8(v.as_bool() ? kTagTrue : kTagFalse);
      return;
    case OpCode::Int:
      if (!v.is(ValueKind::Int)) mismatch();
      w.u8(kTagInt);
      w.svarint(v.as_int());
      return;
    case OpCode::Float:
      if (!v.is(ValueKind::Float)) mismatch();
      w.u8(kTagFloat);
      w.f64(v.as_real());
      return;
    case OpCode::String:
      if (!v.is(ValueKind::String)) mismatch();
      w.u8(kTagString);
      w.str(v.as_string());
      return;
    case OpCode::Ref:
      if (!v.is(ValueKind::ServiceRef)) mismatch();
      w.u8(kTagServiceRef);
      w.str(v.as_ref().to_string());
      return;
    case OpCode::Sid:
      if (!v.is(ValueKind::Sid)) mismatch();
      w.u8(kTagSid);
      w.str(sidl::print_sid(*v.as_sid()));
      return;
    case OpCode::Any:
      encode_value(w, v);  // top type: no checking, generic encode
      return;
    case OpCode::Enum: {
      if (!v.is(ValueKind::Enum)) mismatch();
      const EnumInfo& info = enums_[op.a];
      const std::string& vname = v.type_name();
      if (vname == info.name) {
        w.raw(info.header);
      } else {
        if (!vname.empty() && !info.name.empty()) mismatch();
        w.u8(kTagEnum);
        w.str(vname);
      }
      if (!info.labels.count(v.enum_label())) mismatch();
      w.str(v.enum_label());
      return;
    }
    case OpCode::Struct: {
      if (!v.is(ValueKind::Struct)) mismatch();
      const StructInfo& info = structs_[op.a];
      const std::size_t n = v.field_count();
      // Fast path: the value's shape matches the declaration positionally —
      // every constant byte run was precomputed at compile time.
      if (n == info.fields.size() && v.type_name() == info.name) {
        std::size_t i = 0;
        for (; i < n; ++i) {
          if (v.field_name(i) != info.fields[i].name) break;
        }
        if (i == n) {
          w.raw(info.header);
          for (i = 0; i < n; ++i) {
            const StructField& f = info.fields[i];
            w.raw(f.prefix);
            if (f.fused) {
              encode_op_body(f.child, w, v.field(i));
            } else {
              encode_op(f.child, w, v.field(i));
            }
          }
          return;
        }
      }
      // Slow path, still byte-identical to encode_value: fields in VALUE
      // order, the value's own type name and field count (record width
      // subtyping admits extras), first occurrence of each declared field
      // validated by its child plan, extras and duplicates encoded
      // generically.
      {
        const std::string& vname = v.type_name();
        if (!vname.empty() && !info.name.empty() && vname != info.name) mismatch();
        w.u8(kTagStruct);
        w.str(vname);
        w.varint(n);
        std::vector<char> seen(info.fields.size(), 0);
        for (std::size_t i = 0; i < n; ++i) {
          w.str(v.field_name(i));
          int slot = info.find_slot(v.field_name(i));
          if (slot >= 0 && !seen[static_cast<std::size_t>(slot)]) {
            seen[static_cast<std::size_t>(slot)] = 1;
            encode_op(info.fields[static_cast<std::size_t>(slot)].child, w, v.field(i));
          } else {
            encode_value(w, v.field(i));
          }
        }
        for (char s : seen) {
          if (!s) mismatch();  // declared field missing from the value
        }
      }
      return;
    }
    case OpCode::Seq: {
      if (!v.is(ValueKind::Sequence)) mismatch();
      w.u8(kTagSequence);
      encode_op_body(idx, w, v);
      return;
    }
    case OpCode::Opt:
      if (!v.is(ValueKind::Optional)) mismatch();
      if (v.has_payload()) {
        w.u8(kTagOptPresent);
        encode_op(op.a, w, v.payload());
      } else {
        w.u8(kTagOptAbsent);
      }
      return;
  }
  throw ContractError("MarshalPlan: unknown opcode");
}

void MarshalPlan::encode_op_body(std::uint32_t idx, ByteWriter& w, const Value& v) const {
  const Op op = ops_[idx];
  switch (op.code) {
    case OpCode::Null:
      if (!v.is_null()) mismatch();
      return;  // the fused kTagNull IS the whole encoding
    case OpCode::Int:
      if (!v.is(ValueKind::Int)) mismatch();
      w.svarint(v.as_int());
      return;
    case OpCode::Float:
      if (!v.is(ValueKind::Float)) mismatch();
      w.f64(v.as_real());
      return;
    case OpCode::String:
      if (!v.is(ValueKind::String)) mismatch();
      w.str(v.as_string());
      return;
    case OpCode::Ref:
      if (!v.is(ValueKind::ServiceRef)) mismatch();
      w.str(v.as_ref().to_string());
      return;
    case OpCode::Sid:
      if (!v.is(ValueKind::Sid)) mismatch();
      w.str(sidl::print_sid(*v.as_sid()));
      return;
    case OpCode::Seq: {
      if (!v.is(ValueKind::Sequence)) mismatch();
      const std::vector<Value>& elems = v.elements();
      w.varint(elems.size());
      for (const Value& e : elems) encode_op(op.a, w, e);
      return;
    }
    default:
      throw ContractError("MarshalPlan: opcode has no fused-tag body form");
  }
}

Value MarshalPlan::decode_op(std::uint32_t idx, ByteReader& r) const {
  const Op op = ops_[idx];
  const std::uint8_t tag = r.u8();
  switch (op.code) {
    case OpCode::Null:
      if (tag != kTagNull) mismatch();
      return Value::null();
    case OpCode::Bool:
      if (tag == kTagTrue) return Value::boolean(true);
      if (tag == kTagFalse) return Value::boolean(false);
      mismatch();
    case OpCode::Int:
      if (tag != kTagInt) mismatch();
      return Value::integer(r.svarint());
    case OpCode::Float:
      if (tag != kTagFloat) mismatch();
      return Value::real(r.f64());
    case OpCode::String:
      if (tag != kTagString) mismatch();
      return Value::string(r.str());
    case OpCode::Ref:
      if (tag != kTagServiceRef) mismatch();
      return decode_value_body(kTagServiceRef, r);
    case OpCode::Sid:
      if (tag != kTagSid) mismatch();
      return decode_value_body(kTagSid, r);  // wraps ParseError in WireError
    case OpCode::Any:
      return decode_value_body(tag, r);
    case OpCode::Enum: {
      if (tag != kTagEnum) mismatch();
      const EnumInfo& info = enums_[op.a];
      std::string type_name = r.str();
      std::string label = r.str();
      // Decode-level check, same as decode_value — an empty label is a wire
      // error, not a conformance error.
      if (label.empty()) throw WireError("enum value with empty label");
      if (!type_name.empty() && !info.name.empty() && type_name != info.name) mismatch();
      if (!info.labels.count(label)) mismatch();
      return Value::enumerated(std::move(type_name), std::move(label));
    }
    case OpCode::Struct: {
      if (tag != kTagStruct) mismatch();
      const StructInfo& info = structs_[op.a];
      std::string type_name = r.str();
      if (!type_name.empty() && !info.name.empty() && type_name != info.name) mismatch();
      std::uint64_t n = r.varint();
      std::vector<std::pair<std::string, Value>> fields;
      fields.reserve(std::min<std::uint64_t>(n, r.remaining()));
      std::vector<char> seen(info.fields.size(), 0);
      for (std::uint64_t i = 0; i < n; ++i) {
        std::string name = r.str();
        int slot = info.find_slot(name);
        if (slot >= 0 && !seen[static_cast<std::size_t>(slot)]) {
          // First wire occurrence of a declared field: validated by the
          // child plan (find_field semantics — later duplicates are
          // extras and only need to be decodable).
          seen[static_cast<std::size_t>(slot)] = 1;
          fields.emplace_back(std::move(name),
                              decode_op(info.fields[static_cast<std::size_t>(slot)].child, r));
        } else {
          fields.emplace_back(std::move(name), decode_value(r));
        }
      }
      for (char s : seen) {
        if (!s) mismatch();
      }
      return Value::structure(std::move(type_name), std::move(fields));
    }
    case OpCode::Seq: {
      if (tag != kTagSequence) mismatch();
      std::uint64_t n = r.varint();
      std::vector<Value> elems;
      elems.reserve(std::min<std::uint64_t>(n, r.remaining()));
      for (std::uint64_t i = 0; i < n; ++i) elems.push_back(decode_op(op.a, r));
      return Value::sequence(std::move(elems));
    }
    case OpCode::Opt:
      if (tag == kTagOptAbsent) return Value::optional_absent();
      if (tag == kTagOptPresent) return Value::optional_of(decode_op(op.a, r));
      mismatch();
  }
  throw ContractError("MarshalPlan: unknown opcode");
}

void MarshalPlan::marshal_into(ByteWriter& writer, const Value& value) const {
  const std::size_t base = writer.size();
  try {
    encode_op(root_, writer, value);
  } catch (const Error&) {
    // Roll back the partial encoding and replay through the interpreted
    // reference: it throws the canonical TypeError — or, should the plan
    // ever reject something the reference accepts, produces the bytes.
    writer.truncate(base);
    ensure_conforms(value, *type_);
    encode_value(writer, value);
  }
}

Bytes MarshalPlan::marshal(const Value& value) const {
  ByteWriter w;
  marshal_into(w, value);
  return w.take();
}

Value MarshalPlan::unmarshal(BytesView bytes) const {
  try {
    ByteReader r(bytes);
    Value v = decode_op(root_, r);
    if (!r.at_end()) {
      throw WireError("decode_value: " + std::to_string(r.remaining()) +
                      " trailing bytes");
    }
    return v;
  } catch (const TypeError&) {
    // Conformance failure detected mid-decode.  Replay the interpreted
    // path so the error class, message, and ordering (a later wire error
    // outranks an earlier type error, because the reference decodes the
    // whole frame before validating) are exactly the reference's.
    ByteReader r(bytes);
    Value v = decode_value(r);
    if (!r.at_end()) {
      throw WireError("decode_value: " + std::to_string(r.remaining()) +
                      " trailing bytes");
    }
    ensure_conforms(v, *type_);
    return v;
  }
}

OperationPlan::OperationPlan(const sidl::OperationDesc& op)
    : op_(op), result_(op.result ? op.result : sidl::TypeDesc::void_()) {
  for (const auto& p : op_.params) {
    if (p.dir != sidl::ParamDir::Out) params_.emplace_back(p.type);
  }
}

void OperationPlan::marshal_arguments_into(ByteWriter& writer,
                                           const std::vector<Value>& args) const {
  const std::size_t base = writer.size();
  if (args.size() != params_.size()) {
    throw TypeError("operation '" + op_.name + "' expects " +
                    std::to_string(params_.size()) + " argument(s), got " +
                    std::to_string(args.size()));
  }
  try {
    writer.u8(kTagSequence);
    writer.varint(args.size());
    for (std::size_t i = 0; i < args.size(); ++i) {
      params_[i].encode_op(params_[i].root_, writer, args[i]);
    }
  } catch (const Error&) {
    writer.truncate(base);
    writer.raw(wire::marshal_arguments(op_, args));  // canonical error or bytes
  }
}

Bytes OperationPlan::marshal_arguments(const std::vector<Value>& args) const {
  ByteWriter w;
  marshal_arguments_into(w, args);
  return w.take();
}

std::vector<Value> OperationPlan::unmarshal_arguments(BytesView bytes) const {
  try {
    ByteReader r(bytes);
    if (r.u8() != kTagSequence) return replay_unmarshal(bytes);
    std::uint64_t n = r.varint();
    if (n != params_.size()) return replay_unmarshal(bytes);
    std::vector<Value> args;
    args.reserve(params_.size());
    for (std::size_t i = 0; i < params_.size(); ++i) {
      args.push_back(params_[i].decode_op(params_[i].root_, r));
    }
    if (!r.at_end()) return replay_unmarshal(bytes);
    return args;
  } catch (const TypeError&) {
    return replay_unmarshal(bytes);
  }
}

/// Replay an argument frame through the interpreted reference — only runs
/// on inputs the fast path rejected, so the copy from view to owned Bytes
/// is off the hot path.  Behaviour (errors AND the rare case where the plan
/// was too strict) is the reference's by construction.
std::vector<Value> OperationPlan::replay_unmarshal(BytesView bytes) const {
  return wire::unmarshal_arguments(op_, Bytes(bytes.begin(), bytes.end()));
}

}  // namespace cosm::wire
