#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace cosm::obs {

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_capacity(std::size_t spans) {
  if (spans == 0) spans = 1;
  std::lock_guard lock(mutex_);
  if (spans == ring_capacity_) return;
  // Restore logical (oldest-first) order before re-shaping: once the ring
  // has wrapped, insertion order is ring_next_..end then begin..ring_next_,
  // so trimming raw vector ends would discard some of the newest spans.
  if (ring_full_ && ring_next_ != 0) {
    std::rotate(ring_.begin(),
                ring_.begin() + static_cast<std::ptrdiff_t>(ring_next_),
                ring_.end());
  }
  ring_capacity_ = spans;
  if (ring_.size() > ring_capacity_) {
    ring_.erase(ring_.begin(),
                ring_.end() - static_cast<std::ptrdiff_t>(ring_capacity_));
  }
  if (ring_.size() >= ring_capacity_) {
    ring_full_ = true;
    ring_next_ = 0;
  } else {
    // Growing (or shrinking with slack left) returns to append mode;
    // push() resumes push_back until the new capacity is reached.
    ring_full_ = false;
    ring_next_ = 0;
  }
}

std::size_t Tracer::capacity() const {
  std::lock_guard lock(mutex_);
  return ring_capacity_;
}

std::uint64_t Tracer::mint_id() noexcept {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

Span Tracer::start_span(std::string name, std::uint64_t trace_id,
                        std::uint64_t parent_span_id) {
  Span span;
  span.trace_id = trace_id != 0 ? trace_id : mint_id();
  span.span_id = mint_id();
  span.parent_span_id = parent_span_id;
  span.name = std::move(name);
  span.start = std::chrono::steady_clock::now();
  return span;
}

void Tracer::finish(Span&& span) { finish(std::move(span), {}); }

void Tracer::finish(Span&& span, std::string note) {
  if (!span.valid()) return;
  span.duration_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - span.start)
          .count());
  span.note = std::move(note);
  push(std::move(span));
}

void Tracer::finish_error(Span&& span, std::string what) {
  if (!span.valid()) return;
  span.error = true;
  finish(std::move(span), std::move(what));
}

void Tracer::push(Span&& span) {
  std::lock_guard lock(mutex_);
  if (!ring_full_) {
    ring_.push_back(std::move(span));
    if (ring_.size() >= ring_capacity_) {
      ring_full_ = true;
      ring_next_ = 0;
    }
    return;
  }
  ring_[ring_next_] = std::move(span);
  ring_next_ = (ring_next_ + 1) % ring_capacity_;
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<Span> Tracer::spans() const {
  std::lock_guard lock(mutex_);
  if (!ring_full_) return ring_;
  std::vector<Span> out;
  out.reserve(ring_.size());
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(ring_next_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(ring_next_));
  return out;
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  ring_full_ = false;
  ring_next_ = 0;
  dropped_.store(0, std::memory_order_relaxed);
}

namespace {

void escape_into(std::ostringstream& out, const std::string& s) {
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (c < 0x20) {
          // Exception text can carry arbitrary control bytes; JSON requires
          // every char below 0x20 escaped.
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << raw;
        }
    }
  }
}

}  // namespace

std::string Tracer::dump_json() const {
  std::vector<Span> snapshot = spans();
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const Span& span : snapshot) {
    out << (first ? "" : ",") << "\n  {\"trace\": " << span.trace_id
        << ", \"span\": " << span.span_id << ", \"parent\": "
        << span.parent_span_id << ", \"name\": \"";
    escape_into(out, span.name);
    out << "\", \"us\": " << span.duration_us << ", \"error\": "
        << (span.error ? "true" : "false") << ", \"note\": \"";
    escape_into(out, span.note);
    out << "\"}";
    first = false;
  }
  out << (first ? "]" : "\n]");
  return out.str();
}

std::string Tracer::dump_text() const {
  std::vector<Span> snapshot = spans();
  std::ostringstream out;
  for (const Span& span : snapshot) {
    out << "trace=" << span.trace_id << " span=" << span.span_id
        << " parent=" << span.parent_span_id << " " << span.name << " "
        << span.duration_us << "us" << (span.error ? " ERROR" : "");
    if (!span.note.empty()) out << " (" << span.note << ")";
    out << "\n";
  }
  return out.str();
}

}  // namespace cosm::obs
