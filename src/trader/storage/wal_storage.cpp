#include "trader/storage/wal_storage.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <thread>
#include <unordered_set>

#include "common/error.h"
#include "rpc/call_context.h"
#include "sidl/parser.h"
#include "sidl/printer.h"
#include "trader/facade.h"
#include "wire/codec.h"

namespace cosm::trader::storage {

namespace fs = std::filesystem;

namespace {

/// Record kinds — part of the on-disk format, append only.
enum RecordKind : std::uint8_t {
  kOfferUpsert = 1,
  kOfferRemove = 2,
  kClock = 3,
  kTypeAdded = 4,
  kTypeRemoved = 5,
  kSubscriptionAdd = 6,
  kSubscriptionRemove = 7,
};

constexpr std::uint8_t kSnapshotVersion = 1;

/// Each record leads with the replay identity of the RPC that caused it
/// (empty session when the mutation came from outside a dispatch, e.g. a
/// local embedding).  Session + max request id per session rebuild the
/// replay-cache high-water marks on recovery.
void write_record_header(ByteWriter& w, RecordKind kind) {
  const rpc::CallContext ctx = rpc::current_call_context();
  w.u8(kind);
  w.str(ctx.session);
  w.varint(ctx.request_id);
}

/// Offers encode field-direct rather than through the Offer_t Value form
/// the RPC surface uses: recovery decodes millions of them, and skipping
/// the intermediate Value tree (a string-keyed map per offer plus a copy
/// per field) makes replay several times cheaper.  Attribute values are
/// wire Values already and use the generic codec as leaves.  The leading
/// length keeps each offer a skippable slice, so a multi-core recovery
/// can hop the snapshot's offer section and decode slices in parallel.
void encode_offer(ByteWriter& w, const Offer& offer) {
  const std::size_t slot = w.varint_slot();
  const std::size_t start = w.size();
  w.str(offer.id);
  w.str(offer.service_type);
  w.str(offer.ref.id);
  w.str(offer.ref.endpoint);
  w.str(offer.ref.interface_name);
  w.varint(offer.attributes.size());
  for (const auto& [name, value] : offer.attributes) {
    w.str(name);
    wire::encode_value(w, value);
  }
  w.varint(offer.dynamic_attrs.size());
  for (const auto& [name, operation] : offer.dynamic_attrs) {
    w.str(name);
    w.str(operation);
  }
  w.varint(offer.lease_expires_at);
  w.patch_varint(slot, w.size() - start);
}

Offer decode_offer_body(ByteReader& r) {
  Offer offer;
  offer.id = r.str();
  offer.service_type = r.str();
  offer.ref.id = r.str();
  offer.ref.endpoint = r.str();
  offer.ref.interface_name = r.str();
  const std::uint64_t nattrs = r.varint();
  for (std::uint64_t i = 0; i < nattrs; ++i) {
    std::string name = r.str();
    offer.attributes.emplace(std::move(name), wire::decode_value(r));
  }
  const std::uint64_t ndyn = r.varint();
  for (std::uint64_t i = 0; i < ndyn; ++i) {
    std::string name = r.str();
    offer.dynamic_attrs.emplace(std::move(name), r.str());
  }
  offer.lease_expires_at = r.varint();
  return offer;
}

Offer decode_offer(ByteReader& r) {
  const std::uint64_t len = r.varint();
  ByteReader body(r.view(static_cast<std::size_t>(len)));
  return decode_offer_body(body);
}

/// Types serialize through their SIDL source form (print_type /
/// parse_type), the same trick the wire codec uses for SIDs: the textual
/// form is the stable representation.
void encode_type(ByteWriter& w, const ServiceType& type) {
  w.str(type.name);
  w.str(type.supertype);
  w.varint(type.attributes.size());
  for (const AttributeDef& attr : type.attributes) {
    w.str(attr.name);
    w.str(sidl::print_type(*attr.type));
    w.u8(attr.required ? 1 : 0);
  }
  w.varint(type.signature.size());
  for (const sidl::OperationDesc& op : type.signature) {
    w.str(op.name);
    w.str(sidl::print_type(*op.result));
    w.varint(op.params.size());
    for (const sidl::ParamDesc& param : op.params) {
      w.u8(static_cast<std::uint8_t>(param.dir));
      w.str(param.name);
      w.str(sidl::print_type(*param.type));
    }
  }
}

ServiceType decode_type(ByteReader& r) {
  ServiceType type;
  type.name = r.str();
  type.supertype = r.str();
  const std::uint64_t nattrs = r.varint();
  type.attributes.reserve(nattrs);
  for (std::uint64_t i = 0; i < nattrs; ++i) {
    AttributeDef attr;
    attr.name = r.str();
    attr.type = sidl::parse_type(r.str());
    attr.required = r.u8() != 0;
    type.attributes.push_back(std::move(attr));
  }
  const std::uint64_t nops = r.varint();
  type.signature.reserve(nops);
  for (std::uint64_t i = 0; i < nops; ++i) {
    sidl::OperationDesc op;
    op.name = r.str();
    op.result = sidl::parse_type(r.str());
    const std::uint64_t nparams = r.varint();
    op.params.reserve(nparams);
    for (std::uint64_t j = 0; j < nparams; ++j) {
      sidl::ParamDesc param;
      param.dir = static_cast<sidl::ParamDir>(r.u8());
      param.name = r.str();
      param.type = sidl::parse_type(r.str());
      op.params.push_back(std::move(param));
    }
    type.signature.push_back(std::move(op));
  }
  return type;
}

void encode_subscription(ByteWriter& w, const SubscriptionRecord& sub) {
  w.varint(sub.id);
  w.str(sub.subscriber);
  w.str(sub.sink_desc);
  w.varint(sub.scope.service_types.size());
  for (const std::string& type : sub.scope.service_types) w.str(type);
  w.str(sub.scope.constraint);
  w.varint(sub.next_seq);
}

SubscriptionRecord decode_subscription(ByteReader& r) {
  SubscriptionRecord sub;
  sub.id = r.varint();
  sub.subscriber = r.str();
  sub.sink_desc = r.str();
  const std::uint64_t ntypes = r.varint();
  sub.scope.service_types.reserve(ntypes);
  for (std::uint64_t i = 0; i < ntypes; ++i) {
    sub.scope.service_types.push_back(r.str());
  }
  sub.scope.constraint = r.str();
  sub.next_seq = r.varint();
  return sub;
}

void write_file_atomic(const std::string& path, const Bytes& content) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw Error("storage: cannot create '" + tmp + "': " + std::strerror(errno));
  }
  const std::uint8_t* data = content.data();
  std::size_t size = content.size();
  while (size > 0) {
    ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw Error(std::string("storage: snapshot write failed: ") +
                  std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  ::fsync(fd);
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw Error("storage: cannot rename '" + tmp + "' into place: " +
                std::strerror(errno));
  }
}

bool read_whole_file(const std::string& path, Bytes* out) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return false;
  }
  out->resize(static_cast<std::size_t>(st.st_size));
  std::size_t off = 0;
  while (off < out->size()) {
    ssize_t n = ::read(fd, out->data() + off, out->size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  out->resize(off);
  return true;
}

}  // namespace

/// Mutable collapse of snapshot + replayed tail.  Upserts and removes fold
/// by offer id; type and subscription records fold by name/id; counters
/// fold by max — exactly the idempotence that makes replaying a record
/// whose effect is already in the snapshot harmless.
///
/// Snapshot offers stay in a flat vector and never enter the fold maps:
/// the tail is small relative to a million-offer snapshot, so the replay
/// keeps an *overlay* (upserts + removed ids) and the final assembly walks
/// the snapshot once, skipping entries the tail touched.  This is what
/// keeps recovery O(snapshot) with tiny constants instead of paying a
/// map insertion per snapshot offer.
struct WalStorage::ReplayAccumulator {
  std::uint64_t next_offer = 1;
  std::uint64_t clock_hours = 0;
  std::map<std::string, ServiceType> types;
  /// Offers decoded straight out of the snapshot body (unique ids).
  std::vector<OfferPtr> snapshot_offers;
  /// Tail overlay: last-writer-wins upserts and removed ids.  An id in
  /// either shadows its snapshot entry.
  std::unordered_map<std::string, OfferPtr> offers;
  std::unordered_set<std::string> removed;
  std::map<std::uint64_t, SubscriptionRecord> subscriptions;
  std::unordered_map<std::string, std::uint64_t> marks;
  /// Offer mutations replayed from the log tail — the slack added to every
  /// recovered subscription's next_seq so the re-armed publisher never
  /// reuses a sequence number the subscriber may have acked.
  std::uint64_t tail_mutations = 0;

  void mark(const std::string& session, std::uint64_t request_id) {
    if (session.empty()) return;
    std::uint64_t& hwm = marks[session];
    hwm = std::max(hwm, request_id);
  }

  /// Collapse snapshot + overlay into one offer list (order: snapshot
  /// survivors first, then tail upserts).
  std::vector<OfferPtr> collapse_offers() {
    std::vector<OfferPtr> out;
    out.reserve(snapshot_offers.size() + offers.size());
    const bool tail_touched = !offers.empty() || !removed.empty();
    for (OfferPtr& offer : snapshot_offers) {
      if (tail_touched &&
          (offers.count(offer->id) != 0 ||
           (!removed.empty() && removed.count(offer->id) != 0))) {
        continue;  // the tail re-wrote or removed it
      }
      out.push_back(std::move(offer));
    }
    for (auto& [id, offer] : offers) out.push_back(std::move(offer));
    return out;
  }

  void apply_record(BytesView payload) {
    ByteReader r(payload);
    const auto kind = static_cast<RecordKind>(r.u8());
    // Sequenced reads: function-argument evaluation order is unspecified,
    // so `mark(r.str(), r.varint())` would read the header backwards on
    // right-to-left compilers.
    std::string session = r.str();
    const std::uint64_t request_id = r.varint();
    mark(session, request_id);
    switch (kind) {
      case kOfferUpsert: {
        const std::uint64_t minted_through = r.varint();
        if (minted_through > 0) {
          next_offer = std::max(next_offer, minted_through);
        }
        const std::uint64_t count = r.varint();
        for (std::uint64_t i = 0; i < count; ++i) {
          auto offer = std::make_shared<const Offer>(decode_offer(r));
          removed.erase(offer->id);
          const std::string& id = offer->id;
          offers.insert_or_assign(id, std::move(offer));
          ++tail_mutations;
        }
        break;
      }
      case kOfferRemove: {
        const std::uint64_t count = r.varint();
        for (std::uint64_t i = 0; i < count; ++i) {
          std::string id = r.str();
          offers.erase(id);
          removed.insert(std::move(id));
          ++tail_mutations;
        }
        break;
      }
      case kClock:
        clock_hours = std::max(clock_hours, r.varint());
        break;
      case kTypeAdded: {
        ServiceType type = decode_type(r);
        types.insert_or_assign(type.name, std::move(type));
        break;
      }
      case kTypeRemoved:
        types.erase(r.str());
        break;
      case kSubscriptionAdd: {
        SubscriptionRecord sub = decode_subscription(r);
        subscriptions.insert_or_assign(sub.id, std::move(sub));
        break;
      }
      case kSubscriptionRemove:
        subscriptions.erase(r.varint());
        break;
      default:
        throw WireError("storage: unknown record kind " +
                        std::to_string(static_cast<int>(kind)));
    }
  }

  void load_snapshot_body(ByteReader& r) {
    if (r.u8() != kSnapshotVersion) {
      throw WireError("storage: unsupported snapshot version");
    }
    next_offer = std::max(next_offer, r.varint());
    clock_hours = std::max(clock_hours, r.varint());
    const std::uint64_t ntypes = r.varint();
    for (std::uint64_t i = 0; i < ntypes; ++i) {
      ServiceType type = decode_type(r);
      types.insert_or_assign(type.name, std::move(type));
    }
    // Offers are individually length-prefixed, so the section splits into
    // per-offer slices with cheap varint hops and the expensive part —
    // wire decode of a million offers — fans out across cores.  Each
    // worker writes disjoint vector slots; no locking needed.
    const std::uint64_t noffers = r.varint();
    std::vector<BytesView> slices;
    slices.reserve(noffers);
    for (std::uint64_t i = 0; i < noffers; ++i) {
      const auto len = static_cast<std::size_t>(r.varint());
      slices.push_back(r.view(len));
    }
    const std::size_t base = snapshot_offers.size();
    snapshot_offers.resize(base + noffers);
    const std::size_t workers = std::min<std::size_t>(
        {noffers / 4096 + 1, std::thread::hardware_concurrency(), 16});
    auto decode_range = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        ByteReader body(slices[i]);
        snapshot_offers[base + i] =
            std::make_shared<const Offer>(decode_offer_body(body));
      }
    };
    if (workers <= 1) {
      decode_range(0, noffers);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(workers);
      std::mutex err_mutex;
      std::exception_ptr first_error;
      const std::size_t chunk = (noffers + workers - 1) / workers;
      for (std::size_t w = 0; w < workers; ++w) {
        const std::size_t lo = w * chunk;
        const std::size_t hi = std::min<std::size_t>(lo + chunk, noffers);
        if (lo >= hi) break;
        pool.emplace_back([&, lo, hi] {
          try {
            decode_range(lo, hi);
          } catch (...) {
            std::lock_guard lock(err_mutex);
            if (!first_error) first_error = std::current_exception();
          }
        });
      }
      for (std::thread& t : pool) t.join();
      if (first_error) std::rethrow_exception(first_error);
    }
    const std::uint64_t nsubs = r.varint();
    for (std::uint64_t i = 0; i < nsubs; ++i) {
      SubscriptionRecord sub = decode_subscription(r);
      subscriptions.insert_or_assign(sub.id, std::move(sub));
    }
    const std::uint64_t nmarks = r.varint();
    for (std::uint64_t i = 0; i < nmarks; ++i) {
      std::string session = r.str();
      const std::uint64_t hwm = r.varint();
      std::uint64_t& mark = marks[session];
      mark = std::max(mark, hwm);
    }
  }
};

WalStorage::WalStorage(StorageOptions options) : options_(std::move(options)) {
  if (options_.directory.empty()) {
    throw ContractError("storage: WalStorage needs a directory");
  }
}

WalStorage::~WalStorage() {
  {
    std::unique_lock lock(snap_mutex_);
    snap_stop_ = true;
    snap_cv_.notify_all();
  }
  if (snap_thread_.joinable()) snap_thread_.join();
  wal_.reset();  // drains any staged group commit
}

bool WalStorage::recover(RecoveredState* out) {
  if (armed_.load(std::memory_order_acquire)) {
    throw ContractError("storage: recover() may only be called once");
  }

  ReplayAccumulator acc;
  bool snapshot_loaded = false;
  bool any_record = false;
  std::uint64_t snapshot_seg = 0;

  // The WAL constructor writes snapshot_seg before replaying, so the
  // callback can lazily pull the snapshot in under the first tail record.
  auto load_snapshot = [&] {
    if (snapshot_loaded || snapshot_seg == 0) return;
    snapshot_loaded = true;
    Bytes file;
    const std::string path =
        WriteAheadLog::snapshot_path(options_.directory, snapshot_seg);
    if (!read_whole_file(path, &file) || file.size() < 8) {
      throw Error("storage: snapshot '" + path + "' unreadable");
    }
    ByteReader header(file);
    const std::uint32_t crc = header.u32();
    const std::uint32_t len = header.u32();
    if (len != file.size() - 8 || crc32(file.data() + 8, len) != crc) {
      throw Error("storage: snapshot '" + path + "' fails its checksum");
    }
    ByteReader body(file.data() + 8, len);
    acc.load_snapshot_body(body);
  };

  wal_ = std::make_unique<WriteAheadLog>(
      WriteAheadLog::Options{options_.directory, options_.segment_bytes,
                             options_.fsync},
      [&](const WriteAheadLog::Replayed& rec) {
        load_snapshot();
        acc.apply_record(rec.payload);
        any_record = true;
      },
      &snapshot_seg);
  load_snapshot();

  if (out) {
    out->next_offer = acc.next_offer;
    out->clock_hours = acc.clock_hours;
    out->types.clear();
    for (auto& [name, type] : acc.types) out->types.push_back(std::move(type));
    out->offers = acc.collapse_offers();
    out->subscriptions.clear();
    for (auto& [id, sub] : acc.subscriptions) {
      sub.next_seq += acc.tail_mutations;
      out->subscriptions.push_back(std::move(sub));
    }
    out->replay_marks = acc.marks;
  }
  {
    std::lock_guard lock(marks_mutex_);
    marks_ = acc.marks;
    recovered_marks_ = std::move(acc.marks);
  }

  {
    std::lock_guard lock(snap_mutex_);
    last_snapshot_bytes_ = 0;
  }
  snap_thread_ = std::thread([this] { snapshot_worker(); });
  armed_.store(true, std::memory_order_release);
  return snapshot_loaded || any_record;
}

std::unordered_map<std::string, std::uint64_t>
WalStorage::recovered_replay_marks() const {
  std::lock_guard lock(marks_mutex_);
  return recovered_marks_;
}

void WalStorage::append_record(const Bytes& payload) {
  if (!armed_.load(std::memory_order_acquire)) {
    throw ContractError("storage: log hook before recover()");
  }
  wal_->append(payload);
  records_.fetch_add(1, std::memory_order_relaxed);

  // Fold the record's replay tag into the live marks (what the next
  // snapshot persists).  Done after the append so a crash never leaves a
  // marked-but-unjournalled request.
  const rpc::CallContext ctx = rpc::current_call_context();
  if (!ctx.session.empty()) {
    std::lock_guard lock(marks_mutex_);
    std::uint64_t& hwm = marks_[ctx.session];
    hwm = std::max(hwm, ctx.request_id);
  }

  if (options_.snapshot_every_bytes > 0) {
    const std::uint64_t appended = wal_->bytes_appended();
    std::lock_guard lock(snap_mutex_);
    if (appended - last_snapshot_bytes_ >= options_.snapshot_every_bytes &&
        source_ != nullptr && !snap_requested_ && !snap_busy_) {
      snap_requested_ = true;
      snap_cv_.notify_all();
    }
  }
}

void WalStorage::log_upserts(const std::vector<OfferPtr>& offers,
                             std::uint64_t minted_through) {
  if (offers.empty() && minted_through == 0) return;
  ByteWriter w;
  write_record_header(w, kOfferUpsert);
  w.varint(minted_through);
  w.varint(offers.size());
  for (const OfferPtr& offer : offers) encode_offer(w, *offer);
  append_record(w.bytes());
}

void WalStorage::log_removes(const std::vector<std::string>& ids) {
  if (ids.empty()) return;
  ByteWriter w;
  write_record_header(w, kOfferRemove);
  w.varint(ids.size());
  for (const std::string& id : ids) w.str(id);
  append_record(w.bytes());
}

void WalStorage::log_clock(std::uint64_t clock_hours) {
  ByteWriter w;
  write_record_header(w, kClock);
  w.varint(clock_hours);
  append_record(w.bytes());
}

void WalStorage::log_type_added(const ServiceType& type) {
  ByteWriter w;
  write_record_header(w, kTypeAdded);
  encode_type(w, type);
  append_record(w.bytes());
}

void WalStorage::log_type_removed(const std::string& name) {
  ByteWriter w;
  write_record_header(w, kTypeRemoved);
  w.str(name);
  append_record(w.bytes());
}

void WalStorage::log_subscription(const SubscriptionRecord& record) {
  ByteWriter w;
  write_record_header(w, kSubscriptionAdd);
  encode_subscription(w, record);
  append_record(w.bytes());
}

void WalStorage::log_unsubscription(std::uint64_t id) {
  ByteWriter w;
  write_record_header(w, kSubscriptionRemove);
  w.varint(id);
  append_record(w.bytes());
}

void WalStorage::set_snapshot_source(SnapshotSource* source) {
  std::unique_lock lock(snap_mutex_);
  snap_cv_.wait(lock, [this] { return !snap_busy_; });
  source_ = source;
}

bool WalStorage::snapshot_now() {
  if (!armed_.load(std::memory_order_acquire)) return false;
  std::unique_lock lock(snap_mutex_);
  if (source_ == nullptr) return false;
  snap_cv_.wait(lock, [this] { return !snap_busy_; });
  snap_busy_ = true;
  lock.unlock();
  bool ok = false;
  try {
    ok = take_snapshot();
  } catch (...) {
    lock.lock();
    snap_busy_ = false;
    snap_cv_.notify_all();
    throw;
  }
  lock.lock();
  snap_busy_ = false;
  snap_cv_.notify_all();
  return ok;
}

void WalStorage::snapshot_worker() {
  std::unique_lock lock(snap_mutex_);
  for (;;) {
    snap_cv_.wait(lock, [this] { return snap_stop_ || snap_requested_; });
    if (snap_stop_) return;
    snap_requested_ = false;
    if (source_ == nullptr || snap_busy_) continue;
    snap_busy_ = true;
    lock.unlock();
    try {
      take_snapshot();
    } catch (...) {
      // A failed periodic snapshot (disk full, unwritable directory) is
      // not fatal: the log retains everything and the next trigger
      // retries.
    }
    lock.lock();
    snap_busy_ = false;
    snap_cv_.notify_all();
  }
}

namespace {
/// The phase this thread's open log→apply window was counted under —
/// end_apply must decrement the same counter begin_apply incremented,
/// even if the snapshot worker flips the phase mid-window.
int& apply_phase_of_thread() {
  thread_local int phase = 0;
  return phase;
}
}  // namespace

void WalStorage::begin_apply() {
  const int phase = apply_phase_.load(std::memory_order_acquire);
  inflight_[phase].fetch_add(1, std::memory_order_acq_rel);
  apply_phase_of_thread() = phase;
}

void WalStorage::end_apply() {
  const int phase = apply_phase_of_thread();
  if (inflight_[phase].fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard lock(drain_mutex_);
    drain_cv_.notify_all();
  }
}

void WalStorage::drain_applies(int phase) {
  std::unique_lock lock(drain_mutex_);
  drain_cv_.wait(lock, [&] {
    return inflight_[phase].load(std::memory_order_acquire) == 0;
  });
}

bool WalStorage::take_snapshot() {
  // 1. Rotate: everything journalled before this point lives in segments
  //    < new_seg, which the snapshot will supersede.
  const std::uint64_t new_seg = wal_->rotate();

  // 2. Drain: flip the apply phase and wait out every log→apply window
  //    opened under the old phase.  After this, every record in the old
  //    segments has been applied to the in-memory store, so the fork in
  //    step 3 covers them all.
  const int old_phase = apply_phase_.load(std::memory_order_acquire);
  apply_phase_.store(1 - old_phase, std::memory_order_release);
  drain_applies(old_phase);

  // 3. Fork the market state off the writer path.
  SnapshotState state = source_->snapshot_state();
  std::unordered_map<std::string, std::uint64_t> marks;
  {
    std::lock_guard lock(marks_mutex_);
    marks = marks_;
  }

  // 4. Encode and atomically publish (tmp + rename).
  ByteWriter body;
  body.u8(kSnapshotVersion);
  body.varint(state.next_offer);
  body.varint(state.clock_hours);
  body.varint(state.types.size());
  for (const ServiceType& type : state.types) encode_type(body, type);
  body.varint(state.offers.size());
  for (const Offer& offer : state.offers) encode_offer(body, offer);
  body.varint(state.subscriptions.size());
  for (const SubscriptionRecord& sub : state.subscriptions) {
    encode_subscription(body, sub);
  }
  body.varint(marks.size());
  for (const auto& [session, hwm] : marks) {
    body.str(session);
    body.varint(hwm);
  }

  ByteWriter file;
  file.u32(crc32(body.data(), body.size()));
  file.u32(static_cast<std::uint32_t>(body.size()));
  file.raw(body.bytes());
  write_file_atomic(WriteAheadLog::snapshot_path(options_.directory, new_seg),
                    file.bytes());

  // 5. Truncate the superseded prefix.
  wal_->truncate_before(new_seg);
  snapshots_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(snap_mutex_);
    last_snapshot_bytes_ = wal_->bytes_appended();
  }
  return true;
}

void WalStorage::flush() {
  if (wal_) wal_->flush();
}

std::uint64_t WalStorage::group_commits() const {
  return wal_ ? wal_->commits() : 0;
}

std::uint64_t WalStorage::bytes_journalled() const {
  return wal_ ? wal_->bytes_appended() : 0;
}

}  // namespace cosm::trader::storage
