// TCP loopback network: real sockets, length-prefixed frames, epoll reactor.
//
// Wire format: every frame is [u32 length][u64 correlation id][payload].
// The correlation id lets either side multiplex many in-flight frames over
// one connection and match responses regardless of completion order.
//
// Server side: a shared Reactor (TransportOptions::event_loop_threads epoll
// loops) owns every socket.  Listen sockets accept non-blocking; accepted
// connections get a per-connection frame-reassembly buffer, and each decoded
// request frame is handed to a dispatch Executor whose worker runs the
// handler and queues the response on the connection's write queue by
// correlation id.  Slow operations therefore no longer head-of-line-block
// fast ones on the same connection (out-of-order completion over one
// socket), and 1k idle connections cost file descriptors, not threads: the
// process holds event_loop_threads + dispatch_workers threads regardless of
// connection count.  Per-connection backpressure
// (max_in_flight_per_connection) pauses reading from a socket whose
// dispatches pile up.  unlisten() drains: stop accepting, let in-flight
// dispatches finish, flush their responses, then close.
//
// Client side: per endpoint, a small pool of persistent connections (cap
// TransportOptions::client_pool_cap) registered with the same reactor —
// no per-connection reader threads.  A call picks an idle pooled
// connection, dials while the pool (including dials in progress) is under
// the cap, and otherwise multiplexes over the least-loaded survivor; since
// the server completes out of order, a few shared sockets carry many
// concurrent callers.  A timed-out call is abandoned, not torn down: the
// correlation id guarantees its late response cannot be mistaken for
// another call's, so the connection stays pooled.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "rpc/executor.h"
#include "rpc/network.h"
#include "rpc/reactor.h"
#include "rpc/retry.h"
#include "rpc/transport_options.h"

namespace cosm::rpc {

class TcpNetwork final : public Network {
 public:
  TcpNetwork() : TcpNetwork(TransportOptions{}) {}
  explicit TcpNetwork(TransportOptions options);
  ~TcpNetwork() override;

  std::string listen(const std::string& hint, FrameHandler handler) override;
  void unlisten(const std::string& endpoint) override;
  PendingCallPtr call_async(const std::string& endpoint, const Bytes& request,
                            const CallContext& ctx) override;
  std::string scheme() const override { return "tcp"; }

  /// Connections, loop threads, in-flight frames, retries and byte totals
  /// in one snapshot — the documented instrumentation surface.
  NetworkStats stats() const override;

  /// The options this network was built with.  Immutable after
  /// construction — every behavioural knob is fixed up front.
  const TransportOptions& options() const noexcept { return options_; }

 private:
  struct ListenerState;
  class AcceptSocket;
  class ServerConn;
  class ClientConn;

  /// Per-endpoint client pool; `dialing` counts connects in progress so
  /// concurrent dials cannot overshoot the cap.
  struct Pool {
    std::vector<std::shared_ptr<ClientConn>> conns;
    std::size_t dialing = 0;
  };

  std::shared_ptr<ClientConn> checkout_conn(const std::string& endpoint);
  void shutdown_listener(const std::shared_ptr<ListenerState>& listener);
  void close_all();

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<ListenerState>> listeners_;
  std::map<std::string, Pool> pools_;
  /// Signalled when a dial finishes (success or failure) so callers waiting
  /// for a capped-out pool can proceed.
  std::condition_variable dial_cv_;
  const TransportOptions options_;  // fixed at construction

  // Jitter for send-retry backoff; its own lock so backoff sleep decisions
  // never contend with pool checkout.
  mutable std::mutex rng_mutex_;
  Rng rng_{0x7c9};

  std::atomic<std::uint64_t> send_retries_{0};
  std::atomic<std::uint64_t> frames_{0};       // request frames dispatched
  std::atomic<std::size_t> in_flight_{0};      // client pendings + dispatches
  std::atomic<std::size_t> connections_{0};    // live client + server conns
  ReactorCounters counters_;                   // bytes in/out

  // Destruction order matters: close_all() drains the listeners first;
  // then ~Reactor (declared last) closes every remaining socket and fails
  // client pendings; ~Executor then drains any dispatch task stragglers.
  std::unique_ptr<Executor> dispatcher_;
  std::unique_ptr<Reactor> reactor_;
};

}  // namespace cosm::rpc
