#include "rpc/channel.h"

#include <thread>

#include "common/error.h"
#include "common/id.h"
#include "obs/metrics.h"
#include "rpc/message.h"
#include "wire/codec.h"
#include "wire/marshal.h"
#include "wire/plan_cache.h"

namespace cosm::rpc {

PendingReply::PendingReply(PendingCallPtr pending, CallContext ctx,
                           sidl::TypePtr result_type)
    : pending_(std::move(pending)),
      ctx_(ctx),
      result_type_(std::move(result_type)) {}

PendingReply::PendingReply(PendingCallPtr pending, CallContext ctx,
                           sidl::TypePtr result_type, ReissueFn reissue,
                           RetryPolicy retry, bool idempotent,
                           std::uint64_t jitter_seed)
    : pending_(std::move(pending)),
      ctx_(ctx),
      result_type_(std::move(result_type)),
      reissue_(std::move(reissue)),
      retry_(retry),
      idempotent_(idempotent),
      rng_(jitter_seed) {}

Bytes PendingReply::get_frame() {
  const bool retryable = reissue_ && retry_.enabled() &&
                         (idempotent_ || !retry_.only_idempotent);
  auto& tr = obs::tracer();
  auto& reg = obs::metrics();
  for (int attempt = 1;; ++attempt) {
    attempts_ = attempt;
    // An attempt cap turns a *dropped* request into a bounded wait; without
    // it the first attempt would consume the whole remaining deadline.
    CallContext attempt_ctx = ctx_;
    if (retryable && retry_.attempt_timeout.count() > 0) {
      attempt_ctx = ctx_.shrunk(retry_.attempt_timeout);
    }
    try {
      Bytes frame = pending_->get(attempt_ctx);
      if (span_.valid()) {
        tr.finish(std::move(span_),
                  attempt > 1 ? "attempt " + std::to_string(attempt) : "");
      }
      if (reg.enabled() &&
          started_ != std::chrono::steady_clock::time_point{}) {
        static obs::Histogram& latency = reg.histogram("rpc.channel.latency_us");
        latency.record_us(obs::elapsed_us(started_));
      }
      return frame;
    } catch (const RpcError& e) {
      // Decide the retry *before* surrendering the span, so an aborted
      // backoff and an exhausted budget both close the attempt as an error.
      bool final = !retryable || attempt >= retry_.max_attempts || ctx_.expired();
      std::chrono::milliseconds backoff{0};
      if (!final) {
        backoff = retry_.backoff_for(attempt, rng_);
        if (ctx_.has_deadline() && backoff >= ctx_.remaining()) final = true;
      }
      if (span_.valid()) tr.finish_error(std::move(span_), e.what());
      if (final) {
        if (reg.enabled()) {
          static obs::Counter& failures = reg.counter("rpc.channel.failures");
          failures.add();
        }
        throw;
      }
      if (reg.enabled()) {
        static obs::Counter& retries = reg.counter("rpc.channel.retries");
        retries.add();
      }
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
      pending_ = reissue_(span_);  // mints the fresh attempt span (if traced)
    }
  }
}

wire::Value PendingReply::get() {
  Bytes reply_frame = get_frame();
  // Non-owning decode: the body stays a view into the reply frame and is
  // consumed in place (by the compiled result plan when the call was typed).
  MessageView reply =
      MessageView::decode(BytesView(reply_frame.data(), reply_frame.size()));
  switch (reply.type) {
    case MsgType::Response: {
      if (result_plan_) return result_plan_->result().unmarshal(reply.body);
      ByteReader r(reply.body);
      wire::Value result = wire::decode_value(r);
      if (!r.at_end()) {
        throw WireError("decode_value: " + std::to_string(r.remaining()) +
                        " trailing bytes");
      }
      if (result_type_) wire::ensure_conforms(result, *result_type_);
      return result;
    }
    case MsgType::Fault:
      throw RemoteFault(std::string(reply.fault));
    case MsgType::Request:
      break;
  }
  throw RpcError("unexpected message type in reply");
}

RpcChannel::RpcChannel(Network& network, sidl::ServiceRef ref, ChannelOptions options)
    : network_(network),
      ref_(std::move(ref)),
      options_(options),
      session_(next_name("sess")) {
  if (!ref_.valid()) throw ContractError("RpcChannel needs a valid service reference");
}

PendingReplyPtr RpcChannel::issue(const std::string& operation,
                                  const std::function<void(ByteWriter&)>& write_body,
                                  sidl::TypePtr result_type,
                                  std::shared_ptr<const wire::OperationPlan> plan) {
  // Effective budget: whatever deadline this thread already operates under,
  // tightened to at most the channel timeout from now.
  CallContext ctx = current_call_context().shrunk(options_.timeout);
  if (ctx.expired()) {
    throw RpcError("deadline exceeded before call to '" + operation + "'");
  }
  Message request =
      Message::request(next_request_.fetch_add(1, std::memory_order_relaxed),
                       ref_.id, operation, {});
  request.session = session_;
  request.deadline_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(ctx.remaining())
          .count());
  if (request.deadline_ms == 0) request.deadline_ms = 1;
  request.hop_budget = ctx.hop_budget;

  auto& tr = obs::tracer();
  auto& reg = obs::metrics();
  obs::Span span;
  std::chrono::steady_clock::time_point started{};
  if (reg.enabled()) {
    static obs::Counter& calls = reg.counter("rpc.channel.calls");
    calls.add();
    started = std::chrono::steady_clock::now();
  }
  if (tr.enabled()) {
    // Join the enclosing trace (server dispatch, outer client call) or
    // start a fresh one; the server's dispatch span hangs under this
    // attempt's span via the wire header.
    if (ctx.trace_id == 0) ctx.trace_id = tr.mint_id();
    span = tr.start_span("rpc.client:" + operation, ctx.trace_id, ctx.span_id);
    request.trace_id = ctx.trace_id;
    request.parent_span_id = span.span_id;
  } else {
    // Untraced: still forward inherited ids so hops that record spans stay
    // correlated under one trace.
    request.trace_id = ctx.trace_id;
    request.parent_span_id = ctx.span_id;
  }

  // The request frame is assembled in ONE arena: message header, a patched
  // body-length slot, the argument frame marshalled in place, trailing
  // fault field.
  ByteWriter w;
  const std::size_t slot = request.encode_begin_body(w);
  write_body(w);
  const std::size_t body_off = slot + ByteWriter::kVarintSlotWidth;
  const std::size_t body_len = w.size() - body_off;
  request.encode_end_body(w, slot);
  Bytes frame = w.take();

  calls_.fetch_add(1, std::memory_order_relaxed);
  if (!options_.retry.enabled()) {
    PendingCallPtr pending = network_.call_async(ref_.endpoint, frame, ctx);
    auto reply = std::make_shared<PendingReply>(std::move(pending), ctx,
                                                std::move(result_type));
    reply->attach_result_plan(std::move(plan));
    reply->attach_obs(std::move(span), started);
    return reply;
  }
  // Reissue closure for the retry driver: same request id and session (the
  // replay-cache key), but the stamped deadline budget is recomputed so the
  // server sees the genuinely remaining time, not the original snapshot —
  // and each reissue gets a fresh attempt span under the same trace.  The
  // header is re-encoded; the body is spliced out of the original frame, so
  // arguments are never re-marshalled (the copy only happens on retry
  // attempts, never on the first send).
  PendingCallPtr pending = network_.call_async(ref_.endpoint, frame, ctx);
  auto reissue = [network = &network_, endpoint = ref_.endpoint,
                  header = request, frame = std::move(frame), body_off,
                  body_len, ctx, op = operation](obs::Span& attempt_span) mutable {
    auto& tracer = obs::tracer();
    if (tracer.enabled()) {
      if (header.trace_id == 0) header.trace_id = tracer.mint_id();
      attempt_span =
          tracer.start_span("rpc.client:" + op, header.trace_id, ctx.span_id);
      header.parent_span_id = attempt_span.span_id;
    } else {
      attempt_span = obs::Span{};
    }
    header.deadline_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(ctx.remaining())
            .count());
    if (header.deadline_ms == 0) header.deadline_ms = 1;
    ByteWriter rw;
    std::size_t rslot = header.encode_begin_body(rw);
    rw.raw(frame.data() + body_off, body_len);
    header.encode_end_body(rw, rslot);
    return network->call_async(endpoint, rw.take(), ctx);
  };
  auto reply = std::make_shared<PendingReply>(
      std::move(pending), ctx, std::move(result_type), std::move(reissue),
      options_.retry, options_.idempotent, request.request_id ^ 0x9e3779b9u);
  reply->attach_result_plan(std::move(plan));
  reply->attach_obs(std::move(span), started);
  return reply;
}

std::shared_ptr<const wire::OperationPlan> RpcChannel::plan_for(
    const sidl::OperationDesc& op) {
  sidl::SidPtr sid;
  {
    std::lock_guard lock(sid_mutex_);
    sid = sid_;
  }
  // Pointer identity, not name lookup: the plan path only engages for the
  // exact OperationDesc objects of the SID this channel fetched, which is
  // what makes (Sid address, operation name) a sound cache key.
  if (sid && sid->find_operation(op.name) == &op) {
    return wire::PlanCache::instance().operation_plan(sid, op);
  }
  return nullptr;
}

PendingReplyPtr RpcChannel::call_async(const std::string& operation,
                                       std::vector<wire::Value> args) {
  return issue(
      operation,
      [&args](ByteWriter& w) {
        wire::encode_value(w, wire::Value::sequence(std::move(args)));
      },
      nullptr, nullptr);
}

PendingReplyPtr RpcChannel::call_async(const sidl::OperationDesc& op,
                                       std::vector<wire::Value> args) {
  if (auto plan = plan_for(op)) {
    const wire::OperationPlan& p = *plan;
    return issue(
        op.name,
        [&p, &args](ByteWriter& w) { p.marshal_arguments_into(w, args); },
        op.result, std::move(plan));
  }
  // Foreign OperationDesc (not from this channel's SID): interpreted path.
  Bytes body = wire::marshal_arguments(op, args);
  return issue(op.name, [&body](ByteWriter& w) { w.raw(body); }, op.result,
               nullptr);
}

wire::Value RpcChannel::call(const std::string& operation,
                             std::vector<wire::Value> args) {
  return call_async(operation, std::move(args))->get();
}

wire::Value RpcChannel::call(const sidl::OperationDesc& op,
                             std::vector<wire::Value> args) {
  return call_async(op, std::move(args))->get();
}

sidl::SidPtr RpcChannel::fetch_sid() {
  wire::Value v = call("_get_sid", {});
  sidl::SidPtr sid = v.as_sid();
  {
    std::lock_guard lock(sid_mutex_);
    sid_ = sid;
  }
  return sid;
}

}  // namespace cosm::rpc
