#include <gtest/gtest.h>

#include "common/error.h"
#include "rpc/channel.h"
#include "rpc/inproc.h"
#include "rpc/server.h"
#include "sidl/parser.h"
#include "wire/codec.h"

namespace cosm::rpc {
namespace {

using wire::Value;

sidl::SidPtr calc_sid() {
  return std::make_shared<sidl::Sid>(sidl::parse_sid(R"(
    module Calc {
      typedef struct { long a; long b; } Pair_t;
      interface I {
        long Add([in] Pair_t p);
        long Fail();
        string Greet([in] string name);
      };
    };
  )"));
}

ServiceObjectPtr calc_service() {
  auto object = std::make_shared<ServiceObject>(calc_sid());
  object->on("Add", [](const std::vector<Value>& args) {
    return Value::integer(args.at(0).at("a").as_int() +
                          args.at(0).at("b").as_int());
  });
  object->on("Fail", [](const std::vector<Value>&) -> Value {
    throw RemoteFault("deliberate failure");
  });
  object->on("Greet", [](const std::vector<Value>& args) {
    return Value::string("hello " + args.at(0).as_string());
  });
  return object;
}

Value pair(std::int64_t a, std::int64_t b) {
  return Value::structure("Pair_t",
                          {{"a", Value::integer(a)}, {"b", Value::integer(b)}});
}

class ServerChannelTest : public ::testing::Test {
 protected:
  InProcNetwork net;
  RpcServer server{net, "host"};
};

TEST_F(ServerChannelTest, EndToEndCall) {
  auto ref = server.add(calc_service());
  RpcChannel channel(net, ref);
  EXPECT_EQ(channel.call("Add", {pair(2, 3)}).as_int(), 5);
}

TEST_F(ServerChannelTest, TypedCallValidatesResult) {
  auto ref = server.add(calc_service());
  RpcChannel channel(net, ref);
  auto sid = channel.fetch_sid();
  const auto* op = sid->find_operation("Add");
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(channel.call(*op, {pair(10, 20)}).as_int(), 30);
}

TEST_F(ServerChannelTest, GetSidIsBuiltIn) {
  auto ref = server.add(calc_service());
  RpcChannel channel(net, ref);
  sidl::SidPtr sid = channel.fetch_sid();
  EXPECT_EQ(sid->name, "Calc");
  EXPECT_EQ(sid->operations.size(), 3u);
}

TEST_F(ServerChannelTest, HandlerExceptionBecomesRemoteFault) {
  auto ref = server.add(calc_service());
  RpcChannel channel(net, ref);
  try {
    channel.call("Fail", {});
    FAIL() << "expected RemoteFault";
  } catch (const RemoteFault& e) {
    EXPECT_NE(std::string(e.what()).find("deliberate failure"), std::string::npos);
  }
  EXPECT_EQ(server.faults_returned(), 1u);
}

TEST_F(ServerChannelTest, UnknownOperationFaults) {
  auto ref = server.add(calc_service());
  RpcChannel channel(net, ref);
  EXPECT_THROW(channel.call("Nope", {}), RemoteFault);
}

TEST_F(ServerChannelTest, UnknownTargetFaults) {
  server.add(calc_service());
  sidl::ServiceRef bogus{"svc-ghost", server.endpoint(), "Calc"};
  RpcChannel channel(net, bogus);
  EXPECT_THROW(channel.call("Add", {pair(1, 1)}), RemoteFault);
}

TEST_F(ServerChannelTest, ServerValidatesArgumentsAgainstSid) {
  auto ref = server.add(calc_service());
  RpcChannel channel(net, ref);
  // Wrong arity.
  EXPECT_THROW(channel.call("Add", {}), RemoteFault);
  // Wrong type.
  EXPECT_THROW(channel.call("Add", {Value::string("not a pair")}), RemoteFault);
  // Struct missing a declared field.
  EXPECT_THROW(channel.call("Add", {Value::structure("Pair_t", {})}), RemoteFault);
}

TEST_F(ServerChannelTest, ServerChecksResultConformance) {
  auto sid = calc_sid();
  auto object = std::make_shared<ServiceObject>(sid);
  object->on("Add", [](const std::vector<Value>&) {
    return Value::string("not a long");  // lying implementation
  });
  object->on("Fail", [](const std::vector<Value>&) { return Value(); });
  object->on("Greet", [](const std::vector<Value>&) { return Value(); });
  auto ref = server.add(object);
  RpcChannel channel(net, ref);
  EXPECT_THROW(channel.call("Add", {pair(1, 1)}), RemoteFault);
}

TEST_F(ServerChannelTest, RemoveMakesServiceUnreachable) {
  auto ref = server.add(calc_service());
  server.remove(ref);
  RpcChannel channel(net, ref);
  EXPECT_THROW(channel.call("Add", {pair(1, 1)}), RemoteFault);
  EXPECT_EQ(server.find(ref.id), nullptr);
}

TEST_F(ServerChannelTest, MultipleInstancesSameEndpoint) {
  auto ref1 = server.add(calc_service());
  auto ref2 = server.add(calc_service());
  EXPECT_EQ(ref1.endpoint, ref2.endpoint);
  EXPECT_NE(ref1.id, ref2.id);
  RpcChannel c1(net, ref1), c2(net, ref2);
  EXPECT_EQ(c1.call("Add", {pair(1, 1)}).as_int(), 2);
  EXPECT_EQ(c2.call("Add", {pair(2, 2)}).as_int(), 4);
}

TEST_F(ServerChannelTest, ChannelsHaveDistinctSessions) {
  auto ref = server.add(calc_service());
  RpcChannel c1(net, ref), c2(net, ref);
  EXPECT_NE(c1.session(), c2.session());
}

TEST_F(ServerChannelTest, InvalidRefRejectedLocally) {
  EXPECT_THROW(RpcChannel(net, sidl::ServiceRef{}), ContractError);
}

TEST_F(ServerChannelTest, CallsCountInstrumentation) {
  auto ref = server.add(calc_service());
  RpcChannel channel(net, ref);
  channel.call("Greet", {Value::string("x")});
  channel.call("Greet", {Value::string("y")});
  EXPECT_EQ(channel.calls_made(), 2u);
  EXPECT_EQ(server.requests_handled(), 2u);
}

TEST(AtMostOnce, ReplayCacheReturnsCachedResponse) {
  InProcNetwork net;
  ServerOptions options;
  options.at_most_once = true;
  RpcServer server(net, "host", options);

  int executions = 0;
  auto sid = std::make_shared<sidl::Sid>(
      sidl::parse_sid("module M { interface I { long Bump(); }; };"));
  auto object = std::make_shared<ServiceObject>(sid);
  object->on("Bump", [&executions](const std::vector<Value>&) {
    return Value::integer(++executions);
  });
  auto ref = server.add(object);

  // Hand-craft the same request twice (same session + request id): the
  // second must be served from the replay cache without re-executing.
  Message request = Message::request(
      77, ref.id, "Bump", wire::encode_value(Value::sequence({})));
  request.session = "retry-session";
  Bytes frame = request.encode();
  Bytes r1 = net.call(server.endpoint(), frame, std::chrono::milliseconds(100));
  Bytes r2 = net.call(server.endpoint(), frame, std::chrono::milliseconds(100));
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(executions, 1);
}

TEST(AtMostOnce, DifferentRequestIdsExecuteSeparately) {
  InProcNetwork net;
  ServerOptions options;
  options.at_most_once = true;
  RpcServer server(net, "host", options);

  int executions = 0;
  auto sid = std::make_shared<sidl::Sid>(
      sidl::parse_sid("module M { interface I { long Bump(); }; };"));
  auto object = std::make_shared<ServiceObject>(sid);
  object->on("Bump", [&executions](const std::vector<Value>&) {
    return Value::integer(++executions);
  });
  auto ref = server.add(object);
  RpcChannel channel(net, ref);
  channel.call("Bump", {});
  channel.call("Bump", {});
  EXPECT_EQ(executions, 2);
}

}  // namespace
}  // namespace cosm::rpc
