// Self-describing TLV encoding of Values.
//
// Every value carries a one-byte kind tag, so a receiver can decode without
// prior knowledge of the type — the property that lets a Browser accept
// registrations of services it has never heard of.  Type *checking* against
// a SID happens separately in the marshaller (marshal.h) or fused into plan
// execution (plan.h).
//
// SIDs are encoded in their SIDL source form (a string) and re-parsed on
// decode: this is precisely how the paper keeps extended SIDs processable by
// components that understand fewer extension modules — the unknown modules
// ride along as text.

#pragma once

#include "common/bytes.h"
#include "wire/value.h"

namespace cosm::wire {

/// Wire tags; part of the stable wire format — append only.  Shared by the
/// tree-walking codec below and the compiled marshal plans (plan.h), whose
/// output must stay byte-identical.
enum Tag : std::uint8_t {
  kTagNull = 0,
  kTagFalse = 1,
  kTagTrue = 2,
  kTagInt = 3,
  kTagFloat = 4,
  kTagString = 5,
  kTagEnum = 6,
  kTagStruct = 7,
  kTagSequence = 8,
  kTagOptAbsent = 9,
  kTagOptPresent = 10,
  kTagServiceRef = 11,
  kTagSid = 12,
};

/// Append the value's TLV encoding to the writer.
void encode_value(ByteWriter& writer, const Value& value);

/// Convenience: encode into a fresh byte vector.
Bytes encode_value(const Value& value);

/// Decode one value; throws cosm::WireError on malformed bytes (including a
/// SID payload that fails to parse).
Value decode_value(ByteReader& reader);

/// Decode the payload of a value whose tag byte was already consumed — the
/// continuation compiled plans fall back to when a tag does not match their
/// expectation and the value must still be decoded before the type error is
/// reported.
Value decode_value_body(std::uint8_t tag, ByteReader& reader);

/// Convenience: decode a byte vector that holds exactly one value.
Value decode_value(const Bytes& bytes);

}  // namespace cosm::wire
