file(REMOVE_RECURSE
  "CMakeFiles/test_interface_repository.dir/test_interface_repository.cpp.o"
  "CMakeFiles/test_interface_repository.dir/test_interface_repository.cpp.o.d"
  "test_interface_repository"
  "test_interface_repository.pdb"
  "test_interface_repository[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interface_repository.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
