# Empty dependencies file for bench_fig7_ui_generation.
# This may be replaced when dependencies are built.
