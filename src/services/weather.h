// An "innovative service" stand-in (§2.2): a weather forecast service that
// no service type standardises.  It exists purely through mediation — SID
// at the browser, generic clients everywhere — until/unless it matures.

#pragma once

#include <string>

#include "rpc/service_object.h"

namespace cosm::services {

struct WeatherConfig {
  std::string name = "WeatherOracle";
  /// Deterministic forecast seed.
  std::uint64_t seed = 7;
};

/// SIDL: GetForecast(city, day) -> Forecast_t{ city, day, temperature,
/// condition }, Cities() -> sequence<string>.
std::string weather_sidl(const WeatherConfig& config);

rpc::ServiceObjectPtr make_weather_service(const WeatherConfig& config);

}  // namespace cosm::services
