// Experiment F7 (Fig. 7): automatic user-interface generation.
//
// Measures form-model generation from the paper's CarRentalService SID and
// from synthetic SIDs of growing width, text rendering, and form editing
// throughput (the "typed form for local parameter entry and analysis").
// Expected shape: generation linear in widget count; entry validation cost
// independent of service size.

#include <benchmark/benchmark.h>

#include <sstream>

#include "common/error.h"
#include "services/car_rental.h"
#include "sidl/parser.h"
#include "uims/editor.h"
#include "uims/form.h"

namespace {

using namespace cosm;

sidl::SidPtr car_sid() {
  services::CarRentalConfig config;
  config.tradable = true;
  return std::make_shared<sidl::Sid>(
      sidl::parse_sid(services::car_rental_sidl(config)));
}

void BM_GenerateCarRentalForm(benchmark::State& state) {
  auto sid = car_sid();
  std::size_t widgets = 0;
  for (auto _ : state) {
    uims::ServiceForm form = uims::generate_form(*sid);
    widgets = uims::widget_count(form);
    benchmark::DoNotOptimize(form);
  }
  state.counters["widgets"] = static_cast<double>(widgets);
}
BENCHMARK(BM_GenerateCarRentalForm);

void BM_RenderCarRentalForm(benchmark::State& state) {
  auto sid = car_sid();
  uims::ServiceForm form = uims::generate_form(*sid);
  for (auto _ : state) {
    std::string text = uims::render_text(form);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_RenderCarRentalForm);

std::string wide_struct_sidl(int fields) {
  std::ostringstream os;
  os << "module Wide {\n  typedef struct {\n";
  for (int i = 0; i < fields; ++i) {
    switch (i % 4) {
      case 0: os << "    long f" << i << ";\n"; break;
      case 1: os << "    string f" << i << ";\n"; break;
      case 2: os << "    boolean f" << i << ";\n"; break;
      default: os << "    sequence<double> f" << i << ";\n"; break;
    }
  }
  os << "  } Big_t;\n  interface I { void Op([in] Big_t arg); };\n};\n";
  return os.str();
}

void BM_GenerateVsWidgetCount(benchmark::State& state) {
  auto sid = std::make_shared<sidl::Sid>(
      sidl::parse_sid(wide_struct_sidl(static_cast<int>(state.range(0)))));
  std::size_t widgets = 0;
  for (auto _ : state) {
    uims::ServiceForm form = uims::generate_form(*sid);
    widgets = uims::widget_count(form);
    benchmark::DoNotOptimize(form);
  }
  state.counters["widgets"] = static_cast<double>(widgets);
}
BENCHMARK(BM_GenerateVsWidgetCount)->RangeMultiplier(4)->Range(4, 256);

void BM_FormEntryValidation(benchmark::State& state) {
  auto sid = car_sid();
  uims::FormEditor editor(sid, "SelectCar");
  int i = 0;
  for (auto _ : state) {
    editor.set("selection.days", std::to_string(i++ % 30 + 1));
    benchmark::DoNotOptimize(editor);
  }
}
BENCHMARK(BM_FormEntryValidation);

void BM_FormEntryRejection(benchmark::State& state) {
  // Ill-typed input is rejected locally — measure the rejection path.
  auto sid = car_sid();
  uims::FormEditor editor(sid, "SelectCar");
  std::size_t rejected = 0;
  for (auto _ : state) {
    try {
      editor.set("selection.days", "not-a-number");
    } catch (const TypeError&) {
      ++rejected;
    }
  }
  state.counters["rejected"] = static_cast<double>(rejected);
}
BENCHMARK(BM_FormEntryRejection);

void BM_BuildArgumentsFromForm(benchmark::State& state) {
  auto sid = car_sid();
  uims::FormEditor editor(sid, "SelectCar");
  editor.set("selection.model", "VW_Golf");
  editor.set("selection.booking_date", "1994-06-21");
  editor.set("selection.days", "3");
  for (auto _ : state) {
    auto args = editor.arguments();
    benchmark::DoNotOptimize(args);
  }
}
BENCHMARK(BM_BuildArgumentsFromForm);

}  // namespace

BENCHMARK_MAIN();
