#include "trader/constraint.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cosm::trader {
namespace {

using wire::Value;

AttrMap car_offer() {
  return {
      {"CarModel", Value::enumerated("CarModel_t", "FIAT_Uno")},
      {"AverageMilage", Value::integer(12000)},
      {"ChargePerDay", Value::real(80.0)},
      {"ChargeCurrency", Value::string("USD")},
      {"Insured", Value::boolean(true)},
  };
}

/// (expression, expected result against car_offer()).
struct Case {
  const char* expr;
  bool expected;
};

class ConstraintEval : public ::testing::TestWithParam<Case> {};

TEST_P(ConstraintEval, MatchesExpectation) {
  Constraint c = Constraint::parse(GetParam().expr);
  EXPECT_EQ(c.eval(car_offer()), GetParam().expected) << GetParam().expr;
}

INSTANTIATE_TEST_SUITE_P(
    Comparisons, ConstraintEval,
    ::testing::Values(
        Case{"ChargePerDay == 80", true}, Case{"ChargePerDay == 80.0", true},
        Case{"ChargePerDay != 80", false}, Case{"ChargePerDay < 100", true},
        Case{"ChargePerDay < 80", false}, Case{"ChargePerDay <= 80", true},
        Case{"ChargePerDay > 79.5", true}, Case{"ChargePerDay >= 80.5", false},
        Case{"AverageMilage == 12000", true},
        Case{"100 < ChargePerDay", false},  // literal on the left
        Case{"AverageMilage > ChargePerDay", true}));  // attr vs attr

INSTANTIATE_TEST_SUITE_P(
    StringsAndEnums, ConstraintEval,
    ::testing::Values(
        Case{"ChargeCurrency == \"USD\"", true},
        Case{"ChargeCurrency == 'USD'", true},
        Case{"ChargeCurrency == USD", true},  // bare label literal
        Case{"ChargeCurrency != DEM", true},
        Case{"CarModel == FIAT_Uno", true},   // enum label equality
        Case{"CarModel == \"FIAT_Uno\"", true},
        Case{"CarModel == VW_Golf", false},
        Case{"ChargeCurrency < \"ZZZ\"", true}));  // lexicographic

INSTANTIATE_TEST_SUITE_P(
    Booleans, ConstraintEval,
    ::testing::Values(
        Case{"Insured == true", true}, Case{"Insured != true", false},
        Case{"Insured == false", false}, Case{"true", true},
        Case{"false", false}));

INSTANTIATE_TEST_SUITE_P(
    Logic, ConstraintEval,
    ::testing::Values(
        Case{"ChargePerDay < 100 && ChargeCurrency == USD", true},
        Case{"ChargePerDay < 50 && ChargeCurrency == USD", false},
        Case{"ChargePerDay < 50 || ChargeCurrency == USD", true},
        Case{"!(ChargePerDay < 50)", true},
        Case{"!(ChargePerDay < 50) && !(AverageMilage > 50000)", true},
        Case{"(ChargePerDay < 50 || Insured == true) && CarModel == FIAT_Uno", true},
        // && binds tighter than ||.
        Case{"false && false || true", true},
        Case{"true || false && false", true}));

INSTANTIATE_TEST_SUITE_P(
    ExistsAndMissing, ConstraintEval,
    ::testing::Values(
        Case{"exists ChargePerDay", true}, Case{"exists Discount", false},
        Case{"!exists Discount", true},
        // Comparisons over missing attributes are false, never errors.
        Case{"Discount < 10", false}, Case{"Discount == Discount", true},
        // ("Discount" falls back to the literal string on both sides.)
        Case{"Mileage > 0 || exists ChargePerDay", true}));

INSTANTIATE_TEST_SUITE_P(
    TypeMismatches, ConstraintEval,
    ::testing::Values(
        // Number vs string: no match, no error.
        Case{"ChargeCurrency < 100", false},
        Case{"ChargePerDay == \"80\"", false},
        Case{"Insured == 1", false}));

INSTANTIATE_TEST_SUITE_P(
    SetMembership, ConstraintEval,
    ::testing::Values(
        Case{"ChargeCurrency in { USD, DEM }", true},
        Case{"ChargeCurrency in { \"FF\", \"DEM\" }", false},
        Case{"CarModel in { VW_Golf, FIAT_Uno }", true},
        Case{"ChargePerDay in { 79, 80, 81 }", true},
        Case{"ChargePerDay in { 79.5, 80.5 }", false},
        Case{"Missing in { 1, 2 }", false},
        // Attributes can appear in the set too.
        Case{"80 in { ChargePerDay, AverageMilage }", true},
        Case{"ChargePerDay < 100 && ChargeCurrency in { USD, GBP }", true}));

TEST(Constraint, InSetSyntaxErrors) {
  EXPECT_THROW(Constraint::parse("A in { }"), ParseError);
  EXPECT_THROW(Constraint::parse("A in USD"), ParseError);
  EXPECT_THROW(Constraint::parse("A in { USD"), ParseError);
  EXPECT_THROW(Constraint::parse("A in { USD DEM }"), ParseError);
}

TEST(Constraint, InSetReferencedAttributes) {
  auto attrs = Constraint::parse("Currency in { USD, Fallback }")
                   .referenced_attributes();
  EXPECT_EQ(attrs.size(), 3u);  // Currency, USD, Fallback (idents all count)
}

TEST(Constraint, EmptyAndBlankAlwaysTrue) {
  EXPECT_TRUE(Constraint::parse("").eval({}));
  EXPECT_TRUE(Constraint::parse("   \t\n").eval({}));
  EXPECT_TRUE(Constraint().eval(car_offer()));
}

TEST(Constraint, ReferencedAttributesCollected) {
  Constraint c = Constraint::parse(
      "ChargePerDay < 100 && exists Discount || Model == VW");
  auto attrs = c.referenced_attributes();
  // Sorted set: ChargePerDay, Discount, Model, VW (idents on either side).
  EXPECT_EQ(attrs.size(), 4u);
}

TEST(Constraint, TextPreserved) {
  EXPECT_EQ(Constraint::parse("A == 1").text(), "A == 1");
}

TEST(Constraint, MoveSemantics) {
  Constraint a = Constraint::parse("ChargePerDay < 100");
  Constraint b = std::move(a);
  EXPECT_TRUE(b.eval(car_offer()));
}

class ConstraintSyntaxError : public ::testing::TestWithParam<const char*> {};

TEST_P(ConstraintSyntaxError, Throws) {
  EXPECT_THROW(Constraint::parse(GetParam()), ParseError) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(BadInputs, ConstraintSyntaxError,
                         ::testing::Values("A ==", "== 5", "A < < B",
                                           "(A == 1", "A == 1)", "A = 1",
                                           "A && B",  // operands are not exprs
                                           "exists", "A == 1 &&",
                                           "A == \"unterminated", "# nonsense",
                                           "A == 1 extra"));

TEST(Constraint, StructuredAttributesNeverMatch) {
  AttrMap attrs = {{"Blob", Value::sequence({Value::integer(1)})}};
  EXPECT_FALSE(Constraint::parse("Blob == 1").eval(attrs));
  EXPECT_TRUE(Constraint::parse("exists Blob").eval(attrs));
}

}  // namespace
}  // namespace cosm::trader
