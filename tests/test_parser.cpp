#include "sidl/parser.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "sidl/validate.h"

namespace cosm::sidl {
namespace {

/// The paper's §4.1 example, verbatim in spirit (hyphenated labels and the
/// [in] direction syntax included).
const char* kPaperExample = R"(
module CarRentalService {
  // the base part:
  typedef enum { AUDI, FIAT-Uno, VW-Golf } CarModel_t;
  typedef struct {
    CarModel_t model;
    string BookingDate;
  } SelectCar_t;
  typedef struct { boolean ok; } SelectCarReturn_t;
  typedef struct { boolean ok; } BookCarReturn_t;
  interface COSM_Operations {
    SelectCarReturn_t SelectCar ( [in] SelectCar_t selection );
    BookCarReturn_t BookCar ( );
  };
  // the extension:
  module COSM_TraderExport {
    const long ServiceID = 4711;
    const string TOD = "CarRentalService";
    const CarModel_t Model = FIAT-Uno;
    const float ChargePerDay = 80.0;
    const string ChargeCurrency = "USD";
  };
};
)";

TEST(Parser, PaperExampleParses) {
  Sid sid = parse_sid(kPaperExample);
  EXPECT_EQ(sid.name, "CarRentalService");
  EXPECT_EQ(sid.interface_name, "COSM_Operations");
  ASSERT_EQ(sid.operations.size(), 2u);
  EXPECT_EQ(sid.operations[0].name, "SelectCar");
  ASSERT_EQ(sid.operations[0].params.size(), 1u);
  EXPECT_EQ(sid.operations[0].params[0].name, "selection");
  EXPECT_EQ(sid.operations[0].params[0].dir, ParamDir::In);
  EXPECT_TRUE(sid.operations[1].params.empty());
}

TEST(Parser, PaperExampleHyphenLabelsJoined) {
  Sid sid = parse_sid(kPaperExample);
  TypePtr model = sid.find_type("CarModel_t");
  ASSERT_TRUE(model);
  EXPECT_GE(model->label_index("FIAT_Uno"), 0);
  EXPECT_GE(model->label_index("VW_Golf"), 0);
}

TEST(Parser, PaperExampleTraderExport) {
  Sid sid = parse_sid(kPaperExample);
  ASSERT_TRUE(sid.trader_export.has_value());
  EXPECT_EQ(sid.trader_export->service_type, "CarRentalService");
  const Literal* charge = sid.trader_export->find("ChargePerDay");
  ASSERT_NE(charge, nullptr);
  EXPECT_DOUBLE_EQ(charge->as_float(), 80.0);
  const Literal* model = sid.trader_export->find("Model");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->as_enum().label, "FIAT_Uno");
  // TOD is hoisted into service_type, not kept as an attribute.
  EXPECT_EQ(sid.trader_export->find("TOD"), nullptr);
}

TEST(Parser, PaperTypedefOrderAlsoAccepted) {
  // §2.1 writes "typedef CarModel_t enum { ... }" — name first.
  Sid sid = parse_sid(R"(
    module M {
      typedef CarModel_t enum { AUDI, FIATUno, VW-Golf };
      typedef Price_t double;
      interface I { void Op([in] CarModel_t m, [in] Price_t p); };
    };
  )");
  ASSERT_TRUE(sid.find_type("CarModel_t"));
  EXPECT_EQ(sid.find_type("CarModel_t")->kind(), TypeKind::Enum);
  EXPECT_EQ(sid.find_type("Price_t")->kind(), TypeKind::Float);
}

TEST(Parser, FsmKeywordForm) {
  Sid sid = parse_sid(R"(
    module M {
      interface I { void SelectCar(); void Commit(); };
      module COSM_FSM {
        states { INIT, SELECTED };
        initial INIT;
        transition INIT SelectCar SELECTED;
        transition SELECTED SelectCar SELECTED;
        transition SELECTED Commit INIT;
      };
    };
  )");
  ASSERT_TRUE(sid.fsm.has_value());
  EXPECT_EQ(sid.fsm->initial, "INIT");
  EXPECT_EQ(sid.fsm->states.size(), 2u);
  EXPECT_EQ(sid.fsm->transitions.size(), 3u);
  EXPECT_NE(sid.fsm->find("INIT", "SelectCar"), nullptr);
  EXPECT_EQ(sid.fsm->find("INIT", "Commit"), nullptr);
}

TEST(Parser, FsmTupleFormFromPaper) {
  // §3.1 writes transitions as (INIT, SelectCar, SELECTED) tuples.
  Sid sid = parse_sid(R"(
    module M {
      interface I { void SelectCar(); void Commit(); };
      module COSM_FSM {
        states { INIT, SELECTED };
        initial INIT;
        (INIT, SelectCar, SELECTED)
        (SELECTED, SelectCar, SELECTED)
        (SELECTED, Commit, INIT)
      };
    };
  )");
  ASSERT_TRUE(sid.fsm.has_value());
  EXPECT_EQ(sid.fsm->transitions.size(), 3u);
}

TEST(Parser, AnnotationsModule) {
  Sid sid = parse_sid(R"(
    module M {
      interface I { void Op(); };
      module COSM_Annotations {
        annotate Op "does the thing";
        annotate M "the service";
      };
    };
  )");
  ASSERT_NE(sid.find_annotation("Op"), nullptr);
  EXPECT_EQ(*sid.find_annotation("Op"), "does the thing");
  EXPECT_EQ(sid.find_annotation("nope"), nullptr);
}

TEST(Parser, UnknownModuleSkippedAndPreserved) {
  Sid sid = parse_sid(R"(
    module M {
      interface I { void Op(); };
      module FancyNewExtension {
        const long Depth = 3;
        module Nested { const long X = 1; };
      };
    };
  )");
  ASSERT_EQ(sid.unknown_extensions.size(), 1u);
  EXPECT_EQ(sid.unknown_extensions[0].name, "FancyNewExtension");
  // Body preserved verbatim, including the nested module.
  EXPECT_NE(sid.unknown_extensions[0].raw_body.find("Nested"), std::string::npos);
  EXPECT_NE(sid.unknown_extensions[0].raw_body.find("Depth = 3"), std::string::npos);
}

TEST(Parser, StrictModeRejectsUnknownModules) {
  ParserOptions strict;
  strict.strict_unknown_modules = true;
  EXPECT_THROW(
      parse_sid("module M { interface I { void Op(); }; module X { }; };", strict),
      ParseError);
  // The same text parses fine in the default (paper) mode.
  EXPECT_NO_THROW(
      parse_sid("module M { interface I { void Op(); }; module X { }; };"));
}

TEST(Parser, SequenceOptionalAndNestedTypes) {
  Sid sid = parse_sid(R"(
    module M {
      typedef struct {
        sequence<string> tags;
        optional<long> limit;
        sequence<sequence<double>> matrix;
      } Q_t;
      interface I { Q_t Get([in] Q_t q); };
    };
  )");
  TypePtr q = sid.find_type("Q_t");
  ASSERT_TRUE(q);
  EXPECT_EQ(q->find_field("tags")->type->kind(), TypeKind::Sequence);
  EXPECT_EQ(q->find_field("limit")->type->kind(), TypeKind::Optional);
  EXPECT_EQ(q->find_field("matrix")->type->element()->kind(), TypeKind::Sequence);
}

TEST(Parser, ServiceRefSidAndAnyBaseTypes) {
  Sid sid = parse_sid(R"(
    module M {
      interface I {
        void Register([in] string name, [in] SID description, [in] ServiceReference ref);
        any Get([in] any key);
      };
    };
  )");
  EXPECT_EQ(sid.operations[0].params[1].type->kind(), TypeKind::Sid);
  EXPECT_EQ(sid.operations[0].params[2].type->kind(), TypeKind::ServiceRef);
  EXPECT_EQ(sid.operations[1].result->kind(), TypeKind::Any);
}

TEST(Parser, ParamDirectionsBareAndBracketed) {
  Sid sid = parse_sid(R"(
    module M {
      interface I {
        void Op([in] long a, out string b, inout double c, long d);
      };
    };
  )");
  const auto& params = sid.operations[0].params;
  EXPECT_EQ(params[0].dir, ParamDir::In);
  EXPECT_EQ(params[1].dir, ParamDir::Out);
  EXPECT_EQ(params[2].dir, ParamDir::InOut);
  EXPECT_EQ(params[3].dir, ParamDir::In);  // default
}

TEST(Parser, UnnamedParamsGetSyntheticNames) {
  Sid sid = parse_sid("module M { interface I { void Op([in] long, [in] string); }; };");
  EXPECT_EQ(sid.operations[0].params[0].name, "arg0");
  EXPECT_EQ(sid.operations[0].params[1].name, "arg1");
}

TEST(Parser, TopLevelConstants) {
  Sid sid = parse_sid(R"(
    module M {
      const long Version = 2;
      const string Vendor = "dbis";
      const boolean Experimental = true;
      interface I { void Op(); };
    };
  )");
  ASSERT_EQ(sid.constants.size(), 3u);
  EXPECT_EQ(sid.constants[0].second.as_int(), 2);
  EXPECT_EQ(sid.constants[1].second.as_string(), "dbis");
  EXPECT_TRUE(sid.constants[2].second.as_bool());
}

TEST(Parser, MultipleInterfacesMergeOperations) {
  Sid sid = parse_sid(R"(
    module M {
      interface A { void Op1(); };
      interface B { void Op2(); };
    };
  )");
  EXPECT_EQ(sid.interface_name, "A");
  EXPECT_EQ(sid.operations.size(), 2u);
}

// --- error cases ---

TEST(ParserErrors, UnknownTypeReference) {
  EXPECT_THROW(parse_sid("module M { interface I { Missing_t Op(); }; };"),
               ParseError);
}

TEST(ParserErrors, DuplicateTypeName) {
  EXPECT_THROW(parse_sid(R"(
    module M {
      typedef long X_t;
      typedef string X_t;
    };
  )"),
               ParseError);
}

TEST(ParserErrors, DuplicateOperation) {
  EXPECT_THROW(parse_sid("module M { interface I { void Op(); void Op(); }; };"),
               ParseError);
}

TEST(ParserErrors, VoidParameterRejected) {
  EXPECT_THROW(parse_sid("module M { interface I { void Op([in] void x); }; };"),
               ParseError);
}

TEST(ParserErrors, EmptyEnumRejected) {
  EXPECT_THROW(parse_sid("module M { typedef enum { } E_t; };"), ParseError);
}

TEST(ParserErrors, MissingSemicolonAfterTypedef) {
  EXPECT_THROW(parse_sid("module M { typedef long X_t interface I {}; };"),
               ParseError);
}

TEST(ParserErrors, UnterminatedModule) {
  EXPECT_THROW(parse_sid("module M { interface I { void Op(); };"), ParseError);
}

TEST(ParserErrors, UnterminatedUnknownExtension) {
  EXPECT_THROW(parse_sid("module M { module X { const long A = 1; };"), ParseError);
}

TEST(ParserErrors, TraderExportWithoutTOD) {
  EXPECT_THROW(parse_sid(R"(
    module M {
      interface I { void Op(); };
      module COSM_TraderExport { const long Price = 5; };
    };
  )"),
               ParseError);
}

TEST(ParserErrors, DuplicateFsmModule) {
  EXPECT_THROW(parse_sid(R"(
    module M {
      interface I { void Op(); };
      module COSM_FSM { states { A }; initial A; };
      module COSM_FSM { states { B }; initial B; };
    };
  )"),
               ParseError);
}

TEST(ParserErrors, TrailingInputAfterModule) {
  EXPECT_THROW(parse_sid("module M { }; extra"), ParseError);
}

TEST(ParserErrors, ReportsLineNumbers) {
  try {
    parse_sid("module M {\n  typedef bogus;\n};");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

// --- standalone type parsing ---

TEST(ParseType, SelfContainedSpecs) {
  EXPECT_EQ(parse_type("long")->kind(), TypeKind::Int);
  EXPECT_EQ(parse_type("sequence<string>")->kind(), TypeKind::Sequence);
  auto s = parse_type("struct { long x; double y; }");
  EXPECT_EQ(s->kind(), TypeKind::Struct);
  EXPECT_EQ(s->fields().size(), 2u);
  auto e = parse_type("enum Color { RED, GREEN }");
  EXPECT_EQ(e->name(), "Color");
}

TEST(ParseType, RejectsTrailingInput) {
  EXPECT_THROW(parse_type("long long long"), ParseError);
  EXPECT_THROW(parse_type("UnknownName_t"), ParseError);
}

}  // namespace
}  // namespace cosm::sidl
