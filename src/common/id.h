// Process-unique identifier generation for service references, offers and
// RPC requests.

#pragma once

#include <cstdint>
#include <string>

namespace cosm {

/// Monotonic process-unique 64-bit id (thread-safe).
std::uint64_t next_id();

/// "prefix-<id>" convenience for human-readable unique names.
std::string next_name(const std::string& prefix);

}  // namespace cosm
