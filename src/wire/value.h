// Dynamic values — the data model every COSM component exchanges.
//
// A Value is a self-describing runtime datum shaped by SIDL types.  Because
// generic clients know services only through their transferred SIDs (§3.1),
// parameters and results cannot be compiled-in C++ structs; they are Values
// interpreted against TypeDescs.  ServiceRef and Sid are first-class value
// kinds — the property that makes browser registration (a call carrying a
// SID) and the Fig. 4 binding cascade (results carrying references) plain
// RPC traffic.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sidl/service_ref.h"
#include "sidl/sid.h"

namespace cosm::wire {

class Value;

enum class ValueKind {
  Null,  // void results / absent optionals
  Bool,
  Int,
  Float,
  String,
  Enum,
  Struct,
  Sequence,
  Optional,
  ServiceRef,
  Sid,
};

std::string to_string(ValueKind kind);

class Value {
 public:
  /// Default-constructed value is Null.
  Value() = default;

  // --- factories ---
  static Value null() { return Value(); }
  static Value boolean(bool b);
  static Value integer(std::int64_t i);
  static Value real(double d);
  static Value string(std::string s);
  static Value enumerated(std::string type_name, std::string label);
  static Value structure(std::string type_name,
                         std::vector<std::pair<std::string, Value>> fields);
  static Value sequence(std::vector<Value> elements);
  static Value optional_absent();
  static Value optional_of(Value payload);
  static Value service_ref(sidl::ServiceRef ref);
  static Value sid(sidl::SidPtr sid);

  // --- inspection ---
  ValueKind kind() const noexcept { return kind_; }
  bool is(ValueKind k) const noexcept { return kind_ == k; }
  bool is_null() const noexcept { return kind_ == ValueKind::Null; }

  /// Accessors throw cosm::TypeError when the kind does not match.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_real() const;
  const std::string& as_string() const;

  /// Enum/Struct type name (may be empty for anonymous types).
  const std::string& type_name() const;
  /// Enum label.
  const std::string& enum_label() const;

  /// Struct fields.
  std::size_t field_count() const;
  const std::string& field_name(std::size_t i) const;
  const Value& field(std::size_t i) const;
  /// Field lookup by name; nullptr if absent.
  const Value* find_field(const std::string& name) const;
  /// Field lookup that throws cosm::TypeError when absent.
  const Value& at(const std::string& name) const;

  /// Sequence elements.
  const std::vector<Value>& elements() const;

  /// Optional payload.
  bool has_payload() const;
  const Value& payload() const;

  const sidl::ServiceRef& as_ref() const;
  const sidl::SidPtr& as_sid() const;

  bool operator==(const Value& o) const;

  /// Debug rendering, e.g. `SelectCar_t{ model: CarModel_t.VW_Golf, days: 3 }`.
  std::string to_debug_string() const;

 private:
  void require(ValueKind k, const char* what) const;

  ValueKind kind_ = ValueKind::Null;
  bool b_ = false;
  std::int64_t i_ = 0;
  double f_ = 0.0;
  std::string s_;                         // String payload / Enum label
  std::string name_;                      // Enum/Struct type name
  std::vector<std::string> field_names_;  // Struct only, parallel to elems_
  std::vector<Value> elems_;              // Struct fields / Sequence / Optional payload
  sidl::ServiceRef ref_;
  sidl::SidPtr sid_;
};

/// Convert a SIDL literal (e.g. a trader-export attribute) into a Value.
Value from_literal(const sidl::Literal& lit, const std::string& enum_type_name = "");

}  // namespace cosm::wire
