#include "rpc/inproc.h"

#include <thread>

#include "common/error.h"
#include "common/id.h"

namespace cosm::rpc {

std::string InProcNetwork::listen(const std::string& hint, FrameHandler handler) {
  if (!handler) throw ContractError("listen: handler must be callable");
  std::lock_guard lock(mutex_);
  std::string endpoint = "inproc://" + (hint.empty() ? "ep" : hint);
  if (endpoints_.count(endpoint)) {
    endpoint = "inproc://" + (hint.empty() ? "ep" : hint) + "-" +
               std::to_string(next_id());
  }
  endpoints_.emplace(endpoint, std::move(handler));
  return endpoint;
}

void InProcNetwork::unlisten(const std::string& endpoint) {
  std::lock_guard lock(mutex_);
  endpoints_.erase(endpoint);
}

Bytes InProcNetwork::call(const std::string& endpoint, const Bytes& request,
                          std::chrono::milliseconds timeout) {
  (void)timeout;  // in-proc handlers are synchronous; they cannot hang
  FrameHandler handler;
  {
    std::lock_guard lock(mutex_);
    auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end()) {
      throw RpcError("no endpoint bound at '" + endpoint + "'");
    }
    // Copy the handler so the registry lock is not held during the call
    // (handlers may themselves issue calls — browsers call traders, etc.).
    handler = it->second;
  }
  if (options_.latency.count() > 0) {
    std::this_thread::sleep_for(options_.latency);
  }
  frames_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(request.size(), std::memory_order_relaxed);
  return handler(request);
}

}  // namespace cosm::rpc
