// Activity manager (the "Activity Manager" box of Fig. 6's Controlling
// Level — declared outside the authors' prototype scope; implemented here
// as the future-work extension).
//
// An *activity* is a unit of distributed work spanning several services: a
// client begins an activity, enlists every participant it touches, performs
// its calls, and then completes (atomic via two-phase commit over the
// enlisted participants) or aborts.  Participants reuse the TxnHooks
// machinery from txn.h.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "rpc/network.h"
#include "rpc/txn.h"
#include "sidl/service_ref.h"

namespace cosm::rpc {

enum class ActivityState { Active, Committed, Aborted };

std::string to_string(ActivityState state);

class ActivityManager {
 public:
  explicit ActivityManager(Network& network)
      : network_(network), coordinator_(network) {}

  /// Start a new activity; returns its id.
  std::string begin(const std::string& label = "");

  /// Add a participant (idempotent).  Throws cosm::NotFound for unknown
  /// activities, cosm::ContractError when the activity already finished.
  void enlist(const std::string& activity_id, const sidl::ServiceRef& participant);

  /// Drive 2PC over the enlisted participants; the activity ends Committed
  /// or Aborted.  An activity with no participants commits trivially.
  TxnOutcome complete(const std::string& activity_id);

  /// Abort: every enlisted participant receives the abort decision.
  void abort(const std::string& activity_id);

  ActivityState state(const std::string& activity_id) const;
  std::vector<sidl::ServiceRef> participants(const std::string& activity_id) const;
  std::string label(const std::string& activity_id) const;

  /// Ids of activities still Active (for shutdown sweeps).
  std::vector<std::string> active() const;

  std::uint64_t committed_total() const noexcept { return committed_; }
  std::uint64_t aborted_total() const noexcept { return aborted_; }

 private:
  struct Activity {
    std::string label;
    ActivityState state = ActivityState::Active;
    std::vector<sidl::ServiceRef> participants;
  };

  Activity& find(const std::string& activity_id);
  const Activity& find(const std::string& activity_id) const;

  Network& network_;
  TxnCoordinator coordinator_;
  mutable std::mutex mutex_;
  std::map<std::string, Activity> activities_;
  std::uint64_t committed_ = 0;
  std::uint64_t aborted_ = 0;
};

}  // namespace cosm::rpc
