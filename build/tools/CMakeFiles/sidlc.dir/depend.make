# Empty dependencies file for sidlc.
# This may be replaced when dependencies are built.
