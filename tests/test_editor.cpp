#include "uims/editor.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "sidl/parser.h"
#include "wire/marshal.h"

namespace cosm::uims {
namespace {

using wire::Value;

sidl::SidPtr car_sid() {
  return std::make_shared<sidl::Sid>(sidl::parse_sid(R"(
    module CarRentalService {
      typedef enum { AUDI, FIAT_Uno, VW_Golf } CarModel_t;
      typedef struct {
        CarModel_t model;
        string booking_date;
        long days;
        sequence<string> extras;
        optional<double> discount;
      } SelectCar_t;
      typedef struct { boolean ok; } Return_t;
      interface COSM_Operations {
        Return_t SelectCar([in] SelectCar_t selection, [in] boolean express);
      };
    };
  )"));
}

class EditorTest : public ::testing::Test {
 protected:
  EditorTest() : editor(car_sid(), "SelectCar") {}
  FormEditor editor;
};

TEST_F(EditorTest, StartsAtDefaults) {
  auto args = editor.arguments();
  ASSERT_EQ(args.size(), 2u);
  EXPECT_EQ(args[0].at("model").enum_label(), "AUDI");  // first label
  EXPECT_EQ(args[0].at("days").as_int(), 0);
  EXPECT_FALSE(args[1].as_bool());
}

TEST_F(EditorTest, SetNestedScalars) {
  editor.set("selection.model", "VW_Golf");
  editor.set("selection.booking_date", "1994-06-21");
  editor.set("selection.days", "3");
  editor.set("express", "true");
  auto args = editor.arguments();
  EXPECT_EQ(args[0].at("model").enum_label(), "VW_Golf");
  EXPECT_EQ(args[0].at("booking_date").as_string(), "1994-06-21");
  EXPECT_EQ(args[0].at("days").as_int(), 3);
  EXPECT_TRUE(args[1].as_bool());
}

TEST_F(EditorTest, InvalidEnumLabelRejected) {
  EXPECT_THROW(editor.set("selection.model", "TRABANT"), TypeError);
}

TEST_F(EditorTest, MalformedNumbersRejected) {
  EXPECT_THROW(editor.set("selection.days", "three"), TypeError);
  EXPECT_THROW(editor.set("selection.days", "3x"), TypeError);
  EXPECT_THROW(editor.set("selection.days", ""), TypeError);
}

TEST_F(EditorTest, SequenceAddSetRemove) {
  EXPECT_EQ(editor.add_element("selection.extras"), 0u);
  EXPECT_EQ(editor.add_element("selection.extras"), 1u);
  editor.set("selection.extras[0]", "gps");
  editor.set("selection.extras[1]", "child-seat");
  auto args = editor.arguments();
  ASSERT_EQ(args[0].at("extras").elements().size(), 2u);
  EXPECT_EQ(args[0].at("extras").elements()[0].as_string(), "gps");

  editor.remove_element("selection.extras", 0);
  args = editor.arguments();
  ASSERT_EQ(args[0].at("extras").elements().size(), 1u);
  EXPECT_EQ(args[0].at("extras").elements()[0].as_string(), "child-seat");
}

TEST_F(EditorTest, SequenceIndexOutOfRange) {
  EXPECT_THROW(editor.set("selection.extras[0]", "x"), NotFound);
  editor.add_element("selection.extras");
  EXPECT_THROW(editor.set("selection.extras[5]", "x"), NotFound);
  EXPECT_THROW(editor.remove_element("selection.extras", 5), NotFound);
}

TEST_F(EditorTest, OptionalToggleAndEdit) {
  // Editing an absent optional fails with guidance.
  EXPECT_THROW(editor.set("selection.discount", "5"), NotFound);
  editor.set_present("selection.discount", true);
  editor.set("selection.discount", "7.5");
  auto args = editor.arguments();
  EXPECT_DOUBLE_EQ(args[0].at("discount").payload().as_real(), 7.5);
  // Toggling on again keeps the edit.
  editor.set_present("selection.discount", true);
  EXPECT_DOUBLE_EQ(editor.arguments()[0].at("discount").payload().as_real(), 7.5);
  editor.set_present("selection.discount", false);
  EXPECT_FALSE(editor.arguments()[0].at("discount").has_payload());
}

TEST_F(EditorTest, BadPathsReported) {
  EXPECT_THROW(editor.set("ghost.model", "AUDI"), NotFound);
  EXPECT_THROW(editor.set("selection.ghost", "x"), NotFound);
  EXPECT_THROW(editor.set("selection.model.too_deep", "x"), NotFound);
  EXPECT_THROW(editor.set("selection[0]", "x"), NotFound);
  EXPECT_THROW(editor.set("", "x"), NotFound);
  EXPECT_THROW(editor.set("selection.extras[x]", "v"), NotFound);
  EXPECT_THROW(editor.set("selection.extras[1", "v"), NotFound);
}

TEST_F(EditorTest, WrongWidgetOperationsRejected) {
  EXPECT_THROW(editor.add_element("selection.days"), TypeError);
  EXPECT_THROW(editor.set_present("selection.days", true), TypeError);
  EXPECT_THROW(editor.set_ref("selection.days", {"a", "b", "c"}), TypeError);
}

TEST_F(EditorTest, GetReadsCurrentValue) {
  editor.set("selection.days", "9");
  EXPECT_EQ(editor.get("selection.days").as_int(), 9);
  EXPECT_EQ(editor.get("selection").at("days").as_int(), 9);
  EXPECT_THROW(editor.get("ghost"), NotFound);
}

TEST_F(EditorTest, FormExposedAndOperationNamed) {
  EXPECT_EQ(editor.form().operation, "SelectCar");
  EXPECT_EQ(editor.operation().name, "SelectCar");
  EXPECT_EQ(editor.form().inputs.size(), 2u);
}

TEST(Editor, UnknownOperationThrows) {
  EXPECT_THROW(FormEditor(car_sid(), "Teleport"), NotFound);
  EXPECT_THROW(FormEditor(nullptr, "X"), ContractError);
}

TEST(Editor, ServiceRefWidget) {
  auto sid = std::make_shared<sidl::Sid>(sidl::parse_sid(
      "module M { interface I { void Bind([in] ServiceReference target); }; };"));
  FormEditor editor(sid, "Bind");
  sidl::ServiceRef ref{"svc-1", "inproc://x", "I"};
  editor.set_ref("target", ref);
  EXPECT_EQ(editor.arguments()[0].as_ref(), ref);
  // Text entry also works (wire form).
  editor.set("target", ref.to_string());
  EXPECT_EQ(editor.arguments()[0].as_ref(), ref);
}

TEST(ParseScalar, BooleansAcceptCommonSpellings) {
  auto t = sidl::TypeDesc::bool_();
  for (const char* yes : {"true", "1", "yes", "on"}) {
    EXPECT_TRUE(parse_scalar(yes, *t).as_bool()) << yes;
  }
  for (const char* no : {"false", "0", "no", "off"}) {
    EXPECT_FALSE(parse_scalar(no, *t).as_bool()) << no;
  }
  EXPECT_THROW(parse_scalar("maybe", *t), TypeError);
}

TEST(ParseScalar, NumbersAndStrings) {
  EXPECT_EQ(parse_scalar("-17", *sidl::TypeDesc::int_()).as_int(), -17);
  EXPECT_DOUBLE_EQ(parse_scalar("2.5", *sidl::TypeDesc::float_()).as_real(), 2.5);
  EXPECT_EQ(parse_scalar("free text", *sidl::TypeDesc::string_()).as_string(),
            "free text");
  EXPECT_THROW(parse_scalar("1e999", *sidl::TypeDesc::float_()), TypeError);
}

TEST(ParseScalar, NonScalarTypesRejected) {
  EXPECT_THROW(parse_scalar("x", *sidl::parse_type("sequence<long>")), TypeError);
  EXPECT_THROW(parse_scalar("x", *sidl::parse_type("struct { long a; }")),
               TypeError);
}

}  // namespace
}  // namespace cosm::uims
