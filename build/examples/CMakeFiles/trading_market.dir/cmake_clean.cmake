file(REMOVE_RECURSE
  "CMakeFiles/trading_market.dir/trading_market.cpp.o"
  "CMakeFiles/trading_market.dir/trading_market.cpp.o.d"
  "trading_market"
  "trading_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trading_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
