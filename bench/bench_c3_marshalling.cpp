// Experiment C3 (§3.1): the cost of dynamic marshalling — and how much of
// it the plan compiler recovers.
//
// Three marshalling strategies over the CarRental BookCar workload:
//   * interpreted — the tree-walking reference (ensure_conforms +
//     encode_value / decode_value + ensure_conforms): two passes per value,
//     type dispatch at every node.  This is what the generic client paid
//     before plans existed.
//   * compiled    — MarshalPlan: the TypeDesc lowered once into a flat
//     opcode program with constant byte runs (struct headers, field-name
//     prefixes, fused tags) precomputed; validation folded into the single
//     encode/decode pass.  Both reuse the same arena across calls.
//   * static stub — the pre-COSM hand-written fixed-layout codec; the floor
//     dynamic approaches are measured against (no self-describing tags at
//     all, so its frames are smaller — the price of openness is the tag
//     bytes plus whatever interpretation costs).
//
// The harness reports per-op p50/p99 for each strategy at several payload
// sizes and exits nonzero when the compiled marshal p50 at the base
// workload (extras = 0, where fixed interpretation overhead dominates) is
// not at least kMinSpeedup x faster than interpreted.
//
// Usage: bench_c3_marshalling [json-out]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sidl/parser.h"
#include "wire/codec.h"
#include "wire/marshal.h"
#include "wire/plan.h"
#include "wire/static_codec.h"

using namespace cosm;
using wire::Value;
using Clock = std::chrono::steady_clock;

namespace {

constexpr double kMinSpeedup = 2.0;
constexpr int kBatch = 64;     // ops per timing sample (amortises the clock)
constexpr int kSamples = 400;  // samples per percentile estimate
const std::vector<int> kExtras = {0, 16, 64};

sidl::TypePtr book_type() {
  return sidl::parse_type(
      "struct BookCar_t { string offer_code; string customer; "
      "sequence<string> extras; }");
}

Value book_value(int extras) {
  std::vector<Value> extra_list;
  for (int i = 0; i < extras; ++i) {
    extra_list.push_back(Value::string("extra-item-" + std::to_string(i)));
  }
  return Value::structure(
      "BookCar_t", {{"offer_code", Value::string("offer-4711")},
                    {"customer", Value::string("K. Mueller")},
                    {"extras", Value::sequence(std::move(extra_list))}});
}

wire::static_stub::BookCarRequest book_struct(int extras) {
  wire::static_stub::BookCarRequest m;
  m.offer_code = "offer-4711";
  m.customer = "K. Mueller";
  for (int i = 0; i < extras; ++i) {
    m.extras.push_back("extra-item-" + std::to_string(i));
  }
  return m;
}

struct Percentiles {
  double p50_ns = 0;
  double p99_ns = 0;
};

/// Per-op latency percentiles of `op`, sampled in batches of kBatch.
template <typename F>
Percentiles measure(F&& op) {
  // Warm-up: fault in code paths, grow arenas to steady state.
  for (int i = 0; i < kBatch * 4; ++i) op();
  std::vector<double> samples;
  samples.reserve(kSamples);
  for (int s = 0; s < kSamples; ++s) {
    auto start = Clock::now();
    for (int i = 0; i < kBatch; ++i) op();
    double ns = std::chrono::duration<double, std::nano>(Clock::now() - start)
                    .count();
    samples.push_back(ns / kBatch);
  }
  std::sort(samples.begin(), samples.end());
  Percentiles p;
  p.p50_ns = samples[samples.size() / 2];
  p.p99_ns = samples[samples.size() * 99 / 100];
  return p;
}

struct Row {
  std::string strategy;
  std::string direction;  // "marshal" / "unmarshal"
  int extras = 0;
  Percentiles lat;
  std::size_t wire_bytes = 0;
};

void print_row(const Row& r) {
  std::printf("%-12s %-10s extras=%-3d  p50 %8.0f ns   p99 %8.0f ns   %5zu B\n",
              r.strategy.c_str(), r.direction.c_str(), r.extras, r.lat.p50_ns,
              r.lat.p99_ns, r.wire_bytes);
}

}  // namespace

int main(int argc, char** argv) {
  sidl::TypePtr type = book_type();
  wire::MarshalPlan plan(type);
  std::vector<Row> rows;
  double interpreted_p50_base = 0, compiled_p50_base = 0;

  std::printf("C3: BookCar marshalling, interpreted vs compiled plan vs "
              "static stub (batch %d, %d samples)\n",
              kBatch, kSamples);
  for (int extras : kExtras) {
    Value v = book_value(extras);
    Bytes frame = plan.marshal(v);
    wire::static_stub::BookCarRequest m = book_struct(extras);
    ByteWriter static_w;
    wire::static_stub::encode(static_w, m);
    Bytes static_frame = static_w.take();

    // --- marshal -----------------------------------------------------
    {
      ByteWriter w;  // shared arena, cleared per op — both paths benefit
      Row r{"interpreted", "marshal", extras,
            measure([&] {
              w.clear();
              wire::ensure_conforms(v, *type);
              wire::encode_value(w, v);
            }),
            frame.size()};
      rows.push_back(r);
      print_row(r);
      if (extras == kExtras.front()) interpreted_p50_base = r.lat.p50_ns;
    }
    {
      ByteWriter w;
      Row r{"compiled", "marshal", extras,
            measure([&] {
              w.clear();
              plan.marshal_into(w, v);
            }),
            frame.size()};
      rows.push_back(r);
      print_row(r);
      if (extras == kExtras.front()) compiled_p50_base = r.lat.p50_ns;
    }
    {
      ByteWriter w;
      Row r{"static-stub", "marshal", extras,
            measure([&] {
              w.clear();
              wire::static_stub::encode(w, m);
            }),
            static_frame.size()};
      rows.push_back(r);
      print_row(r);
    }

    // --- unmarshal ---------------------------------------------------
    {
      Row r{"interpreted", "unmarshal", extras, measure([&] {
              ByteReader rd(frame);
              Value out = wire::decode_value(rd);
              wire::ensure_conforms(out, *type);
            }),
            frame.size()};
      rows.push_back(r);
      print_row(r);
    }
    {
      Row r{"compiled", "unmarshal", extras,
            measure([&] { Value out = plan.unmarshal(frame); }),
            frame.size()};
      rows.push_back(r);
      print_row(r);
    }
    {
      Row r{"static-stub", "unmarshal", extras, measure([&] {
              ByteReader rd(static_frame);
              auto out = wire::static_stub::decode_book_car_request(rd);
            }),
            static_frame.size()};
      rows.push_back(r);
      print_row(r);
    }
  }

  double speedup = interpreted_p50_base / compiled_p50_base;
  std::printf("compiled marshal speedup at extras=%d: %.2fx (gate %.1fx)\n",
              kExtras.front(), speedup, kMinSpeedup);

  std::ostringstream json;
  json << "{\"workload\":\"BookCar_t\",\"batch\":" << kBatch
       << ",\"samples\":" << kSamples << ",\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    if (i) json << ",";
    json << "{\"strategy\":\"" << r.strategy << "\",\"direction\":\""
         << r.direction << "\",\"extras\":" << r.extras
         << ",\"p50_ns\":" << static_cast<long>(r.lat.p50_ns)
         << ",\"p99_ns\":" << static_cast<long>(r.lat.p99_ns)
         << ",\"wire_bytes\":" << r.wire_bytes << "}";
  }
  json << "],\"marshal_p50_speedup_compiled_vs_interpreted\":" << speedup
       << ",\"min_speedup_gate\":" << kMinSpeedup << "}";
  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << json.str() << "\n";
    std::printf("results written to %s\n", argv[1]);
  } else {
    std::printf("%s\n", json.str().c_str());
  }

  if (speedup < kMinSpeedup) {
    std::fprintf(stderr,
                 "FAIL: compiled marshal p50 speedup %.2fx below the %.1fx "
                 "gate\n",
                 speedup, kMinSpeedup);
    return 1;
  }
  std::printf("OK: compiled plan %.2fx faster than interpreted at p50\n",
              speedup);
  return 0;
}
