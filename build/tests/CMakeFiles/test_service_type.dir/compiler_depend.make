# Empty compiler generated dependencies file for test_service_type.
# This may be replaced when dependencies are built.
