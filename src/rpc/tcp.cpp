#include "rpc/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "common/error.h"
#include "common/id.h"
#include "obs/metrics.h"

namespace cosm::rpc {

namespace {

/// Parse the port digits of an endpoint; throws RpcError (never std::stoi's
/// std::invalid_argument / std::out_of_range) on anything but 1..65535.
int parse_port(const std::string& digits, const std::string& endpoint) {
  if (digits.empty() || digits.size() > 5) {
    throw RpcError("tcp: bad port in endpoint '" + endpoint + "'");
  }
  int port = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      throw RpcError("tcp: bad port in endpoint '" + endpoint + "'");
    }
    port = port * 10 + (c - '0');
  }
  if (port < 1 || port > 65535) {
    throw RpcError("tcp: port out of range in endpoint '" + endpoint + "'");
  }
  return port;
}

/// Dial an endpoint; returns a connected *non-blocking* socket (the reactor
/// owns it from here on).
int connect_loopback(const std::string& endpoint) {
  constexpr const char* kPrefix = "tcp://";
  if (endpoint.rfind(kPrefix, 0) != 0) {
    throw RpcError("tcp: bad endpoint '" + endpoint + "'");
  }
  std::string hostport = endpoint.substr(std::strlen(kPrefix));
  auto colon = hostport.rfind(':');
  if (colon == std::string::npos) {
    throw RpcError("tcp: endpoint missing port: '" + endpoint + "'");
  }
  std::string host = hostport.substr(0, colon);
  // Parse before any fd exists so a malformed port cannot leak a socket.
  int port = parse_port(hostport.substr(colon + 1), endpoint);

  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw RpcError(std::string("tcp: socket failed: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw RpcError("tcp: bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int err = errno;
    ::close(fd);
    throw RpcError("tcp: connect to " + endpoint + " failed: " + std::strerror(err));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    int err = errno;
    ::close(fd);
    throw RpcError(std::string("tcp: fcntl failed: ") + std::strerror(err));
  }
  return fd;
}

}  // namespace

// ---------------------------------------------------------------------------
// Listener state: shared by the accept socket and every accepted connection.

struct TcpNetwork::ListenerState {
  std::string endpoint;
  FrameHandler handler;
  /// Set at the start of unlisten: frames decoded from here on are dropped
  /// instead of dispatched, so once the gate drains the handler can never
  /// run again (the caller may destroy its captures the moment unlisten
  /// returns).
  std::atomic<bool> stopping{false};
  std::shared_ptr<AcceptSocket> acceptor;

  // Gate counting in-flight dispatches (decoded frame -> response queued).
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  std::size_t gate_count = 0;

  /// Enter the gate unless the listener is draining.  The stopping check
  /// and the increment share the gate mutex with begin_drain() /
  /// gate_wait_idle(), so a frame decoded concurrently with unlisten either
  /// is counted before the drain waits or is dropped — it can never slip
  /// through after the wait saw zero.
  bool try_enter_gate() {
    std::lock_guard lock(gate_mutex);
    if (stopping.load(std::memory_order_relaxed)) return false;
    ++gate_count;
    return true;
  }
  void begin_drain() {
    std::lock_guard lock(gate_mutex);
    stopping.store(true, std::memory_order_release);
  }
  void gate_leave() {
    {
      std::lock_guard lock(gate_mutex);
      --gate_count;
    }
    gate_cv.notify_all();
  }
  void gate_wait_idle() {
    std::unique_lock lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_count == 0; });
  }

  // Live accepted connections (the unlisten drain closes them).
  std::mutex conns_mutex;
  std::condition_variable conns_cv;
  std::vector<std::shared_ptr<ServerConn>> conns;

  void register_conn(std::shared_ptr<ServerConn> conn) {
    std::lock_guard lock(conns_mutex);
    conns.push_back(std::move(conn));
  }
  void unregister_conn(const void* conn) {
    {
      std::lock_guard lock(conns_mutex);
      std::erase_if(conns, [conn](const std::shared_ptr<ServerConn>& c) {
        return static_cast<const void*>(c.get()) == conn;
      });
    }
    conns_cv.notify_all();
  }
  std::vector<std::shared_ptr<ServerConn>> snapshot_conns() {
    std::lock_guard lock(conns_mutex);
    return conns;
  }
  bool wait_conns_closed_for(std::chrono::milliseconds timeout) {
    std::unique_lock lock(conns_mutex);
    return conns_cv.wait_for(lock, timeout, [&] { return conns.empty(); });
  }
};

// ---------------------------------------------------------------------------
// Server connection: reassembled frames fan out to the dispatch executor;
// responses come back by correlation id from whichever worker finishes
// first.

class TcpNetwork::ServerConn final : public Reactor::Connection {
 public:
  ServerConn(int fd, TcpNetwork* net, std::shared_ptr<ListenerState> listener)
      : Connection(fd, &net->counters_),
        net_(net),
        listener_(std::move(listener)) {}

  std::size_t dispatching() const noexcept {
    return dispatching_.load(std::memory_order_relaxed);
  }

 private:
  void on_frame(std::uint64_t corr, Bytes payload) override {
    if (!listener_->try_enter_gate()) return;  // draining: drop the frame
    net_->in_flight_.fetch_add(1, std::memory_order_relaxed);
    net_->frames_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t cap = net_->options_.max_in_flight_per_connection;
    const std::size_t now = dispatching_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (now >= cap) pause_reads();
    auto self = std::static_pointer_cast<ServerConn>(shared_from_this());
    net_->dispatcher_->submit(
        [self, corr, request = std::move(payload)] { self->dispatch(corr, request); });
    // A completion may have raced the pause; if the count already dropped
    // back under the cap, reopen reads ourselves (resume is idempotent).
    if (now >= cap && dispatching_.load(std::memory_order_acquire) < cap) {
      resume_reads();
    }
  }

  void dispatch(std::uint64_t corr, const Bytes& request) {
    Bytes response;
    bool ok = true;
    try {
      response = listener_->handler(request);
    } catch (...) {
      // A handler leaked an exception (they must not throw; RPC faults are
      // encoded into the response frame).  The connection is forfeit, the
      // server is not.
      ok = false;
    }
    if (ok) {
      // Move: a response parked behind a slow peer is adopted by the write
      // queue, never copied.
      queue_write_frame(corr, std::move(response));
    } else if (reactor()) {
      reactor()->request_close(shared_from_this());
    }
    const std::size_t cap = net_->options_.max_in_flight_per_connection;
    const std::size_t prev = dispatching_.fetch_sub(1, std::memory_order_acq_rel);
    if (prev >= cap) resume_reads();  // dropped below the cap
    net_->in_flight_.fetch_sub(1, std::memory_order_relaxed);
    listener_->gate_leave();
  }

  void on_closed() override {
    net_->connections_.fetch_sub(1, std::memory_order_relaxed);
    auto& reg = obs::metrics();
    if (reg.enabled()) {
      static obs::Counter& closed = reg.counter("tcp.conns_closed");
      closed.add();
    }
    listener_->unregister_conn(this);
  }

  TcpNetwork* net_;
  std::shared_ptr<ListenerState> listener_;
  /// Frames dispatched but not yet answered (backpressure gauge).
  std::atomic<std::size_t> dispatching_{0};
};

// ---------------------------------------------------------------------------
// Accept socket: a reactor-registered listen fd.

class TcpNetwork::AcceptSocket final : public Reactor::Connection {
 public:
  AcceptSocket(int fd, TcpNetwork* net, std::shared_ptr<ListenerState> listener)
      : Connection(fd), net_(net), listener_(std::move(listener)) {}

 private:
  bool handle_readable() override {
    for (;;) {
      int cfd = ::accept4(fd(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (cfd < 0) {
        if (errno == EINTR) continue;
        // EAGAIN: backlog drained.  Anything else (EMFILE, ECONNABORTED,
        // ...) is per-connection trouble; keep the listener alive and let
        // level-triggered epoll re-report.
        return true;
      }
      int one = 1;
      ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      {
        auto& reg = obs::metrics();
        if (reg.enabled()) {
          static obs::Counter& accepts = reg.counter("tcp.accepts");
          accepts.add();
        }
      }
      if (listener_->stopping.load(std::memory_order_acquire)) {
        ::close(cfd);
        continue;
      }
      auto conn = std::make_shared<ServerConn>(cfd, net_, listener_);
      listener_->register_conn(conn);
      net_->connections_.fetch_add(1, std::memory_order_relaxed);
      net_->reactor_->add(conn);
    }
  }

  void on_frame(std::uint64_t, Bytes) override {}  // never reached
  void on_closed() override {}

  TcpNetwork* net_;
  std::shared_ptr<ListenerState> listener_;
};

// ---------------------------------------------------------------------------
// Client connection: persistent socket + pending map, reader-threadless —
// responses are settled by the reactor loop that owns the socket.

class TcpNetwork::ClientConn final : public Reactor::Connection {
 public:
  ClientConn(int fd, TcpNetwork* net)
      : Connection(fd, &net->counters_), net_(net) {}

  void register_pending(std::uint64_t corr, const PendingCallPtr& call) {
    std::lock_guard lock(pending_mutex_);
    pending_.emplace(corr, call);
    net_->in_flight_.fetch_add(1, std::memory_order_relaxed);
  }

  PendingCallPtr take_pending(std::uint64_t corr) {
    std::lock_guard lock(pending_mutex_);
    auto it = pending_.find(corr);
    if (it == pending_.end()) return nullptr;
    PendingCallPtr call = std::move(it->second);
    pending_.erase(it);
    net_->in_flight_.fetch_sub(1, std::memory_order_relaxed);
    return call;
  }

  std::size_t load() const {
    std::lock_guard lock(pending_mutex_);
    return pending_.size();
  }

 private:
  /// Responses for abandoned (timed-out) calls are settled too — their
  /// waiters are gone, so the result is simply dropped.
  void on_frame(std::uint64_t corr, Bytes payload) override {
    if (PendingCallPtr call = take_pending(corr)) {
      call->complete(std::move(payload));
    }
  }

  void on_closed() override {
    net_->connections_.fetch_sub(1, std::memory_order_relaxed);
    std::map<std::uint64_t, PendingCallPtr> orphans;
    {
      std::lock_guard lock(pending_mutex_);
      orphans.swap(pending_);
      net_->in_flight_.fetch_sub(orphans.size(), std::memory_order_relaxed);
    }
    if (orphans.empty()) return;
    auto error =
        std::make_exception_ptr(RpcError("tcp: server closed connection"));
    for (auto& [corr, call] : orphans) call->fail(error);
  }

  TcpNetwork* net_;
  mutable std::mutex pending_mutex_;
  std::map<std::uint64_t, PendingCallPtr> pending_;
};

// ---------------------------------------------------------------------------

namespace {
/// Clamp degenerate knobs up front; options_ is const thereafter.
TransportOptions normalized(TransportOptions options) {
  if (options.event_loop_threads == 0) options.event_loop_threads = 1;
  if (options.client_pool_cap == 0) options.client_pool_cap = 1;
  if (options.max_in_flight_per_connection == 0) {
    options.max_in_flight_per_connection = 1;
  }
  if (options.send_retry.max_attempts < 1) options.send_retry.max_attempts = 1;
  return options;
}
}  // namespace

TcpNetwork::TcpNetwork(TransportOptions options)
    : options_(normalized(options)) {
  dispatcher_ = std::make_unique<Executor>(options_.dispatch_workers);
  reactor_ = std::make_unique<Reactor>(options_.event_loop_threads);
}

TcpNetwork::~TcpNetwork() { close_all(); }

void TcpNetwork::close_all() {
  std::map<std::string, std::shared_ptr<ListenerState>> listeners;
  {
    std::lock_guard lock(mutex_);
    listeners.swap(listeners_);
    // Drop pool references; ~Reactor closes the sockets and fails any
    // still-pending calls.
    pools_.clear();
  }
  for (auto& [ep, listener] : listeners) shutdown_listener(listener);
}

std::string TcpNetwork::listen(const std::string& hint, FrameHandler handler) {
  (void)hint;  // TCP endpoints are named by their port
  if (!handler) throw ContractError("listen: handler must be callable");

  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw RpcError(std::string("tcp: socket failed: ") + std::strerror(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int err = errno;
    ::close(fd);
    throw RpcError(std::string("tcp: bind failed: ") + std::strerror(err));
  }
  if (::listen(fd, 1024) < 0) {
    int err = errno;
    ::close(fd);
    throw RpcError(std::string("tcp: listen failed: ") + std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    int err = errno;
    ::close(fd);
    throw RpcError(std::string("tcp: getsockname failed: ") + std::strerror(err));
  }

  auto state = std::make_shared<ListenerState>();
  state->endpoint = "tcp://127.0.0.1:" + std::to_string(ntohs(addr.sin_port));
  state->handler = std::move(handler);
  state->acceptor = std::make_shared<AcceptSocket>(fd, this, state);

  {
    std::lock_guard lock(mutex_);
    listeners_[state->endpoint] = state;
  }
  reactor_->add(state->acceptor);
  return state->endpoint;
}

/// Drain: stop accepting, let in-flight dispatches finish, flush their
/// responses, then close the connections.  After this returns the handler
/// is guaranteed to never run again.
void TcpNetwork::shutdown_listener(
    const std::shared_ptr<ListenerState>& listener) {
  using namespace std::chrono_literals;
  listener->begin_drain();
  reactor_->request_close(listener->acceptor);
  listener->acceptor->wait_closed();  // no further connections can register
  // Drop our half of the ListenerState <-> AcceptSocket reference cycle;
  // the closed acceptor (and the listening fd it owns) is freed here.
  listener->acceptor.reset();
  listener->gate_wait_idle();         // in-flight dispatches have finished
  // Graceful close: responses queued by the drained dispatches flush
  // first.  Re-snapshot in a loop — a connection accepted just before the
  // acceptor closed may have registered late — and fall back to a hard
  // close for peers that refuse to drain.
  const auto hard_deadline = std::chrono::steady_clock::now() + 2s;
  for (;;) {
    auto conns = listener->snapshot_conns();
    if (conns.empty()) break;
    const bool patient = std::chrono::steady_clock::now() < hard_deadline;
    for (auto& conn : conns) {
      if (patient) {
        reactor_->request_close_after_flush(conn);
      } else {
        reactor_->request_close(conn);
      }
    }
    if (listener->wait_conns_closed_for(patient ? 50ms : 250ms)) break;
  }
}

void TcpNetwork::unlisten(const std::string& endpoint) {
  std::shared_ptr<ListenerState> listener;
  {
    std::lock_guard lock(mutex_);
    auto it = listeners_.find(endpoint);
    if (it == listeners_.end()) return;
    listener = it->second;
    listeners_.erase(it);
  }
  shutdown_listener(listener);
}

NetworkStats TcpNetwork::stats() const {
  NetworkStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.event_loop_threads = reactor_->thread_count();
  s.in_flight_frames = in_flight_.load(std::memory_order_relaxed);
  s.frames = frames_.load(std::memory_order_relaxed);
  s.send_retries = send_retries_.load(std::memory_order_relaxed);
  s.bytes_in = counters_.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = counters_.bytes_out.load(std::memory_order_relaxed);
  return s;
}

/// Pick an idle pooled connection, reaping closed ones; dial a fresh one
/// while the pool — dials in progress included, so racing callers cannot
/// overshoot the cap — has room; otherwise multiplex over the least-loaded
/// survivor (the reactor server completes out of order, so sharing a socket
/// no longer serialises callers).
std::shared_ptr<TcpNetwork::ClientConn> TcpNetwork::checkout_conn(
    const std::string& endpoint) {
  const std::size_t cap = options_.client_pool_cap;
  std::shared_ptr<ClientConn> chosen;
  std::vector<std::shared_ptr<ClientConn>> reaped;
  bool dial = false;
  {
    std::unique_lock lock(mutex_);
    for (;;) {
      Pool& pool = pools_[endpoint];
      for (auto it = pool.conns.begin(); it != pool.conns.end();) {
        if ((*it)->closed()) {
          reaped.push_back(std::move(*it));
          it = pool.conns.erase(it);
        } else {
          ++it;
        }
      }
      std::shared_ptr<ClientConn> least_loaded;
      std::size_t least_load = 0;
      for (const auto& conn : pool.conns) {
        std::size_t load = conn->load();
        if (load == 0) {
          chosen = conn;  // idle: reuse immediately
          break;
        }
        if (!least_loaded || load < least_load) {
          least_loaded = conn;
          least_load = load;
        }
      }
      if (chosen) break;
      if (pool.conns.size() + pool.dialing < cap) {
        ++pool.dialing;  // reserve the slot before releasing the lock
        dial = true;
        break;
      }
      if (least_loaded) {
        chosen = least_loaded;
        break;
      }
      // The cap is consumed entirely by dials in progress: wait for one to
      // land instead of overshooting (the seed raced ahead here and opened
      // up to one connection per caller).
      dial_cv_.wait(lock);
    }
  }
  reaped.clear();  // drop refs; the reactor already closed these sockets
  if (!dial) return chosen;

  // Dial outside the lock (connect can block); the reserved `dialing` slot
  // keeps the cap honest meanwhile.
  std::shared_ptr<ClientConn> conn;
  try {
    int fd = connect_loopback(endpoint);
    conn = std::make_shared<ClientConn>(fd, this);
  } catch (...) {
    {
      std::lock_guard lock(mutex_);
      --pools_[endpoint].dialing;
    }
    dial_cv_.notify_all();
    throw;
  }
  {
    auto& reg = obs::metrics();
    if (reg.enabled()) {
      static obs::Counter& dials = reg.counter("tcp.dials");
      dials.add();
    }
  }
  connections_.fetch_add(1, std::memory_order_relaxed);
  reactor_->add(conn);
  {
    std::lock_guard lock(mutex_);
    Pool& pool = pools_[endpoint];
    --pool.dialing;
    pool.conns.push_back(conn);
  }
  dial_cv_.notify_all();
  return conn;
}

PendingCallPtr TcpNetwork::call_async(const std::string& endpoint,
                                      const Bytes& request,
                                      const CallContext& ctx) {
  auto pending = std::make_shared<PendingCall>();
  if (ctx.expired()) {
    pending->fail(std::make_exception_ptr(
        RpcError("call timed out (deadline exceeded before send)")));
    return pending;
  }

  // Send retries: a pooled connection may have died since checkout (server
  // restarted, idle reset) and a dial can hit a transient refusal.  Every
  // failure handled here happened before the request reached the wire
  // intact, so reissuing is always safe; a call whose frame was fully
  // queued is never reissued (at-most-once stays with the replay cache).
  // Backoff between attempts is jittered and never sleeps past the
  // caller's deadline.
  const RetryPolicy& policy = options_.send_retry;
  for (int attempt = 1;; ++attempt) {
    std::exception_ptr failure;
    std::shared_ptr<ClientConn> conn;
    try {
      conn = checkout_conn(endpoint);
    } catch (const Error&) {
      failure = std::current_exception();
    }
    if (conn) {
      std::uint64_t corr = next_id();
      conn->register_pending(corr, pending);
      if (conn->queue_write_frame(corr, request)) return pending;
      // The connection closed under us before the frame reached the wire
      // intact; retract the pending and retry on a fresh connection.
      conn->take_pending(corr);
      failure = std::make_exception_ptr(
          RpcError("tcp: connection to " + endpoint + " closed before send"));
    }
    if (attempt >= policy.max_attempts || ctx.expired()) {
      pending->fail(failure);
      return pending;
    }
    std::chrono::milliseconds backoff;
    {
      std::lock_guard lock(rng_mutex_);
      backoff = policy.backoff_for(attempt, rng_);
    }
    if (ctx.has_deadline() && backoff >= ctx.remaining()) {
      pending->fail(failure);
      return pending;
    }
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    send_retries_.fetch_add(1, std::memory_order_relaxed);
    {
      auto& reg = obs::metrics();
      if (reg.enabled()) {
        static obs::Counter& retries = reg.counter("tcp.send_retries");
        retries.add();
      }
    }
  }
}

}  // namespace cosm::rpc
