// Byte-buffer primitives shared by the wire and RPC layers.
//
// ByteWriter is a growable arena: it appends primitive values in a fixed
// little-endian layout into one contiguous buffer, supports reserve-and-patch
// length slots (a frame header and its body can be written into the same
// buffer in one pass, with lengths patched once known), and can be cleared
// without releasing capacity so hot paths reuse the allocation.  ByteReader
// consumes the same layout with bounds checking, and can hand out non-owning
// views (str_view / view) so decoders avoid copying payload bytes out of a
// frame buffer that outlives them.  Variable-length integers use
// LEB128-style base-128 encoding, which keeps small lengths (the common case
// for SIDL-described values) to a single byte.

#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cosm {

using Bytes = std::vector<std::uint8_t>;

/// Non-owning view over encoded bytes; valid only while the underlying
/// buffer lives.
using BytesView = std::span<const std::uint8_t>;

/// Appends primitives to a growable byte arena.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(Bytes initial) : bytes_(std::move(initial)) {}

  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  /// Unsigned LEB128.
  void varint(std::uint64_t v);
  /// Zig-zag signed LEB128.
  void svarint(std::int64_t v);
  /// varint length followed by raw bytes.
  void str(std::string_view s);
  void raw(const std::uint8_t* data, std::size_t n);
  void raw(const Bytes& b) { raw(b.data(), b.size()); }
  void raw(BytesView b) { raw(b.data(), b.size()); }

  /// Reserve a fixed-width varint length slot (kVarintSlotWidth bytes of
  /// padded LEB128) and return its offset; write the surrounded payload,
  /// then patch the slot with patch_varint().  Readers decode padded
  /// varints transparently, so a patched slot is indistinguishable from a
  /// minimal one at the value level.
  std::size_t varint_slot();
  /// Patch a slot from varint_slot() with `v` (must fit kVarintSlotWidth
  /// LEB128 bytes, i.e. v < 2^35; throws cosm::ContractError otherwise).
  void patch_varint(std::size_t slot, std::uint64_t v);

  static constexpr std::size_t kVarintSlotWidth = 5;

  /// Grow the arena's capacity ahead of a burst of writes.
  void reserve(std::size_t n) { bytes_.reserve(n); }
  /// Drop all content but keep the allocation (arena reuse on hot paths).
  void clear() noexcept { bytes_.clear(); }
  /// Roll back to an earlier size (discard a partially written suffix,
  /// e.g. after a failed in-place marshal).  `n` must not exceed size().
  void truncate(std::size_t n) { bytes_.resize(n); }

  std::size_t size() const noexcept { return bytes_.size(); }
  const Bytes& bytes() const noexcept { return bytes_; }
  const std::uint8_t* data() const noexcept { return bytes_.data(); }
  Bytes take() { return std::move(bytes_); }

 private:
  Bytes bytes_;
};

/// Consumes primitives from a byte span with bounds checking; throws
/// cosm::WireError on underrun or malformed varints.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const Bytes& b) : ByteReader(b.data(), b.size()) {}
  explicit ByteReader(BytesView b) : ByteReader(b.data(), b.size()) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::uint64_t varint();
  std::int64_t svarint();
  std::string str();
  Bytes raw(std::size_t n);

  /// Non-owning variants: the returned views alias the reader's buffer and
  /// are valid only while it lives.  Decoders on hot paths use these to
  /// slice a frame without copying.
  std::string_view str_view();
  BytesView view(std::size_t n);
  /// The unread remainder as a view (does not advance).
  BytesView remaining_view() const noexcept { return {data_ + pos_, size_ - pos_}; }

  std::size_t remaining() const noexcept { return size_ - pos_; }
  bool at_end() const noexcept { return pos_ == size_; }
  std::size_t position() const noexcept { return pos_; }

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Hex dump (debugging aid for wire-level tests).
std::string to_hex(const Bytes& bytes);

}  // namespace cosm
