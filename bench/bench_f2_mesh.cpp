// Experiment F2: federation mesh with subscription-based replication
// (Federation v2, trader/replication.h) against per-query deep-search
// fan-out.
//
// N traders (default 16) form a ring-plus-chord mesh over an in-process
// RPC network with simulated LAN latency; every link is upgraded to a
// replication subscription.  After convergence the harness verifies the
// replica-resolved results are byte-identical to the deep-search baseline
// (same trader, replica routing disabled), and that one anti-entropy
// exchange repairs deliberately unflushed churn — staleness is bounded by
// one digest interval.  Then both routing modes are timed under live
// churn: a writer thread keeps mutating offers and the replication pumps
// keep pushing while queries run.
//
// Gates (exit nonzero on failure):
//   * covered queries resolve locally — zero per-query fan-out calls in
//     replica mode;
//   * replica-resolved and deep-search result sets are byte-identical
//     after convergence;
//   * query p99 in replica mode is >= --gate-min-speedup x better than
//     the deep-search baseline (0 disables).
//
// Writes BENCH_f2_mesh.json.
//
// Flags:
//   --traders=N           mesh size (default 16)
//   --offers=M            initial offers per trader (default 64)
//   --churn-rounds=R      converge/verify churn rounds (default 6)
//   --queries=Q           timed queries per mode (default 400)
//   --latency-us=L        simulated per-call network latency (default 500)
//   --out=FILE            JSON destination (default BENCH_f2_mesh.json)
//   --gate-min-speedup=F  p99 gate (default 0 = disabled)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "rpc/inproc.h"
#include "rpc/server.h"
#include "trader/facade.h"
#include "trader/trader.h"

namespace {

using namespace cosm;
using trader::AttrMap;
using wire::Value;

constexpr const char* kType = "CarRentalService";

trader::ServiceType rental_type() {
  trader::ServiceType t;
  t.name = kType;
  t.attributes = {{"ChargePerDay", sidl::TypeDesc::float_(), true}};
  return t;
}

double percentile(const std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

trader::ImportRequest mesh_query(std::size_t max_matches) {
  trader::ImportRequest r;
  r.service_type = kType;
  r.hop_limit = 1;
  r.preference = "min ChargePerDay";
  r.max_matches = max_matches;
  return r;
}

struct Mesh {
  std::size_t n;
  rpc::InProcNetwork net;
  rpc::RpcServer server;
  std::vector<std::unique_ptr<trader::Trader>> traders;
  std::vector<sidl::ServiceRef> refs;
  std::vector<std::vector<std::string>> live_ids;
  std::mt19937 rng{19940608};
  std::atomic<std::uint64_t> next_charge{1};

  Mesh(std::size_t traders_n, std::chrono::microseconds latency)
      : n(traders_n),
        net(rpc::InProcOptions{.latency = latency}),
        server(net, "mesh") {
    traders.reserve(n);
    refs.reserve(n);
    live_ids.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto t = std::make_unique<trader::Trader>("t" + std::to_string(i));
      t->types().add(rental_type());
      refs.push_back(server.add(trader::make_trader_service(*t, &net)));
      traders.push_back(std::move(t));
    }
    std::vector<std::size_t> steps{1};
    if (5 % n > 1) steps.push_back(5 % n);  // chord collapses on tiny meshes
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t step : steps) {
        const std::size_t peer = (i + step) % n;
        auto gateway = std::make_shared<trader::RemoteTraderGateway>(
            net, refs[peer]);
        gateway->set_subscriber_ref(refs[i]);
        std::string link = "to-t" + std::to_string(peer);
        traders[i]->link(link, std::move(gateway));
        traders[i]->subscribe_link(link);
      }
    }
  }

  void populate(std::size_t offers_per_trader) {
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<trader::BatchOfferSpec> specs;
      specs.reserve(offers_per_trader);
      for (std::size_t k = 0; k < offers_per_trader; ++k) {
        trader::BatchOfferSpec spec;
        spec.ref = sidl::ServiceRef{
            "svc-" + std::to_string(i) + "-" + std::to_string(k), "inproc://x",
            kType};
        spec.attributes = {{"ChargePerDay", Value::real(static_cast<double>(
                                                next_charge.fetch_add(1)))}};
        specs.push_back(std::move(spec));
      }
      auto ids = traders[i]->export_batch(kType, std::move(specs));
      live_ids[i].insert(live_ids[i].end(), ids.begin(), ids.end());
    }
  }

  /// A few random mutations on every trader (charges stay globally unique
  /// so min-ranking is a total order and both routing modes must agree on
  /// the exact result sequence).
  void churn_round() {
    for (std::size_t i = 0; i < n; ++i) {
      for (int op = 0; op < 3; ++op) {
        auto& ids = live_ids[i];
        const unsigned dice = rng() % 10;
        double c = static_cast<double>(next_charge.fetch_add(1));
        if (dice < 5 || ids.empty()) {
          ids.push_back(traders[i]->export_offer(
              kType, {"churn-" + std::to_string(next_charge.load()),
                      "inproc://x", kType},
              {{"ChargePerDay", Value::real(c)}}));
        } else if (dice < 8) {
          std::size_t victim = rng() % ids.size();
          traders[i]->withdraw(ids[victim]);
          ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(victim));
        } else {
          traders[i]->modify(ids[rng() % ids.size()],
                             {{"ChargePerDay", Value::real(c)}});
        }
      }
    }
  }

  void flush_all() {
    for (auto& t : traders) t->flush_replication();
  }
  std::size_t tick_all() {
    std::size_t repairs = 0;
    for (auto& t : traders) repairs += t->anti_entropy_tick();
    return repairs;
  }
  void set_replica_resolve(bool enabled) {
    trader::TraderTuning tuning;
    tuning.enable_replica_resolve = enabled;
    for (auto& t : traders) t->set_tuning(tuning);
  }

  /// Byte-identical differential at every trader; returns mismatch count.
  std::size_t verify_differential() {
    std::size_t mismatches = 0;
    for (auto& t : traders) {
      for (std::size_t k : {std::size_t{0}, std::size_t{10}}) {
        set_replica_resolve(true);
        auto local = t->import(mesh_query(k));
        set_replica_resolve(false);
        auto deep = t->import(mesh_query(k));
        set_replica_resolve(true);
        if (local != deep) {
          ++mismatches;
          std::fprintf(stderr,
                       "[f2-mesh] MISMATCH at %s k=%zu: replica %zu offers, "
                       "deep %zu offers\n",
                       t->name().c_str(), k, local.size(), deep.size());
        }
      }
    }
    return mismatches;
  }
};

struct TimedMode {
  std::string mode;
  std::size_t queries = 0;
  double ops_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  std::uint64_t local_resolves = 0;
  std::uint64_t fanout_resolves = 0;
};

/// Time `queries` hop-1 imports round-robin across the mesh while a churn
/// thread keeps mutating offers and the replication pumps keep pushing.
/// The churner replaces offers (export one, withdraw the one it minted
/// before last) so the live set stays the same size in both modes — the
/// comparison measures routing, not dataset growth.
TimedMode run_timed(Mesh& mesh, bool replica_mode, std::size_t queries,
                    long churn_us) {
  mesh.set_replica_resolve(replica_mode);
  for (auto& t : mesh.traders) t->reset_stats();  // local/fanout counters

  std::atomic<bool> stop{false};
  std::thread churner([&] {
    std::mt19937 rng(replica_mode ? 11 : 22);
    std::vector<std::pair<std::size_t, std::string>> minted;
    std::size_t drain = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::size_t i = rng() % mesh.n;
      minted.emplace_back(
          i, mesh.traders[i]->export_offer(
                 kType,
                 {"live-" + std::to_string(mesh.next_charge.load()),
                  "inproc://x", kType},
                 {{"ChargePerDay",
                   Value::real(static_cast<double>(
                       mesh.next_charge.fetch_add(1)))}}));
      if (minted.size() - drain > 8) {
        auto& victim = minted[drain++];
        mesh.traders[victim.first]->withdraw(victim.second);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(churn_us));
    }
    while (drain < minted.size()) {
      auto& victim = minted[drain++];
      mesh.traders[victim.first]->withdraw(victim.second);
    }
  });

  trader::ImportRequest query = mesh_query(10);
  std::vector<double> samples_us;
  samples_us.reserve(queries);
  auto sweep_start = std::chrono::steady_clock::now();
  for (std::size_t q = 0; q < queries; ++q) {
    trader::Trader& t = *mesh.traders[q % mesh.n];
    auto start = std::chrono::steady_clock::now();
    t.import(query);
    auto stop_t = std::chrono::steady_clock::now();
    samples_us.push_back(
        std::chrono::duration<double, std::micro>(stop_t - start).count());
  }
  double total_sec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - sweep_start)
                         .count();
  stop.store(true);
  churner.join();

  TimedMode result;
  result.mode = replica_mode ? "replica" : "deep_search";
  result.queries = queries;
  std::sort(samples_us.begin(), samples_us.end());
  result.ops_per_sec = static_cast<double>(queries) / total_sec;
  result.p50_us = percentile(samples_us, 0.50);
  result.p99_us = percentile(samples_us, 0.99);
  result.max_us = samples_us.back();
  for (auto& t : mesh.traders) {
    result.local_resolves += t->replica_local_resolves();
    result.fanout_resolves += t->replica_fanout_resolves();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t traders_n = 16;
  std::size_t offers = 64;
  int churn_rounds = 6;
  std::size_t queries = 400;
  long latency_us = 500;
  std::string out_path = "BENCH_f2_mesh.json";
  double gate_min_speedup = 0.0;
  long flush_ms = 20;
  long digest_ms = 1000;
  long churn_us = 1000;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--traders=", 0) == 0) {
      traders_n = std::stoull(arg.substr(10));
    } else if (arg.rfind("--offers=", 0) == 0) {
      offers = std::stoull(arg.substr(9));
    } else if (arg.rfind("--churn-rounds=", 0) == 0) {
      churn_rounds = std::stoi(arg.substr(15));
    } else if (arg.rfind("--queries=", 0) == 0) {
      queries = std::stoull(arg.substr(10));
    } else if (arg.rfind("--latency-us=", 0) == 0) {
      latency_us = std::stol(arg.substr(13));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--gate-min-speedup=", 0) == 0) {
      gate_min_speedup = std::stod(arg.substr(19));
    } else if (arg.rfind("--flush-ms=", 0) == 0) {
      flush_ms = std::stol(arg.substr(11));
    } else if (arg.rfind("--digest-ms=", 0) == 0) {
      digest_ms = std::stol(arg.substr(12));
    } else if (arg.rfind("--churn-us=", 0) == 0) {
      churn_us = std::stol(arg.substr(11));
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = std::stoi(arg.substr(7));
    } else {
      std::fprintf(stderr, "[f2-mesh] unknown flag %s\n", arg.c_str());
      return 1;
    }
  }
  if (traders_n < 2) {
    std::fprintf(stderr, "[f2-mesh] need at least 2 traders\n");
    return 1;
  }

  std::fprintf(stderr,
               "[f2-mesh] %zu traders, %zu offers each, %ldus link latency\n",
               traders_n, offers, latency_us);
  Mesh mesh(traders_n, std::chrono::microseconds(latency_us));
  mesh.populate(offers);
  mesh.flush_all();

  // Phase 1: churn + flush rounds, byte-identical differential each round.
  std::size_t mismatches = 0;
  for (int round = 0; round < churn_rounds; ++round) {
    mesh.churn_round();
    mesh.flush_all();
  }
  mismatches += mesh.verify_differential();

  // Phase 2: unflushed churn goes stale, ONE anti-entropy exchange per
  // publisher restores exact convergence (staleness <= one digest interval).
  mesh.churn_round();
  mesh.churn_round();
  std::size_t repairs = mesh.tick_all();
  std::size_t stale_mismatches = mesh.verify_differential();
  mismatches += stale_mismatches;
  std::fprintf(stderr,
               "[f2-mesh] unflushed churn: %zu digest repairs, %zu mismatches "
               "after one exchange\n",
               repairs, stale_mismatches);

  // Phase 3: timed queries under live churn with the pumps running.
  trader::ReplicationOptions pump;
  pump.flush_interval = std::chrono::milliseconds(flush_ms);
  pump.digest_interval = std::chrono::milliseconds(digest_ms);
  for (auto& t : mesh.traders) {
    t->set_replication_options(pump);
    t->start_replication_pump();
  }
  // Best of `reps` sweeps per mode (identically for both): on a loaded or
  // single-core host a p99 over one sweep measures scheduler preemption,
  // not routing — the minimum across repetitions is the stable estimate.
  auto best_of = [&](bool replica_mode) {
    TimedMode best;
    for (int r = 0; r < reps; ++r) {
      TimedMode m = run_timed(mesh, replica_mode, queries, churn_us);
      if (r == 0 || m.p99_us < best.p99_us) best = m;
    }
    return best;
  };
  TimedMode deep = best_of(/*replica_mode=*/false);
  TimedMode replica = best_of(/*replica_mode=*/true);
  for (auto& t : mesh.traders) t->stop_replication_pump();

  // Quiesce and check post-churn convergence once more.
  mesh.flush_all();
  mesh.tick_all();
  mismatches += mesh.verify_differential();

  const double speedup_p99 =
      replica.p99_us > 0.0 ? deep.p99_us / replica.p99_us : 0.0;
  std::fprintf(stderr,
               "[f2-mesh] deep:    %8.1f ops/s  p50 %8.1f us  p99 %8.1f us"
               "  max %8.1f us  (fanout calls %llu)\n",
               deep.ops_per_sec, deep.p50_us, deep.p99_us, deep.max_us,
               static_cast<unsigned long long>(deep.fanout_resolves));
  std::fprintf(stderr,
               "[f2-mesh] replica: %8.1f ops/s  p50 %8.1f us  p99 %8.1f us"
               "  max %8.1f us  (local %llu, fanout %llu)\n",
               replica.ops_per_sec, replica.p50_us, replica.p99_us,
               replica.max_us,
               static_cast<unsigned long long>(replica.local_resolves),
               static_cast<unsigned long long>(replica.fanout_resolves));
  std::fprintf(stderr, "[f2-mesh] p99 speedup %.2fx\n", speedup_p99);

  bool passed = true;
  if (mismatches != 0) {
    std::fprintf(stderr, "[f2-mesh] GATE FAILED: %zu differential mismatches\n",
                 mismatches);
    passed = false;
  }
  if (replica.fanout_resolves != 0) {
    std::fprintf(stderr,
                 "[f2-mesh] GATE FAILED: %llu fan-out calls in replica mode "
                 "(covered queries must resolve locally)\n",
                 static_cast<unsigned long long>(replica.fanout_resolves));
    passed = false;
  }
  if (gate_min_speedup > 0.0 && speedup_p99 < gate_min_speedup) {
    std::fprintf(stderr, "[f2-mesh] GATE FAILED: p99 speedup %.2fx < %.2fx\n",
                 speedup_p99, gate_min_speedup);
    passed = false;
  } else if (gate_min_speedup > 0.0) {
    std::fprintf(stderr, "[f2-mesh] gate passed: p99 speedup %.2fx >= %.2fx\n",
                 speedup_p99, gate_min_speedup);
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "[f2-mesh] cannot write %s\n", out_path.c_str());
    return 1;
  }
  auto mode_json = [](const TimedMode& m) {
    std::string s = "{ \"queries\": " + std::to_string(m.queries) +
                    ", \"ops_per_sec\": " + std::to_string(m.ops_per_sec) +
                    ", \"p50_us\": " + std::to_string(m.p50_us) +
                    ", \"p99_us\": " + std::to_string(m.p99_us) +
                    ", \"max_us\": " + std::to_string(m.max_us) +
                    ", \"local_resolves\": " + std::to_string(m.local_resolves) +
                    ", \"fanout_resolves\": " +
                    std::to_string(m.fanout_resolves) + " }";
    return s;
  };
  out << "{\n  \"experiment\": \"F2_replication_mesh\",\n"
      << "  \"traders\": " << traders_n << ",\n"
      << "  \"offers_per_trader\": " << offers << ",\n"
      << "  \"latency_us\": " << latency_us << ",\n"
      << "  \"reps_per_mode\": " << reps << ",\n"
      << "  \"selection\": \"best_p99_of_reps\",\n"
      << "  \"churn_rounds\": " << churn_rounds << ",\n"
      << "  \"digest_repairs_after_unflushed_churn\": " << repairs << ",\n"
      << "  \"differential_mismatches\": " << mismatches << ",\n"
      << "  \"deep_search\": " << mode_json(deep) << ",\n"
      << "  \"replica\": " << mode_json(replica) << ",\n"
      << "  \"p99_speedup\": " << speedup_p99 << ",\n"
      << "  \"passed\": " << (passed ? "true" : "false") << "\n}\n";
  std::fprintf(stderr, "[f2-mesh] wrote %s\n", out_path.c_str());
  return passed ? 0 : 1;
}
