# Empty compiler generated dependencies file for bench_fig3_dynamic_binding.
# This may be replaced when dependencies are built.
