
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/activity.cpp" "src/rpc/CMakeFiles/cosm_rpc.dir/activity.cpp.o" "gcc" "src/rpc/CMakeFiles/cosm_rpc.dir/activity.cpp.o.d"
  "/root/repo/src/rpc/activity_facade.cpp" "src/rpc/CMakeFiles/cosm_rpc.dir/activity_facade.cpp.o" "gcc" "src/rpc/CMakeFiles/cosm_rpc.dir/activity_facade.cpp.o.d"
  "/root/repo/src/rpc/channel.cpp" "src/rpc/CMakeFiles/cosm_rpc.dir/channel.cpp.o" "gcc" "src/rpc/CMakeFiles/cosm_rpc.dir/channel.cpp.o.d"
  "/root/repo/src/rpc/inproc.cpp" "src/rpc/CMakeFiles/cosm_rpc.dir/inproc.cpp.o" "gcc" "src/rpc/CMakeFiles/cosm_rpc.dir/inproc.cpp.o.d"
  "/root/repo/src/rpc/message.cpp" "src/rpc/CMakeFiles/cosm_rpc.dir/message.cpp.o" "gcc" "src/rpc/CMakeFiles/cosm_rpc.dir/message.cpp.o.d"
  "/root/repo/src/rpc/multicast.cpp" "src/rpc/CMakeFiles/cosm_rpc.dir/multicast.cpp.o" "gcc" "src/rpc/CMakeFiles/cosm_rpc.dir/multicast.cpp.o.d"
  "/root/repo/src/rpc/server.cpp" "src/rpc/CMakeFiles/cosm_rpc.dir/server.cpp.o" "gcc" "src/rpc/CMakeFiles/cosm_rpc.dir/server.cpp.o.d"
  "/root/repo/src/rpc/service_object.cpp" "src/rpc/CMakeFiles/cosm_rpc.dir/service_object.cpp.o" "gcc" "src/rpc/CMakeFiles/cosm_rpc.dir/service_object.cpp.o.d"
  "/root/repo/src/rpc/tcp.cpp" "src/rpc/CMakeFiles/cosm_rpc.dir/tcp.cpp.o" "gcc" "src/rpc/CMakeFiles/cosm_rpc.dir/tcp.cpp.o.d"
  "/root/repo/src/rpc/txn.cpp" "src/rpc/CMakeFiles/cosm_rpc.dir/txn.cpp.o" "gcc" "src/rpc/CMakeFiles/cosm_rpc.dir/txn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wire/CMakeFiles/cosm_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/sidl/CMakeFiles/cosm_sidl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
