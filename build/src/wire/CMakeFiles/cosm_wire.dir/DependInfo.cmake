
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wire/codec.cpp" "src/wire/CMakeFiles/cosm_wire.dir/codec.cpp.o" "gcc" "src/wire/CMakeFiles/cosm_wire.dir/codec.cpp.o.d"
  "/root/repo/src/wire/marshal.cpp" "src/wire/CMakeFiles/cosm_wire.dir/marshal.cpp.o" "gcc" "src/wire/CMakeFiles/cosm_wire.dir/marshal.cpp.o.d"
  "/root/repo/src/wire/static_codec.cpp" "src/wire/CMakeFiles/cosm_wire.dir/static_codec.cpp.o" "gcc" "src/wire/CMakeFiles/cosm_wire.dir/static_codec.cpp.o.d"
  "/root/repo/src/wire/value.cpp" "src/wire/CMakeFiles/cosm_wire.dir/value.cpp.o" "gcc" "src/wire/CMakeFiles/cosm_wire.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sidl/CMakeFiles/cosm_sidl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
