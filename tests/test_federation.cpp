#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/error.h"
#include "rpc/inproc.h"
#include "rpc/server.h"
#include "trader/facade.h"
#include "trader/trader.h"

namespace cosm::trader {
namespace {

using sidl::TypeDesc;
using wire::Value;

ServiceType rental_type() {
  ServiceType t;
  t.name = "CarRentalService";
  t.attributes = {{"ChargePerDay", TypeDesc::float_(), true}};
  return t;
}

AttrMap charge(double c) { return {{"ChargePerDay", Value::real(c)}}; }

sidl::ServiceRef mk_ref(const std::string& id) {
  return {id, "inproc://host", "CarRentalService"};
}

std::unique_ptr<Trader> make_trader(const std::string& name) {
  auto t = std::make_unique<Trader>(name);
  t->types().add(rental_type());
  return t;
}

ImportRequest all_rentals(int hops) {
  ImportRequest r;
  r.service_type = "CarRentalService";
  r.hop_limit = hops;
  return r;
}

TEST(Federation, HopLimitZeroStaysLocal) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  a->export_offer("CarRentalService", mk_ref("local"), charge(10));
  b->export_offer("CarRentalService", mk_ref("remote"), charge(20));

  EXPECT_EQ(a->import(all_rentals(0)).size(), 1u);
  EXPECT_EQ(a->import(all_rentals(1)).size(), 2u);
}

TEST(Federation, HopLimitBoundsChainDepth) {
  // a -> b -> c: offers only at c.
  auto a = make_trader("a");
  auto b = make_trader("b");
  auto c = make_trader("c");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  b->link("c", std::make_shared<LocalTraderGateway>(*c));
  c->export_offer("CarRentalService", mk_ref("deep"), charge(5));

  EXPECT_EQ(a->import(all_rentals(1)).size(), 0u);
  EXPECT_EQ(a->import(all_rentals(2)).size(), 1u);
}

TEST(Federation, DiamondTopologyDeduplicates) {
  // a -> {b, c} -> d: d's offer reachable twice, returned once.
  auto a = make_trader("a");
  auto b = make_trader("b");
  auto c = make_trader("c");
  auto d = make_trader("d");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  a->link("c", std::make_shared<LocalTraderGateway>(*c));
  b->link("d", std::make_shared<LocalTraderGateway>(*d));
  c->link("d", std::make_shared<LocalTraderGateway>(*d));
  d->export_offer("CarRentalService", mk_ref("shared"), charge(7));

  auto offers = a->import(all_rentals(2));
  EXPECT_EQ(offers.size(), 1u);
}

TEST(Federation, CyclesTerminateViaHopLimit) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  b->link("a", std::make_shared<LocalTraderGateway>(*a));
  a->export_offer("CarRentalService", mk_ref("at-a"), charge(1));
  b->export_offer("CarRentalService", mk_ref("at-b"), charge(2));

  auto offers = a->import(all_rentals(5));
  EXPECT_EQ(offers.size(), 2u);  // dedup despite ping-pong
}

TEST(Federation, MergedResultsAreRankedGlobally) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  a->export_offer("CarRentalService", mk_ref("pricey"), charge(90));
  b->export_offer("CarRentalService", mk_ref("bargain"), charge(15));

  ImportRequest request = all_rentals(1);
  request.preference = "min ChargePerDay";
  auto offers = a->import(request);
  ASSERT_EQ(offers.size(), 2u);
  EXPECT_EQ(offers[0].ref.id, "bargain");  // remote offer can win
}

TEST(Federation, MaxMatchesAppliedAfterMerge) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  for (int i = 0; i < 5; ++i) {
    a->export_offer("CarRentalService", mk_ref("a" + std::to_string(i)), charge(50 + i));
    b->export_offer("CarRentalService", mk_ref("b" + std::to_string(i)), charge(10 + i));
  }
  ImportRequest request = all_rentals(1);
  request.preference = "min ChargePerDay";
  request.max_matches = 3;
  auto offers = a->import(request);
  ASSERT_EQ(offers.size(), 3u);
  for (const auto& o : offers) {
    EXPECT_EQ(o.ref.id[0], 'b');  // the three cheapest live at b
  }
}

TEST(Federation, UnknownTypeAtLinkedTraderIsNotFatal) {
  auto a = make_trader("a");
  Trader bare("bare");  // never learned CarRentalService
  a->link("bare", std::make_shared<LocalTraderGateway>(bare));
  a->export_offer("CarRentalService", mk_ref("local"), charge(10));
  EXPECT_EQ(a->import(all_rentals(1)).size(), 1u);
}

TEST(Federation, RemoteGatewayOverRpc) {
  rpc::InProcNetwork net;
  auto local = make_trader("local");
  auto remote = make_trader("remote");
  remote->export_offer("CarRentalService", mk_ref("over-the-wire"), charge(33));

  rpc::RpcServer server(net, "remote-host");
  auto remote_ref = server.add(make_trader_service(*remote));
  local->link("remote", std::make_shared<RemoteTraderGateway>(net, remote_ref));

  auto offers = local->import(all_rentals(1));
  ASSERT_EQ(offers.size(), 1u);
  EXPECT_EQ(offers[0].ref.id, "over-the-wire");
  EXPECT_DOUBLE_EQ(offers[0].attributes.at("ChargePerDay").as_real(), 33.0);
}

TEST(Federation, UnreachableRemoteTraderSkipped) {
  rpc::InProcNetwork net;
  auto local = make_trader("local");
  local->export_offer("CarRentalService", mk_ref("here"), charge(1));
  sidl::ServiceRef dead{"ghost", "inproc://nowhere", "TraderService"};
  local->link("dead", std::make_shared<RemoteTraderGateway>(net, dead));
  EXPECT_EQ(local->import(all_rentals(1)).size(), 1u);
}

TEST(Federation, GatewayDescribe) {
  auto t = make_trader("x");
  EXPECT_EQ(LocalTraderGateway(*t).describe(), "local:x");
}

// --- import_ex: per-link outcomes, degradation, quarantine ---

/// Gateway that fails a configurable number of times, counting invocations.
class FlakyGateway final : public TraderGateway {
 public:
  explicit FlakyGateway(Trader& trader, int failures = 0)
      : trader_(trader), failures_left_(failures) {}

  std::vector<Offer> import(const ImportRequest& request) override {
    ++invocations_;
    if (failures_left_ > 0) {
      --failures_left_;
      throw RpcError("flaky gateway down");
    }
    return trader_.import(request);
  }
  std::string describe() const override { return "flaky:" + trader_.name(); }

  int invocations() const noexcept { return invocations_; }
  void fail_for(int failures) noexcept { failures_left_ = failures; }

 private:
  Trader& trader_;
  std::atomic<int> invocations_{0};
  std::atomic<int> failures_left_;
};

const LinkOutcome* outcome_for(const ImportResult& r, const std::string& link) {
  for (const auto& o : r.links) {
    if (o.link == link) return &o;
  }
  return nullptr;
}

TEST(ImportEx, ReportsPerLinkOutcomes) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  auto c = make_trader("c");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  a->link("c", std::make_shared<LocalTraderGateway>(*c));
  a->export_offer("CarRentalService", mk_ref("local"), charge(1));
  b->export_offer("CarRentalService", mk_ref("b1"), charge(2));
  b->export_offer("CarRentalService", mk_ref("b2"), charge(3));

  ImportResult r = a->import_ex(all_rentals(1));
  EXPECT_EQ(r.offers.size(), 3u);
  EXPECT_FALSE(r.degraded());
  ASSERT_EQ(r.links.size(), 2u);
  ASSERT_NE(outcome_for(r, "b"), nullptr);
  EXPECT_TRUE(outcome_for(r, "b")->ok());
  EXPECT_EQ(outcome_for(r, "b")->offers, 2u);
  EXPECT_EQ(outcome_for(r, "c")->offers, 0u);
}

TEST(ImportEx, LocalImportHasNoLinkOutcomes) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  a->link("b", std::make_shared<LocalTraderGateway>(*b));
  a->export_offer("CarRentalService", mk_ref("local"), charge(1));
  ImportResult r = a->import_ex(all_rentals(0));  // hop_limit 0: no sweep
  EXPECT_EQ(r.offers.size(), 1u);
  EXPECT_TRUE(r.links.empty());
  EXPECT_FALSE(r.degraded());
}

TEST(ImportEx, FailingLinkYieldsPartialResults) {
  auto a = make_trader("a");
  auto good = make_trader("good");
  auto bad = make_trader("bad");
  good->export_offer("CarRentalService", mk_ref("survivor"), charge(4));
  a->link("good", std::make_shared<LocalTraderGateway>(*good));
  auto flaky = std::make_shared<FlakyGateway>(*bad, 1);
  a->link("bad", flaky);

  ImportResult r = a->import_ex(all_rentals(1));
  ASSERT_EQ(r.offers.size(), 1u);
  EXPECT_EQ(r.offers[0].ref.id, "survivor");
  EXPECT_TRUE(r.degraded());
  EXPECT_EQ(outcome_for(r, "bad")->status, LinkOutcome::Status::Failed);
  EXPECT_NE(outcome_for(r, "bad")->error.find("flaky gateway down"),
            std::string::npos);
  EXPECT_TRUE(outcome_for(r, "good")->ok());
}

TEST(ImportEx, SuccessResetsFailureCount) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  auto flaky = std::make_shared<FlakyGateway>(*b, 2);
  a->link("b", flaky);
  FederationOptions fed;
  fed.quarantine_threshold = 3;
  a->set_federation_options(fed);

  a->import_ex(all_rentals(1));  // failure 1
  a->import_ex(all_rentals(1));  // failure 2
  EXPECT_EQ(a->link_health("b").consecutive_failures, 2);
  a->import_ex(all_rentals(1));  // success: counter resets
  EXPECT_EQ(a->link_health("b").consecutive_failures, 0);
  EXPECT_FALSE(a->link_health("b").quarantined);
  EXPECT_EQ(a->links_quarantined_total(), 0u);
}

TEST(ImportEx, QuarantinedLinkIsNotQueriedUntilTtlExpires) {
  auto a = make_trader("a");
  auto b = make_trader("b");
  b->export_offer("CarRentalService", mk_ref("back"), charge(9));
  auto flaky = std::make_shared<FlakyGateway>(*b, 2);
  a->link("b", flaky);
  FederationOptions fed;
  fed.quarantine_threshold = 2;
  fed.quarantine_ttl = std::chrono::milliseconds(150);
  a->set_federation_options(fed);

  a->import_ex(all_rentals(1));                 // failure 1
  ImportResult r2 = a->import_ex(all_rentals(1));  // failure 2 -> quarantine
  EXPECT_EQ(outcome_for(r2, "b")->status, LinkOutcome::Status::Failed);
  EXPECT_TRUE(a->link_health("b").quarantined);
  EXPECT_EQ(a->links_quarantined_total(), 1u);

  int before = flaky->invocations();
  ImportResult r3 = a->import_ex(all_rentals(1));
  EXPECT_EQ(outcome_for(r3, "b")->status, LinkOutcome::Status::Quarantined);
  EXPECT_EQ(flaky->invocations(), before);  // skipped, not queried
  EXPECT_TRUE(r3.offers.empty());

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  // TTL expired: the link is probed again and has recovered.
  ImportResult r4 = a->import_ex(all_rentals(1));
  EXPECT_EQ(outcome_for(r4, "b")->status, LinkOutcome::Status::Ok);
  EXPECT_EQ(r4.offers.size(), 1u);
  EXPECT_FALSE(a->link_health("b").quarantined);
}

TEST(ImportEx, LinkHealthUnknownLinkThrows) {
  auto a = make_trader("a");
  EXPECT_THROW(a->link_health("nope"), NotFound);
}

}  // namespace
}  // namespace cosm::trader
