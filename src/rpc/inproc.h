// In-process loopback network.
//
// Endpoints live in a registry guarded by a reader/writer lock.  Delivery is
// executor-backed: call_async() queues a delivery task on the worker pool,
// so independent calls — blocking callers on their own threads as much as
// async fan-out (parallel federation, multicast, cascaded search) — overlap
// exactly like requests to a multithreaded remote server.  A caller that
// gives up on its deadline cancels the delivery if it has not started yet.
//
// unlisten() drains: it returns only when no delivery is still running (or
// queued) against the endpoint's handler, so a server can be destroyed the
// moment it has unlistened — the loopback equivalent of the TCP transport
// joining its per-connection serving threads.
//
// Optional simulated latency and a frame counter make it a measurable
// stand-in for the paper's workstation-cluster LAN in deterministic
// benchmarks.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>

#include "rpc/executor.h"
#include "rpc/network.h"

namespace cosm::rpc {

struct InProcOptions {
  /// Added to every round trip (sleep), modelling network latency; zero by
  /// default so unit tests run at full speed.
  std::chrono::microseconds latency{0};
  /// Worker threads delivering calls (0 = auto).  Also the cap on
  /// simultaneously executing handlers.
  std::size_t workers = 0;
};

class InProcNetwork final : public Network {
 public:
  InProcNetwork() : InProcNetwork(InProcOptions{}) {}
  explicit InProcNetwork(InProcOptions options)
      : options_(options), executor_(options.workers) {}

  std::string listen(const std::string& hint, FrameHandler handler) override;
  void unlisten(const std::string& endpoint) override;
  PendingCallPtr call_async(const std::string& endpoint, const Bytes& request,
                            const CallContext& ctx) override;
  std::string scheme() const override { return "inproc"; }

  /// Endpoints, delivery workers, in-flight deliveries and frame/byte
  /// totals in one snapshot (defined in inproc.cpp).
  NetworkStats stats() const override;

 private:
  /// Counts deliveries in flight against one endpoint so unlisten can wait
  /// for them (defined in inproc.cpp).
  struct Gate;
  struct Endpoint {
    FrameHandler handler;
    std::shared_ptr<Gate> gate;
  };

  InProcOptions options_;
  mutable std::shared_mutex mutex_;
  std::map<std::string, Endpoint> endpoints_;
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> bytes_{0};
  // Last member: destroyed first, draining queued deliveries while the
  // endpoint registry is still alive.
  Executor executor_;
};

}  // namespace cosm::rpc
