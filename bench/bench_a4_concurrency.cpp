// Experiment A4: trading-cycle throughput under concurrent clients.
//
// N client threads each drive the full F1 trading cycle — import at the
// trader, bind, invoke ListModels — against one shared COSM runtime, over
// both transports:
//   * inproc, with ~500us simulated LAN latency per round trip, so the
//     benefit of overlapping in-flight calls is visible even on one core
//     (the async call core should scale throughput ~linearly until the
//     delivery pool saturates);
//   * tcp over loopback sockets, exercising the pooled persistent
//     connections and the concurrent dispatcher.
//
// Run with --benchmark_format=json for machine-readable results; the
// headline figure is items_per_second at /threads:1 vs /threads:8.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "rpc/tcp.h"
#include "trader/trader.h"

namespace {

using namespace cosm;

constexpr std::size_t kProviders = 4;

trader::ImportRequest cycle_request() {
  trader::ImportRequest request;
  request.service_type = services::car_rental_service_type_name();
  request.preference = "min ChargePerDay";
  request.max_matches = 1;
  return request;
}

/// One F1 cycle: import -> bind -> invoke.  Import is a local trader call;
/// bind and invoke go over the runtime's network.
void trading_cycle(bench::Market& market, core::GenericClient& client,
                   const trader::ImportRequest& request) {
  auto offers = market.runtime.trader().import(request);
  core::Binding rental = client.bind(offers.front().ref);
  wire::Value models = rental.invoke("ListModels", {});
  benchmark::DoNotOptimize(models);
}

void BM_TradingCycle_InProc(benchmark::State& state) {
  // Shared across all thread counts; leaked so worker pools never race
  // static destruction order.
  static bench::Market* market = [] {
    rpc::InProcOptions options;
    options.latency = std::chrono::microseconds(500);
    auto* net = new rpc::InProcNetwork(options);
    return new bench::Market(kProviders, 1994, net);
  }();
  core::GenericClient client = market->runtime.make_client();
  trader::ImportRequest request = cycle_request();
  for (auto _ : state) {
    trading_cycle(*market, client, request);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TradingCycle_InProc)->ThreadRange(1, 16)->UseRealTime();

void BM_TradingCycle_Tcp(benchmark::State& state) {
  static bench::Market* market = [] {
    auto* net = new rpc::TcpNetwork();
    return new bench::Market(kProviders, 1994, net);
  }();
  core::GenericClient client = market->runtime.make_client();
  trader::ImportRequest request = cycle_request();
  for (auto _ : state) {
    trading_cycle(*market, client, request);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TradingCycle_Tcp)->ThreadRange(1, 16)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
