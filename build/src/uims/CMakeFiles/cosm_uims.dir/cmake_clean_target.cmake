file(REMOVE_RECURSE
  "libcosm_uims.a"
)
