file(REMOVE_RECURSE
  "CMakeFiles/cosm_common.dir/bytes.cpp.o"
  "CMakeFiles/cosm_common.dir/bytes.cpp.o.d"
  "CMakeFiles/cosm_common.dir/error.cpp.o"
  "CMakeFiles/cosm_common.dir/error.cpp.o.d"
  "CMakeFiles/cosm_common.dir/id.cpp.o"
  "CMakeFiles/cosm_common.dir/id.cpp.o.d"
  "CMakeFiles/cosm_common.dir/rng.cpp.o"
  "CMakeFiles/cosm_common.dir/rng.cpp.o.d"
  "CMakeFiles/cosm_common.dir/sim_clock.cpp.o"
  "CMakeFiles/cosm_common.dir/sim_clock.cpp.o.d"
  "libcosm_common.a"
  "libcosm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
