// Distributed tracing: trace/span ids minted here, propagated through the
// CallContext (thread-local) and the RPC wire header (Message.trace_id /
// parent_span_id), recorded to a bounded in-memory ring.
//
// Model: a *trace* is one logical operation end to end (a client call and
// everything it triggers — server dispatch, trader matching, federation
// hops); a *span* is one timed step inside it.  Every span names its parent
// span, so client -> server -> federated-hop chains reconstruct exactly.
// Retried RPC attempts reuse the trace but get a fresh span per attempt —
// retries are visible, not conflated.
//
// Span lifecycle: start_span() stamps ids + start time; finish()/
// finish_error() compute the duration and push the completed span into the
// ring (oldest entries overwritten at capacity).  Like the metrics
// registry, the tracer is process-global and disabled by default; when
// disabled, start_span() is never called and the only cost on a call path
// is one relaxed load (ids still ride the existing context/wire fields).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace cosm::obs {

struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  /// 0 = root span of its trace.
  std::uint64_t parent_span_id = 0;
  /// e.g. "rpc.client:Import", "rpc.server:Import", "trader.import".
  std::string name;
  std::chrono::steady_clock::time_point start{};
  std::uint64_t duration_us = 0;
  bool error = false;
  /// Error text or short annotation ("replay-hit", attempt number).
  std::string note;

  bool valid() const noexcept { return span_id != 0; }
};

class Tracer {
 public:
  static Tracer& global();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Completed spans the ring retains before overwriting the oldest.
  void set_capacity(std::size_t spans);
  std::size_t capacity() const;

  /// Fresh nonzero id (shared space for trace and span ids).
  std::uint64_t mint_id() noexcept;

  /// Begin a span: `trace_id` 0 starts a new trace; `parent_span_id` 0
  /// makes it a root span.  The span is not visible until finished.
  Span start_span(std::string name, std::uint64_t trace_id,
                  std::uint64_t parent_span_id);

  void finish(Span&& span);
  void finish(Span&& span, std::string note);
  void finish_error(Span&& span, std::string what);

  /// Completed spans, oldest first (copy; safe while tracing continues).
  std::vector<Span> spans() const;
  std::size_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  void clear();

  /// JSON array of spans: [{"trace":..,"span":..,"parent":..,"name":..,
  /// "us":..,"error":..,"note":..}, ...].
  std::string dump_json() const;
  /// One span per line, indented is-a-child-of order not attempted — the
  /// ids carry the structure.
  std::string dump_text() const;

 private:
  void push(Span&& span);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::size_t> dropped_{0};
  mutable std::mutex mutex_;
  std::vector<Span> ring_;
  std::size_t ring_capacity_ = 4096;
  std::size_t ring_next_ = 0;   // next slot to overwrite once full
  bool ring_full_ = false;
};

/// Shorthand for Tracer::global().
inline Tracer& tracer() { return Tracer::global(); }

}  // namespace cosm::obs
