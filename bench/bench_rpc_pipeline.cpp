// RPC pipelining gate: throughput of the reactor transport at 1 / 8 / 64
// in-flight calls over a single client connection, plus a 1k-idle-connection
// scalability probe.
//
// The sweep models a service with ~1 ms of real work (the handler sleeps):
// with the old thread-per-connection transport a shared connection
// serialised calls, so deeper pipelines bought nothing; the reactor
// dispatches every decoded frame to the executor pool and returns responses
// by correlation id, so throughput should scale with the window until the
// dispatch pool saturates.  The harness exits nonzero when 64-deep
// pipelining is not at least kMinSpeedup x the sequential throughput.
//
// The idle probe opens 1000 extra client connections to the same listener
// and verifies they cost file descriptors, not threads: the process thread
// count must not grow at all (connections are parked in epoll interest
// sets), and the RSS delta is reported for the record.
//
// Usage: bench_rpc_pipeline [json-out]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rpc/message.h"
#include "rpc/tcp.h"
#include "wire/codec.h"
#include "wire/value.h"

using namespace cosm;
using Clock = std::chrono::steady_clock;

namespace {

constexpr double kMinSpeedup = 4.0;
constexpr int kIdleConns = 1000;
const std::vector<int> kWindows = {1, 8, 64};

/// /proc/self/status fields for the idle probe.
struct ProcStatus {
  long threads = 0;
  long vm_rss_kb = 0;
};

ProcStatus read_proc_status() {
  ProcStatus s;
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      s.threads = std::strtol(line.c_str() + 8, nullptr, 10);
    } else if (line.rfind("VmRSS:", 0) == 0) {
      s.vm_rss_kb = std::strtol(line.c_str() + 6, nullptr, 10);
    }
  }
  return s;
}

/// Closed-loop throughput with `window` concurrent callers multiplexed over
/// ONE pooled connection (client_pool_cap = 1).
double sweep_throughput(rpc::TcpNetwork& client, const std::string& ep,
                        int window, int calls_per_caller) {
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  auto start = Clock::now();
  for (int w = 0; w < window; ++w) {
    callers.emplace_back([&, w] {
      for (int i = 0; i < calls_per_caller; ++i) {
        Bytes payload = {static_cast<std::uint8_t>(w),
                         static_cast<std::uint8_t>(i)};
        try {
          if (client.call(ep, payload, std::chrono::milliseconds(30000)) !=
              payload) {
            failures.fetch_add(1);
          }
        } catch (...) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  double sec = std::chrono::duration<double>(Clock::now() - start).count();
  if (failures.load() > 0) {
    std::fprintf(stderr, "FAIL: %d calls failed at window %d\n",
                 failures.load(), window);
    std::exit(1);
  }
  return (window * calls_per_caller) / sec;
}

int dial_raw(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  rpc::TransportOptions server_opts;
  server_opts.event_loop_threads = 2;
  server_opts.dispatch_workers = 64;  // let the 64-deep window run concurrently
  rpc::TcpNetwork server(server_opts);
  auto ep = server.listen("", [](const Bytes& b) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // ~service time
    return b;
  });

  rpc::TransportOptions client_opts;
  client_opts.client_pool_cap = 1;  // everything rides one socket
  rpc::TcpNetwork client(client_opts);

  // Warm up: establish the connection, fault in code paths.
  for (int i = 0; i < 20; ++i) client.call(ep, {0}, std::chrono::milliseconds(5000));

  std::printf("in-flight   calls/sec   speedup\n");
  std::vector<double> rates;
  for (int window : kWindows) {
    int per_caller = window == 1 ? 200 : (window == 8 ? 75 : 20);
    double rate = sweep_throughput(client, ep, window, per_caller);
    rates.push_back(rate);
    std::printf("%9d   %9.0f   %6.2fx\n", window, rate, rate / rates.front());
  }
  double speedup = rates.back() / rates.front();

  // --- 1k idle connection probe ---------------------------------------
  int port = std::atoi(ep.substr(ep.rfind(':') + 1).c_str());
  ProcStatus before = read_proc_status();
  std::vector<int> idle_fds;
  idle_fds.reserve(kIdleConns);
  for (int i = 0; i < kIdleConns; ++i) {
    int fd = dial_raw(port);
    if (fd < 0) {
      std::fprintf(stderr, "FAIL: idle dial %d failed: %s\n", i,
                   std::strerror(errno));
      return 1;
    }
    idle_fds.push_back(fd);
  }
  // Let the reactor drain the accept backlog.
  for (int i = 0; i < 100; ++i) {
    if (server.stats().connections >= static_cast<std::size_t>(kIdleConns)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ProcStatus after = read_proc_status();
  std::size_t accepted = server.stats().connections;
  long thread_growth = after.threads - before.threads;
  std::printf("idle probe: %d connections accepted=%zu threads %ld -> %ld "
              "(growth %ld) rss %ld kB -> %ld kB\n",
              kIdleConns, accepted, before.threads, after.threads,
              thread_growth, before.vm_rss_kb, after.vm_rss_kb);
  for (int fd : idle_fds) ::close(fd);

  // The sweep still works after the idle flood (reactor not wedged).
  client.call(ep, {1}, std::chrono::milliseconds(5000));

  // --- frame-encode probe ----------------------------------------------
  // The cost the zero-copy response path removed: the two-buffer scheme
  // built the marshalled body in its own Bytes, then Message::encode copied
  // it into a second contiguous frame.  The streaming scheme writes header,
  // body and trailer into ONE arena (body length patched into a reserved
  // slot), so the body bytes are written exactly once.  Both variants are
  // measured marshalling the same 64 KiB result value.
  double two_buffer_ns = 0, single_arena_ns = 0;
  {
    // 16 x 4 KiB chunks: bulk bytes dominate, so the probe isolates frame
    // assembly (the copy) rather than per-element marshalling dispatch.
    std::vector<wire::Value> elems;
    for (int i = 0; i < 16; ++i) {
      elems.push_back(wire::Value::string(
          std::string(4096, static_cast<char>('a' + i))));
    }
    wire::Value result = wire::Value::sequence(std::move(elems));
    auto two_buffer = [&result](int request_id) {
      ByteWriter bw;
      wire::encode_value(bw, result);
      rpc::Message response = rpc::Message::response(
          static_cast<std::uint64_t>(request_id), bw.take());
      Bytes frame = response.encode();  // copies the whole body again
      if (frame.empty()) std::abort();
    };
    auto single_arena = [&result](int request_id) {
      rpc::Message response;
      response.type = rpc::MsgType::Response;
      response.request_id = static_cast<std::uint64_t>(request_id);
      ByteWriter w;
      const std::size_t slot = response.encode_begin_body(w);
      wire::encode_value(w, result);  // marshalled straight into the frame
      response.encode_end_body(w, slot);
      Bytes frame = w.take();
      if (frame.empty()) std::abort();
    };
    // Interleaved batches, median-of-samples: immune to measurement order
    // and one-off frequency/allocator transients.
    constexpr int kProbeBatch = 16, kProbeSamples = 64;
    for (int i = 0; i < kProbeBatch * 2; ++i) {  // warm-up both paths
      two_buffer(i);
      single_arena(i);
    }
    std::vector<double> two_samples, one_samples;
    for (int s = 0; s < kProbeSamples; ++s) {
      auto t0 = Clock::now();
      for (int i = 0; i < kProbeBatch; ++i) two_buffer(i);
      auto t1 = Clock::now();
      for (int i = 0; i < kProbeBatch; ++i) single_arena(i);
      auto t2 = Clock::now();
      two_samples.push_back(
          std::chrono::duration<double, std::nano>(t1 - t0).count() /
          kProbeBatch);
      one_samples.push_back(
          std::chrono::duration<double, std::nano>(t2 - t1).count() /
          kProbeBatch);
    }
    std::sort(two_samples.begin(), two_samples.end());
    std::sort(one_samples.begin(), one_samples.end());
    two_buffer_ns = two_samples[two_samples.size() / 2];
    single_arena_ns = one_samples[one_samples.size() / 2];
  }
  double encode_reduction =
      1.0 - single_arena_ns / (two_buffer_ns > 0 ? two_buffer_ns : 1);
  std::printf("frame-encode probe (64 KiB body): two-buffer %.0f ns, "
              "single-arena %.0f ns (%.1f%% reduction)\n",
              two_buffer_ns, single_arena_ns, encode_reduction * 100);

  std::ostringstream json;
  json << "{\"in_flight_sweep\":[";
  for (std::size_t i = 0; i < kWindows.size(); ++i) {
    if (i) json << ",";
    json << "{\"window\":" << kWindows[i] << ",\"calls_per_sec\":"
         << static_cast<long>(rates[i]) << "}";
  }
  json << "],\"speedup_64_vs_1\":" << speedup
       << ",\"frame_encode_probe\":{\"two_buffer_ns\":"
       << static_cast<long>(two_buffer_ns) << ",\"single_arena_ns\":"
       << static_cast<long>(single_arena_ns) << ",\"reduction\":"
       << encode_reduction << "}"
       << ",\"idle_probe\":{\"connections\":" << kIdleConns
       << ",\"accepted\":" << accepted
       << ",\"thread_growth\":" << thread_growth
       << ",\"vm_rss_kb_before\":" << before.vm_rss_kb
       << ",\"vm_rss_kb_after\":" << after.vm_rss_kb << "}}";
  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << json.str() << "\n";
    std::printf("results written to %s\n", argv[1]);
  } else {
    std::printf("%s\n", json.str().c_str());
  }

  bool ok = true;
  if (speedup < kMinSpeedup) {
    std::fprintf(stderr,
                 "FAIL: 64-deep pipelining speedup %.2fx below the %.0fx gate\n",
                 speedup, kMinSpeedup);
    ok = false;
  }
  if (accepted < static_cast<std::size_t>(kIdleConns)) {
    std::fprintf(stderr, "FAIL: only %zu of %d idle connections accepted\n",
                 accepted, kIdleConns);
    ok = false;
  }
  if (thread_growth > 0) {
    std::fprintf(stderr,
                 "FAIL: %ld threads appeared for idle connections (must be 0)\n",
                 thread_growth);
    ok = false;
  }
  if (encode_reduction <= 0.10) {
    std::fprintf(stderr,
                 "FAIL: single-arena frame encode only %.1f%% faster than "
                 "two-buffer (need >10%%)\n",
                 encode_reduction * 100);
    ok = false;
  }
  if (!ok) return 1;
  std::printf("OK: %.2fx speedup at depth 64; %d idle connections cost 0 threads\n",
              speedup, kIdleConns);
  return 0;
}
