file(REMOVE_RECURSE
  "CMakeFiles/test_type_desc.dir/test_type_desc.cpp.o"
  "CMakeFiles/test_type_desc.dir/test_type_desc.cpp.o.d"
  "test_type_desc"
  "test_type_desc.pdb"
  "test_type_desc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_type_desc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
