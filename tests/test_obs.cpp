// Observability layer: metrics registry, tracer, and end-to-end trace
// propagation across client -> server -> federated trader hops (the ids
// ride the CallContext and the wire header exactly like the deadline).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/runtime.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/channel.h"
#include "rpc/fault_injection.h"
#include "rpc/inproc.h"
#include "rpc/server.h"
#include "rpc/tcp.h"
#include "sidl/parser.h"
#include "trader/facade.h"
#include "trader/trader.h"

namespace cosm {
namespace {

using std::chrono::milliseconds;
using wire::Value;

/// Every test in this file toggles the process-global registry/tracer, so
/// leave both exactly as found: disabled and empty.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::metrics().set_enabled(false);
    obs::metrics().reset();
    obs::tracer().set_enabled(false);
    obs::tracer().clear();
  }
  void TearDown() override { SetUp(); }
};

// ---------------------------------------------------------------------------
// Registry instruments.

using ObsMetrics = ObsTest;
using ObsTrace = ObsTest;
using ObsPropagation = ObsTest;

TEST_F(ObsMetrics, CounterGaugeBasics) {
  auto& reg = obs::metrics();
  obs::Counter& c = reg.counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // Find-or-create returns the same instrument.
  EXPECT_EQ(&reg.counter("test.counter"), &c);

  obs::Gauge& g = reg.gauge("test.gauge");
  g.set(-3);
  EXPECT_EQ(g.value(), -3);
  g.add(5);
  EXPECT_EQ(g.value(), 2);

  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // reference survives reset
  EXPECT_EQ(g.value(), 0);
}

TEST_F(ObsMetrics, HistogramPercentilesExactWithinTwoX) {
  obs::Histogram h;
  for (int i = 0; i < 100; ++i) h.record_us(100);  // bucket (64,128]
  h.record_us(100000);                             // one outlier
  obs::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 101u);
  EXPECT_EQ(s.max_us, 100000u);
  EXPECT_EQ(s.sum_us, 100u * 100u + 100000u);
  // Power-of-two buckets report the bucket's upper bound: exact within 2x.
  EXPECT_GE(s.p50_us, 100u);
  EXPECT_LE(s.p50_us, 200u);
  EXPECT_GE(s.p99_us, 100u);
  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST_F(ObsMetrics, JsonSnapshotNamesEveryInstrument) {
  auto& reg = obs::metrics();
  reg.counter("snap.counter").add(7);
  reg.gauge("snap.gauge").set(9);
  reg.histogram("snap.hist").record_us(42);
  std::string json = reg.to_json();
  EXPECT_NE(json.find("\"snap.counter\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"snap.gauge\": 9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"snap.hist\""), std::string::npos) << json;
  EXPECT_NE(reg.to_text().find("snap.counter"), std::string::npos);
}

TEST_F(ObsMetrics, DisabledByDefault) {
  // Fresh processes must pay only the relaxed-load branch.
  EXPECT_FALSE(obs::metrics().enabled());
  EXPECT_FALSE(obs::tracer().enabled());
}

// ---------------------------------------------------------------------------
// Tracer ring.

TEST_F(ObsTrace, SpanLifecycle) {
  auto& tr = obs::tracer();
  tr.set_enabled(true);
  std::uint64_t trace = tr.mint_id();
  obs::Span root = tr.start_span("root", trace, 0);
  EXPECT_TRUE(root.valid());
  EXPECT_EQ(root.trace_id, trace);
  obs::Span child = tr.start_span("child", trace, root.span_id);
  EXPECT_NE(child.span_id, root.span_id);
  tr.finish(std::move(child));
  tr.finish_error(std::move(root), "boom");

  std::vector<obs::Span> spans = tr.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "child");       // completion order, oldest first
  EXPECT_EQ(spans[0].parent_span_id, spans[1].span_id);
  EXPECT_FALSE(spans[0].error);
  EXPECT_TRUE(spans[1].error);
  EXPECT_EQ(spans[1].note, "boom");
  EXPECT_NE(tr.dump_json().find("\"boom\""), std::string::npos);
}

TEST_F(ObsTrace, StartSpanMintsTraceWhenAbsent) {
  auto& tr = obs::tracer();
  tr.set_enabled(true);
  obs::Span s = tr.start_span("orphan", 0, 0);
  EXPECT_NE(s.trace_id, 0u);
  tr.finish(std::move(s));
}

TEST_F(ObsTrace, RingOverwritesOldestAndCountsDropped) {
  auto& tr = obs::tracer();
  tr.set_capacity(4);
  tr.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    tr.finish(tr.start_span("s" + std::to_string(i), 1, 0));
  }
  std::vector<obs::Span> spans = tr.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().name, "s6");  // oldest retained
  EXPECT_EQ(spans.back().name, "s9");
  EXPECT_EQ(tr.dropped(), 6u);
  tr.clear();
  EXPECT_TRUE(tr.spans().empty());
  EXPECT_EQ(tr.dropped(), 0u);
  tr.set_capacity(4096);  // restore the default for later tests
}

TEST_F(ObsTrace, GrowingCapacityAfterRingFilledResumesAppendMode) {
  // Regression: growing while full used to leave ring_full_ set with a
  // short backing vector, so the next push indexed past the vector's end.
  auto& tr = obs::tracer();
  tr.set_capacity(3);
  tr.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    tr.finish(tr.start_span("s" + std::to_string(i), 1, 0));
  }
  ASSERT_EQ(tr.spans().size(), 3u);  // full and wrapped (next slot != 0)
  tr.set_capacity(6);
  for (int i = 5; i < 8; ++i) {
    tr.finish(tr.start_span("s" + std::to_string(i), 1, 0));
  }
  std::vector<obs::Span> spans = tr.spans();
  ASSERT_EQ(spans.size(), 6u);
  // Oldest-first order survives the grow: the three survivors of the small
  // ring, then the three appended after it.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(spans[i].name, "s" + std::to_string(i + 2));
  }
  // One more push wraps at the *new* capacity.
  tr.finish(tr.start_span("s8", 1, 0));
  spans = tr.spans();
  ASSERT_EQ(spans.size(), 6u);
  EXPECT_EQ(spans.front().name, "s3");
  EXPECT_EQ(spans.back().name, "s8");
  tr.clear();
  tr.set_capacity(4096);
}

TEST_F(ObsTrace, ShrinkingWrappedRingKeepsNewestSpans) {
  // Regression: shrinking used to trim the raw vector's front, which in a
  // wrapped ring holds some of the *newest* spans.
  auto& tr = obs::tracer();
  tr.set_capacity(4);
  tr.set_enabled(true);
  for (int i = 0; i < 6; ++i) {  // wrapped: next slot is mid-vector
    tr.finish(tr.start_span("s" + std::to_string(i), 1, 0));
  }
  tr.set_capacity(2);
  std::vector<obs::Span> spans = tr.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "s4");
  EXPECT_EQ(spans[1].name, "s5");
  tr.clear();
  tr.set_capacity(4096);
}

TEST_F(ObsTrace, DumpJsonEscapesControlCharacters) {
  auto& tr = obs::tracer();
  tr.set_enabled(true);
  tr.finish_error(tr.start_span("quote\"name", 1, 0),
                  std::string("tab\there\rcr\x01raw"));
  std::string json = tr.dump_json();
  EXPECT_NE(json.find("quote\\\"name"), std::string::npos) << json;
  EXPECT_NE(json.find("tab\\there\\rcr\\u0001raw"), std::string::npos) << json;
  // No raw control bytes survive anywhere in the dump.
  for (char c : json) {
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\n') << json;
  }
}

// ---------------------------------------------------------------------------
// End-to-end propagation: one trace id from the importing client through the
// local trader to the federated hop, spans parent-linked at every step.

trader::ServiceType rental_type() {
  trader::ServiceType t;
  t.name = "CarRentalService";
  t.attributes = {{"ChargePerDay", sidl::TypeDesc::float_(), true}};
  return t;
}

const obs::Span* find_span(const std::vector<obs::Span>& spans,
                           const std::string& name, std::uint64_t parent) {
  for (const auto& s : spans) {
    if (s.name == name && s.parent_span_id == parent) return &s;
  }
  return nullptr;
}

void expect_federated_trace_chain(rpc::Network& net) {
  core::RuntimeOptions opts;
  opts.observability.metrics = true;
  opts.observability.tracing = true;
  core::CosmRuntime a(net, opts);
  core::CosmRuntime b(net, opts);
  a.trader().types().add(rental_type());
  b.trader().types().add(rental_type());
  a.link_trader("b", b.trader_ref());
  sidl::ServiceRef local{"p-local", "inproc://x", "CarRentalService"};
  sidl::ServiceRef remote{"p-remote", "inproc://y", "CarRentalService"};
  a.trader().export_offer("CarRentalService", local,
                          {{"ChargePerDay", Value::real(10)}});
  b.trader().export_offer("CarRentalService", remote,
                          {{"ChargePerDay", Value::real(20)}});

  obs::tracer().clear();
  rpc::RpcChannel channel(net, a.trader_ref());
  Value offers = channel.call(
      "Import", {Value::string("CarRentalService"), Value::string(""),
                 Value::string(""), Value::integer(0), Value::integer(1)});
  ASSERT_EQ(offers.elements().size(), 2u);

  std::vector<obs::Span> spans = obs::tracer().spans();
  // Root: the importing client's attempt span.
  const obs::Span* client = find_span(spans, "rpc.client:Import", 0);
  ASSERT_NE(client, nullptr) << obs::tracer().dump_text();
  // Trader A's server dispatch hangs under it via the wire header.
  const obs::Span* server_a =
      find_span(spans, "rpc.server:Import", client->span_id);
  ASSERT_NE(server_a, nullptr) << obs::tracer().dump_text();
  // The trader's matching span hangs under the dispatch.
  const obs::Span* import_a =
      find_span(spans, "trader.import:CarRentalService", server_a->span_id);
  ASSERT_NE(import_a, nullptr) << obs::tracer().dump_text();
  // The federated hop's client span hangs under the import (the ids crossed
  // to the sweep worker thread inside the ImportRequest).
  const obs::Span* fed_client =
      find_span(spans, "rpc.client:Import", import_a->span_id);
  ASSERT_NE(fed_client, nullptr) << obs::tracer().dump_text();
  // And trader B's dispatch + matching close the chain.
  const obs::Span* server_b =
      find_span(spans, "rpc.server:Import", fed_client->span_id);
  ASSERT_NE(server_b, nullptr) << obs::tracer().dump_text();
  const obs::Span* import_b =
      find_span(spans, "trader.import:CarRentalService", server_b->span_id);
  ASSERT_NE(import_b, nullptr) << obs::tracer().dump_text();

  // One trace end to end.
  for (const obs::Span* s :
       {client, server_a, import_a, fed_client, server_b, import_b}) {
    EXPECT_EQ(s->trace_id, client->trace_id);
  }
}

TEST_F(ObsPropagation, FederatedImportSharesOneTraceInProc) {
  rpc::InProcNetwork net;
  expect_federated_trace_chain(net);
}

TEST_F(ObsPropagation, FederatedImportSharesOneTraceOverTcp) {
  rpc::TcpNetwork net;
  expect_federated_trace_chain(net);
}

TEST_F(ObsPropagation, RetryReusesTraceWithFreshAttemptSpan) {
  rpc::InProcNetwork inner;
  rpc::FaultInjectingNetwork net(inner, 7);
  rpc::ServerOptions so;
  so.at_most_once = true;
  rpc::RpcServer server(net, "host", so);
  auto sid = std::make_shared<sidl::Sid>(
      sidl::parse_sid("module M { interface I { long Bump(); }; };"));
  auto object = std::make_shared<rpc::ServiceObject>(sid);
  int executions = 0;
  object->on("Bump", [&executions](const std::vector<Value>&) {
    return Value::integer(++executions);
  });
  auto ref = server.add(object);

  obs::tracer().set_enabled(true);
  obs::metrics().set_enabled(true);

  rpc::ChannelOptions copts;
  copts.retry = rpc::RetryPolicy::standard();
  copts.retry.initial_backoff = milliseconds(1);
  copts.idempotent = true;
  rpc::RpcChannel channel(net, ref, copts);

  net.fail_next(1);
  auto reply = channel.call_async("Bump", {});
  EXPECT_EQ(reply->get().as_int(), 1);
  EXPECT_EQ(reply->attempts(), 2);

  std::vector<obs::Span> spans = obs::tracer().spans();
  std::vector<const obs::Span*> attempts;
  for (const auto& s : spans) {
    if (s.name == "rpc.client:Bump") attempts.push_back(&s);
  }
  ASSERT_EQ(attempts.size(), 2u);
  // Same trace, distinct span per attempt; the injected failure closed the
  // first attempt as an error, the reissue succeeded.
  EXPECT_EQ(attempts[0]->trace_id, attempts[1]->trace_id);
  EXPECT_NE(attempts[0]->span_id, attempts[1]->span_id);
  EXPECT_TRUE(attempts[0]->error);
  EXPECT_FALSE(attempts[1]->error);
  EXPECT_GE(obs::metrics().counter("rpc.channel.retries").value(), 1u);
}

// ---------------------------------------------------------------------------
// Full F1 trading cycle with metrics on: the snapshot must report nonzero
// rpc, transport, replay-cache and trader activity.

TEST_F(ObsPropagation, MetricsSnapshotCoversFullTradingCycleOverTcp) {
  rpc::TcpNetwork net;
  core::RuntimeOptions opts;
  opts.observability.metrics = true;
  opts.server.at_most_once = true;
  core::CosmRuntime runtime(net, opts);
  runtime.trader().types().add(rental_type());

  // F1 cycle driven over the wire: export via the facade, import, bind to
  // the winner, invoke.
  auto sid = std::make_shared<sidl::Sid>(sidl::parse_sid(
      "module Rental { interface I { sequence<string> ListModels(); }; };"));
  auto object = std::make_shared<rpc::ServiceObject>(sid);
  object->on("ListModels", [](const std::vector<Value>&) {
    return Value::sequence({Value::string("golf")});
  });
  sidl::ServiceRef provider = runtime.host(object);

  rpc::RpcChannel channel(net, runtime.trader_ref());
  channel.call("Export",
               {Value::string("CarRentalService"), Value::service_ref(provider),
                Value::sequence({Value::structure(
                    "Attribute_t", {{"name", Value::string("ChargePerDay")},
                                    {"value", Value::real(30)}})})});
  Value offers = channel.call(
      "Import", {Value::string("CarRentalService"), Value::string(""),
                 Value::string(""), Value::integer(0), Value::integer(0)});
  ASSERT_EQ(offers.elements().size(), 1u);
  core::GenericClient client = runtime.make_client();
  core::Binding binding = client.bind(trader::offer_from_value(offers.elements()[0]).ref);
  EXPECT_FALSE(binding.invoke("ListModels", {}).elements().empty());

  auto& reg = obs::metrics();
  EXPECT_GT(reg.counter("rpc.channel.calls").value(), 0u);       // rpc
  EXPECT_GT(reg.counter("rpc.server.requests").value(), 0u);     // rpc
  EXPECT_GT(reg.counter("tcp.accepts").value(), 0u);             // transport
  EXPECT_GT(reg.counter("replay.misses").value(), 0u);           // replay cache
  EXPECT_GT(reg.counter("trader.exports").value(), 0u);          // trader
  EXPECT_GT(reg.counter("trader.imports").value(), 0u);          // trader
  EXPECT_GT(reg.counter("client.binds").value(), 0u);            // client

  std::string snapshot = runtime.metrics_snapshot();
  EXPECT_NE(snapshot.find("\"rpc.channel.calls\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"tcp.accepts\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"replay.misses\""), std::string::npos);
  // Lifetime stats folded in as gauges at snapshot time, namespaced by the
  // runtime's process-unique trader name.
  const std::string prefix = "\"" + runtime.trader().name() + ".";
  EXPECT_NE(snapshot.find(prefix + "imports_total\": 1"), std::string::npos)
      << snapshot;
  EXPECT_NE(snapshot.find(prefix + "exports_total\": 1"), std::string::npos)
      << snapshot;
  EXPECT_NE(snapshot.find(prefix + "server.requests_total\""),
            std::string::npos)
      << snapshot;
}

TEST_F(ObsPropagation, ResetStatsZeroesMatchingCountersOverRpc) {
  rpc::InProcNetwork net;
  core::CosmRuntime runtime(net);
  runtime.trader().types().add(rental_type());
  sidl::ServiceRef ref{"p", "inproc://x", "CarRentalService"};
  runtime.trader().export_offer("CarRentalService", ref,
                                {{"ChargePerDay", Value::real(10)}});
  trader::ImportRequest request;
  request.service_type = "CarRentalService";
  request.constraint = "ChargePerDay < 50";
  ASSERT_EQ(runtime.trader().import(request).size(), 1u);
  EXPECT_GT(runtime.trader().offers_scanned(), 0u);
  EXPECT_GT(runtime.trader().constraint_cache_misses(), 0u);

  rpc::RpcChannel channel(net, runtime.trader_ref());
  channel.call("ResetStats", {});
  EXPECT_EQ(runtime.trader().offers_scanned(), 0u);
  EXPECT_EQ(runtime.trader().offers_evaluated(), 0u);
  EXPECT_EQ(runtime.trader().constraint_cache_misses(), 0u);
  EXPECT_EQ(runtime.trader().constraint_cache_hits(), 0u);
  EXPECT_EQ(runtime.trader().index_lookups(), 0u);
  // Lifecycle totals survive a stats reset.
  EXPECT_EQ(runtime.trader().exports_total(), 1u);
  EXPECT_EQ(runtime.trader().imports_total(), 1u);
}

}  // namespace
}  // namespace cosm
