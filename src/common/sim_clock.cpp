#include "common/sim_clock.h"

namespace cosm {

std::string SimClock::stamp() const {
  return "day " + std::to_string(hours_ / 24) + ", hour " +
         std::to_string(hours_ % 24);
}

}  // namespace cosm
