// Transport abstraction (the "Communication Level" of Fig. 6).
//
// A Network binds frame handlers to endpoint addresses and carries request/
// response round trips.  The primitive is asynchronous: call_async() hands
// back a PendingCall the transport settles when the response arrives; the
// blocking call() is implemented on top of it.  Two implementations exist:
//   * InProcNetwork — a loopback bus inside one process; blocking calls run
//     the handler inline on the caller's thread (deterministic), async calls
//     are delivered by an executor-backed worker pool, with optional
//     simulated per-call latency so experiments can model LAN round trips;
//   * TcpNetwork — real sockets on 127.0.0.1 with length-prefixed,
//     correlation-tagged frames over pooled persistent connections, used to
//     validate the mechanisms over genuine I/O (ablation A2).
//
// Endpoint addresses are URLs: "inproc://name" or "tcp://127.0.0.1:port".

#pragma once

#include <chrono>
#include <functional>
#include <string>

#include "common/bytes.h"
#include "rpc/call_context.h"
#include "rpc/pending_call.h"

namespace cosm::rpc {

/// Server-side frame handler: consumes a request frame, produces the
/// response frame.  Handlers must not throw; RPC-level faults are encoded
/// into the returned frame by the RpcServer.  Handlers may run concurrently
/// on transport threads — server-side state must be synchronised.
using FrameHandler = std::function<Bytes(const Bytes&)>;

class Network {
 public:
  virtual ~Network() = default;

  Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Bind `handler` under a new endpoint; `hint` influences the address
  /// (in-proc uses it as the name).  Returns the endpoint URL.
  virtual std::string listen(const std::string& hint, FrameHandler handler) = 0;

  /// Remove a binding; subsequent calls to the endpoint fail.
  virtual void unlisten(const std::string& endpoint) = 0;

  /// Issue a round trip without blocking.  Never throws: synchronous
  /// failures (unknown endpoint, bad address, expired deadline) settle the
  /// returned PendingCall with the error.  `ctx` carries the caller's
  /// deadline; the transport refuses delivery once it has expired.
  virtual PendingCallPtr call_async(const std::string& endpoint,
                                    const Bytes& request,
                                    const CallContext& ctx) = 0;

  /// Synchronous round trip: call_async + wait.  Throws cosm::RpcError on
  /// unknown endpoint, connection failure or timeout.
  Bytes call(const std::string& endpoint, const Bytes& request,
             std::chrono::milliseconds timeout);

  /// Scheme prefix this network serves ("inproc" or "tcp").
  virtual std::string scheme() const = 0;
};

}  // namespace cosm::rpc
