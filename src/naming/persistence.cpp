#include "naming/persistence.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "sidl/parser.h"
#include "sidl/printer.h"
#include "sidl/validate.h"

namespace cosm::naming {

namespace fs = std::filesystem;

std::string encode_service_id(const std::string& id) {
  std::ostringstream os;
  for (unsigned char c : id) {
    if (std::isalnum(c) || c == '-' || c == '_' || c == '.') {
      os << c;
    } else {
      os << '%' << "0123456789ABCDEF"[c >> 4] << "0123456789ABCDEF"[c & 0xF];
    }
  }
  return os.str();
}

std::string decode_service_id(const std::string& stem) {
  std::string out;
  for (std::size_t i = 0; i < stem.size(); ++i) {
    if (stem[i] == '%' && i + 2 < stem.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return -1;
      };
      int hi = hex(stem[i + 1]), lo = hex(stem[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(stem[i]);
  }
  return out;
}

std::size_t save_repository(const InterfaceRepository& repo,
                            const fs::path& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    throw Error("cannot create directory '" + directory.string() +
                "': " + ec.message());
  }
  std::size_t written = 0;
  for (const auto& id : repo.ids()) {
    sidl::SidPtr sid = repo.get(id);
    fs::path file = directory / (encode_service_id(id) + ".sidl");
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("cannot write '" + file.string() + "'");
    out << sidl::print_sid(*sid);
    if (!out.good()) throw Error("write failed for '" + file.string() + "'");
    ++written;
  }
  return written;
}

std::size_t load_repository(InterfaceRepository& repo, const fs::path& directory,
                            std::vector<std::string>* errors) {
  if (!fs::is_directory(directory)) {
    throw Error("'" + directory.string() + "' is not a directory");
  }
  std::size_t loaded = 0;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(directory)) {
    if (entry.is_regular_file() && entry.path().extension() == ".sidl") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());  // deterministic load order
  for (const auto& file : files) {
    try {
      std::ifstream in(file, std::ios::binary);
      if (!in) throw Error("cannot read '" + file.string() + "'");
      std::ostringstream buffer;
      buffer << in.rdbuf();
      auto sid = std::make_shared<sidl::Sid>(sidl::parse_sid(buffer.str()));
      repo.put(decode_service_id(file.stem().string()), std::move(sid));
      ++loaded;
    } catch (const Error& e) {
      if (errors) errors->push_back(file.filename().string() + ": " + e.what());
    }
  }
  return loaded;
}

}  // namespace cosm::naming
