#include "core/runtime.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "rpc/inproc.h"
#include "services/car_rental.h"
#include "services/weather.h"

namespace cosm::core {
namespace {

TEST(Runtime, WellKnownNamesBound) {
  rpc::InProcNetwork net;
  CosmRuntime runtime(net);
  EXPECT_EQ(runtime.names().resolve(WellKnownNames::kTrader), runtime.trader_ref());
  EXPECT_EQ(runtime.names().resolve(WellKnownNames::kBrowser), runtime.browser_ref());
  EXPECT_EQ(runtime.names().resolve(WellKnownNames::kNameServer),
            runtime.name_server_ref());
  EXPECT_EQ(runtime.names().resolve(WellKnownNames::kRepository),
            runtime.repository_ref());
  EXPECT_EQ(runtime.names().resolve(WellKnownNames::kGroupManager),
            runtime.group_manager_ref());
}

TEST(Runtime, InfrastructureSidsInRepository) {
  rpc::InProcNetwork net;
  CosmRuntime runtime(net);
  EXPECT_EQ(runtime.repository().size(), 6u);
  EXPECT_EQ(runtime.repository().get(runtime.trader_ref().id)->name,
            "TraderService");
  EXPECT_EQ(runtime.repository().get(runtime.browser_ref().id)->name,
            "BrowserService");
}

TEST(Runtime, HostStoresSidAndServes) {
  rpc::InProcNetwork net;
  CosmRuntime runtime(net);
  auto ref = runtime.host(services::make_weather_service({}));
  EXPECT_EQ(runtime.repository().get(ref.id)->name, "WeatherOracle");
  GenericClient client = runtime.make_client();
  Binding b = client.bind(ref);
  EXPECT_EQ(b.sid()->name, "WeatherOracle");
}

TEST(Runtime, OfferMediatedRegistersAtBrowser) {
  rpc::InProcNetwork net;
  CosmRuntime runtime(net);
  runtime.offer_mediated("Weather", services::make_weather_service({}));
  EXPECT_EQ(runtime.browser().size(), 1u);
  EXPECT_EQ(runtime.browser().describe("Weather").sid->name, "WeatherOracle");
}

TEST(Runtime, OfferTradedExportsFromSid) {
  rpc::InProcNetwork net;
  CosmRuntime runtime(net);
  services::CarRentalConfig config;
  config.tradable = true;
  auto [ref, offer_id] = runtime.offer_traded(
      services::make_car_rental_service(config));
  EXPECT_FALSE(offer_id.empty());
  EXPECT_TRUE(runtime.trader().types().has("CarRentalService"));
  EXPECT_EQ(runtime.trader().offer_count(), 1u);
  EXPECT_EQ(runtime.repository().get(ref.id)->name, "CarRentalService");
}

TEST(Runtime, OfferTradedWithoutExportModuleFails) {
  rpc::InProcNetwork net;
  CosmRuntime runtime(net);
  services::CarRentalConfig config;
  config.tradable = false;
  EXPECT_THROW(runtime.offer_traded(services::make_car_rental_service(config)),
               NotFound);
}

TEST(Runtime, TwoRuntimesShareOneNetwork) {
  rpc::InProcNetwork net;
  CosmRuntime a(net), b(net);
  // Distinct endpoints, both reachable.
  EXPECT_NE(a.trader_ref().endpoint, b.trader_ref().endpoint);
  GenericClient client(net);
  EXPECT_EQ(client.bind(a.browser_ref()).sid()->name, "BrowserService");
  EXPECT_EQ(client.bind(b.browser_ref()).sid()->name, "BrowserService");
}

}  // namespace
}  // namespace cosm::core
