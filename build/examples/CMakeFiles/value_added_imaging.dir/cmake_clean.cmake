file(REMOVE_RECURSE
  "CMakeFiles/value_added_imaging.dir/value_added_imaging.cpp.o"
  "CMakeFiles/value_added_imaging.dir/value_added_imaging.cpp.o.d"
  "value_added_imaging"
  "value_added_imaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_added_imaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
