// R1: durable-trader crash/recovery acceptance (ROADMAP item 5).
//
// A forked child loads offers into a WAL-backed trader, appending every
// *acknowledged* offer id (export_batch returned, so the journal accepted
// the record) to a side file.  The parent SIGKILLs it mid-write — a real
// crash, no destructors — then recovers the market from the journal and
// checks the durability contract:
//
//   * every acknowledged offer is recovered (no lost acks),
//   * no offer id is recovered twice (no duplicate executions),
//   * recovery completes within the gate (default 5 s at 1M offers).
//
// A second phase measures the WAL's write-path cost: single-offer export
// p99 with journalling on vs off, gated at 1.5x by default.
//
// Writes BENCH_r1_recovery.json.  Flags:
//   --offers=N             acked offers before the kill (default 1000000)
//   --batch=N              export batch size in the child (default 1000)
//   --lat-samples=N        per-mode export latency samples (default 20000)
//   --snapshot-mb=N        loader snapshot cadence in MB of journal (default 48)
//   --gate-recovery-s=S    recovery time budget (default 5.0)
//   --gate-p99-ratio=R     WAL-on/WAL-off export p99 budget (default 1.5)
//   --dir=PATH             working directory (default /tmp/cosm-r1-<pid>)
//   --out=FILE             JSON destination (default BENCH_r1_recovery.json)

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "trader/storage/wal_storage.h"
#include "trader/trader.h"
#include "wire/value.h"

namespace {

namespace fs = std::filesystem;
using cosm::trader::BatchOfferSpec;
using cosm::trader::Trader;
using cosm::trader::storage::StorageOptions;
using cosm::trader::storage::WalStorage;
using cosm::wire::Value;
using Clock = std::chrono::steady_clock;

cosm::trader::ServiceType rental_type() {
  cosm::trader::ServiceType t;
  t.name = "CarRentalService";
  t.attributes = {{"ChargePerDay", cosm::sidl::TypeDesc::float_(), true},
                  {"City", cosm::sidl::TypeDesc::string_(), true}};
  return t;
}

BatchOfferSpec mk_spec(std::size_t n) {
  BatchOfferSpec spec;
  spec.ref = {"prov-" + std::to_string(n % 4096), "inproc://host",
              "CarRentalService"};
  spec.attributes = {
      {"ChargePerDay", Value::real(20.0 + static_cast<double>(n % 200))},
      {"City", Value::string(n % 2 ? "Karlsruhe" : "Berlin")}};
  return spec;
}

std::shared_ptr<WalStorage> make_engine(const std::string& dir,
                                        std::size_t snapshot_every_bytes) {
  StorageOptions options;
  options.directory = dir;
  options.snapshot_every_bytes = snapshot_every_bytes;
  return std::make_shared<WalStorage>(options);
}

/// Child: load batches forever, acking each durable batch's ids to
/// `acked_path`.  Runs until the parent's SIGKILL lands.
[[noreturn]] void loader_child(const std::string& dir,
                               const std::string& acked_path,
                               std::size_t batch,
                               std::size_t snapshot_every_bytes) {
  int fd = ::open(acked_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) _exit(2);
  Trader trader("r1", 42, make_engine(dir, snapshot_every_bytes));
  trader.recover();
  trader.types().add(rental_type());
  std::string lines;
  for (std::size_t n = 0;; n += batch) {
    std::vector<BatchOfferSpec> specs;
    specs.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) specs.push_back(mk_spec(n + i));
    std::vector<std::string> ids =
        trader.export_batch("CarRentalService", std::move(specs));
    // export_batch returned: the WAL's group commit accepted the record, so
    // these ids survive any process death.  Ack them.
    lines.clear();
    for (const std::string& id : ids) {
      lines += id;
      lines += '\n';
    }
    const char* data = lines.data();
    std::size_t left = lines.size();
    while (left > 0) {
      ssize_t w = ::write(fd, data, left);
      if (w < 0) {
        if (errno == EINTR) continue;
        _exit(3);
      }
      data += w;
      left -= static_cast<std::size_t>(w);
    }
  }
}

/// Acked ids currently in the side file; a torn final line (the kill cut a
/// write short) is ignored — it was never fully acknowledged.
std::vector<std::string> read_acked(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<std::string> ids;
  std::string line;
  while (std::getline(in, line)) {
    if (in.eof() && !line.empty()) break;  // no trailing newline: torn
    if (!line.empty()) ids.push_back(line);
  }
  return ids;
}

std::size_t count_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::size_t n = 0;
  char buf[1 << 16];
  while (in.read(buf, sizeof buf) || in.gcount() > 0) {
    n += static_cast<std::size_t>(
        std::count(buf, buf + in.gcount(), '\n'));
    if (in.gcount() < static_cast<std::streamsize>(sizeof buf)) break;
  }
  return n;
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1));
  return v[idx];
}

/// Single-offer export p99 in microseconds, with or without a WAL.
double export_p99_us(std::size_t samples, const std::string& wal_dir) {
  std::shared_ptr<WalStorage> engine;
  if (!wal_dir.empty()) engine = make_engine(wal_dir, 256ull << 20);
  Trader trader("lat", 42, engine);
  if (engine) trader.recover();
  trader.types().add(rental_type());
  for (std::size_t i = 0; i < 1000; ++i) {  // warmup
    auto spec = mk_spec(i);
    trader.export_offer("CarRentalService", spec.ref, spec.attributes);
  }
  std::vector<double> us;
  us.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    auto spec = mk_spec(i);
    const auto t0 = Clock::now();
    trader.export_offer("CarRentalService", spec.ref,
                        std::move(spec.attributes));
    us.push_back(std::chrono::duration<double, std::micro>(Clock::now() - t0)
                     .count());
  }
  return percentile(us, 0.99);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t offers = 1'000'000;
  std::size_t batch = 1000;
  std::size_t lat_samples = 20'000;
  std::size_t snapshot_mb = 48;
  double gate_recovery_s = 5.0;
  double gate_p99_ratio = 1.5;
  std::string dir;
  std::string out_path = "BENCH_r1_recovery.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--offers=", 0) == 0) {
      offers = std::stoull(arg.substr(9));
    } else if (arg.rfind("--batch=", 0) == 0) {
      batch = std::stoull(arg.substr(8));
    } else if (arg.rfind("--lat-samples=", 0) == 0) {
      lat_samples = std::stoull(arg.substr(14));
    } else if (arg.rfind("--snapshot-mb=", 0) == 0) {
      snapshot_mb = std::stoull(arg.substr(14));
    } else if (arg.rfind("--gate-recovery-s=", 0) == 0) {
      gate_recovery_s = std::stod(arg.substr(18));
    } else if (arg.rfind("--gate-p99-ratio=", 0) == 0) {
      gate_p99_ratio = std::stod(arg.substr(17));
    } else if (arg.rfind("--dir=", 0) == 0) {
      dir = arg.substr(6);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::fprintf(stderr, "[r1] unknown flag %s\n", arg.c_str());
      return 1;
    }
  }
  if (dir.empty()) {
    dir = (fs::temp_directory_path() /
           ("cosm-r1-" + std::to_string(::getpid())))
              .string();
  }
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string wal_dir = dir + "/wal";
  const std::string acked_path = dir + "/acked.ids";

  // --- Phase 1: load in a child, SIGKILL it mid-write. ---
  std::fprintf(stderr, "[r1] loading %zu offers in a child (batch %zu)...\n",
               offers, batch);
  pid_t child = ::fork();
  if (child < 0) {
    std::perror("[r1] fork");
    return 1;
  }
  if (child == 0) {
    loader_child(wal_dir, acked_path, batch, snapshot_mb << 20);
  }

  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    int status = 0;
    if (::waitpid(child, &status, WNOHANG) != 0) {
      std::fprintf(stderr, "[r1] child died before reaching %zu offers\n",
                   offers);
      return 1;
    }
    std::error_code ec;
    if (fs::exists(acked_path, ec) && count_lines(acked_path) >= offers) break;
  }
  ::kill(child, SIGKILL);  // crash, not shutdown: no destructor runs
  int status = 0;
  ::waitpid(child, &status, 0);
  const std::vector<std::string> acked = read_acked(acked_path);
  std::fprintf(stderr, "[r1] killed loader; %zu acked offers\n", acked.size());

  std::size_t segments = 0;
  std::size_t snapshots = 0;
  for (const auto& entry : fs::directory_iterator(wal_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0) ++segments;
    if (name.rfind("snapshot-", 0) == 0 && name.find(".tmp") == std::string::npos) {
      ++snapshots;
    }
  }

  // --- Phase 2: recover and verify. ---
  const auto t0 = Clock::now();
  Trader trader("r1", 42, make_engine(wal_dir, snapshot_mb << 20));
  const bool had_state = trader.recover();
  const double recovery_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const std::size_t recovered = trader.offer_count();
  std::fprintf(stderr,
               "[r1] recovered %zu offers in %.3fs (%zu segments, %zu snapshots)\n",
               recovered, recovery_s, segments, snapshots);

  std::unordered_set<std::string> recovered_ids;
  recovered_ids.reserve(recovered * 2);
  std::size_t duplicates = 0;
  for (const auto& offer : trader.list_offers("CarRentalService")) {
    if (!recovered_ids.insert(offer.id).second) ++duplicates;
  }
  std::size_t missing = 0;
  for (const std::string& id : acked) {
    if (recovered_ids.count(id) == 0) ++missing;
  }

  // --- Phase 3: WAL write-path cost. ---
  const double p99_off = export_p99_us(lat_samples, "");
  const double p99_on = export_p99_us(lat_samples, dir + "/wal-lat");
  const double ratio = p99_off > 0 ? p99_on / p99_off : 0.0;
  std::fprintf(stderr, "[r1] export p99: wal-off %.2fus, wal-on %.2fus (%.2fx)\n",
               p99_off, p99_on, ratio);

  const bool passed = had_state && missing == 0 && duplicates == 0 &&
                      recovered >= acked.size() &&
                      recovery_s <= gate_recovery_s &&
                      (gate_p99_ratio <= 0 || ratio <= gate_p99_ratio);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "[r1] cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"experiment\": \"R1_recovery\",\n"
      << "  \"offers_target\": " << offers << ",\n"
      << "  \"acked\": " << acked.size() << ",\n"
      << "  \"recovered\": " << recovered << ",\n"
      << "  \"missing_acked\": " << missing << ",\n"
      << "  \"duplicate_ids\": " << duplicates << ",\n"
      << "  \"recovery_s\": " << recovery_s << ",\n"
      << "  \"gate_recovery_s\": " << gate_recovery_s << ",\n"
      << "  \"wal_segments\": " << segments << ",\n"
      << "  \"snapshots\": " << snapshots << ",\n"
      << "  \"export_p99_us_wal_off\": " << p99_off << ",\n"
      << "  \"export_p99_us_wal_on\": " << p99_on << ",\n"
      << "  \"p99_ratio\": " << ratio << ",\n"
      << "  \"gate_p99_ratio\": " << gate_p99_ratio << ",\n"
      << "  \"passed\": " << (passed ? "true" : "false") << "\n}\n";
  std::fprintf(stderr, "[r1] wrote %s\n", out_path.c_str());

  if (!passed) {
    std::fprintf(stderr, "[r1] GATE FAILED (artifacts kept in %s)\n",
                 dir.c_str());
    return 1;
  }
  fs::remove_all(dir);
  return 0;
}
