#include "services/car_rental.h"

#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/error.h"
#include "common/id.h"
#include "sidl/parser.h"

namespace cosm::services {

const std::string& car_rental_service_type_name() {
  static const std::string name = "CarRentalService";
  return name;
}

const std::vector<std::string>& car_model_pool() {
  static const std::vector<std::string> pool = {
      "AUDI", "FIAT_Uno", "VW_Golf", "RENAULT_5", "VOLVO_240", "TRABANT"};
  return pool;
}

trader::ServiceType canonical_car_rental_type() {
  trader::ServiceType type;
  type.name = car_rental_service_type_name();
  type.attributes = {
      {"CarModel", sidl::TypeDesc::enum_("CarModel_t", car_model_pool()), true},
      {"AverageMilage", sidl::TypeDesc::int_(), true},
      {"ChargePerDay", sidl::TypeDesc::float_(), true},
      {"ChargeCurrency", sidl::TypeDesc::string_(), true},
  };
  return type;
}

namespace {

/// Render a double as a SIDL float literal (always with a decimal point so
/// it re-parses as a float, never as a long).
std::string float_literal(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  std::string s = os.str();
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos) {
    s += ".0";
  }
  return s;
}

}  // namespace

std::string car_rental_sidl(const CarRentalConfig& config) {
  if (config.models.empty()) {
    throw ContractError("car rental provider needs at least one model");
  }
  std::ostringstream os;
  os << "module " << config.name << " {\n";

  os << "  typedef enum {";
  for (std::size_t i = 0; i < config.models.size(); ++i) {
    os << (i ? ", " : " ") << config.models[i];
  }
  os << " } CarModel_t;\n";

  os << "  typedef struct {\n"
        "    CarModel_t model;\n"
        "    string booking_date;\n"
        "    long days;\n";
  for (int i = 0; i < config.extra_fields; ++i) {
    os << "    optional<string> extra_" << i << ";\n";
  }
  os << "  } SelectCar_t;\n";

  os << "  typedef struct {\n"
        "    boolean available;\n"
        "    double total_charge;\n"
        "    string offer_code;\n"
        "  } SelectCarReturn_t;\n";

  os << "  typedef struct {\n"
        "    string offer_code;\n"
        "    string customer;\n"
        "  } BookCar_t;\n";

  os << "  typedef struct {\n"
        "    boolean confirmed;\n"
        "    long booking_id;\n"
        "  } BookCarResult_t;\n";

  os << "  interface COSM_Operations {\n"
        "    SelectCarReturn_t SelectCar([in] SelectCar_t selection);\n"
        "    BookCarResult_t BookCar([in] BookCar_t booking);\n"
        "    sequence<CarModel_t> ListModels();\n"
        "  };\n";

  if (config.tradable) {
    os << "  module COSM_TraderExport {\n"
          "    const string TOD = \"" << car_rental_service_type_name() << "\";\n"
          "    const CarModel_t CarModel = " << config.models.front() << ";\n"
          "    const long AverageMilage = " << config.average_milage << ";\n"
          "    const double ChargePerDay = " << float_literal(config.charge_per_day) << ";\n"
          "    const string ChargeCurrency = \"" << config.currency << "\";\n"
          "  };\n";
  }

  // The §3.1 FSM: selection may be revised while SELECTED; booking
  // completes the interaction and returns to INIT.
  os << "  module COSM_FSM {\n"
        "    states { INIT, SELECTED };\n"
        "    initial INIT;\n"
        "    transition INIT SelectCar SELECTED;\n"
        "    transition SELECTED SelectCar SELECTED;\n"
        "    transition SELECTED BookCar INIT;\n"
        "  };\n";

  os << "  module COSM_Annotations {\n"
        "    annotate " << config.name << " \"Rent a car from " << config.name
     << " (" << config.currency << " " << config.charge_per_day << "/day)\";\n"
        "    annotate SelectCar \"Select a car model and booking period; returns a quote\";\n"
        "    annotate BookCar \"Book a previously quoted offer\";\n"
        "    annotate ListModels \"List the car models on offer\";\n"
        "  };\n";

  os << "};\n";
  return os.str();
}

namespace {

struct Quote {
  std::string model;
  std::int64_t days = 0;
};

class CarRentalImpl {
 public:
  explicit CarRentalImpl(CarRentalConfig config) : config_(std::move(config)) {
    for (const auto& model : config_.models) {
      fleet_[model] = config_.fleet_per_model;
    }
  }

  wire::Value select_car(const std::vector<wire::Value>& args) {
    const wire::Value& selection = args.at(0);
    const std::string& model = selection.at("model").enum_label();
    std::int64_t days = selection.at("days").as_int();

    std::lock_guard lock(mutex_);
    bool available = days > 0 && fleet_.count(model) > 0 && fleet_[model] > 0;
    std::string offer_code;
    double total = 0.0;
    if (available) {
      total = config_.charge_per_day * static_cast<double>(days);
      offer_code = next_name(config_.name + "-offer");
      quotes_[offer_code] = Quote{model, days};
    }
    return wire::Value::structure(
        "SelectCarReturn_t",
        {{"available", wire::Value::boolean(available)},
         {"total_charge", wire::Value::real(total)},
         {"offer_code", wire::Value::string(offer_code)}});
  }

  wire::Value book_car(const std::vector<wire::Value>& args) {
    const wire::Value& booking = args.at(0);
    const std::string& offer_code = booking.at("offer_code").as_string();

    std::lock_guard lock(mutex_);
    auto it = quotes_.find(offer_code);
    bool confirmed = false;
    std::int64_t booking_id = 0;
    if (it != quotes_.end() && fleet_[it->second.model] > 0) {
      --fleet_[it->second.model];
      quotes_.erase(it);
      confirmed = true;
      booking_id = static_cast<std::int64_t>(next_id());
    }
    return wire::Value::structure(
        "BookCarResult_t",
        {{"confirmed", wire::Value::boolean(confirmed)},
         {"booking_id", wire::Value::integer(booking_id)}});
  }

  wire::Value list_models(const std::vector<wire::Value>&) const {
    std::vector<wire::Value> out;
    out.reserve(config_.models.size());
    for (const auto& model : config_.models) {
      out.push_back(wire::Value::enumerated("CarModel_t", model));
    }
    return wire::Value::sequence(std::move(out));
  }

 private:
  CarRentalConfig config_;
  std::mutex mutex_;
  std::map<std::string, std::int64_t> fleet_;
  std::map<std::string, Quote> quotes_;
};

}  // namespace

rpc::ServiceObjectPtr make_car_rental_service(const CarRentalConfig& config) {
  auto sid = std::make_shared<sidl::Sid>(sidl::parse_sid(car_rental_sidl(config)));
  auto object = std::make_shared<rpc::ServiceObject>(std::move(sid));
  auto impl = std::make_shared<CarRentalImpl>(config);

  object->on("SelectCar", [impl](const std::vector<wire::Value>& args) {
    return impl->select_car(args);
  });
  object->on("BookCar", [impl](const std::vector<wire::Value>& args) {
    return impl->book_car(args);
  });
  object->on("ListModels", [impl](const std::vector<wire::Value>& args) {
    return impl->list_models(args);
  });
  return object;
}

}  // namespace cosm::services
