// PlanCache behaviour: hit/miss accounting, invalidation on SID
// re-registration, the weak_ptr identity guard, LRU eviction, and
// concurrent first-call / invalidation races (run under TSan in CI).

#include "wire/plan_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.h"
#include "rpc/channel.h"
#include "rpc/inproc.h"
#include "rpc/server.h"
#include "rpc/service_object.h"
#include "sidl/parser.h"
#include "wire/value.h"

namespace cosm::wire {
namespace {

sidl::SidPtr make_sid(const std::string& result_type) {
  return std::make_shared<sidl::Sid>(sidl::parse_sid(
      "module Calc { interface I { " + result_type +
      " Add([in] long a, [in] long b); }; };"));
}

TEST(PlanCache, HitReturnsSamePlan) {
  PlanCache& cache = PlanCache::instance();
  cache.clear();
  sidl::SidPtr sid = make_sid("long");
  const sidl::OperationDesc& op = sid->operations[0];
  auto first = cache.operation_plan(sid, op);
  auto second = cache.operation_plan(sid, op);
  EXPECT_EQ(first.get(), second.get());
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PlanCache, InvalidateDropsEntries) {
  PlanCache& cache = PlanCache::instance();
  cache.clear();
  sidl::SidPtr sid = make_sid("long");
  const sidl::OperationDesc& op = sid->operations[0];
  auto first = cache.operation_plan(sid, op);
  cache.invalidate(sid.get());
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  auto second = cache.operation_plan(sid, op);
  EXPECT_NE(first.get(), second.get());  // freshly compiled
}

TEST(PlanCache, DeadSidNeverServesStalePlan) {
  // The ABA hazard: a Sid dies, the allocator reuses its address for a
  // *different* Sid.  The weak_ptr guard must refuse the stale entry and
  // compile a plan for the new object.
  PlanCache& cache = PlanCache::instance();
  cache.clear();
  const sidl::Sid* old_address = nullptr;
  {
    sidl::SidPtr doomed = make_sid("long");
    old_address = doomed.get();
    cache.operation_plan(doomed, doomed->operations[0]);
  }  // doomed freed; its cache entry's guard is now expired
  // Whether or not the new SID lands on the reused address, the plan served
  // for it must describe *its* signature (float result, one string param).
  sidl::SidPtr fresh = make_sid("float");
  (void)old_address;
  auto plan = cache.operation_plan(fresh, fresh->operations[0]);
  EXPECT_EQ(plan->result().type()->kind(), sidl::TypeKind::Float);
}

TEST(PlanCache, ReRegisteredSidGetsFreshPlan) {
  // End-to-end invalidation: a server that re-registers a *changed* SID
  // must never answer through a plan compiled from the old one.
  PlanCache& cache = PlanCache::instance();
  cache.clear();

  auto v1 = std::make_shared<rpc::ServiceObject>(make_sid("long"));
  v1->on("Add", [](const std::vector<Value>& args) {
    return Value::integer(args[0].as_int() + args[1].as_int());
  });
  auto v2 = std::make_shared<rpc::ServiceObject>(
      std::make_shared<sidl::Sid>(sidl::parse_sid(
          "module Calc { interface I {"
          " string Add([in] string a, [in] string b); }; };")));
  v2->on("Add", [](const std::vector<Value>& args) {
    return Value::string(args[0].as_string() + args[1].as_string());
  });

  rpc::InProcNetwork net;
  rpc::RpcServer server(net, "calc");
  sidl::ServiceRef ref = server.add(v1);
  {
    rpc::RpcChannel channel(net, ref);
    sidl::SidPtr sid = channel.fetch_sid();
    const sidl::OperationDesc* add = sid->find_operation("Add");
    ASSERT_NE(add, nullptr);
    Value sum =
        channel.call(*add, {Value::integer(2), Value::integer(3)});
    EXPECT_EQ(sum.as_int(), 5);
  }

  // Replace the service behind the same id: same operation name, changed
  // signature.  The add() hook invalidates; new calls must be validated
  // against the *new* SID.
  server.remove(ref);
  sidl::ServiceRef ref2 = server.add(v2);
  rpc::RpcChannel channel(net, ref2);
  sidl::SidPtr sid = channel.fetch_sid();
  const sidl::OperationDesc* add = sid->find_operation("Add");
  ASSERT_NE(add, nullptr);
  Value joined =
      channel.call(*add, {Value::string("ab"), Value::string("cd")});
  EXPECT_EQ(joined.as_string(), "abcd");
  // Integer arguments must now be rejected up front by the fresh plan.
  EXPECT_THROW(channel.call(*add, {Value::integer(2), Value::integer(3)}),
               TypeError);
}

TEST(PlanCache, LruEvictionBeyondCapacity) {
  PlanCache& cache = PlanCache::instance();
  cache.clear();
  cache.set_capacity(2);
  std::vector<sidl::SidPtr> keep;  // hold owners so guards stay alive
  for (int i = 0; i < 4; ++i) {
    keep.push_back(make_sid("long"));
    cache.operation_plan(keep.back(), keep.back()->operations[0]);
  }
  PlanCache::Stats stats = cache.stats();
  EXPECT_LE(stats.entries, 2u);
  EXPECT_GE(stats.evictions, 2u);
  cache.set_capacity(1024);  // restore the default for other tests
  cache.clear();
}

TEST(PlanCache, ConcurrentFirstCallsAndInvalidations) {
  // TSan stress: racing first-time compilations with invalidations and a
  // re-registration mid-flight.  Every caller must always get a usable plan
  // for the SID object it holds.
  PlanCache& cache = PlanCache::instance();
  cache.clear();
  std::atomic<bool> stop{false};
  sidl::SidPtr sid = make_sid("long");
  const sidl::OperationDesc& op = sid->operations[0];

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto plan = cache.operation_plan(sid, op);
        if (!plan || plan->operation() != op.name) failures.fetch_add(1);
        Bytes frame =
            plan->marshal_arguments({Value::integer(1), Value::integer(2)});
        if (plan->unmarshal_arguments(frame).size() != 2) failures.fetch_add(1);
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      cache.invalidate(sid.get());
      std::this_thread::yield();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  cache.clear();
}

}  // namespace
}  // namespace cosm::wire
