// ODP service types and the type manager (§2.1).
//
// "The notion of the service type plays a central role in an ODP trading
// context": a service type names an interface signature plus a set of
// characterising attributes.  The type manager is the trader's management
// interface — inserting and deleting service types at runtime is exactly
// the costly standardisation step §2.2 complains about, which is why the
// mediation path exists.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sidl/sid.h"
#include "sidl/type_desc.h"
#include "trader/attributes.h"

namespace cosm::trader {

struct AttributeDef {
  std::string name;
  sidl::TypePtr type;
  /// Required attributes must be present in every offer of the type.
  bool required = true;
};

struct ServiceType {
  std::string name;
  /// Name of the supertype ("" = none).  Offers of a subtype satisfy
  /// imports of the base type.
  std::string supertype;
  std::vector<AttributeDef> attributes;
  /// Operation signatures offers of this type must implement (empty = not
  /// checked; signature checking happens against the exporter's SID when
  /// one is provided).
  std::vector<sidl::OperationDesc> signature;

  const AttributeDef* find_attribute(const std::string& attr_name) const;
};

/// Memoized answer to "which registered types conform to this base?" —
/// the set every import and list consults before touching any offer.
/// Immutable once built; shared so the offer store can hold it across an
/// entire matching pass without re-locking the type manager.
struct SubtypeClosure {
  /// All registered types T with is_subtype(T, base), in sorted name order
  /// (the manager's iteration order, so matching stays deterministic).
  std::vector<std::string> types;
  /// Same content as `types`, for O(1) membership checks.
  std::unordered_set<std::string> members;
};
using SubtypeClosurePtr = std::shared_ptr<const SubtypeClosure>;

class ServiceTypeManager {
 public:
  /// Register a type; throws cosm::ContractError for duplicates or an
  /// unknown supertype.
  void add(ServiceType type);

  /// Remove a type; throws cosm::NotFound when unknown and
  /// cosm::ContractError when other types still derive from it.
  void remove(const std::string& name);

  bool has(const std::string& name) const;

  /// Copy of the type; throws cosm::NotFound.
  ServiceType get(const std::string& name) const;

  /// Sorted list of all type names.
  std::vector<std::string> names() const;

  /// Copies of every registered type, in sorted name order (recovery
  /// snapshots iterate this).
  std::vector<ServiceType> all() const;

  /// Observe successful add / remove (the durable trader journals type
  /// definitions through these).  Callbacks run after the mutation, with
  /// the manager's lock released; install before concurrent use.
  void set_listener(std::function<void(const ServiceType&)> on_add,
                    std::function<void(const std::string&)> on_remove);

  /// Reflexive-transitive subtype check along supertype chains.  Served
  /// from the memoized closure cache (built per base on first use,
  /// invalidated by add/remove).
  bool is_subtype(const std::string& sub, const std::string& base) const;

  /// All types T with is_subtype(T, base), including base itself.
  std::vector<std::string> subtypes_of(const std::string& base) const;

  /// Memoized closure of `base` under subtyping.  The returned object is
  /// immutable and safe to hold after the manager mutates — it describes
  /// the type graph as of the call.
  SubtypeClosurePtr subtype_closure(const std::string& base) const;

  /// How many closures were computed from scratch (cache misses, i.e.
  /// first queries plus rebuilds forced by add/remove invalidation).
  std::uint64_t closure_builds() const noexcept {
    return closure_builds_.load(std::memory_order_relaxed);
  }
  std::uint64_t closure_hits() const noexcept {
    return closure_hits_.load(std::memory_order_relaxed);
  }
  /// Zero the closure-cache counters (memoized closures stay).
  void reset_stats() noexcept {
    closure_builds_.store(0, std::memory_order_relaxed);
    closure_hits_.store(0, std::memory_order_relaxed);
  }

  /// The full attribute schema of a type, including attributes inherited
  /// along the supertype chain.  Throws cosm::NotFound.
  std::vector<AttributeDef> schema_of(const std::string& type_name) const;

  /// Validate an offer's attributes against the type's schema (required
  /// attributes present, every attribute declared and conforming).
  /// `dynamic_names` lists attributes whose values are fetched from the
  /// exporter at import time (ODP dynamic properties): they count as
  /// provided and are type-checked when fetched, not here.  Throws
  /// cosm::TypeError.
  void check_offer(const std::string& type_name, const AttrMap& attrs,
                   const std::set<std::string>& dynamic_names = {}) const;

  std::size_t size() const;

  /// Monotonic counter bumped on every add/remove.  Compiled constraint
  /// programs fold identifiers against the ever-declared attribute set and
  /// key their validity on this epoch (trader/constraint.h).
  std::uint64_t layout_epoch() const noexcept {
    return layout_epoch_.load(std::memory_order_acquire);
  }

  /// Cumulative set of attribute names any registered type has *ever*
  /// declared (grows on add, never shrinks — a folded "this name can never
  /// be an attribute" decision must stay safe across type removal followed
  /// by unrelated re-registration).  Copy-on-write snapshot: safe to hold
  /// across manager mutations.
  std::shared_ptr<const std::unordered_set<std::string>> ever_declared_attrs()
      const;

 private:
  bool is_subtype_locked(const std::string& sub, const std::string& base) const;
  SubtypeClosurePtr subtype_closure_locked(const std::string& base) const;

  mutable std::mutex mutex_;
  std::map<std::string, ServiceType> types_;
  /// base -> memoized closure; cleared whenever the type graph changes.
  mutable std::unordered_map<std::string, SubtypeClosurePtr> closure_cache_;
  mutable std::atomic<std::uint64_t> closure_builds_{0};
  mutable std::atomic<std::uint64_t> closure_hits_{0};
  std::atomic<std::uint64_t> layout_epoch_{0};
  /// COW snapshot (replaced, never mutated, under mutex_).
  std::shared_ptr<const std::unordered_set<std::string>> ever_declared_ =
      std::make_shared<const std::unordered_set<std::string>>();
  /// Mutation observers (guarded by mutex_; invoked with it released).
  std::function<void(const ServiceType&)> on_add_;
  std::function<void(const std::string&)> on_remove_;
};

/// Verify an exporter's SID implements the service type's operational
/// interface signature (§2.1: "service types identify distinct operational
/// interface signatures"): every signature operation must be present in the
/// SID with a conforming signature.  No-op when the type declares no
/// signature.  Throws cosm::TypeError.
void check_signature(const ServiceType& type, const sidl::Sid& sid);

}  // namespace cosm::trader
