#include "naming/binder.h"

#include "common/error.h"

namespace cosm::naming {

BoundService Binder::bind(const sidl::ServiceRef& ref) {
  if (!ref.valid()) throw ContractError("cannot bind an invalid reference");
  BoundService bound;
  bound.channel = std::make_unique<rpc::RpcChannel>(
      network_, ref, rpc::ChannelOptions{options_.timeout});
  if (options_.probe_on_bind) {
    bound.sid = bound.channel->fetch_sid();
    if (!ref.interface_name.empty() && bound.sid->name != ref.interface_name) {
      throw TypeError("reference '" + ref.id + "' claims interface '" +
                      ref.interface_name + "' but the server speaks '" +
                      bound.sid->name + "'");
    }
  }
  ++bindings_;
  return bound;
}

}  // namespace cosm::naming
