file(REMOVE_RECURSE
  "CMakeFiles/cosm_test_support.dir/support/generators.cpp.o"
  "CMakeFiles/cosm_test_support.dir/support/generators.cpp.o.d"
  "libcosm_test_support.a"
  "libcosm_test_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosm_test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
