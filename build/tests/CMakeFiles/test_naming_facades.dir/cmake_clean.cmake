file(REMOVE_RECURSE
  "CMakeFiles/test_naming_facades.dir/test_naming_facades.cpp.o"
  "CMakeFiles/test_naming_facades.dir/test_naming_facades.cpp.o.d"
  "test_naming_facades"
  "test_naming_facades.pdb"
  "test_naming_facades[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_naming_facades.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
