# Empty dependencies file for test_leases.
# This may be replaced when dependencies are built.
