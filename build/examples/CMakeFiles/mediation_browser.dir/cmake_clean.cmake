file(REMOVE_RECURSE
  "CMakeFiles/mediation_browser.dir/mediation_browser.cpp.o"
  "CMakeFiles/mediation_browser.dir/mediation_browser.cpp.o.d"
  "mediation_browser"
  "mediation_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mediation_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
