// Observability overhead gate: the F1 trading cycle (trader import over
// RPC, SID-transfer bind, dynamic invoke) runs three phases on one process:
//
//   1. observability disabled  — the shipping default,
//   2. metrics + tracing on    — every hot-path instrument live,
//   3. disabled again          — the same relaxed-load-only code path.
//
// Phase 3 vs phase 1 isolates the *disabled-mode* cost of the
// instrumentation sites (one relaxed atomic load each) from ordinary run
// order / cache-warmth noise: both phases execute the identical
// branch-not-taken path, so any systematic gap would mean the sites are not
// actually free when off.  The harness exits nonzero when the best phase-3
// throughput falls more than kMaxRegression below the best phase-1
// throughput, and writes the enabled-phase metrics snapshot as JSON for CI
// to archive.
//
// Usage: bench_obs_overhead [metrics-json-out]

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/runtime.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/channel.h"
#include "rpc/inproc.h"
#include "services/car_rental.h"
#include "wire/value.h"

using namespace cosm;
using Clock = std::chrono::steady_clock;
using wire::Value;

namespace {

constexpr int kCyclesPerRep = 200;
constexpr int kRepsPerPhase = 5;
constexpr double kMaxRegression = 0.03;

struct Deployment {
  rpc::InProcNetwork net;
  core::CosmRuntime runtime{net};
  sidl::ServiceRef service_ref;

  Deployment() {
    runtime.trader().types().add(services::canonical_car_rental_type());
    services::CarRentalConfig config;
    config.tradable = true;
    service_ref =
        runtime.offer_traded(services::make_car_rental_service(config)).first;
  }

  /// One F1 cycle: import over the wire, bind (SID transfer), invoke.
  void cycle() {
    rpc::RpcChannel channel(net, runtime.trader_ref());
    Value offers = channel.call(
        "Import",
        {Value::string(services::car_rental_service_type_name()),
         Value::string(""), Value::string(""), Value::integer(0),
         Value::integer(0)});
    if (offers.elements().empty()) throw std::runtime_error("no offers");
    core::GenericClient client = runtime.make_client();
    core::Binding rental =
        client.bind(trader::offer_from_value(offers.elements()[0]).ref);
    rental.invoke("ListModels", {});
  }
};

/// Best-of-N cycles/second (best-of suppresses scheduler noise, which only
/// ever subtracts throughput).
double best_throughput(Deployment& dep) {
  double best = 0.0;
  for (int rep = 0; rep < kRepsPerPhase; ++rep) {
    auto start = Clock::now();
    for (int i = 0; i < kCyclesPerRep; ++i) dep.cycle();
    double sec = std::chrono::duration<double>(Clock::now() - start).count();
    best = std::max(best, kCyclesPerRep / sec);
  }
  return best;
}

void set_observability(bool on) {
  obs::metrics().set_enabled(on);
  obs::tracer().set_enabled(on);
}

}  // namespace

int main(int argc, char** argv) {
  Deployment dep;
  set_observability(false);
  for (int i = 0; i < 50; ++i) dep.cycle();  // warm caches, pools, JIT-y paths

  double disabled_before = best_throughput(dep);

  set_observability(true);
  obs::metrics().reset();
  obs::tracer().clear();
  double enabled = best_throughput(dep);
  std::string snapshot = dep.runtime.metrics_snapshot();
  set_observability(false);

  double disabled_after = best_throughput(dep);

  double enabled_tax = 1.0 - enabled / disabled_before;
  double regression = 1.0 - disabled_after / disabled_before;

  std::printf("phase                cycles/sec\n");
  std::printf("disabled (before)    %10.0f\n", disabled_before);
  std::printf("enabled              %10.0f   (tax %.1f%%)\n", enabled,
              100.0 * enabled_tax);
  std::printf("disabled (after)     %10.0f   (regression %.1f%%)\n",
              disabled_after, 100.0 * regression);

  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << snapshot << "\n";
    std::printf("metrics snapshot written to %s\n", argv[1]);
  } else {
    std::printf("%s\n", snapshot.c_str());
  }

  if (regression > kMaxRegression) {
    std::fprintf(stderr,
                 "FAIL: disabled-mode throughput regressed %.1f%% after the "
                 "observability toggle (budget %.0f%%)\n",
                 100.0 * regression, 100.0 * kMaxRegression);
    return 1;
  }
  std::printf("OK: disabled-mode overhead within %.0f%% budget\n",
              100.0 * kMaxRegression);
  return 0;
}
