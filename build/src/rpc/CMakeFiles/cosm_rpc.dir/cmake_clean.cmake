file(REMOVE_RECURSE
  "CMakeFiles/cosm_rpc.dir/activity.cpp.o"
  "CMakeFiles/cosm_rpc.dir/activity.cpp.o.d"
  "CMakeFiles/cosm_rpc.dir/activity_facade.cpp.o"
  "CMakeFiles/cosm_rpc.dir/activity_facade.cpp.o.d"
  "CMakeFiles/cosm_rpc.dir/channel.cpp.o"
  "CMakeFiles/cosm_rpc.dir/channel.cpp.o.d"
  "CMakeFiles/cosm_rpc.dir/inproc.cpp.o"
  "CMakeFiles/cosm_rpc.dir/inproc.cpp.o.d"
  "CMakeFiles/cosm_rpc.dir/message.cpp.o"
  "CMakeFiles/cosm_rpc.dir/message.cpp.o.d"
  "CMakeFiles/cosm_rpc.dir/multicast.cpp.o"
  "CMakeFiles/cosm_rpc.dir/multicast.cpp.o.d"
  "CMakeFiles/cosm_rpc.dir/server.cpp.o"
  "CMakeFiles/cosm_rpc.dir/server.cpp.o.d"
  "CMakeFiles/cosm_rpc.dir/service_object.cpp.o"
  "CMakeFiles/cosm_rpc.dir/service_object.cpp.o.d"
  "CMakeFiles/cosm_rpc.dir/tcp.cpp.o"
  "CMakeFiles/cosm_rpc.dir/tcp.cpp.o.d"
  "CMakeFiles/cosm_rpc.dir/txn.cpp.o"
  "CMakeFiles/cosm_rpc.dir/txn.cpp.o.d"
  "libcosm_rpc.a"
  "libcosm_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosm_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
