// TCP loopback network: real sockets, length-prefixed frames.
//
// Wire format: every frame is [u32 length][u64 correlation id][payload].
// The correlation id lets a client multiplex many in-flight calls over one
// connection and match responses regardless of completion order.
//
// Server side: each listen() binds an ephemeral port on 127.0.0.1 and serves
// every accepted connection on a dedicated thread (read frame -> handler ->
// write response; sequential per connection, concurrent across connections).
//
// Client side: per endpoint, a pool of persistent connections, each with a
// dedicated reader thread settling PendingCalls by correlation id.  A call
// picks an idle pooled connection (or dials a new one up to a small cap), so
// N concurrent callers fan out over up to N connections — and therefore N
// server threads — instead of serialising behind one socket.  A timed-out
// call is abandoned, not torn down: the correlation id guarantees its late
// response cannot be mistaken for another call's, so the connection stays
// pooled (the seed implementation had to close it).

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "rpc/network.h"
#include "rpc/retry.h"

namespace cosm::rpc {

class TcpNetwork final : public Network {
 public:
  TcpNetwork() = default;
  ~TcpNetwork() override;

  std::string listen(const std::string& hint, FrameHandler handler) override;
  void unlisten(const std::string& endpoint) override;
  PendingCallPtr call_async(const std::string& endpoint, const Bytes& request,
                            const CallContext& ctx) override;
  std::string scheme() const override { return "tcp"; }

  /// Policy for *send* retries (dial + frame write).  A request that failed
  /// to reach the wire is always safe to reissue, so `only_idempotent` is
  /// ignored here; at-most-once for requests that *did* reach the server
  /// stays with the replay cache.  Defaults to RetryPolicy::transport().
  void set_send_retry_policy(RetryPolicy policy);
  RetryPolicy send_retry_policy() const;

  /// Currently pooled client connections to `endpoint` (instrumentation).
  std::size_t pooled_connections(const std::string& endpoint) const;
  /// Live per-connection serving threads of the listener bound at
  /// `endpoint`; finished threads are reaped on the next accept
  /// (instrumentation).
  std::size_t serving_threads(const std::string& endpoint) const;
  /// Send attempts that were retried after a dial/write failure
  /// (instrumentation).
  std::uint64_t send_retries() const noexcept {
    return send_retries_.load(std::memory_order_relaxed);
  }

 private:
  struct Listener;
  struct ClientConn;

  std::shared_ptr<ClientConn> checkout_conn(const std::string& endpoint);
  void close_all();

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Listener>> listeners_;
  /// Pooled client connections: endpoint -> live connections.
  std::map<std::string, std::vector<std::shared_ptr<ClientConn>>> pools_;
  RetryPolicy send_retry_ = RetryPolicy::transport();
  // Jitter for send-retry backoff; its own lock so backoff sleep decisions
  // never contend with pool checkout.
  mutable std::mutex rng_mutex_;
  Rng rng_{0x7c9};
  std::atomic<std::uint64_t> send_retries_{0};
};

}  // namespace cosm::rpc
