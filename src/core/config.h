// CosmConfig: the one validated configuration object for the assembled
// stack.
//
// Historically every layer grew its own options struct (ServerOptions,
// TraderTuning, FederationOptions, ReplicationOptions, TransportOptions)
// and RuntimeOptions was a bag of all of them with no cross-field checks:
// a store_shards of 500 was silently clamped to 64, a zero-capacity
// constraint cache with the selection VM on silently fell back to the
// tree-walk path, and a typo'd durability directory surfaced as an fopen
// error deep inside the WAL.  CosmConfig keeps the per-layer structs (they
// belong to their components) but owns the *validation*: invalid
// combinations throw cosm::ContractError up front, and the few remaining
// benign clamps are counted into the `config.adjusted` metric instead of
// happening silently.
//
// Construction is fluent:
//
//   auto cfg = cosm::core::CosmConfig()
//                  .with_at_most_once()
//                  .with_durability("/var/lib/cosm/trader")
//                  .with_store_shards(16)
//                  .with_replication_pump();
//   cosm::core::CosmRuntime runtime(network, cfg);
//
// `RuntimeOptions` remains as a deprecated alias so existing call sites
// keep compiling (field names are unchanged).

#pragma once

#include <cstddef>
#include <string>

#include "rpc/retry.h"
#include "rpc/server.h"
#include "rpc/transport_options.h"
#include "trader/replication.h"
#include "trader/storage/storage_engine.h"
#include "trader/trader.h"

namespace cosm::core {

/// Observability switches.  Both default off: the instrumentation sites
/// then cost one relaxed atomic load each and take no clocks or locks.
/// The metrics registry and tracer are process-wide singletons, so enabling
/// them on any runtime enables them for every runtime in the process.
struct ObservabilityOptions {
  /// Registry counters/gauges/latency histograms on the hot paths.
  bool metrics = false;
  /// Span recording + trace-context propagation across hops.
  bool tracing = false;
  /// Span ring capacity when tracing is on (oldest spans overwritten).
  std::size_t trace_capacity = 4096;
};

struct CosmConfig {
  rpc::ServerOptions server{};
  /// Governs the runtime's own outbound calls (dynamic-property fetches,
  /// link_trader gateways); callers opt individual clients in via
  /// GenericClientOptions.
  rpc::RetryPolicy retry{};
  trader::FederationOptions federation{};
  /// Matching-engine knobs, including the offer store's writer shard count
  /// and hot-type split threshold (applied at construction, while the
  /// store is still empty — the only time re-sharding is allowed).
  trader::TraderTuning trader_tuning{};
  /// Federation v2 replication tuning (batch sizes, flush and digest
  /// cadence) — see trader/replication.h.
  trader::ReplicationOptions replication{};
  /// Start the trader's background replication pump at construction.  Off
  /// by default: a runtime that never subscribes (or drives
  /// flush_replication()/anti_entropy_tick() itself, as the tests do)
  /// should not pay for an idle thread.
  bool replication_pump = false;
  ObservabilityOptions observability{};
  /// Rides along for callers constructing the network themselves
  /// (`rpc::TcpNetwork net(cfg.transport)`) — the runtime does not own the
  /// network, so it cannot apply these itself.
  rpc::TransportOptions transport{};
  /// Durability: when `durable` is set the runtime journals every trader
  /// mutation to `storage.directory` (write-ahead log + periodic
  /// snapshots) and recovers the full market state at construction.  See
  /// trader/storage/storage_engine.h.
  bool durable = false;
  trader::storage::StorageOptions storage{};
  /// Trader name override ("" = automatic).  Non-durable runtimes auto-mint
  /// a process-unique name (offer ids embed it, so co-resident traders must
  /// not collide).  Durable runtimes derive it from storage.directory
  /// instead: the name is the trader's *replication identity* — subscribers
  /// key replicas by it — so a restarted trader must come back as the same
  /// publisher for its re-armed subscriptions to reconcile rather than
  /// duplicate.  Set this explicitly to pin an identity across machines.
  std::string trader_name;

  // ---- fluent builders (each returns *this for chaining) ----

  /// Journal trader state under `directory`; `fsync` extends the crash
  /// model from process death to power loss (at a large latency cost).
  CosmConfig& with_durability(std::string directory, bool fsync = false) {
    durable = true;
    storage.directory = std::move(directory);
    storage.fsync = fsync;
    return *this;
  }
  /// At-most-once RPC execution backed by a replay cache of this capacity.
  CosmConfig& with_at_most_once(std::size_t replay_capacity = 4096) {
    server.at_most_once = true;
    server.replay_cache_capacity = replay_capacity;
    return *this;
  }
  CosmConfig& with_store_shards(std::size_t shards) {
    trader_tuning.store_shards = shards;
    return *this;
  }
  CosmConfig& with_replication_pump(bool on = true) {
    replication_pump = on;
    return *this;
  }
  CosmConfig& with_metrics(bool on = true) {
    observability.metrics = on;
    return *this;
  }
  CosmConfig& with_tracing(bool on = true, std::size_t capacity = 4096) {
    observability.tracing = on;
    observability.trace_capacity = capacity;
    return *this;
  }
  CosmConfig& with_retry(rpc::RetryPolicy policy) {
    retry = policy;
    return *this;
  }
  CosmConfig& with_trader_name(std::string name) {
    trader_name = std::move(name);
    return *this;
  }

  /// Validate and normalise.  Invalid combinations throw
  /// cosm::ContractError:
  ///   * store_shards of 0 or > 64 (the sharded store's hard bound),
  ///   * the selection VM enabled with a zero-capacity constraint cache
  ///     (compiled programs would be rebuilt on every import),
  ///   * durability with an empty directory,
  ///   * at-most-once with a zero-capacity replay cache.
  /// The remaining benign clamps (zero replication batch/pending floors,
  /// zero trace capacity) are applied to the returned copy and counted —
  /// the runtime surfaces the count as the `config.adjusted` metric.
  /// `adjusted_out` (optional) receives the number of clamped fields.
  CosmConfig validated(std::size_t* adjusted_out = nullptr) const;
};

/// Deprecated spelling kept for source compatibility; use CosmConfig.
using RuntimeOptions [[deprecated("use cosm::core::CosmConfig")]] = CosmConfig;

}  // namespace cosm::core
