#include "wire/codec.h"

#include <algorithm>

#include "common/error.h"
#include "sidl/parser.h"
#include "sidl/printer.h"

namespace cosm::wire {

void encode_value(ByteWriter& w, const Value& v) {
  switch (v.kind()) {
    case ValueKind::Null:
      w.u8(kTagNull);
      return;
    case ValueKind::Bool:
      w.u8(v.as_bool() ? kTagTrue : kTagFalse);
      return;
    case ValueKind::Int:
      w.u8(kTagInt);
      w.svarint(v.as_int());
      return;
    case ValueKind::Float:
      w.u8(kTagFloat);
      w.f64(v.as_real());
      return;
    case ValueKind::String:
      w.u8(kTagString);
      w.str(v.as_string());
      return;
    case ValueKind::Enum:
      w.u8(kTagEnum);
      w.str(v.type_name());
      w.str(v.enum_label());
      return;
    case ValueKind::Struct: {
      w.u8(kTagStruct);
      w.str(v.type_name());
      w.varint(v.field_count());
      for (std::size_t i = 0; i < v.field_count(); ++i) {
        w.str(v.field_name(i));
        encode_value(w, v.field(i));
      }
      return;
    }
    case ValueKind::Sequence: {
      w.u8(kTagSequence);
      w.varint(v.elements().size());
      for (const Value& e : v.elements()) encode_value(w, e);
      return;
    }
    case ValueKind::Optional:
      if (v.has_payload()) {
        w.u8(kTagOptPresent);
        encode_value(w, v.payload());
      } else {
        w.u8(kTagOptAbsent);
      }
      return;
    case ValueKind::ServiceRef:
      w.u8(kTagServiceRef);
      w.str(v.as_ref().to_string());
      return;
    case ValueKind::Sid:
      w.u8(kTagSid);
      w.str(sidl::print_sid(*v.as_sid()));
      return;
  }
  throw WireError("encode_value: unknown value kind");
}

Bytes encode_value(const Value& value) {
  ByteWriter w;
  encode_value(w, value);
  return w.take();
}

Value decode_value_body(std::uint8_t tag, ByteReader& r) {
  switch (tag) {
    case kTagNull:
      return Value::null();
    case kTagFalse:
      return Value::boolean(false);
    case kTagTrue:
      return Value::boolean(true);
    case kTagInt:
      return Value::integer(r.svarint());
    case kTagFloat:
      return Value::real(r.f64());
    case kTagString:
      return Value::string(r.str());
    case kTagEnum: {
      std::string type_name = r.str();
      std::string label = r.str();
      if (label.empty()) throw WireError("enum value with empty label");
      return Value::enumerated(std::move(type_name), std::move(label));
    }
    case kTagStruct: {
      std::string type_name = r.str();
      std::uint64_t n = r.varint();
      std::vector<std::pair<std::string, Value>> fields;
      // Clamp the reservation: `n` is attacker-controlled and each field
      // costs at least one byte, so reserving past remaining() could only
      // serve a frame that is guaranteed to underrun anyway.
      fields.reserve(std::min<std::uint64_t>(n, r.remaining()));
      for (std::uint64_t i = 0; i < n; ++i) {
        std::string name = r.str();
        fields.emplace_back(std::move(name), decode_value(r));
      }
      return Value::structure(std::move(type_name), std::move(fields));
    }
    case kTagSequence: {
      std::uint64_t n = r.varint();
      std::vector<Value> elems;
      elems.reserve(std::min<std::uint64_t>(n, r.remaining()));
      for (std::uint64_t i = 0; i < n; ++i) elems.push_back(decode_value(r));
      return Value::sequence(std::move(elems));
    }
    case kTagOptAbsent:
      return Value::optional_absent();
    case kTagOptPresent:
      return Value::optional_of(decode_value(r));
    case kTagServiceRef:
      return Value::service_ref(sidl::ServiceRef::from_string(r.str()));
    case kTagSid: {
      std::string text = r.str();
      try {
        auto sid = std::make_shared<sidl::Sid>(sidl::parse_sid(text));
        return Value::sid(std::move(sid));
      } catch (const ParseError& e) {
        throw WireError(std::string("SID payload failed to parse: ") + e.what());
      }
    }
    default:
      throw WireError("decode_value: unknown tag " + std::to_string(tag));
  }
}

Value decode_value(ByteReader& r) { return decode_value_body(r.u8(), r); }

Value decode_value(const Bytes& bytes) {
  ByteReader r(bytes);
  Value v = decode_value(r);
  if (!r.at_end()) {
    throw WireError("decode_value: " + std::to_string(r.remaining()) +
                    " trailing bytes");
  }
  return v;
}

}  // namespace cosm::wire
