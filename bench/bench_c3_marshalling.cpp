// Experiment C3 (§3.1): dynamic vs static marshalling.
//
// The generic client marshals against *transferred* type descriptions; the
// pre-COSM baseline compiles the layout in.  Expected shape: dynamic
// marshalling is a small-constant-factor slower (interpretation +
// self-describing tags) — the price of openness — and the gap narrows as
// payloads grow (string copying dominates).

#include <benchmark/benchmark.h>

#include "sidl/parser.h"
#include "wire/codec.h"
#include "wire/marshal.h"
#include "wire/static_codec.h"

namespace {

using namespace cosm;
using wire::Value;

Value select_value(int extras) {
  std::vector<Value> extra_list;
  for (int i = 0; i < extras; ++i) {
    extra_list.push_back(Value::string("extra-item-" + std::to_string(i)));
  }
  return Value::structure(
      "BookCar_t", {{"offer_code", Value::string("offer-4711")},
                    {"customer", Value::string("K. Mueller")},
                    {"extras", Value::sequence(std::move(extra_list))}});
}

sidl::TypePtr book_type() {
  return sidl::parse_type(
      "struct BookCar_t { string offer_code; string customer; "
      "sequence<string> extras; }");
}

wire::static_stub::BookCarRequest select_struct(int extras) {
  wire::static_stub::BookCarRequest m;
  m.offer_code = "offer-4711";
  m.customer = "K. Mueller";
  for (int i = 0; i < extras; ++i) m.extras.push_back("extra-item-" + std::to_string(i));
  return m;
}

void BM_DynamicMarshal(benchmark::State& state) {
  wire::DynamicMarshaller marshaller(book_type());
  Value v = select_value(static_cast<int>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    Bytes b = marshaller.marshal(v);
    bytes = b.size();
    benchmark::DoNotOptimize(b);
  }
  state.counters["extras"] = static_cast<double>(state.range(0));
  state.counters["wire_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_DynamicMarshal)->RangeMultiplier(4)->Range(0, 64);

void BM_StaticMarshal(benchmark::State& state) {
  auto m = select_struct(static_cast<int>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    ByteWriter w;
    wire::static_stub::encode(w, m);
    bytes = w.size();
    benchmark::DoNotOptimize(w);
  }
  state.counters["extras"] = static_cast<double>(state.range(0));
  state.counters["wire_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_StaticMarshal)->RangeMultiplier(4)->Range(0, 64);

void BM_DynamicUnmarshal(benchmark::State& state) {
  wire::DynamicMarshaller marshaller(book_type());
  Bytes b = marshaller.marshal(select_value(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    Value v = marshaller.unmarshal(b);
    benchmark::DoNotOptimize(v);
  }
  state.counters["extras"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DynamicUnmarshal)->RangeMultiplier(4)->Range(0, 64);

void BM_StaticUnmarshal(benchmark::State& state) {
  ByteWriter w;
  wire::static_stub::encode(w, select_struct(static_cast<int>(state.range(0))));
  Bytes b = w.take();
  for (auto _ : state) {
    ByteReader r(b);
    auto m = wire::static_stub::decode_book_car_request(r);
    benchmark::DoNotOptimize(m);
  }
  state.counters["extras"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_StaticUnmarshal)->RangeMultiplier(4)->Range(0, 64);

void BM_DynamicValidationOnly(benchmark::State& state) {
  // The type-check half of dynamic marshalling, isolated.
  auto type = book_type();
  Value v = select_value(16);
  for (auto _ : state) {
    bool ok = wire::conforms(v, *type);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_DynamicValidationOnly);

void BM_SidTransferCost(benchmark::State& state) {
  // Encoding a SID value (print + tag) vs its reuse over many calls: the
  // one-off cost dynamic marshalling amortises.
  auto sid = std::make_shared<sidl::Sid>(sidl::parse_sid(R"(
    module M {
      typedef struct { string a; long b; } T_t;
      interface I { T_t Op([in] T_t x); };
    };
  )"));
  Value v = Value::sid(sid);
  for (auto _ : state) {
    Bytes b = wire::encode_value(v);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_SidTransferCost);

}  // namespace

BENCHMARK_MAIN();
