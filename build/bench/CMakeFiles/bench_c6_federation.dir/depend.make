# Empty dependencies file for bench_c6_federation.
# This may be replaced when dependencies are built.
