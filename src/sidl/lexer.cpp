#include "sidl/lexer.h"

#include <cctype>

#include "common/error.h"

namespace cosm::sidl {

std::string to_string(TokKind kind) {
  switch (kind) {
    case TokKind::Ident: return "identifier";
    case TokKind::IntLit: return "integer literal";
    case TokKind::FloatLit: return "float literal";
    case TokKind::StringLit: return "string literal";
    case TokKind::LBrace: return "'{'";
    case TokKind::RBrace: return "'}'";
    case TokKind::LParen: return "'('";
    case TokKind::RParen: return "')'";
    case TokKind::LBracket: return "'['";
    case TokKind::RBracket: return "']'";
    case TokKind::LAngle: return "'<'";
    case TokKind::RAngle: return "'>'";
    case TokKind::Semi: return "';'";
    case TokKind::Comma: return "','";
    case TokKind::Equals: return "'='";
    case TokKind::Minus: return "'-'";
    case TokKind::End: return "end of input";
  }
  return "?";
}

namespace {

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  bool done() const noexcept { return pos_ >= src_.size(); }
  char peek() const noexcept { return done() ? '\0' : src_[pos_]; }
  char peek2() const noexcept {
    return pos_ + 1 < src_.size() ? src_[pos_ + 1] : '\0';
  }

  char advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  std::size_t pos() const noexcept { return pos_; }
  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  Cursor cur(source);

  auto error = [&](const std::string& msg) -> ParseError {
    return ParseError(msg, cur.line(), cur.column());
  };

  while (!cur.done()) {
    char c = cur.peek();

    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.advance();
      continue;
    }
    // Line comment.
    if (c == '/' && cur.peek2() == '/') {
      while (!cur.done() && cur.peek() != '\n') cur.advance();
      continue;
    }
    // Block comment.
    if (c == '/' && cur.peek2() == '*') {
      int start_line = cur.line();
      cur.advance();
      cur.advance();
      bool closed = false;
      while (!cur.done()) {
        if (cur.peek() == '*' && cur.peek2() == '/') {
          cur.advance();
          cur.advance();
          closed = true;
          break;
        }
        cur.advance();
      }
      if (!closed) {
        throw ParseError("unterminated block comment", start_line, 1);
      }
      continue;
    }

    Token tok;
    tok.line = cur.line();
    tok.column = cur.column();
    tok.begin = cur.pos();

    if (is_ident_start(c)) {
      std::string text;
      while (!cur.done() && is_ident_char(cur.peek())) text.push_back(cur.advance());
      tok.kind = TokKind::Ident;
      tok.text = std::move(text);
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && std::isdigit(static_cast<unsigned char>(cur.peek2())))) {
      std::string text;
      if (c == '-') text.push_back(cur.advance());
      bool is_float = false;
      while (!cur.done()) {
        char d = cur.peek();
        if (std::isdigit(static_cast<unsigned char>(d))) {
          text.push_back(cur.advance());
        } else if (d == '.' && !is_float &&
                   std::isdigit(static_cast<unsigned char>(cur.peek2()))) {
          is_float = true;
          text.push_back(cur.advance());
        } else if ((d == 'e' || d == 'E') &&
                   (std::isdigit(static_cast<unsigned char>(cur.peek2())) ||
                    cur.peek2() == '-' || cur.peek2() == '+')) {
          is_float = true;
          text.push_back(cur.advance());
          if (cur.peek() == '-' || cur.peek() == '+') text.push_back(cur.advance());
        } else {
          break;
        }
      }
      tok.kind = is_float ? TokKind::FloatLit : TokKind::IntLit;
      tok.text = std::move(text);
    } else if (c == '"') {
      cur.advance();  // opening quote
      std::string text;
      bool closed = false;
      while (!cur.done()) {
        char d = cur.advance();
        if (d == '"') {
          closed = true;
          break;
        }
        if (d == '\\') {
          if (cur.done()) break;
          char e = cur.advance();
          switch (e) {
            case 'n': text.push_back('\n'); break;
            case 't': text.push_back('\t'); break;
            case '\\': text.push_back('\\'); break;
            case '"': text.push_back('"'); break;
            default: text.push_back(e); break;
          }
        } else if (d == '\n') {
          throw error("newline in string literal");
        } else {
          text.push_back(d);
        }
      }
      if (!closed) throw error("unterminated string literal");
      tok.kind = TokKind::StringLit;
      tok.text = std::move(text);
    } else {
      cur.advance();
      switch (c) {
        case '{': tok.kind = TokKind::LBrace; break;
        case '}': tok.kind = TokKind::RBrace; break;
        case '(': tok.kind = TokKind::LParen; break;
        case ')': tok.kind = TokKind::RParen; break;
        case '[': tok.kind = TokKind::LBracket; break;
        case ']': tok.kind = TokKind::RBracket; break;
        case '<': tok.kind = TokKind::LAngle; break;
        case '>': tok.kind = TokKind::RAngle; break;
        case ';': tok.kind = TokKind::Semi; break;
        case ',': tok.kind = TokKind::Comma; break;
        case '=': tok.kind = TokKind::Equals; break;
        case '-': tok.kind = TokKind::Minus; break;
        default:
          throw ParseError(std::string("unexpected character '") + c + "'",
                           tok.line, tok.column);
      }
      tok.text = std::string(1, c);
    }

    tok.end = cur.pos();
    tokens.push_back(std::move(tok));
  }

  Token end;
  end.kind = TokKind::End;
  end.line = cur.line();
  end.column = cur.column();
  end.begin = end.end = cur.pos();
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace cosm::sidl
