#include "trader/trader.h"

#include <algorithm>
#include <set>
#include <thread>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/call_context.h"
#include "trader/cexpr_ir.h"
#include "wire/marshal.h"

namespace cosm::trader {

Trader::Trader(std::string name, std::uint64_t rng_seed)
    : name_(std::move(name)), rng_(rng_seed) {
  if (name_.empty()) throw ContractError("trader needs a name");
}

void Trader::set_tuning(const TraderTuning& tuning) {
  OfferStore::Tuning store_tuning;
  store_tuning.enable_indexes = tuning.enable_indexes;
  store_tuning.shard_count = tuning.store_shards;
  store_tuning.hot_split_threshold = tuning.hot_split_threshold;
  store_.set_tuning(store_tuning);
  constraint_cache_.set_capacity(tuning.constraint_cache_capacity);
  preference_cache_.set_capacity(tuning.constraint_cache_capacity);
  selection_vm_enabled_.store(tuning.enable_selection_vm,
                              std::memory_order_relaxed);
}

void Trader::set_dynamic_fetcher(DynamicFetcher fetcher) {
  std::lock_guard lock(mutex_);
  dynamic_fetcher_ = std::move(fetcher);
}

std::string Trader::export_offer(const std::string& service_type,
                                 const sidl::ServiceRef& ref, AttrMap attributes) {
  return export_offer(service_type, ref, std::move(attributes), {});
}

std::string Trader::export_offer(const std::string& service_type,
                                 const sidl::ServiceRef& ref, AttrMap attributes,
                                 std::map<std::string, std::string> dynamic_attrs) {
  if (!ref.valid()) throw ContractError("cannot export an invalid reference");
  std::set<std::string> dynamic_names;
  for (const auto& [attr, operation] : dynamic_attrs) {
    if (operation.empty()) {
      throw ContractError("dynamic attribute '" + attr + "' needs an operation");
    }
    dynamic_names.insert(attr);
  }
  types_.check_offer(service_type, attributes, dynamic_names);
  Offer offer;
  offer.id = name_ + "/offer-" +
             std::to_string(next_offer_.fetch_add(1, std::memory_order_relaxed));
  offer.service_type = service_type;
  offer.ref = ref;
  offer.attributes = std::move(attributes);
  offer.dynamic_attrs = std::move(dynamic_attrs);
  std::string id = offer.id;
  store_.insert(std::make_shared<const Offer>(std::move(offer)),
                types_.schema_of(service_type));
  exports_.fetch_add(1, std::memory_order_relaxed);
  auto& reg = obs::metrics();
  if (reg.enabled()) {
    static obs::Counter& exports = reg.counter("trader.exports");
    exports.add();
  }
  return id;
}

std::vector<std::string> Trader::export_batch(
    const std::string& service_type, std::vector<BatchOfferSpec> specs) {
  // Validate every spec before applying any: a bulk publisher with one bad
  // offer gets a clean failure, not a half-registered batch.
  for (const BatchOfferSpec& spec : specs) {
    if (!spec.ref.valid()) {
      throw ContractError("cannot export an invalid reference");
    }
    std::set<std::string> dynamic_names;
    for (const auto& [attr, operation] : spec.dynamic_attrs) {
      if (operation.empty()) {
        throw ContractError("dynamic attribute '" + attr +
                            "' needs an operation");
      }
      dynamic_names.insert(attr);
    }
    types_.check_offer(service_type, spec.attributes, dynamic_names);
  }

  std::vector<std::string> ids;
  ids.reserve(specs.size());
  std::vector<OfferPtr> offers;
  offers.reserve(specs.size());
  for (BatchOfferSpec& spec : specs) {
    Offer offer;
    offer.id = name_ + "/offer-" +
               std::to_string(next_offer_.fetch_add(1, std::memory_order_relaxed));
    offer.service_type = service_type;
    offer.ref = spec.ref;
    offer.attributes = std::move(spec.attributes);
    offer.dynamic_attrs = std::move(spec.dynamic_attrs);
    ids.push_back(offer.id);
    offers.push_back(std::make_shared<const Offer>(std::move(offer)));
  }
  store_.insert_batch(std::move(offers), types_.schema_of(service_type));
  exports_.fetch_add(ids.size(), std::memory_order_relaxed);
  auto& reg = obs::metrics();
  if (reg.enabled()) {
    static obs::Counter& exports = reg.counter("trader.exports");
    exports.add(ids.size());
  }
  return ids;
}

bool Trader::resolve_dynamic(const Offer& offer, AttrMap& merged) {
  DynamicFetcher fetcher;
  {
    std::lock_guard lock(mutex_);
    fetcher = dynamic_fetcher_;
  }
  if (!fetcher) return false;  // unresolved dynamics: conservative no-match
  std::vector<AttributeDef> schema = types_.schema_of(offer.service_type);
  for (const auto& [attr, operation] : offer.dynamic_attrs) {
    wire::Value value;
    try {
      value = fetcher(offer.ref, operation);
      dynamic_fetches_.fetch_add(1, std::memory_order_relaxed);
    } catch (const Error&) {
      return false;  // exporter unreachable or faulted
    }
    for (const auto& def : schema) {
      if (def.name == attr && !wire::conforms(value, *def.type)) {
        return false;  // exporter returned an ill-typed property value
      }
    }
    merged[attr] = std::move(value);
  }
  return true;
}

void Trader::set_lease(const std::string& offer_id,
                       std::uint64_t expires_at_hours) {
  OfferPtr current = store_.find(offer_id);
  if (!current) {
    throw NotFound("no offer '" + offer_id + "' at trader '" + name_ + "'");
  }
  Offer leased = *current;
  leased.lease_expires_at = expires_at_hours;
  if (!store_.replace(offer_id, std::make_shared<const Offer>(std::move(leased)))) {
    throw NotFound("no offer '" + offer_id + "' at trader '" + name_ + "'");
  }
}

std::size_t Trader::advance_clock(std::uint64_t hours) {
  std::uint64_t now;
  {
    std::lock_guard lock(mutex_);
    clock_hours_ += hours;
    now = clock_hours_;
  }
  std::size_t swept = store_.erase_if([now](const Offer& offer) {
    return offer.lease_expires_at != 0 && offer.lease_expires_at <= now;
  });
  expired_.fetch_add(swept, std::memory_order_relaxed);
  return swept;
}

std::uint64_t Trader::clock_hours() const {
  std::lock_guard lock(mutex_);
  return clock_hours_;
}

void Trader::withdraw(const std::string& offer_id) {
  if (!store_.erase(offer_id)) {
    throw NotFound("no offer '" + offer_id + "' at trader '" + name_ + "'");
  }
}

std::size_t Trader::withdraw_batch(const std::vector<std::string>& offer_ids) {
  return store_.withdraw_batch(offer_ids);
}

std::size_t Trader::modify_batch(
    std::vector<std::pair<std::string, AttrMap>> changes) {
  // Resolve + validate first (throws before anything is applied); unknown
  // ids drop out here, mirroring withdraw_batch's skip semantics.
  std::vector<std::pair<std::string, OfferPtr>> resolved;
  resolved.reserve(changes.size());
  for (auto& [offer_id, attributes] : changes) {
    OfferPtr current = store_.find(offer_id);
    if (!current) continue;
    types_.check_offer(current->service_type, attributes);
    Offer modified = *current;
    modified.attributes = std::move(attributes);
    resolved.emplace_back(offer_id,
                          std::make_shared<const Offer>(std::move(modified)));
  }
  return store_.modify_batch(std::move(resolved));
}

void Trader::modify(const std::string& offer_id, AttrMap attributes) {
  OfferPtr current = store_.find(offer_id);
  if (!current) {
    throw NotFound("no offer '" + offer_id + "' at trader '" + name_ + "'");
  }
  types_.check_offer(current->service_type, attributes);
  Offer modified = *current;
  modified.attributes = std::move(attributes);
  if (!store_.replace(offer_id,
                      std::make_shared<const Offer>(std::move(modified)))) {
    throw NotFound("offer '" + offer_id + "' vanished during modify");
  }
}

std::vector<Offer> Trader::list_offers(const std::string& service_type) const {
  if (!types_.has(service_type)) {
    throw NotFound("unknown service type '" + service_type + "'");
  }
  std::vector<StoredOffer> stored =
      store_.collect_all(types_.subtype_closure(service_type)->types);
  std::sort(stored.begin(), stored.end(),
            [](const StoredOffer& a, const StoredOffer& b) {
              return a.seq < b.seq;
            });
  std::vector<Offer> out;
  out.reserve(stored.size());
  for (const StoredOffer& so : stored) out.push_back(*so.offer);
  return out;
}

std::vector<Offer> Trader::match_local(const ImportRequest& request,
                                       const Constraint& constraint) {
  // Candidates come out of a copy-free store snapshot — concurrent
  // exports/withdraws never block this, and dynamic-property fetches (RPCs
  // to exporters) happen with no trader lock held.  The store narrows by
  // type bucket and secondary index; the constraint is (re-)evaluated on
  // every candidate, so narrowing only has to be a superset of the truth.
  SubtypeClosurePtr closure = types_.subtype_closure(request.service_type);
  MatchStats stats;
  std::vector<StoredOffer> candidates =
      store_.collect(closure->types, constraint, &stats);
  evaluated_.fetch_add(stats.type_candidates, std::memory_order_relaxed);
  scanned_.fetch_add(stats.scanned, std::memory_order_relaxed);
  // Export order across buckets — keeps ranking deterministic and
  // identical to the pre-index linear scan.
  std::sort(candidates.begin(), candidates.end(),
            [](const StoredOffer& a, const StoredOffer& b) {
              return a.seq < b.seq;
            });
  std::vector<Offer> matched;
  for (const StoredOffer& candidate : candidates) {
    const Offer& offer = *candidate.offer;
    if (offer.dynamic_attrs.empty()) {
      // Only matching offers are ever copied out of the snapshot.
      if (constraint.eval(offer.attributes)) matched.push_back(offer);
      continue;
    }
    AttrMap merged = offer.attributes;
    if (!resolve_dynamic(offer, merged)) continue;
    if (constraint.eval(merged)) {
      // The importer sees the fetched values (they are what matched).
      Offer fresh = offer;
      fresh.attributes = std::move(merged);
      matched.push_back(std::move(fresh));
    }
  }
  return matched;
}

std::vector<Trader::ScoredMatch> Trader::match_scored(
    const ImportRequest& request, const CompiledPreference& pref) {
  SubtypeClosurePtr closure = types_.subtype_closure(request.service_type);
  const detail::ScoreIr& ir = *pref.preference.score();
  std::vector<ScoredMatch> out;

  if (selection_vm_enabled_.load(std::memory_order_relaxed)) {
    // Read the layout epoch BEFORE the ever-declared snapshot: the set only
    // grows, and each add/remove replaces the set before bumping the epoch,
    // so the snapshot read second covers at least everything declared as of
    // the epoch read first — a program cached under that epoch can never
    // have folded a name the snapshot declares.  The reversed order could.
    std::uint64_t epoch = types_.layout_epoch();
    auto declared = types_.ever_declared_attrs();
    auto compiled =
        constraint_cache_.get_compiled(request.constraint, epoch, declared);

    TopKQuery query;
    query.types = closure->types;
    query.constraint = &compiled->constraint;
    query.filter = compiled->filter;
    query.score = &ir;
    query.score_prog = pref.score_prog;
    query.k = request.max_matches;
    TopKResult top = store_.collect_top_k(query);
    evaluated_.fetch_add(top.stats.type_candidates, std::memory_order_relaxed);
    scanned_.fetch_add(top.stats.scanned, std::memory_order_relaxed);
    offers_scored_.fetch_add(top.stats.scored, std::memory_order_relaxed);
    heap_prunes_.fetch_add(top.stats.heap_prunes, std::memory_order_relaxed);

    out.reserve(top.ranked.size() + top.dynamic.size());
    for (const ScoredOffer& so : top.ranked) {
      out.push_back({so.score, so.key, *so.stored.offer});
    }
    // Dynamic offers come back unfiltered and unscored — their values only
    // exist after the fetch.  Resolve, filter on the fetched values, score,
    // and let the caller's merge re-rank.
    for (const StoredOffer& so : top.dynamic) {
      AttrMap merged = so.offer->attributes;
      if (!resolve_dynamic(*so.offer, merged)) continue;
      if (!compiled->constraint.eval(merged)) continue;
      double score = detail::eval_score(ir, merged);
      offers_scored_.fetch_add(1, std::memory_order_relaxed);
      Offer fresh = *so.offer;
      fresh.attributes = std::move(merged);
      out.push_back({score, detail::score_rank_key(score), std::move(fresh)});
    }
    return out;
  }

  // Reference path (VM off): collect, tree-walk the constraint, score every
  // match, no pruning.  The caller's final sort produces the same order the
  // top-k engine would have.
  std::shared_ptr<const Constraint> constraint =
      constraint_cache_.get(request.constraint);
  MatchStats stats;
  std::vector<StoredOffer> candidates =
      store_.collect(closure->types, *constraint, &stats);
  evaluated_.fetch_add(stats.type_candidates, std::memory_order_relaxed);
  scanned_.fetch_add(stats.scanned, std::memory_order_relaxed);
  for (const StoredOffer& candidate : candidates) {
    const Offer& offer = *candidate.offer;
    if (offer.dynamic_attrs.empty()) {
      if (!constraint->eval(offer.attributes)) continue;
      double score = detail::eval_score(ir, offer.attributes);
      offers_scored_.fetch_add(1, std::memory_order_relaxed);
      out.push_back({score, detail::score_rank_key(score), offer});
      continue;
    }
    AttrMap merged = offer.attributes;
    if (!resolve_dynamic(offer, merged)) continue;
    if (!constraint->eval(merged)) continue;
    double score = detail::eval_score(ir, merged);
    offers_scored_.fetch_add(1, std::memory_order_relaxed);
    Offer fresh = offer;
    fresh.attributes = std::move(merged);
    out.push_back({score, detail::score_rank_key(score), std::move(fresh)});
  }
  return out;
}

std::vector<Offer> Trader::import(const ImportRequest& request) {
  return import_ex(request).offers;
}

ImportResult Trader::import_ex(const ImportRequest& request) {
  if (!types_.has(request.service_type)) {
    throw NotFound("trader '" + name_ + "' has no service type '" +
                   request.service_type + "'");
  }
  if (request.expired()) {
    throw RpcError("deadline exceeded before import at trader '" + name_ + "'");
  }
  auto& reg = obs::metrics();
  auto& tr = obs::tracer();
  std::chrono::steady_clock::time_point started{};
  if (reg.enabled()) started = std::chrono::steady_clock::now();
  obs::Span span;
  if (tr.enabled()) {
    // Parent preference: ids carried on the request (RPC facade / federated
    // hop), falling back to the calling thread's context (local import made
    // from inside a traced dispatch).
    std::uint64_t trace = request.trace_id;
    std::uint64_t parent = request.parent_span_id;
    if (trace == 0) {
      const rpc::CallContext& ctx = rpc::current_call_context();
      trace = ctx.trace_id;
      parent = ctx.span_id;
    }
    span = tr.start_span("trader.import:" + request.service_type, trace, parent);
  }
  // Compiled constraints and preferences are cached by text: repeated
  // local imports and federation-forwarded imports (which carry both texts
  // verbatim) share one AST and one bytecode program.
  std::shared_ptr<const CompiledPreference> pref =
      preference_cache_.get(request.preference);
  const bool scored = pref->preference.kind() == PreferenceKind::Score;

  ImportResult result;
  std::vector<ScoredMatch> scored_matched;
  std::vector<Offer> matched;
  if (scored) {
    scored_matched = match_scored(request, *pref);
  } else {
    std::shared_ptr<const Constraint> constraint =
        constraint_cache_.get(request.constraint);
    matched = match_local(request, *constraint);
  }

  // Federation sweep: forward with a decremented hop budget; duplicate
  // offers (diamond topologies) collapse on offer id.  Merging in link
  // order keeps the result deterministic.  A failing link yields a Failed
  // outcome and a reduced result set, never a failed import; a link over
  // its failure threshold is quarantined and skipped entirely until its
  // TTL expires.
  if (request.hop_limit > 0) {
    ImportRequest forwarded = request;
    forwarded.hop_limit = request.hop_limit - 1;
    if (scored) {
      // Score ranking is deterministic across traders — same expression,
      // same tie-break on offer id — so every hop ranks with the forwarded
      // preference and returns only its best max_matches: any offer it
      // drops is dominated by k it returns, so the global top k is intact.
    } else {
      forwarded.max_matches = 0;     // rank after the merge, not per trader
      forwarded.preference.clear();  // remote ranking would be wasted work
    }
    if (span.valid()) {
      // Federated hops hang under this trader's import span.
      forwarded.trace_id = span.trace_id;
      forwarded.parent_span_id = span.span_id;
    }
    std::vector<std::vector<Offer>> per_link = sweep_links(forwarded, result);

    if (scored) {
      // Remote offers are rescored locally — a merge must never depend on
      // another trader's arithmetic — and deduplicated local-first by id.
      const detail::ScoreIr& ir = *pref->preference.score();
      std::set<std::string> seen;
      for (const auto& m : scored_matched) seen.insert(m.offer.id);
      for (auto& link_offers : per_link) {
        for (Offer& offer : link_offers) {
          if (!seen.insert(offer.id).second) continue;
          double score = detail::eval_score(ir, offer.attributes);
          offers_scored_.fetch_add(1, std::memory_order_relaxed);
          scored_matched.push_back(
              {score, detail::score_rank_key(score), std::move(offer)});
        }
      }
    } else {
      std::set<std::string> seen;
      for (const auto& offer : matched) seen.insert(offer.id);
      for (auto& link_offers : per_link) {
        for (Offer& offer : link_offers) {
          if (seen.insert(offer.id).second) matched.push_back(std::move(offer));
        }
      }
    }
  }

  // Rank and cap.
  imports_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Offer> ranked;
  if (scored) {
    // Deterministic federation-wide order: rank key descending, offer id
    // ascending — every trader agrees regardless of merge arrival order.
    std::sort(scored_matched.begin(), scored_matched.end(),
              [](const ScoredMatch& a, const ScoredMatch& b) {
                if (a.key != b.key) return a.key > b.key;
                return a.offer.id < b.offer.id;
              });
    if (request.max_matches > 0 &&
        scored_matched.size() > request.max_matches) {
      scored_matched.resize(request.max_matches);
    }
    ranked.reserve(scored_matched.size());
    for (ScoredMatch& m : scored_matched) ranked.push_back(std::move(m.offer));
  } else if (pref->preference.kind() == PreferenceKind::First) {
    // "first" keeps the merge order as-is: no attribute-pointer vector, no
    // permutation, no rng traffic — the default preference costs nothing.
    ranked = std::move(matched);
  } else {
    std::vector<const AttrMap*> attr_ptrs;
    attr_ptrs.reserve(matched.size());
    for (const auto& offer : matched) attr_ptrs.push_back(&offer.attributes);
    std::vector<std::size_t> order;
    {
      std::lock_guard lock(rng_mutex_);
      order = pref->preference.rank(attr_ptrs, rng_);
    }
    ranked.reserve(matched.size());
    for (std::size_t idx : order) ranked.push_back(std::move(matched[idx]));
  }
  if (request.max_matches > 0 && ranked.size() > request.max_matches) {
    ranked.resize(request.max_matches);
  }
  result.offers = std::move(ranked);
  if (span.valid()) {
    tr.finish(std::move(span),
              std::to_string(result.offers.size()) + " offers");
  }
  if (reg.enabled()) {
    static obs::Counter& imports = reg.counter("trader.imports");
    imports.add();
    if (started != std::chrono::steady_clock::time_point{}) {
      static obs::Histogram& latency = reg.histogram("trader.import_latency_us");
      latency.record_us(obs::elapsed_us(started));
    }
  }
  return result;
}

// All links are queried concurrently — in a federation every hop is a
// network round trip, so a sequential sweep costs the sum of the link
// latencies where this costs the maximum.
std::vector<std::vector<Offer>> Trader::sweep_links(
    const ImportRequest& forwarded, ImportResult& result) {
  auto& reg = obs::metrics();
  struct SweepTarget {
    std::string name;
    std::shared_ptr<TraderGateway> gateway;  // null when quarantined
  };
  std::vector<SweepTarget> targets;
  {
    std::lock_guard lock(mutex_);
    auto now = std::chrono::steady_clock::now();
    targets.reserve(links_.size());
    for (const auto& link : links_) {
      bool quarantined = link.quarantined_until > now;
      targets.push_back({link.name, quarantined ? nullptr : link.gateway});
    }
  }
  std::vector<std::vector<Offer>> per_link(targets.size());
  std::vector<std::string> per_link_error(targets.size());
  std::vector<std::uint64_t> per_link_us(targets.size(), 0);
  auto query = [&](std::size_t i) {
    std::chrono::steady_clock::time_point t0{};
    if (reg.enabled()) t0 = std::chrono::steady_clock::now();
    try {
      per_link[i] = targets[i].gateway->import(forwarded);
    } catch (const Error& e) {
      // An unreachable federated trader reduces the result set; it must
      // not fail the local import.
      per_link_error[i] = e.what();
    }
    if (reg.enabled() && t0 != std::chrono::steady_clock::time_point{}) {
      per_link_us[i] = obs::elapsed_us(t0);
    }
  };
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (targets[i].gateway) active.push_back(i);
  }
  if (active.size() == 1) {
    query(active.front());
  } else if (!active.empty()) {
    std::vector<std::thread> sweep;
    sweep.reserve(active.size());
    for (std::size_t i : active) sweep.emplace_back(query, i);
    for (auto& t : sweep) t.join();
  }

  result.links.reserve(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    LinkOutcome outcome;
    outcome.link = targets[i].name;
    if (!targets[i].gateway) {
      outcome.status = LinkOutcome::Status::Quarantined;
    } else if (!per_link_error[i].empty()) {
      outcome.status = LinkOutcome::Status::Failed;
      outcome.error = per_link_error[i];
    } else {
      outcome.offers = per_link[i].size();
    }
    if (reg.enabled()) {
      // Per-link instruments are looked up by name (registry map, not a
      // static handle) — link sets are dynamic and the sweep already paid
      // for a network round trip.
      const std::string base = "trader.link." + targets[i].name;
      switch (outcome.status) {
        case LinkOutcome::Status::Ok:
          reg.counter(base + ".ok").add();
          break;
        case LinkOutcome::Status::Failed:
          reg.counter(base + ".failed").add();
          break;
        case LinkOutcome::Status::Quarantined:
          reg.counter(base + ".quarantined").add();
          break;
      }
      if (targets[i].gateway) {
        reg.histogram(base + ".latency_us").record_us(per_link_us[i]);
      }
    }
    result.links.push_back(std::move(outcome));
  }
  note_link_outcomes(result.links);
  if (reg.enabled()) {
    static obs::Gauge& quarantined = reg.gauge("trader.links_quarantined");
    std::lock_guard lock(mutex_);
    auto now = std::chrono::steady_clock::now();
    std::int64_t active = 0;
    for (const auto& link : links_) {
      if (link.quarantined_until > now) ++active;
    }
    quarantined.set(active);
  }

  return per_link;
}

void Trader::reset_stats() {
  evaluated_.store(0, std::memory_order_relaxed);
  scanned_.store(0, std::memory_order_relaxed);
  offers_scored_.store(0, std::memory_order_relaxed);
  heap_prunes_.store(0, std::memory_order_relaxed);
  dynamic_fetches_.store(0, std::memory_order_relaxed);
  store_.reset_stats();
  constraint_cache_.reset_stats();
  preference_cache_.reset_stats();
  types_.reset_stats();
}

/// Fold one sweep's outcomes into the links' failure counters: success
/// resets, failure increments, and crossing the threshold starts a
/// quarantine window.  A link unlinked mid-sweep is simply skipped.
void Trader::note_link_outcomes(const std::vector<LinkOutcome>& outcomes) {
  std::lock_guard lock(mutex_);
  auto now = std::chrono::steady_clock::now();
  for (const auto& outcome : outcomes) {
    if (outcome.status == LinkOutcome::Status::Quarantined) continue;
    for (auto& link : links_) {
      if (link.name != outcome.link) continue;
      if (outcome.status == LinkOutcome::Status::Ok) {
        link.consecutive_failures = 0;
      } else {
        ++link.consecutive_failures;
        if (link.consecutive_failures >= federation_.quarantine_threshold) {
          link.quarantined_until = now + federation_.quarantine_ttl;
          link.consecutive_failures = 0;
          quarantined_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      break;
    }
  }
}

void Trader::link(const std::string& link_name,
                  std::shared_ptr<TraderGateway> gateway) {
  if (!gateway) throw ContractError("link needs a gateway");
  std::lock_guard lock(mutex_);
  for (const auto& existing : links_) {
    if (existing.name == link_name) {
      throw ContractError("trader '" + name_ + "' already has a link '" +
                          link_name + "'");
    }
  }
  links_.push_back(Link{link_name, std::move(gateway), 0, {}});
}

void Trader::unlink(const std::string& link_name) {
  std::lock_guard lock(mutex_);
  for (auto it = links_.begin(); it != links_.end(); ++it) {
    if (it->name == link_name) {
      links_.erase(it);
      return;
    }
  }
  throw NotFound("trader '" + name_ + "' has no link '" + link_name + "'");
}

std::vector<std::string> Trader::links() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(links_.size());
  for (const auto& link : links_) out.push_back(link.name);
  return out;
}

void Trader::set_federation_options(FederationOptions options) {
  std::lock_guard lock(mutex_);
  if (options.quarantine_threshold < 1) options.quarantine_threshold = 1;
  federation_ = options;
}

FederationOptions Trader::federation_options() const {
  std::lock_guard lock(mutex_);
  return federation_;
}

LinkHealth Trader::link_health(const std::string& link_name) const {
  std::lock_guard lock(mutex_);
  for (const auto& link : links_) {
    if (link.name != link_name) continue;
    LinkHealth health;
    health.consecutive_failures = link.consecutive_failures;
    health.quarantined =
        link.quarantined_until > std::chrono::steady_clock::now();
    return health;
  }
  throw NotFound("trader '" + name_ + "' has no link '" + link_name + "'");
}

std::size_t Trader::offer_count() const { return store_.size(); }

}  // namespace cosm::trader
