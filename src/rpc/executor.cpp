#include "rpc/executor.h"

#include <algorithm>

#include "common/error.h"

namespace cosm::rpc {

namespace {

std::size_t default_workers() {
  // Workers exist to overlap waiting (simulated LAN latency, nested round
  // trips), so size past the core count; clamp to keep small test fixtures
  // cheap.
  std::size_t hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw * 2, 8, 32);
}

}  // namespace

Executor::Executor(std::size_t workers) {
  if (workers == 0) workers = default_workers();
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
  // Drain stragglers submitted after the workers left (none should remain in
  // normal shutdown, but an unsettled task would hang its waiter forever).
  for (auto& task : queue_) task->run_if_unclaimed();
}

Executor::TaskPtr Executor::submit(std::function<void()> fn) {
  if (!fn) throw ContractError("Executor::submit: task must be callable");
  auto task = std::make_shared<Task>(std::move(fn));
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(task);
  }
  work_cv_.notify_one();
  return task;
}

void Executor::worker_loop() {
  for (;;) {
    TaskPtr task;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping with nothing left to do
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task->run_if_unclaimed();
  }
}

}  // namespace cosm::rpc
