# Empty compiler generated dependencies file for trading_market.
# This may be replaced when dependencies are built.
