// The ODP trader (§2, Fig. 1).
//
// Exporters register typed service offers (step 1); importers issue typed
// requests with constraint and preference (step 2); the trader returns
// ranked matching offers (step 3); binding happens outside the trader
// (steps 4–5 — see naming::Binder).
//
// Federation (§2.2 "trader federation … for geographic scopes"): a trader
// holds links to other traders; an import with hop_limit > 0 is propagated
// with a decremented limit, results are merged and deduplicated by offer id.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sidl/service_ref.h"
#include "trader/attributes.h"
#include "trader/constraint.h"
#include "trader/offer_store.h"
#include "trader/preference.h"
#include "trader/service_type.h"

namespace cosm::trader {

// struct Offer lives in trader/offer_store.h (re-exported here: the store
// owns the published representation, the trader owns the protocol).

struct ImportRequest {
  /// Service type to match (offers of subtypes match too).
  std::string service_type;
  /// Constraint expression over service properties ("" = all offers).
  std::string constraint;
  /// Ranking policy ("" = export order).
  std::string preference;
  /// Cap on returned offers (0 = unlimited).
  std::size_t max_matches = 0;
  /// Federation propagation budget: 0 = local only.
  int hop_limit = 0;
  /// Absolute deadline for the whole import, including federated hops
  /// (default-constructed = none).  Carried explicitly — not via the
  /// thread-local CallContext — because the federation sweep fans out on
  /// worker threads; the RPC facade translates it back into each forwarded
  /// call's budget.
  std::chrono::steady_clock::time_point deadline{};
  /// Trace correlation, carried explicitly for the same reason as the
  /// deadline: sweep worker threads have no thread-local CallContext to
  /// inherit from.  0 = untraced.  The facade stamps these from the
  /// dispatching server's context; the trader parents its import span here
  /// and forwards its own span id to federated hops.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;

  bool has_deadline() const noexcept {
    return deadline != std::chrono::steady_clock::time_point{};
  }
  bool expired() const noexcept {
    return has_deadline() && std::chrono::steady_clock::now() >= deadline;
  }
};

/// Abstract link target for federation: another trader reachable either
/// in-process (tests) or over RPC (see facade.h).
class TraderGateway {
 public:
  virtual ~TraderGateway() = default;
  virtual std::vector<Offer> import(const ImportRequest& request) = 0;
  virtual std::string describe() const = 0;
};

/// How federation survives misbehaving links (graceful degradation).
struct FederationOptions {
  /// Consecutive failures before a link is quarantined.
  int quarantine_threshold = 3;
  /// How long a quarantined link is skipped before it is probed again.
  std::chrono::milliseconds quarantine_ttl{2000};
};

/// Per-link result of one federated sweep.
struct LinkOutcome {
  enum class Status {
    Ok,           ///< link answered; `offers` merged
    Failed,       ///< link raised; `error` holds the reason
    Quarantined,  ///< link skipped: still inside its negative-TTL window
  };

  std::string link;
  Status status = Status::Ok;
  /// Failure reason (Status::Failed only).
  std::string error;
  /// Offers the link returned before deduplication (Status::Ok only).
  std::size_t offers = 0;

  bool ok() const noexcept { return status == Status::Ok; }
};

/// A federated import's answer: the merged, ranked offers plus what happened
/// on every federation link consulted (empty when the import stayed local).
/// A dead link degrades the result set; it never fails the import.
struct ImportResult {
  std::vector<Offer> offers;
  std::vector<LinkOutcome> links;

  bool degraded() const noexcept {
    for (const auto& outcome : links) {
      if (!outcome.ok()) return true;
    }
    return false;
  }
};

/// Health snapshot of one federation link (instrumentation).
struct LinkHealth {
  int consecutive_failures = 0;
  bool quarantined = false;
};

/// Matching-engine knobs (benchmarking, ops overrides).  Defaults are what
/// production runs with.
struct TraderTuning {
  /// Secondary attribute indexes on the offer store; off = linear bucket
  /// scans (the pre-index behaviour, kept as baseline and safety valve).
  bool enable_indexes = true;
  /// Bytecode-VM top-k selection for `score:` preferences; off = collect
  /// all candidates, tree-walk the constraint and score, and full-sort —
  /// the reference path (baseline, safety valve, and the differential
  /// tests' oracle).  Results are identical either way.
  bool enable_selection_vm = true;
  /// Compiled-constraint LRU entries (0 disables the cache).  The compiled-
  /// preference cache shares this capacity.
  std::size_t constraint_cache_capacity = 128;
  /// Offer-store writer shards (clamped to [1, 64]).  Takes effect while
  /// the store is empty; ignored once offers exist.
  std::size_t store_shards = 8;
  /// Live offers of one service type before its new offers hash-split
  /// across all shards instead of homing on one (0 = never split).
  std::size_t hot_split_threshold = 65536;
};

/// One offer of an export_batch call (the id is minted by the trader).
struct BatchOfferSpec {
  sidl::ServiceRef ref;
  AttrMap attributes;
  std::map<std::string, std::string> dynamic_attrs;
};

class Trader {
 public:
  explicit Trader(std::string name, std::uint64_t rng_seed = 42);

  /// Apply matching-engine tuning; safe at any point, takes effect for
  /// subsequent imports.
  void set_tuning(const TraderTuning& tuning);

  const std::string& name() const noexcept { return name_; }

  /// The type manager doubles as the trader's management interface (§2.1).
  ServiceTypeManager& types() noexcept { return types_; }
  const ServiceTypeManager& types() const noexcept { return types_; }

  /// How the trader evaluates dynamic properties: invoke `operation` on the
  /// exporter and return the scalar result.  Installed by the runtime
  /// (wired to an RPC channel); absent by default, in which case offers
  /// with unresolved dynamic attributes simply do not match.
  using DynamicFetcher =
      std::function<wire::Value(const sidl::ServiceRef& exporter,
                                const std::string& operation)>;

  void set_dynamic_fetcher(DynamicFetcher fetcher);

  /// Register an offer (Fig. 1 step 1).  Validates that the type exists and
  /// the attributes satisfy its schema.  Returns the offer id.
  std::string export_offer(const std::string& service_type,
                           const sidl::ServiceRef& ref, AttrMap attributes);

  /// Register an offer with ODP dynamic properties: `dynamic_attrs` maps
  /// attribute names to the exporter operation that yields the current
  /// value.  Dynamic attributes satisfy required-attribute checks at export
  /// and are fetched + type-checked during each import.
  std::string export_offer(const std::string& service_type,
                           const sidl::ServiceRef& ref, AttrMap attributes,
                           std::map<std::string, std::string> dynamic_attrs);

  /// Register a batch of offers of one service type, validating every spec
  /// before any is applied (all-or-nothing on validation errors) and
  /// amortising store locking and index maintenance across the batch.
  /// Returns the minted offer ids, in spec order.
  std::vector<std::string> export_batch(const std::string& service_type,
                                        std::vector<BatchOfferSpec> specs);

  /// Remove an offer; throws cosm::NotFound.
  void withdraw(const std::string& offer_id);

  /// Remove a batch of offers; unknown ids are skipped (bulk callers want
  /// idempotency, not per-id faults).  Returns how many were removed.
  std::size_t withdraw_batch(const std::vector<std::string>& offer_ids);

  // --- offer leases (ODP-style bounded offer lifetime) ---
  // The trader keeps a logical clock in hours; an offer with a lease is
  // swept when the clock passes its expiry.  Exporters renew by calling
  // set_lease again.

  /// Give an offer a lease expiring at `expires_at_hours` on the trader's
  /// logical clock (0 removes the lease).  Throws cosm::NotFound.
  void set_lease(const std::string& offer_id, std::uint64_t expires_at_hours);

  /// Advance the logical clock, sweeping expired offers; returns how many
  /// were swept.
  std::size_t advance_clock(std::uint64_t hours);

  std::uint64_t clock_hours() const;
  std::uint64_t offers_expired_total() const noexcept {
    return expired_.load(std::memory_order_relaxed);
  }

  /// Replace an offer's attributes; throws cosm::NotFound / cosm::TypeError.
  void modify(const std::string& offer_id, AttrMap attributes);

  /// modify() over a batch: each change is schema-checked (throws
  /// cosm::TypeError on the first ill-typed one, applying nothing);
  /// unknown ids are skipped.  Returns how many were applied.
  std::size_t modify_batch(std::vector<std::pair<std::string, AttrMap>> changes);

  /// All offers of a type (and its subtypes), in export order.
  std::vector<Offer> list_offers(const std::string& service_type) const;

  /// Match + rank (Fig. 1 steps 2–3), consulting federation links within
  /// the request's hop limit.  Links are queried concurrently (one thread
  /// per additional link); results merge in link order, so the outcome is
  /// deterministic.  Throws cosm::ParseError on a bad constraint or
  /// preference, cosm::NotFound for an unknown service type, and
  /// cosm::RpcError when the request's deadline has already passed.
  std::vector<Offer> import(const ImportRequest& request);

  /// import() plus per-link outcomes: a failing federated link degrades the
  /// result set (tagged Failed) instead of failing the import, and a link
  /// that keeps failing is quarantined for FederationOptions::quarantine_ttl
  /// (tagged Quarantined, not queried at all) before being probed again.
  ImportResult import_ex(const ImportRequest& request);

  // --- federation ---
  void link(const std::string& link_name, std::shared_ptr<TraderGateway> gateway);
  void unlink(const std::string& link_name);
  std::vector<std::string> links() const;

  void set_federation_options(FederationOptions options);
  FederationOptions federation_options() const;

  /// Failure/quarantine state of one link; throws cosm::NotFound.
  LinkHealth link_health(const std::string& link_name) const;

  // --- instrumentation ---
  std::uint64_t exports_total() const noexcept {
    return exports_.load(std::memory_order_relaxed);
  }
  std::uint64_t imports_total() const noexcept {
    return imports_.load(std::memory_order_relaxed);
  }
  /// Type-conforming offers considered per import (what a linear scan of
  /// the conforming buckets would have evaluated) — the pre-index metric.
  std::uint64_t offers_evaluated() const noexcept {
    return evaluated_.load(std::memory_order_relaxed);
  }
  /// Candidates the constraint was actually evaluated on, after index
  /// narrowing.  scanned << evaluated is the index paying off.
  std::uint64_t offers_scanned() const noexcept {
    return scanned_.load(std::memory_order_relaxed);
  }
  /// Bucket lookups served from a secondary index.
  std::uint64_t index_lookups() const noexcept {
    return store_.index_lookups();
  }
  std::uint64_t constraint_cache_hits() const noexcept {
    return constraint_cache_.hits();
  }
  std::uint64_t constraint_cache_misses() const noexcept {
    return constraint_cache_.misses();
  }
  /// LRU drops plus type-layout-epoch invalidations of compiled constraints.
  std::uint64_t constraint_cache_evictions() const noexcept {
    return constraint_cache_.evictions();
  }
  /// Nanoseconds spent parsing + bytecode-compiling constraints (misses).
  std::uint64_t constraint_cache_compile_ns() const noexcept {
    return constraint_cache_.compile_ns();
  }
  std::uint64_t preference_cache_hits() const noexcept {
    return preference_cache_.hits();
  }
  std::uint64_t preference_cache_misses() const noexcept {
    return preference_cache_.misses();
  }
  std::uint64_t preference_cache_evictions() const noexcept {
    return preference_cache_.evictions();
  }
  std::uint64_t preference_cache_compile_ns() const noexcept {
    return preference_cache_.compile_ns();
  }
  /// Score evaluations on the `score:` import path (VM or tree-walk).
  std::uint64_t offers_scored() const noexcept {
    return offers_scored_.load(std::memory_order_relaxed);
  }
  /// Candidates the top-k engine skipped without scoring because a score
  /// bound proved they cannot displace the current k-th entry.
  std::uint64_t heap_prunes() const noexcept {
    return heap_prunes_.load(std::memory_order_relaxed);
  }
  std::uint64_t dynamic_fetches() const noexcept {
    return dynamic_fetches_.load(std::memory_order_relaxed);
  }
  std::uint64_t links_quarantined_total() const noexcept {
    return quarantined_.load(std::memory_order_relaxed);
  }
  std::size_t offer_count() const;

  // --- offer-store health (feeds the runtime's metrics snapshot) ---
  std::uint64_t store_base_rebuilds() const noexcept {
    return store_.base_rebuilds();
  }
  std::uint64_t store_epoch() const noexcept { return store_.epoch(); }
  /// How far the oldest pinned reader trails the store's publication epoch
  /// (0 = no reader pinned); retired state cannot be reclaimed past this.
  std::uint64_t store_epoch_lag() const { return store_.epoch_lag(); }
  std::size_t store_shard_count() const { return store_.shard_count(); }
  std::vector<OfferStore::ShardStats> store_shard_stats() const {
    return store_.shard_stats();
  }

  /// Zero the matching-engine instrumentation counters (offers_evaluated,
  /// offers_scanned, dynamic_fetches, index lookups, constraint-cache and
  /// closure-cache hit/miss) so a measurement window can read absolute
  /// values instead of deltas.  Lifecycle totals (exports/imports/expired/
  /// quarantined) and all cached state are untouched.
  void reset_stats();

 private:
  /// A federation link plus its failure-tracking state (guarded by mutex_).
  struct Link {
    std::string name;
    std::shared_ptr<TraderGateway> gateway;
    int consecutive_failures = 0;
    std::chrono::steady_clock::time_point quarantined_until{};
  };

  std::vector<Offer> match_local(const ImportRequest& request,
                                 const Constraint& constraint);

  /// A locally matched offer with its score and rank key (the `score:`
  /// import path; key = detail::score_rank_key(score)).
  struct ScoredMatch {
    double score = 0.0;
    double key = 0.0;
    Offer offer;
  };
  /// Local matching for Score preferences: the store's top-k engine when
  /// the selection VM is enabled, otherwise collect + tree-walk + score
  /// everything (the reference path).  Dynamic offers are resolved,
  /// filtered and scored here either way.
  std::vector<ScoredMatch> match_scored(const ImportRequest& request,
                                        const CompiledPreference& pref);

  /// Query every live federation link concurrently with `forwarded`,
  /// recording per-link outcomes (and quarantine bookkeeping) into
  /// `result.links`.  Returns each link's offers, in link order.
  std::vector<std::vector<Offer>> sweep_links(const ImportRequest& forwarded,
                                              ImportResult& result);

  void note_link_outcomes(const std::vector<LinkOutcome>& outcomes);

  std::string name_;
  ServiceTypeManager types_;

  /// Resolve an offer's dynamic attributes into a merged attribute map;
  /// returns false when a fetch fails or yields a non-conforming value (the
  /// offer then does not match).
  bool resolve_dynamic(const Offer& offer, AttrMap& merged);

  // Offers live in the snapshot-concurrent indexed store; mutex_ guards
  // only the trader's control plane (links, options, fetcher, clock).
  OfferStore store_;
  ConstraintCache constraint_cache_;
  PreferenceCache preference_cache_;
  std::atomic<bool> selection_vm_enabled_{true};

  mutable std::mutex mutex_;
  std::vector<Link> links_;
  FederationOptions federation_;
  DynamicFetcher dynamic_fetcher_;
  // Ranking may happen on any importer thread; the rng has its own lock so
  // a Random-preference rank never serialises against offer mutation.
  mutable std::mutex rng_mutex_;
  Rng rng_;
  std::atomic<std::uint64_t> exports_{0};
  std::atomic<std::uint64_t> imports_{0};
  std::atomic<std::uint64_t> evaluated_{0};
  std::atomic<std::uint64_t> scanned_{0};
  std::atomic<std::uint64_t> offers_scored_{0};
  std::atomic<std::uint64_t> heap_prunes_{0};
  std::atomic<std::uint64_t> dynamic_fetches_{0};
  std::atomic<std::uint64_t> quarantined_{0};
  std::atomic<std::uint64_t> next_offer_{1};
  std::uint64_t clock_hours_ = 0;
  std::atomic<std::uint64_t> expired_{0};
};

/// In-process gateway wrapping a local trader (unit tests, single-process
/// federations).
class LocalTraderGateway final : public TraderGateway {
 public:
  explicit LocalTraderGateway(Trader& trader) : trader_(trader) {}
  std::vector<Offer> import(const ImportRequest& request) override {
    return trader_.import(request);
  }
  std::string describe() const override { return "local:" + trader_.name(); }

 private:
  Trader& trader_;
};

}  // namespace cosm::trader
