// Experiment F2 (Fig. 2 / §3.1): SID record subtyping.
//
// A SID grows extension modules this component does not understand; the
// parser must skip them while preserving their text, and conformance to the
// base SID must keep holding.  Expected shape: parse cost grows mildly
// (linearly in skipped text), conformance cost is independent of the number
// of unknown extensions.

#include <benchmark/benchmark.h>

#include <sstream>

#include "sidl/parser.h"
#include "sidl/printer.h"
#include "sidl/sid.h"

namespace {

using namespace cosm;

std::string sid_with_extensions(int extensions) {
  std::ostringstream os;
  os << "module Extended {\n"
        "  typedef enum { A, B, C } Mode_t;\n"
        "  typedef struct { Mode_t mode; string note; long count; } Req_t;\n"
        "  interface I {\n"
        "    Req_t Process([in] Req_t request);\n"
        "    void Reset();\n"
        "  };\n";
  for (int i = 0; i < extensions; ++i) {
    os << "  module Vendor_Ext_" << i << " {\n"
          "    const long Version = " << i << ";\n"
          "    const string Blob = \"payload payload payload payload\";\n"
          "    module Nested { const boolean Deep = true; };\n"
          "  };\n";
  }
  os << "};\n";
  return os.str();
}

void BM_ParseWithUnknownExtensions(benchmark::State& state) {
  std::string text = sid_with_extensions(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    sidl::Sid sid = sidl::parse_sid(text);
    benchmark::DoNotOptimize(sid);
  }
  state.counters["extensions"] = static_cast<double>(state.range(0));
  state.counters["source_bytes"] = static_cast<double>(text.size());
}
BENCHMARK(BM_ParseWithUnknownExtensions)->DenseRange(0, 16, 4);

void BM_ConformanceCheckVsExtensions(benchmark::State& state) {
  sidl::Sid base = sidl::parse_sid(sid_with_extensions(0));
  sidl::Sid extended = sidl::parse_sid(
      sid_with_extensions(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    bool ok = sidl::conforms_to(extended, base);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["extensions"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ConformanceCheckVsExtensions)->DenseRange(0, 16, 4);

void BM_ForwardExtendedSid(benchmark::State& state) {
  // A base-only component re-emits (prints) a SID whose extensions it never
  // interpreted — the two-hop transmission that makes open extension work.
  sidl::Sid sid = sidl::parse_sid(sid_with_extensions(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    std::string text = sidl::print_sid(sid);
    benchmark::DoNotOptimize(text);
  }
  state.counters["extensions"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ForwardExtendedSid)->DenseRange(0, 16, 8);

}  // namespace

BENCHMARK_MAIN();
