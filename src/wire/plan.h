// Compiled marshal plans: TypeDesc lowered to a flat opcode program.
//
// The dynamic marshaller (marshal.h) walks the TypeDesc tree twice per call:
// once in check() — which also builds "$.field" path strings eagerly — and
// once in encode_value().  A MarshalPlan compiles the description ONCE into a
// flat array of opcodes with every constant byte run precomputed (struct
// headers, field-name prefixes with the child's wire tag fused in, enum
// headers), then executes calls with a single pass that validates and
// encodes together.  This keeps the openness property the paper builds on —
// plans are compiled from *transferred* SIDs at runtime, not from stubs —
// while recovering most of the cost stub compilers avoid.
//
// Behavioural contract: for every input, a plan behaves exactly like the
// interpreted reference (`ensure_conforms` + `encode_value`, or
// `decode_value` + `ensure_conforms`): identical bytes on conforming values,
// identical exception class/message/ordering otherwise.  The fast path only
// detects *that* something is wrong; when it does, the work is rolled back
// and replayed through the interpreted path, which produces the canonical
// error.  Replay costs one extra pass but only ever runs on invalid input.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"
#include "sidl/sid.h"
#include "sidl/type_desc.h"
#include "wire/value.h"

namespace cosm::wire {

/// A compiled encoder/decoder for one TypeDesc.
class MarshalPlan {
 public:
  /// Compiles the type; throws cosm::ContractError on a null type.
  explicit MarshalPlan(sidl::TypePtr type);

  /// Validate + encode into the writer's arena (appends; on failure the
  /// writer is rolled back to its prior size).  Throws cosm::TypeError with
  /// the interpreted marshaller's exact message on non-conforming values.
  void marshal_into(ByteWriter& writer, const Value& value) const;

  /// Convenience: validate + encode into a fresh buffer.
  Bytes marshal(const Value& value) const;

  /// Decode + validate in one pass.  Throws cosm::WireError on malformed
  /// bytes, cosm::TypeError on non-conforming values, both with the
  /// interpreted path's exact messages.
  Value unmarshal(BytesView bytes) const;
  Value unmarshal(const Bytes& bytes) const {
    return unmarshal(BytesView(bytes.data(), bytes.size()));
  }

  const sidl::TypePtr& type() const noexcept { return type_; }

  /// Number of opcodes in the compiled program (introspection for tests).
  std::size_t op_count() const noexcept { return ops_.size(); }

 private:
  enum class OpCode : std::uint8_t {
    Null,    // void: value must be Null; encodes as a single constant tag
    Bool,    // tag depends on the value, so never fused
    Int,     // tag + zig-zag varint
    Float,   // tag + fixed 8-byte IEEE double
    String,  // tag + varint length + bytes
    Ref,     // tag + stringified ServiceRef
    Sid,     // tag + printed SIDL text
    Any,     // top type: generic encode/decode, no checking
    Enum,    // a = index into enums_
    Struct,  // a = index into structs_
    Seq,     // a = child op index
    Opt,     // a = child op index
  };
  struct Op {
    OpCode code;
    std::uint32_t a = 0;
  };
  struct EnumInfo {
    std::string name;
    Bytes header;  // [kTagEnum][str name] — used when the value's name matches
    std::unordered_set<std::string> labels;  // interned label table
  };
  struct StructField {
    std::string name;
    // Fast-path constant: [str name] with the child's wire tag fused onto
    // the end when that tag is value-independent (one memcpy instead of a
    // string write plus a tag byte).
    Bytes prefix;
    std::uint32_t child = 0;
    bool fused = false;
  };
  struct StructInfo {
    std::string name;
    Bytes header;  // [kTagStruct][str name][varint field_count] — fast path
    std::vector<StructField> fields;
    /// First plan slot whose name matches, or -1.
    int find_slot(std::string_view field_name) const noexcept;
  };

  std::uint32_t compile(const sidl::TypeDesc& type);

  void encode_op(std::uint32_t idx, ByteWriter& w, const Value& v) const;
  /// Encode an op whose (constant) tag byte was already emitted via a fused
  /// struct-field prefix.
  void encode_op_body(std::uint32_t idx, ByteWriter& w, const Value& v) const;
  Value decode_op(std::uint32_t idx, ByteReader& r) const;

  sidl::TypePtr type_;
  std::vector<Op> ops_;
  std::vector<EnumInfo> enums_;
  std::vector<StructInfo> structs_;
  std::uint32_t root_ = 0;

  friend class OperationPlan;
};

/// Compiled plans for one operation signature: every in/inout parameter plus
/// the result, with the argument-sequence framing folded in.  Byte- and
/// error-compatible with marshal_arguments / unmarshal_arguments.
class OperationPlan {
 public:
  explicit OperationPlan(const sidl::OperationDesc& op);

  /// Encode an argument list as one TLV sequence frame, appended to the
  /// writer (rolled back on failure).  Same arity/conformance errors as
  /// wire::marshal_arguments.
  void marshal_arguments_into(ByteWriter& writer, const std::vector<Value>& args) const;
  Bytes marshal_arguments(const std::vector<Value>& args) const;

  /// Decode + validate an argument frame (server side).  Same errors as
  /// wire::unmarshal_arguments.
  std::vector<Value> unmarshal_arguments(BytesView bytes) const;
  std::vector<Value> unmarshal_arguments(const Bytes& bytes) const {
    return unmarshal_arguments(BytesView(bytes.data(), bytes.size()));
  }

  /// Plan for the operation's result type.
  const MarshalPlan& result() const noexcept { return result_; }

  const std::string& operation() const noexcept { return op_.name; }

 private:
  std::vector<Value> replay_unmarshal(BytesView bytes) const;

  sidl::OperationDesc op_;  // owned copy; its TypePtrs keep the descs alive
  std::vector<MarshalPlan> params_;  // in/inout parameters, in order
  MarshalPlan result_;
};

}  // namespace cosm::wire
