file(REMOVE_RECURSE
  "CMakeFiles/cosm_uims.dir/editor.cpp.o"
  "CMakeFiles/cosm_uims.dir/editor.cpp.o.d"
  "CMakeFiles/cosm_uims.dir/form.cpp.o"
  "CMakeFiles/cosm_uims.dir/form.cpp.o.d"
  "libcosm_uims.a"
  "libcosm_uims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosm_uims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
