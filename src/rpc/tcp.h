// TCP loopback network: real sockets, length-prefixed frames.
//
// Wire format: every frame is [u32 length][u64 correlation id][payload].
// The correlation id lets a client multiplex many in-flight calls over one
// connection and match responses regardless of completion order.
//
// Server side: each listen() binds an ephemeral port on 127.0.0.1 and serves
// every accepted connection on a dedicated thread (read frame -> handler ->
// write response; sequential per connection, concurrent across connections).
//
// Client side: per endpoint, a pool of persistent connections, each with a
// dedicated reader thread settling PendingCalls by correlation id.  A call
// picks an idle pooled connection (or dials a new one up to a small cap), so
// N concurrent callers fan out over up to N connections — and therefore N
// server threads — instead of serialising behind one socket.  A timed-out
// call is abandoned, not torn down: the correlation id guarantees its late
// response cannot be mistaken for another call's, so the connection stays
// pooled (the seed implementation had to close it).

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "rpc/network.h"

namespace cosm::rpc {

class TcpNetwork final : public Network {
 public:
  TcpNetwork() = default;
  ~TcpNetwork() override;

  std::string listen(const std::string& hint, FrameHandler handler) override;
  void unlisten(const std::string& endpoint) override;
  PendingCallPtr call_async(const std::string& endpoint, const Bytes& request,
                            const CallContext& ctx) override;
  std::string scheme() const override { return "tcp"; }

  /// Currently pooled client connections to `endpoint` (instrumentation).
  std::size_t pooled_connections(const std::string& endpoint) const;

 private:
  struct Listener;
  struct ClientConn;

  std::shared_ptr<ClientConn> checkout_conn(const std::string& endpoint);
  void close_all();

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Listener>> listeners_;
  /// Pooled client connections: endpoint -> live connections.
  std::map<std::string, std::vector<std::shared_ptr<ClientConn>>> pools_;
};

}  // namespace cosm::rpc
