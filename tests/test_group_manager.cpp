#include "naming/group_manager.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cosm::naming {
namespace {

sidl::ServiceRef ref(const std::string& id) {
  return {id, "inproc://host", "I"};
}

TEST(GroupManager, JoinAndMembers) {
  GroupManager gm;
  gm.join("traders", ref("t1"));
  gm.join("traders", ref("t2"));
  auto members = gm.members("traders");
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0].id, "t1");  // join order preserved
  EXPECT_EQ(members[1].id, "t2");
}

TEST(GroupManager, DoubleJoinIsIdempotent) {
  GroupManager gm;
  gm.join("g", ref("x"));
  gm.join("g", ref("x"));
  EXPECT_EQ(gm.size("g"), 1u);
}

TEST(GroupManager, LeaveRemovesMember) {
  GroupManager gm;
  gm.join("g", ref("x"));
  gm.join("g", ref("y"));
  gm.leave("g", ref("x"));
  ASSERT_EQ(gm.size("g"), 1u);
  EXPECT_EQ(gm.members("g")[0].id, "y");
}

TEST(GroupManager, LastLeaveDeletesGroup) {
  GroupManager gm;
  gm.join("g", ref("x"));
  gm.leave("g", ref("x"));
  EXPECT_TRUE(gm.groups().empty());
}

TEST(GroupManager, LeaveErrors) {
  GroupManager gm;
  EXPECT_THROW(gm.leave("ghost", ref("x")), NotFound);
  gm.join("g", ref("x"));
  EXPECT_THROW(gm.leave("g", ref("other")), NotFound);
}

TEST(GroupManager, ContractChecks) {
  GroupManager gm;
  EXPECT_THROW(gm.join("", ref("x")), ContractError);
  EXPECT_THROW(gm.join("g", sidl::ServiceRef{}), ContractError);
}

TEST(GroupManager, GroupsSortedAndMembersOfUnknownEmpty) {
  GroupManager gm;
  gm.join("zeta", ref("a"));
  gm.join("alpha", ref("b"));
  auto groups = gm.groups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], "alpha");
  EXPECT_TRUE(gm.members("ghost").empty());
  EXPECT_EQ(gm.size("ghost"), 0u);
}

}  // namespace
}  // namespace cosm::naming
