// Indexed, snapshot-concurrent service-offer store — the engine under
// every local, federated, and mediated lookup (§2.1's matching loop).
//
// Layout: offers live in per-service-type buckets.  Each bucket is an
// immutable indexed *base* (export-ordered slots, an equality hash index
// and an ordered numeric index over static attributes, an id->slot map)
// plus a small unindexed *delta* of recent writes; when the delta outgrows
// max(min_delta, base/delta_fraction) it is merged into a fresh base, so
// writes stay amortised-cheap and reads scan at most a bounded tail
// linearly.  Withdrawn base offers are tombstoned by id until the next
// merge, making withdraw/modify O(1).
//
// Concurrency: the whole store state is one immutable Snapshot behind a
// shared pointer that a tiny mutex guards for the copy/swap only.  Writers
// serialise on their own mutex, clone the (cheap, structurally-shared)
// spine outside the pointer lock, and swap; readers copy the pointer and
// scan without any lock — an import never waits on an export's rebuild
// work, and never copies an offer it does not return.
//
// Matching: the planner takes the constraint's pre-extracted IndexHints
// (top-level AND conjuncts), keeps those the bucket can serve exactly —
// the subject must be an attribute every static offer of the bucket
// carries, and a bare-identifier key must not collide with a schema
// attribute name (identifier resolution is per offer) — seeds the
// candidate set from the most selective index lookup, intersects the rest,
// and leaves the residual constraint evaluation to the caller on the
// narrowed set.  Offers with dynamic attributes cannot be pre-indexed on
// values fetched at import time, so they always remain candidates.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sidl/service_ref.h"
#include "trader/attributes.h"
#include "trader/constraint.h"
#include "trader/service_type.h"

namespace cosm::trader {

struct Offer {
  std::string id;
  std::string service_type;
  sidl::ServiceRef ref;
  AttrMap attributes;
  /// ODP dynamic properties: attribute name -> operation to invoke on the
  /// exporter at import time to obtain the current value (e.g. live
  /// availability).  Matching merges fetched values into `attributes`.
  std::map<std::string, std::string> dynamic_attrs;
  /// Lease expiry on the trader's logical clock, in hours (0 = no lease).
  std::uint64_t lease_expires_at = 0;

  bool operator==(const Offer&) const = default;
};

/// Published offers are immutable and shared between snapshots; a write
/// replaces the pointer, never the pointee.
using OfferPtr = std::shared_ptr<const Offer>;

/// A stored offer plus its export-order sequence number (total order
/// across all buckets — candidates from several buckets merge on it).
struct StoredOffer {
  std::uint64_t seq = 0;
  OfferPtr offer;
};

/// What one matching pass touched (feeds the trader's instrumentation).
struct MatchStats {
  /// Live offers in all conforming buckets (what a type-filtered linear
  /// scan would have evaluated).
  std::size_t type_candidates = 0;
  /// Candidates actually emitted after index narrowing.
  std::size_t scanned = 0;
  /// At least one bucket was served from a secondary index.
  bool index_used = false;
};

class OfferStore {
 public:
  struct Tuning {
    /// Master switch: off = every lookup scans its buckets linearly
    /// (the pre-index path, kept for benchmarking and as a safety valve).
    bool enable_indexes = true;
    /// Delta merge threshold: max(min_delta, base_size / delta_fraction).
    std::size_t min_delta = 48;
    std::size_t delta_fraction = 32;
  };

  OfferStore() = default;
  explicit OfferStore(Tuning tuning) : tuning_(tuning) {}

  void set_indexes_enabled(bool enabled) noexcept {
    indexes_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool indexes_enabled() const noexcept {
    return indexes_enabled_.load(std::memory_order_relaxed);
  }

  // ---- writers (serialised on an internal mutex) ----

  /// Publish an offer.  `schema` is the offer's full type schema; the
  /// bucket keeps the intersection of required attributes seen across
  /// exports, which is what index eligibility relies on.
  void insert(OfferPtr offer, const std::vector<AttributeDef>& schema);

  /// The stored offer, or null when unknown.  O(1).
  OfferPtr find(const std::string& id) const;

  /// Remove by id; false when unknown.  O(1) amortised.
  bool erase(const std::string& id);

  /// Swap the offer stored under `id` for `next` (same id, same type),
  /// keeping its export-order position; false when unknown.
  bool replace(const std::string& id, OfferPtr next);

  /// Remove every offer satisfying `pred` (lease sweeps); returns count.
  std::size_t erase_if(const std::function<bool(const Offer&)>& pred);

  std::size_t size() const;

  // ---- readers (lock-free snapshot; never blocked by writers) ----

  /// Candidates of the given concrete types, narrowed by the constraint's
  /// indexable conjuncts.  The caller still evaluates the constraint on
  /// every returned candidate (the narrowed set is a superset of the
  /// static matches, and dynamic offers need their fetch first).  Order is
  /// unspecified; merge on StoredOffer::seq.
  std::vector<StoredOffer> collect(const std::vector<std::string>& types,
                                   const Constraint& constraint,
                                   MatchStats* stats = nullptr) const;

  /// All live offers of the given types (no narrowing).
  std::vector<StoredOffer> collect_all(
      const std::vector<std::string>& types) const;

  // ---- instrumentation ----

  /// Bucket lookups served from a secondary index.
  std::uint64_t index_lookups() const noexcept {
    return index_lookups_.load(std::memory_order_relaxed);
  }
  /// Delta-into-base merges (index rebuilds).
  std::uint64_t base_rebuilds() const noexcept {
    return base_rebuilds_.load(std::memory_order_relaxed);
  }
  /// Zero the instrumentation counters (stored offers stay).
  void reset_stats() noexcept {
    index_lookups_.store(0, std::memory_order_relaxed);
    base_rebuilds_.store(0, std::memory_order_relaxed);
  }

 private:
  /// Normalised attribute value used as an equality-index key; mirrors the
  /// constraint language's comparison semantics (numbers collapse across
  /// int/float, enums compare by label).
  struct IndexKey {
    enum class Tag : std::uint8_t { Number, Text, Boolean };
    Tag tag = Tag::Number;
    double number = 0.0;
    std::string text;
    bool boolean = false;

    bool operator==(const IndexKey&) const = default;
  };
  struct IndexKeyHash {
    std::size_t operator()(const IndexKey& k) const;
  };

  /// Immutable indexed core of a bucket; rebuilt by delta merges, shared
  /// between snapshots in between.
  struct IndexedBase {
    std::vector<StoredOffer> slots;  // seq-ascending (export order)
    /// Slots of offers carrying dynamic attributes (never index-narrowed).
    std::vector<std::uint32_t> dynamic_slots;
    std::unordered_map<std::string, std::uint32_t> slot_of_id;
    /// attr -> value key -> slots (ascending), static offers only.
    std::unordered_map<
        std::string,
        std::unordered_map<IndexKey, std::vector<std::uint32_t>, IndexKeyHash>>
        eq;
    /// attr -> (numeric value, slot) sorted by value, static offers only.
    std::unordered_map<std::string,
                       std::vector<std::pair<double, std::uint32_t>>>
        ord;
  };
  using IndexedBasePtr = std::shared_ptr<const IndexedBase>;

  /// One service type's offers: shared immutable base + small mutable-by-
  /// clone delta.  Buckets themselves are immutable once published.
  struct Bucket {
    IndexedBasePtr base;
    std::vector<StoredOffer> delta;        // recent writes, scanned linearly
    std::unordered_set<std::string> dead;  // base ids withdrawn since merge
    std::size_t live = 0;
    /// Attributes required by every schema this bucket has seen (present
    /// in every static offer — the planner's eligibility precondition).
    std::unordered_set<std::string> required_attrs;
    /// Every attribute name any schema declared (bare-ident collision set).
    std::unordered_set<std::string> declared_attrs;
  };
  using BucketPtr = std::shared_ptr<const Bucket>;

  struct Snapshot {
    std::map<std::string, BucketPtr> buckets;  // by service type
  };
  using SnapshotPtr = std::shared_ptr<const Snapshot>;

  static IndexKey key_of(const wire::Value& value, bool* indexable);
  static IndexedBasePtr rebuild_base(const Bucket& bucket);
  /// Merge the delta when it outgrew its threshold; returns true if merged.
  bool maybe_merge(Bucket& bucket);
  void publish(std::shared_ptr<Snapshot> next);
  SnapshotPtr snapshot() const {
    // Held only for the shared_ptr copy (std::atomic<shared_ptr> would be
    // the natural fit, but libstdc++ 12's _Sp_atomic::load unlocks its
    // internal spin lock with a relaxed RMW, which leaves no formal
    // happens-before edge to the next writer — TSan rightly flags it).
    std::lock_guard lock(snapshot_mutex_);
    return snapshot_;
  }

  void collect_bucket(const Bucket& bucket, const Constraint* constraint,
                      std::vector<StoredOffer>& out, MatchStats* stats) const;

  Tuning tuning_{};
  std::atomic<bool> indexes_enabled_{true};

  mutable std::mutex writer_mutex_;
  /// id -> service type (writer-side only; readers never look up by id).
  std::unordered_map<std::string, std::string> type_of_id_;
  std::uint64_t next_seq_ = 1;
  /// Guards only the published pointer: writers swap it after all rebuild
  /// work, readers copy it before any scan work.  Neither side ever holds
  /// it while touching offer data, so imports do not wait on exports.
  mutable std::mutex snapshot_mutex_;
  SnapshotPtr snapshot_ = std::make_shared<Snapshot>();

  mutable std::atomic<std::uint64_t> index_lookups_{0};
  std::atomic<std::uint64_t> base_rebuilds_{0};
};

}  // namespace cosm::trader
