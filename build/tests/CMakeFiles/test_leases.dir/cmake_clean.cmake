file(REMOVE_RECURSE
  "CMakeFiles/test_leases.dir/test_leases.cpp.o"
  "CMakeFiles/test_leases.dir/test_leases.cpp.o.d"
  "test_leases"
  "test_leases.pdb"
  "test_leases[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_leases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
