# Empty dependencies file for test_preference.
# This may be replaced when dependencies are built.
