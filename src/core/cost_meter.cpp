#include "core/cost_meter.h"

#include <sstream>

namespace cosm::core {

std::string TransitionCostMeter::summary() const {
  std::ostringstream os;
  os << "stub units: " << stub_units_
     << ", configuration: " << configuration_units_
     << ", registrations: " << registration_units_
     << ", SID transfers (automatic): " << sid_transfers_
     << " => developer cost " << developer_cost();
  return os.str();
}

}  // namespace cosm::core
