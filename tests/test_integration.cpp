// End-to-end scenario tests mirroring the paper's figures: the trader
// triangle (Fig. 1), dynamic binding (Fig. 3), browser mediation cascade
// (Fig. 4), the full stack (Fig. 6) and the §4.1 maturation path — plus the
// same flows over real TCP sockets.

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/cost_meter.h"
#include "core/mediation.h"
#include "core/runtime.h"
#include "rpc/inproc.h"
#include "rpc/multicast.h"
#include "rpc/tcp.h"
#include "services/car_rental.h"
#include "services/image_conversion.h"
#include "services/market.h"
#include "services/stock_quote.h"
#include "sidl/parser.h"
#include "trader/sid_export.h"

namespace cosm {
namespace {

using wire::Value;

Value select_args(const std::string& model, int days) {
  return Value::structure("SelectCar_t",
                          {{"model", Value::enumerated("CarModel_t", model)},
                           {"booking_date", Value::string("1994-06-21")},
                           {"days", Value::integer(days)}});
}

TEST(Integration, Fig1TraderTriangle) {
  rpc::InProcNetwork net;
  core::CosmRuntime runtime(net);
  runtime.trader().types().add(services::canonical_car_rental_type());

  // Step 1: exporters register.
  services::MarketConfig market;
  market.providers = 6;
  market.seed = 7;
  for (const auto& config : services::generate_market(market)) {
    runtime.offer_traded(services::make_car_rental_service(config));
  }

  // Step 2+3: importer queries, trader selects best.
  trader::ImportRequest request;
  request.service_type = services::car_rental_service_type_name();
  request.preference = "min ChargePerDay";
  auto offers = runtime.trader().import(request);
  ASSERT_EQ(offers.size(), 6u);
  double best = offers.front().attributes.at("ChargePerDay").as_real();
  for (const auto& o : offers) {
    EXPECT_LE(best, o.attributes.at("ChargePerDay").as_real());
  }

  // Steps 4+5: bind to the selected exporter and interact.  Market
  // providers drift in their interfaces (extra optional fields), so a
  // hand-built struct would not conform — the generated form seeds every
  // declared field from the *transferred* SID, which is the point of the
  // generic client.
  core::GenericClient client = runtime.make_client();
  core::Binding rental = client.bind(offers.front().ref);
  Value models = rental.invoke("ListModels", {});
  ASSERT_FALSE(models.elements().empty());
  uims::FormEditor editor = rental.edit("SelectCar");
  editor.set("selection.model", models.elements()[0].enum_label());
  editor.set("selection.booking_date", "1994-06-21");
  editor.set("selection.days", "2");
  Value quote = rental.invoke_form(editor);
  EXPECT_TRUE(quote.at("available").as_bool());
}

TEST(Integration, Fig3DynamicBindingPipeline) {
  rpc::InProcNetwork net;
  core::CosmRuntime runtime(net);
  auto ref = runtime.offer_mediated("Ticker",
                                    services::make_stock_quote_service({}));

  core::GenericClient client = runtime.make_client();
  // SID transfer.
  core::Binding binding = client.bind(ref);
  // GUI generation from the transferred SID.
  uims::ServiceForm form = binding.form();
  EXPECT_GT(uims::widget_count(form), 0u);
  // Form-driven dynamic invocation.
  uims::FormEditor login = binding.edit("Login");
  login.set("user", "merz");
  EXPECT_TRUE(binding.invoke_form(login).as_bool());
}

TEST(Integration, Fig4MediationCascade) {
  rpc::InProcNetwork net;
  core::CosmRuntime runtime(net);

  // Nested browser registered at the root browser, service registered at
  // the nested browser.
  core::ServiceBrowser nested("regional");
  auto nested_ref = runtime.server().add(core::make_browser_service(nested));
  runtime.browser().register_service(
      "Regional", runtime.server().find(nested_ref.id)->sid(), nested_ref);
  auto rental_ref = runtime.host(services::make_car_rental_service({}));
  nested.register_service("CityRental",
                          runtime.repository().get(rental_ref.id), rental_ref);

  // User path: browse -> descend -> select -> interact.
  core::GenericClient client = runtime.make_client();
  core::MediationSession root(client, runtime.browser_ref());
  core::MediationSession regional = root.enter("Regional");
  core::Binding rental = regional.select("CityRental");
  Value quote = rental.invoke("SelectCar", {select_args("VW_Golf", 1)});
  EXPECT_TRUE(quote.at("available").as_bool());
  EXPECT_EQ(rental.state(), "SELECTED");
}

TEST(Integration, MaturationPathKeepsClientsWorking) {
  rpc::InProcNetwork net;
  core::CosmRuntime runtime(net);

  services::CarRentalConfig config;
  config.name = "Pioneer";
  config.tradable = false;
  auto ref = runtime.offer_mediated("Pioneer",
                                    services::make_car_rental_service(config));

  core::GenericClient client = runtime.make_client();
  core::Binding early = client.bind(ref);  // bound against the v1 SID

  // The provider matures: extended SID with trader export.
  config.tradable = true;
  auto v2 = std::make_shared<sidl::Sid>(
      sidl::parse_sid(services::car_rental_sidl(config)));
  EXPECT_TRUE(sidl::conforms_to(*v2, *early.sid()));
  runtime.repository().put(ref.id, v2);
  runtime.browser().register_service("Pioneer", v2, ref);
  trader::export_sid_offer(runtime.trader(), *v2, ref);

  // Old binding still works; new clients find it via the trader.
  EXPECT_NO_THROW(early.invoke("ListModels", {}));
  trader::ImportRequest request;
  request.service_type = services::car_rental_service_type_name();
  auto offers = runtime.trader().import(request);
  ASSERT_EQ(offers.size(), 1u);
  EXPECT_EQ(offers[0].ref, ref);
}

TEST(Integration, ValueChainOverRuntime) {
  rpc::InProcNetwork net;
  core::CosmRuntime runtime(net);
  auto archive_ref = runtime.offer_mediated(
      "Archive", services::make_image_server({}));
  runtime.offer_mediated(
      "Converter", services::make_format_converter(net, archive_ref, {}));

  core::GenericClient client = runtime.make_client();
  core::MediationSession session(client, runtime.browser_ref());
  core::Binding converter = session.select("Converter");
  Value image = converter.invoke(
      "GetImageAs", {Value::string("lena"), Value::string("PBM")});
  EXPECT_EQ(image.at("format").as_string(), "PBM");
}

TEST(Integration, FullFlowOverTcpSockets) {
  rpc::TcpNetwork net;
  core::CosmRuntime runtime(net);

  services::CarRentalConfig config;
  config.tradable = true;
  auto [ref, offer_id] = runtime.offer_traded(
      services::make_car_rental_service(config));
  runtime.browser().register_service("Rental",
                                     runtime.repository().get(ref.id), ref);
  EXPECT_EQ(ref.endpoint.rfind("tcp://127.0.0.1:", 0), 0u);

  core::GenericClient client = runtime.make_client();
  core::MediationSession session(client, runtime.browser_ref());
  core::Binding rental = session.select("Rental");
  Value quote = rental.invoke("SelectCar", {select_args("AUDI", 2)});
  EXPECT_TRUE(quote.at("available").as_bool());
  Value booking = rental.invoke(
      "BookCar", {Value::structure("BookCar_t",
                                   {{"offer_code", quote.at("offer_code")},
                                    {"customer", Value::string("tcp user")}})});
  EXPECT_TRUE(booking.at("confirmed").as_bool());

  trader::ImportRequest request;
  request.service_type = services::car_rental_service_type_name();
  EXPECT_EQ(runtime.trader().import(request).size(), 1u);
}

TEST(Integration, CoHostedRuntimesFederateWithoutOfferIdCollision) {
  // Regression: every runtime used to name its trader "trader", so two
  // runtimes in one process minted identical offer ids ("trader/offer-N")
  // and the federation merge — which dedups by id — silently dropped the
  // remote trader's offers.
  rpc::InProcNetwork net;
  core::CosmRuntime a(net);
  core::CosmRuntime b(net);
  a.trader().types().add(services::canonical_car_rental_type());
  b.trader().types().add(services::canonical_car_rental_type());
  a.link_trader("b", b.trader_ref());

  services::CarRentalConfig config;
  config.tradable = true;
  a.offer_traded(services::make_car_rental_service(config));
  b.offer_traded(services::make_car_rental_service(config));

  trader::ImportRequest request;
  request.service_type = services::car_rental_service_type_name();
  request.hop_limit = 1;
  EXPECT_EQ(a.trader().import(request).size(), 2u);
}

TEST(Integration, MulticastWithdrawalAcrossGroup) {
  rpc::InProcNetwork net;
  core::CosmRuntime runtime(net);
  // Three rental providers join a group; a multicast ListModels reaches all.
  std::vector<sidl::ServiceRef> refs;
  for (int i = 0; i < 3; ++i) {
    auto ref = runtime.host(services::make_car_rental_service({}));
    runtime.groups().join("rentals", ref);
    refs.push_back(ref);
  }
  auto outcomes =
      rpc::multicast_call(net, runtime.groups().members("rentals"), "ListModels", {});
  ASSERT_EQ(outcomes.size(), 3u);
  for (const auto& o : outcomes) EXPECT_TRUE(o.ok());
}

TEST(Integration, CostMeterComparesPaths) {
  core::TransitionCostMeter baseline, cosm_path;
  // Baseline: 3 providers, hand-written stubs (3 ops each) + reconfiguration.
  for (int provider = 0; provider < 3; ++provider) {
    baseline.count_stub_units(3);
    baseline.count_configuration();
  }
  // COSM: 3 providers register once; the client adapts automatically.
  for (int provider = 0; provider < 3; ++provider) {
    cosm_path.count_registration();
    cosm_path.count_sid_transfer();
  }
  EXPECT_GT(baseline.developer_cost(), cosm_path.developer_cost());
  EXPECT_EQ(cosm_path.developer_cost(), 3u);
  EXPECT_NE(baseline.summary().find("stub units: 9"), std::string::npos);
  baseline.reset();
  EXPECT_EQ(baseline.developer_cost(), 0u);
}

TEST(Integration, RepositoryConformanceQueryFindsBrowsers) {
  rpc::InProcNetwork net;
  core::CosmRuntime runtime(net);
  // "Which services are browser-shaped?" — structural discovery over SIDs.
  sidl::Sid browser_base = sidl::parse_sid(R"(
    module AnyBrowser {
      typedef struct { string name; ServiceReference ref; } Entry_t;
      interface I { sequence<Entry_t> List(); SID Describe([in] string name); };
    };
  )");
  auto hits = runtime.repository().conforming_to(browser_base);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], runtime.browser_ref().id);
}

}  // namespace
}  // namespace cosm
