// Mediation sessions: the browse -> select -> bind -> interact loop of
// Fig. 4, driven programmatically.
//
// The paper puts a human in this loop; experiments need a deterministic
// stand-in.  A MediationSession wraps a binding to a browser and exposes
// the user-level actions: list entries, search, descend into a cascaded
// browser, and bind to an application service.  Every action goes through
// the generic client — the session has no compiled-in knowledge of any
// service it touches.

#pragma once

#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/generic_client.h"
#include "sidl/service_ref.h"

namespace cosm::core {

/// One row of a browse result as the user sees it.
struct BrowseItem {
  std::string name;
  sidl::ServiceRef ref;
};

/// A deep-search hit: the slash-separated path of browser entries leading
/// to the service, and its reference.
struct DeepHit {
  std::string path;  // e.g. "Financial/TickerService"
  sidl::ServiceRef ref;
};

class MediationSession {
 public:
  /// Open a session against a browser reference.
  MediationSession(GenericClient& client, const sidl::ServiceRef& browser_ref);

  /// Fig. 4 step 2: list the browser's entries.
  std::vector<BrowseItem> browse();

  /// Keyword search (annotations, names, operations).
  std::vector<BrowseItem> search(const std::string& keyword);

  /// Recursive keyword search across the browser cascade: hits from this
  /// browser plus, up to `max_depth` levels down, from every entry that is
  /// itself browser-shaped.  Cycles (browsers registered at each other) are
  /// broken by tracking visited browser references.  Sibling subtrees are
  /// descended on parallel threads (each with its own session/binding);
  /// children are claimed against the visited set in entry order before any
  /// descent starts and hits merge in entry order, so results are
  /// deterministic for tree-plus-cycle cascades.
  std::vector<DeepHit> deep_search(const std::string& keyword,
                                   std::size_t max_depth = 4);

  /// Fetch the SID of an entry without binding (reading the description).
  sidl::SidPtr describe(const std::string& entry_name);

  /// Fig. 4 step 3: bind to the selected entry's service.
  Binding select(const std::string& entry_name);

  /// Descend into a cascaded browser entry: a new session against the
  /// browser registered under `entry_name`.  The cascade depth is tracked
  /// across descents.
  MediationSession enter(const std::string& entry_name);

  /// How many browser hops this session is below the root (0 = root).
  std::size_t depth() const noexcept { return depth_; }

 private:
  MediationSession(GenericClient& client, const sidl::ServiceRef& browser_ref,
                   std::size_t depth);

  sidl::ServiceRef find_ref(const std::string& entry_name);

  void deep_search_into(const std::string& keyword, std::size_t remaining_depth,
                        const std::string& prefix, std::mutex& visited_mutex,
                        std::set<std::string>& visited,
                        std::vector<DeepHit>& hits);

  GenericClient& client_;
  Binding browser_;
  std::size_t depth_;
};

}  // namespace cosm::core
