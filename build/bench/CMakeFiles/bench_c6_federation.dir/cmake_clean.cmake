file(REMOVE_RECURSE
  "CMakeFiles/bench_c6_federation.dir/bench_c6_federation.cpp.o"
  "CMakeFiles/bench_c6_federation.dir/bench_c6_federation.cpp.o.d"
  "bench_c6_federation"
  "bench_c6_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c6_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
