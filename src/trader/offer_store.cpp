#include "trader/offer_store.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "trader/cexpr_vm.h"

namespace cosm::trader {

namespace store_detail {

namespace {

/// First ord-index position with value >= v.
std::size_t lower_pos(const std::vector<std::pair<double, std::uint32_t>>& ord,
                      double v) {
  return static_cast<std::size_t>(
      std::lower_bound(ord.begin(), ord.end(), v,
                       [](const auto& entry, double value) {
                         return entry.first < value;
                       }) -
      ord.begin());
}

/// First ord-index position with value > v.
std::size_t upper_pos(const std::vector<std::pair<double, std::uint32_t>>& ord,
                      double v) {
  return static_cast<std::size_t>(
      std::upper_bound(ord.begin(), ord.end(), v,
                       [](double value, const auto& entry) {
                         return value < entry.first;
                       }) -
      ord.begin());
}

}  // namespace

std::pair<std::size_t, std::size_t> ord_range(
    const std::vector<std::pair<double, std::uint32_t>>& ord, int bound,
    double value) {
  // A NaN bound satisfies no comparison, and feeding it to the binary
  // searches would violate the comparator's strict weak ordering (every
  // comparison against NaN is false), yielding arbitrary positions.
  if (std::isnan(value)) return {0, 0};
  switch (static_cast<IndexHint::Bound>(bound)) {
    case IndexHint::Bound::Lt:
      return {0, lower_pos(ord, value)};
    case IndexHint::Bound::Le:
      return {0, upper_pos(ord, value)};
    case IndexHint::Bound::Gt:
      return {upper_pos(ord, value), ord.size()};
    case IndexHint::Bound::Ge:
      return {lower_pos(ord, value), ord.size()};
  }
  return {0, 0};
}

}  // namespace store_detail

namespace {

/// Round-robin starting offset so concurrent readers spread over the
/// reader-slot array instead of all CASing slot 0.
std::size_t reader_slot_hint() {
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t hint =
      next.fetch_add(1, std::memory_order_relaxed) * 7;
  return hint;
}

/// Fold `schema` into the bucket's attribute book-keeping.  Index
/// eligibility rests on "every static offer of this bucket carries the
/// attribute": keep the intersection of required names across the schemas
/// seen (a type re-registered with a laxer schema narrows it).  The reset
/// branch requires a *fully* empty bucket — live offers, delta entries,
/// and dead-but-unmerged base slots all pin the old intersection, since
/// base slots (even tombstoned ones) only leave at the next merge and the
/// indexes still describe them.
template <typename BucketT>
void fold_schema(BucketT& bucket, const std::vector<AttributeDef>& schema) {
  std::unordered_set<std::string> required;
  for (const auto& def : schema) {
    bucket.declared_attrs.insert(def.name);
    if (def.required) required.insert(def.name);
  }
  if (bucket.live == 0 && bucket.delta.empty() && bucket.dead.empty()) {
    bucket.required_attrs = std::move(required);
  } else {
    for (auto it = bucket.required_attrs.begin();
         it != bucket.required_attrs.end();) {
      it = required.count(*it) ? std::next(it)
                               : bucket.required_attrs.erase(it);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------- ReadGuard

OfferStore::ReadGuard::ReadGuard(const OfferStore& store) : store_(store) {
  // Claim a reader slot with the current epoch.  Order matters: the pin
  // must be visible (seq_cst) before any published pointer is loaded, so a
  // writer that retires a state we might observe is guaranteed to see our
  // pin when it scans the slots — see publish_shard() for the other half.
  std::uint64_t e = store_.epoch_.load();
  const std::size_t start = reader_slot_hint();
  for (std::size_t i = 0; i < kReaderSlots; ++i) {
    ReaderSlot& slot = store_.reader_slots_[(start + i) % kReaderSlots];
    std::uint64_t idle = kIdleEpoch;
    if (slot.epoch.compare_exchange_strong(idle, e)) {
      slot_ = &slot;
      break;
    }
  }
  if (slot_ != nullptr) {
    table_ = store_.table_raw_.load();
  } else {
    // Every slot taken: fall back to reference-counted pins.  Strictly
    // slower (mutex + shared_ptr traffic) but never blocked by writers.
    std::lock_guard lock(store_.table_pub_mutex_);
    table_keepalive_ = store_.table_published_;
    table_ = table_keepalive_.get();
  }
}

OfferStore::ReadGuard::~ReadGuard() {
  if (slot_ != nullptr) slot_->epoch.store(kIdleEpoch);
}

const OfferStore::ShardState* OfferStore::ReadGuard::state(
    std::size_t shard_index) const {
  Shard& shard = *table_->shards[shard_index];
  if (slot_ != nullptr) return shard.raw.load();
  std::lock_guard lock(shard.pub_mutex);
  state_keepalive_.push_back(shard.published);
  return state_keepalive_.back().get();
}

// ------------------------------------------------------------ construction

OfferStore::OfferStore(Tuning tuning) {
  indexes_enabled_.store(tuning.enable_indexes, std::memory_order_relaxed);
  min_delta_.store(std::max<std::size_t>(1, tuning.min_delta),
                   std::memory_order_relaxed);
  delta_fraction_.store(std::max<std::size_t>(1, tuning.delta_fraction),
                        std::memory_order_relaxed);
  hot_split_threshold_.store(tuning.hot_split_threshold,
                             std::memory_order_relaxed);

  const std::size_t shards = std::clamp<std::size_t>(tuning.shard_count, 1, 64);
  auto table = std::make_shared<ShardTable>();
  table->shards.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->published = std::make_shared<ShardState>();
    shard->raw.store(shard->published.get());
    table->shards.push_back(std::move(shard));
  }
  table_published_ = std::move(table);
  table_raw_.store(table_published_.get());
}

OfferStore::~OfferStore() = default;

void OfferStore::set_tuning(const Tuning& tuning) {
  indexes_enabled_.store(tuning.enable_indexes, std::memory_order_relaxed);
  min_delta_.store(std::max<std::size_t>(1, tuning.min_delta),
                   std::memory_order_relaxed);
  delta_fraction_.store(std::max<std::size_t>(1, tuning.delta_fraction),
                        std::memory_order_relaxed);
  hot_split_threshold_.store(tuning.hot_split_threshold,
                             std::memory_order_relaxed);

  const std::size_t want = std::clamp<std::size_t>(tuning.shard_count, 1, 64);
  std::lock_guard lock(table_pub_mutex_);
  if (table_published_->shards.size() == want) return;
  if (size() != 0) return;  // re-sharding only applies to an empty store

  auto table = std::make_shared<ShardTable>();
  table->shards.reserve(want);
  for (std::size_t i = 0; i < want; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->published = std::make_shared<ShardState>();
    shard->raw.store(shard->published.get());
    table->shards.push_back(std::move(shard));
  }
  // Retire the old table through the same epoch protocol as shard states:
  // a reader pinned before this swap may still walk the old shards.
  ShardTablePtr old = std::move(table_published_);
  table_published_ = std::move(table);
  table_raw_.store(table_published_.get());
  const std::uint64_t tag = epoch_.fetch_add(1) + 1;
  table_limbo_.push_back(Retired{tag, std::move(old)});
  const std::uint64_t floor = min_pinned_epoch();
  std::erase_if(table_limbo_,
                [&](const Retired& r) { return r.epoch <= floor; });
}

std::size_t OfferStore::shard_count() const {
  ReadGuard guard(*this);
  return guard.shards();
}

// ----------------------------------------------------------------- indexes

std::size_t OfferStore::IndexKeyHash::operator()(const IndexKey& k) const {
  std::size_t h = static_cast<std::size_t>(k.tag);
  switch (k.tag) {
    case IndexKey::Tag::Number:
      h ^= std::hash<double>{}(k.number) + 0x9e3779b97f4a7c15ull;
      break;
    case IndexKey::Tag::Text:
      h ^= std::hash<std::string>{}(k.text) + 0x9e3779b97f4a7c15ull;
      break;
    case IndexKey::Tag::Boolean:
      h ^= std::hash<bool>{}(k.boolean) + 0x9e3779b97f4a7c15ull;
      break;
  }
  return h;
}

/// Normalise an attribute value into its equality-index key, mirroring the
/// constraint language's comparison semantics: int/float collapse to one
/// number line, enums compare by label, structured values are incomparable
/// (they satisfy no comparison, so they are simply not indexed).
OfferStore::IndexKey OfferStore::key_of(const wire::Value& value,
                                        bool* indexable) {
  using wire::ValueKind;
  IndexKey key;
  *indexable = true;
  switch (value.kind()) {
    case ValueKind::Int:
      key.tag = IndexKey::Tag::Number;
      key.number = static_cast<double>(value.as_int());
      break;
    case ValueKind::Float:
      key.tag = IndexKey::Tag::Number;
      key.number = value.as_real();
      if (std::isnan(key.number)) *indexable = false;  // NaN matches nothing
      break;
    case ValueKind::String:
      key.tag = IndexKey::Tag::Text;
      key.text = value.as_string();
      break;
    case ValueKind::Enum:
      key.tag = IndexKey::Tag::Text;
      key.text = value.enum_label();
      break;
    case ValueKind::Bool:
      key.tag = IndexKey::Tag::Boolean;
      key.boolean = value.as_bool();
      break;
    default:
      *indexable = false;
      break;
  }
  if (key.tag == IndexKey::Tag::Number && key.number == 0.0) {
    key.number = 0.0;  // collapse -0.0 onto +0.0 (they compare equal)
  }
  return key;
}

OfferStore::IndexedBasePtr OfferStore::rebuild_base(const Bucket& bucket) const {
  auto next = std::make_shared<IndexedBase>();
  auto& slots = next->slots;
  if (bucket.base) {
    slots.reserve(bucket.base->slots.size() + bucket.delta.size());
    for (const StoredOffer& so : bucket.base->slots) {
      if (bucket.dead.empty() || bucket.dead.count(so.offer->id) == 0) {
        slots.push_back(so);
      }
    }
  }
  slots.insert(slots.end(), bucket.delta.begin(), bucket.delta.end());
  // modify() keeps an offer's original sequence number, so delta entries
  // are not necessarily newer than every base entry.
  std::sort(slots.begin(), slots.end(),
            [](const StoredOffer& a, const StoredOffer& b) {
              return a.seq < b.seq;
            });

  next->slot_of_id.reserve(slots.size());
  for (std::uint32_t slot = 0; slot < slots.size(); ++slot) {
    const Offer& offer = *slots[slot].offer;
    next->slot_of_id.emplace(offer.id, slot);
    if (!offer.dynamic_attrs.empty()) {
      // Values fetched at import time cannot be pre-indexed; these offers
      // bypass narrowing entirely.
      next->dynamic_slots.push_back(slot);
      continue;
    }
    for (const auto& [name, value] : offer.attributes) {
      bool indexable = false;
      IndexKey key = key_of(value, &indexable);
      if (!indexable) continue;
      next->eq[name][key].push_back(slot);
      if (key.tag == IndexKey::Tag::Number) {
        next->ord[name].emplace_back(key.number, slot);
      }
    }
  }
  for (auto& [name, entries] : next->ord) {
    std::sort(entries.begin(), entries.end());
  }
  return next;
}

bool OfferStore::maybe_merge(Bucket& bucket, Shard& shard) {
  std::size_t base_size = bucket.base ? bucket.base->slots.size() : 0;
  std::size_t threshold = std::max(
      min_delta_.load(std::memory_order_relaxed),
      base_size / delta_fraction_.load(std::memory_order_relaxed));
  bool delta_full = bucket.delta.size() > threshold;
  bool too_dead = !bucket.dead.empty() && bucket.dead.size() > base_size / 4;
  if (!delta_full && !too_dead) return false;
  bucket.base = rebuild_base(bucket);
  bucket.delta.clear();
  bucket.dead.clear();
  base_rebuilds_.fetch_add(1, std::memory_order_relaxed);
  shard.rebuilds.fetch_add(1, std::memory_order_relaxed);
  return true;
}

// ------------------------------------------------- epoch publication core

std::uint64_t OfferStore::min_pinned_epoch() const {
  std::uint64_t floor = std::numeric_limits<std::uint64_t>::max();
  for (const ReaderSlot& slot : reader_slots_) {
    const std::uint64_t e = slot.epoch.load();
    if (e != kIdleEpoch && e < floor) floor = e;
  }
  return floor;
}

void OfferStore::reclaim(Shard& shard) {
  // Safe to free a state retired at epoch `tag` once every pinned reader
  // sits at an epoch >= tag: a reader that could still hold the state
  // pinned *before* the tag was minted, so its pin reads below the tag
  // (and the seq_cst order of pin -> pointer-load vs publish -> scan
  // guarantees the scan here observes that pin).
  const std::uint64_t floor = min_pinned_epoch();
  std::erase_if(shard.limbo,
                [&](const Retired& r) { return r.epoch <= floor; });
  shard.limbo_size.store(shard.limbo.size(), std::memory_order_relaxed);
}

std::size_t OfferStore::reclaim_retired() {
  // Only safe at quiescence: a reader pinned below the current epoch still
  // dereferences the states this frees.  Callers (Trader::shutdown, test
  // teardown) must have stopped every concurrent reader first — catch the
  // ones that did not while assertions are on.
  assert(min_pinned_epoch() == std::numeric_limits<std::uint64_t>::max() &&
         "reclaim_retired() called with readers still pinned");
  std::size_t parked = 0;
  ReadGuard guard(*this);  // pins the table, not the states being freed
  for (std::size_t si = 0; si < guard.shards(); ++si) {
    Shard& shard = *guard.table().shards[si];
    std::lock_guard lock(shard.writer_mutex);
    reclaim(shard);
    parked += shard.limbo.size();
  }
  {
    std::lock_guard lock(table_pub_mutex_);
    const std::uint64_t floor = min_pinned_epoch();
    std::erase_if(table_limbo_,
                  [&](const Retired& r) { return r.epoch <= floor; });
    parked += table_limbo_.size();
  }
  return parked;
}

void OfferStore::publish_shard(Shard& shard,
                               std::shared_ptr<ShardState> next) {
  ShardStatePtr old;
  {
    std::lock_guard lock(shard.pub_mutex);
    old = std::move(shard.published);
    shard.published = std::move(next);
    // seq_cst: the raw swing must precede the epoch tick below in the
    // single total order the reader pin protocol reasons about.
    shard.raw.store(shard.published.get());
  }
  const std::uint64_t tag = epoch_.fetch_add(1) + 1;
  shard.limbo.push_back(Retired{tag, std::move(old)});
  reclaim(shard);
}

std::shared_ptr<OfferStore::ShardState> OfferStore::clone_state(
    const Shard& shard) const {
  // Caller holds the shard's writer mutex, so `published` is stable; the
  // clone copies one bucket-pointer map, never bucket contents.
  return std::make_shared<ShardState>(*shard.published);
}

std::uint64_t OfferStore::epoch_lag() const {
  const std::uint64_t floor = min_pinned_epoch();
  if (floor == std::numeric_limits<std::uint64_t>::max()) return 0;
  const std::uint64_t now = epoch_.load();
  return now > floor ? now - floor : 0;
}

// ---------------------------------------------------------------- writers

std::atomic<std::int64_t>& OfferStore::live_counter(const std::string& type) {
  {
    std::shared_lock lock(type_live_mutex_);
    auto it = type_live_.find(type);
    if (it != type_live_.end()) return *it->second;
  }
  std::unique_lock lock(type_live_mutex_);
  auto [it, inserted] = type_live_.try_emplace(type, nullptr);
  if (inserted) it->second = std::make_unique<std::atomic<std::int64_t>>(0);
  return *it->second;
}

std::size_t OfferStore::placement_shard(const std::string& type,
                                        const std::string& id,
                                        std::size_t shards) {
  if (shards <= 1) return 0;
  const std::size_t threshold =
      hot_split_threshold_.load(std::memory_order_relaxed);
  if (threshold != 0) {
    const auto live = live_counter(type).load(std::memory_order_relaxed);
    if (live >= 0 && static_cast<std::size_t>(live) >= threshold) {
      // Hot type: spread new offers over all shards by offer id so one
      // popular type scales across writers too.
      return std::hash<std::string>{}(id) % shards;
    }
  }
  return home_shard_of(type, shards);
}

void OfferStore::insert(OfferPtr offer,
                        const std::vector<AttributeDef>& schema) {
  // Batch of one: placement, id-map-leads-bucket publication and counter
  // settlement live once, in insert_batch.
  std::vector<OfferPtr> one;
  one.push_back(std::move(offer));
  insert_batch(std::move(one), schema);
}

void OfferStore::insert_batch(std::vector<OfferPtr> offers,
                              const std::vector<AttributeDef>& schema) {
  if (offers.empty()) return;
  ReadGuard guard(*this);
  const std::size_t shards = guard.shards();

  // Placement first (hot-split decided once per batch), grouped per shard
  // so each shard is locked and published exactly once.  Sequence numbers
  // mint in input order up front — the batch's export order must not
  // depend on which shard each offer landed on.
  std::vector<std::vector<std::size_t>> by_shard(shards);
  std::vector<std::uint32_t> shard_of(offers.size());
  std::vector<std::uint64_t> seq_of(offers.size());
  for (std::size_t i = 0; i < offers.size(); ++i) {
    const auto s = static_cast<std::uint32_t>(placement_shard(
        offers[i]->service_type, offers[i]->id, shards));
    shard_of[i] = s;
    seq_of[i] = next_seq_.fetch_add(1);
    by_shard[s].push_back(i);
  }

  // Register ids before any bucket publishes (see insert() for why the
  // map must lead the publication).
  for (std::size_t i = 0; i < offers.size(); ++i) {
    IdShard& ids = id_shard(offers[i]->id);
    std::lock_guard lock(ids.mutex);
    ids.map[offers[i]->id] = IdEntry{offers[i]->service_type, shard_of[i]};
  }

  for (std::size_t s = 0; s < shards; ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *guard.table().shards[s];
    std::lock_guard writer(shard.writer_mutex);
    auto next = clone_state(shard);
    // Clone each touched bucket once, push the whole group, merge once.
    std::unordered_map<std::string, std::shared_ptr<Bucket>> wip;
    for (std::size_t i : by_shard[s]) {
      const std::string& type = offers[i]->service_type;
      auto it = wip.find(type);
      if (it == wip.end()) {
        auto existing = next->buckets.find(type);
        auto bucket = existing == next->buckets.end()
                          ? std::make_shared<Bucket>()
                          : std::make_shared<Bucket>(*existing->second);
        if (!bucket->base) bucket->base = std::make_shared<IndexedBase>();
        fold_schema(*bucket, schema);
        it = wip.emplace(type, std::move(bucket)).first;
      }
      it->second->delta.push_back(StoredOffer{seq_of[i], offers[i]});
      it->second->live += 1;
    }
    for (auto& [type, bucket] : wip) {
      maybe_merge(*bucket, shard);
      next->buckets[type] = std::move(bucket);
    }
    publish_shard(shard, std::move(next));
  }

  std::unordered_map<std::string, std::int64_t> added;
  for (const auto& offer : offers) added[offer->service_type] += 1;
  for (const auto& [type, n] : added) {
    live_counter(type).fetch_add(n, std::memory_order_relaxed);
  }
}

OfferPtr OfferStore::find(const std::string& id) const {
  IdEntry entry;
  {
    IdShard& ids = id_shard(id);
    std::lock_guard lock(ids.mutex);
    auto it = ids.map.find(id);
    if (it == ids.map.end()) return nullptr;
    entry = it->second;
  }
  ReadGuard guard(*this);
  if (entry.shard >= guard.shards()) return nullptr;
  const ShardState* state = guard.state(entry.shard);
  auto bucket_it = state->buckets.find(entry.type);
  if (bucket_it == state->buckets.end()) return nullptr;
  const Bucket& bucket = *bucket_it->second;
  for (const StoredOffer& so : bucket.delta) {
    if (so.offer->id == id) return so.offer;
  }
  // The id map can trail a withdrawal (erase cleans it after publishing
  // the tombstone): a dead base slot is not a live offer.
  if (!bucket.dead.empty() && bucket.dead.count(id)) return nullptr;
  auto slot_it = bucket.base->slot_of_id.find(id);
  if (slot_it == bucket.base->slot_of_id.end()) return nullptr;
  return bucket.base->slots[slot_it->second].offer;
}

bool OfferStore::erase(const std::string& id) {
  // Batch of one: withdraw_batch owns the tombstone/delta logic, the
  // stale-id-map cleanup and the hot-split counter settlement.
  return withdraw_batch({id}) != 0;
}

std::size_t OfferStore::withdraw_batch(const std::vector<std::string>& ids) {
  if (ids.empty()) return 0;

  // Phase 1: resolve ids to (type, shard) placements.
  struct Victim {
    const std::string* id;
    IdEntry entry;
    bool removed = false;
  };
  std::vector<Victim> victims;
  victims.reserve(ids.size());
  for (const std::string& id : ids) {
    IdShard& slice = id_shard(id);
    std::lock_guard lock(slice.mutex);
    auto it = slice.map.find(id);
    if (it != slice.map.end()) victims.push_back({&id, it->second});
  }
  if (victims.empty()) return 0;

  ReadGuard guard(*this);
  const std::size_t shards = guard.shards();
  std::vector<std::vector<std::size_t>> by_shard(shards);
  for (std::size_t v = 0; v < victims.size(); ++v) {
    if (victims[v].entry.shard < shards) {
      by_shard[victims[v].entry.shard].push_back(v);
    }
  }

  // Phase 2: one writer lock + one publication per touched shard.
  std::size_t removed = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *guard.table().shards[s];
    std::lock_guard writer(shard.writer_mutex);
    auto next = clone_state(shard);
    std::unordered_map<std::string, std::shared_ptr<Bucket>> wip;
    bool dirty = false;
    for (std::size_t v : by_shard[s]) {
      Victim& victim = victims[v];
      const std::string& id = *victim.id;
      auto it = wip.find(victim.entry.type);
      if (it == wip.end()) {
        auto bucket_it = next->buckets.find(victim.entry.type);
        if (bucket_it == next->buckets.end()) continue;  // stale map entry
        it = wip.emplace(victim.entry.type,
                         std::make_shared<Bucket>(*bucket_it->second))
                 .first;
      }
      Bucket& bucket = *it->second;
      auto delta_it = std::find_if(
          bucket.delta.begin(), bucket.delta.end(),
          [&](const StoredOffer& so) { return so.offer->id == id; });
      if (delta_it != bucket.delta.end()) {
        bucket.delta.erase(delta_it);
      } else if ((bucket.dead.empty() || bucket.dead.count(id) == 0) &&
                 bucket.base->slot_of_id.count(id)) {
        bucket.dead.insert(id);
      } else {
        continue;  // lost a race with a concurrent withdrawal
      }
      bucket.live -= 1;
      victim.removed = true;
      removed += 1;
      dirty = true;
    }
    if (!dirty) continue;
    for (auto& [type, bucket] : wip) {
      maybe_merge(*bucket, shard);
      next->buckets[type] = std::move(bucket);
    }
    publish_shard(shard, std::move(next));
  }

  // Phase 3: clean the id map (stale entries too — they are spent either
  // way) and settle the hot-split counters.
  std::unordered_map<std::string, std::int64_t> gone;
  for (const Victim& victim : victims) {
    IdShard& slice = id_shard(*victim.id);
    std::lock_guard lock(slice.mutex);
    slice.map.erase(*victim.id);
    if (victim.removed) gone[victim.entry.type] += 1;
  }
  for (const auto& [type, n] : gone) {
    live_counter(type).fetch_sub(n, std::memory_order_relaxed);
  }
  return removed;
}

bool OfferStore::replace(const std::string& id, OfferPtr next_offer) {
  // Batch of one: modify_batch keeps the original sequence number and owns
  // the dead-slot bookkeeping.
  std::vector<std::pair<std::string, OfferPtr>> one;
  one.emplace_back(id, std::move(next_offer));
  return modify_batch(std::move(one)) != 0;
}

std::size_t OfferStore::modify_batch(
    std::vector<std::pair<std::string, OfferPtr>> changes) {
  if (changes.empty()) return 0;

  struct Change {
    std::size_t index;
    IdEntry entry;
  };
  std::vector<Change> resolved;
  resolved.reserve(changes.size());
  for (std::size_t i = 0; i < changes.size(); ++i) {
    IdShard& slice = id_shard(changes[i].first);
    std::lock_guard lock(slice.mutex);
    auto it = slice.map.find(changes[i].first);
    if (it != slice.map.end()) resolved.push_back({i, it->second});
  }
  if (resolved.empty()) return 0;

  ReadGuard guard(*this);
  const std::size_t shards = guard.shards();
  std::vector<std::vector<std::size_t>> by_shard(shards);
  for (std::size_t r = 0; r < resolved.size(); ++r) {
    if (resolved[r].entry.shard < shards) {
      by_shard[resolved[r].entry.shard].push_back(r);
    }
  }

  std::size_t applied = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *guard.table().shards[s];
    std::lock_guard writer(shard.writer_mutex);
    auto next = clone_state(shard);
    std::unordered_map<std::string, std::shared_ptr<Bucket>> wip;
    bool dirty = false;
    for (std::size_t r : by_shard[s]) {
      const Change& change = resolved[r];
      const std::string& id = changes[change.index].first;
      OfferPtr& offer = changes[change.index].second;
      auto it = wip.find(change.entry.type);
      if (it == wip.end()) {
        auto bucket_it = next->buckets.find(change.entry.type);
        if (bucket_it == next->buckets.end()) continue;
        it = wip.emplace(change.entry.type,
                         std::make_shared<Bucket>(*bucket_it->second))
                 .first;
      }
      Bucket& bucket = *it->second;
      auto delta_it = std::find_if(
          bucket.delta.begin(), bucket.delta.end(),
          [&](const StoredOffer& so) { return so.offer->id == id; });
      if (delta_it != bucket.delta.end()) {
        delta_it->offer = std::move(offer);
      } else {
        if (!bucket.dead.empty() && bucket.dead.count(id)) continue;
        auto slot_it = bucket.base->slot_of_id.find(id);
        if (slot_it == bucket.base->slot_of_id.end()) continue;
        std::uint64_t seq = bucket.base->slots[slot_it->second].seq;
        bucket.dead.insert(id);
        bucket.delta.push_back(StoredOffer{seq, std::move(offer)});
      }
      applied += 1;
      dirty = true;
    }
    if (!dirty) continue;
    for (auto& [type, bucket] : wip) {
      maybe_merge(*bucket, shard);
      next->buckets[type] = std::move(bucket);
    }
    publish_shard(shard, std::move(next));
  }
  return applied;
}

std::size_t OfferStore::erase_if(
    const std::function<bool(const Offer&)>& pred,
    std::vector<std::pair<std::string, std::string>>* victims_out) {
  ReadGuard guard(*this);
  const std::size_t shards = guard.shards();
  std::vector<std::pair<std::string, std::string>> victims;  // (id, type)

  for (std::size_t s = 0; s < shards; ++s) {
    Shard& shard = *guard.table().shards[s];
    std::lock_guard writer(shard.writer_mutex);
    auto next = clone_state(shard);
    bool dirty = false;
    for (auto& [type, bucket_ptr] : next->buckets) {
      std::vector<std::string> base_victims;
      for (const StoredOffer& so : bucket_ptr->base->slots) {
        if ((bucket_ptr->dead.empty() ||
             bucket_ptr->dead.count(so.offer->id) == 0) &&
            pred(*so.offer)) {
          base_victims.push_back(so.offer->id);
        }
      }
      bool delta_hit = std::any_of(
          bucket_ptr->delta.begin(), bucket_ptr->delta.end(),
          [&](const StoredOffer& so) { return pred(*so.offer); });
      if (base_victims.empty() && !delta_hit) continue;

      auto bucket = std::make_shared<Bucket>(*bucket_ptr);
      std::size_t bucket_removed = 0;
      for (auto& id : base_victims) {
        bucket->dead.insert(id);
        victims.emplace_back(std::move(id), type);
        bucket_removed += 1;
      }
      std::erase_if(bucket->delta, [&](const StoredOffer& so) {
        if (!pred(*so.offer)) return false;
        victims.emplace_back(so.offer->id, type);
        bucket_removed += 1;
        return true;
      });
      bucket->live -= bucket_removed;
      maybe_merge(*bucket, shard);
      bucket_ptr = std::move(bucket);
      dirty = true;
    }
    if (dirty) publish_shard(shard, std::move(next));
  }

  // Map cleanup after the writer locks are gone (lock order: never hold a
  // writer mutex while taking an id-slice mutex).  find() tolerates the
  // window by checking the tombstones.
  std::unordered_map<std::string, std::int64_t> gone;
  for (const auto& [id, type] : victims) {
    IdShard& slice = id_shard(id);
    std::lock_guard lock(slice.mutex);
    slice.map.erase(id);
    gone[type] += 1;
  }
  for (const auto& [type, n] : gone) {
    live_counter(type).fetch_sub(n, std::memory_order_relaxed);
  }
  const std::size_t removed = victims.size();
  if (victims_out) *victims_out = std::move(victims);
  return removed;
}

std::vector<std::string> OfferStore::type_names() const {
  ReadGuard guard(*this);
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  for (std::size_t s = 0; s < guard.shards(); ++s) {
    const ShardState* state = guard.state(s);
    if (!state) continue;
    for (const auto& [type, bucket] : state->buckets) {
      if (bucket->live == 0) continue;
      if (seen.insert(type).second) out.push_back(type);
    }
  }
  return out;
}

std::size_t OfferStore::size() const {
  std::size_t total = 0;
  for (const IdShard& slice : id_shards_) {
    std::lock_guard lock(slice.mutex);
    total += slice.map.size();
  }
  return total;
}

// ---------------------------------------------------------------- readers

namespace {
const std::vector<std::uint32_t> kEmptyPosting;
}

std::vector<OfferStore::Selection> OfferStore::plan_selections(
    const Bucket& bucket, const Constraint* constraint) const {
  std::vector<Selection> selections;
  const IndexedBase& base = *bucket.base;
  if (!indexes_enabled() || constraint == nullptr || base.slots.empty()) {
    return selections;
  }
  for (const IndexHint& hint : constraint->index_hints()) {
    // Intersecting a subset of the filters still yields a superset of
    // the matches; capping also keeps the vote counters from wrapping.
    if (selections.size() >= 16) break;
    if (bucket.required_attrs.count(hint.attr) == 0) continue;
    if (hint.kind == IndexHint::Kind::Equality) {
      if (hint.key_kind == IndexHint::KeyKind::Text &&
          hint.text_is_bare_ident && bucket.declared_attrs.count(hint.text)) {
        continue;  // the "literal" may resolve as an attribute per offer
      }
      IndexKey key;
      switch (hint.key_kind) {
        case IndexHint::KeyKind::Number:
          key.tag = IndexKey::Tag::Number;
          key.number = hint.number == 0.0 ? 0.0 : hint.number;
          break;
        case IndexHint::KeyKind::Text:
          key.tag = IndexKey::Tag::Text;
          key.text = hint.text;
          break;
        case IndexHint::KeyKind::Boolean:
          key.tag = IndexKey::Tag::Boolean;
          key.boolean = hint.boolean;
          break;
      }
      Selection sel;
      sel.posting = &kEmptyPosting;
      if (hint.key_kind != IndexHint::KeyKind::Number ||
          !std::isnan(hint.number)) {
        if (auto attr_it = base.eq.find(hint.attr);
            attr_it != base.eq.end()) {
          if (auto key_it = attr_it->second.find(key);
              key_it != attr_it->second.end()) {
            sel.posting = &key_it->second;
          }
        }
      }
      selections.push_back(sel);
    } else {
      Selection sel;
      auto attr_it = base.ord.find(hint.attr);
      if (attr_it == base.ord.end()) {
        sel.posting = &kEmptyPosting;  // no static offer has a number here
        selections.push_back(sel);
        continue;
      }
      sel.ord = &attr_it->second;
      // NaN-safe: a NaN bound selects the empty span (see ord_range).
      auto [lo, hi] = store_detail::ord_range(
          *sel.ord, static_cast<int>(hint.bound), hint.number);
      sel.lo = lo;
      sel.hi = hi;
      selections.push_back(sel);
    }
  }
  return selections;
}

void OfferStore::collect_bucket(const Bucket& bucket,
                                const Constraint* constraint,
                                std::vector<StoredOffer>& out,
                                MatchStats* stats) const {
  const IndexedBase& base = *bucket.base;
  if (stats) stats->type_candidates += bucket.live;
  std::size_t before = out.size();

  auto emit = [&](std::uint32_t slot) {
    const StoredOffer& so = base.slots[slot];
    if (!bucket.dead.empty() && bucket.dead.count(so.offer->id)) return;
    out.push_back(so);
  };

  std::vector<Selection> selections = plan_selections(bucket, constraint);
  if (!selections.empty()) {
    if (stats) stats->index_used = true;
    index_lookups_.fetch_add(1, std::memory_order_relaxed);
    for_each_selected(base.slots.size(), selections, emit);
    // Dynamic offers fetch their values at import time: always candidates.
    for (std::uint32_t slot : base.dynamic_slots) emit(slot);
  } else {
    for (std::uint32_t slot = 0; slot < base.slots.size(); ++slot) emit(slot);
  }
  out.insert(out.end(), bucket.delta.begin(), bucket.delta.end());
  if (stats) stats->scanned += out.size() - before;
}

// ------------------------------------------------------------ scored top-k

/// State one collect_top_k pass threads through every bucket it visits:
/// the shared heap (the k-th key must be global, or cross-bucket pruning
/// would be wrong), reusable evaluation scratch, and the per-query affine
/// analysis.  Entries hold raw StoredOffer pointers into the epoch-pinned
/// snapshot; they are copied out before the guard drops.
struct OfferStore::TopKCtx {
  struct Entry {
    double score = 0.0;
    double key = 0.0;
    const StoredOffer* so = nullptr;
  };
  /// Final-order comparator: key desc, offer id asc.  Used directly for
  /// the result sort, and as the heap comparator — under push_heap it
  /// floats the *worst* kept entry to the front, which is exactly the
  /// displacement candidate.
  static bool better(const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key > b.key;
    return a.so->offer->id < b.so->offer->id;
  }

  cexpr::AffineForm affine;        // computed once per query
  std::vector<Entry> heap;         // k > 0: front = worst kept
  std::vector<Entry> all;          // k == 0: every match
  std::vector<StoredOffer> dynamic;
  cexpr::Scratch filter_scratch;
  cexpr::Scratch score_scratch;
  std::vector<std::uint8_t> visited;  // ord-walk bitmap, reused per bucket
  TopKStats stats;
};

void OfferStore::top_k_bucket(const Bucket& bucket, const TopKQuery& q,
                              TopKCtx& ctx) const {
  const IndexedBase& base = *bucket.base;
  ctx.stats.type_candidates += bucket.live;

  auto is_dead = [&](const StoredOffer& so) {
    return !bucket.dead.empty() && bucket.dead.count(so.offer->id) != 0;
  };
  auto passes = [&](const Offer& offer) {
    ++ctx.stats.scanned;
    if (q.filter) {
      cexpr::bind_offer(*q.filter, offer.attributes, ctx.filter_scratch);
      return cexpr::eval_filter(*q.filter, ctx.filter_scratch);
    }
    return q.constraint == nullptr || q.constraint->eval(offer.attributes);
  };
  auto score_of = [&](const Offer& offer) {
    ++ctx.stats.scored;
    if (q.score_prog) {
      cexpr::bind_offer(*q.score_prog, offer.attributes, ctx.score_scratch);
      return cexpr::eval_score(*q.score_prog, ctx.score_scratch);
    }
    return q.score ? detail::eval_score(*q.score, offer.attributes)
                   : std::numeric_limits<double>::quiet_NaN();
  };
  auto admit = [&](double score, const StoredOffer* so) {
    TopKCtx::Entry e{score, detail::score_rank_key(score), so};
    if (q.k == 0) {
      ctx.all.push_back(e);
      return;
    }
    if (ctx.heap.size() < q.k) {
      ctx.heap.push_back(e);
      std::push_heap(ctx.heap.begin(), ctx.heap.end(), TopKCtx::better);
      return;
    }
    if (TopKCtx::better(e, ctx.heap.front())) {
      std::pop_heap(ctx.heap.begin(), ctx.heap.end(), TopKCtx::better);
      ctx.heap.back() = e;
      std::push_heap(ctx.heap.begin(), ctx.heap.end(), TopKCtx::better);
    }
  };
  auto consider = [&](const StoredOffer& so) {
    if (!passes(*so.offer)) return;
    admit(score_of(*so.offer), &so);
  };

  // Dynamic offers cannot be filtered or scored here — their values arrive
  // at import time.  Hand them back whole, before any pruning: pruning
  // applies to static offers only.
  for (std::uint32_t slot : base.dynamic_slots) {
    const StoredOffer& so = base.slots[slot];
    if (!is_dead(so)) ctx.dynamic.push_back(so);
  }
  for (const StoredOffer& so : bucket.delta) {
    if (so.offer->dynamic_attrs.empty()) {
      consider(so);
    } else {
      ctx.dynamic.push_back(so);
    }
  }

  const std::size_t static_total =
      base.slots.size() - base.dynamic_slots.size();
  if (static_total == 0) return;

  // Whole-bucket interval bound: each referenced attribute ranges over its
  // ord column's [min, max] (offers outside the column score NaN -> -inf,
  // so they never raise the bound; dead slots only widen it).  A bound
  // *strictly* below the k-th key cannot displace anything — equal keys
  // still displace on smaller id, so equality is not enough.
  if (q.k > 0 && ctx.heap.size() == q.k && q.score != nullptr) {
    auto range_of = [&](const std::string& attr) {
      cexpr::AttrRange r;
      auto it = base.ord.find(attr);
      if (it != base.ord.end() && !it->second.empty()) {
        r.lo = it->second.front().first;
        r.hi = it->second.back().first;
        r.empty = false;
      }
      return r;
    };
    if (cexpr::score_upper_bound(*q.score, range_of) <
        ctx.heap.front().key) {
      ctx.stats.heap_prunes += static_total;
      return;
    }
  }

  // Index narrowing: identical eligibility to collect_bucket.  The eq/ord
  // indexes cover static offers only, so the narrowed set never contains a
  // dynamic slot (those were handed back above).
  std::vector<Selection> selections = plan_selections(bucket, q.constraint);

  // Ordered-index-directed walk: when the score is affine in exactly one
  // attribute with an ord column, walking from the favourable end visits
  // candidates in weakly decreasing rank-key order (affine_of guarantees
  // the rounded IEEE evaluation is weakly monotone).  Once the heap is
  // full, the first key strictly below the k-th ends the column — and the
  // off-column rest, which all score NaN -> -inf.  With a selective
  // constraint the walk still wins whenever matches are dense near the
  // favourable end, but can lose badly when they are not, so it runs
  // under a visit budget and hands whatever it has not visited to the
  // narrowed scan below.
  const double kNegInf = -std::numeric_limits<double>::infinity();
  bool walk_partial = false;
  if (q.k > 0 && ctx.affine.valid) {
    auto it = base.ord.find(ctx.affine.attr);
    if (it != base.ord.end() && !it->second.empty()) {
      constexpr std::size_t kWalkBudgetFloor = 512;
      constexpr std::size_t kWalkBudgetPerK = 8;
      const auto& col = it->second;
      ctx.stats.index_used = true;
      index_lookups_.fetch_add(1, std::memory_order_relaxed);
      ctx.visited.assign(base.slots.size(), 0);
      const bool from_high_end = ctx.affine.a > 0.0;
      const std::size_t n = col.size();
      const std::size_t budget =
          selections.empty()
              ? n
              : std::max<std::size_t>(kWalkBudgetFloor,
                                      q.k * kWalkBudgetPerK);
      std::size_t walked = 0;
      bool stopped = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (walked >= budget) {
          walk_partial = true;
          break;
        }
        std::uint32_t slot = col[from_high_end ? n - 1 - i : i].second;
        ctx.visited[slot] = 1;
        ++walked;
        const StoredOffer& so = base.slots[slot];
        if (is_dead(so)) continue;
        // Score before filtering: the stop decision needs the key even for
        // offers the constraint would reject.
        double score = score_of(*so.offer);
        double key = detail::score_rank_key(score);
        if (ctx.heap.size() == q.k && key < ctx.heap.front().key) {
          stopped = true;
          break;
        }
        if (passes(*so.offer)) admit(score, &so);
      }
      if (stopped) {
        ctx.stats.heap_prunes += static_total - walked;
        return;
      }
      if (!walk_partial) {
        // Off-column statics (attribute missing, non-numeric, or NaN) score
        // NaN -> -inf: they only matter while the heap is short of k, or
        // the k-th key is itself -inf (an id tie can still displace).
        if (ctx.heap.size() == q.k && ctx.heap.front().key != kNegInf) {
          ctx.stats.heap_prunes += static_total - walked;
          return;
        }
        if (selections.empty()) {
          for (std::uint32_t slot = 0; slot < base.slots.size(); ++slot) {
            if (ctx.visited[slot]) continue;
            const StoredOffer& so = base.slots[slot];
            if (!so.offer->dynamic_attrs.empty()) continue;
            if (!is_dead(so)) consider(so);
          }
          return;
        }
        walk_partial = true;  // narrowed scan below covers the rest
      }
      // Walk incomplete (budget exhausted or off-column stragglers left):
      // every passing offer is either already visited or inside the index
      // selection (narrowing is sound), so the scan below finishes the
      // bucket, skipping the walked prefix.
    }
  }

  if (!selections.empty()) {
    ctx.stats.index_used = true;
    index_lookups_.fetch_add(1, std::memory_order_relaxed);
    for_each_selected(base.slots.size(), selections, [&](std::uint32_t slot) {
      if (walk_partial && ctx.visited[slot]) return;
      const StoredOffer& so = base.slots[slot];
      if (!is_dead(so)) consider(so);
    });
    return;
  }

  // Plain scan of the static base.
  for (std::uint32_t slot = 0; slot < base.slots.size(); ++slot) {
    const StoredOffer& so = base.slots[slot];
    if (!so.offer->dynamic_attrs.empty()) continue;
    if (!is_dead(so)) consider(so);
  }
}

TopKResult OfferStore::collect_top_k(const TopKQuery& query) const {
  TopKCtx ctx;
  if (query.score != nullptr) ctx.affine = cexpr::affine_of(*query.score);
  if (query.k > 0) ctx.heap.reserve(query.k);

  ReadGuard guard(*this);
  const std::size_t shards = guard.shards();
  for (std::size_t s = 0; s < shards; ++s) {
    const ShardState* state = guard.state(s);
    for (const std::string& type : query.types) {
      auto it = state->buckets.find(type);
      if (it == state->buckets.end()) continue;
      top_k_bucket(*it->second, query, ctx);
    }
  }

  // Extract in final order while the guard still pins the snapshot — the
  // entries hold raw pointers into it.
  std::vector<TopKCtx::Entry>& pool = query.k == 0 ? ctx.all : ctx.heap;
  std::sort(pool.begin(), pool.end(), TopKCtx::better);
  TopKResult result;
  result.ranked.reserve(pool.size());
  for (const TopKCtx::Entry& e : pool) {
    result.ranked.push_back(ScoredOffer{e.score, e.key, *e.so});
  }
  result.dynamic = std::move(ctx.dynamic);
  result.stats = ctx.stats;
  return result;
}

std::vector<StoredOffer> OfferStore::collect(
    const std::vector<std::string>& types, const Constraint& constraint,
    MatchStats* stats) const {
  ReadGuard guard(*this);
  const std::size_t shards = guard.shards();
  std::vector<StoredOffer> out;
  for (std::size_t s = 0; s < shards; ++s) {
    const ShardState* state = guard.state(s);
    for (const std::string& type : types) {
      auto it = state->buckets.find(type);
      if (it == state->buckets.end()) continue;
      collect_bucket(*it->second, &constraint, out, stats);
    }
  }
  return out;
}

std::vector<StoredOffer> OfferStore::collect_all(
    const std::vector<std::string>& types) const {
  ReadGuard guard(*this);
  const std::size_t shards = guard.shards();
  std::vector<StoredOffer> out;
  for (std::size_t s = 0; s < shards; ++s) {
    const ShardState* state = guard.state(s);
    for (const std::string& type : types) {
      auto it = state->buckets.find(type);
      if (it == state->buckets.end()) continue;
      collect_bucket(*it->second, nullptr, out, nullptr);
    }
  }
  return out;
}

// --------------------------------------------------------- instrumentation

void OfferStore::reset_stats() noexcept {
  index_lookups_.store(0, std::memory_order_relaxed);
  base_rebuilds_.store(0, std::memory_order_relaxed);
  ReadGuard guard(*this);
  for (const auto& shard : guard.table().shards) {
    shard->rebuilds.store(0, std::memory_order_relaxed);
  }
}

std::vector<OfferStore::ShardStats> OfferStore::shard_stats() const {
  ReadGuard guard(*this);
  const std::size_t shards = guard.shards();
  std::vector<ShardStats> out(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const Shard& shard = *guard.table().shards[s];
    out[s].rebuilds = shard.rebuilds.load(std::memory_order_relaxed);
    out[s].limbo = shard.limbo_size.load(std::memory_order_relaxed);
    const ShardState* state = guard.state(s);
    out[s].types = state->buckets.size();
    for (const auto& [type, bucket] : state->buckets) {
      out[s].offers += bucket->live;
    }
  }
  return out;
}

}  // namespace cosm::trader
