#include "services/stock_quote.h"

#include <cmath>
#include <memory>
#include <sstream>

#include "common/rng.h"
#include "sidl/parser.h"

namespace cosm::services {

std::string stock_quote_sidl(const StockQuoteConfig& config) {
  std::ostringstream os;
  os << "module " << config.name << " {\n"
     << "  typedef struct {\n"
        "    string symbol;\n"
        "    double price;\n"
        "    double change;\n"
        "  } Quote_t;\n"
        "  interface COSM_Operations {\n"
        "    boolean Login([in] string user);\n"
        "    Quote_t GetQuote([in] string symbol);\n"
        "    void Logout();\n"
        "  };\n"
        "  module COSM_FSM {\n"
        "    states { LOGGED_OUT, LOGGED_IN };\n"
        "    initial LOGGED_OUT;\n"
        "    transition LOGGED_OUT Login LOGGED_IN;\n"
        "    transition LOGGED_IN GetQuote LOGGED_IN;\n"
        "    transition LOGGED_IN Logout LOGGED_OUT;\n"
        "  };\n"
        "  module COSM_Annotations {\n"
        "    annotate " << config.name << " \"Session-based stock quotes\";\n"
        "    annotate Login \"Open a quote session\";\n"
        "    annotate GetQuote \"Current price for a ticker symbol\";\n"
        "  };\n"
        "};\n";
  return os.str();
}

rpc::ServiceObjectPtr make_stock_quote_service(const StockQuoteConfig& config) {
  auto sid =
      std::make_shared<sidl::Sid>(sidl::parse_sid(stock_quote_sidl(config)));
  auto object = std::make_shared<rpc::ServiceObject>(std::move(sid));

  std::uint64_t seed = config.seed;
  object->on("Login", [](const std::vector<wire::Value>& args) {
    return wire::Value::boolean(!args.at(0).as_string().empty());
  });
  object->on("GetQuote", [seed](const std::vector<wire::Value>& args) {
    const std::string& symbol = args.at(0).as_string();
    Rng rng(seed ^ std::hash<std::string>{}(symbol));
    double price = 10.0 + rng.uniform() * 490.0;
    double change = -5.0 + rng.uniform() * 10.0;
    return wire::Value::structure(
        "Quote_t", {{"symbol", wire::Value::string(symbol)},
                    {"price", wire::Value::real(std::round(price * 100) / 100)},
                    {"change", wire::Value::real(std::round(change * 100) / 100)}});
  });
  object->on("Logout", [](const std::vector<wire::Value>&) {
    return wire::Value::null();
  });
  return object;
}

}  // namespace cosm::services
