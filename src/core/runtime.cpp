#include "core/runtime.h"

#include "rpc/activity_facade.h"
#include "rpc/channel.h"
#include "trader/sid_export.h"

namespace cosm::core {

CosmRuntime::CosmRuntime(rpc::Network& network, rpc::ServerOptions server_options)
    : CosmRuntime(network, RuntimeOptions{server_options, {}, {}}) {}

CosmRuntime::CosmRuntime(rpc::Network& network, RuntimeOptions options)
    : network_(network),
      retry_(options.retry),
      trader_("trader"),
      browser_("browser"),
      server_(network, "cosm", options.server),
      binder_(network),
      activities_(network) {
  trader_.set_federation_options(options.federation);
  trader_.set_tuning(options.trader_tuning);
  trader_ref_ = server_.add(trader::make_trader_service(trader_));
  browser_ref_ = server_.add(make_browser_service(browser_));
  names_ref_ = server_.add(naming::make_name_server_service(names_));
  repository_ref_ = server_.add(naming::make_interface_repository_service(repository_));
  groups_ref_ = server_.add(naming::make_group_manager_service(groups_));
  activities_ref_ = server_.add(rpc::make_activity_manager_service(activities_));

  names_.bind_name(WellKnownNames::kTrader, trader_ref_);
  names_.bind_name(WellKnownNames::kBrowser, browser_ref_);
  names_.bind_name(WellKnownNames::kNameServer, names_ref_);
  names_.bind_name(WellKnownNames::kRepository, repository_ref_);
  names_.bind_name(WellKnownNames::kGroupManager, groups_ref_);
  names_.bind_name(WellKnownNames::kActivityManager, activities_ref_);

  // ODP dynamic properties: the trader evaluates them by invoking the named
  // operation on the exporter over this runtime's network.  Fetches are
  // reads, so the runtime's retry policy applies.
  trader_.set_dynamic_fetcher(
      [this](const sidl::ServiceRef& exporter, const std::string& operation) {
        rpc::ChannelOptions channel_options;
        channel_options.retry = retry_;
        channel_options.idempotent = true;
        rpc::RpcChannel channel(network_, exporter, channel_options);
        return channel.call(operation, {});
      });

  // The infrastructure's own SIDs live in the repository like everyone
  // else's.
  repository_.put(trader_ref_.id, server_.find(trader_ref_.id)->sid());
  repository_.put(browser_ref_.id, server_.find(browser_ref_.id)->sid());
  repository_.put(names_ref_.id, server_.find(names_ref_.id)->sid());
  repository_.put(repository_ref_.id, server_.find(repository_ref_.id)->sid());
  repository_.put(groups_ref_.id, server_.find(groups_ref_.id)->sid());
  repository_.put(activities_ref_.id, server_.find(activities_ref_.id)->sid());
}

sidl::ServiceRef CosmRuntime::host(rpc::ServiceObjectPtr object) {
  sidl::SidPtr sid = object->sid();
  sidl::ServiceRef ref = server_.add(std::move(object));
  repository_.put(ref.id, std::move(sid));
  return ref;
}

sidl::ServiceRef CosmRuntime::offer_mediated(const std::string& entry_name,
                                             rpc::ServiceObjectPtr object) {
  sidl::SidPtr sid = object->sid();
  sidl::ServiceRef ref = host(std::move(object));
  browser_.register_service(entry_name, std::move(sid), ref);
  return ref;
}

std::pair<sidl::ServiceRef, std::string> CosmRuntime::offer_traded(
    rpc::ServiceObjectPtr object) {
  sidl::SidPtr sid = object->sid();
  sidl::ServiceRef ref = host(std::move(object));
  std::string offer_id = trader::export_sid_offer(trader_, *sid, ref);
  return {ref, offer_id};
}

void CosmRuntime::link_trader(const std::string& link_name,
                              const sidl::ServiceRef& remote_trader_ref) {
  trader_.link(link_name, std::make_shared<trader::RemoteTraderGateway>(
                              network_, remote_trader_ref, retry_));
}

}  // namespace cosm::core
