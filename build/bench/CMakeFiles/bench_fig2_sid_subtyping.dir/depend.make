# Empty dependencies file for bench_fig2_sid_subtyping.
# This may be replaced when dependencies are built.
