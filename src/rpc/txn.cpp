#include "rpc/txn.h"

#include <memory>
#include <set>

#include "common/error.h"
#include "rpc/channel.h"

namespace cosm::rpc {

std::string to_string(TxnOutcome outcome) {
  return outcome == TxnOutcome::Committed ? "committed" : "aborted";
}

void install_txn_participant(ServiceObject& object, TxnHooks hooks) {
  if (!hooks.prepare || !hooks.commit || !hooks.abort) {
    throw ContractError("txn participant needs prepare, commit and abort hooks");
  }

  // Per-object transaction state, shared by the three handlers.
  struct State {
    std::mutex mutex;
    std::set<std::string> prepared;
  };
  auto state = std::make_shared<State>();

  object.on("_prepare", [state, prepare = hooks.prepare](
                            const std::vector<wire::Value>& args) {
    if (args.size() != 1) throw ContractError("_prepare expects (txn_id)");
    const std::string& txn_id = args[0].as_string();
    bool vote = prepare(txn_id);
    if (vote) {
      std::lock_guard lock(state->mutex);
      state->prepared.insert(txn_id);
    }
    return wire::Value::boolean(vote);
  });

  object.on("_commit", [state, commit = hooks.commit](
                           const std::vector<wire::Value>& args) {
    if (args.size() != 1) throw ContractError("_commit expects (txn_id)");
    const std::string& txn_id = args[0].as_string();
    bool was_prepared;
    {
      std::lock_guard lock(state->mutex);
      was_prepared = state->prepared.erase(txn_id) > 0;
    }
    if (!was_prepared) {
      // 2PC safety: a commit decision must never reach an unprepared
      // participant; if it does, the coordinator and participant disagree.
      throw RpcError("commit for unprepared transaction '" + txn_id + "'");
    }
    commit(txn_id);
    return wire::Value::null();
  });

  object.on("_abort", [state, abort = hooks.abort](
                          const std::vector<wire::Value>& args) {
    if (args.size() != 1) throw ContractError("_abort expects (txn_id)");
    const std::string& txn_id = args[0].as_string();
    bool was_prepared;
    {
      std::lock_guard lock(state->mutex);
      was_prepared = state->prepared.erase(txn_id) > 0;
    }
    if (was_prepared) abort(txn_id);
    // Abort for an unknown transaction is a no-op (idempotent).
    return wire::Value::null();
  });
}

TxnReport TxnCoordinator::run(const std::vector<sidl::ServiceRef>& participants,
                              const std::string& txn_id) {
  TxnReport report;
  report.txn_id = txn_id;

  std::vector<wire::Value> args{wire::Value::string(txn_id)};

  // Phase 1: prepare.
  std::vector<const sidl::ServiceRef*> prepared;
  for (const auto& p : participants) {
    bool vote = false;
    try {
      RpcChannel channel(network_, p);
      vote = channel.call("_prepare", args).as_bool();
    } catch (const Error&) {
      vote = false;
    }
    if (vote) {
      prepared.push_back(&p);
    } else {
      report.dissenters.push_back(p.id);
    }
  }

  // Phase 2: decision.
  const bool commit = report.dissenters.empty() && !participants.empty();
  const std::string decision_op = commit ? "_commit" : "_abort";
  for (const sidl::ServiceRef* p : prepared) {
    try {
      RpcChannel channel(network_, *p);
      channel.call(decision_op, args);
    } catch (const Error&) {
      // A participant that misses the decision recovers by asking the
      // coordinator (not modelled); the decision itself stands.
    }
  }

  report.outcome = commit ? TxnOutcome::Committed : TxnOutcome::Aborted;
  if (commit) {
    ++committed_;
  } else {
    ++aborted_;
  }
  return report;
}

}  // namespace cosm::rpc
