#include "rpc/service_object.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "sidl/parser.h"

namespace cosm::rpc {
namespace {

using wire::Value;

sidl::SidPtr fsm_sid() {
  return std::make_shared<sidl::Sid>(sidl::parse_sid(R"(
    module Door {
      interface I {
        void Open();
        void Close();
        string Peek();
      };
      module COSM_FSM {
        states { CLOSED, OPEN };
        initial CLOSED;
        transition CLOSED Open OPEN;
        transition OPEN Close CLOSED;
      };
    };
  )"));
}

ServiceObjectPtr door(ServiceObjectOptions options = {}) {
  auto object = std::make_shared<ServiceObject>(fsm_sid(), options);
  object->on("Open", [](const std::vector<Value>&) { return Value::null(); });
  object->on("Close", [](const std::vector<Value>&) { return Value::null(); });
  object->on("Peek", [](const std::vector<Value>&) { return Value::string("ajar"); });
  return object;
}

TEST(ServiceObject, RequiresSid) {
  EXPECT_THROW(ServiceObject(nullptr), ContractError);
}

TEST(ServiceObject, RejectsInvalidSid) {
  auto bad = std::make_shared<sidl::Sid>(sidl::parse_sid(R"(
    module M {
      interface I { void Op(); };
      module COSM_FSM { states { A }; initial GHOST; };
    };
  )"));
  EXPECT_THROW(ServiceObject{bad}, TypeError);
}

TEST(ServiceObject, HandlerForUndeclaredOperationRejected) {
  auto object = std::make_shared<ServiceObject>(fsm_sid());
  EXPECT_THROW(
      object->on("Teleport", [](const std::vector<Value>&) { return Value(); }),
      ContractError);
  // Infrastructure ops are exempt.
  EXPECT_NO_THROW(
      object->on("_probe", [](const std::vector<Value>&) { return Value(); }));
}

TEST(ServiceObject, DispatchUnknownOperationThrowsNotFound) {
  auto object = door();
  EXPECT_THROW(object->dispatch("s", "Missing", {}), NotFound);
}

TEST(ServiceObject, UnimplementedDeclaredOperationThrowsNotFound) {
  auto object = std::make_shared<ServiceObject>(fsm_sid());
  EXPECT_THROW(object->dispatch("s", "Open", {}), NotFound);
}

TEST(ServiceObject, FsmEnforcedPerSession) {
  auto object = door();
  // Session A opens the door; session B's view is still CLOSED.
  object->dispatch("A", "Open", {});
  EXPECT_EQ(object->session_state("A"), "OPEN");
  EXPECT_EQ(object->session_state("B"), "CLOSED");
  // B cannot Close a door it never opened.
  EXPECT_THROW(object->dispatch("B", "Close", {}), ProtocolError);
  // A can.
  EXPECT_NO_THROW(object->dispatch("A", "Close", {}));
  EXPECT_EQ(object->session_state("A"), "CLOSED");
}

TEST(ServiceObject, FsmViolationDetailsInError) {
  auto object = door();
  try {
    object->dispatch("s", "Close", {});
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.state(), "CLOSED");
    EXPECT_EQ(e.operation(), "Close");
  }
  EXPECT_EQ(object->fsm_rejections(), 1u);
}

TEST(ServiceObject, UnrestrictedOperationBypassesFsm) {
  auto object = door();
  // Peek appears in no transition: callable in any state.
  EXPECT_EQ(object->dispatch("s", "Peek", {}).as_string(), "ajar");
  object->dispatch("s", "Open", {});
  EXPECT_EQ(object->dispatch("s", "Peek", {}).as_string(), "ajar");
}

TEST(ServiceObject, EnforcementCanBeDisabled) {
  ServiceObjectOptions options;
  options.enforce_fsm = false;
  auto object = door(options);
  EXPECT_NO_THROW(object->dispatch("s", "Close", {}));
  EXPECT_EQ(object->fsm_rejections(), 0u);
}

TEST(ServiceObject, ResetSessionReturnsToInitial) {
  auto object = door();
  object->dispatch("s", "Open", {});
  object->reset_session("s");
  EXPECT_EQ(object->session_state("s"), "CLOSED");
  EXPECT_NO_THROW(object->dispatch("s", "Open", {}));
}

TEST(ServiceObject, FailedHandlerDoesNotAdvanceState) {
  auto object = std::make_shared<ServiceObject>(fsm_sid());
  object->on("Open", [](const std::vector<Value>&) -> Value {
    throw RemoteFault("jammed");
  });
  EXPECT_THROW(object->dispatch("s", "Open", {}), RemoteFault);
  EXPECT_EQ(object->session_state("s"), "CLOSED");
}

TEST(ServiceObject, CountsDispatches) {
  auto object = door();
  object->dispatch("s", "Open", {});
  object->dispatch("s", "Peek", {});
  EXPECT_EQ(object->dispatch_count(), 2u);
}

TEST(ServiceObject, ImplementsQueries) {
  auto object = door();
  EXPECT_TRUE(object->implements("Open"));
  EXPECT_FALSE(object->implements("Missing"));
}

TEST(ServiceObject, NoFsmMeansNoRestrictions) {
  auto sid = std::make_shared<sidl::Sid>(
      sidl::parse_sid("module M { interface I { void A(); void B(); }; };"));
  auto object = std::make_shared<ServiceObject>(sid);
  object->on("A", [](const std::vector<Value>&) { return Value(); });
  object->on("B", [](const std::vector<Value>&) { return Value(); });
  EXPECT_NO_THROW(object->dispatch("s", "B", {}));
  EXPECT_NO_THROW(object->dispatch("s", "A", {}));
  EXPECT_EQ(object->session_state("s"), "");
}

}  // namespace
}  // namespace cosm::rpc
