// Import preferences: how a trader ranks matching offers to pick the "best
// possible" service (§2.1, Fig. 1 step 3).
//
// Syntax:  "first" | "random" | "min <Attr>" | "max <Attr>"
//       |  "score: <expr> [penalty <W> unless (<constraint>)]..."
// An empty preference string means "first" (export order).
//
// A `score:` preference ranks offers by a weighted arithmetic expression
// over numeric attributes, highest first (ties broken by offer id so every
// trader in a federation agrees on the order):
//
//     score: 0.7 * inv(latency_ms) + 0.3 * throughput
//            penalty 0.5 unless (Insured == true)
//
// Expressions combine numbers and attribute names with + - * /, unary
// minus, parentheses and the functions inv/abs/sqrt/log (unary) and
// min/max (binary).  A missing or non-numeric attribute evaluates to NaN,
// which poisons the whole score and ranks the offer last.  Each
// `penalty W unless (C)` clause subtracts W when constraint C fails —
// soft constraints alongside the import's hard constraint.

#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "trader/attributes.h"

namespace cosm::trader {

namespace detail {
struct ScoreIr;
}
namespace cexpr {
struct Program;
using ProgramPtr = std::shared_ptr<const Program>;
}

enum class PreferenceKind { First, Random, Min, Max, Score };

std::string to_string(PreferenceKind kind);

class Preference {
 public:
  /// Parse a preference spec; throws cosm::ParseError.
  static Preference parse(const std::string& text);

  Preference() = default;

  PreferenceKind kind() const noexcept { return kind_; }
  const std::string& attribute() const noexcept { return attr_; }

  /// Scoring IR for Score preferences (null otherwise).  Shared so
  /// Preference stays copyable; the IR is immutable after parse.
  const std::shared_ptr<const detail::ScoreIr>& score() const noexcept {
    return score_;
  }

  /// Rank offer indices over their attribute maps.  Offers missing the
  /// ranked attribute (or holding a non-numeric value) sort after all
  /// rankable ones, keeping their relative order.  `rng` drives Random.
  /// Score preferences rank (score desc, then caller-side id asc) in the
  /// trader itself — here they keep input order.
  std::vector<std::size_t> rank(const std::vector<const AttrMap*>& offers,
                                Rng& rng) const;

 private:
  PreferenceKind kind_ = PreferenceKind::First;
  std::string attr_;
  std::shared_ptr<const detail::ScoreIr> score_;
};

/// A parsed preference together with its compiled scoring bytecode.  The
/// program is null for non-Score kinds and for expressions exceeding the
/// VM's encoding limits (fall back to detail::eval_score).  Score programs
/// never identifier-fold — they also score offers from remote traders —
/// so, unlike compiled constraints, they carry no type-layout epoch.
struct CompiledPreference {
  Preference preference;
  cexpr::ProgramPtr score_prog;
};

/// LRU cache of compiled preferences keyed by preference text, mirroring
/// ConstraintCache: repeated imports with the same `score:` spec share one
/// parsed IR and one bytecode program.  Thread-safe; parse errors are not
/// cached.  Capacity 0 disables caching (every call parses).
class PreferenceCache {
 public:
  explicit PreferenceCache(std::size_t capacity = 128);

  /// Compiled preference for `text`; parses (and caches) on miss.  Throws
  /// cosm::ParseError like Preference::parse.
  std::shared_ptr<const CompiledPreference> get(const std::string& text);

  void set_capacity(std::size_t capacity);

  std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Nanoseconds spent parsing + compiling (cache misses only).
  std::uint64_t compile_ns() const noexcept {
    return compile_ns_.load(std::memory_order_relaxed);
  }
  void reset_stats() noexcept {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
    compile_ns_.store(0, std::memory_order_relaxed);
  }
  std::size_t size() const;

 private:
  struct Entry {
    std::shared_ptr<const CompiledPreference> compiled;
    std::list<std::string>::iterator lru_pos;
  };

  static std::shared_ptr<const CompiledPreference> build(
      const std::string& text);

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, Entry> entries_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> compile_ns_{0};
};

}  // namespace cosm::trader
