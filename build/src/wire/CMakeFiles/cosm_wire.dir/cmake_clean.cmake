file(REMOVE_RECURSE
  "CMakeFiles/cosm_wire.dir/codec.cpp.o"
  "CMakeFiles/cosm_wire.dir/codec.cpp.o.d"
  "CMakeFiles/cosm_wire.dir/marshal.cpp.o"
  "CMakeFiles/cosm_wire.dir/marshal.cpp.o.d"
  "CMakeFiles/cosm_wire.dir/static_codec.cpp.o"
  "CMakeFiles/cosm_wire.dir/static_codec.cpp.o.d"
  "CMakeFiles/cosm_wire.dir/value.cpp.o"
  "CMakeFiles/cosm_wire.dir/value.cpp.o.d"
  "libcosm_wire.a"
  "libcosm_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosm_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
