#include "trader/trader.h"

#include <algorithm>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/call_context.h"
#include "trader/cexpr_ir.h"
#include "wire/marshal.h"

namespace cosm::trader {

SubscriptionInfo TraderGateway::subscribe(Trader&, const SubscriptionScope&) {
  throw ContractError("gateway '" + describe() +
                      "' does not support subscriptions");
}

void TraderGateway::unsubscribe(std::uint64_t) {
  throw ContractError("gateway '" + describe() +
                      "' does not support subscriptions");
}

SubscriptionInfo LocalTraderGateway::subscribe(Trader& subscriber,
                                               const SubscriptionScope& scope) {
  return trader_.add_subscription(
      subscriber.name(), scope,
      std::make_shared<LocalReplicationSink>(subscriber));
}

void LocalTraderGateway::unsubscribe(std::uint64_t subscription_id) {
  trader_.remove_subscription(subscription_id);
}

Trader::Trader(std::string name, std::uint64_t rng_seed,
               std::shared_ptr<storage::StorageEngine> engine)
    : name_(std::move(name)),
      storage_(engine ? std::move(engine)
                      : std::make_shared<storage::NullStorage>()),
      rng_(rng_seed) {
  if (name_.empty()) throw ContractError("trader needs a name");
  // Journal type definitions as the management interface mutates them
  // (suppressed while recover() replays them back in).
  types_.set_listener(
      [this](const ServiceType& type) {
        if (!recovering_) storage_->log_type_added(type);
      },
      [this](const std::string& type_name) {
        if (!recovering_) storage_->log_type_removed(type_name);
      });
}

Trader::~Trader() { shutdown(); }

void Trader::shutdown() {
  {
    std::lock_guard lock(pump_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  // 1. Pump: no more background flush/digest rounds.
  stop_replication_pump();
  // 2. Subscriptions and replicas: no further sink calls or delta queues.
  {
    std::lock_guard io(repl_io_mutex_);
    std::lock_guard lock(repl_mutex_);
    subscriptions_.clear();
    has_subscriptions_.store(false, std::memory_order_relaxed);
  }
  {
    std::lock_guard lock(replica_mutex_);
    replicas_.clear();
  }
  // 3. Snapshot worker off (it epoch-pins the store), then the store's
  // retired state: the trader is quiescent now, which is exactly the
  // precondition reclaim_retired() needs.
  storage_->set_snapshot_source(nullptr);
  store_.reclaim_retired();
  // 4. Journal: everything staged becomes durable before we return.
  storage_->flush();
}

void Trader::set_subscription_sink_factory(SinkFactory factory) {
  std::lock_guard lock(repl_mutex_);
  sink_factory_ = std::move(factory);
}

bool Trader::recover() {
  if (store_.size() != 0 || types_.size() != 0) {
    throw ContractError("trader '" + name_ +
                        "' must recover before any mutation");
  }
  storage::RecoveredState state;
  const bool recovered = storage_->recover(&state);
  if (!recovered) {
    storage_->set_snapshot_source(this);
    return false;
  }

  // Types, supertypes first (the manager validates supertype existence on
  // add; a type whose supertype never resolves would mean a corrupt
  // journal — drop it rather than crash the whole recovery).
  recovering_ = true;
  std::vector<ServiceType> pending = std::move(state.types);
  for (std::size_t added = 1; !pending.empty() && added > 0;) {
    added = 0;
    std::vector<ServiceType> next_round;
    for (ServiceType& type : pending) {
      if (type.supertype.empty() || types_.has(type.supertype)) {
        types_.add(std::move(type));
        ++added;
      } else {
        next_round.push_back(std::move(type));
      }
    }
    pending = std::move(next_round);
  }
  recovering_ = false;

  // Offers, one insert_batch per type (amortised locking exactly like a
  // bulk export); offers whose type vanished are unservable — skip.
  std::map<std::string, std::vector<OfferPtr>> by_type;
  for (OfferPtr& offer : state.offers) {
    std::vector<OfferPtr>& group = by_type[offer->service_type];
    group.push_back(std::move(offer));
  }
  for (auto& [type, offers] : by_type) {
    if (!types_.has(type)) continue;
    store_.insert_batch(std::move(offers), types_.schema_of(type));
  }
  next_offer_.store(state.next_offer, std::memory_order_relaxed);
  {
    std::lock_guard lock(mutex_);
    clock_hours_ = state.clock_hours;
  }

  // Subscriptions: rebuild each sink from its persisted descriptor; mark
  // the stream rearm_pending so the first flush runs one reset_seq
  // digest/repair round instead of a full resnapshot.  Ids of dropped
  // subscriptions are still burned — a recovered publisher must never
  // reuse a subscription id a subscriber may still hold.
  {
    std::lock_guard lock(repl_mutex_);
    for (storage::SubscriptionRecord& rec : state.subscriptions) {
      next_subscription_ = std::max(next_subscription_, rec.id + 1);
      if (rec.sink_desc.empty() || !sink_factory_) continue;
      std::shared_ptr<ReplicationSink> sink;
      try {
        sink = sink_factory_(rec.sink_desc);
      } catch (const Error&) {
        sink = nullptr;
      }
      if (!sink) continue;
      auto sub = std::make_shared<Subscription>();
      sub->id = rec.id;
      sub->subscriber = rec.subscriber;
      sub->sink_desc = rec.sink_desc;
      if (!rec.scope.constraint.empty()) {
        sub->scope_constraint = constraint_cache_.get(rec.scope.constraint);
      }
      sub->scope = std::move(rec.scope);
      sub->sink = std::move(sink);
      sub->next_seq = rec.next_seq;
      sub->queue_first_seq = rec.next_seq;
      sub->needs_snapshot = false;
      sub->rearm_pending = true;
      subscriptions_.push_back(std::move(sub));
    }
    has_subscriptions_.store(!subscriptions_.empty(),
                             std::memory_order_relaxed);
  }
  storage_->set_snapshot_source(this);
  return true;
}

storage::SnapshotState Trader::snapshot_state() {
  storage::SnapshotState state;
  state.next_offer = next_offer_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(mutex_);
    state.clock_hours = clock_hours_;
  }
  state.types = types_.all();
  std::vector<StoredOffer> stored = store_.collect_all(store_.type_names());
  state.offers.reserve(stored.size());
  for (const StoredOffer& so : stored) state.offers.push_back(*so.offer);
  {
    std::lock_guard lock(repl_mutex_);
    for (const auto& sub : subscriptions_) {
      if (sub->sink_desc.empty()) continue;
      storage::SubscriptionRecord rec;
      rec.id = sub->id;
      rec.subscriber = sub->subscriber;
      rec.sink_desc = sub->sink_desc;
      rec.scope = sub->scope;
      rec.next_seq = sub->next_seq;
      state.subscriptions.push_back(std::move(rec));
    }
  }
  return state;
}

void Trader::set_tuning(const TraderTuning& tuning) {
  OfferStore::Tuning store_tuning;
  store_tuning.enable_indexes = tuning.enable_indexes;
  store_tuning.shard_count = tuning.store_shards;
  store_tuning.hot_split_threshold = tuning.hot_split_threshold;
  store_.set_tuning(store_tuning);
  constraint_cache_.set_capacity(tuning.constraint_cache_capacity);
  preference_cache_.set_capacity(tuning.constraint_cache_capacity);
  selection_vm_enabled_.store(tuning.enable_selection_vm,
                              std::memory_order_relaxed);
  replica_resolve_enabled_.store(tuning.enable_replica_resolve,
                                 std::memory_order_relaxed);
}

void Trader::set_dynamic_fetcher(DynamicFetcher fetcher) {
  std::lock_guard lock(mutex_);
  dynamic_fetcher_ = std::move(fetcher);
}

std::string Trader::export_offer(const std::string& service_type,
                                 const sidl::ServiceRef& ref, AttrMap attributes) {
  return export_offer(service_type, ref, std::move(attributes), {});
}

std::string Trader::export_offer(const std::string& service_type,
                                 const sidl::ServiceRef& ref, AttrMap attributes,
                                 std::map<std::string, std::string> dynamic_attrs) {
  // Batch of one: the batch path owns validation, id minting, journaling,
  // store publication and replication — one write path to keep correct.
  std::vector<BatchOfferSpec> specs(1);
  specs[0].ref = ref;
  specs[0].attributes = std::move(attributes);
  specs[0].dynamic_attrs = std::move(dynamic_attrs);
  return export_batch(service_type, std::move(specs)).front();
}

std::vector<std::string> Trader::export_batch(
    const std::string& service_type, std::vector<BatchOfferSpec> specs) {
  // Validate every spec before applying any: a bulk publisher with one bad
  // offer gets a clean failure, not a half-registered batch.
  for (const BatchOfferSpec& spec : specs) {
    if (!spec.ref.valid()) {
      throw ContractError("cannot export an invalid reference");
    }
    std::set<std::string> dynamic_names;
    for (const auto& [attr, operation] : spec.dynamic_attrs) {
      if (operation.empty()) {
        throw ContractError("dynamic attribute '" + attr +
                            "' needs an operation");
      }
      dynamic_names.insert(attr);
    }
    types_.check_offer(service_type, spec.attributes, dynamic_names);
  }

  std::vector<std::string> ids;
  ids.reserve(specs.size());
  std::vector<OfferPtr> offers;
  offers.reserve(specs.size());
  for (BatchOfferSpec& spec : specs) {
    Offer offer;
    offer.id = name_ + "/offer-" +
               std::to_string(next_offer_.fetch_add(1, std::memory_order_relaxed));
    offer.service_type = service_type;
    offer.ref = spec.ref;
    offer.attributes = std::move(spec.attributes);
    offer.dynamic_attrs = std::move(spec.dynamic_attrs);
    ids.push_back(offer.id);
    offers.push_back(std::make_shared<const Offer>(std::move(offer)));
  }
  // Journal before publication; the apply scope spans store insert AND
  // replication enqueue so a snapshot fork never truncates a record whose
  // effects it does not contain (storage/wal_storage.h, step 3).
  storage::ApplyScope apply_scope(storage_.get());
  storage_->log_upserts(offers, next_offer_.load(std::memory_order_relaxed));
  std::vector<OfferPtr> replicate;
  if (has_subscriptions_.load(std::memory_order_relaxed)) replicate = offers;
  store_.insert_batch(std::move(offers), types_.schema_of(service_type));
  for (const OfferPtr& published : replicate) replicate_upsert(*published);
  exports_.fetch_add(ids.size(), std::memory_order_relaxed);
  auto& reg = obs::metrics();
  if (reg.enabled()) {
    static obs::Counter& exports = reg.counter("trader.exports");
    exports.add(ids.size());
  }
  return ids;
}

bool Trader::resolve_dynamic(const Offer& offer, AttrMap& merged) {
  DynamicFetcher fetcher;
  {
    std::lock_guard lock(mutex_);
    fetcher = dynamic_fetcher_;
  }
  if (!fetcher) return false;  // unresolved dynamics: conservative no-match
  std::vector<AttributeDef> schema = types_.schema_of(offer.service_type);
  for (const auto& [attr, operation] : offer.dynamic_attrs) {
    wire::Value value;
    try {
      value = fetcher(offer.ref, operation);
      dynamic_fetches_.fetch_add(1, std::memory_order_relaxed);
    } catch (const Error&) {
      return false;  // exporter unreachable or faulted
    }
    for (const auto& def : schema) {
      if (def.name == attr && !wire::conforms(value, *def.type)) {
        return false;  // exporter returned an ill-typed property value
      }
    }
    merged[attr] = std::move(value);
  }
  return true;
}

void Trader::set_lease(const std::string& offer_id,
                       std::uint64_t expires_at_hours) {
  OfferPtr current = store_.find(offer_id);
  if (!current) {
    throw NotFound("no offer '" + offer_id + "' at trader '" + name_ + "'");
  }
  Offer leased = *current;
  leased.lease_expires_at = expires_at_hours;
  OfferPtr next = std::make_shared<const Offer>(std::move(leased));
  storage::ApplyScope apply_scope(storage_.get());
  storage_->log_upserts({next});
  if (!store_.replace(offer_id, next)) {
    throw NotFound("no offer '" + offer_id + "' at trader '" + name_ + "'");
  }
  if (has_subscriptions_.load(std::memory_order_relaxed)) {
    replicate_upsert(*next);
  }
}

std::size_t Trader::advance_clock(std::uint64_t hours) {
  std::uint64_t now;
  {
    std::lock_guard lock(mutex_);
    clock_hours_ += hours;
    now = clock_hours_;
  }
  std::vector<std::pair<std::string, std::string>> victims;
  const bool replicating = has_subscriptions_.load(std::memory_order_relaxed);
  const bool journaling = storage_->durable();
  std::size_t swept = store_.erase_if(
      [now](const Offer& offer) {
        return offer.lease_expires_at != 0 && offer.lease_expires_at <= now;
      },
      (replicating || journaling) ? &victims : nullptr);
  // Apply-then-log (unlike offer mutations): replaying a clock advance or
  // a sweep of already-gone offers is idempotent, so truncation on either
  // side of these records is safe without an apply scope.
  storage_->log_clock(now);
  if (journaling && !victims.empty()) {
    std::vector<std::string> victim_ids;
    victim_ids.reserve(victims.size());
    for (const auto& [id, type] : victims) victim_ids.push_back(id);
    storage_->log_removes(victim_ids);
  }
  if (replicating) {
    for (const auto& [id, type] : victims) replicate_remove(id, type);
  }
  expired_.fetch_add(swept, std::memory_order_relaxed);
  return swept;
}

std::uint64_t Trader::clock_hours() const {
  std::lock_guard lock(mutex_);
  return clock_hours_;
}

void Trader::withdraw(const std::string& offer_id) {
  // Batch of one (same single write path as export_offer/modify).
  if (withdraw_batch({offer_id}) == 0) {
    throw NotFound("no offer '" + offer_id + "' at trader '" + name_ + "'");
  }
}

std::size_t Trader::withdraw_batch(const std::vector<std::string>& offer_ids) {
  storage::ApplyScope apply_scope(storage_.get());
  storage_->log_removes(offer_ids);
  if (!has_subscriptions_.load(std::memory_order_relaxed)) {
    return store_.withdraw_batch(offer_ids);
  }
  // Capture types before the erase so Remove deltas can be scope-filtered.
  // A concurrent remove can race the capture; a duplicate Remove delta is
  // an idempotent no-op at the replica.
  std::vector<std::pair<std::string, std::string>> present;
  present.reserve(offer_ids.size());
  for (const std::string& id : offer_ids) {
    if (OfferPtr offer = store_.find(id)) {
      present.emplace_back(id, offer->service_type);
    }
  }
  std::size_t removed = store_.withdraw_batch(offer_ids);
  for (const auto& [id, type] : present) replicate_remove(id, type);
  return removed;
}

std::size_t Trader::modify_batch(
    std::vector<std::pair<std::string, AttrMap>> changes) {
  // Resolve + validate first (throws before anything is applied); unknown
  // ids drop out here, mirroring withdraw_batch's skip semantics.
  std::vector<std::pair<std::string, OfferPtr>> resolved;
  resolved.reserve(changes.size());
  for (auto& [offer_id, attributes] : changes) {
    OfferPtr current = store_.find(offer_id);
    if (!current) continue;
    types_.check_offer(current->service_type, attributes);
    Offer modified = *current;
    modified.attributes = std::move(attributes);
    resolved.emplace_back(offer_id,
                          std::make_shared<const Offer>(std::move(modified)));
  }
  storage::ApplyScope apply_scope(storage_.get());
  if (!resolved.empty()) {
    std::vector<OfferPtr> journalled;
    journalled.reserve(resolved.size());
    for (const auto& [id, next] : resolved) journalled.push_back(next);
    storage_->log_upserts(journalled);
  }
  std::vector<OfferPtr> replicate;
  if (has_subscriptions_.load(std::memory_order_relaxed)) {
    replicate.reserve(resolved.size());
    for (const auto& [id, next] : resolved) replicate.push_back(next);
  }
  std::size_t applied = store_.modify_batch(std::move(resolved));
  for (const OfferPtr& next : replicate) replicate_upsert(*next);
  return applied;
}

void Trader::modify(const std::string& offer_id, AttrMap attributes) {
  // Batch of one; the pre-check keeps the single-op contract (NotFound for
  // unknown ids) that the batch path deliberately relaxes to a skip.
  if (!store_.find(offer_id)) {
    throw NotFound("no offer '" + offer_id + "' at trader '" + name_ + "'");
  }
  std::vector<std::pair<std::string, AttrMap>> changes;
  changes.emplace_back(offer_id, std::move(attributes));
  if (modify_batch(std::move(changes)) == 0) {
    throw NotFound("offer '" + offer_id + "' vanished during modify");
  }
}

std::vector<Offer> Trader::list_offers(const std::string& service_type) const {
  if (!types_.has(service_type)) {
    throw NotFound("unknown service type '" + service_type + "'");
  }
  std::vector<StoredOffer> stored =
      store_.collect_all(types_.subtype_closure(service_type)->types);
  std::sort(stored.begin(), stored.end(),
            [](const StoredOffer& a, const StoredOffer& b) {
              return a.seq < b.seq;
            });
  std::vector<Offer> out;
  out.reserve(stored.size());
  for (const StoredOffer& so : stored) out.push_back(*so.offer);
  return out;
}

std::vector<Offer> Trader::match_local(const ImportRequest& request,
                                       const Constraint& constraint) {
  // Candidates come out of a copy-free store snapshot — concurrent
  // exports/withdraws never block this, and dynamic-property fetches (RPCs
  // to exporters) happen with no trader lock held.  The store narrows by
  // type bucket and secondary index; the constraint is (re-)evaluated on
  // every candidate, so narrowing only has to be a superset of the truth.
  SubtypeClosurePtr closure = types_.subtype_closure(request.service_type);
  MatchStats stats;
  std::vector<StoredOffer> candidates =
      store_.collect(closure->types, constraint, &stats);
  evaluated_.fetch_add(stats.type_candidates, std::memory_order_relaxed);
  scanned_.fetch_add(stats.scanned, std::memory_order_relaxed);
  // Export order across buckets — keeps ranking deterministic and
  // identical to the pre-index linear scan.
  std::sort(candidates.begin(), candidates.end(),
            [](const StoredOffer& a, const StoredOffer& b) {
              return a.seq < b.seq;
            });
  std::vector<Offer> matched;
  for (const StoredOffer& candidate : candidates) {
    const Offer& offer = *candidate.offer;
    if (offer.dynamic_attrs.empty()) {
      // Only matching offers are ever copied out of the snapshot.
      if (constraint.eval(offer.attributes)) matched.push_back(offer);
      continue;
    }
    AttrMap merged = offer.attributes;
    if (!resolve_dynamic(offer, merged)) continue;
    if (constraint.eval(merged)) {
      // The importer sees the fetched values (they are what matched).
      Offer fresh = offer;
      fresh.attributes = std::move(merged);
      matched.push_back(std::move(fresh));
    }
  }
  return matched;
}

std::vector<Trader::ScoredMatch> Trader::match_scored(
    const ImportRequest& request, const CompiledPreference& pref) {
  SubtypeClosurePtr closure = types_.subtype_closure(request.service_type);
  const detail::ScoreIr& ir = *pref.preference.score();
  std::vector<ScoredMatch> out;

  if (selection_vm_enabled_.load(std::memory_order_relaxed)) {
    // Read the layout epoch BEFORE the ever-declared snapshot: the set only
    // grows, and each add/remove replaces the set before bumping the epoch,
    // so the snapshot read second covers at least everything declared as of
    // the epoch read first — a program cached under that epoch can never
    // have folded a name the snapshot declares.  The reversed order could.
    std::uint64_t epoch = types_.layout_epoch();
    auto declared = types_.ever_declared_attrs();
    auto compiled =
        constraint_cache_.get_compiled(request.constraint, epoch, declared);

    TopKQuery query;
    query.types = closure->types;
    query.constraint = &compiled->constraint;
    query.filter = compiled->filter;
    query.score = &ir;
    query.score_prog = pref.score_prog;
    query.k = request.max_matches;
    TopKResult top = store_.collect_top_k(query);
    evaluated_.fetch_add(top.stats.type_candidates, std::memory_order_relaxed);
    scanned_.fetch_add(top.stats.scanned, std::memory_order_relaxed);
    offers_scored_.fetch_add(top.stats.scored, std::memory_order_relaxed);
    heap_prunes_.fetch_add(top.stats.heap_prunes, std::memory_order_relaxed);

    out.reserve(top.ranked.size() + top.dynamic.size());
    for (const ScoredOffer& so : top.ranked) {
      out.push_back({so.score, so.key, *so.stored.offer});
    }
    // Dynamic offers come back unfiltered and unscored — their values only
    // exist after the fetch.  Resolve, filter on the fetched values, score,
    // and let the caller's merge re-rank.
    for (const StoredOffer& so : top.dynamic) {
      AttrMap merged = so.offer->attributes;
      if (!resolve_dynamic(*so.offer, merged)) continue;
      if (!compiled->constraint.eval(merged)) continue;
      double score = detail::eval_score(ir, merged);
      offers_scored_.fetch_add(1, std::memory_order_relaxed);
      Offer fresh = *so.offer;
      fresh.attributes = std::move(merged);
      out.push_back({score, detail::score_rank_key(score), std::move(fresh)});
    }
    return out;
  }

  // Reference path (VM off): collect, tree-walk the constraint, score every
  // match, no pruning.  The caller's final sort produces the same order the
  // top-k engine would have.
  std::shared_ptr<const Constraint> constraint =
      constraint_cache_.get(request.constraint);
  MatchStats stats;
  std::vector<StoredOffer> candidates =
      store_.collect(closure->types, *constraint, &stats);
  evaluated_.fetch_add(stats.type_candidates, std::memory_order_relaxed);
  scanned_.fetch_add(stats.scanned, std::memory_order_relaxed);
  for (const StoredOffer& candidate : candidates) {
    const Offer& offer = *candidate.offer;
    if (offer.dynamic_attrs.empty()) {
      if (!constraint->eval(offer.attributes)) continue;
      double score = detail::eval_score(ir, offer.attributes);
      offers_scored_.fetch_add(1, std::memory_order_relaxed);
      out.push_back({score, detail::score_rank_key(score), offer});
      continue;
    }
    AttrMap merged = offer.attributes;
    if (!resolve_dynamic(offer, merged)) continue;
    if (!constraint->eval(merged)) continue;
    double score = detail::eval_score(ir, merged);
    offers_scored_.fetch_add(1, std::memory_order_relaxed);
    Offer fresh = offer;
    fresh.attributes = std::move(merged);
    out.push_back({score, detail::score_rank_key(score), std::move(fresh)});
  }
  return out;
}

std::vector<Offer> Trader::import(const ImportRequest& request) {
  return import_ex(request).offers;
}

ImportResult Trader::import_ex(const ImportRequest& request) {
  if (!types_.has(request.service_type)) {
    throw NotFound("trader '" + name_ + "' has no service type '" +
                   request.service_type + "'");
  }
  if (request.expired()) {
    throw RpcError("deadline exceeded before import at trader '" + name_ + "'");
  }
  auto& reg = obs::metrics();
  auto& tr = obs::tracer();
  std::chrono::steady_clock::time_point started{};
  if (reg.enabled()) started = std::chrono::steady_clock::now();
  obs::Span span;
  if (tr.enabled()) {
    // Parent preference: ids carried on the request (RPC facade / federated
    // hop), falling back to the calling thread's context (local import made
    // from inside a traced dispatch).
    std::uint64_t trace = request.trace_id;
    std::uint64_t parent = request.parent_span_id;
    if (trace == 0) {
      const rpc::CallContext& ctx = rpc::current_call_context();
      trace = ctx.trace_id;
      parent = ctx.span_id;
    }
    span = tr.start_span("trader.import:" + request.service_type, trace, parent);
  }
  // Compiled constraints and preferences are cached by text: repeated
  // local imports and federation-forwarded imports (which carry both texts
  // verbatim) share one AST and one bytecode program.
  std::shared_ptr<const CompiledPreference> pref =
      preference_cache_.get(request.preference);
  const bool scored = pref->preference.kind() == PreferenceKind::Score;

  ImportResult result;
  std::vector<ScoredMatch> scored_matched;
  std::vector<Offer> matched;
  if (scored) {
    scored_matched = match_scored(request, *pref);
  } else {
    std::shared_ptr<const Constraint> constraint =
        constraint_cache_.get(request.constraint);
    matched = match_local(request, *constraint);
  }

  // Federation sweep: forward with a decremented hop budget; duplicate
  // offers (diamond topologies) collapse on offer id.  Merging in link
  // order keeps the result deterministic.  A failing link yields a Failed
  // outcome and a reduced result set, never a failed import; a link over
  // its failure threshold is quarantined and skipped entirely until its
  // TTL expires.
  if (request.hop_limit > 0) {
    ImportRequest forwarded = request;
    forwarded.hop_limit = request.hop_limit - 1;
    if (scored) {
      // Score ranking is deterministic across traders — same expression,
      // same tie-break on offer id — so every hop ranks with the forwarded
      // preference and returns only its best max_matches: any offer it
      // drops is dominated by k it returns, so the global top k is intact.
    } else {
      // Deterministic preferences (first / min / max) rank identically on
      // every trader, so each hop can rank with the forwarded preference
      // and return a bounded k instead of its whole match set: any offer a
      // hop drops is dominated (or preceded, for first) by k offers it did
      // return.  The slack absorbs offers lost to cross-link duplicates at
      // the k-boundary — an offer deduplicated away "refunds" a slot the
      // dominance argument assumed.  `random` has no dominance argument
      // (the importer's rng must see the full candidate set) and k == 0
      // means unlimited — both keep the unbounded forward.
      const PreferenceKind kind = pref->preference.kind();
      const bool deterministic = kind == PreferenceKind::First ||
                                 kind == PreferenceKind::Min ||
                                 kind == PreferenceKind::Max;
      if (deterministic && request.max_matches > 0) {
        forwarded.max_matches =
            request.max_matches +
            std::min<std::size_t>(request.max_matches, 16);
      } else {
        forwarded.max_matches = 0;   // rank after the merge, not per trader
        forwarded.preference.clear();  // remote ranking would be wasted work
      }
    }
    if (span.valid()) {
      // Federated hops hang under this trader's import span.
      forwarded.trace_id = span.trace_id;
      forwarded.parent_span_id = span.span_id;
    }
    std::vector<std::vector<Offer>> per_link = sweep_links(forwarded, result);

    if (scored) {
      // Remote offers are rescored locally — a merge must never depend on
      // another trader's arithmetic — and deduplicated local-first by id.
      const detail::ScoreIr& ir = *pref->preference.score();
      std::set<std::string> seen;
      for (const auto& m : scored_matched) seen.insert(m.offer.id);
      for (auto& link_offers : per_link) {
        for (Offer& offer : link_offers) {
          if (!seen.insert(offer.id).second) continue;
          double score = detail::eval_score(ir, offer.attributes);
          offers_scored_.fetch_add(1, std::memory_order_relaxed);
          scored_matched.push_back(
              {score, detail::score_rank_key(score), std::move(offer)});
        }
      }
    } else {
      std::set<std::string> seen;
      for (const auto& offer : matched) seen.insert(offer.id);
      for (auto& link_offers : per_link) {
        for (Offer& offer : link_offers) {
          if (seen.insert(offer.id).second) matched.push_back(std::move(offer));
        }
      }
    }
  }

  // Rank and cap.
  imports_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Offer> ranked;
  if (scored) {
    // Deterministic federation-wide order: rank key descending, offer id
    // ascending — every trader agrees regardless of merge arrival order.
    std::sort(scored_matched.begin(), scored_matched.end(),
              [](const ScoredMatch& a, const ScoredMatch& b) {
                if (a.key != b.key) return a.key > b.key;
                return a.offer.id < b.offer.id;
              });
    if (request.max_matches > 0 &&
        scored_matched.size() > request.max_matches) {
      scored_matched.resize(request.max_matches);
    }
    ranked.reserve(scored_matched.size());
    for (ScoredMatch& m : scored_matched) ranked.push_back(std::move(m.offer));
  } else if (pref->preference.kind() == PreferenceKind::First) {
    // "first" keeps the merge order as-is: no attribute-pointer vector, no
    // permutation, no rng traffic — the default preference costs nothing.
    ranked = std::move(matched);
  } else {
    std::vector<const AttrMap*> attr_ptrs;
    attr_ptrs.reserve(matched.size());
    for (const auto& offer : matched) attr_ptrs.push_back(&offer.attributes);
    std::vector<std::size_t> order;
    {
      std::lock_guard lock(rng_mutex_);
      order = pref->preference.rank(attr_ptrs, rng_);
    }
    ranked.reserve(matched.size());
    for (std::size_t idx : order) ranked.push_back(std::move(matched[idx]));
  }
  if (request.max_matches > 0 && ranked.size() > request.max_matches) {
    ranked.resize(request.max_matches);
  }
  result.offers = std::move(ranked);
  if (span.valid()) {
    tr.finish(std::move(span),
              std::to_string(result.offers.size()) + " offers");
  }
  if (reg.enabled()) {
    static obs::Counter& imports = reg.counter("trader.imports");
    imports.add();
    if (started != std::chrono::steady_clock::time_point{}) {
      static obs::Histogram& latency = reg.histogram("trader.import_latency_us");
      latency.record_us(obs::elapsed_us(started));
    }
  }
  return result;
}

// All links are queried concurrently — in a federation every hop is a
// network round trip, so a sequential sweep costs the sum of the link
// latencies where this costs the maximum.  Links whose subscription covers
// the query skip the round trip entirely and resolve from the local
// replica (quarantine state is irrelevant for those — no call is made).
std::vector<std::vector<Offer>> Trader::sweep_links(
    const ImportRequest& forwarded, ImportResult& result) {
  auto& reg = obs::metrics();
  struct SweepTarget {
    std::string name;
    std::shared_ptr<TraderGateway> gateway;  // null: quarantined/replicated
    std::uint64_t subscription_id = 0;
    ReplicaStatePtr replica;  // non-null: resolve locally
  };
  std::vector<SweepTarget> targets;
  {
    std::lock_guard lock(mutex_);
    targets.reserve(links_.size());
    for (const auto& link : links_) {
      targets.push_back({link.name, link.gateway, link.subscription_id, {}});
    }
  }
  // Replica resolution only where the replica IS the remote answer: at
  // hop_limit 0 the subscribed trader would match purely locally, which is
  // exactly what its replica holds.  A deeper query must fan out — the
  // replica knows nothing about the publisher's own links.
  const bool replica_eligible =
      forwarded.hop_limit == 0 &&
      replica_resolve_enabled_.load(std::memory_order_relaxed);
  for (auto& target : targets) {
    if (target.subscription_id == 0) continue;
    ReplicaStatePtr replica;
    {
      std::lock_guard lock(replica_mutex_);
      for (const auto& rep : replicas_) {
        if (rep->link_name == target.name &&
            rep->subscription_id == target.subscription_id) {
          if (rep->synced) replica = rep;
          break;
        }
      }
    }
    if (replica && replica_eligible && covers_query(*replica, forwarded)) {
      target.replica = std::move(replica);
      target.gateway = nullptr;
      repl_local_resolves_.fetch_add(1, std::memory_order_relaxed);
    } else {
      repl_fanout_resolves_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Quarantine pass (only links that would actually be called): inside the
  // TTL the link is skipped; once the TTL expires exactly one sweep claims
  // a half-open probe call — concurrent sweeps keep skipping until its
  // outcome lands in note_link_outcomes.
  {
    std::lock_guard lock(mutex_);
    auto now = std::chrono::steady_clock::now();
    for (auto& target : targets) {
      if (!target.gateway) continue;
      for (auto& link : links_) {
        if (link.name != target.name) continue;
        if (link.quarantined_until > now) {
          target.gateway = nullptr;  // still quarantined
        } else if (link.quarantined_until !=
                   std::chrono::steady_clock::time_point{}) {
          // TTL expired, link not yet readmitted: half-open.
          if (link.probe_in_flight) {
            target.gateway = nullptr;  // another sweep owns the probe
          } else {
            link.probe_in_flight = true;  // this sweep's call is the probe
            probes_.fetch_add(1, std::memory_order_relaxed);
          }
        }
        break;
      }
    }
  }
  std::vector<std::vector<Offer>> per_link(targets.size());
  std::vector<std::string> per_link_error(targets.size());
  std::vector<std::uint64_t> per_link_us(targets.size(), 0);
  auto query = [&](std::size_t i) {
    std::chrono::steady_clock::time_point t0{};
    if (reg.enabled()) t0 = std::chrono::steady_clock::now();
    try {
      per_link[i] = targets[i].gateway->import(forwarded);
    } catch (const Error& e) {
      // An unreachable federated trader reduces the result set; it must
      // not fail the local import.
      per_link_error[i] = e.what();
    }
    if (reg.enabled() && t0 != std::chrono::steady_clock::time_point{}) {
      per_link_us[i] = obs::elapsed_us(t0);
    }
  };
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (targets[i].gateway) active.push_back(i);
  }
  if (active.size() == 1) {
    query(active.front());
  } else if (!active.empty()) {
    std::vector<std::thread> sweep;
    sweep.reserve(active.size());
    for (std::size_t i : active) sweep.emplace_back(query, i);
    for (auto& t : sweep) t.join();
  }
  // Replica-resolved links answer from the local store, on this thread —
  // no call, no sweep thread.
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (targets[i].replica) {
      per_link[i] = resolve_replica(*targets[i].replica, forwarded);
    }
  }

  result.links.reserve(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    LinkOutcome outcome;
    outcome.link = targets[i].name;
    if (targets[i].replica) {
      outcome.status = LinkOutcome::Status::Replicated;
      outcome.offers = per_link[i].size();
    } else if (!targets[i].gateway) {
      outcome.status = LinkOutcome::Status::Quarantined;
    } else if (!per_link_error[i].empty()) {
      outcome.status = LinkOutcome::Status::Failed;
      outcome.error = per_link_error[i];
    } else {
      outcome.offers = per_link[i].size();
    }
    if (reg.enabled()) {
      // Per-link instruments are looked up by name (registry map, not a
      // static handle) — link sets are dynamic and the sweep already paid
      // for a network round trip.
      const std::string base = "trader.link." + targets[i].name;
      switch (outcome.status) {
        case LinkOutcome::Status::Ok:
          reg.counter(base + ".ok").add();
          break;
        case LinkOutcome::Status::Failed:
          reg.counter(base + ".failed").add();
          break;
        case LinkOutcome::Status::Quarantined:
          reg.counter(base + ".quarantined").add();
          break;
        case LinkOutcome::Status::Replicated:
          reg.counter(base + ".replicated").add();
          break;
      }
      if (targets[i].gateway) {
        reg.histogram(base + ".latency_us").record_us(per_link_us[i]);
      }
    }
    result.links.push_back(std::move(outcome));
  }
  note_link_outcomes(result.links);
  if (reg.enabled()) {
    static obs::Gauge& quarantined = reg.gauge("trader.links_quarantined");
    std::lock_guard lock(mutex_);
    auto now = std::chrono::steady_clock::now();
    std::int64_t active = 0;
    for (const auto& link : links_) {
      if (link.quarantined_until > now) ++active;
    }
    quarantined.set(active);
  }

  return per_link;
}

void Trader::reset_stats() {
  evaluated_.store(0, std::memory_order_relaxed);
  scanned_.store(0, std::memory_order_relaxed);
  offers_scored_.store(0, std::memory_order_relaxed);
  heap_prunes_.store(0, std::memory_order_relaxed);
  dynamic_fetches_.store(0, std::memory_order_relaxed);
  repl_local_resolves_.store(0, std::memory_order_relaxed);
  repl_fanout_resolves_.store(0, std::memory_order_relaxed);
  store_.reset_stats();
  constraint_cache_.reset_stats();
  preference_cache_.reset_stats();
  types_.reset_stats();
}

/// Fold one sweep's outcomes into the links' failure counters: success
/// resets, failure increments, and crossing the threshold starts a
/// quarantine window.  A half-open probe outcome settles immediately:
/// success readmits the link to full fan-out, failure re-quarantines it
/// without re-accumulating the threshold (one bad probe is evidence
/// enough — the link just spent a whole TTL failing).  A link unlinked
/// mid-sweep is simply skipped; replica resolutions made no call and are
/// no evidence either way.
void Trader::note_link_outcomes(const std::vector<LinkOutcome>& outcomes) {
  std::lock_guard lock(mutex_);
  auto now = std::chrono::steady_clock::now();
  for (const auto& outcome : outcomes) {
    if (outcome.status == LinkOutcome::Status::Quarantined ||
        outcome.status == LinkOutcome::Status::Replicated) {
      continue;
    }
    for (auto& link : links_) {
      if (link.name != outcome.link) continue;
      if (outcome.status == LinkOutcome::Status::Ok) {
        link.consecutive_failures = 0;
        link.probe_in_flight = false;
        // Probe success (or plain success) fully readmits the link.
        link.quarantined_until = std::chrono::steady_clock::time_point{};
      } else if (link.probe_in_flight) {
        link.probe_in_flight = false;
        link.quarantined_until = now + federation_.quarantine_ttl;
        link.consecutive_failures = 0;
        quarantined_.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++link.consecutive_failures;
        if (link.consecutive_failures >= federation_.quarantine_threshold) {
          link.quarantined_until = now + federation_.quarantine_ttl;
          link.consecutive_failures = 0;
          quarantined_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      break;
    }
  }
}

void Trader::link(const std::string& link_name,
                  std::shared_ptr<TraderGateway> gateway) {
  if (!gateway) throw ContractError("link needs a gateway");
  std::lock_guard lock(mutex_);
  for (const auto& existing : links_) {
    if (existing.name == link_name) {
      throw ContractError("trader '" + name_ + "' already has a link '" +
                          link_name + "'");
    }
  }
  links_.push_back(Link{link_name, std::move(gateway), 0, {}});
}

void Trader::unlink(const std::string& link_name) {
  std::shared_ptr<TraderGateway> gateway;
  std::uint64_t subscription_id = 0;
  {
    std::lock_guard lock(mutex_);
    bool found = false;
    for (auto it = links_.begin(); it != links_.end(); ++it) {
      if (it->name == link_name) {
        gateway = it->gateway;
        subscription_id = it->subscription_id;
        links_.erase(it);
        found = true;
        break;
      }
    }
    if (!found) {
      throw NotFound("trader '" + name_ + "' has no link '" + link_name + "'");
    }
  }
  if (subscription_id == 0) return;
  // The link carried a subscription: it goes down with the link.
  try {
    gateway->unsubscribe(subscription_id);
  } catch (const Error&) {
  }
  std::lock_guard lock(replica_mutex_);
  for (auto it = replicas_.begin(); it != replicas_.end(); ++it) {
    if ((*it)->subscription_id == subscription_id &&
        (*it)->link_name == link_name) {
      replicas_.erase(it);
      break;
    }
  }
}

std::vector<std::string> Trader::links() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(links_.size());
  for (const auto& link : links_) out.push_back(link.name);
  return out;
}

void Trader::set_federation_options(FederationOptions options) {
  std::lock_guard lock(mutex_);
  if (options.quarantine_threshold < 1) options.quarantine_threshold = 1;
  federation_ = options;
}

FederationOptions Trader::federation_options() const {
  std::lock_guard lock(mutex_);
  return federation_;
}

LinkHealth Trader::link_health(const std::string& link_name) const {
  std::lock_guard lock(mutex_);
  auto now = std::chrono::steady_clock::now();
  for (const auto& link : links_) {
    if (link.name != link_name) continue;
    LinkHealth health;
    health.consecutive_failures = link.consecutive_failures;
    health.quarantined = link.quarantined_until > now;
    health.half_open =
        link.probe_in_flight ||
        (link.quarantined_until != std::chrono::steady_clock::time_point{} &&
         link.quarantined_until <= now);
    return health;
  }
  throw NotFound("trader '" + name_ + "' has no link '" + link_name + "'");
}

std::size_t Trader::offer_count() const { return store_.size(); }

// ---------------------------------------------------------------------------
// Replication (Federation v2) — see replication.h for the protocol.
// ---------------------------------------------------------------------------

namespace {

/// True when `type` falls under the scope's type filter (empty filter =
/// everything; a named scope type covers its whole local subtype closure).
bool scope_takes_type(const ServiceTypeManager& types,
                      const SubscriptionScope& scope, const std::string& type) {
  if (scope.service_types.empty()) return true;
  for (const std::string& base : scope.service_types) {
    if (type == base) return true;
    if (types.has(base) && types.has(type) && types.is_subtype(type, base)) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool Trader::in_scope(const Subscription& sub, const Offer& offer) const {
  if (!scope_takes_type(types_, sub.scope, offer.service_type)) return false;
  if (sub.scope_constraint) {
    // Dynamic offers always replicate: their matched values only exist at
    // import time, so the subscriber re-evaluates them there.
    if (!offer.dynamic_attrs.empty()) return true;
    return sub.scope_constraint->eval(offer.attributes);
  }
  return true;
}

bool Trader::covers_query(const ReplicaState& replica,
                          const ImportRequest& request) const {
  // Type coverage: the query type must sit inside the subscribed scope
  // (empty scope = the publisher's whole offer space).
  if (!replica.scope.service_types.empty() &&
      !scope_takes_type(types_, replica.scope, request.service_type)) {
    return false;
  }
  // Constraint coverage: a constraint-scoped replica holds only matching
  // offers, so it can answer exactly the query carrying the very same
  // constraint text — anything else might match offers never replicated.
  if (!replica.scope.constraint.empty() &&
      replica.scope.constraint != request.constraint) {
    return false;
  }
  return true;
}

void Trader::replicate_upsert(const Offer& offer) {
  std::lock_guard lock(repl_mutex_);
  for (const auto& sub : subscriptions_) {
    if (!scope_takes_type(types_, sub->scope, offer.service_type)) continue;
    OfferDelta delta;
    delta.id = offer.id;
    bool takes = true;
    if (sub->scope_constraint && offer.dynamic_attrs.empty()) {
      takes = sub->scope_constraint->eval(offer.attributes);
    }
    if (takes) {
      delta.kind = OfferDelta::Kind::Upsert;
      delta.offer = offer;
    } else {
      // Modified out of the constraint scope: retract the replica's copy
      // (a Remove for an id the replica never held is an idempotent no-op).
      delta.kind = OfferDelta::Kind::Remove;
    }
    enqueue_delta(*sub, std::move(delta));
  }
}

void Trader::replicate_remove(const std::string& id, const std::string& type) {
  std::lock_guard lock(repl_mutex_);
  for (const auto& sub : subscriptions_) {
    // An empty type (caller lost the race to capture it) fans the Remove
    // to every subscription — removing an absent id is a no-op.
    if (!type.empty() && !scope_takes_type(types_, sub->scope, type)) continue;
    OfferDelta delta;
    delta.kind = OfferDelta::Kind::Remove;
    delta.id = id;
    enqueue_delta(*sub, std::move(delta));
  }
}

void Trader::enqueue_delta(Subscription& sub, OfferDelta delta) {
  // Caller holds repl_mutex_.  Invariant: queue_first_seq + queue.size()
  // == next_seq (the queue holds contiguous sequences).
  if (sub.queue.size() >= repl_options_.max_pending) {
    // Publisher memory bound: drop the queue (this delta included) and
    // demote to a full snapshot, which subsumes everything dropped.
    sub.queue.clear();
    sub.needs_snapshot = true;
    sub.queue_first_seq = sub.next_seq;
    return;
  }
  sub.queue.push_back(std::move(delta));
  ++sub.next_seq;
}

std::vector<Offer> Trader::scope_snapshot(const Subscription& sub) const {
  std::vector<std::string> types = store_.type_names();
  std::vector<std::string> wanted;
  wanted.reserve(types.size());
  for (const std::string& type : types) {
    if (scope_takes_type(types_, sub.scope, type)) wanted.push_back(type);
  }
  std::vector<StoredOffer> stored = store_.collect_all(wanted);
  // Publisher export order: replica insertion order then approximates it,
  // which keeps merge behaviour close to a deep-search answer.
  std::sort(stored.begin(), stored.end(),
            [](const StoredOffer& a, const StoredOffer& b) {
              return a.seq < b.seq;
            });
  std::vector<Offer> out;
  out.reserve(stored.size());
  for (const StoredOffer& so : stored) {
    if (in_scope(sub, *so.offer)) out.push_back(*so.offer);
  }
  return out;
}

SubscriptionInfo Trader::add_subscription(const std::string& subscriber,
                                          SubscriptionScope scope,
                                          std::shared_ptr<ReplicationSink> sink,
                                          const std::string& sink_desc) {
  if (!sink) throw ContractError("subscription needs a sink");
  auto sub = std::make_shared<Subscription>();
  sub->subscriber = subscriber;
  sub->sink_desc = sink_desc;
  if (!scope.constraint.empty()) {
    // Parse errors surface here, at subscribe time, not on some later flush.
    sub->scope_constraint = constraint_cache_.get(scope.constraint);
  }
  sub->scope = std::move(scope);
  sub->sink = std::move(sink);
  {
    std::lock_guard lock(repl_mutex_);
    sub->id = next_subscription_++;
    subscriptions_.push_back(sub);
    has_subscriptions_.store(true, std::memory_order_relaxed);
    // Journal only reconstructible subscriptions: an empty descriptor means
    // an in-process sink nobody could rebuild after a restart.
    if (!sub->sink_desc.empty()) {
      storage::SubscriptionRecord rec;
      rec.id = sub->id;
      rec.subscriber = sub->subscriber;
      rec.sink_desc = sub->sink_desc;
      rec.scope = sub->scope;
      rec.next_seq = sub->next_seq;
      storage_->log_subscription(rec);
    }
  }
  // Initial snapshot, synchronously: when subscribe() returns, covered
  // imports at the subscriber already resolve locally.  A sink failure
  // leaves needs_snapshot set and the next flush retries.
  {
    std::lock_guard io(repl_io_mutex_);
    flush_subscription(sub);
  }
  return {sub->id, name_};
}

void Trader::remove_subscription(std::uint64_t subscription_id) {
  bool journal = false;
  {
    std::lock_guard lock(repl_mutex_);
    for (auto it = subscriptions_.begin(); it != subscriptions_.end(); ++it) {
      if ((*it)->id == subscription_id) {
        journal = !(*it)->sink_desc.empty();
        subscriptions_.erase(it);
        break;
      }
    }
    has_subscriptions_.store(!subscriptions_.empty(), std::memory_order_relaxed);
  }
  if (journal) storage_->log_unsubscription(subscription_id);
}

std::vector<SubscriptionStatus> Trader::subscriptions() const {
  std::lock_guard lock(repl_mutex_);
  std::vector<SubscriptionStatus> out;
  out.reserve(subscriptions_.size());
  for (const auto& sub : subscriptions_) {
    SubscriptionStatus status;
    status.id = sub->id;
    status.subscriber = sub->subscriber;
    status.pending = sub->queue.size();
    status.needs_snapshot = sub->needs_snapshot;
    status.last_seq = sub->next_seq - 1;
    out.push_back(std::move(status));
  }
  return out;
}

std::size_t Trader::flush_replication() {
  std::vector<std::shared_ptr<Subscription>> subs;
  {
    std::lock_guard lock(repl_mutex_);
    subs = subscriptions_;
  }
  if (subs.empty()) return 0;
  std::lock_guard io(repl_io_mutex_);
  std::size_t delivered = 0;
  for (const auto& sub : subs) delivered += flush_subscription(sub);
  return delivered;
}

std::size_t Trader::flush_subscription(const std::shared_ptr<Subscription>& sub) {
  bool rearm = false;
  {
    std::lock_guard lock(repl_mutex_);
    rearm = sub->rearm_pending;
  }
  // A recovered stream must realign sequence numbers before any
  // incremental batch goes out; until the re-arm round succeeds the
  // subscriber would see every post-recovery batch as a gap.
  if (rearm && !rearm_subscription(sub)) return 0;
  std::size_t delivered = 0;
  for (;;) {
    DeltaBatch batch;
    batch.publisher = name_;
    batch.subscription_id = sub->id;
    bool snapshot = false;
    std::size_t batch_len = 0;
    std::uint64_t snapshot_marker = 0;
    {
      std::lock_guard lock(repl_mutex_);
      if (sub->needs_snapshot) {
        snapshot = true;
        batch.snapshot = true;
        batch.snapshot_seq = sub->next_seq - 1;
        // Queued deltas are subsumed: every mutation enqueued before this
        // point hit the store before its enqueue, so the snapshot we are
        // about to collect includes it.  Deltas enqueued after this point
        // stay queued and re-apply idempotently on top of the snapshot.
        sub->queue.clear();
        sub->queue_first_seq = sub->next_seq;
        snapshot_marker = sub->queue_first_seq;
      } else if (!sub->queue.empty()) {
        batch.first_seq = sub->queue_first_seq;
        batch_len = std::min(sub->queue.size(), repl_options_.max_batch);
        batch.deltas.assign(
            sub->queue.begin(),
            sub->queue.begin() + static_cast<std::ptrdiff_t>(batch_len));
      } else {
        break;
      }
    }
    if (snapshot) {
      std::vector<Offer> offers = scope_snapshot(*sub);
      batch.deltas.reserve(offers.size());
      for (Offer& offer : offers) {
        OfferDelta delta;
        delta.kind = OfferDelta::Kind::Upsert;
        delta.id = offer.id;
        delta.offer = std::move(offer);
        batch.deltas.push_back(std::move(delta));
      }
    }
    std::uint64_t hwm = 0;
    try {
      hwm = sub->sink->apply(batch);
    } catch (const Error&) {
      // Queue (or the snapshot flag) stays intact; the next flush retries
      // and the digest exchange repairs whatever stays lost.
      repl_flush_failures_.fetch_add(1, std::memory_order_relaxed);
      return delivered;
    }
    if (snapshot) {
      repl_snapshots_sent_.fetch_add(1, std::memory_order_relaxed);
      delivered += batch.deltas.size();
      std::lock_guard lock(repl_mutex_);
      // A queue overflow during the store collection re-set the flag and
      // moved queue_first_seq: the snapshot we sent misses whatever
      // overflowed, so it must not clear the demotion.
      if (sub->queue_first_seq == snapshot_marker) sub->needs_snapshot = false;
      continue;
    }
    const std::uint64_t end_seq = batch.first_seq + batch_len - 1;
    repl_deltas_sent_.fetch_add(batch_len, std::memory_order_relaxed);
    delivered += batch_len;
    {
      std::lock_guard lock(repl_mutex_);
      if (sub->needs_snapshot) continue;  // overflow raced in; restart
      if (hwm < end_seq) {
        // The subscriber reported a sequence gap: demote to a snapshot.
        sub->needs_snapshot = true;
        sub->queue.clear();
        sub->queue_first_seq = sub->next_seq;
        continue;
      }
      // Only the flusher pops (repl_io_mutex_ serialises flush rounds), so
      // the front batch_len entries are exactly what was sent.
      for (std::size_t i = 0; i < batch_len; ++i) sub->queue.pop_front();
      sub->queue_first_seq = end_seq + 1;
    }
  }
  return delivered;
}

std::size_t Trader::anti_entropy_tick() {
  flush_replication();
  std::vector<std::shared_ptr<Subscription>> subs;
  {
    std::lock_guard lock(repl_mutex_);
    subs = subscriptions_;
  }
  if (subs.empty()) return 0;
  std::lock_guard io(repl_io_mutex_);
  std::size_t repaired = 0;
  for (const auto& sub : subs) repaired += digest_subscription(sub);
  return repaired;
}

std::size_t Trader::digest_subscription(const std::shared_ptr<Subscription>& sub) {
  ReplicationDigest digest;
  digest.publisher = name_;
  digest.subscription_id = sub->id;
  {
    std::lock_guard lock(repl_mutex_);
    digest.last_seq = sub->next_seq - 1;
  }
  std::vector<Offer> offers = scope_snapshot(*sub);
  std::map<std::string, std::pair<std::uint64_t, DigestFold>> per_type;
  for (const Offer& offer : offers) {
    auto& [count, fold] = per_type[offer.service_type];
    ++count;
    fold.add(offer_content_hash(offer));
  }
  digest.types.reserve(per_type.size());
  for (const auto& [type, entry] : per_type) {
    digest.types.push_back({type, entry.first, entry.second.value()});
  }
  std::vector<std::string> divergent;
  try {
    divergent = sub->sink->digest(digest);
  } catch (const Error&) {
    repl_flush_failures_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  if (divergent.empty()) return 0;
  // Repair from the snapshot the digest was computed over; any mutation
  // since sits in the queue and re-applies on the next flush — the goal is
  // convergence, not a point-in-time copy.
  DeltaBatch repair;
  repair.publisher = name_;
  repair.subscription_id = sub->id;
  repair.reset_types = divergent;
  std::unordered_set<std::string> wanted(divergent.begin(), divergent.end());
  for (Offer& offer : offers) {
    if (!wanted.count(offer.service_type)) continue;
    OfferDelta delta;
    delta.kind = OfferDelta::Kind::Upsert;
    delta.id = offer.id;
    delta.offer = std::move(offer);
    repair.deltas.push_back(std::move(delta));
  }
  try {
    sub->sink->apply(repair);
  } catch (const Error&) {
    repl_flush_failures_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  repl_repairs_.fetch_add(divergent.size(), std::memory_order_relaxed);
  return divergent.size();
}

bool Trader::rearm_subscription(const std::shared_ptr<Subscription>& sub) {
  // The subscriber holds a faithful copy of some prefix of the pre-crash
  // delta stream; the recovered publisher restarts its stream at a
  // sequence past anything the subscriber may have acked (persisted
  // counter plus journal-tail slack).  One digest finds the divergent
  // types, one reset_seq repair fixes them AND realigns the subscriber's
  // high-water mark — a single anti-entropy round instead of a full
  // resnapshot.  Caller holds repl_io_mutex_ (like every sink I/O path).
  ReplicationDigest digest;
  digest.publisher = name_;
  digest.subscription_id = sub->id;
  std::uint64_t rearm_seq = 0;
  {
    std::lock_guard lock(repl_mutex_);
    rearm_seq = sub->next_seq - 1;
    digest.last_seq = rearm_seq;
  }
  std::vector<Offer> offers = scope_snapshot(*sub);
  std::map<std::string, std::pair<std::uint64_t, DigestFold>> per_type;
  for (const Offer& offer : offers) {
    auto& [count, fold] = per_type[offer.service_type];
    ++count;
    fold.add(offer_content_hash(offer));
  }
  digest.types.reserve(per_type.size());
  for (const auto& [type, entry] : per_type) {
    digest.types.push_back({type, entry.first, entry.second.value()});
  }
  std::vector<std::string> divergent;
  try {
    divergent = sub->sink->digest(digest);
  } catch (const Error&) {
    repl_flush_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;  // rearm_pending stays set; the next flush retries
  }
  DeltaBatch repair;
  repair.publisher = name_;
  repair.subscription_id = sub->id;
  repair.reset_seq = true;
  repair.snapshot_seq = rearm_seq;
  repair.reset_types = divergent;
  std::unordered_set<std::string> wanted(divergent.begin(), divergent.end());
  for (Offer& offer : offers) {
    if (!wanted.count(offer.service_type)) continue;
    OfferDelta delta;
    delta.kind = OfferDelta::Kind::Upsert;
    delta.id = offer.id;
    delta.offer = std::move(offer);
    repair.deltas.push_back(std::move(delta));
  }
  try {
    sub->sink->apply(repair);
  } catch (const Error&) {
    repl_flush_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  repl_repairs_.fetch_add(divergent.size(), std::memory_order_relaxed);
  std::lock_guard lock(repl_mutex_);
  sub->rearm_pending = false;
  return true;
}

void Trader::set_replication_options(const ReplicationOptions& options) {
  std::lock_guard lock(repl_mutex_);
  repl_options_ = options;
  if (repl_options_.max_batch == 0) repl_options_.max_batch = 1;
  if (repl_options_.max_pending == 0) repl_options_.max_pending = 1;
}

ReplicationOptions Trader::replication_options() const {
  std::lock_guard lock(repl_mutex_);
  return repl_options_;
}

void Trader::subscribe_link(const std::string& link_name,
                            SubscriptionScope scope) {
  std::shared_ptr<TraderGateway> gateway;
  {
    std::lock_guard lock(mutex_);
    bool found = false;
    for (const auto& link : links_) {
      if (link.name != link_name) continue;
      found = true;
      if (link.subscription_id != 0) {
        throw ContractError("link '" + link_name + "' is already subscribed");
      }
      gateway = link.gateway;
      break;
    }
    if (!found) {
      throw NotFound("trader '" + name_ + "' has no link '" + link_name + "'");
    }
  }
  // The publisher pushes the initial snapshot synchronously from inside
  // subscribe(): replica_apply auto-creates the (publisher, id)-keyed
  // replica before this side even learns the id — which is why the replica
  // is bound to the link only afterwards.
  SubscriptionInfo info = gateway->subscribe(*this, scope);
  ReplicaStatePtr rep = replica_for(info.publisher, info.id, true);
  {
    std::lock_guard lock(replica_mutex_);
    rep->link_name = link_name;
    rep->scope = std::move(scope);
  }
  {
    std::lock_guard lock(mutex_);
    for (auto& link : links_) {
      if (link.name == link_name) {
        link.subscription_id = info.id;
        return;
      }
    }
  }
  // The link vanished while subscribing: tear everything back down.
  try {
    gateway->unsubscribe(info.id);
  } catch (const Error&) {
  }
  {
    std::lock_guard lock(replica_mutex_);
    for (auto it = replicas_.begin(); it != replicas_.end(); ++it) {
      if ((*it)->publisher == info.publisher &&
          (*it)->subscription_id == info.id) {
        replicas_.erase(it);
        break;
      }
    }
  }
  throw NotFound("link '" + link_name + "' vanished during subscribe");
}

void Trader::unsubscribe_link(const std::string& link_name) {
  std::shared_ptr<TraderGateway> gateway;
  std::uint64_t subscription_id = 0;
  {
    std::lock_guard lock(mutex_);
    bool found = false;
    for (auto& link : links_) {
      if (link.name != link_name) continue;
      found = true;
      subscription_id = link.subscription_id;
      gateway = link.gateway;
      link.subscription_id = 0;
      break;
    }
    if (!found) {
      throw NotFound("trader '" + name_ + "' has no link '" + link_name + "'");
    }
  }
  if (subscription_id == 0) {
    throw NotFound("link '" + link_name + "' holds no subscription");
  }
  try {
    gateway->unsubscribe(subscription_id);
  } catch (const Error&) {
    // Publisher unreachable: drop the replica anyway — tear-down is
    // idempotent and the publisher's side times out on its own sink faults.
  }
  std::lock_guard lock(replica_mutex_);
  for (auto it = replicas_.begin(); it != replicas_.end(); ++it) {
    if ((*it)->subscription_id == subscription_id &&
        (*it)->link_name == link_name) {
      replicas_.erase(it);
      break;
    }
  }
}

ReplicaInfo Trader::replica_info(const std::string& link_name) const {
  std::lock_guard lock(replica_mutex_);
  for (const auto& rep : replicas_) {
    if (rep->link_name != link_name) continue;
    ReplicaInfo info;
    info.publisher = rep->publisher;
    info.subscription_id = rep->subscription_id;
    info.synced = rep->synced;
    info.last_seq = rep->last_seq;
    info.publisher_seq = rep->publisher_seq;
    info.offers = rep->store->size();
    info.deltas_applied = rep->deltas_applied;
    info.digests = rep->digests;
    info.repairs = rep->repairs;
    return info;
  }
  throw NotFound("trader '" + name_ + "' has no replica for link '" +
                 link_name + "'");
}

Trader::ReplicaStatePtr Trader::replica_for(const std::string& publisher,
                                            std::uint64_t subscription_id,
                                            bool create) {
  std::lock_guard lock(replica_mutex_);
  for (const auto& rep : replicas_) {
    if (rep->publisher == publisher &&
        rep->subscription_id == subscription_id) {
      return rep;
    }
  }
  if (!create) return nullptr;
  auto rep = std::make_shared<ReplicaState>();
  rep->publisher = publisher;
  rep->subscription_id = subscription_id;
  rep->store = std::make_unique<OfferStore>();
  replicas_.push_back(rep);
  return rep;
}

std::uint64_t Trader::replica_apply(const DeltaBatch& batch) {
  ReplicaStatePtr rep = replica_for(batch.publisher, batch.subscription_id, true);
  auto apply_upsert = [&](const OfferDelta& delta) -> bool {
    const Offer& offer = delta.offer;
    if (!types_.has(offer.service_type)) {
      // Type-universe drift: this trader cannot store (or ever serve) the
      // offer.  Skipping keeps the stream flowing; the digest exchange
      // excludes unknown types too, so this never repair-loops.
      repl_unknown_type_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    OfferPtr next = std::make_shared<const Offer>(offer);
    if (rep->store->find(offer.id)) {
      rep->store->replace(offer.id, std::move(next));
    } else {
      rep->store->insert(std::move(next), types_.schema_of(offer.service_type));
    }
    return true;
  };
  if (batch.snapshot) {
    rep->store->erase_if([](const Offer&) { return true; });
    std::uint64_t applied = 0;
    for (const OfferDelta& delta : batch.deltas) {
      if (delta.kind == OfferDelta::Kind::Upsert && apply_upsert(delta)) {
        ++applied;
      }
    }
    repl_deltas_applied_.fetch_add(applied, std::memory_order_relaxed);
    std::lock_guard lock(replica_mutex_);
    rep->last_seq = batch.snapshot_seq;
    rep->publisher_seq = std::max(rep->publisher_seq, batch.snapshot_seq);
    rep->synced = true;
    rep->deltas_applied += applied;
    return rep->last_seq;
  }
  if (!batch.reset_types.empty() || batch.reset_seq) {
    // Digest repair: rebuild exactly those type buckets.  A plain repair
    // leaves the sequence stream untouched; a reset_seq repair additionally
    // adopts the publisher's post-recovery stream position (see
    // replication.h — the re-arm protocol).
    std::unordered_set<std::string> reset(batch.reset_types.begin(),
                                          batch.reset_types.end());
    if (!reset.empty()) {
      rep->store->erase_if([&reset](const Offer& offer) {
        return reset.count(offer.service_type) != 0;
      });
    }
    std::uint64_t applied = 0;
    for (const OfferDelta& delta : batch.deltas) {
      if (delta.kind == OfferDelta::Kind::Upsert && apply_upsert(delta)) {
        ++applied;
      }
    }
    repl_deltas_applied_.fetch_add(applied, std::memory_order_relaxed);
    std::lock_guard lock(replica_mutex_);
    rep->deltas_applied += applied;
    rep->repairs += batch.reset_types.size();
    if (batch.reset_seq) {
      rep->last_seq = batch.snapshot_seq;
      rep->publisher_seq = std::max(rep->publisher_seq, batch.snapshot_seq);
      rep->synced = true;
    }
    return rep->last_seq;
  }
  // Incremental: apply only what extends the high-water mark contiguously.
  // A batch starting past last_seq + 1 is a gap — report the stale mark so
  // the publisher demotes to a snapshot; a batch overlapping below it is a
  // retry — skip the already-applied prefix.
  std::uint64_t last = 0;
  {
    std::lock_guard lock(replica_mutex_);
    if (!rep->synced) return rep->last_seq;
    if (batch.first_seq > rep->last_seq + 1) {
      rep->synced = false;  // missed deltas: stale until the snapshot lands
      return rep->last_seq;
    }
    last = rep->last_seq;
  }
  std::uint64_t seq = batch.first_seq;
  std::uint64_t applied = 0;
  for (const OfferDelta& delta : batch.deltas) {
    const std::uint64_t this_seq = seq++;
    if (this_seq <= last) continue;  // retried overlap: already applied
    if (delta.kind == OfferDelta::Kind::Upsert) {
      if (apply_upsert(delta)) ++applied;
    } else {
      rep->store->erase(delta.id);  // absent id: idempotent no-op
      ++applied;
    }
  }
  repl_deltas_applied_.fetch_add(applied, std::memory_order_relaxed);
  std::lock_guard lock(replica_mutex_);
  if (!batch.deltas.empty()) {
    rep->last_seq =
        std::max(rep->last_seq, batch.first_seq + batch.deltas.size() - 1);
  }
  rep->deltas_applied += applied;
  return rep->last_seq;
}

std::vector<std::string> Trader::replica_digest(const ReplicationDigest& digest) {
  ReplicaStatePtr rep = replica_for(digest.publisher, digest.subscription_id, true);
  {
    std::lock_guard lock(replica_mutex_);
    rep->publisher_seq = std::max(rep->publisher_seq, digest.last_seq);
    ++rep->digests;
  }
  // Local per-type (count, hash) over the whole replica.
  std::vector<StoredOffer> stored =
      rep->store->collect_all(rep->store->type_names());
  std::map<std::string, std::pair<std::uint64_t, DigestFold>> local;
  for (const StoredOffer& so : stored) {
    auto& [count, fold] = local[so.offer->service_type];
    ++count;
    fold.add(offer_content_hash(*so.offer));
  }
  std::vector<std::string> divergent;
  std::unordered_set<std::string> mentioned;
  for (const TypeDigest& td : digest.types) {
    mentioned.insert(td.service_type);
    if (!types_.has(td.service_type)) {
      // Unknown here: the repair could never be stored, so reporting the
      // divergence would loop forever.  Count and move on.
      repl_unknown_type_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    auto it = local.find(td.service_type);
    const std::uint64_t count = it == local.end() ? 0 : it->second.first;
    const std::uint64_t hash =
        it == local.end() ? DigestFold{}.value() : it->second.second.value();
    if (count != td.count || hash != td.hash) {
      divergent.push_back(td.service_type);
    }
  }
  // Types the replica holds that the digest no longer mentions (every
  // publisher offer of that type withdrawn while we were out of touch)
  // diverge too — without this they would never be cleaned up.
  for (const auto& [type, entry] : local) {
    if (!mentioned.count(type)) divergent.push_back(type);
  }
  if (divergent.empty()) {
    // A clean full digest proves content convergence even when sequence
    // bookkeeping was lost — readmit local resolution.
    std::lock_guard lock(replica_mutex_);
    rep->synced = true;
  }
  return divergent;
}

std::vector<Offer> Trader::resolve_replica(const ReplicaState& replica,
                                           const ImportRequest& request) {
  // Emulates the covered remote answer: same constraint, same dynamic
  // resolution.  The forwarded preference/cap is ignored — the full match
  // set is a superset of anything the remote would have returned, and the
  // caller's merge ranks and caps exactly as it would remote results.
  std::shared_ptr<const Constraint> constraint =
      constraint_cache_.get(request.constraint);
  SubtypeClosurePtr closure = types_.subtype_closure(request.service_type);
  MatchStats stats;
  std::vector<StoredOffer> candidates =
      replica.store->collect(closure->types, *constraint, &stats);
  evaluated_.fetch_add(stats.type_candidates, std::memory_order_relaxed);
  scanned_.fetch_add(stats.scanned, std::memory_order_relaxed);
  std::vector<Offer> out;
  out.reserve(candidates.size());
  for (const StoredOffer& candidate : candidates) {
    const Offer& offer = *candidate.offer;
    if (offer.dynamic_attrs.empty()) {
      if (constraint->eval(offer.attributes)) out.push_back(offer);
      continue;
    }
    // Dynamic offers replicate unresolved; the fetch happens here, against
    // the exporter, exactly as the publisher would have done it.
    AttrMap merged = offer.attributes;
    if (!resolve_dynamic(offer, merged)) continue;
    if (constraint->eval(merged)) {
      Offer fresh = offer;
      fresh.attributes = std::move(merged);
      out.push_back(std::move(fresh));
    }
  }
  // Id-ascending: a deterministic merge input regardless of replica
  // insertion order (snapshots, deltas and repairs interleave).
  std::sort(out.begin(), out.end(),
            [](const Offer& a, const Offer& b) { return a.id < b.id; });
  return out;
}

std::size_t Trader::replication_pending() const {
  std::lock_guard lock(repl_mutex_);
  std::size_t pending = 0;
  for (const auto& sub : subscriptions_) pending += sub->queue.size();
  return pending;
}

std::size_t Trader::replica_offer_count() const {
  std::lock_guard lock(replica_mutex_);
  std::size_t offers = 0;
  for (const auto& rep : replicas_) offers += rep->store->size();
  return offers;
}

void Trader::start_replication_pump() {
  std::lock_guard lock(pump_mutex_);
  if (pump_running_) return;
  pump_stop_ = false;
  pump_running_ = true;
  pump_thread_ = std::thread([this] { replication_pump_loop(); });
}

void Trader::stop_replication_pump() {
  {
    std::lock_guard lock(pump_mutex_);
    if (!pump_running_) return;
    pump_stop_ = true;
  }
  pump_cv_.notify_all();
  pump_thread_.join();
  std::lock_guard lock(pump_mutex_);
  pump_running_ = false;
  pump_thread_ = std::thread{};
}

void Trader::replication_pump_loop() {
  auto last_digest = std::chrono::steady_clock::now();
  for (;;) {
    ReplicationOptions options = replication_options();
    {
      std::unique_lock lock(pump_mutex_);
      pump_cv_.wait_for(lock, options.flush_interval,
                        [this] { return pump_stop_; });
      if (pump_stop_) return;
    }
    try {
      auto now = std::chrono::steady_clock::now();
      if (now - last_digest >= options.digest_interval) {
        last_digest = now;
        anti_entropy_tick();
      } else {
        flush_replication();
      }
    } catch (const Error&) {
      // flush/digest swallow sink faults themselves; anything else waits
      // for the next tick rather than killing the pump.
    }
  }
}

}  // namespace cosm::trader
