// In-process loopback network.
//
// Endpoints live in a registry guarded by a mutex; call() invokes the
// handler on the caller's thread.  Optional simulated latency and a frame
// counter make it a measurable stand-in for the paper's workstation-cluster
// LAN in deterministic benchmarks.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>

#include "rpc/network.h"

namespace cosm::rpc {

struct InProcOptions {
  /// Added to every round trip (sleep), modelling network latency; zero by
  /// default so unit tests run at full speed.
  std::chrono::microseconds latency{0};
};

class InProcNetwork final : public Network {
 public:
  InProcNetwork() = default;
  explicit InProcNetwork(InProcOptions options) : options_(options) {}

  std::string listen(const std::string& hint, FrameHandler handler) override;
  void unlisten(const std::string& endpoint) override;
  Bytes call(const std::string& endpoint, const Bytes& request,
             std::chrono::milliseconds timeout) override;
  std::string scheme() const override { return "inproc"; }

  /// Total round trips served (instrumentation for experiments).
  std::uint64_t frames_served() const noexcept { return frames_.load(); }
  /// Total request bytes carried (instrumentation for experiments).
  std::uint64_t bytes_carried() const noexcept { return bytes_.load(); }

 private:
  InProcOptions options_;
  std::mutex mutex_;
  std::map<std::string, FrameHandler> endpoints_;
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace cosm::rpc
