#include "sidl/lexer.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cosm::sidl {
namespace {

std::vector<TokKind> kinds(const std::string& src) {
  std::vector<TokKind> out;
  for (const auto& t : tokenize(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEnd) {
  auto toks = tokenize("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokKind::End);
}

TEST(Lexer, IdentifiersAndPunctuation) {
  auto toks = tokenize("module Foo { };");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[0].kind, TokKind::Ident);
  EXPECT_EQ(toks[0].text, "module");
  EXPECT_EQ(toks[1].text, "Foo");
  EXPECT_EQ(toks[2].kind, TokKind::LBrace);
  EXPECT_EQ(toks[3].kind, TokKind::RBrace);
  EXPECT_EQ(toks[4].kind, TokKind::Semi);
}

TEST(Lexer, NumbersIntAndFloat) {
  auto toks = tokenize("4711 80.5 -3 -2.25 1e6 2.5e-3");
  EXPECT_EQ(toks[0].kind, TokKind::IntLit);
  EXPECT_EQ(toks[0].text, "4711");
  EXPECT_EQ(toks[1].kind, TokKind::FloatLit);
  EXPECT_EQ(toks[2].kind, TokKind::IntLit);
  EXPECT_EQ(toks[2].text, "-3");
  EXPECT_EQ(toks[3].kind, TokKind::FloatLit);
  EXPECT_EQ(toks[4].kind, TokKind::FloatLit);  // 1e6
  EXPECT_EQ(toks[5].kind, TokKind::FloatLit);  // 2.5e-3
}

TEST(Lexer, StringLiteralsWithEscapes) {
  auto toks = tokenize(R"("hello" "a\"b" "tab\there" "")");
  EXPECT_EQ(toks[0].text, "hello");
  EXPECT_EQ(toks[1].text, "a\"b");
  EXPECT_EQ(toks[2].text, "tab\there");
  EXPECT_EQ(toks[3].text, "");
}

TEST(Lexer, LineCommentsSkipped) {
  auto k = kinds("foo // this is ignored\nbar");
  ASSERT_EQ(k.size(), 3u);
  EXPECT_EQ(k[0], TokKind::Ident);
  EXPECT_EQ(k[1], TokKind::Ident);
}

TEST(Lexer, BlockCommentsSkippedAcrossLines) {
  auto toks = tokenize("a /* x\ny\nz */ b");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].line, 3);
}

TEST(Lexer, UnterminatedBlockCommentThrows) {
  EXPECT_THROW(tokenize("a /* never closed"), ParseError);
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(tokenize("\"no closing quote"), ParseError);
}

TEST(Lexer, NewlineInStringThrows) {
  EXPECT_THROW(tokenize("\"line\nbreak\""), ParseError);
}

TEST(Lexer, UnexpectedCharacterThrowsWithPosition) {
  try {
    tokenize("foo $");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_EQ(e.column(), 5);
  }
}

TEST(Lexer, TracksLineAndColumn) {
  auto toks = tokenize("a\n  b");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].column, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].column, 3);
}

TEST(Lexer, ByteOffsetsSliceSource) {
  std::string src = "module  Foo";
  auto toks = tokenize(src);
  EXPECT_EQ(src.substr(toks[1].begin, toks[1].end - toks[1].begin), "Foo");
}

TEST(Lexer, AngleBracketsAndBrackets) {
  auto k = kinds("sequence<long> [in]");
  EXPECT_EQ(k[1], TokKind::LAngle);
  EXPECT_EQ(k[3], TokKind::RAngle);
  EXPECT_EQ(k[4], TokKind::LBracket);
  EXPECT_EQ(k[6], TokKind::RBracket);
}

TEST(Lexer, MinusBetweenIdentifiersIsAToken) {
  // "FIAT-Uno": the parser rejoins these into one label.
  auto toks = tokenize("FIAT-Uno");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "FIAT");
  EXPECT_EQ(toks[1].kind, TokKind::Minus);
  EXPECT_EQ(toks[2].text, "Uno");
}

TEST(Lexer, UnderscoreIdentifiers) {
  auto toks = tokenize("_get_sid COSM_FSM");
  EXPECT_EQ(toks[0].text, "_get_sid");
  EXPECT_EQ(toks[1].text, "COSM_FSM");
}

}  // namespace
}  // namespace cosm::sidl
