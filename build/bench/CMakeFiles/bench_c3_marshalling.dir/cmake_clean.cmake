file(REMOVE_RECURSE
  "CMakeFiles/bench_c3_marshalling.dir/bench_c3_marshalling.cpp.o"
  "CMakeFiles/bench_c3_marshalling.dir/bench_c3_marshalling.cpp.o.d"
  "bench_c3_marshalling"
  "bench_c3_marshalling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c3_marshalling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
