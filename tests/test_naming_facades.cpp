// The Service Support Level components driven purely over RPC through their
// SIDL facades — the dogfooding test: infrastructure services are ordinary
// COSM services.

#include "naming/facades.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "rpc/channel.h"
#include "rpc/inproc.h"
#include "rpc/server.h"
#include "sidl/parser.h"

namespace cosm::naming {
namespace {

using wire::Value;

class FacadesTest : public ::testing::Test {
 protected:
  rpc::InProcNetwork net;
  rpc::RpcServer server{net, "host"};
  NameServer ns;
  GroupManager gm;
  InterfaceRepository repo;
};

TEST_F(FacadesTest, NameServerOverRpc) {
  auto ref = server.add(make_name_server_service(ns));
  rpc::RpcChannel channel(net, ref);

  sidl::ServiceRef target{"svc-7", "inproc://x", "I"};
  channel.call("BindName", {Value::string("cosm/demo"), Value::service_ref(target)});
  EXPECT_EQ(channel.call("Resolve", {Value::string("cosm/demo")}).as_ref(), target);

  Value listed = channel.call("List", {Value::string("cosm/")});
  ASSERT_EQ(listed.elements().size(), 1u);
  EXPECT_EQ(listed.elements()[0].at("name").as_string(), "cosm/demo");

  channel.call("UnbindName", {Value::string("cosm/demo")});
  EXPECT_THROW(channel.call("Resolve", {Value::string("cosm/demo")}),
               RemoteFault);
}

TEST_F(FacadesTest, NameServerFacadeSidIsValidSidl) {
  sidl::Sid sid = sidl::parse_sid(name_server_sidl());
  EXPECT_EQ(sid.name, "NameServerService");
  EXPECT_NE(sid.find_operation("BindName"), nullptr);
  EXPECT_NE(sid.find_annotation("Resolve"), nullptr);
}

TEST_F(FacadesTest, GroupManagerOverRpc) {
  auto ref = server.add(make_group_manager_service(gm));
  rpc::RpcChannel channel(net, ref);

  sidl::ServiceRef m1{"m1", "inproc://x", "I"}, m2{"m2", "inproc://y", "I"};
  channel.call("Join", {Value::string("traders"), Value::service_ref(m1)});
  channel.call("Join", {Value::string("traders"), Value::service_ref(m2)});
  Value members = channel.call("Members", {Value::string("traders")});
  EXPECT_EQ(members.elements().size(), 2u);

  channel.call("Leave", {Value::string("traders"), Value::service_ref(m1)});
  EXPECT_EQ(channel.call("Members", {Value::string("traders")}).elements().size(), 1u);

  Value groups = channel.call("Groups", {});
  ASSERT_EQ(groups.elements().size(), 1u);
  EXPECT_EQ(groups.elements()[0].as_string(), "traders");
}

TEST_F(FacadesTest, RepositoryOverRpcCarriesSidsAsValues) {
  auto ref = server.add(make_interface_repository_service(repo));
  rpc::RpcChannel channel(net, ref);

  auto sid = std::make_shared<sidl::Sid>(sidl::parse_sid(
      "module Weather { interface I { string Get([in] string city); }; };"));
  channel.call("Put", {Value::string("svc-w"), Value::sid(sid)});

  Value fetched = channel.call("Get", {Value::string("svc-w")});
  EXPECT_EQ(*fetched.as_sid(), *sid);

  Value ids = channel.call("Ids", {});
  ASSERT_EQ(ids.elements().size(), 1u);

  auto base = std::make_shared<sidl::Sid>(sidl::parse_sid(
      "module Base { interface I { string Get([in] string city); }; };"));
  Value conforming = channel.call("ConformingTo", {Value::sid(base)});
  ASSERT_EQ(conforming.elements().size(), 1u);
  EXPECT_EQ(conforming.elements()[0].as_string(), "svc-w");
}

TEST_F(FacadesTest, FacadeErrorsSurfaceAsFaults) {
  auto ref = server.add(make_interface_repository_service(repo));
  rpc::RpcChannel channel(net, ref);
  EXPECT_THROW(channel.call("Get", {Value::string("ghost")}), RemoteFault);
}

}  // namespace
}  // namespace cosm::naming
