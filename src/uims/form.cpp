#include "uims/form.h"

#include <sstream>

#include "common/error.h"

namespace cosm::uims {

using sidl::TypeKind;

std::string to_string(WidgetKind kind) {
  switch (kind) {
    case WidgetKind::CheckBox: return "checkbox";
    case WidgetKind::NumberField: return "number";
    case WidgetKind::TextField: return "text";
    case WidgetKind::EnumChoice: return "choice";
    case WidgetKind::StructGroup: return "group";
    case WidgetKind::SequenceEditor: return "list";
    case WidgetKind::OptionalToggle: return "optional";
    case WidgetKind::BindButton: return "bind";
    case WidgetKind::SidViewer: return "sid";
    case WidgetKind::AnyField: return "any";
  }
  return "?";
}

Widget widget_for(const sidl::Sid& sid, const std::string& label,
                  const sidl::TypePtr& type) {
  if (!type) throw ContractError("widget_for: null type");
  Widget w;
  w.label = label;
  w.type = type;
  if (const std::string* note = sid.find_annotation(label)) {
    w.annotation = *note;
  } else if (!type->name().empty()) {
    if (const std::string* type_note = sid.find_annotation(type->name())) {
      w.annotation = *type_note;
    }
  }
  switch (type->kind()) {
    case TypeKind::Bool:
      w.kind = WidgetKind::CheckBox;
      break;
    case TypeKind::Int:
    case TypeKind::Float:
      w.kind = WidgetKind::NumberField;
      break;
    case TypeKind::String:
      w.kind = WidgetKind::TextField;
      break;
    case TypeKind::Enum:
      w.kind = WidgetKind::EnumChoice;
      w.choices = type->labels();
      break;
    case TypeKind::Struct:
      w.kind = WidgetKind::StructGroup;
      for (const auto& f : type->fields()) {
        w.children.push_back(widget_for(sid, f.name, f.type));
      }
      break;
    case TypeKind::Sequence:
      w.kind = WidgetKind::SequenceEditor;
      w.children.push_back(widget_for(sid, label + "[]", type->element()));
      break;
    case TypeKind::Optional:
      w.kind = WidgetKind::OptionalToggle;
      w.children.push_back(widget_for(sid, label, type->element()));
      break;
    case TypeKind::ServiceRef:
      w.kind = WidgetKind::BindButton;
      break;
    case TypeKind::Sid:
      w.kind = WidgetKind::SidViewer;
      break;
    case TypeKind::Any:
      w.kind = WidgetKind::AnyField;
      break;
    case TypeKind::Void:
      throw ContractError("void has no widget");
  }
  return w;
}

OperationForm generate_operation_form(const sidl::Sid& sid,
                                      const std::string& operation) {
  const sidl::OperationDesc* op = sid.find_operation(operation);
  if (op == nullptr) {
    throw NotFound("SID '" + sid.name + "' has no operation '" + operation + "'");
  }
  OperationForm form;
  form.operation = op->name;
  if (const std::string* note = sid.find_annotation(op->name)) {
    form.annotation = *note;
  }
  for (const auto& p : op->params) {
    if (p.dir == sidl::ParamDir::Out) continue;
    form.inputs.push_back(widget_for(sid, p.name, p.type));
  }
  if (op->result->kind() != TypeKind::Void) {
    form.result_view = widget_for(sid, "result", op->result);
  }
  if (sid.fsm) {
    for (const auto& tr : sid.fsm->transitions) {
      if (tr.operation == op->name) form.fsm_restricted = true;
    }
  }
  return form;
}

ServiceForm generate_form(const sidl::Sid& sid) {
  ServiceForm form;
  form.service = sid.name;
  if (const std::string* note = sid.find_annotation(sid.name)) {
    form.annotation = *note;
  }
  form.operations.reserve(sid.operations.size());
  for (const auto& op : sid.operations) {
    form.operations.push_back(generate_operation_form(sid, op.name));
  }
  return form;
}

namespace {

void render_widget(std::ostream& os, const Widget& w, int indent) {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  os << pad;
  switch (w.kind) {
    case WidgetKind::CheckBox:
      os << "[ ] " << w.label;
      break;
    case WidgetKind::NumberField:
      os << w.label << ": [____0____]";
      break;
    case WidgetKind::TextField:
      os << w.label << ": [_________]";
      break;
    case WidgetKind::EnumChoice: {
      os << w.label << ": (";
      for (std::size_t i = 0; i < w.choices.size(); ++i) {
        os << (i ? " | " : " ") << w.choices[i];
      }
      os << " )";
      break;
    }
    case WidgetKind::StructGroup: {
      os << "+-- " << w.label;
      if (!w.type->name().empty()) os << " : " << w.type->name();
      for (const auto& child : w.children) {
        os << "\n";
        render_widget(os, child, indent + 1);
      }
      break;
    }
    case WidgetKind::SequenceEditor:
      os << w.label << ": [list of " << sidl::to_string(w.children[0].type->kind())
         << "] (+ add)";
      break;
    case WidgetKind::OptionalToggle:
      os << "( ) omit / (*) provide " << w.label << "\n";
      render_widget(os, w.children[0], indent + 1);
      return;  // child already rendered with label
    case WidgetKind::BindButton:
      os << "<" << w.label << ": BIND TO SERVICE>";
      break;
    case WidgetKind::SidViewer:
      os << "<" << w.label << ": interface description>";
      break;
    case WidgetKind::AnyField:
      os << w.label << ": [any value]";
      break;
  }
  if (!w.annotation.empty()) os << "   // " << w.annotation;
}

}  // namespace

std::string render_text(const OperationForm& form) {
  std::ostringstream os;
  os << "== " << form.operation;
  if (form.fsm_restricted) os << "  (protocol-controlled)";
  os << " ==\n";
  if (!form.annotation.empty()) os << "   " << form.annotation << "\n";
  for (const auto& w : form.inputs) {
    render_widget(os, w, 1);
    os << "\n";
  }
  os << "  [ INVOKE " << form.operation << " ]\n";
  if (form.result_view.type) {
    os << "  result:\n";
    render_widget(os, form.result_view, 2);
    os << "\n";
  }
  return os.str();
}

std::string render_text(const ServiceForm& form) {
  std::ostringstream os;
  os << "### Service: " << form.service << " ###\n";
  if (!form.annotation.empty()) os << form.annotation << "\n";
  for (const auto& op : form.operations) {
    os << render_text(op);
  }
  return os.str();
}

namespace {

std::size_t count_widgets(const Widget& w) {
  std::size_t n = 1;
  for (const auto& c : w.children) n += count_widgets(c);
  return n;
}

}  // namespace

std::size_t widget_count(const ServiceForm& form) {
  std::size_t n = 0;
  for (const auto& op : form.operations) {
    for (const auto& w : op.inputs) n += count_widgets(w);
    if (op.result_view.type) n += count_widgets(op.result_view);
  }
  return n;
}

}  // namespace cosm::uims
