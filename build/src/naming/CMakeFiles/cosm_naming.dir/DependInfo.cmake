
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/naming/binder.cpp" "src/naming/CMakeFiles/cosm_naming.dir/binder.cpp.o" "gcc" "src/naming/CMakeFiles/cosm_naming.dir/binder.cpp.o.d"
  "/root/repo/src/naming/facades.cpp" "src/naming/CMakeFiles/cosm_naming.dir/facades.cpp.o" "gcc" "src/naming/CMakeFiles/cosm_naming.dir/facades.cpp.o.d"
  "/root/repo/src/naming/group_manager.cpp" "src/naming/CMakeFiles/cosm_naming.dir/group_manager.cpp.o" "gcc" "src/naming/CMakeFiles/cosm_naming.dir/group_manager.cpp.o.d"
  "/root/repo/src/naming/interface_repository.cpp" "src/naming/CMakeFiles/cosm_naming.dir/interface_repository.cpp.o" "gcc" "src/naming/CMakeFiles/cosm_naming.dir/interface_repository.cpp.o.d"
  "/root/repo/src/naming/name_server.cpp" "src/naming/CMakeFiles/cosm_naming.dir/name_server.cpp.o" "gcc" "src/naming/CMakeFiles/cosm_naming.dir/name_server.cpp.o.d"
  "/root/repo/src/naming/persistence.cpp" "src/naming/CMakeFiles/cosm_naming.dir/persistence.cpp.o" "gcc" "src/naming/CMakeFiles/cosm_naming.dir/persistence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rpc/CMakeFiles/cosm_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/cosm_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/sidl/CMakeFiles/cosm_sidl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
