// CosmRuntime: the assembled Fig. 6 stack in one object.
//
// Wires the Communication Level (a Network), the Service Support Level
// (name server, interface manager, group manager, binder), the Controlling
// Level (ODP trader) and the mediation components (browser) behind one RPC
// server, binds them under well-known names, and offers the two
// registration paths the paper integrates:
//   * offer_mediated(...)  — register the SID at the browser (Fig. 4),
//   * offer_traded(...)    — export to the trader from the SID's
//     COSM_TraderExport module (§4.1),
// plus host(...) for bare hosting.  Examples, tests and benchmarks build on
// this instead of re-wiring the stack by hand.

#pragma once

#include <memory>
#include <string>
#include <utility>

#include "core/browser.h"
#include "core/config.h"
#include "core/generic_client.h"
#include "naming/binder.h"
#include "naming/facades.h"
#include "naming/group_manager.h"
#include "naming/interface_repository.h"
#include "naming/name_server.h"
#include "rpc/activity.h"
#include "rpc/network.h"
#include "rpc/server.h"
#include "rpc/transport_options.h"
#include "trader/facade.h"
#include "trader/trader.h"

namespace cosm::core {

/// Well-known name-server paths of the infrastructure services.
struct WellKnownNames {
  static constexpr const char* kTrader = "cosm/trader";
  static constexpr const char* kBrowser = "cosm/browser";
  static constexpr const char* kNameServer = "cosm/names";
  static constexpr const char* kRepository = "cosm/repository";
  static constexpr const char* kGroupManager = "cosm/groups";
  static constexpr const char* kActivityManager = "cosm/activities";
};

// Configuration (CosmConfig, the deprecated RuntimeOptions alias, and
// ObservabilityOptions) lives in core/config.h.

class CosmRuntime {
 public:
  /// Assemble the stack on a network the caller owns.
  explicit CosmRuntime(rpc::Network& network, rpc::ServerOptions server_options = {});
  /// Assemble from a full configuration.  The config is validated first
  /// (CosmConfig::validated — invalid combinations throw ContractError);
  /// with `config.durable` set, the trader recovers its journalled state
  /// before the stack is exposed, and the at-most-once replay cache is
  /// seeded with the journal's per-session high-water marks.
  CosmRuntime(rpc::Network& network, CosmConfig config);

  // --- local access to the components ---
  naming::NameServer& names() noexcept { return names_; }
  naming::GroupManager& groups() noexcept { return groups_; }
  naming::InterfaceRepository& repository() noexcept { return repository_; }
  naming::Binder& binder() noexcept { return binder_; }
  rpc::ActivityManager& activities() noexcept { return activities_; }
  trader::Trader& trader() noexcept { return trader_; }
  ServiceBrowser& browser() noexcept { return browser_; }
  rpc::RpcServer& server() noexcept { return server_; }
  rpc::Network& network() noexcept { return network_; }
  /// The validated configuration this runtime was assembled from.
  const CosmConfig& config() const noexcept { return config_; }
  /// Fields CosmConfig::validated clamped (also the `config.adjusted`
  /// metric when metrics are on).
  std::size_t config_adjustments() const noexcept { return config_adjusted_; }
  /// The trader's storage engine (a no-op NullStorage unless
  /// config().durable).
  trader::storage::StorageEngine& storage() noexcept {
    return trader_.storage();
  }

  // --- well-known references ---
  const sidl::ServiceRef& trader_ref() const noexcept { return trader_ref_; }
  const sidl::ServiceRef& browser_ref() const noexcept { return browser_ref_; }
  const sidl::ServiceRef& name_server_ref() const noexcept { return names_ref_; }
  const sidl::ServiceRef& repository_ref() const noexcept { return repository_ref_; }
  const sidl::ServiceRef& group_manager_ref() const noexcept { return groups_ref_; }
  const sidl::ServiceRef& activity_manager_ref() const noexcept {
    return activities_ref_;
  }

  /// Host a service (no registration anywhere): it becomes reachable and
  /// its SID is stored in the interface repository.
  sidl::ServiceRef host(rpc::ServiceObjectPtr object);

  /// Mediation path: host + register at the browser under `entry_name`.
  sidl::ServiceRef offer_mediated(const std::string& entry_name,
                                  rpc::ServiceObjectPtr object);

  /// Trading path (§4.1): host + export to the trader using the SID's
  /// COSM_TraderExport module.  Returns (reference, offer id).  Throws
  /// cosm::NotFound when the SID lacks the extension.
  std::pair<sidl::ServiceRef, std::string> offer_traded(rpc::ServiceObjectPtr object);

  /// A generic client on this runtime's network.
  GenericClient make_client(GenericClientOptions options = {}) {
    return GenericClient(network_, options);
  }

  /// Federate with a remote trader: adds a RemoteTraderGateway link using
  /// this runtime's retry policy, so federated imports survive transient
  /// link faults (and repeat offenders are quarantined per
  /// RuntimeOptions::federation).
  void link_trader(const std::string& link_name,
                   const sidl::ServiceRef& remote_trader_ref);

  /// Upgrade an existing link_trader() link to a replication subscription
  /// (Federation v2): the remote trader pushes its in-scope offers here,
  /// and covered imports resolve against the local replica instead of
  /// fanning out.  The gateway pushes back to this runtime's trader
  /// facade, so the link must have been created by link_trader().
  void subscribe_trader(const std::string& link_name,
                        trader::SubscriptionScope scope = {});

  // --- observability (see ObservabilityOptions / src/obs) ---

  /// JSON snapshot of the process-wide metrics registry, with this
  /// runtime's lifetime stats (trader matching counters, server totals)
  /// folded in as gauges at snapshot time, namespaced by the runtime's
  /// process-unique trader name (`<trader-name>.exports_total`, ...) so
  /// co-resident runtimes never overwrite each other's folds.  Works with
  /// metrics disabled — the folded gauges are then the only populated
  /// section.
  std::string metrics_snapshot();

  /// JSON dump of the recorded span ring (empty array when tracing was
  /// never enabled).
  std::string dump_traces() const;

 private:
  rpc::Network& network_;
  std::size_t config_adjusted_ = 0;  ///< must precede config_ (out-param)
  CosmConfig config_;                ///< validated copy
  rpc::RetryPolicy retry_;
  /// Constructed before trader_ (which holds a reference for its lifetime)
  /// and only non-null when config_.durable.
  std::shared_ptr<trader::storage::StorageEngine> storage_engine_;
  naming::NameServer names_;
  naming::GroupManager groups_;
  naming::InterfaceRepository repository_;
  trader::Trader trader_;
  ServiceBrowser browser_;
  rpc::RpcServer server_;
  naming::Binder binder_;
  rpc::ActivityManager activities_;

  sidl::ServiceRef trader_ref_;
  sidl::ServiceRef browser_ref_;
  sidl::ServiceRef names_ref_;
  sidl::ServiceRef repository_ref_;
  sidl::ServiceRef groups_ref_;
  sidl::ServiceRef activities_ref_;
};

}  // namespace cosm::core
