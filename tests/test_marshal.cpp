#include "wire/marshal.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "sidl/parser.h"
#include "support/generators.h"
#include "wire/codec.h"

namespace cosm::wire {
namespace {

using sidl::TypeDesc;

TEST(Conforms, PrimitivesStrict) {
  EXPECT_TRUE(conforms(Value::integer(1), *TypeDesc::int_()));
  EXPECT_FALSE(conforms(Value::integer(1), *TypeDesc::float_()));
  EXPECT_FALSE(conforms(Value::real(1.0), *TypeDesc::int_()));
  EXPECT_TRUE(conforms(Value::null(), *TypeDesc::void_()));
  EXPECT_FALSE(conforms(Value::integer(0), *TypeDesc::void_()));
}

TEST(Conforms, AnyAcceptsEverything) {
  EXPECT_TRUE(conforms(Value::integer(1), *TypeDesc::any()));
  EXPECT_TRUE(conforms(Value::structure("S", {}), *TypeDesc::any()));
  EXPECT_TRUE(conforms(Value::null(), *TypeDesc::any()));
}

TEST(Conforms, EnumLabelMustBeDeclared) {
  auto e = TypeDesc::enum_("E", {"A", "B"});
  EXPECT_TRUE(conforms(Value::enumerated("E", "A"), *e));
  EXPECT_FALSE(conforms(Value::enumerated("E", "Z"), *e));
}

TEST(Conforms, EnumTypeNameMatchedWhenBothNamed) {
  auto e = TypeDesc::enum_("E", {"A"});
  EXPECT_FALSE(conforms(Value::enumerated("F", "A"), *e));
  // Anonymous value enum against named type: allowed (label membership only).
  EXPECT_TRUE(conforms(Value::enumerated("", "A"), *e));
}

TEST(Conforms, StructWidthSubtyping) {
  auto t = TypeDesc::struct_("S", {{"x", TypeDesc::int_()}});
  Value exact = Value::structure("S", {{"x", Value::integer(1)}});
  Value wider = Value::structure(
      "S", {{"x", Value::integer(1)}, {"extra", Value::string("kept")}});
  Value missing = Value::structure("S", {});
  EXPECT_TRUE(conforms(exact, *t));
  EXPECT_TRUE(conforms(wider, *t));  // extra fields ride along
  EXPECT_FALSE(conforms(missing, *t));
}

TEST(Conforms, StructNameMismatchRejected) {
  auto t = TypeDesc::struct_("S", {});
  EXPECT_FALSE(conforms(Value::structure("T", {}), *t));
  EXPECT_TRUE(conforms(Value::structure("", {}), *t));
}

TEST(Conforms, SequenceElementwise) {
  auto t = TypeDesc::sequence(TypeDesc::int_());
  EXPECT_TRUE(conforms(Value::sequence({Value::integer(1)}), *t));
  EXPECT_FALSE(conforms(Value::sequence({Value::string("x")}), *t));
  EXPECT_TRUE(conforms(Value::sequence({}), *t));
}

TEST(Conforms, OptionalAbsentAlwaysConforms) {
  auto t = TypeDesc::optional(TypeDesc::int_());
  EXPECT_TRUE(conforms(Value::optional_absent(), *t));
  EXPECT_TRUE(conforms(Value::optional_of(Value::integer(1)), *t));
  EXPECT_FALSE(conforms(Value::optional_of(Value::string("x")), *t));
}

TEST(EnsureConforms, ErrorNamesThePath) {
  auto t = TypeDesc::struct_(
      "S", {{"inner", TypeDesc::struct_("T", {{"n", TypeDesc::int_()}})}});
  Value bad = Value::structure(
      "S", {{"inner", Value::structure("T", {{"n", Value::string("oops")}})}});
  try {
    ensure_conforms(bad, *t);
    FAIL() << "expected TypeError";
  } catch (const TypeError& e) {
    EXPECT_NE(std::string(e.what()).find("$.inner.n"), std::string::npos);
  }
}

TEST(DynamicMarshaller, RoundTripChecksBothSides) {
  auto t = TypeDesc::struct_("S", {{"x", TypeDesc::int_()}});
  DynamicMarshaller m(t);
  Value good = Value::structure("S", {{"x", Value::integer(42)}});
  EXPECT_EQ(m.unmarshal(m.marshal(good)), good);
  EXPECT_THROW(m.marshal(Value::structure("S", {})), TypeError);
  // Bytes that decode to a non-conforming value are rejected on unmarshal.
  EXPECT_THROW(m.unmarshal(encode_value(Value::integer(1))), TypeError);
}

TEST(DynamicMarshaller, NullTypeRejected) {
  EXPECT_THROW(DynamicMarshaller(nullptr), ContractError);
}

TEST(MarshalArguments, PositionalInParams) {
  sidl::Sid sid = sidl::parse_sid(R"(
    module M { interface I { void Op([in] long a, [in] string b); }; };
  )");
  const auto& op = sid.operations[0];
  Bytes b = marshal_arguments(op, {Value::integer(1), Value::string("x")});
  auto args = unmarshal_arguments(op, b);
  ASSERT_EQ(args.size(), 2u);
  EXPECT_EQ(args[0].as_int(), 1);
  EXPECT_EQ(args[1].as_string(), "x");
}

TEST(MarshalArguments, CountMismatchRejected) {
  sidl::Sid sid =
      sidl::parse_sid("module M { interface I { void Op([in] long a); }; };");
  const auto& op = sid.operations[0];
  EXPECT_THROW(marshal_arguments(op, {}), TypeError);
  EXPECT_THROW(marshal_arguments(op, {Value::integer(1), Value::integer(2)}),
               TypeError);
}

TEST(MarshalArguments, OutParamsNotSent) {
  sidl::Sid sid = sidl::parse_sid(
      "module M { interface I { void Op([in] long a, [out] string b); }; };");
  const auto& op = sid.operations[0];
  Bytes b = marshal_arguments(op, {Value::integer(1)});  // only the in-param
  auto args = unmarshal_arguments(op, b);
  EXPECT_EQ(args.size(), 1u);
}

TEST(MarshalArguments, NonConformingArgumentNamed) {
  sidl::Sid sid =
      sidl::parse_sid("module M { interface I { void Op([in] long amount); }; };");
  try {
    marshal_arguments(sid.operations[0], {Value::string("NaN")});
    FAIL() << "expected TypeError";
  } catch (const TypeError& e) {
    EXPECT_NE(std::string(e.what()).find("amount"), std::string::npos);
  }
}

TEST(DefaultValue, PerKind) {
  EXPECT_EQ(default_value(*TypeDesc::bool_()), Value::boolean(false));
  EXPECT_EQ(default_value(*TypeDesc::int_()), Value::integer(0));
  EXPECT_EQ(default_value(*TypeDesc::string_()), Value::string(""));
  auto e = TypeDesc::enum_("E", {"FIRST", "SECOND"});
  EXPECT_EQ(default_value(*e).enum_label(), "FIRST");
  EXPECT_EQ(default_value(*TypeDesc::sequence(TypeDesc::int_())),
            Value::sequence({}));
  EXPECT_FALSE(default_value(*TypeDesc::optional(TypeDesc::int_())).has_payload());
  EXPECT_EQ(default_value(*TypeDesc::any()), Value::null());
  EXPECT_THROW(default_value(*TypeDesc::sid()), ContractError);
}

TEST(DefaultValue, StructDefaultsConform) {
  auto t = TypeDesc::struct_(
      "S", {{"a", TypeDesc::int_()},
            {"b", TypeDesc::enum_("E", {"X"})},
            {"c", TypeDesc::optional(TypeDesc::string_())}});
  EXPECT_TRUE(conforms(default_value(*t), *t));
}

/// Property: every random value conforms to the type that generated it, and
/// the default value of every random type conforms to that type.
class MarshalProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MarshalProperty, GeneratedValuesConform) {
  cosm::Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    auto type = cosm::testing::random_type(rng);
    Value v = cosm::testing::random_value(rng, *type);
    EXPECT_TRUE(conforms(v, *type)) << type->describe() << " vs "
                                    << v.to_debug_string();
    EXPECT_TRUE(conforms(default_value(*type), *type)) << type->describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarshalProperty,
                         ::testing::Values(3, 9, 27, 81, 243));

}  // namespace
}  // namespace cosm::wire
