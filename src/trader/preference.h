// Import preferences: how a trader ranks matching offers to pick the "best
// possible" service (§2.1, Fig. 1 step 3).
//
// Syntax:  "first" | "random" | "min <Attr>" | "max <Attr>"
// An empty preference string means "first" (export order).

#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "trader/attributes.h"

namespace cosm::trader {

enum class PreferenceKind { First, Random, Min, Max };

std::string to_string(PreferenceKind kind);

class Preference {
 public:
  /// Parse a preference spec; throws cosm::ParseError.
  static Preference parse(const std::string& text);

  Preference() = default;

  PreferenceKind kind() const noexcept { return kind_; }
  const std::string& attribute() const noexcept { return attr_; }

  /// Rank offer indices over their attribute maps.  Offers missing the
  /// ranked attribute (or holding a non-numeric value) sort after all
  /// rankable ones, keeping their relative order.  `rng` drives Random.
  std::vector<std::size_t> rank(const std::vector<const AttrMap*>& offers,
                                Rng& rng) const;

 private:
  PreferenceKind kind_ = PreferenceKind::First;
  std::string attr_;
};

}  // namespace cosm::trader
