file(REMOVE_RECURSE
  "CMakeFiles/cosm_services.dir/car_rental.cpp.o"
  "CMakeFiles/cosm_services.dir/car_rental.cpp.o.d"
  "CMakeFiles/cosm_services.dir/image_conversion.cpp.o"
  "CMakeFiles/cosm_services.dir/image_conversion.cpp.o.d"
  "CMakeFiles/cosm_services.dir/market.cpp.o"
  "CMakeFiles/cosm_services.dir/market.cpp.o.d"
  "CMakeFiles/cosm_services.dir/stock_quote.cpp.o"
  "CMakeFiles/cosm_services.dir/stock_quote.cpp.o.d"
  "CMakeFiles/cosm_services.dir/weather.cpp.o"
  "CMakeFiles/cosm_services.dir/weather.cpp.o.d"
  "libcosm_services.a"
  "libcosm_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosm_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
