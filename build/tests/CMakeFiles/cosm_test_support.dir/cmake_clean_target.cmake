file(REMOVE_RECURSE
  "libcosm_test_support.a"
)
