// The Service Interface Description (SID) model — the paper's central data
// structure (§3.1).
//
// A SID is a *communicable first-class object*: it travels over the wire (in
// its SIDL source form), is registered at browsers, stored in interface
// repositories, and interpreted by generic clients to generate user
// interfaces, marshal parameters dynamically and enforce the service's FSM
// protocol locally.
//
// The model realises the paper's record-subtyping scheme (Fig. 2): a SID
// always carries the *base* elements (type definitions + operation
// signatures) and optionally any number of *extension* elements.  Known
// extensions (FSM spec, trader export, annotations) are parsed into typed
// form; unknown extensions are preserved verbatim so the SID stays
// processable — and re-transmittable — by components that do not understand
// them (§4.1: "IDL interpreters can be extended to recognise only known
// module names and skip those that do not bear any meaning to them").

#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sidl/literal.h"
#include "sidl/type_desc.h"

namespace cosm::sidl {

/// Parameter passing direction, CORBA-IDL style.
enum class ParamDir { In, Out, InOut };

std::string to_string(ParamDir dir);

struct ParamDesc {
  ParamDir dir = ParamDir::In;
  std::string name;
  TypePtr type;

  bool operator==(const ParamDesc& o) const {
    return dir == o.dir && name == o.name && type->equals(*o.type);
  }
};

/// One operation signature in the service's computational interface.
struct OperationDesc {
  std::string name;
  TypePtr result;  // TypeDesc::void_() for void operations
  std::vector<ParamDesc> params;

  bool operator==(const OperationDesc& o) const {
    return name == o.name && result->equals(*o.result) && params == o.params;
  }
};

/// One allowed transition: (current state, operation, resulting state).
struct FsmTransition {
  std::string from;
  std::string operation;
  std::string to;

  bool operator==(const FsmTransition&) const = default;
};

/// Finite-state-machine restriction of legal invocation sequences (§3.1).
struct FsmSpec {
  std::vector<std::string> states;
  std::string initial;
  std::vector<FsmTransition> transitions;

  bool operator==(const FsmSpec&) const = default;

  bool has_state(const std::string& s) const;
  /// The transition enabled for (state, operation), or nullptr if the
  /// operation is not allowed in that state.
  const FsmTransition* find(const std::string& state, const std::string& operation) const;
  /// All operations allowed in `state`.
  std::vector<std::string> allowed(const std::string& state) const;
};

/// COSM_TraderExport extension: the service-type name and property values
/// needed to additionally register the service at an ODP trader (§4.1).
struct TraderExport {
  /// "TOD" — type-of-description: the ODP service type name.
  std::string service_type;
  /// Property values in declaration order, e.g. {"ChargePerDay", 80.0}.
  std::vector<std::pair<std::string, Literal>> attributes;

  bool operator==(const TraderExport&) const = default;

  const Literal* find(const std::string& attr) const;
};

/// An extension module this component does not understand, preserved
/// verbatim (including whitespace) for onward transmission.
struct ExtensionModule {
  std::string name;
  std::string raw_body;  // text between the module's braces

  bool operator==(const ExtensionModule&) const = default;
};

class Sid;
using SidPtr = std::shared_ptr<const Sid>;

/// A complete service interface description.
class Sid {
 public:
  /// Service/module name, e.g. "CarRentalService".
  std::string name;

  /// Interface name the operations were declared under (first interface
  /// block), e.g. "COSM_Operations".
  std::string interface_name;

  /// Named type definitions in declaration order.
  std::vector<std::pair<std::string, TypePtr>> types;

  /// Operation signatures (merged across interface blocks, in order).
  std::vector<OperationDesc> operations;

  /// Top-level constants (outside any COSM extension module).
  std::vector<std::pair<std::string, Literal>> constants;

  // --- extensions (each optional; their presence makes this a subtype of
  // the base SID in the Fig. 2 sense) ---
  std::optional<FsmSpec> fsm;
  std::optional<TraderExport> trader_export;
  /// element name (operation, parameter or type) -> natural-language text.
  std::map<std::string, std::string> annotations;
  /// Unknown extension modules, preserved raw.
  std::vector<ExtensionModule> unknown_extensions;

  // --- lookups ---
  const OperationDesc* find_operation(const std::string& op_name) const;
  TypePtr find_type(const std::string& type_name) const;
  const std::string* find_annotation(const std::string& element) const;

  /// Number of extension elements present (known + unknown) — the "distance"
  /// above the base SID type.
  std::size_t extension_count() const;

  bool operator==(const Sid& o) const;
};

/// SID conformance (Fig. 2): `sub` conforms to `base` iff it offers at least
/// the base's named types (by name) and at least the base's operations with
/// conforming signatures — covariant results, contravariant in-parameters,
/// invariant inout-parameters, all by structural conformance at the use
/// site.  Extensions never break conformance.
bool conforms_to(const Sid& sub, const Sid& base);

}  // namespace cosm::sidl
