// Deterministic pseudo-random number generation for workload generators,
// property tests and selection policies.
//
// All randomness in COSM flows through SplitMix64 seeded explicitly, so every
// benchmark and test run is reproducible bit-for-bit.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cosm {

/// SplitMix64: tiny, fast, well-distributed; good enough for workload
/// generation and far simpler to audit than std::mt19937.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias (rejection sampling).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  bool chance(double p) { return uniform() < p; }

  /// Random lowercase identifier of the given length.
  std::string ident(std::size_t length);

  /// Pick an element index weighted by `weights` (must be non-empty).
  std::size_t weighted(const std::vector<double>& weights);

  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[below(v.size())];
  }

 private:
  std::uint64_t state_;
};

}  // namespace cosm
