#include "core/browser.h"

#include <algorithm>
#include <cctype>

#include "common/error.h"
#include "sidl/parser.h"
#include "sidl/validate.h"

namespace cosm::core {

ServiceBrowser::ServiceBrowser(std::string name) : name_(std::move(name)) {
  if (name_.empty()) throw ContractError("browser needs a name");
}

void ServiceBrowser::register_service(const std::string& entry_name,
                                      sidl::SidPtr sid,
                                      const sidl::ServiceRef& ref) {
  if (entry_name.empty()) throw ContractError("entry name must not be empty");
  if (!sid) throw ContractError("registration needs a SID");
  if (!ref.valid()) throw ContractError("registration needs a valid reference");
  sidl::ensure_valid(*sid);
  std::lock_guard lock(mutex_);
  for (auto& entry : entries_) {
    if (entry.name == entry_name) {
      entry.sid = std::move(sid);
      entry.ref = ref;
      ++registrations_;
      return;
    }
  }
  entries_.push_back({entry_name, std::move(sid), ref});
  ++registrations_;
}

void ServiceBrowser::withdraw(const std::string& entry_name) {
  std::lock_guard lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->name == entry_name) {
      entries_.erase(it);
      return;
    }
  }
  throw NotFound("browser '" + name_ + "' has no entry '" + entry_name + "'");
}

std::vector<BrowserEntry> ServiceBrowser::list() const {
  std::lock_guard lock(mutex_);
  return entries_;
}

BrowserEntry ServiceBrowser::describe(const std::string& entry_name) const {
  std::lock_guard lock(mutex_);
  for (const auto& entry : entries_) {
    if (entry.name == entry_name) return entry;
  }
  throw NotFound("browser '" + name_ + "' has no entry '" + entry_name + "'");
}

namespace {

std::string lowered(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool contains_ci(const std::string& haystack, const std::string& needle_lower) {
  return lowered(haystack).find(needle_lower) != std::string::npos;
}

}  // namespace

std::vector<BrowserEntry> ServiceBrowser::search(const std::string& keyword) const {
  std::string needle = lowered(keyword);
  std::lock_guard lock(mutex_);
  std::vector<BrowserEntry> hits;
  for (const auto& entry : entries_) {
    bool hit = contains_ci(entry.name, needle) ||
               contains_ci(entry.sid->name, needle);
    if (!hit) {
      for (const auto& op : entry.sid->operations) {
        if (contains_ci(op.name, needle)) hit = true;
      }
    }
    if (!hit) {
      for (const auto& [element, text] : entry.sid->annotations) {
        if (contains_ci(text, needle)) hit = true;
      }
    }
    if (hit) hits.push_back(entry);
  }
  return hits;
}

std::size_t ServiceBrowser::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

const std::string& browser_sidl() {
  static const std::string text = R"(
module BrowserService {
  typedef struct { string name; ServiceReference ref; } Entry_t;
  interface COSM_Operations {
    void Register([in] string name, [in] SID description, [in] ServiceReference ref);
    void WithdrawEntry([in] string name);
    sequence<Entry_t> List();
    SID Describe([in] string name);
    sequence<Entry_t> Search([in] string keyword);
  };
  module COSM_Annotations {
    annotate BrowserService "Registry of innovative services: browse, inspect, bind";
    annotate Register "Register a service's interface description and reference";
    annotate List "Enumerate all registered services";
    annotate Describe "Fetch the full interface description of an entry";
    annotate Search "Keyword search over names, operations and annotations";
  };
};
)";
  return text;
}

rpc::ServiceObjectPtr make_browser_service(ServiceBrowser& browser) {
  using wire::Value;
  auto sid = std::make_shared<sidl::Sid>(sidl::parse_sid(browser_sidl()));
  auto object = std::make_shared<rpc::ServiceObject>(std::move(sid));

  auto entries_to_value = [](const std::vector<BrowserEntry>& entries) {
    std::vector<Value> out;
    out.reserve(entries.size());
    for (const auto& e : entries) {
      out.push_back(Value::structure(
          "Entry_t",
          {{"name", Value::string(e.name)}, {"ref", Value::service_ref(e.ref)}}));
    }
    return Value::sequence(std::move(out));
  };

  object->on("Register", [&browser](const std::vector<Value>& args) {
    browser.register_service(args.at(0).as_string(), args.at(1).as_sid(),
                             args.at(2).as_ref());
    return Value::null();
  });
  object->on("WithdrawEntry", [&browser](const std::vector<Value>& args) {
    browser.withdraw(args.at(0).as_string());
    return Value::null();
  });
  object->on("List", [&browser, entries_to_value](const std::vector<Value>&) {
    return entries_to_value(browser.list());
  });
  object->on("Describe", [&browser](const std::vector<Value>& args) {
    return Value::sid(browser.describe(args.at(0).as_string()).sid);
  });
  object->on("Search", [&browser, entries_to_value](const std::vector<Value>& args) {
    return entries_to_value(browser.search(args.at(0).as_string()));
  });
  return object;
}

}  // namespace cosm::core
