// A small worker pool with claimable tasks.
//
// A submitted task is normally executed by a pool worker, but any thread
// holding the TaskPtr can claim it first: run_if_unclaimed() executes it on
// the claiming thread, cancel() claims it without executing (a timed-out
// caller abandoning work that never started).  Whoever claims first wins;
// the loser sees a no-op.  The in-proc transport uses cancel() so an
// expired call that is still queued costs nothing, while calls already
// running are simply abandoned — mirroring how a network client walks away
// from a slow server.  The TCP transport uses a second Executor as its
// dispatch pool: the reactor decodes frames on event-loop threads and
// submits each to the pool, whose worker runs the handler and queues the
// response — so handler concurrency is sized here, not by connection count.
//
// Destruction drains: queued tasks still run (on the destructor's thread if
// need be) so no PendingCall is left unsettled.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cosm::rpc {

class Executor {
 public:
  /// A unit of queued work; shared between the queue and any caller that
  /// wants the option of running it inline.
  class Task {
   public:
    explicit Task(std::function<void()> fn) : fn_(std::move(fn)) {}

    /// Run the task on the calling thread unless a worker already claimed
    /// it.  Returns true when this call executed it.
    bool run_if_unclaimed() {
      if (claimed_.exchange(true, std::memory_order_acq_rel)) return false;
      fn_();
      fn_ = nullptr;  // release captures promptly
      return true;
    }

    /// Claim the task without running it; true when the cancel won (the
    /// task will now never execute).  Only the claim winner touches fn_, so
    /// this needs no lock.
    bool cancel() {
      if (claimed_.exchange(true, std::memory_order_acq_rel)) return false;
      fn_ = nullptr;
      return true;
    }

   private:
    std::atomic<bool> claimed_{false};
    std::function<void()> fn_;
  };
  using TaskPtr = std::shared_ptr<Task>;

  /// `workers` == 0 picks a default sized for overlapping blocking work
  /// (simulated latency, socket waits), not just CPU parallelism.
  explicit Executor(std::size_t workers = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  TaskPtr submit(std::function<void()> fn);

  std::size_t worker_count() const noexcept { return threads_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<TaskPtr> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace cosm::rpc
