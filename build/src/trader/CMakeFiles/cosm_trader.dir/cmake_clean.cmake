file(REMOVE_RECURSE
  "CMakeFiles/cosm_trader.dir/attributes.cpp.o"
  "CMakeFiles/cosm_trader.dir/attributes.cpp.o.d"
  "CMakeFiles/cosm_trader.dir/constraint.cpp.o"
  "CMakeFiles/cosm_trader.dir/constraint.cpp.o.d"
  "CMakeFiles/cosm_trader.dir/facade.cpp.o"
  "CMakeFiles/cosm_trader.dir/facade.cpp.o.d"
  "CMakeFiles/cosm_trader.dir/preference.cpp.o"
  "CMakeFiles/cosm_trader.dir/preference.cpp.o.d"
  "CMakeFiles/cosm_trader.dir/service_type.cpp.o"
  "CMakeFiles/cosm_trader.dir/service_type.cpp.o.d"
  "CMakeFiles/cosm_trader.dir/sid_export.cpp.o"
  "CMakeFiles/cosm_trader.dir/sid_export.cpp.o.d"
  "CMakeFiles/cosm_trader.dir/trader.cpp.o"
  "CMakeFiles/cosm_trader.dir/trader.cpp.o.d"
  "libcosm_trader.a"
  "libcosm_trader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosm_trader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
