file(REMOVE_RECURSE
  "CMakeFiles/test_trader_facade.dir/test_trader_facade.cpp.o"
  "CMakeFiles/test_trader_facade.dir/test_trader_facade.cpp.o.d"
  "test_trader_facade"
  "test_trader_facade.pdb"
  "test_trader_facade[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trader_facade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
