// UIMS form models: the "well-defined relationship of linguistic service
// description elements to corresponding (graphical) user interface
// management system components at the client site" (§3.2, Fig. 3/Fig. 7).
//
// The model is headless: a Widget tree describes what a GUI toolkit would
// render — typed value editors per parameter, operation buttons, binding
// buttons for service references — and a text renderer materialises the
// Fig. 7 style form for terminals and tests.  Because every widget is
// derived from the transferred SID, "type conformance between co-operating
// client and server interfaces is always given implicitly" (§4.2).

#pragma once

#include <string>
#include <vector>

#include "sidl/sid.h"
#include "sidl/type_desc.h"

namespace cosm::uims {

enum class WidgetKind {
  CheckBox,        // boolean
  NumberField,     // long / double
  TextField,       // string
  EnumChoice,      // enum: radio group / dropdown
  StructGroup,     // struct: framed group of child widgets
  SequenceEditor,  // sequence: growable list of element editors
  OptionalToggle,  // optional: presence toggle + payload editor
  BindButton,      // ServiceReference: "bind to this service" control (Fig. 4)
  SidViewer,       // SID: description display
  AnyField,        // any: free-form value entry
};

std::string to_string(WidgetKind kind);

struct Widget {
  WidgetKind kind = WidgetKind::TextField;
  /// Element name (parameter or field name).
  std::string label;
  /// Natural-language help from COSM_Annotations ("" when absent).
  std::string annotation;
  sidl::TypePtr type;
  /// StructGroup: one child per field.  SequenceEditor/OptionalToggle: one
  /// child, the element/payload prototype.
  std::vector<Widget> children;
  /// EnumChoice: the selectable labels.
  std::vector<std::string> choices;
};

/// The form for one operation: an input editor per in/inout parameter, an
/// invoke button (implicit) and a result display.
struct OperationForm {
  std::string operation;
  std::string annotation;
  std::vector<Widget> inputs;
  Widget result_view;
  /// True when the service's FSM restricts this operation (the generic
  /// client greys the button out in states where it is not allowed).
  bool fsm_restricted = false;
};

/// The complete generated user interface for a service.
struct ServiceForm {
  std::string service;
  std::string annotation;
  std::vector<OperationForm> operations;
};

/// Build the widget for a single type (exposed for tests).
Widget widget_for(const sidl::Sid& sid, const std::string& label,
                  const sidl::TypePtr& type);

/// Generate the form for one operation; throws cosm::NotFound.
OperationForm generate_operation_form(const sidl::Sid& sid,
                                      const std::string& operation);

/// Generate the full service form (every operation, in SID order).
ServiceForm generate_form(const sidl::Sid& sid);

/// Fig. 7 style text rendering.
std::string render_text(const OperationForm& form);
std::string render_text(const ServiceForm& form);

/// Count widgets in a form tree (benchmark F7 reports generated widgets/s).
std::size_t widget_count(const ServiceForm& form);

}  // namespace cosm::uims
