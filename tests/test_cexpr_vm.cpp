// Differential tests for the constraint/scoring bytecode VM
// (trader/cexpr_vm.h): the compiled programs must reproduce the
// tree-walking evaluators bit for bit, including the forgiving corner
// cases (identifier fallback, missing attributes, kind mismatches, the
// NaN trichotomy quirk), and the trader's VM-backed top-k selection must
// return exactly the offers — in exactly the order — of the reference
// path with the VM disabled.

#include "trader/cexpr_vm.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "trader/cexpr_ir.h"
#include "trader/constraint.h"
#include "trader/preference.h"
#include "trader/trader.h"

namespace cosm::trader {
namespace {

using sidl::TypeDesc;
using wire::Value;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ---- random offer generator (pure AttrMap; no schema) ----

const std::vector<std::string>& attr_pool() {
  static const std::vector<std::string> pool = {
      "a", "b", "c", "d", "e", "Currency", "Flag", "Color"};
  return pool;
}

const std::vector<std::string>& text_pool() {
  static const std::vector<std::string> pool = {
      "USD", "DEM", "red", "green", "true", "false", "", "a", "42"};
  return pool;
}

Value random_value(Rng& rng) {
  switch (rng.below(8)) {
    case 0: {
      static const std::vector<std::int64_t> ints = {
          0, 1, -1, 42, -100, std::numeric_limits<std::int64_t>::min(),
          std::numeric_limits<std::int64_t>::max()};
      return Value::integer(rng.chance(0.5) ? ints[rng.below(ints.size())]
                                            : std::int64_t(rng.below(200)) - 100);
    }
    case 1: {
      static const std::vector<double> reals = {0.0,  -0.0, 1.5,  -2.5, kNan,
                                                kInf, -kInf, 42.0, 1e300};
      return Value::real(rng.chance(0.5) ? reals[rng.below(reals.size())]
                                         : rng.range(-100.0, 100.0));
    }
    case 2:
      return Value::string(text_pool()[rng.below(text_pool().size())]);
    case 3:
      return Value::boolean(rng.chance(0.5));
    case 4:
      return Value::enumerated("Color", rng.chance(0.5) ? "red" : "green");
    case 5:
      // Structured values exist but never compare (Missing-tagged).
      return Value::sequence({Value::integer(1), Value::integer(2)});
    case 6:
      return Value::integer(std::int64_t(rng.below(10)));
    default:
      return Value::real(rng.range(0.0, 10.0));
  }
}

AttrMap random_offer(Rng& rng) {
  AttrMap attrs;
  for (const auto& name : attr_pool()) {
    if (rng.chance(0.6)) attrs.emplace(name, random_value(rng));
  }
  return attrs;
}

// ---- constraint differential: VM == Constraint::eval ----

const std::vector<std::string>& constraint_corpus() {
  static const std::vector<std::string> corpus = {
      "",
      "true",
      "false",
      "!false && true",
      "a < 3",
      "a <= 3",
      "a > 3",
      "a >= 3",
      "a == 3",
      "a != 3",
      "a == 1.5",
      "a < -2.5",
      "a == b",
      "a != b",
      "a < b || b < a",
      "exists a",
      "exists Ghost",
      "!exists Color",
      "Currency == USD",
      "Currency == \"USD\"",
      "Currency != DEM",
      "Flag == true",
      "Flag != false",
      "Color == red",
      "Color in { red, green, blue }",
      "a in { 1, 2, 3 }",
      "a in { 1.5, -2.5, 42 }",
      "Currency in { USD, \"DEM\", 7 }",
      "a < 3 && b > 2",
      "a < 3 || b > 2",
      "!(a == b) || c >= 1.5",
      "(a < 1 || b < 1) && (exists Currency || Flag == true)",
      "a == 9223372036854775807",
      "a == -9223372036854775808",
      "a >= 100000.5",
      "e == 42",       // `e` may be any kind; 42 also a text-pool string
      "d == true",     // `true` resolves to boolean before attr lookup
      "a == Ghost",    // never-declared ident -> foldable text literal
      "Ghost == USD",  // both sides fall back to text literals
  };
  return corpus;
}

TEST(CexprVmDifferential, ConstraintsMatchTreeWalkOnRandomOffers) {
  Rng rng(0xC0FFEE);
  std::unordered_set<std::string> declared(attr_pool().begin(),
                                           attr_pool().end());
  for (const auto& text : constraint_corpus()) {
    Constraint ref = Constraint::parse(text);
    cexpr::ProgramPtr plain =
        cexpr::compile_filter(ref.root(), cexpr::FoldEnv{nullptr});
    cexpr::ProgramPtr folded =
        cexpr::compile_filter(ref.root(), cexpr::FoldEnv{&declared});
    ASSERT_NE(plain, nullptr) << text;
    ASSERT_NE(folded, nullptr) << text;
    cexpr::Scratch scratch;
    for (int i = 0; i < 400; ++i) {
      AttrMap attrs = random_offer(rng);
      const bool expected = ref.eval(attrs);
      cexpr::bind_offer(*plain, attrs, scratch);
      EXPECT_EQ(cexpr::eval_filter(*plain, scratch), expected)
          << text << " (unfolded, offer " << i << ")";
      // Folding is valid because the generator only emits declared names.
      cexpr::bind_offer(*folded, attrs, scratch);
      EXPECT_EQ(cexpr::eval_filter(*folded, scratch), expected)
          << text << " (folded, offer " << i << ")";
    }
  }
}

TEST(CexprVmDifferential, NanTrichotomyQuirk) {
  // The tree-walk three-way compare yields 0 for NaN vs anything, so
  // ==, <= and >= all hold.  The VM must reproduce this exactly.
  AttrMap attrs = {{"a", Value::real(kNan)}};
  for (const char* text : {"a == 1", "a <= 1", "a >= 1", "a == a", "a <= a"}) {
    Constraint ref = Constraint::parse(text);
    ASSERT_TRUE(ref.eval(attrs)) << text;
    auto prog = cexpr::compile_filter(ref.root(), cexpr::FoldEnv{nullptr});
    ASSERT_NE(prog, nullptr);
    cexpr::Scratch s;
    cexpr::bind_offer(*prog, attrs, s);
    EXPECT_TRUE(cexpr::eval_filter(*prog, s)) << text;
  }
  for (const char* text : {"a < 1", "a > 1", "a != 1"}) {
    Constraint ref = Constraint::parse(text);
    ASSERT_FALSE(ref.eval(attrs)) << text;
    auto prog = cexpr::compile_filter(ref.root(), cexpr::FoldEnv{nullptr});
    ASSERT_NE(prog, nullptr);
    cexpr::Scratch s;
    cexpr::bind_offer(*prog, attrs, s);
    EXPECT_FALSE(cexpr::eval_filter(*prog, s)) << text;
  }
}

// ---- score differential: VM == detail::eval_score ----

const std::vector<std::string>& score_corpus() {
  static const std::vector<std::string> corpus = {
      "1",
      "a",
      "-a",
      "a + b",
      "a - b",
      "a * b - c / 2",
      "0.7 * inv(a) + 0.3 * b",
      "inv(a - a)",
      "sqrt(abs(a)) + log(b)",
      "min(a, b) + max(c, 1)",
      "min(a, inv(b)) * max(-c, sqrt(d))",
      "-(a + b) * 2",
      "2 * a + 1 penalty 1.5 unless (Currency == USD)",
      "a penalty 0.5 unless (Flag == true) penalty 2 unless (b < 3)",
      "inv(Ghost)",
      "log(-1) + a",
  };
  return corpus;
}

bool same_score(double x, double y) {
  return (std::isnan(x) && std::isnan(y)) || x == y;
}

TEST(CexprVmDifferential, ScoresMatchTreeWalkOnRandomOffers) {
  Rng rng(0xBEEF);
  for (const auto& text : score_corpus()) {
    detail::ScoreIr ir = detail::parse_score(text);
    cexpr::ProgramPtr prog = cexpr::compile_score(ir);
    ASSERT_NE(prog, nullptr) << text;
    cexpr::Scratch scratch;
    for (int i = 0; i < 400; ++i) {
      AttrMap attrs = random_offer(rng);
      const double expected = detail::eval_score(ir, attrs);
      cexpr::bind_offer(*prog, attrs, scratch);
      const double got = cexpr::eval_score(*prog, scratch);
      EXPECT_TRUE(same_score(expected, got))
          << text << " (offer " << i << "): tree=" << expected
          << " vm=" << got;
      EXPECT_EQ(detail::score_rank_key(expected), detail::score_rank_key(got))
          << text << " (offer " << i << ")";
    }
  }
}

TEST(CexprVm, ScoreParseErrors) {
  for (const char* bad : {"", "+", "foo(", "min(a)", "inv(a, b)", "a +",
                          "penalty", "a penalty x unless (b < 1)",
                          "a penalty 1 unless b < 1", "unknown(a)"}) {
    EXPECT_THROW(detail::parse_score(bad), ParseError) << bad;
  }
}

// ---- score-bound analysis ----

TEST(CexprVm, AffineFormDetection) {
  auto affine = [](const std::string& text) {
    return cexpr::affine_of(detail::parse_score(text));
  };
  cexpr::AffineForm f = affine("2 * a - 3");
  ASSERT_TRUE(f.valid);
  EXPECT_EQ(f.attr, "a");
  EXPECT_DOUBLE_EQ(f.a, 2.0);
  EXPECT_DOUBLE_EQ(f.b, -3.0);

  f = affine("a / 2");
  ASSERT_TRUE(f.valid);
  EXPECT_DOUBLE_EQ(f.a, 0.5);

  f = affine("-(a + 1)");
  ASSERT_TRUE(f.valid);
  EXPECT_DOUBLE_EQ(f.a, -1.0);
  EXPECT_DOUBLE_EQ(f.b, -1.0);

  EXPECT_FALSE(affine("a + a").valid);      // attr referenced twice
  EXPECT_FALSE(affine("a * b").valid);      // two attrs
  EXPECT_FALSE(affine("inv(a)").valid);     // nonlinear function
  EXPECT_FALSE(affine("0 * a").valid);      // zero slope
  EXPECT_FALSE(affine("5").valid);          // no attr
  EXPECT_FALSE(affine("a penalty 1 unless (b < 1)").valid);
}

TEST(CexprVm, ScoreUpperBoundIsConservative) {
  Rng rng(0xABCD);
  for (const auto& text : score_corpus()) {
    detail::ScoreIr ir = detail::parse_score(text);
    // Population: numeric a..e confined to known ranges, plus offers with
    // attributes missing entirely (score NaN -> -inf, never above bound).
    std::vector<AttrMap> offers;
    for (int i = 0; i < 200; ++i) {
      AttrMap attrs;
      for (const char* name : {"a", "b", "c", "d", "e"}) {
        if (rng.chance(0.8)) attrs.emplace(name, Value::real(rng.range(-50.0, 50.0)));
      }
      if (rng.chance(0.5)) attrs.emplace("Currency", Value::string("USD"));
      if (rng.chance(0.5)) attrs.emplace("Flag", Value::boolean(true));
      offers.push_back(std::move(attrs));
    }
    auto range_of = [&](const std::string& name) {
      cexpr::AttrRange r;
      for (const auto& attrs : offers) {
        auto it = attrs.find(name);
        if (it == attrs.end() || it->second.kind() != wire::ValueKind::Float) continue;
        double v = it->second.as_real();
        if (std::isnan(v)) continue;
        if (r.empty) {
          r.lo = r.hi = v;
          r.empty = false;
        } else {
          r.lo = std::min(r.lo, v);
          r.hi = std::max(r.hi, v);
        }
      }
      return r;
    };
    const double bound = cexpr::score_upper_bound(ir, range_of);
    for (const auto& attrs : offers) {
      EXPECT_LE(detail::score_rank_key(detail::eval_score(ir, attrs)), bound)
          << text;
    }
  }
}

// ---- caches ----

TEST(ConstraintCacheVm, CompilesAndInvalidatesOnEpochChange) {
  ConstraintCache cache(8);
  auto declared = std::make_shared<const std::unordered_set<std::string>>(
      std::unordered_set<std::string>{"a", "b"});
  auto c1 = cache.get_compiled("a < 3", 1, declared);
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c1->filter, nullptr);
  EXPECT_EQ(c1->layout_epoch, 1u);
  EXPECT_EQ(cache.misses(), 1u);

  auto c2 = cache.get_compiled("a < 3", 1, declared);
  EXPECT_EQ(c1, c2);  // same epoch: shared entry
  EXPECT_EQ(cache.hits(), 1u);

  auto c3 = cache.get_compiled("a < 3", 2, declared);
  EXPECT_NE(c1, c3);  // epoch moved: recompiled in place
  EXPECT_EQ(c3->layout_epoch, 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_GT(cache.compile_ns(), 0u);
}

TEST(PreferenceCacheVm, CachesCompiledScorePrograms) {
  PreferenceCache cache(2);
  auto p1 = cache.get("score: 2 * a");
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p1->preference.kind(), PreferenceKind::Score);
  EXPECT_NE(p1->score_prog, nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  auto p2 = cache.get("score: 2 * a");
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(cache.hits(), 1u);

  auto first = cache.get("first");
  EXPECT_EQ(first->preference.kind(), PreferenceKind::First);
  EXPECT_EQ(first->score_prog, nullptr);  // nothing to compile

  cache.get("min a");  // capacity 2: evicts the LRU entry
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_THROW(cache.get("score: +"), ParseError);
}

// ---- end-to-end: trader VM path == reference path ----

ServiceType wide_type() {
  ServiceType t;
  t.name = "Svc";
  t.attributes = {{"ChargePerDay", TypeDesc::float_(), true},
                  {"Rating", TypeDesc::float_(), false},
                  {"Seats", TypeDesc::int_(), false},
                  {"Currency", TypeDesc::string_(), false},
                  {"Insured", TypeDesc::bool_(), false}};
  return t;
}

sidl::ServiceRef svc_ref(const std::string& id) {
  return {id, "inproc://host", "Svc"};
}

AttrMap random_typed_offer(Rng& rng) {
  AttrMap attrs;
  static const std::vector<double> charges = {kNan, kInf, -kInf, 0.0};
  attrs.emplace("ChargePerDay",
                Value::real(rng.chance(0.1) ? charges[rng.below(charges.size())]
                                            : rng.range(1.0, 500.0)));
  if (rng.chance(0.7)) attrs.emplace("Rating", Value::real(rng.range(0.0, 5.0)));
  if (rng.chance(0.7)) attrs.emplace("Seats", Value::integer(std::int64_t(rng.below(8))));
  if (rng.chance(0.8)) {
    attrs.emplace("Currency", Value::string(rng.chance(0.5) ? "USD" : "DEM"));
  }
  if (rng.chance(0.6)) attrs.emplace("Insured", Value::boolean(rng.chance(0.5)));
  return attrs;
}

std::vector<std::string> ids_of(const std::vector<Offer>& offers) {
  std::vector<std::string> ids;
  ids.reserve(offers.size());
  for (const auto& o : offers) ids.push_back(o.id);
  return ids;
}

class TopKSelectionTest : public ::testing::Test {
 protected:
  TopKSelectionTest() {
    trader.types().add(wide_type());
    Rng rng(0x5EED);
    for (int i = 0; i < 250; ++i) {
      trader.export_offer("Svc", svc_ref("s" + std::to_string(i)),
                          random_typed_offer(rng));
    }
  }

  std::vector<std::string> run(const std::string& constraint,
                               const std::string& preference, std::size_t k,
                               bool vm) {
    TraderTuning tuning;
    tuning.enable_selection_vm = vm;
    trader.set_tuning(tuning);
    ImportRequest request;
    request.service_type = "Svc";
    request.constraint = constraint;
    request.preference = preference;
    request.max_matches = k;
    return ids_of(trader.import(request));
  }

  Trader trader{"t"};
};

TEST_F(TopKSelectionTest, VmPathMatchesReferencePath) {
  const std::vector<std::string> constraints = {
      "",
      "Currency == USD",
      "ChargePerDay < 200",
      "Currency == USD && ChargePerDay < 300 && Insured == true",
      "Seats >= 4 || Rating > 3",
  };
  const std::vector<std::string> preferences = {
      "score: -ChargePerDay",          // affine: ord-directed walk
      "score: ChargePerDay",           // affine, other direction
      "score: inv(ChargePerDay)",      // nonlinear: interval pruning only
      "score: 0.6 * Rating - 0.4 * ChargePerDay / 100",
      "score: Rating penalty 1 unless (Insured == true)",
      "score: min(Rating, Seats) + max(0, 5 - ChargePerDay / 100)",
  };
  for (const auto& constraint : constraints) {
    for (const auto& preference : preferences) {
      for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                            std::size_t{500}}) {
        auto vm_ids = run(constraint, preference, k, true);
        auto ref_ids = run(constraint, preference, k, false);
        EXPECT_EQ(vm_ids, ref_ids)
            << "constraint='" << constraint << "' pref='" << preference
            << "' k=" << k;
      }
    }
  }
}

TEST_F(TopKSelectionTest, ScoredResultsAreOrderedByScoreThenId) {
  auto offers = trader.import([] {
    ImportRequest r;
    r.service_type = "Svc";
    r.preference = "score: -ChargePerDay";
    return r;
  }());
  ASSERT_EQ(offers.size(), 250u);
  detail::ScoreIr ir = detail::parse_score("-ChargePerDay");
  for (std::size_t i = 1; i < offers.size(); ++i) {
    double prev = detail::score_rank_key(
        detail::eval_score(ir, offers[i - 1].attributes));
    double cur =
        detail::score_rank_key(detail::eval_score(ir, offers[i].attributes));
    ASSERT_GE(prev, cur) << "offer " << i;
    if (prev == cur) ASSERT_LT(offers[i - 1].id, offers[i].id);
  }
}

TEST_F(TopKSelectionTest, LegacyPreferencesUnaffectedByVmToggle) {
  // "random" is excluded: the trader's rank RNG advances per import, so two
  // consecutive imports shuffle differently regardless of the VM toggle.
  for (const char* pref : {"", "first", "min ChargePerDay", "max Rating"}) {
    auto vm_ids = run("ChargePerDay < 300", pref, 10, true);
    auto ref_ids = run("ChargePerDay < 300", pref, 10, false);
    EXPECT_EQ(vm_ids, ref_ids) << pref;
  }
}

TEST_F(TopKSelectionTest, TopKPrunesAndCountsScoring) {
  trader.reset_stats();
  auto ids = run("", "score: -ChargePerDay", 3, true);
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_GT(trader.offers_scored(), 0u);
  // The affine walk over the merged base stops early once the heap holds k
  // strictly-better keys; everything skipped without scoring is a prune.
  EXPECT_GT(trader.heap_prunes(), 0u);
  EXPECT_LT(trader.offers_scored(), 250u);
}

TEST_F(TopKSelectionTest, ScoredPathWorksWithIndexesDisabled) {
  TraderTuning tuning;
  tuning.enable_indexes = false;
  tuning.enable_selection_vm = true;
  trader.set_tuning(tuning);
  ImportRequest request;
  request.service_type = "Svc";
  request.preference = "score: -ChargePerDay";
  request.max_matches = 5;
  auto no_index = ids_of(trader.import(request));

  tuning.enable_indexes = true;
  trader.set_tuning(tuning);
  auto with_index = ids_of(trader.import(request));
  EXPECT_EQ(no_index, with_index);
}

// The filtered ord-walk runs under a visit budget.  With matches packed at
// the *unfavourable* end of the score column the walk exhausts its budget
// without filling the heap and must hand the rest to the narrowed index
// scan — results have to match the reference path exactly, including the
// prefix the walk already considered.
TEST(TopKWalkBudgetTest, BudgetExhaustionFallsBackToIndexScan) {
  Trader trader("t");
  trader.types().add(wide_type());
  for (int i = 0; i < 1600; ++i) {
    AttrMap attrs;
    attrs.emplace("ChargePerDay", Value::real(1.0 + i));
    char id[16];
    std::snprintf(id, sizeof id, "e%04d", i);
    trader.export_offer("Svc", svc_ref(id), attrs);
  }
  ImportRequest request;
  request.service_type = "Svc";
  // score: -ChargePerDay walks from the cheap end; every match sits in the
  // expensive tail, past the 512-visit budget floor.
  request.constraint = "ChargePerDay >= 1500";
  request.preference = "score: -ChargePerDay";
  request.max_matches = 5;

  TraderTuning tuning;
  tuning.enable_selection_vm = true;
  trader.set_tuning(tuning);
  auto vm_ids = ids_of(trader.import(request));
  tuning.enable_selection_vm = false;
  trader.set_tuning(tuning);
  auto ref_ids = ids_of(trader.import(request));
  EXPECT_EQ(vm_ids, ref_ids);
  ASSERT_EQ(vm_ids.size(), 5u);
  // Exports are numbered from 1, so i=1499 (ChargePerDay 1500, the least
  // charge that passes) is offer-1500.
  EXPECT_EQ(vm_ids.front(), "t/offer-1500");
}

// When matches are dense near the favourable end the filtered walk stops
// within the budget and skips the rest of the bucket without scoring it.
TEST(TopKWalkBudgetTest, FilteredWalkStopsEarlyAndPrunes) {
  Trader trader("t");
  trader.types().add(wide_type());
  for (int i = 0; i < 1600; ++i) {
    AttrMap attrs;
    attrs.emplace("ChargePerDay", Value::real(1.0 + i));
    attrs.emplace("Currency", Value::string(i % 2 == 0 ? "USD" : "DEM"));
    char id[16];
    std::snprintf(id, sizeof id, "e%04d", i);
    trader.export_offer("Svc", svc_ref(id), attrs);
  }
  TraderTuning tuning;
  tuning.enable_selection_vm = true;
  trader.set_tuning(tuning);
  trader.reset_stats();
  ImportRequest request;
  request.service_type = "Svc";
  request.constraint = "Currency == USD && ChargePerDay < 1000";
  request.preference = "score: -ChargePerDay";
  request.max_matches = 5;
  auto vm_ids = ids_of(trader.import(request));
  ASSERT_EQ(vm_ids.size(), 5u);
  EXPECT_EQ(vm_ids.front(), "t/offer-1");  // i=0: cheapest USD offer
  EXPECT_GT(trader.heap_prunes(), 0u);
  EXPECT_LT(trader.offers_scored(), 100u);

  tuning.enable_selection_vm = false;
  trader.set_tuning(tuning);
  auto ref_ids = ids_of(trader.import(request));
  EXPECT_EQ(vm_ids, ref_ids);
}

// ---- dynamic properties through the scored path ----

TEST(TopKDynamicTest, DynamicAttributesScoreIdentically) {
  Trader trader("t");
  ServiceType t = wide_type();
  t.attributes.push_back({"Load", TypeDesc::int_(), false});
  trader.types().add(t);
  trader.set_dynamic_fetcher(
      [](const sidl::ServiceRef& ref, const std::string&) {
        // Deterministic per-exporter value so both paths see the same data.
        return Value::integer(static_cast<std::int64_t>(ref.id.size() % 7));
      });
  Rng rng(0xD1CE);
  for (int i = 0; i < 40; ++i) {
    std::string id(static_cast<std::size_t>(rng.below(12)) + 1, 'x');
    id += std::to_string(i);
    if (i % 3 == 0) {
      trader.export_offer("Svc", svc_ref(id), random_typed_offer(rng),
                          {{"Load", "CurrentLoad"}});
    } else {
      trader.export_offer("Svc", svc_ref(id), random_typed_offer(rng));
    }
  }
  ImportRequest request;
  request.service_type = "Svc";
  request.constraint = "ChargePerDay < 400";
  request.preference = "score: -Load * 10 - ChargePerDay";
  request.max_matches = 8;

  TraderTuning tuning;
  tuning.enable_selection_vm = true;
  trader.set_tuning(tuning);
  auto vm_ids = ids_of(trader.import(request));
  tuning.enable_selection_vm = false;
  trader.set_tuning(tuning);
  auto ref_ids = ids_of(trader.import(request));
  EXPECT_EQ(vm_ids, ref_ids);
}

// ---- federation: scored merge across linked traders ----

TEST(TopKFederationTest, FederatedScoredMergeMatchesReference) {
  Trader remote("remote");
  Trader local("local");
  remote.types().add(wide_type());
  local.types().add(wide_type());
  Rng rng(0xFEDE);
  for (int i = 0; i < 60; ++i) {
    remote.export_offer("Svc", svc_ref("r" + std::to_string(i)),
                        random_typed_offer(rng));
    local.export_offer("Svc", svc_ref("l" + std::to_string(i)),
                       random_typed_offer(rng));
  }
  local.link("up", std::make_shared<LocalTraderGateway>(remote));

  auto run = [&](bool vm) {
    TraderTuning tuning;
    tuning.enable_selection_vm = vm;
    local.set_tuning(tuning);
    remote.set_tuning(tuning);
    ImportRequest request;
    request.service_type = "Svc";
    request.constraint = "Currency == USD";
    request.preference = "score: Rating - ChargePerDay / 100";
    request.max_matches = 10;
    request.hop_limit = 1;
    return local.import(request);
  };
  auto vm_offers = run(true);
  auto ref_offers = run(false);
  EXPECT_EQ(ids_of(vm_offers), ids_of(ref_offers));

  // Merged results honour the global (score desc, id asc) contract so
  // every trader in a federation agrees on the order.
  detail::ScoreIr ir = detail::parse_score("Rating - ChargePerDay / 100");
  for (std::size_t i = 1; i < vm_offers.size(); ++i) {
    double prev = detail::score_rank_key(
        detail::eval_score(ir, vm_offers[i - 1].attributes));
    double cur = detail::score_rank_key(
        detail::eval_score(ir, vm_offers[i].attributes));
    ASSERT_GE(prev, cur);
    if (prev == cur) ASSERT_LT(vm_offers[i - 1].id, vm_offers[i].id);
  }
}

// ---- concurrency: compile/invalidate under churn (TSan target) ----

TEST(CexprVmStressTest, ConcurrentScoredImportsUnderTypeChurn) {
  Trader trader("t");
  trader.types().add(wide_type());
  {
    Rng rng(0x7157);
    for (int i = 0; i < 64; ++i) {
      trader.export_offer("Svc", svc_ref("s" + std::to_string(i)),
                          random_typed_offer(rng));
    }
  }
  std::atomic<bool> stop{false};
  // Writer: churns an unrelated type, bumping the layout epoch so readers
  // keep recompiling folded filter programs mid-flight.
  std::thread churn([&] {
    for (int i = 0; i < 60 && !stop.load(); ++i) {
      ServiceType extra;
      extra.name = "Churn" + std::to_string(i % 4);
      extra.attributes = {{"Extra" + std::to_string(i % 8),
                           TypeDesc::float_(), false}};
      trader.types().add(extra);
      trader.types().remove(extra.name);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      for (int i = 0; i < 40; ++i) {
        ImportRequest request;
        request.service_type = "Svc";
        request.constraint =
            (i + r) % 2 == 0 ? "ChargePerDay < 300" : "Currency == USD";
        request.preference = "score: -ChargePerDay penalty 1 unless "
                             "(Insured == true)";
        request.max_matches = 5;
        auto offers = trader.import(request);
        EXPECT_LE(offers.size(), 5u);
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true);
  churn.join();
  EXPECT_GT(trader.offers_scored(), 0u);
}

}  // namespace
}  // namespace cosm::trader
