#include "core/config.h"

#include "common/error.h"

namespace cosm::core {

CosmConfig CosmConfig::validated(std::size_t* adjusted_out) const {
  // Hard errors first: these are contradictions, not preferences, and the
  // old behaviour of silently "fixing" them hid real deployment bugs.
  if (trader_tuning.store_shards == 0 || trader_tuning.store_shards > 64) {
    throw ContractError(
        "CosmConfig: store_shards must be in [1, 64], got " +
        std::to_string(trader_tuning.store_shards));
  }
  if (trader_tuning.enable_selection_vm &&
      trader_tuning.constraint_cache_capacity == 0) {
    throw ContractError(
        "CosmConfig: the selection VM needs a non-zero "
        "constraint_cache_capacity (compiled constraint/preference "
        "programs live in that cache); disable enable_selection_vm or "
        "give the cache capacity");
  }
  if (durable && storage.directory.empty()) {
    throw ContractError(
        "CosmConfig: durability is enabled but storage.directory is empty");
  }
  if (server.at_most_once && server.replay_cache_capacity == 0) {
    throw ContractError(
        "CosmConfig: at_most_once needs a non-zero replay_cache_capacity");
  }

  // Benign clamps: applied to the copy and counted, never silent.
  CosmConfig out = *this;
  std::size_t adjusted = 0;
  if (out.replication.max_batch == 0) {
    out.replication.max_batch = 1;
    ++adjusted;
  }
  if (out.replication.max_pending == 0) {
    out.replication.max_pending = 1;
    ++adjusted;
  }
  if (out.observability.tracing && out.observability.trace_capacity == 0) {
    out.observability.trace_capacity = 4096;
    ++adjusted;
  }
  if (out.durable && out.storage.segment_bytes == 0) {
    out.storage.segment_bytes = 64ull << 20;
    ++adjusted;
  }
  if (adjusted_out != nullptr) *adjusted_out = adjusted;
  return out;
}

}  // namespace cosm::core
