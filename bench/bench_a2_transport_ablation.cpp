// Ablation A2: in-process loopback bus vs real TCP sockets.
//
// The same F1 cycle — SID transfer, dynamic invoke, trader import over a
// remote gateway — on both transports.  Expected shape: identical results,
// with TCP paying syscall + loopback latency per round trip; the COSM
// mechanisms themselves are transport-agnostic.

#include <benchmark/benchmark.h>

#include "core/generic_client.h"
#include "rpc/inproc.h"
#include "rpc/server.h"
#include "rpc/tcp.h"
#include "services/car_rental.h"
#include "sidl/parser.h"
#include "trader/facade.h"
#include "trader/sid_export.h"
#include "uims/editor.h"

namespace {

using namespace cosm;
using wire::Value;

struct Deployment {
  explicit Deployment(rpc::Network& net)
      : server(net, "host"), client(net), trader("trader") {
    services::CarRentalConfig config;
    config.tradable = true;
    rental_ref = server.add(services::make_car_rental_service(config));
    trader.types().add(services::canonical_car_rental_type());
    auto sid = std::make_shared<sidl::Sid>(
        sidl::parse_sid(services::car_rental_sidl(config)));
    trader::export_sid_offer(trader, *sid, rental_ref);
    trader_ref = server.add(trader::make_trader_service(trader));
  }

  rpc::RpcServer server;
  core::GenericClient client;
  trader::Trader trader;
  sidl::ServiceRef rental_ref;
  sidl::ServiceRef trader_ref;
};

void run_bind(benchmark::State& state, rpc::Network& net) {
  Deployment d(net);
  for (auto _ : state) {
    core::Binding b = d.client.bind(d.rental_ref);
    benchmark::DoNotOptimize(b.sid());
  }
}

void run_invoke(benchmark::State& state, rpc::Network& net) {
  Deployment d(net);
  core::Binding rental = d.client.bind(d.rental_ref);
  for (auto _ : state) {
    Value models = rental.invoke("ListModels", {});
    benchmark::DoNotOptimize(models);
  }
}

void run_remote_import(benchmark::State& state, rpc::Network& net) {
  Deployment d(net);
  trader::RemoteTraderGateway gateway(net, d.trader_ref);
  trader::ImportRequest request;
  request.service_type = services::car_rental_service_type_name();
  for (auto _ : state) {
    auto offers = gateway.import(request);
    benchmark::DoNotOptimize(offers);
  }
}

void BM_Bind_InProc(benchmark::State& state) {
  rpc::InProcNetwork net;
  run_bind(state, net);
}
BENCHMARK(BM_Bind_InProc);

void BM_Bind_Tcp(benchmark::State& state) {
  rpc::TcpNetwork net;
  run_bind(state, net);
}
BENCHMARK(BM_Bind_Tcp);

void BM_Invoke_InProc(benchmark::State& state) {
  rpc::InProcNetwork net;
  run_invoke(state, net);
}
BENCHMARK(BM_Invoke_InProc);

void BM_Invoke_Tcp(benchmark::State& state) {
  rpc::TcpNetwork net;
  run_invoke(state, net);
}
BENCHMARK(BM_Invoke_Tcp);

void BM_RemoteImport_InProc(benchmark::State& state) {
  rpc::InProcNetwork net;
  run_remote_import(state, net);
}
BENCHMARK(BM_RemoteImport_InProc);

void BM_RemoteImport_Tcp(benchmark::State& state) {
  rpc::TcpNetwork net;
  run_remote_import(state, net);
}
BENCHMARK(BM_RemoteImport_Tcp);

}  // namespace

BENCHMARK_MAIN();
