#include "naming/interface_repository.h"

#include "common/error.h"
#include "sidl/validate.h"

namespace cosm::naming {

void InterfaceRepository::put(const std::string& service_id, sidl::SidPtr sid) {
  if (service_id.empty()) throw ContractError("service id must not be empty");
  if (!sid) throw ContractError("cannot store a null SID");
  sidl::ensure_valid(*sid);
  std::lock_guard lock(mutex_);
  versions_[service_id].push_back(std::move(sid));
}

sidl::SidPtr InterfaceRepository::get(const std::string& service_id) const {
  std::lock_guard lock(mutex_);
  auto it = versions_.find(service_id);
  if (it == versions_.end() || it->second.empty()) {
    throw NotFound("no SID stored for service '" + service_id + "'");
  }
  return it->second.back();
}

bool InterfaceRepository::has(const std::string& service_id) const {
  std::lock_guard lock(mutex_);
  return versions_.count(service_id) > 0;
}

std::vector<sidl::SidPtr> InterfaceRepository::history(
    const std::string& service_id) const {
  std::lock_guard lock(mutex_);
  auto it = versions_.find(service_id);
  return it == versions_.end() ? std::vector<sidl::SidPtr>{} : it->second;
}

void InterfaceRepository::remove(const std::string& service_id) {
  std::lock_guard lock(mutex_);
  if (versions_.erase(service_id) == 0) {
    throw NotFound("no SID stored for service '" + service_id + "'");
  }
}

std::vector<std::string> InterfaceRepository::ids() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(versions_.size());
  for (const auto& [id, sids] : versions_) out.push_back(id);
  return out;
}

std::vector<std::string> InterfaceRepository::conforming_to(
    const sidl::Sid& base) const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [id, sids] : versions_) {
    if (!sids.empty() && sidl::conforms_to(*sids.back(), base)) {
      out.push_back(id);
    }
  }
  return out;
}

std::size_t InterfaceRepository::size() const {
  std::lock_guard lock(mutex_);
  return versions_.size();
}

}  // namespace cosm::naming
