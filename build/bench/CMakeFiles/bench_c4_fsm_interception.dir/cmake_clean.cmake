file(REMOVE_RECURSE
  "CMakeFiles/bench_c4_fsm_interception.dir/bench_c4_fsm_interception.cpp.o"
  "CMakeFiles/bench_c4_fsm_interception.dir/bench_c4_fsm_interception.cpp.o.d"
  "bench_c4_fsm_interception"
  "bench_c4_fsm_interception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c4_fsm_interception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
