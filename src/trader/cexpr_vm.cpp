#include "trader/cexpr_vm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace cosm::trader::cexpr {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

using detail::CmpOp;
using detail::Node;
using detail::NodeKind;
using detail::Operand;
using detail::PenaltyClause;
using detail::ScoreIr;
using detail::ScoreNode;

/// Three-way compare + predicate, replicating constraint.cpp's compare()
/// exactly — including the quirk that a NaN number yields cmp == 0 (both
/// `<` tests fail), so NaN == x, NaN <= x and NaN >= x all hold.
bool compare_rt(CmpOp op, const RtVal& a, const RtVal& b) {
  if (a.tag == RtVal::Tag::Missing || b.tag == RtVal::Tag::Missing) return false;
  if (a.tag != b.tag) return false;
  int cmp = 0;
  switch (a.tag) {
    case RtVal::Tag::Number:
      cmp = a.number < b.number ? -1 : (a.number > b.number ? 1 : 0);
      break;
    case RtVal::Tag::Text:
      cmp = a.text.compare(b.text) < 0 ? -1 : (a.text == b.text ? 0 : 1);
      break;
    case RtVal::Tag::Boolean:
      cmp = static_cast<int>(a.boolean) - static_cast<int>(b.boolean);
      break;
    default:
      return false;
  }
  switch (op) {
    case CmpOp::Eq: return cmp == 0;
    case CmpOp::Ne: return cmp != 0;
    case CmpOp::Lt: return cmp < 0;
    case CmpOp::Le: return cmp <= 0;
    case CmpOp::Gt: return cmp > 0;
    case CmpOp::Ge: return cmp >= 0;
  }
  return false;
}

/// Shared compiler state for filter and score programs (a score program
/// embeds boolean code for its penalty constraints).  Sets `ok = false`
/// instead of emitting when an encoding limit is hit; the entry points then
/// return nullptr and callers tree-walk.
class Compiler {
 public:
  Compiler(Program& p, const FoldEnv& env) : p_(p), env_(env) {}

  bool ok() const { return ok_; }

  void compile_bool(const Node& n) {
    switch (n.kind) {
      case NodeKind::True:
        emit({Op::ConstBool, 1});
        return;
      case NodeKind::False:
        emit({Op::ConstBool, 0});
        return;
      case NodeKind::And: {
        compile_bool(*n.lhs);
        std::size_t jmp = emit({Op::JumpIfFalse});
        compile_bool(*n.rhs);
        patch(jmp);
        return;
      }
      case NodeKind::Or: {
        compile_bool(*n.lhs);
        std::size_t jmp = emit({Op::JumpIfTrue});
        compile_bool(*n.rhs);
        patch(jmp);
        return;
      }
      case NodeKind::Not:
        compile_bool(*n.lhs);
        emit({Op::Not});
        return;
      case NodeKind::Exists:
        // An attribute no type has ever declared cannot exist on a stored
        // offer (the type manager rejects it at export).
        if (folds_away(n.attr)) {
          emit({Op::ConstBool, 0});
          return;
        }
        emit({Op::Exists, slot_for(n.attr)});
        return;
      case NodeKind::Cmp: {
        std::uint8_t ra = operand_ref(n.a);
        std::uint8_t rb = operand_ref(n.b);
        emit({Op::Cmp, static_cast<std::uint8_t>(n.op), ra, rb});
        return;
      }
      case NodeKind::In: {
        std::uint8_t subject = operand_ref(n.a);
        if (n.set.size() > 255 ||
            p_.opnd_pool.size() + n.set.size() > kMaxPool) {
          ok_ = false;
          return;
        }
        std::uint16_t base = static_cast<std::uint16_t>(p_.opnd_pool.size());
        for (const Operand& member : n.set) {
          p_.opnd_pool.push_back(operand_ref(member));
        }
        Instr ins{Op::In, subject, static_cast<std::uint8_t>(n.set.size())};
        ins.d = base;
        emit(ins);
        return;
      }
    }
    ok_ = false;
  }

  void compile_score(const ScoreNode& n, std::size_t dst) {
    if (dst >= kMaxRegs) {
      ok_ = false;
      return;
    }
    if (dst > max_reg_) max_reg_ = dst;
    auto reg = [](std::size_t r) { return static_cast<std::uint8_t>(r); };
    switch (n.kind) {
      case ScoreNode::Kind::Const: {
        Instr ins{Op::LoadConst, reg(dst)};
        ins.d = dconst(n.value);
        emit(ins);
        return;
      }
      case ScoreNode::Kind::Attr:
        // Never folded: score programs also rank offers from remote
        // traders whose types this process may not know.
        emit({Op::LoadAttr, reg(dst), slot_for(n.attr)});
        return;
      case ScoreNode::Kind::Neg:
      case ScoreNode::Kind::Inv:
      case ScoreNode::Kind::Abs:
      case ScoreNode::Kind::Sqrt:
      case ScoreNode::Kind::Log: {
        compile_score(*n.lhs, dst);
        Op op = n.kind == ScoreNode::Kind::Neg   ? Op::Neg
                : n.kind == ScoreNode::Kind::Inv ? Op::Inv
                : n.kind == ScoreNode::Kind::Abs ? Op::Abs
                : n.kind == ScoreNode::Kind::Sqrt ? Op::Sqrt
                                                  : Op::Log;
        emit({op, reg(dst), reg(dst)});
        return;
      }
      case ScoreNode::Kind::Add:
      case ScoreNode::Kind::Sub:
      case ScoreNode::Kind::Mul:
      case ScoreNode::Kind::Div:
      case ScoreNode::Kind::Min:
      case ScoreNode::Kind::Max: {
        compile_score(*n.lhs, dst);
        compile_score(*n.rhs, dst + 1);
        Op op = n.kind == ScoreNode::Kind::Add   ? Op::Add
                : n.kind == ScoreNode::Kind::Sub ? Op::Sub
                : n.kind == ScoreNode::Kind::Mul ? Op::Mul
                : n.kind == ScoreNode::Kind::Div ? Op::Div
                : n.kind == ScoreNode::Kind::Min ? Op::Min
                                                 : Op::Max;
        emit({op, reg(dst), reg(dst), reg(dst + 1)});
        return;
      }
    }
    ok_ = false;
  }

  void compile_penalty(const PenaltyClause& clause) {
    compile_bool(*clause.unless);
    Instr ins{Op::PenaltySub, 0};
    ins.d = dconst(clause.weight);
    emit(ins);
  }

  void finish_score() {
    p_.num_regs = static_cast<std::uint16_t>(max_reg_ + 1);
  }

 private:
  std::size_t emit(Instr ins) {
    if (p_.code.size() >= kMaxCode) {
      ok_ = false;
      return 0;
    }
    p_.code.push_back(ins);
    return p_.code.size() - 1;
  }

  void patch(std::size_t jmp) {
    if (!ok_) return;
    p_.code[jmp].d = static_cast<std::uint16_t>(p_.code.size());
  }

  bool folds_away(const std::string& name) const {
    return env_.declared != nullptr && env_.declared->count(name) == 0;
  }

  std::uint8_t slot_for(const std::string& name) {
    auto it = slot_of_.find(name);
    if (it != slot_of_.end()) return it->second;
    if (p_.attrs.size() >= kMaxSlots) {
      ok_ = false;
      return 0;
    }
    std::uint8_t slot = static_cast<std::uint8_t>(p_.attrs.size());
    p_.attrs.push_back(name);
    slot_of_.emplace(name, slot);
    return slot;
  }

  std::uint8_t const_ref(RtVal v, std::uint32_t text_idx) {
    if (p_.consts.size() >= kMaxConsts) {
      ok_ = false;
      return 0;
    }
    std::uint8_t idx = static_cast<std::uint8_t>(p_.consts.size());
    p_.consts.push_back(v);
    p_.const_text_idx.push_back(text_idx);
    return idx;
  }

  std::uint8_t const_number(double v) {
    RtVal r;
    r.tag = RtVal::Tag::Number;
    r.number = v;
    return const_ref(r, 0);
  }

  std::uint8_t const_text(const std::string& text) {
    p_.text_pool.push_back(text);
    RtVal r;
    r.tag = RtVal::Tag::Text;
    return const_ref(r, static_cast<std::uint32_t>(p_.text_pool.size() - 1));
  }

  std::uint8_t const_boolean(bool v) {
    RtVal r;
    r.tag = RtVal::Tag::Boolean;
    r.boolean = v;
    return const_ref(r, 0);
  }

  /// Pre-resolve an operand: literals (and foldable identifiers) go to the
  /// constant pool, the rest become attribute slots (high bit set).
  std::uint8_t operand_ref(const Operand& o) {
    switch (o.kind) {
      case Operand::Kind::Int:
        return const_number(static_cast<double>(o.i));
      case Operand::Kind::Float:
        return const_number(o.f);
      case Operand::Kind::String:
        return const_text(o.text);
      case Operand::Kind::Ident:
        // Same precedence as resolve_operand: true/false are booleans
        // before any attribute lookup.
        if (o.text == "true" || o.text == "false") {
          return const_boolean(o.text == "true");
        }
        if (folds_away(o.text)) return const_text(o.text);
        return static_cast<std::uint8_t>(kSlotBit | slot_for(o.text));
    }
    ok_ = false;
    return 0;
  }

  std::uint16_t dconst(double v) {
    if (p_.dconsts.size() >= kMaxPool) {
      ok_ = false;
      return 0;
    }
    p_.dconsts.push_back(v);
    return static_cast<std::uint16_t>(p_.dconsts.size() - 1);
  }

  Program& p_;
  const FoldEnv& env_;
  bool ok_ = true;
  std::size_t max_reg_ = 0;
  std::unordered_map<std::string, std::uint8_t> slot_of_;
};

}  // namespace

void Program::finalize() {
  for (std::size_t i = 0; i < consts.size(); ++i) {
    if (consts[i].tag == RtVal::Tag::Text) {
      consts[i].text = text_pool[const_text_idx[i]];
    }
  }
}

ProgramPtr compile_filter(const detail::Node* root, const FoldEnv& env) {
  auto p = std::make_shared<Program>();
  Compiler c(*p, env);
  if (root == nullptr) {
    Instr ins{Op::ConstBool, 1};
    p->code.push_back(ins);
  } else {
    c.compile_bool(*root);
  }
  if (!c.ok()) return nullptr;
  p->finalize();
  return p;
}

ProgramPtr compile_score(const detail::ScoreIr& ir) {
  if (!ir.expr) return nullptr;
  auto p = std::make_shared<Program>();
  FoldEnv no_fold;
  Compiler c(*p, no_fold);
  c.compile_score(*ir.expr, 0);
  for (const PenaltyClause& clause : ir.penalties) c.compile_penalty(clause);
  c.finish_score();
  if (!c.ok()) return nullptr;
  p->finalize();
  return p;
}

void bind_offer(const Program& p, const AttrMap& attrs, Scratch& s) {
  s.bind.resize(p.attrs.size());
  for (std::size_t i = 0; i < p.attrs.size(); ++i) {
    RtVal& v = s.bind[i];
    auto it = attrs.find(p.attrs[i]);
    if (it == attrs.end()) {
      // Identifier fallback: the name denotes itself as a text literal.
      v.tag = RtVal::Tag::Text;
      v.present = false;
      v.text = p.attrs[i];
      continue;
    }
    v.present = true;
    using wire::ValueKind;
    switch (it->second.kind()) {
      case ValueKind::Int:
        v.tag = RtVal::Tag::Number;
        v.number = static_cast<double>(it->second.as_int());
        break;
      case ValueKind::Float:
        v.tag = RtVal::Tag::Number;
        v.number = it->second.as_real();
        break;
      case ValueKind::String:
        v.tag = RtVal::Tag::Text;
        v.text = it->second.as_string();
        break;
      case ValueKind::Enum:
        v.tag = RtVal::Tag::Text;
        v.text = it->second.enum_label();
        break;
      case ValueKind::Bool:
        v.tag = RtVal::Tag::Boolean;
        v.boolean = it->second.as_bool();
        break;
      default:
        v.tag = RtVal::Tag::Missing;  // structured: exists, compares false
        break;
    }
  }
}

namespace {

inline const RtVal& deref(const Program& p, const Scratch& s, std::uint8_t r) {
  return (r & kSlotBit) ? s.bind[r & static_cast<std::uint8_t>(~kSlotBit)]
                        : p.consts[r];
}

/// One pass over the instruction stream; boolean and score state both live
/// here because score programs interleave penalty-constraint boolean code.
double run(const Program& p, Scratch* s_mut, const Scratch& s) {
  bool acc = false;
  const Instr* code = p.code.data();
  const std::size_t n = p.code.size();
  double* regs = s_mut ? s_mut->regs.data() : nullptr;
  std::size_t pc = 0;
  while (pc < n) {
    const Instr& ins = code[pc++];
    switch (ins.op) {
      case Op::ConstBool:
        acc = ins.a != 0;
        break;
      case Op::Exists:
        acc = s.bind[ins.a].present;
        break;
      case Op::Cmp:
        acc = compare_rt(static_cast<CmpOp>(ins.a), deref(p, s, ins.b),
                         deref(p, s, ins.c));
        break;
      case Op::In: {
        const RtVal& subject = deref(p, s, ins.a);
        acc = false;
        for (std::size_t j = 0; j < ins.b; ++j) {
          if (compare_rt(CmpOp::Eq, subject,
                         deref(p, s, p.opnd_pool[ins.d + j]))) {
            acc = true;
            break;
          }
        }
        break;
      }
      case Op::Not:
        acc = !acc;
        break;
      case Op::JumpIfFalse:
        if (!acc) pc = ins.d;
        break;
      case Op::JumpIfTrue:
        if (acc) pc = ins.d;
        break;
      case Op::LoadConst:
        regs[ins.a] = p.dconsts[ins.d];
        break;
      case Op::LoadAttr: {
        const RtVal& v = s.bind[ins.b];
        regs[ins.a] = v.tag == RtVal::Tag::Number ? v.number : kNaN;
        break;
      }
      case Op::Neg:
        regs[ins.a] = -regs[ins.b];
        break;
      case Op::Inv:
        regs[ins.a] = 1.0 / regs[ins.b];
        break;
      case Op::Abs:
        regs[ins.a] = std::fabs(regs[ins.b]);
        break;
      case Op::Sqrt:
        regs[ins.a] = std::sqrt(regs[ins.b]);
        break;
      case Op::Log:
        regs[ins.a] = std::log(regs[ins.b]);
        break;
      case Op::Add:
        regs[ins.a] = regs[ins.b] + regs[ins.c];
        break;
      case Op::Sub:
        regs[ins.a] = regs[ins.b] - regs[ins.c];
        break;
      case Op::Mul:
        regs[ins.a] = regs[ins.b] * regs[ins.c];
        break;
      case Op::Div:
        regs[ins.a] = regs[ins.b] / regs[ins.c];
        break;
      case Op::Min: {
        double l = regs[ins.b], r = regs[ins.c];
        regs[ins.a] = (std::isnan(l) || std::isnan(r)) ? kNaN : std::min(l, r);
        break;
      }
      case Op::Max: {
        double l = regs[ins.b], r = regs[ins.c];
        regs[ins.a] = (std::isnan(l) || std::isnan(r)) ? kNaN : std::max(l, r);
        break;
      }
      case Op::PenaltySub:
        if (!acc) regs[ins.a] -= p.dconsts[ins.d];
        break;
    }
  }
  return acc ? 1.0 : 0.0;
}

}  // namespace

bool eval_filter(const Program& p, const Scratch& s) {
  return run(p, nullptr, s) != 0.0;
}

double eval_score(const Program& p, Scratch& s) {
  s.regs.resize(p.num_regs);
  run(p, &s, s);
  return p.num_regs > 0 ? s.regs[0] : kNaN;
}

// ---- score-bound analysis ----

namespace {

/// Over-approximation of a subexpression's *non-NaN* outcomes across the
/// candidate population.  NaN outcomes need no tracking: every operator
/// (including Min/Max, by construction) propagates NaN to the root, where
/// score_rank_key collapses it to -inf — it can never raise an upper bound.
/// `empty` means no non-NaN outcome is possible at all.
struct Iv {
  double lo = 0.0, hi = 0.0;
  bool empty = true;
};

Iv iv(double lo, double hi) {
  Iv r;
  // Any NaN creeping into a bound (inf - inf and friends) widens to
  // everything: conservative, never unsound.
  if (std::isnan(lo) || std::isnan(hi)) {
    r.lo = -kInf;
    r.hi = kInf;
  } else {
    r.lo = lo;
    r.hi = hi;
  }
  r.empty = false;
  return r;
}

Iv iv_full() { return iv(-kInf, kInf); }

Iv bound_node(const ScoreNode& n,
              const std::function<AttrRange(const std::string&)>& range_of) {
  switch (n.kind) {
    case ScoreNode::Kind::Const:
      if (std::isnan(n.value)) return Iv{};
      return iv(n.value, n.value);
    case ScoreNode::Kind::Attr: {
      AttrRange r = range_of(n.attr);
      if (r.empty) return Iv{};
      if (std::isnan(r.lo) || std::isnan(r.hi)) return iv_full();
      return iv(r.lo, r.hi);
    }
    case ScoreNode::Kind::Neg: {
      Iv u = bound_node(*n.lhs, range_of);
      if (u.empty) return u;
      return iv(-u.hi, -u.lo);
    }
    case ScoreNode::Kind::Inv: {
      Iv u = bound_node(*n.lhs, range_of);
      if (u.empty) return u;
      if (u.lo <= 0.0 && u.hi >= 0.0) return iv_full();  // spans zero
      return iv(std::min(1.0 / u.lo, 1.0 / u.hi),
                std::max(1.0 / u.lo, 1.0 / u.hi));
    }
    case ScoreNode::Kind::Abs: {
      Iv u = bound_node(*n.lhs, range_of);
      if (u.empty) return u;
      if (u.lo >= 0.0) return u;
      if (u.hi <= 0.0) return iv(-u.hi, -u.lo);
      return iv(0.0, std::max(-u.lo, u.hi));
    }
    case ScoreNode::Kind::Sqrt: {
      Iv u = bound_node(*n.lhs, range_of);
      if (u.empty) return u;
      if (u.hi < 0.0) return Iv{};  // every input NaNs out
      return iv(std::sqrt(std::max(u.lo, 0.0)), std::sqrt(u.hi));
    }
    case ScoreNode::Kind::Log: {
      Iv u = bound_node(*n.lhs, range_of);
      if (u.empty) return u;
      if (u.hi < 0.0) return Iv{};
      // log(0) is -inf (a value); negative inputs NaN out and vanish.
      double hi = std::log(u.hi);  // log of 0 -> -inf is fine here
      double lo = u.lo > 0.0 ? std::log(u.lo) : -kInf;
      return iv(lo, hi);
    }
    case ScoreNode::Kind::Add: {
      Iv l = bound_node(*n.lhs, range_of), r = bound_node(*n.rhs, range_of);
      if (l.empty || r.empty) return Iv{};
      return iv(l.lo + r.lo, l.hi + r.hi);
    }
    case ScoreNode::Kind::Sub: {
      Iv l = bound_node(*n.lhs, range_of), r = bound_node(*n.rhs, range_of);
      if (l.empty || r.empty) return Iv{};
      return iv(l.lo - r.hi, l.hi - r.lo);
    }
    case ScoreNode::Kind::Mul: {
      Iv l = bound_node(*n.lhs, range_of), r = bound_node(*n.rhs, range_of);
      if (l.empty || r.empty) return Iv{};
      double c[4] = {l.lo * r.lo, l.lo * r.hi, l.hi * r.lo, l.hi * r.hi};
      for (double v : c) {
        if (std::isnan(v)) return iv_full();  // 0 * inf at a corner
      }
      return iv(std::min(std::min(c[0], c[1]), std::min(c[2], c[3])),
                std::max(std::max(c[0], c[1]), std::max(c[2], c[3])));
    }
    case ScoreNode::Kind::Div: {
      Iv l = bound_node(*n.lhs, range_of), r = bound_node(*n.rhs, range_of);
      if (l.empty || r.empty) return Iv{};
      if (r.lo <= 0.0 && r.hi >= 0.0) return iv_full();  // divisor spans 0
      double c[4] = {l.lo / r.lo, l.lo / r.hi, l.hi / r.lo, l.hi / r.hi};
      for (double v : c) {
        if (std::isnan(v)) return iv_full();
      }
      return iv(std::min(std::min(c[0], c[1]), std::min(c[2], c[3])),
                std::max(std::max(c[0], c[1]), std::max(c[2], c[3])));
    }
    case ScoreNode::Kind::Min: {
      Iv l = bound_node(*n.lhs, range_of), r = bound_node(*n.rhs, range_of);
      if (l.empty || r.empty) return Iv{};  // NaN side poisons the result
      return iv(std::min(l.lo, r.lo), std::min(l.hi, r.hi));
    }
    case ScoreNode::Kind::Max: {
      Iv l = bound_node(*n.lhs, range_of), r = bound_node(*n.rhs, range_of);
      if (l.empty || r.empty) return Iv{};
      return iv(std::max(l.lo, r.lo), std::max(l.hi, r.hi));
    }
  }
  return iv_full();
}

}  // namespace

double score_upper_bound(
    const detail::ScoreIr& ir,
    const std::function<AttrRange(const std::string&)>& range_of) {
  if (!ir.expr) return kInf;
  Iv b = bound_node(*ir.expr, range_of);
  if (b.empty) return -kInf;  // every candidate scores NaN -> -inf key
  double hi = b.hi;
  for (const PenaltyClause& clause : ir.penalties) {
    // A penalty can only raise the score when its weight is negative; the
    // upper bound assumes whichever branch is higher.
    hi -= std::min(clause.weight, 0.0);
  }
  if (std::isnan(hi)) return kInf;
  return hi;
}

namespace {

struct Aff {
  bool valid = false;
  bool has_attr = false;
  std::string attr;
  double a = 0.0, b = 0.0;
};

Aff aff_invalid() { return Aff{}; }

Aff aff_node(const ScoreNode& n) {
  switch (n.kind) {
    case ScoreNode::Kind::Const: {
      if (!std::isfinite(n.value)) return aff_invalid();
      Aff r;
      r.valid = true;
      r.b = n.value;
      return r;
    }
    case ScoreNode::Kind::Attr: {
      Aff r;
      r.valid = true;
      r.has_attr = true;
      r.attr = n.attr;
      r.a = 1.0;
      return r;
    }
    case ScoreNode::Kind::Neg: {
      Aff u = aff_node(*n.lhs);
      if (!u.valid) return u;
      u.a = -u.a;
      u.b = -u.b;
      return u;
    }
    case ScoreNode::Kind::Add:
    case ScoreNode::Kind::Sub: {
      Aff l = aff_node(*n.lhs), r = aff_node(*n.rhs);
      if (!l.valid || !r.valid) return aff_invalid();
      // Exactly-once: two attribute occurrences (even of the same name)
      // break the monotone-rounding argument at the infinities.
      if (l.has_attr && r.has_attr) return aff_invalid();
      double sign = n.kind == ScoreNode::Kind::Add ? 1.0 : -1.0;
      Aff out;
      out.valid = true;
      out.has_attr = l.has_attr || r.has_attr;
      out.attr = l.has_attr ? l.attr : r.attr;
      out.a = l.a + sign * r.a;
      out.b = l.b + sign * r.b;
      return out;
    }
    case ScoreNode::Kind::Mul: {
      Aff l = aff_node(*n.lhs), r = aff_node(*n.rhs);
      if (!l.valid || !r.valid) return aff_invalid();
      if (l.has_attr && r.has_attr) return aff_invalid();
      if (r.has_attr) std::swap(l, r);
      // r is now constant-only: scale.
      Aff out;
      out.valid = true;
      out.has_attr = l.has_attr;
      out.attr = l.attr;
      out.a = l.a * r.b;
      out.b = l.b * r.b;
      return out;
    }
    case ScoreNode::Kind::Div: {
      Aff l = aff_node(*n.lhs), r = aff_node(*n.rhs);
      if (!l.valid || !r.valid) return aff_invalid();
      if (r.has_attr || r.b == 0.0 || !std::isfinite(r.b)) return aff_invalid();
      Aff out;
      out.valid = true;
      out.has_attr = l.has_attr;
      out.attr = l.attr;
      out.a = l.a / r.b;
      out.b = l.b / r.b;
      return out;
    }
    default:
      return aff_invalid();  // functions are not affine
  }
}

}  // namespace

AffineForm affine_of(const detail::ScoreIr& ir) {
  AffineForm out;
  if (!ir.expr || !ir.penalties.empty()) return out;
  Aff a = aff_node(*ir.expr);
  if (!a.valid || !a.has_attr) return out;
  if (!std::isfinite(a.a) || a.a == 0.0 || !std::isfinite(a.b)) return out;
  out.valid = true;
  out.attr = a.attr;
  out.a = a.a;
  out.b = a.b;
  return out;
}

}  // namespace cosm::trader::cexpr
