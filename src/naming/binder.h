// Binder (Fig. 6, Service Support Level).
//
// Turns a service reference into a live, usable channel — the "binding
// establishment" of Fig. 1 steps 4–5 and Fig. 4 step 3.  With probing
// enabled the binder performs the SID handshake on bind, verifying the
// server is alive and actually speaks the interface the reference claims.

#pragma once

#include <chrono>
#include <cstdint>
#include <memory>

#include "rpc/channel.h"
#include "rpc/network.h"
#include "sidl/service_ref.h"

namespace cosm::naming {

struct BinderOptions {
  /// Fetch the SID on bind to verify liveness + interface identity.
  bool probe_on_bind = true;
  std::chrono::milliseconds timeout{5000};
};

/// The result of a successful binding: the channel, plus the SID when the
/// binder probed for it.
struct BoundService {
  std::unique_ptr<rpc::RpcChannel> channel;
  sidl::SidPtr sid;  // null when probing is disabled
};

class Binder {
 public:
  explicit Binder(rpc::Network& network, BinderOptions options = {})
      : network_(network), options_(options) {}

  /// Establish a binding.  Throws cosm::RpcError when the endpoint is
  /// unreachable and cosm::TypeError when a probed SID's name contradicts
  /// the reference's interface name (a stale or forged reference).
  BoundService bind(const sidl::ServiceRef& ref);

  std::uint64_t bindings_established() const noexcept { return bindings_; }

 private:
  rpc::Network& network_;
  BinderOptions options_;
  std::uint64_t bindings_ = 0;
};

}  // namespace cosm::naming
