# Empty dependencies file for test_server_channel.
# This may be replaced when dependencies are built.
