file(REMOVE_RECURSE
  "libcosm_common.a"
)
