// Experiment F3 (Fig. 3): dynamic binding to innovative services.
//
// Per-stage cost of the pipeline SID-transfer -> GUI-generation ->
// dynamic-invocation, as the interface grows (operations x parameters).
// Expected shape: every stage linear in SID size; the invoke stage
// dominated by the RPC round trip, not interpretation.

#include <benchmark/benchmark.h>

#include <sstream>

#include "core/generic_client.h"
#include "rpc/inproc.h"
#include "rpc/server.h"
#include "sidl/parser.h"
#include "uims/form.h"

namespace {

using namespace cosm;
using wire::Value;

std::string synthetic_sidl(int operations, int params_per_op) {
  std::ostringstream os;
  os << "module Synthetic {\n"
        "  typedef struct { long a; double b; string c; } Item_t;\n"
        "  interface I {\n";
  for (int op = 0; op < operations; ++op) {
    os << "    Item_t Op" << op << "(";
    for (int p = 0; p < params_per_op; ++p) {
      os << (p ? ", " : "") << "[in] Item_t p" << p;
    }
    os << ");\n";
  }
  os << "  };\n};\n";
  return os.str();
}

rpc::ServiceObjectPtr synthetic_service(int operations, int params_per_op) {
  auto sid = std::make_shared<sidl::Sid>(
      sidl::parse_sid(synthetic_sidl(operations, params_per_op)));
  auto object = std::make_shared<rpc::ServiceObject>(sid);
  Value item = Value::structure("Item_t", {{"a", Value::integer(1)},
                                           {"b", Value::real(2.0)},
                                           {"c", Value::string("three")}});
  for (int op = 0; op < operations; ++op) {
    object->on("Op" + std::to_string(op),
               [item](const std::vector<Value>&) { return item; });
  }
  return object;
}

void BM_Stage1_SidTransfer(benchmark::State& state) {
  rpc::InProcNetwork net;
  rpc::RpcServer server(net, "host");
  auto ref = server.add(synthetic_service(static_cast<int>(state.range(0)), 3));
  core::GenericClient client(net);
  for (auto _ : state) {
    core::Binding b = client.bind(ref);  // includes SID fetch + parse
    benchmark::DoNotOptimize(b.sid());
  }
  state.counters["operations"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Stage1_SidTransfer)->RangeMultiplier(4)->Range(1, 64);

void BM_Stage2_GuiGeneration(benchmark::State& state) {
  auto sid = std::make_shared<sidl::Sid>(
      sidl::parse_sid(synthetic_sidl(static_cast<int>(state.range(0)), 3)));
  std::size_t widgets = 0;
  for (auto _ : state) {
    uims::ServiceForm form = uims::generate_form(*sid);
    widgets = uims::widget_count(form);
    benchmark::DoNotOptimize(form);
  }
  state.counters["operations"] = static_cast<double>(state.range(0));
  state.counters["widgets"] = static_cast<double>(widgets);
}
BENCHMARK(BM_Stage2_GuiGeneration)->RangeMultiplier(4)->Range(1, 64);

void BM_Stage3_DynamicInvoke(benchmark::State& state) {
  rpc::InProcNetwork net;
  rpc::RpcServer server(net, "host");
  int params = static_cast<int>(state.range(0));
  auto ref = server.add(synthetic_service(1, params));
  core::GenericClient client(net);
  core::Binding b = client.bind(ref);
  Value item = Value::structure("Item_t", {{"a", Value::integer(1)},
                                           {"b", Value::real(2.0)},
                                           {"c", Value::string("three")}});
  std::vector<Value> args(static_cast<std::size_t>(params), item);
  for (auto _ : state) {
    Value result = b.invoke("Op0", args);
    benchmark::DoNotOptimize(result);
  }
  state.counters["params"] = static_cast<double>(params);
}
BENCHMARK(BM_Stage3_DynamicInvoke)->RangeMultiplier(2)->Range(1, 16);

void BM_FullPipeline(benchmark::State& state) {
  rpc::InProcNetwork net;
  rpc::RpcServer server(net, "host");
  auto ref = server.add(synthetic_service(4, 2));
  core::GenericClient client(net);
  Value item = Value::structure("Item_t", {{"a", Value::integer(1)},
                                           {"b", Value::real(2.0)},
                                           {"c", Value::string("three")}});
  for (auto _ : state) {
    core::Binding b = client.bind(ref);
    uims::ServiceForm form = b.form();
    Value result = b.invoke("Op0", {item, item});
    benchmark::DoNotOptimize(form);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FullPipeline);

}  // namespace

BENCHMARK_MAIN();
